package ctdf

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"ctdf/internal/workloads"
)

// allSchemas is the full schema matrix for the clean-vet sweeps.
var allSchemas = []Schema{Schema1, Schema2, Schema2Opt, Schema3, Schema3Opt}

// TestVetCleanWorkloads: every committed workload must vet clean under
// every schema (procedure workloads under linked translation). This is
// the library-level acceptance gate; internal/vet carries the wider
// option-matrix and mutation tests.
func TestVetCleanWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		p, err := Compile(w.Source)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if p.HasProcedures() {
			d, err := p.TranslateLinked()
			if err != nil {
				t.Fatalf("%s: linked: %v", w.Name, err)
			}
			if rep := d.Vet(); rep.Errors > 0 {
				t.Errorf("%s/linked: %d errors:\n%s", w.Name, rep.Errors, rep)
			}
			continue
		}
		for _, s := range allSchemas {
			d, err := p.Translate(Options{Schema: s})
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Name, s, err)
			}
			if rep := d.Vet(); !rep.Clean() {
				t.Errorf("%s/%v: not clean:\n%s", w.Name, s, rep)
			}
		}
	}
}

// srcBlockRe matches the backquoted program literals the examples embed
// (`const src = ...` and friends).
var srcBlockRe = regexp.MustCompile("(?s)= `\n(.*?)`")

// TestVetCleanExamples extracts every embedded program from
// examples/*/main.go and vets its translations: the documentation's
// programs are part of the verified surface.
func TestVetCleanExamples(t *testing.T) {
	files, err := filepath.Glob("examples/*/main.go")
	if err != nil || len(files) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	programs := 0
	for _, file := range files {
		b, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range srcBlockRe.FindAllStringSubmatch(string(b), -1) {
			src := m[1]
			p, err := Compile(src)
			if err != nil {
				continue // not a program literal (some examples embed graph text)
			}
			programs++
			if p.HasProcedures() {
				d, err := p.TranslateLinked()
				if err != nil {
					t.Errorf("%s: linked: %v", file, err)
					continue
				}
				if rep := d.Vet(); rep.Errors > 0 {
					t.Errorf("%s/linked: %d errors:\n%s", file, rep.Errors, rep)
				}
				continue
			}
			for _, s := range allSchemas {
				d, err := p.Translate(Options{Schema: s})
				if err != nil {
					continue // example may target a specific schema
				}
				if rep := d.Vet(); !rep.Clean() {
					t.Errorf("%s/%v: not clean:\n%s", file, s, rep)
				}
			}
		}
	}
	if programs < len(files)-2 {
		t.Fatalf("only %d of %d example files yielded a compilable program; extraction regex lost coverage", programs, len(files))
	}
}

// TestVetLoadedGraph: a graph reloaded from its textual form loses its
// translation metadata; vet must still run the graph-level passes and
// report the translation-validation passes as skipped, not as failures.
func TestVetLoadedGraph(t *testing.T) {
	p, err := Compile(workloads.MustByName("running-example").Source)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Translate(Options{Schema: Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Vet()
	if !rep.Clean() || len(rep.Skipped) != 0 {
		t.Fatalf("direct translation: want clean with no skips, got:\n%s", rep)
	}

	reloaded, err := LoadDataflow(strings.NewReader(d.Text()))
	if err != nil {
		t.Fatal(err)
	}
	rep = reloaded.Vet()
	if rep.Errors > 0 {
		t.Errorf("reloaded graph: %d errors:\n%s", rep.Errors, rep)
	}
	if len(rep.Skipped) == 0 {
		t.Error("reloaded graph: translation-validation passes should be skipped without metadata")
	}
}
