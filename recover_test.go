package ctdf

import (
	"errors"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"
)

// cleanRun executes d without faults or recovery and returns the result.
func cleanRun(t *testing.T, d *Dataflow, cfg RunConfig) *Result {
	t.Helper()
	r, err := d.Run(cfg)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	return r
}

// faultSite runs a counting pass and picks a deterministic site.
func faultSite(t *testing.T, d *Dataflow, engine Engine, class FaultClass, seed int64) int64 {
	t.Helper()
	r, err := d.Run(RunConfig{Engine: engine, Fault: &FaultPlan{Class: class, Site: 0}})
	if err != nil {
		t.Fatalf("counting pass: %v", err)
	}
	if r.Fault.Sites == 0 {
		t.Fatalf("no eligible %s sites", class)
	}
	return PickFaultSite(seed, r.Fault.Sites)
}

func TestRecoverMachineDropToken(t *testing.T) {
	d := translateExample(t)
	clean := cleanRun(t, d, RunConfig{})
	site := faultSite(t, d, EngineMachine, FaultDropToken, 42)

	r, err := d.Run(RunConfig{
		Fault:    &FaultPlan{Class: FaultDropToken, Site: site},
		Recovery: &RecoveryPolicy{CheckpointEvery: 2},
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if r.Recovery == nil || !r.Recovery.Recovered || r.Recovery.Attempts < 2 {
		t.Fatalf("recovery report = %+v, want a recovered retry", r.Recovery)
	}
	if r.Fault == nil || !r.Fault.Injected {
		t.Errorf("fault report lost across retries: %+v", r.Fault)
	}
	if r.Snapshot != clean.Snapshot {
		t.Errorf("recovered snapshot diverged:\n%s\nwant:\n%s", r.Snapshot, clean.Snapshot)
	}
	if r.Cycles != clean.Cycles || r.Ops != clean.Ops {
		t.Errorf("recovered timing diverged: cycles %d ops %d, want %d/%d",
			r.Cycles, r.Ops, clean.Cycles, clean.Ops)
	}
}

func TestRecoverChannelsWedge(t *testing.T) {
	d := translateExample(t)
	clean := cleanRun(t, d, RunConfig{Engine: EngineChannels})
	site := faultSite(t, d, EngineChannels, FaultWedgeMailbox, 7)

	// The wedge watchdog races injection-site delivery under load: if the
	// deadline fires before the wedged site is reached, the fault never
	// injects and the run completes cleanly on its own. Retry with a
	// doubled deadline until the wedge actually fires (see ROBUSTNESS.md).
	deadline := 150 * time.Millisecond
	for try := 0; ; try++ {
		r, err := d.Run(RunConfig{
			Engine:   EngineChannels,
			Deadline: deadline,
			Fault:    &FaultPlan{Class: FaultWedgeMailbox, Site: site},
			Recovery: &RecoveryPolicy{},
		})
		if err != nil {
			t.Fatalf("supervised run failed: %v", err)
		}
		if r.Snapshot != clean.Snapshot {
			t.Fatalf("recovered snapshot diverged:\n%s\nwant:\n%s", r.Snapshot, clean.Snapshot)
		}
		if r.Fault != nil && r.Fault.Injected {
			if r.Recovery == nil || !r.Recovery.Recovered {
				t.Fatalf("wedge fired but run not recovered: %+v", r.Recovery)
			}
			return
		}
		if try >= 4 {
			t.Skip("wedge never fired before the watchdog in 5 tries")
		}
		deadline *= 2
	}
}

func TestRecoverCyclesExceededRaisesBudget(t *testing.T) {
	d := translateExample(t)
	clean := cleanRun(t, d, RunConfig{})
	if clean.Cycles < 8 {
		t.Fatalf("example too short (%d cycles) for a budget test", clean.Cycles)
	}

	r, err := d.Run(RunConfig{
		MaxCycles: clean.Cycles / 2,
		Recovery:  &RecoveryPolicy{CheckpointEvery: 4, BudgetFactor: 4},
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if r.Recovery == nil || !r.Recovery.Recovered {
		t.Fatalf("recovery report = %+v, want recovered", r.Recovery)
	}
	if len(r.Recovery.Checks) == 0 || r.Recovery.Checks[0] != "cycles-exceeded" {
		t.Errorf("checks = %v, want cycles-exceeded first", r.Recovery.Checks)
	}
	if r.Recovery.CheckpointUsed == nil {
		t.Errorf("budget retry did not resume from a checkpoint: %+v", r.Recovery)
	}
	if r.Snapshot != clean.Snapshot || r.Cycles != clean.Cycles || r.Ops != clean.Ops {
		t.Errorf("recovered run diverged: cycles %d ops %d snapshot %q", r.Cycles, r.Ops, r.Snapshot)
	}
}

func TestRecoverPermanentCheckNotRetried(t *testing.T) {
	p, err := Compile("var x, y\nx := 1\ny := x / (x - 1)\n")
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Translate(Options{Schema: Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Run(RunConfig{Recovery: &RecoveryPolicy{CheckpointEvery: 1}})
	if !errors.Is(err, ErrOperatorFault) {
		t.Fatalf("err = %v, want ErrOperatorFault", err)
	}
	if r == nil || r.Recovery == nil {
		t.Fatal("aborted supervised run lost its partial result or report")
	}
	if r.Recovery.Attempts != 1 {
		t.Errorf("permanent check retried: %+v", r.Recovery)
	}
	if len(r.Recovery.Checks) != 1 || r.Recovery.Checks[0] != "operator-fault" {
		t.Errorf("checks = %v", r.Recovery.Checks)
	}
}

// TestRecoverTeardownLeaksNothing is the supervisor-teardown regression
// test: a full fault → abort → restore → success cycle (with on-disk
// checkpoints) must leave no goroutines and no checkpoint files behind.
func TestRecoverTeardownLeaksNothing(t *testing.T) {
	d := translateExample(t)
	clean := cleanRun(t, d, RunConfig{})
	site := faultSite(t, d, EngineMachine, FaultDropToken, 99)
	dir := t.TempDir()
	before := runtime.NumGoroutine()

	r, err := d.Run(RunConfig{
		Fault:    &FaultPlan{Class: FaultDropToken, Site: site},
		Recovery: &RecoveryPolicy{CheckpointEvery: 2, Dir: dir},
	})
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if !r.Recovery.Recovered || r.Snapshot != clean.Snapshot {
		t.Fatalf("not recovered byte-identically: %+v", r.Recovery)
	}
	if r.Recovery.CheckpointsTaken == 0 {
		t.Errorf("on-disk supervisor took no checkpoints")
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("checkpoint files left behind: %d entries", len(entries))
	}
	for i := 0; i < 50 && runtime.NumGoroutine() > before; i++ {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestCheckClassificationCoversEveryCheck(t *testing.T) {
	table := CheckClassification()
	for _, name := range []string{
		"deadlock", "token-leak", "tag-violation", "cycles-exceeded",
		"deadline", "operator-fault", "determinacy", "invalid-config",
	} {
		kind, ok := table[name]
		if !ok {
			t.Errorf("check %q unclassified", name)
			continue
		}
		if kind != "transient" && kind != "permanent" {
			t.Errorf("check %q classified %q", name, kind)
		}
		if got := TransientCheck(name); got != (kind == "transient") {
			t.Errorf("TransientCheck(%q) = %v, table says %q", name, got, kind)
		}
	}
	if len(table) != 8 {
		t.Errorf("classification table has %d entries, want 8", len(table))
	}
}

// TestRecoveryDocClassificationInSync is the doc-sync test: the
// transient-vs-permanent table in ROBUSTNESS.md must match
// CheckClassification exactly.
func TestRecoveryDocClassificationInSync(t *testing.T) {
	data, err := os.ReadFile("ROBUSTNESS.md")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile("(?m)^\\| `([a-z-]+)` \\| (transient|permanent) \\|$")
	documented := map[string]string{}
	for _, m := range re.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = m[2]
	}
	table := CheckClassification()
	for name, kind := range table {
		if got := documented[name]; got != kind {
			t.Errorf("ROBUSTNESS.md documents %q as %q, code says %q", name, got, kind)
		}
	}
	for name := range documented {
		if _, ok := table[name]; !ok {
			t.Errorf("ROBUSTNESS.md documents unknown check %q", name)
		}
	}
	if len(documented) != len(table) {
		t.Errorf("ROBUSTNESS.md documents %d checks, code classifies %d", len(documented), len(table))
	}
}
