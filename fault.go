package ctdf

import (
	"ctdf/internal/fault"
)

// FaultClass names one injectable fault class (see ROBUSTNESS.md and the
// `ctdf chaos` command). Fault injection exists to prove the machine
// checks have teeth: every injected fault must be caught by a named check
// or by oracle mismatch.
type FaultClass = fault.Class

// The fault classes.
const (
	// FaultDropToken discards a token delivered to a matching operator.
	FaultDropToken = fault.DropToken
	// FaultDupToken delivers such a token twice.
	FaultDupToken = fault.DupToken
	// FaultCorruptTag wraps such a token's tag in a bogus loop context.
	FaultCorruptTag = fault.CorruptTag
	// FaultLoseMemResponse discards a split-phase memory response
	// (EngineMachine only).
	FaultLoseMemResponse = fault.LoseMemResponse
	// FaultDelayMemResponse delays a split-phase memory response without
	// losing it (EngineMachine only) — the determinacy negative control:
	// the run must tolerate it and produce the oracle's exact result.
	FaultDelayMemResponse = fault.DelayMemResponse
	// FaultMisfireValue makes an arithmetic operator produce a wrong
	// value.
	FaultMisfireValue = fault.MisfireValue
	// FaultWedgeMailbox freezes an operator's mailbox (EngineChannels
	// only); with a Deadline set, the watchdog reports ErrDeadlock.
	FaultWedgeMailbox = fault.WedgeMailbox
)

// FaultClasses returns every fault class in stable order.
func FaultClasses() []FaultClass { return fault.Classes() }

// ParseFaultClass parses a fault class name.
func ParseFaultClass(s string) (FaultClass, error) { return fault.ParseClass(s) }

// FaultPlan selects one fault to inject into a run.
type FaultPlan struct {
	// Class is the fault class.
	Class FaultClass
	// Site is the 1-based index of the eligible injection site to hit; 0
	// runs a counting pass that injects nothing but reports the site
	// count in Result.Fault.Sites (use it to pick a site from a seed with
	// PickFaultSite).
	Site int64
	// Delay is the extra latency in cycles for FaultDelayMemResponse
	// (0 means the default).
	Delay int
}

// FaultReport describes what the injector saw and did during a run.
type FaultReport struct {
	// Class is the planned fault class.
	Class FaultClass
	// Sites is the number of eligible injection sites the run offered.
	Sites int64
	// Injected reports whether the fault actually fired.
	Injected bool
}

// PickFaultSite maps a seed onto a 1-based site index given a counting
// pass's site count.
func PickFaultSite(seed, sites int64) int64 { return fault.PickSite(seed, sites) }
