package ctdf_test

import (
	"fmt"
	"log"

	"ctdf"
)

// Compile, translate, and run the paper's running example.
func Example() {
	p, err := ctdf.Compile(`
var x, y
l: y := x + 1
x := x + 1
if x < 5 then goto l else goto end
`)
	if err != nil {
		log.Fatal(err)
	}
	d, err := p.Translate(ctdf.Options{Schema: ctdf.Schema2})
	if err != nil {
		log.Fatal(err)
	}
	r, err := d.Run(ctdf.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Snapshot)
	// Output:
	// x=5
	// y=5
}

// Compare the schemas' graph sizes on one program.
func ExampleProgram_Translate() {
	p, _ := ctdf.Compile("var a, b\nif a < b {\n  a := 1\n} else {\n  b := 2\n}\n")
	for _, s := range []ctdf.Schema{ctdf.Schema1, ctdf.Schema2, ctdf.Schema2Opt} {
		d, err := p.Translate(ctdf.Options{Schema: s})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d switches\n", s, d.Stats().Switches)
	}
	// Output:
	// schema1: 1 switches
	// schema2: 2 switches
	// schema2-opt: 2 switches
}

// The sequential interpreter is the baseline every translation matches.
func ExampleProgram_Interpret() {
	p, _ := ctdf.Compile("var s, i\nwhile i < 4 {\n  s := s + i\n  i := i + 1\n}\n")
	r, err := p.Interpret(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(r.Snapshot)
	// Output:
	// i=4
	// s=6
}

// Derive the §5 alias structure of a subroutine from its call sites.
func ExampleProgram_DeriveAliases() {
	p, _ := ctdf.Compile(`
var a, b, c, d
proc f(x, y, z) {
  z := x + y
}
call f(a, b, a)
call f(c, d, d)
`)
	pas, err := p.DeriveAliases()
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range pas[0].Formals {
		fmt.Printf("[%s] = %v\n", f, pas[0].Class[f])
	}
	// Output:
	// [x] = [x z]
	// [y] = [y z]
	// [z] = [x y z]
}

// Aliased programs run under a binding choosing which names share storage.
func ExampleDataflow_Run_binding() {
	p, _ := ctdf.Compile("var x, z, r\nalias x ~ z\nx := 1\nz := 2\nr := x\n")
	d, _ := p.Translate(ctdf.Options{Schema: ctdf.Schema3})
	shared, err := d.Run(ctdf.RunConfig{Binding: map[string]string{"x": "x", "z": "x"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(shared.Snapshot)
	// Output:
	// r=2
	// x=2
	// z=2
}
