package ctdf

import (
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"ctdf/internal/workloads"
)

func telemetryRun(t *testing.T, reg *Telemetry, cfg RunConfig) {
	t.Helper()
	p, err := Compile(workloads.MustByName("fib-iterative").Source)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Translate(Options{Schema: Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry = reg
	if _, err := d.Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryPublicAPI covers the wrapper surface: a run populates
// the registry, the snapshot renders all three ways, and the
// projections drop families as documented.
func TestTelemetryPublicAPI(t *testing.T) {
	reg := NewTelemetry()
	telemetryRun(t, reg, RunConfig{MemLatency: 4, Workers: 2})
	snap := reg.Snapshot()
	om := string(snap.OpenMetrics())
	for _, want := range []string{
		"ctdf_machine_cycles_total", "ctdf_machine_phase_seconds", "ctdf_machine_barrier_wait_seconds",
		"# EOF",
	} {
		if !strings.Contains(om, want) {
			t.Errorf("OpenMetrics missing %q", want)
		}
	}
	if table := snap.PhaseTable(); !strings.Contains(table, "phase breakdown") {
		t.Errorf("phase table malformed:\n%s", table)
	}
	js, err := snap.JSON()
	if err != nil || len(js) == 0 {
		t.Fatalf("JSON: %v", err)
	}
	inv := string(snap.Invariant().OpenMetrics())
	if strings.Contains(inv, "phase_seconds") || strings.Contains(inv, "shard_traffic") {
		t.Errorf("invariant projection leaked varying/sharded families:\n%s", inv)
	}
	if !strings.Contains(inv, "ctdf_machine_cycles_total") {
		t.Errorf("invariant projection dropped an invariant family:\n%s", inv)
	}
}

// TestTelemetryChannelEngine checks the channel engine feeds the
// registry too: firings and deliveries are invariant counters.
func TestTelemetryChannelEngine(t *testing.T) {
	reg := NewTelemetry()
	telemetryRun(t, reg, RunConfig{Engine: EngineChannels, Deadline: 30 * time.Second})
	om := string(reg.Snapshot().OpenMetrics())
	for _, want := range []string{"ctdf_chanexec_firings_total", "ctdf_chanexec_tokens_delivered_total", "ctdf_chanexec_mailbox_depth"} {
		if !strings.Contains(om, want) {
			t.Errorf("OpenMetrics missing %q\n%s", want, om)
		}
	}
}

// TestMetricsHTTPSmoke is the verify.sh /metrics gate: start an
// endpoint, run an instrumented workload, scrape it over real HTTP,
// assert the required families arrive in OpenMetrics framing, then
// shut down and check the serve goroutine is gone.
func TestMetricsHTTPSmoke(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := NewTelemetry()
	srv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	telemetryRun(t, reg, RunConfig{MemLatency: 4, Workers: 2})

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("content type = %q, want openmetrics-text", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE ctdf_machine_cycles counter",
		"ctdf_machine_cycles_total",
		"ctdf_machine_firings_total",
		"ctdf_machine_tokens_delivered_total",
		"ctdf_machine_phase_seconds",
		"# EOF",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Error("scrape not terminated by # EOF")
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The serve goroutine must be gone; idle HTTP keep-alive workers can
	// take a moment to unwind, so poll briefly before declaring a leak.
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked after Close: before=%d after=%d", before, runtime.NumGoroutine())
}
