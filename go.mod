module ctdf

go 1.22
