package ctdf

import (
	"strings"
	"testing"
	"time"

	"ctdf/internal/workloads"
)

// FuzzLoadDataflowRun feeds arbitrary graph text through LoadDataflow
// and, when it parses, executes it on the machine simulator under tight
// budgets. The property under test is total robustness: no input may
// panic, hang, or allocate unboundedly — every failure mode must come
// back as a returned (typed) error. Seeds are the serialized forms of
// real translated workloads so the fuzzer starts from well-formed graphs
// and mutates toward near-miss corruptions of them.
func FuzzLoadDataflowRun(f *testing.F) {
	for _, name := range []string{"straightline", "fib-iterative", "array-sum"} {
		w := workloads.MustByName(name)
		p, err := Compile(w.Source)
		if err != nil {
			f.Fatal(err)
		}
		d, err := p.Translate(Options{Schema: Schema2Opt})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(d.Text())
	}
	f.Add("ctdf-dataflow v1\nvar x\nnode d0 start\nnode d1 end ins=1\narc d0.0 -> d1.0\n")
	f.Add("ctdf-dataflow v1\narray a 8\nnode d0 start\nnode d1 end ins=1\narc d0.0 -> d1.0\n")
	f.Fuzz(func(t *testing.T, src string) {
		d, err := LoadDataflow(strings.NewReader(src))
		if err != nil {
			return // rejected at parse or validation: fine
		}
		res, err := d.Run(RunConfig{
			Engine:    EngineMachine,
			MaxCycles: 2_000,
			MaxOps:    200_000,
			Deadline:  2 * time.Second,
		})
		if err == nil && res == nil {
			t.Error("successful run returned no result")
		}
	})
}

// FuzzCompileVet asserts the translation-validation contract over
// arbitrary source programs: anything Compile accepts must translate to a
// graph that vets clean, under every schema and transform combination the
// translator accepts — and must stay clean through the graph optimizer,
// whose certificate vet validates rather than trusts, and whose output
// must execute to the same result on both engines. Seeds are the
// committed workloads, so the fuzzer mutates from realistic programs
// toward pathological ones.
func FuzzCompileVet(f *testing.F) {
	for _, w := range workloads.All() {
		f.Add(w.Source)
	}
	combos := []Options{
		{Schema: Schema1},
		{Schema: Schema2},
		{Schema: Schema2Opt},
		{Schema: Schema3},
		{Schema: Schema3Opt},
		{Schema: Schema2Opt, EliminateMemory: true, ParallelReads: true, ParallelArrayStores: true},
		{Schema: Schema2Opt, EliminateMemory: true, UseIStructures: true},
		{Schema: Schema3Opt, Cover: CoverClass, ParallelReads: true},
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Compile(src)
		if err != nil {
			return // rejected by the front end: fine
		}
		if p.HasProcedures() {
			d, err := p.TranslateLinked()
			if err != nil {
				return
			}
			if rep := d.Vet(); rep.Errors > 0 {
				t.Errorf("linked graph does not vet clean:\n%s", rep)
			}
			return
		}
		for _, opt := range combos {
			d, err := p.Translate(opt)
			if err != nil {
				continue // combination rejected by the schema: fine
			}
			if rep := d.Vet(); !rep.Clean() {
				t.Errorf("schema %v graph does not vet clean:\n%s", opt.Schema, rep)
				continue
			}
			base, err := d.Run(RunConfig{MaxCycles: 20_000, MaxOps: 2_000_000})
			if err != nil {
				continue // runaway loop under the budget: fine, skip the diff
			}
			if _, err := d.Optimize(); err != nil {
				t.Errorf("schema %v optimize failed: %v", opt.Schema, err)
				continue
			}
			if rep := d.Vet(); !rep.Clean() {
				t.Errorf("schema %v optimized graph does not vet clean:\n%s", opt.Schema, rep)
				continue
			}
			mo, err := d.Run(RunConfig{MaxCycles: 20_000, MaxOps: 2_000_000})
			if err != nil {
				t.Errorf("schema %v optimized graph aborted: %v", opt.Schema, err)
				continue
			}
			if mo.Snapshot != base.Snapshot {
				t.Errorf("schema %v optimization changed the result\n got %s\nwant %s", opt.Schema, mo.Snapshot, base.Snapshot)
			}
			co, err := d.Run(RunConfig{Engine: EngineChannels, MaxOps: 2_000_000, Deadline: 10 * time.Second})
			if err != nil {
				t.Errorf("schema %v optimized graph failed on channels: %v", opt.Schema, err)
				continue
			}
			if co.Snapshot != mo.Snapshot || co.Ops != mo.Ops {
				t.Errorf("schema %v engines disagree on optimized graph: machine %s (%d ops) vs channels %s (%d ops)",
					opt.Schema, mo.Snapshot, mo.Ops, co.Snapshot, co.Ops)
			}
		}
	})
}
