package ctdf

// The benchmark harness: one benchmark per experiment in EXPERIMENTS.md
// (E1–E12), regenerating the corresponding paper artifact's measurement.
// Dataflow-level results (cycles on the simulated machine, operator
// counts) are reported as custom metrics next to the usual ns/op of the
// simulation itself.

import (
	"fmt"
	"testing"

	"ctdf/internal/experiments"
	"ctdf/internal/workloads"
)

func compileBench(b *testing.B, src string) *Program {
	b.Helper()
	p, err := Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchRun measures executing workload w under opt on the machine and
// reports the simulated cycle count and average parallelism.
func benchRun(b *testing.B, w workloads.Workload, opt Options, run RunConfig) {
	b.Helper()
	p := compileBench(b, w.Source)
	d, err := p.Translate(opt)
	if err != nil {
		b.Fatal(err)
	}
	var last *Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := d.Run(run)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	if last != nil && last.Cycles > 0 {
		b.ReportMetric(float64(last.Cycles), "cycles")
		b.ReportMetric(last.AvgParallelism, "par")
	}
	st := d.Stats()
	b.ReportMetric(float64(st.Nodes), "dfnodes")
	b.ReportMetric(float64(st.Switches), "switches")
}

// --- E1/E2: Schema 1 vs Schema 2 on the running example (Figs 1–8) ---

func BenchmarkE1Schema1RunningExample(b *testing.B) {
	benchRun(b, workloads.RunningExample, Options{Schema: Schema1}, RunConfig{MemLatency: 4})
}

func BenchmarkE2Schema2RunningExample(b *testing.B) {
	benchRun(b, workloads.RunningExample, Options{Schema: Schema2}, RunConfig{MemLatency: 4})
}

func BenchmarkE2Schema2IndependentChains(b *testing.B) {
	benchRun(b, workloads.MustByName("independent-chains"), Options{Schema: Schema2}, RunConfig{MemLatency: 4})
}

// --- E3: translation cost and O(E·V) size scaling (§3) ---

func BenchmarkE3TranslateSizeScaling(b *testing.B) {
	for _, size := range []int{2, 4, 8, 16} {
		w := workloads.Random(1234, size, 2)
		b.Run(fmt.Sprintf("stmts=%d", size), func(b *testing.B) {
			p := compileBench(b, w.Source)
			var d *Dataflow
			for i := 0; i < b.N; i++ {
				var err error
				d, err = p.Translate(Options{Schema: Schema2})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(d.Stats().Arcs), "dfarcs")
		})
	}
}

// --- E4: switch elimination on Figure 9 ---

func BenchmarkE4Fig9Schema2(b *testing.B) {
	benchRun(b, workloads.Fig9Example, Options{Schema: Schema2}, RunConfig{MemLatency: 8})
}

func BenchmarkE4Fig9Optimized(b *testing.B) {
	benchRun(b, workloads.Fig9Example, Options{Schema: Schema2Opt}, RunConfig{MemLatency: 8})
}

// --- E5: switch placement (Figure 10) computation cost ---

func BenchmarkE5SwitchPlacement(b *testing.B) {
	w := workloads.Random(999, 10, 3)
	p := compileBench(b, w.Source)
	for i := 0; i < b.N; i++ {
		if _, err := p.Translate(Options{Schema: Schema2Opt}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6: direct construction vs iterative elimination (§4.2) ---

func BenchmarkE6DirectConstruction(b *testing.B) {
	p := compileBench(b, workloads.Fig9Example.Source)
	for i := 0; i < b.N; i++ {
		if _, err := p.Translate(Options{Schema: Schema2Opt}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6IterativeElimination(b *testing.B) {
	p := compileBench(b, workloads.Fig9Example.Source)
	d, err := p.Translate(Options{Schema: Schema2})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, n := d.EliminateRedundantSwitches(); n == 0 {
			b.Fatal("nothing eliminated")
		}
	}
}

// --- E7: cover tradeoff (§5, Figures 12–13) ---

func BenchmarkE7Cover(b *testing.B) {
	for _, c := range []struct {
		name string
		kind CoverKind
	}{{"singleton", CoverSingleton}, {"class", CoverClass}, {"monolithic", CoverMonolithic}} {
		b.Run(c.name, func(b *testing.B) {
			benchRun(b, workloads.MustByName("cover-tradeoff"),
				Options{Schema: Schema3, Cover: c.kind}, RunConfig{MemLatency: 6})
		})
	}
}

// --- E8: array store parallelization (Figure 14, §6.3) ---

func BenchmarkE8ArrayStores(b *testing.B) {
	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallelized"
		}
		b.Run(name, func(b *testing.B) {
			benchRun(b, workloads.Fig14ArrayLoop,
				Options{Schema: Schema2Opt, EliminateMemory: true, ParallelArrayStores: par},
				RunConfig{MemLatency: 20})
		})
	}
}

// --- E9: memory elimination (§6.1) ---

func BenchmarkE9MemElim(b *testing.B) {
	for _, elim := range []bool{false, true} {
		name := "with-memory"
		if elim {
			name = "eliminated"
		}
		b.Run(name, func(b *testing.B) {
			benchRun(b, workloads.MustByName("fib-iterative"),
				Options{Schema: Schema2Opt, EliminateMemory: elim}, RunConfig{MemLatency: 4})
		})
	}
}

// --- E10: read parallelization (§6.2) ---

func BenchmarkE10ReadPar(b *testing.B) {
	for _, par := range []bool{false, true} {
		name := "sequential-reads"
		if par {
			name = "parallel-reads"
		}
		b.Run(name, func(b *testing.B) {
			benchRun(b, workloads.MustByName("read-heavy"),
				Options{Schema: Schema2, ParallelReads: par}, RunConfig{MemLatency: 16})
		})
	}
}

// --- E11: the schema comparison across the suite ---

func BenchmarkE11SchemaComparison(b *testing.B) {
	for _, w := range []workloads.Workload{
		workloads.RunningExample,
		workloads.MustByName("fib-iterative"),
		workloads.MustByName("matmul-2x2-flat"),
		workloads.MustByName("independent-chains"),
	} {
		for _, cfg := range []struct {
			name string
			opt  Options
		}{
			{"schema1", Options{Schema: Schema1}},
			{"schema2", Options{Schema: Schema2}},
			{"schema2-opt", Options{Schema: Schema2Opt}},
			{"mem-elim", Options{Schema: Schema2Opt, EliminateMemory: true}},
		} {
			b.Run(w.Name+"/"+cfg.name, func(b *testing.B) {
				benchRun(b, w, cfg.opt, RunConfig{MemLatency: 4})
			})
		}
	}
}

// --- E12: engine comparison ---

func BenchmarkE12Engines(b *testing.B) {
	w := workloads.MustByName("nested-loops")
	for _, e := range []struct {
		name   string
		engine Engine
	}{{"machine", EngineMachine}, {"channels", EngineChannels}} {
		b.Run(e.name, func(b *testing.B) {
			p := compileBench(b, w.Source)
			d, err := p.Translate(Options{Schema: Schema2Opt})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := d.Run(RunConfig{Engine: e.engine}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E13: I-structure memory (§6.3, write-once arrays) ---

func BenchmarkE13IStructures(b *testing.B) {
	for _, ist := range []bool{false, true} {
		name := "access-tokens"
		if ist {
			name = "i-structures"
		}
		b.Run(name, func(b *testing.B) {
			benchRun(b, workloads.MustByName("producer-consumer"),
				Options{Schema: Schema2Opt, EliminateMemory: true, UseIStructures: ist},
				RunConfig{MemLatency: 16})
		})
	}
}

// --- E14: derived alias structures (§5) ---

func BenchmarkE14DeriveAliases(b *testing.B) {
	p := compileBench(b, workloads.MustByName("proc-fortran").Source)
	for i := 0; i < b.N; i++ {
		pas, err := p.DeriveAliases()
		if err != nil || len(pas) == 0 {
			b.Fatal("derivation failed")
		}
	}
}

// --- E15: separate compilation with activation contexts (§2.2) ---

func BenchmarkE15Linked(b *testing.B) {
	src := workloads.MustByName("proc-fortran").Source
	p := compileBench(b, src)
	for _, linked := range []bool{false, true} {
		name := "inlined"
		if linked {
			name = "linked"
		}
		b.Run(name, func(b *testing.B) {
			var d *Dataflow
			var err error
			if linked {
				d, err = p.TranslateLinked()
			} else {
				d, err = p.Translate(Options{Schema: Schema2Opt})
			}
			if err != nil {
				b.Fatal(err)
			}
			var last *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = d.Run(RunConfig{MemLatency: 4})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(last.Cycles), "cycles")
			b.ReportMetric(float64(d.Stats().Nodes), "dfnodes")
		})
	}
}

// --- Pipeline stage costs ---

func BenchmarkCompile(b *testing.B) {
	w := workloads.MustByName("matmul-2x2-flat")
	for i := 0; i < b.N; i++ {
		if _, err := Compile(w.Source); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateSchemas(b *testing.B) {
	w := workloads.MustByName("matmul-2x2-flat")
	p := compileBench(b, w.Source)
	for _, s := range []Schema{Schema1, Schema2, Schema2Opt, Schema3, Schema3Opt} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.Translate(Options{Schema: s}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScalingTranslate measures translation time as generated
// programs grow (statement count doubles per step).
func BenchmarkScalingTranslate(b *testing.B) {
	for _, size := range []int{4, 8, 16, 32} {
		w := workloads.Random(4242, size, 3)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			p := compileBench(b, w.Source)
			var d *Dataflow
			for i := 0; i < b.N; i++ {
				var err error
				d, err = p.Translate(Options{Schema: Schema2Opt})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(d.Stats().Nodes), "dfnodes")
		})
	}
}

// BenchmarkScalingSimulate measures simulator throughput (operator
// firings per wall second) on growing programs.
func BenchmarkScalingSimulate(b *testing.B) {
	for _, size := range []int{4, 8, 16} {
		w := workloads.Random(4242, size, 3)
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			p := compileBench(b, w.Source)
			d, err := p.Translate(Options{Schema: Schema2Opt})
			if err != nil {
				b.Fatal(err)
			}
			ops := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := d.Run(RunConfig{})
				if err != nil {
					b.Fatal(err)
				}
				ops += r.Ops
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(ops)/sec, "fires/s")
			}
		})
	}
}

// BenchmarkObsDisabled measures Run with no observability attached —
// the engines carry the instrumentation hooks but pay only a nil check
// per firing. Compare against BenchmarkObsEnabled (and against the
// pre-obs seed, where this benchmark's workload matched the seed Run
// within ~2%).
func BenchmarkObsDisabled(b *testing.B) {
	p := compileBench(b, workloads.MustByName("fib-iterative").Source)
	d, err := p.Translate(Options{Schema: Schema2Opt})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(RunConfig{MemLatency: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsEnabled is the same run with full observability: counters,
// an in-memory event ring, and firing-DAG recording for the critical
// path.
func BenchmarkObsEnabled(b *testing.B) {
	p := compileBench(b, workloads.MustByName("fib-iterative").Source)
	d, err := p.Translate(Options{Schema: Schema2Opt})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := d.Run(RunConfig{MemLatency: 4, Obs: &ObsOptions{CriticalPath: true}})
		if err != nil {
			b.Fatal(err)
		}
		if r.Obs == nil || r.Obs.CriticalPathLength() == 0 {
			b.Fatal("observability report missing")
		}
	}
}

// BenchmarkObsJournal is the same run recording the full causal journal:
// every firing carries its complete operand-producer set, plus
// matching-store parks, powering Explain/Impact, replay, and the
// exporters.
func BenchmarkObsJournal(b *testing.B) {
	p := compileBench(b, workloads.MustByName("fib-iterative").Source)
	d, err := p.Translate(Options{Schema: Schema2Opt})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := d.Run(RunConfig{MemLatency: 4, Obs: &ObsOptions{Journal: true}})
		if err != nil {
			b.Fatal(err)
		}
		if r.Journal == nil {
			b.Fatal("journal missing")
		}
	}
}

// BenchmarkTelemetryDisabled is the telemetry arm of the disabled-path
// overhead guard (the same contract BenchmarkObsDisabled pins for the
// collector): with RunConfig.Telemetry nil, the uninstrumented engine
// pays only nil-check branches at phase boundaries — never per firing —
// so compare against BenchmarkTelemetryEnabled. verify.sh also gates
// the instrumented/uninstrumented fires-per-second ratio on the bench
// smoke.
func BenchmarkTelemetryDisabled(b *testing.B) {
	p := compileBench(b, workloads.MustByName("fib-iterative").Source)
	d, err := p.Translate(Options{Schema: Schema2Opt})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(RunConfig{MemLatency: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTelemetryEnabled is the same run with a live registry
// recording every phase, counter, and histogram in the catalog.
func BenchmarkTelemetryEnabled(b *testing.B) {
	p := compileBench(b, workloads.MustByName("fib-iterative").Source)
	d, err := p.Translate(Options{Schema: Schema2Opt})
	if err != nil {
		b.Fatal(err)
	}
	reg := NewTelemetry()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(RunConfig{MemLatency: 4, Telemetry: reg}); err != nil {
			b.Fatal(err)
		}
	}
	if reg.Snapshot().OpenMetrics() == nil {
		b.Fatal("empty telemetry snapshot")
	}
}

// BenchmarkTelemetryEnabledSharded exercises the instrumented parallel
// phases: per-shard scratch timing plus the sequential fold.
func BenchmarkTelemetryEnabledSharded(b *testing.B) {
	p := compileBench(b, workloads.MustByName("fib-iterative").Source)
	d, err := p.Translate(Options{Schema: Schema2Opt})
	if err != nil {
		b.Fatal(err)
	}
	reg := NewTelemetry()
	for i := 0; i < b.N; i++ {
		if _, err := d.Run(RunConfig{MemLatency: 4, Workers: 4, Telemetry: reg}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynchLegalization measures the two-input legalization pass and
// its runtime effect.
func BenchmarkSynchLegalization(b *testing.B) {
	src := `
var a, c, d, e
alias a ~ e
alias c ~ e
alias d ~ e
e := a + c + d
a := e * 2
`
	p := compileBench(b, src)
	d, err := p.Translate(Options{Schema: Schema3})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, n := d.LegalizeSynchTrees(); n == 0 {
			b.Skip("no wide synchs")
		}
	}
}

// BenchmarkExperimentTables regenerates every EXPERIMENTS.md table.
func BenchmarkExperimentTables(b *testing.B) {
	for _, e := range experiments.All() {
		b.Run(e.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
