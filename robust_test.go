package ctdf

import (
	"errors"
	"testing"
	"time"
)

func translateExample(t *testing.T) *Dataflow {
	t.Helper()
	p, err := Compile(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Translate(Options{Schema: Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeadlineReturnsTypedErrorAndPartialResult(t *testing.T) {
	d := translateExample(t)
	r, err := d.Run(RunConfig{Deadline: 1}) // 1ns: expires immediately
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if r == nil {
		t.Fatal("no partial result on deadline abort")
	}
	if name, ok := CheckName(err); !ok || name != "deadline" {
		t.Errorf("CheckName = %q, %v", name, ok)
	}
}

func TestChannelsDeadlineReportsDeadlock(t *testing.T) {
	// Acceptance criterion: a deadlocked (wedged) channel-engine run with
	// a deadline returns a typed ErrDeadlock within the deadline.
	d := translateExample(t)
	start := time.Now()
	r, err := d.Run(RunConfig{
		Engine:   EngineChannels,
		Deadline: 100 * time.Millisecond,
		Fault:    &FaultPlan{Class: FaultWedgeMailbox, Site: 3},
	})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if e := time.Since(start); e > 3*time.Second {
		t.Errorf("watchdog took %v", e)
	}
	if r == nil || r.Fault == nil || !r.Fault.Injected {
		t.Errorf("partial result or fault report missing: %+v", r)
	}
}

func TestFaultCountingPassAndDetection(t *testing.T) {
	d := translateExample(t)
	// Counting pass: no injection, reports eligible sites.
	r, err := d.Run(RunConfig{Fault: &FaultPlan{Class: FaultDropToken, Site: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Fault == nil || r.Fault.Sites == 0 || r.Fault.Injected {
		t.Fatalf("counting pass report = %+v", r.Fault)
	}
	// Injected run: the dropped token must be detected by a named check.
	site := PickFaultSite(42, r.Fault.Sites)
	r2, err := d.Run(RunConfig{Fault: &FaultPlan{Class: FaultDropToken, Site: site}})
	if err == nil {
		t.Fatal("dropped token went undetected")
	}
	if name, ok := CheckName(err); !ok || name == "" {
		t.Errorf("abort not typed: %v", err)
	}
	if r2 == nil || !r2.Fault.Injected {
		t.Errorf("fault report missing on aborted run: %+v", r2)
	}
}

func TestObservedAbortStillReported(t *testing.T) {
	d := translateExample(t)
	r, err := d.Run(RunConfig{
		MaxCycles: 3,
		Obs:       &ObsOptions{},
	})
	if !errors.Is(err, ErrCyclesExceeded) {
		t.Fatalf("err = %v, want ErrCyclesExceeded", err)
	}
	if r == nil || r.Obs == nil {
		t.Fatal("aborted observed run lost its obs report")
	}
}
