package ctdf

import (
	"strings"
	"testing"
)

const exampleSrc = `
var x, y
l: y := x + 1
x := x + 1
if x < 5 then goto l else goto end
`

func TestPipelineQuickstart(t *testing.T) {
	p, err := Compile(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Translate(Options{Schema: Schema2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Run(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Snapshot, "x=5") || !strings.Contains(r.Snapshot, "y=5") {
		t.Errorf("snapshot = %q", r.Snapshot)
	}
	if r.Cycles == 0 || r.Ops == 0 {
		t.Error("machine stats missing")
	}
	want, err := p.Interpret(nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snapshot != want.Snapshot {
		t.Error("dataflow and interpreter disagree")
	}
}

func TestAllSchemasViaFacade(t *testing.T) {
	p, err := Compile(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := p.Interpret(nil)
	for _, s := range []Schema{Schema1, Schema2, Schema2Opt, Schema3, Schema3Opt} {
		for _, e := range []Engine{EngineMachine, EngineChannels} {
			d, err := p.Translate(Options{Schema: s})
			if err != nil {
				t.Fatalf("%v: %v", s, err)
			}
			r, err := d.Run(RunConfig{Engine: e})
			if err != nil {
				t.Fatalf("%v/%v: %v", s, e, err)
			}
			if r.Snapshot != want.Snapshot {
				t.Errorf("%v/%v: wrong result", s, e)
			}
		}
	}
}

func TestSchemaNamesRoundTrip(t *testing.T) {
	for _, s := range []Schema{Schema1, Schema2, Schema2Opt, Schema3, Schema3Opt} {
		got, err := ParseSchema(s.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("round trip %v → %q → %v", s, s.String(), got)
		}
	}
	if _, err := ParseSchema("bogus"); err == nil {
		t.Error("bogus schema accepted")
	}
}

func TestCoversViaFacade(t *testing.T) {
	src := "var x, y, z\nalias x ~ z\nalias y ~ z\nx := 1\ny := 2\nz := x + y\n"
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := p.Interpret(nil)
	for _, c := range []CoverKind{CoverSingleton, CoverClass, CoverMonolithic} {
		d, err := p.Translate(Options{Schema: Schema3, Cover: c})
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Run(RunConfig{DetectRaces: true})
		if err != nil {
			t.Fatal(err)
		}
		if r.Snapshot != want.Snapshot {
			t.Errorf("cover %d: wrong result", c)
		}
	}
	// Token universes differ by cover.
	ds, _ := p.Translate(Options{Schema: Schema3, Cover: CoverSingleton})
	dm, _ := p.Translate(Options{Schema: Schema3, Cover: CoverMonolithic})
	if len(ds.Tokens()) <= len(dm.Tokens()) {
		t.Errorf("singleton cover should have more tokens (%d) than monolithic (%d)",
			len(ds.Tokens()), len(dm.Tokens()))
	}
}

func TestBindingViaFacade(t *testing.T) {
	src := "var x, z, r\nalias x ~ z\nx := 1\nz := 2\nr := x\n"
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Translate(Options{Schema: Schema3})
	if err != nil {
		t.Fatal(err)
	}
	shared, err := d.Run(RunConfig{Binding: map[string]string{"x": "x", "z": "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(shared.Snapshot, "r=2") {
		t.Errorf("with x~z shared, r must read z's write: %q", shared.Snapshot)
	}
	if _, err := d.Run(RunConfig{Binding: map[string]string{"x": "x", "r": "x"}}); err == nil {
		t.Error("illegal binding (x, r not aliases) must be rejected")
	}
}

func TestDOTOutputs(t *testing.T) {
	p, _ := Compile(exampleSrc)
	if !strings.Contains(p.ControlFlowDOT(), "digraph cfg") {
		t.Error("CFG DOT malformed")
	}
	d, _ := p.Translate(Options{Schema: Schema1})
	if !strings.Contains(d.DOT(), "digraph dfg") {
		t.Error("DFG DOT malformed")
	}
}

func TestStatsAndElimination(t *testing.T) {
	src := "var x, w, y\nx := x + 1\nif w == 0 {\n  y := 1\n} else {\n  y := 2\n}\nx := 0\n"
	p, _ := Compile(src)
	d2, _ := p.Translate(Options{Schema: Schema2})
	dOpt, _ := p.Translate(Options{Schema: Schema2Opt})
	if dOpt.Stats().Switches >= d2.Stats().Switches {
		t.Errorf("optimized switches %d not below schema 2's %d", dOpt.Stats().Switches, d2.Stats().Switches)
	}
	simpl, n := d2.EliminateRedundantSwitches()
	if n == 0 {
		t.Error("iterative elimination removed nothing")
	}
	if simpl.Stats().Switches != dOpt.Stats().Switches {
		t.Errorf("iterative (%d switches) != direct (%d)", simpl.Stats().Switches, dOpt.Stats().Switches)
	}
}

func TestProfileChartFacade(t *testing.T) {
	p, _ := Compile(exampleSrc)
	d, _ := p.Translate(Options{Schema: Schema2})
	r, err := d.Run(RunConfig{MemLatency: 4})
	if err != nil {
		t.Fatal(err)
	}
	chart := ProfileChart(r.Profile, r.Cycles, 40, 6)
	if !strings.Contains(chart, "#") {
		t.Errorf("chart malformed:\n%s", chart)
	}
}

func TestLegalizeSynchTreesFacade(t *testing.T) {
	src := `
var a, b, c, e
alias a ~ e
alias b ~ e
alias c ~ e
e := a + b + c
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Translate(Options{Schema: Schema3})
	if err != nil {
		t.Fatal(err)
	}
	leg, added := d.LegalizeSynchTrees()
	if added == 0 {
		t.Skip("no wide synchs in fixture")
	}
	want, err := d.Run(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := leg.Run(RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Snapshot != want.Snapshot {
		t.Error("legalization changed results")
	}
}

func TestTranslateLinkedFacade(t *testing.T) {
	src := `
var a, b
proc double(x) {
  x := x * 2
}
a := 21
call double(a)
call double(b)
b := b + a
`
	p, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p.Interpret(nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.TranslateLinked()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{EngineMachine, EngineChannels} {
		r, err := d.Run(RunConfig{Engine: e, DetectRaces: e == EngineMachine})
		if err != nil {
			t.Fatal(err)
		}
		if r.Snapshot != want.Snapshot {
			t.Errorf("engine %d: linked result differs", e)
		}
	}
	// Linked graphs are not serializable in text format v1.
	if d.Text() != "" {
		t.Error("linked graph should not serialize")
	}
	// Procedure-free programs are rejected.
	p2, _ := Compile("var x\nx := 1\n")
	if _, err := p2.TranslateLinked(); err == nil {
		t.Error("TranslateLinked must reject procedure-free programs")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("x := 1\n"); err == nil {
		t.Error("undeclared variable accepted")
	}
	if _, err := Compile("var x\nspin:\ngoto spin\n"); err == nil {
		t.Error("non-terminating CFG accepted")
	}
}

func TestVariablesAccessor(t *testing.T) {
	p, _ := Compile("var b, a\narray z[3]\nb := 1\n")
	got := p.Variables()
	if len(got) != 3 || got[0] != "b" || got[2] != "z" {
		t.Errorf("Variables() = %v", got)
	}
}
