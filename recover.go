package ctdf

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ctdf/internal/fault"
	"ctdf/internal/machcheck"
	"ctdf/internal/machine"
)

// Supervised recovery (see ROBUSTNESS.md, "Recovery").
//
// Setting RunConfig.Recovery wraps the execution in a supervisor: when a
// run aborts with a machine check classified transient — or with any
// check, if the attempt's planned fault actually fired — the supervisor
// retries it. The machine engine resumes from its last completed
// checkpoint (always pre-fault state; see internal/machine/checkpoint.go)
// so completed work is not re-executed; the channel engine has no
// checkpointable cycle structure and restarts from scratch. The paper's
// §5 determinacy condition is what makes the retry sound either way: a
// determinate dataflow graph re-executed from a consistent token snapshot
// (or from the start) must reproduce the byte-identical result.

// RecoveryPolicy configures the supervisor. The zero value of each field
// selects its default.
type RecoveryPolicy struct {
	// MaxAttempts bounds total attempts including the first (default 3).
	MaxAttempts int
	// Backoff is the flat delay between attempts (default none).
	Backoff time.Duration
	// CheckpointEvery is the machine checkpoint interval in cycles
	// (default 64). Negative disables checkpointing: machine retries then
	// restart from scratch like channel retries. Checkpointing is also
	// disabled automatically when the run is observed (Obs, Trace) or
	// race-checked, since those record events checkpoint resume would
	// replay twice.
	CheckpointEvery int
	// DeadlineFactor multiplies RunConfig.Deadline on every retry
	// (default 2) — the progress guarantee that keeps a too-tight
	// deadline from aborting each attempt at the same point forever.
	DeadlineFactor float64
	// BudgetFactor multiplies MaxCycles/MaxOps on a cycles-exceeded
	// retry (default 2), so a run aborted for exhausting its budget is
	// retried with headroom rather than re-dying identically.
	BudgetFactor float64
	// Dir, when set, spills checkpoints to disk in that directory (only
	// the most recent is kept; it is removed when the supervisor
	// returns) and resumes by reloading the file — exercising the
	// serialized format. Empty keeps checkpoints in memory.
	Dir string
}

// withDefaults resolves zero-valued policy knobs.
func (p RecoveryPolicy) withDefaults() RecoveryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.CheckpointEvery == 0 {
		p.CheckpointEvery = 64
	}
	if p.DeadlineFactor == 0 {
		p.DeadlineFactor = 2
	}
	if p.BudgetFactor == 0 {
		p.BudgetFactor = 2
	}
	return p
}

// CheckpointRef identifies a completed machine checkpoint by id and
// cycle; the cycle is a valid `ctdf replay -at` target.
type CheckpointRef struct {
	ID    int `json:"id"`
	Cycle int `json:"cycle"`
}

// RecoveryReport describes what the supervisor did.
type RecoveryReport struct {
	// Attempts is the number of attempts executed (1 = no retry needed).
	Attempts int `json:"attempts"`
	// Recovered reports that at least one attempt aborted and a later
	// attempt completed successfully.
	Recovered bool `json:"recovered"`
	// Checks lists the machine-check name of each aborted attempt, in
	// order.
	Checks []string `json:"checks,omitempty"`
	// CheckpointsTaken counts checkpoints captured across all attempts.
	CheckpointsTaken int `json:"checkpoints_taken"`
	// CheckpointUsed identifies the most recent checkpoint a retry
	// resumed from (nil when every retry restarted from scratch).
	CheckpointUsed *CheckpointRef `json:"checkpoint_used,omitempty"`
	// CyclesReplayed counts simulated cycles re-executed by retries —
	// work done by a failed attempt past its resume point (0 for the
	// channel engine, which has no cycle clock).
	CyclesReplayed int `json:"cycles_replayed"`
}

// transientChecks is the supervisor's classification table, asserted
// against ROBUSTNESS.md by a doc-sync test. Transient checks describe
// conditions a retry can plausibly outlive — stuck or lost tokens
// (injected faults and scheduling collapse manifest as deadlock), an
// expired wall clock, an exhausted cycle budget. Permanent checks
// describe structural defects — an impossible tag, a determinacy
// violation, a trapped operator, leaked tokens, a malformed
// configuration — that deterministic re-execution must reproduce.
var transientChecks = map[machcheck.Check]bool{
	machcheck.Deadlock:       true,
	machcheck.Deadline:       true,
	machcheck.CyclesExceeded: true,
	machcheck.TokenLeak:      false,
	machcheck.TagViolation:   false,
	machcheck.OperatorFault:  false,
	machcheck.Determinacy:    false,
	machcheck.InvalidConfig:  false,
}

// TransientCheck reports whether the named machine check ("deadlock",
// "deadline", ...) is classified transient — worth retrying. Independent
// of the table, the supervisor also retries any check when the attempt's
// planned fault actually fired: an injected fault is transient by
// construction, whatever check catches it.
func TransientCheck(name string) bool { return transientChecks[machcheck.Check(name)] }

// CheckClassification returns the full supervisor decision table:
// machine-check name → "transient" or "permanent", in Checks() order.
func CheckClassification() map[string]string {
	out := make(map[string]string, len(transientChecks))
	for _, c := range machcheck.Checks() {
		if transientChecks[c] {
			out[string(c)] = "transient"
		} else {
			out[string(c)] = "permanent"
		}
	}
	return out
}

// ckPlumb threads checkpoint plumbing from the supervisor into one
// machine attempt.
type ckPlumb struct {
	every  int
	sink   func(*machine.Checkpoint) error
	resume *machine.Checkpoint
}

// runSupervised executes cfg under the retry policy. Attempt 1 carries
// the fault plan; retries never re-inject (a fault plan describes one
// fault, and its site numbering counts from cycle 0 of a fresh run).
func (d *Dataflow) runSupervised(cfg RunConfig) (*Result, error) {
	pol := cfg.Recovery.withDefaults()
	rep := &RecoveryReport{}

	var inj *fault.Injector
	if cfg.Fault != nil {
		inj = fault.NewInjector(fault.Plan{Class: cfg.Fault.Class, Site: cfg.Fault.Site, Delay: cfg.Fault.Delay})
	}

	// Checkpointing is machine-only and incompatible with observation
	// (collectors and traces would record the replayed span twice) and
	// race detection (release hooks are not snapshotted).
	canCk := cfg.Engine == EngineMachine && pol.CheckpointEvery > 0 &&
		cfg.Obs == nil && cfg.Trace == nil && !cfg.DetectRaces
	var lastCk *machine.Checkpoint // in-memory mode
	var lastPath string            // on-disk mode
	if pol.Dir != "" {
		defer func() {
			if lastPath != "" {
				os.Remove(lastPath)
			}
		}()
	}
	sink := func(c *machine.Checkpoint) error {
		rep.CheckpointsTaken++
		if pol.Dir == "" {
			lastCk = c
			return nil
		}
		path := filepath.Join(pol.Dir, fmt.Sprintf("ctdf-ck-%03d.json", c.ID))
		if err := c.WriteFile(path); err != nil {
			return err
		}
		if lastPath != "" && lastPath != path {
			os.Remove(lastPath)
		}
		lastPath = path
		return nil
	}
	// loadLast returns the newest checkpoint, reloading it from disk in
	// on-disk mode so resume exercises the serialized format.
	loadLast := func() (*machine.Checkpoint, error) {
		if pol.Dir != "" && lastPath != "" {
			return machine.ReadCheckpointFile(lastPath)
		}
		return lastCk, nil
	}

	deadline := cfg.Deadline
	maxCycles, maxOps := cfg.MaxCycles, cfg.MaxOps
	for attempt := 1; ; attempt++ {
		acfg := cfg
		acfg.Deadline = deadline
		acfg.MaxCycles, acfg.MaxOps = maxCycles, maxOps
		var plumb ckPlumb
		if canCk {
			plumb.every = pol.CheckpointEvery
			plumb.sink = sink
			if attempt > 1 {
				ck, err := loadLast()
				if err != nil {
					return nil, fmt.Errorf("ctdf: reload checkpoint for retry: %w", err)
				}
				if ck != nil {
					plumb.resume = ck
					if ck.Seed != 0 {
						// Seeded checkpoints are bound to the worker
						// count that took them (per-shard RNG streams).
						acfg.Workers = ck.Workers
					}
					rep.CheckpointUsed = &CheckpointRef{ID: ck.ID, Cycle: ck.Cycle}
				}
			}
		}
		attInj := inj
		if attempt > 1 {
			attInj = nil
		}

		res, err := d.runOnce(acfg, attInj, plumb)
		rep.Attempts = attempt
		if res != nil {
			res.Recovery = rep
			if res.Fault == nil {
				res.Fault = faultReport(inj)
			}
		}
		if err == nil {
			rep.Recovered = attempt > 1
			return res, nil
		}

		name, isCheck := CheckName(err)
		if isCheck {
			rep.Checks = append(rep.Checks, name)
		}
		injected := inj != nil && inj.Injected()
		retryable := isCheck && (TransientCheck(name) || injected) &&
			!errors.Is(err, ErrInvalidConfig)
		if !retryable || attempt >= pol.MaxAttempts {
			return res, err
		}

		// Account for the work the retry will redo: everything the failed
		// attempt executed past its resume point.
		resumeCycle := 0
		if canCk {
			if ck, lerr := loadLast(); lerr == nil && ck != nil {
				resumeCycle = ck.Cycle
			}
		}
		if res != nil && res.Cycles > resumeCycle {
			rep.CyclesReplayed += res.Cycles - resumeCycle
		}
		if errors.Is(err, ErrCyclesExceeded) {
			// Raise the exhausted budget (resolving the engines' shared
			// defaults: one million cycles, ten million firings).
			if maxCycles == 0 {
				maxCycles = 1_000_000
			}
			if maxOps == 0 {
				maxOps = 10_000_000
			}
			maxCycles = int(float64(maxCycles) * pol.BudgetFactor)
			maxOps = int64(float64(maxOps) * pol.BudgetFactor)
		}
		if deadline > 0 {
			deadline = time.Duration(float64(deadline) * pol.DeadlineFactor)
		}
		if pol.Backoff > 0 {
			time.Sleep(pol.Backoff)
		}
	}
}
