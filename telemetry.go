package ctdf

import (
	"encoding/json"
	"net/http"

	"ctdf/internal/obs/telemetry"
)

// Telemetry is an engine metrics registry: attach one to RunConfig and
// the run records per-phase shard wall time, barrier waits, the
// cross-shard token-traffic matrix, matching-store depth, checkpoint
// timing (machine engine), and firing/delivery/mailbox/watchdog metrics
// (channel engine). A registry accumulates across runs, so repeated
// executions against one Telemetry build a live series — that is what
// `ctdf top` and the -metrics endpoint scrape. Nil disables everything
// at near-zero cost (see BenchmarkTelemetryDisabled). See
// OBSERVABILITY.md for the metric catalog.
type Telemetry struct {
	reg *telemetry.Registry
}

// NewTelemetry returns an empty registry.
func NewTelemetry() *Telemetry { return &Telemetry{reg: telemetry.NewRegistry()} }

// registry unwraps for engine plumbing; nil-safe.
func (t *Telemetry) registry() *telemetry.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Snapshot captures the current state of every instrument. It is safe
// to call while a run is in flight (instruments are atomics), though a
// mid-run snapshot naturally sees a cycle in progress.
func (t *Telemetry) Snapshot() *TelemetrySnapshot {
	return &TelemetrySnapshot{snap: t.reg.Snapshot()}
}

// Handler serves the registry at /metrics in OpenMetrics text format.
func (t *Telemetry) Handler() http.Handler { return telemetry.Handler(t.reg) }

// Serve starts a /metrics HTTP endpoint on addr (":0" picks a port;
// query Addr for the binding). Close the returned server to shut down
// without leaking its goroutine.
func (t *Telemetry) Serve(addr string) (*TelemetryServer, error) {
	s, err := telemetry.Serve(t.reg, addr)
	if err != nil {
		return nil, err
	}
	return &TelemetryServer{srv: s}, nil
}

// TelemetrySnapshot is a point-in-time copy of a Telemetry registry.
type TelemetrySnapshot struct {
	snap *telemetry.Snapshot
}

// OpenMetrics renders the snapshot in the OpenMetrics text exposition
// format (the /metrics wire format), terminated by "# EOF".
func (s *TelemetrySnapshot) OpenMetrics() []byte { return s.snap.OpenMetrics() }

// PhaseTable renders the human-readable per-shard phase breakdown,
// barrier waits, imbalance, and cross-shard traffic matrix.
func (s *TelemetrySnapshot) PhaseTable() string { return s.snap.PhaseTable() }

// JSON renders the snapshot as indented JSON (durations in
// nanoseconds).
func (s *TelemetrySnapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s.snap, "", "  ")
}

// MachineBreakdown extracts the machine profiler's aggregate numbers —
// per-phase nanoseconds, barrier waits, counters, and the traffic
// matrix — for in-module tooling (the bench harness); the type lives in
// the internal telemetry package.
func (s *TelemetrySnapshot) MachineBreakdown() *telemetry.MachineBreakdown {
	return s.snap.MachineBreakdown()
}

// Stable drops the wall-clock-dependent families, leaving only values
// that are byte-reproducible for a fixed worker count.
func (s *TelemetrySnapshot) Stable() *TelemetrySnapshot {
	return &TelemetrySnapshot{snap: s.snap.Stable()}
}

// Invariant additionally drops worker-topology-shaped families, leaving
// only values byte-identical at every worker count.
func (s *TelemetrySnapshot) Invariant() *TelemetrySnapshot {
	return &TelemetrySnapshot{snap: s.snap.Invariant()}
}

// TelemetryServer is a running /metrics endpoint.
type TelemetryServer struct {
	srv *telemetry.Server
}

// Addr is the bound listen address.
func (s *TelemetryServer) Addr() string { return s.srv.Addr() }

// Close stops the server and waits for its goroutine to exit.
func (s *TelemetryServer) Close() error { return s.srv.Close() }
