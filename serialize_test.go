package ctdf

import (
	"strings"
	"testing"

	"ctdf/internal/workloads"
)

// The textual graph format round-trips through the public API: translate,
// serialize, reload, run — identical results.
func TestSerializedGraphRunsIdentically(t *testing.T) {
	for _, w := range []string{"running-example", "matmul-2x2-flat", "fortran-alias", "bubble-sort"} {
		wl := workloads.MustByName(w)
		p, err := Compile(wl.Source)
		if err != nil {
			t.Fatal(err)
		}
		d, err := p.Translate(Options{Schema: Schema2Opt})
		if err != nil {
			t.Fatal(err)
		}
		want, err := d.Run(RunConfig{})
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadDataflow(strings.NewReader(d.Text()))
		if err != nil {
			t.Fatalf("%s: reload: %v", w, err)
		}
		got, err := loaded.Run(RunConfig{})
		if err != nil {
			t.Fatalf("%s: run reloaded: %v", w, err)
		}
		if got.Snapshot != want.Snapshot {
			t.Errorf("%s: reloaded graph computed a different result", w)
		}
		if got.Ops != want.Ops || got.Cycles != want.Cycles {
			t.Errorf("%s: reloaded graph has different dynamics: %d/%d vs %d/%d ops/cycles",
				w, got.Ops, got.Cycles, want.Ops, want.Cycles)
		}
	}
}

func TestListingViaFacade(t *testing.T) {
	p, err := Compile("var x\nx := x + 1\n")
	if err != nil {
		t.Fatal(err)
	}
	d, err := p.Translate(Options{Schema: Schema1})
	if err != nil {
		t.Fatal(err)
	}
	l := d.Listing()
	if !strings.Contains(l, "load x") || !strings.Contains(l, "store x") {
		t.Errorf("listing missing memory ops:\n%s", l)
	}
}

func TestLoadDataflowRejectsGarbage(t *testing.T) {
	if _, err := LoadDataflow(strings.NewReader("not a graph")); err == nil {
		t.Error("garbage accepted")
	}
}
