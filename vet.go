package ctdf

import (
	"ctdf/internal/vet"
)

// VetDiagnostic is one finding of one verification pass.
type VetDiagnostic struct {
	// Pass names the reporting pass.
	Pass string `json:"pass"`
	// Severity is "error" (a correctness condition is refuted) or
	// "warning" (missed optimization or harmless redundancy).
	Severity string `json:"severity"`
	// Check names the machine-check invariant the defect would trip at
	// run time (see the machcheck taxonomy), empty for pure warnings.
	Check string `json:"check,omitempty"`
	// Node is the dataflow node the finding anchors to, or -1.
	Node int `json:"node"`
	// Label is the node's diagnostic label ("" when Node is -1).
	Label string `json:"label,omitempty"`
	// Tok is the access token or variable involved, if any.
	Tok string `json:"tok,omitempty"`
	// Paper cites the section, figure, or theorem of the violated
	// condition.
	Paper string `json:"paper,omitempty"`
	// Msg describes the finding.
	Msg string `json:"msg"`
}

// String renders the diagnostic on one line.
func (d VetDiagnostic) String() string {
	return vet.Diagnostic{
		Pass: d.Pass, Severity: severityOf(d.Severity), Node: d.Node,
		Label: d.Label, Tok: d.Tok, Paper: d.Paper, Msg: d.Msg,
	}.String()
}

func severityOf(s string) vet.Severity {
	if s == "warning" {
		return vet.SevWarning
	}
	return vet.SevError
}

// VetSkip records a verification pass that could not run and why.
type VetSkip struct {
	Pass   string `json:"pass"`
	Reason string `json:"reason"`
}

// VetReport is the outcome of verifying one dataflow graph.
type VetReport struct {
	// Diagnostics lists every finding, grouped by pass in registry order.
	Diagnostics []VetDiagnostic `json:"diagnostics"`
	// Passes lists the passes that ran.
	Passes []string `json:"passes"`
	// Skipped lists the passes that could not run. Graphs loaded from
	// text or linked from separately compiled procedures carry no
	// translation metadata, so the translation-validation passes
	// (switch-placement, source-vectors, alias-cover) skip.
	Skipped []VetSkip `json:"skipped,omitempty"`
	// Errors counts error-severity diagnostics.
	Errors int `json:"errors"`
	// Warnings counts warning-severity diagnostics.
	Warnings int `json:"warnings"`
}

// Clean reports whether the run produced no diagnostics at all.
func (r *VetReport) Clean() bool { return len(r.Diagnostics) == 0 }

// String renders the report: one line per diagnostic, then a summary.
func (r *VetReport) String() string {
	rep := &vet.Report{Ran: r.Passes}
	for _, d := range r.Diagnostics {
		rep.Diags = append(rep.Diags, vet.Diagnostic{
			Pass: d.Pass, Severity: severityOf(d.Severity), Node: d.Node,
			Label: d.Label, Tok: d.Tok, Paper: d.Paper, Msg: d.Msg,
		})
	}
	for _, s := range r.Skipped {
		rep.Skipped = append(rep.Skipped, vet.SkippedPass{Pass: s.Pass, Reason: s.Reason})
	}
	return rep.String()
}

// Vet statically verifies the dataflow graph against the paper's
// correctness conditions: structural invariants, token balance (§3),
// determinacy (§2.2/§5), switch placement (Theorem 1, Figure 10), source
// vectors (Figure 11), and alias-cover soundness (§5, Figure 13). A graph
// produced by Translate should always verify clean; diagnostics on a
// hand-edited or transformed graph locate the violated condition. See
// ANALYSIS.md for the pass and diagnostics reference.
func (d *Dataflow) Vet() *VetReport {
	rep := vet.Run(d.res.Graph, d.res)
	out := &VetReport{
		Passes:   rep.Ran,
		Errors:   rep.Errors(),
		Warnings: len(rep.Diags) - rep.Errors(),
	}
	for _, dg := range rep.Diags {
		out.Diagnostics = append(out.Diagnostics, VetDiagnostic{
			Pass: dg.Pass, Severity: dg.Severity.String(), Check: string(dg.Check),
			Node: dg.Node, Label: dg.Label, Tok: dg.Tok, Paper: dg.Paper, Msg: dg.Msg,
		})
	}
	for _, s := range rep.Skipped {
		out.Skipped = append(out.Skipped, VetSkip{Pass: s.Pass, Reason: s.Reason})
	}
	return out
}
