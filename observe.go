// Observability surface of the public API: RunConfig.Obs turns a run
// into an observed run, Result.Obs carries its report, and CompareObs
// diffs two reports. The event schema, counter semantics, and NDJSON
// format are documented in OBSERVABILITY.md; the full machinery lives
// in internal/obs and is driven from the command line by `ctdf profile`.
package ctdf

import (
	"encoding/json"
	"io"

	"ctdf/internal/obs"
)

// ObsOptions enables observability for one Run.
type ObsOptions struct {
	// Events, when non-nil, receives the run as an NDJSON stream: one
	// "meta" line per node, one "fire"/"wait" line per event, and a
	// trailing "summary" line holding the full report.
	Events io.Writer
	// CriticalPath records the firing DAG so the report includes the
	// longest dependence chain with per-operator attribution
	// (EngineMachine only; costs one small record per firing).
	CriticalPath bool
	// Label names the run in reports and diffs (conventionally the
	// schema name); empty defaults to the engine name.
	Label string
}

// ObsReport is the structured outcome of an observed run: per-node and
// per-kind counters, the parallelism histogram, and (when requested)
// the critical path.
type ObsReport struct {
	rep *obs.Report
}

// Text renders the report for humans, showing at most top per-node rows
// (top <= 0 shows all).
func (r *ObsReport) Text(top int) string { return r.rep.Text(top) }

// JSON renders the full report as indented JSON.
func (r *ObsReport) JSON() ([]byte, error) { return json.MarshalIndent(r.rep, "", "  ") }

// NodeFirings returns per-node firing counts indexed by dataflow node
// id — identical across engines on the same graph (dataflow
// determinacy).
func (r *ObsReport) NodeFirings() []int64 { return r.rep.NodeFirings() }

// CriticalPathLength returns the longest dependence chain's length in
// cycles, or 0 when the critical path was not recorded.
func (r *ObsReport) CriticalPathLength() int64 {
	if r.rep.CriticalPath == nil {
		return 0
	}
	return r.rep.CriticalPath.Length
}

// ObsDiff is a structured comparison of two observed runs.
type ObsDiff struct {
	d *obs.Diff
}

// CompareObs diffs two reports (a the baseline, b the configuration
// under test): cycles, ops, matching waits, memory stalls, critical
// path, and per-kind firing counts.
func CompareObs(a, b *ObsReport) *ObsDiff {
	return &ObsDiff{d: obs.Compare(a.rep, b.rep)}
}

// Text renders the diff for humans.
func (d *ObsDiff) Text() string { return d.d.Text() }

// JSON renders the diff as indented JSON.
func (d *ObsDiff) JSON() ([]byte, error) { return json.MarshalIndent(d.d, "", "  ") }
