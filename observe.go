// Observability surface of the public API: RunConfig.Obs turns a run
// into an observed run, Result.Obs carries its report, and CompareObs
// diffs two reports. The event schema, counter semantics, and NDJSON
// format are documented in OBSERVABILITY.md; the full machinery lives
// in internal/obs and is driven from the command line by `ctdf profile`.
package ctdf

import (
	"encoding/json"
	"io"

	"ctdf/internal/obs"
	"ctdf/internal/obs/journal"
)

// ObsOptions enables observability for one Run.
type ObsOptions struct {
	// Events, when non-nil, receives the run as an NDJSON stream: one
	// "meta" line per node, one "fire"/"wait" line per event, and a
	// trailing "summary" line holding the full report.
	Events io.Writer
	// CriticalPath records the firing DAG so the report includes the
	// longest dependence chain with per-operator attribution
	// (EngineMachine only; costs one small record per firing).
	CriticalPath bool
	// Journal records the causal execution journal — the full provenance
	// DAG of the run plus matching-store parks — on Result.Journal
	// (EngineMachine only). It powers Explain/Impact causal queries,
	// deterministic replay, and the Chrome-trace and pprof exporters; see
	// OBSERVABILITY.md and `ctdf trace` / `ctdf replay`.
	Journal bool
	// Label names the run in reports and diffs (conventionally the
	// schema name); empty defaults to the engine name.
	Label string
}

// ExecJournal is the causal execution journal of one machine run; see
// internal/obs/journal for the full query surface (the CLI uses it
// directly) and OBSERVABILITY.md for the format.
type ExecJournal struct {
	j *journal.Journal
}

// Summary renders one line of run vitals.
func (e *ExecJournal) Summary() string { return e.j.Summary() }

// Abort returns the machine check that ended the journaled run and the
// cycle it fired at (check is "" when the run completed cleanly).
func (e *ExecJournal) Abort() (check string, cycle int) {
	return e.j.AbortCheck, e.j.AbortCycle
}

// WriteFile saves the journal as NDJSON, gzipped when path ends ".gz".
func (e *ExecJournal) WriteFile(path string) error { return e.j.WriteFile(path) }

// Explain renders the backward cause cone of the firings matching spec
// ("d10@0.1", "store x", "#42"): every firing whose value transitively
// flowed into them. maxDepth <= 0 means unlimited.
func (e *ExecJournal) Explain(spec string, maxDepth int) (string, error) {
	ids, err := journal.ResolveAnchor(e.j, spec)
	if err != nil {
		return "", err
	}
	c, err := journal.Explain(e.j, ids)
	if err != nil {
		return "", err
	}
	return c.Summary() + "\n" + c.Text(maxDepth), nil
}

// Impact renders the forward slice of the firings matching spec: every
// firing they transitively fed.
func (e *ExecJournal) Impact(spec string, maxDepth int) (string, error) {
	ids, err := journal.ResolveAnchor(e.j, spec)
	if err != nil {
		return "", err
	}
	c, err := journal.Impact(e.j, ids)
	if err != nil {
		return "", err
	}
	return c.Summary() + "\n" + c.Text(maxDepth), nil
}

// Replay re-executes the machine under the journal's recorded
// configuration and diffs the runs firing by firing; diverged is false
// when the replay reproduced the recording exactly.
func (e *ExecJournal) Replay() (report string, diverged bool, err error) {
	rr, err := journal.Replay(e.j)
	if err != nil {
		return "", false, err
	}
	return rr.Text(), len(rr.Divergences) > 0, nil
}

// StateAt renders the machine state at one cycle — firings in flight,
// live tokens, and matching-store contents — reconstructed from the
// journal without re-execution.
func (e *ExecJournal) StateAt(cycle int) (string, error) {
	st, err := e.j.StateAt(cycle)
	if err != nil {
		return "", err
	}
	return st.Text(e.j), nil
}

// WriteChromeTrace exports the journal as Chrome Trace Event JSON,
// loadable at ui.perfetto.dev.
func (e *ExecJournal) WriteChromeTrace(w io.Writer) error { return e.j.WriteChromeTrace(w) }

// WritePprof exports the journal as a gzipped pprof profile accepted by
// `go tool pprof`.
func (e *ExecJournal) WritePprof(w io.Writer) error { return e.j.WritePprof(w) }

// ObsReport is the structured outcome of an observed run: per-node and
// per-kind counters, the parallelism histogram, and (when requested)
// the critical path.
type ObsReport struct {
	rep *obs.Report
}

// Text renders the report for humans, showing at most top per-node rows
// (top <= 0 shows all).
func (r *ObsReport) Text(top int) string { return r.rep.Text(top) }

// JSON renders the full report as indented JSON.
func (r *ObsReport) JSON() ([]byte, error) { return json.MarshalIndent(r.rep, "", "  ") }

// NodeFirings returns per-node firing counts indexed by dataflow node
// id — identical across engines on the same graph (dataflow
// determinacy).
func (r *ObsReport) NodeFirings() []int64 { return r.rep.NodeFirings() }

// CriticalPathLength returns the longest dependence chain's length in
// cycles, or 0 when the critical path was not recorded.
func (r *ObsReport) CriticalPathLength() int64 {
	if r.rep.CriticalPath == nil {
		return 0
	}
	return r.rep.CriticalPath.Length
}

// ObsDiff is a structured comparison of two observed runs.
type ObsDiff struct {
	d *obs.Diff
}

// CompareObs diffs two reports (a the baseline, b the configuration
// under test): cycles, ops, matching waits, memory stalls, critical
// path, and per-kind firing counts.
func CompareObs(a, b *ObsReport) *ObsDiff {
	return &ObsDiff{d: obs.Compare(a.rep, b.rep)}
}

// Text renders the diff for humans.
func (d *ObsDiff) Text() string { return d.d.Text() }

// JSON renders the diff as indented JSON.
func (d *ObsDiff) JSON() ([]byte, error) { return json.MarshalIndent(d.d, "", "  ") }
