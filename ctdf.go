// Package ctdf is a from-scratch reproduction of "From Control Flow to
// Dataflow" (Micah Beck, Richard Johnson, Keshav Pingali; Cornell TR
// 89-1050 / ICPP 1990): a compiler from a small imperative language to
// dataflow graphs executable on an explicit-token-store dataflow machine,
// together with two execution engines and the program analyses the
// translation schemas rest on.
//
// The pipeline is Compile → Translate → Run:
//
//	p, _ := ctdf.Compile(src)              // parse + control-flow graph
//	d, _ := p.Translate(ctdf.Options{Schema: ctdf.Schema2Opt})
//	r, _ := d.Run(ctdf.RunConfig{})        // ETS machine simulation
//	fmt.Println(r.Snapshot, r.Cycles)
//
// Five translation schemas are available: Schema1 circulates a single
// access token (sequential semantics, §2.3); Schema2 circulates one token
// per variable (§3); Schema2Opt is the direct optimized construction of
// §4.2 driven by switch placement (Figure 10) and source vectors (Figure
// 11); Schema3 and Schema3Opt handle aliasing with per-cover-element
// tokens (§5). The §6 parallelizing transformations — memory-operation
// elimination, read parallelization, and array store parallelization
// (Figure 14) — compose with the schemas through Options.
package ctdf

import (
	"fmt"
	"io"
	"time"

	"ctdf/internal/analysis"
	"ctdf/internal/cfg"
	"ctdf/internal/chanexec"
	"ctdf/internal/dfg"
	"ctdf/internal/fault"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/machine"
	"ctdf/internal/obs"
	"ctdf/internal/obs/journal"
	graphopt "ctdf/internal/opt"
	"ctdf/internal/translate"
)

// Schema selects a translation schema (see the package comment).
type Schema int

// Translation schemas, in increasing order of exposed parallelism.
const (
	// Schema1 circulates a single access token: the dataflow graph
	// executes statements strictly in sequence (§2.3).
	Schema1 Schema = iota
	// Schema2 circulates one access token per variable (§3).
	Schema2
	// Schema2Opt is the §4.2 direct construction without redundant
	// switches.
	Schema2Opt
	// Schema3 circulates one access token per cover element of the
	// program's alias structure (§5).
	Schema3
	// Schema3Opt is Schema3 with computed switch placement.
	Schema3Opt
)

// String returns the schema's canonical name.
func (s Schema) String() string { return toInternalSchema(s).String() }

// ParseSchema parses a schema name ("schema1", "schema2", "schema2-opt",
// "schema3", "schema3-opt").
func ParseSchema(name string) (Schema, error) {
	in, err := translate.ParseSchema(name)
	if err != nil {
		return 0, err
	}
	for _, s := range []Schema{Schema1, Schema2, Schema2Opt, Schema3, Schema3Opt} {
		if toInternalSchema(s) == in {
			return s, nil
		}
	}
	return 0, fmt.Errorf("ctdf: unknown schema %q", name)
}

func toInternalSchema(s Schema) translate.Schema {
	switch s {
	case Schema1:
		return translate.Schema1
	case Schema2:
		return translate.Schema2
	case Schema2Opt:
		return translate.Schema2Opt
	case Schema3:
		return translate.Schema3
	case Schema3Opt:
		return translate.Schema3Opt
	}
	return translate.Schema2
}

// CoverKind selects the cover parameterizing Schema 3 (Definition 7): the
// parallelism/synchronization tradeoff of §5.
type CoverKind int

// Cover choices.
const (
	// CoverSingleton has one token per variable: maximal parallelism,
	// |[x]| token collections per operation on aliased x.
	CoverSingleton CoverKind = iota
	// CoverClass has one token per distinct alias class.
	CoverClass
	// CoverMonolithic has a single token for all of V: one collection per
	// operation, no memory parallelism.
	CoverMonolithic
)

// Options configures a translation.
type Options struct {
	Schema Schema
	// Cover selects the Schema 3 cover (ignored by other schemas).
	Cover CoverKind
	// EliminateMemory applies §6.1 to unaliased scalars (Schema2 and
	// Schema2Opt only): their loads and stores disappear and values ride
	// the token lines.
	EliminateMemory bool
	// ParallelReads applies §6.2: maximal within-statement load sequences
	// run in parallel on replicated access tokens.
	ParallelReads bool
	// ParallelArrayStores applies §6.3 (Figure 14) to loops whose array
	// stores are provably independent.
	ParallelArrayStores bool
	// UseIStructures gives provably write-once arrays I-structure
	// semantics (§6.3): reads and writes drop their access tokens and the
	// memory defers premature reads, letting consumers overlap producers.
	UseIStructures bool
	// Optimize, when > 0, runs the post-translation graph optimizer on
	// the translated graph: redundant switch/merge pairs sink away
	// (Figure 9), merge chains flatten, single-consumer pure operator
	// trees fuse into one-firing super-operators, and orphaned value
	// chains are deleted. The result computes the same store on both
	// engines; every removal is recorded in a certificate that Vet
	// validates against its own recomputed §4 placement. Level 1 runs
	// the full pipeline. Translate only (TranslateLinked graphs pin node
	// ids through call linkage and are not optimizable).
	Optimize int
}

// Engine selects an execution engine.
type Engine int

// Execution engines.
const (
	// EngineMachine is the cycle-driven explicit-token-store simulator; it
	// reports timing statistics (cycles, parallelism profile).
	EngineMachine Engine = iota
	// EngineChannels runs one goroutine per operator with channel-style
	// mailboxes; it reports only operation counts.
	EngineChannels
)

// RunConfig configures an execution.
type RunConfig struct {
	Engine Engine
	// Processors bounds operations issued per cycle; 0 = unlimited
	// (critical-path measurement). EngineMachine only.
	Processors int
	// MemLatency is the split-phase memory latency in cycles (default 1).
	// EngineMachine only.
	MemLatency int
	// Binding maps variable names to a canonical representative; names
	// sharing a representative share one memory location. Only declared
	// aliases may share. Nil keeps every name distinct.
	Binding map[string]string
	// RandomSeed, when nonzero, randomizes the machine's issue order (the
	// result must not change — dataflow execution is determinate).
	RandomSeed int64
	// DetectRaces makes the machine verify that no two memory operations
	// on one location ever overlap unless both are reads.
	DetectRaces bool
	// ParallelIssue evaluates the pure operators of large machine issue
	// batches on a host worker pool; the simulated execution is
	// observably identical, it just finishes sooner. EngineMachine only;
	// ignored while fault injection is active.
	ParallelIssue bool
	// Workers, when > 1, runs the sharded multi-core machine: nodes are
	// partitioned across Workers shared-nothing shards and each cycle's
	// pure firings and token deliveries execute on per-shard host
	// workers. The simulated execution is byte-identical to the
	// sequential engine at every worker count (see SCALING.md).
	// EngineMachine only; ignored while fault injection is active.
	Workers int
	// MaxCycles / MaxOps bound the execution (defaults: one million
	// cycles, ten million firings).
	MaxCycles int
	MaxOps    int64
	// Deadline bounds wall-clock execution (0 = none). The machine
	// simulator reports ErrDeadline on expiry; the channel engine has no
	// clock, so its deadline is a progress-aware deadlock watchdog — it
	// aborts only a run that delivered no token for a full Deadline
	// window, reporting ErrDeadlock with per-mailbox diagnostics. A live
	// run keeps extending it.
	Deadline time.Duration
	// Fault, when non-nil, injects one deterministic fault into the run
	// (see FaultPlan, ROBUSTNESS.md, and the `ctdf chaos` command);
	// Result.Fault reports what happened.
	Fault *FaultPlan
	// Trace, when non-nil, receives one line per operator firing
	// (EngineMachine only).
	Trace io.Writer
	// Obs, when non-nil, makes this an observed run: Result.Obs carries
	// per-node counters, the parallelism histogram, and (if requested)
	// the critical path; Obs.Events streams NDJSON. See OBSERVABILITY.md.
	Obs *ObsOptions
	// Telemetry, when non-nil, records engine metrics into the given
	// registry: per-phase shard wall time, barrier waits, the
	// cross-shard traffic matrix, matching-store depth, and checkpoint
	// timing on the machine engine; firings, deliveries, mailbox depth,
	// and watchdog headroom on the channel engine. The registry
	// accumulates across runs and can be scraped live. See
	// OBSERVABILITY.md.
	Telemetry *Telemetry
	// Recovery, when non-nil, supervises the run: aborts whose machine
	// check is classified transient (or whose planned fault actually
	// fired) are retried — the machine engine resumes from its last
	// checkpoint, the channel engine restarts from scratch — and
	// Result.Recovery reports what happened. See RecoveryPolicy and
	// ROBUSTNESS.md.
	Recovery *RecoveryPolicy
}

// Program is a compiled source program: the AST and its statement-level
// control-flow graph.
type Program struct {
	prog *lang.Program
	cfg  *cfg.Graph
}

// Compile parses and checks source text and builds its control-flow graph.
func Compile(src string) (*Program, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build(prog)
	if err != nil {
		return nil, err
	}
	return &Program{prog: prog, cfg: g}, nil
}

// Variables returns the declared variable names (scalars then arrays).
func (p *Program) Variables() []string { return p.prog.AllNames() }

// HasProcedures reports whether the program declares procedures; such
// programs translate through TranslateLinked rather than Translate.
func (p *Program) HasProcedures() bool { return len(p.prog.Procs()) > 0 }

// ProcAliases describes the alias structure a procedure's formals inherit
// from the program's call sites (§5): for each formal, its alias class
// restricted to the formals.
type ProcAliases struct {
	Proc    string
	Formals []string
	// Class[f] lists the formals aliased with f (including f).
	Class map[string][]string
}

// DeriveAliases computes the alias structure of every procedure from the
// program's call sites — the paper's SUBROUTINE F(X,Y,Z) example: CALL
// F(A,B,A) and CALL F(C,D,D) give [X]={X,Z}, [Y]={Y,Z}, [Z]={X,Y,Z}.
func (p *Program) DeriveAliases() ([]ProcAliases, error) {
	derived, err := analysis.DeriveAliasStructures(p.prog)
	if err != nil {
		return nil, err
	}
	var out []ProcAliases
	for _, pr := range p.prog.Procs() {
		as := derived[pr.Name]
		pa := ProcAliases{Proc: pr.Name, Formals: append([]string(nil), pr.Params...), Class: map[string][]string{}}
		for _, f := range pr.Params {
			var class []string
			for _, g := range pr.Params {
				if as.Related(f, g) {
					class = append(class, g)
				}
			}
			pa.Class[f] = class
		}
		out = append(out, pa)
	}
	return out, nil
}

// ControlFlowDOT renders the control-flow graph in Graphviz format.
func (p *Program) ControlFlowDOT() string { return p.cfg.DOT() }

// Interpret executes the program with conventional sequential semantics
// (the von Neumann baseline and correctness oracle).
func (p *Program) Interpret(binding map[string]string) (*Result, error) {
	r, err := interp.Run(p.cfg, interp.Options{Binding: interp.Binding(binding)})
	if err != nil {
		return nil, err
	}
	return &Result{Snapshot: r.Store.Snapshot(), Ops: r.Statements}, nil
}

// TranslateLinked compiles the program with separate procedure
// compilation: every procedure body appears once in the dataflow graph and
// each call executes it under a fresh activation context (§2.2), so
// concurrent calls overlap and the graph grows with the number of
// procedures rather than call sites. The §6 transformations and Schema
// selection do not apply (bodies use the optimized construction with
// call-site-derived alias structures). The program must declare at least
// one procedure.
func (p *Program) TranslateLinked() (*Dataflow, error) {
	lr, err := translate.TranslateLinked(p.prog)
	if err != nil {
		return nil, err
	}
	res := &translate.Result{
		Graph:       lr.Graph,
		Universe:    lr.MainUniverse,
		ValueTokens: lr.ValueTokens,
	}
	return &Dataflow{res: res}, nil
}

// Translate builds the dataflow graph for the program under opt.
func (p *Program) Translate(opt Options) (*Dataflow, error) {
	iopt := translate.Options{
		Schema:              toInternalSchema(opt.Schema),
		EliminateMemory:     opt.EliminateMemory,
		ParallelReads:       opt.ParallelReads,
		ParallelArrayStores: opt.ParallelArrayStores,
		UseIStructures:      opt.UseIStructures,
	}
	if opt.Schema == Schema3 || opt.Schema == Schema3Opt {
		as := analysis.NewAliasStructure(p.prog)
		switch opt.Cover {
		case CoverSingleton:
			iopt.Cover = analysis.SingletonCover(as)
		case CoverClass:
			iopt.Cover = analysis.ClassCover(as)
		case CoverMonolithic:
			iopt.Cover = analysis.MonolithicCover(as)
		default:
			return nil, fmt.Errorf("ctdf: unknown cover kind %d", opt.Cover)
		}
	}
	iopt.Optimize = opt.Optimize
	res, err := translate.Translate(p.cfg, iopt)
	if err != nil {
		return nil, err
	}
	d := &Dataflow{res: res}
	if opt.Optimize > 0 {
		if _, err := d.Optimize(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// OptPass reports one optimizer pass's activity for Optimize.
type OptPass struct {
	Name     string
	Rewrites int
}

// Optimize runs the graph optimizer pipeline over the dataflow graph in
// place (idempotently — a second call finds nothing) and returns the
// per-pass rewrite counts in pipeline order. The optimized graph stays
// Vet-clean: the removals are certified and checked, not trusted.
func (d *Dataflow) Optimize() ([]OptPass, error) {
	cert, err := graphopt.Run(d.res)
	if err != nil {
		return nil, err
	}
	out := make([]OptPass, len(cert.Passes))
	for i, p := range cert.Passes {
		out[i] = OptPass{Name: p.Name, Rewrites: p.Rewrites}
	}
	return out, nil
}

// Dataflow is a translated dataflow program graph.
type Dataflow struct {
	res *translate.Result
}

// GraphStats summarizes dataflow graph size.
type GraphStats struct {
	Nodes    int
	Arcs     int
	Switches int
	Merges   int
	Synchs   int
	Loads    int
	Stores   int
}

// Stats returns size statistics of the dataflow graph.
func (d *Dataflow) Stats() GraphStats {
	s := d.res.Graph.Stats()
	return GraphStats{
		Nodes: s.Nodes, Arcs: s.Arcs, Switches: s.Switches,
		Merges: s.Merges, Synchs: s.Synchs, Loads: s.Loads, Stores: s.Stores,
	}
}

// DOT renders the dataflow graph in Graphviz format (dummy access-token
// arcs dashed, as in the paper's figures).
func (d *Dataflow) DOT() string { return d.res.Graph.DOT() }

// Text serializes the dataflow graph in the loadable textual format (see
// LoadDataflow).
func (d *Dataflow) Text() string { return dfg.Text(d.res.Graph) }

// Listing renders the dataflow graph as a per-node assembly-style listing
// (operator plus destination ports).
func (d *Dataflow) Listing() string { return dfg.Listing(d.res.Graph) }

// ProfileChart renders a parallelism profile (Result.Profile) as an ASCII
// bar chart: columns are time buckets, bar height is operations issued.
func ProfileChart(profile []int, cycles, width, height int) string {
	return machine.Stats{Profile: profile, Cycles: cycles}.ProfileChart(width, height)
}

// LoadDataflow parses a dataflow graph serialized by Text. The result can
// be Run but carries no translation metadata (no §6.1 value-token
// patching; Tokens and IStructures are empty).
func LoadDataflow(r io.Reader) (*Dataflow, error) {
	g, err := dfg.ParseText(r)
	if err != nil {
		return nil, err
	}
	res := &translate.Result{Graph: g, ValueTokens: map[string]string{}}
	return &Dataflow{res: res}, nil
}

// Tokens returns the access-token universe of the translation.
func (d *Dataflow) Tokens() []string { return append([]string(nil), d.res.Universe...) }

// IStructures returns the arrays the write-once analysis gave I-structure
// semantics.
func (d *Dataflow) IStructures() []string { return append([]string(nil), d.res.IStructures...) }

// LegalizeSynchTrees decomposes every synch collector wider than two
// inputs into a balanced tree of two-input synchs — the machine-level form
// an explicit token store (two-operand matching) requires. Returns the
// legalized graph and the number of synchs added.
func (d *Dataflow) LegalizeSynchTrees() (*Dataflow, int) {
	g, n := translate.LegalizeSynchTrees(d.res.Graph)
	res := *d.res
	res.Graph = g
	return &Dataflow{res: &res}, n
}

// EliminateRedundantSwitches applies the iterative switch-merge
// elimination of §4 and returns the simplified graph and the number of
// switches removed. On acyclic programs the result matches the direct
// Schema2Opt construction.
func (d *Dataflow) EliminateRedundantSwitches() (*Dataflow, int) {
	g, n := translate.EliminateRedundantSwitches(d.res.Graph)
	res := *d.res
	res.Graph = g
	return &Dataflow{res: &res}, n
}

// Result is the outcome of an execution.
type Result struct {
	// Snapshot is the final program state rendered deterministically, one
	// "name=value" line per variable.
	Snapshot string
	// Cycles is the machine execution time (0 for EngineChannels and the
	// interpreter).
	Cycles int
	// Ops counts operator firings (or interpreted statements).
	Ops int
	// MemOps counts load/store firings (EngineMachine only).
	MemOps int
	// MaxParallelism and AvgParallelism describe the parallelism profile
	// (EngineMachine only).
	MaxParallelism int
	AvgParallelism float64
	// PeakMatchStore is the peak number of partially matched activations
	// in the explicit token store (EngineMachine only).
	PeakMatchStore int
	// Profile is the number of operations issued per cycle (EngineMachine
	// only, truncated for very long runs).
	Profile []int
	// Obs is the observability report (nil unless RunConfig.Obs was set).
	Obs *ObsReport
	// Journal is the causal execution journal (nil unless
	// RunConfig.Obs.Journal was set; EngineMachine only).
	Journal *ExecJournal
	// Fault reports the fault injector's view of the run (nil unless
	// RunConfig.Fault was set).
	Fault *FaultReport
	// Checkpoint identifies the last completed machine checkpoint (nil
	// unless checkpointing ran, i.e. under RunConfig.Recovery). On an
	// aborted run it names the last good pre-abort state — point `ctdf
	// replay -at` at its cycle to reconstruct it.
	Checkpoint *CheckpointRef
	// Recovery reports the supervisor's attempts (nil unless
	// RunConfig.Recovery was set).
	Recovery *RecoveryReport
}

// Run executes the dataflow graph. When the run aborts with a machine
// check (see the Err* sentinels), the returned *Result is non-nil and
// carries the partial execution state — final store so far, op counts,
// and the observability report — so failed runs stay inspectable. With
// RunConfig.Recovery set, transient aborts are retried before the run is
// declared failed.
func (d *Dataflow) Run(cfg RunConfig) (*Result, error) {
	if cfg.Recovery != nil {
		return d.runSupervised(cfg)
	}
	var inj *fault.Injector
	if cfg.Fault != nil {
		inj = fault.NewInjector(fault.Plan{Class: cfg.Fault.Class, Site: cfg.Fault.Site, Delay: cfg.Fault.Delay})
	}
	return d.runOnce(cfg, inj, ckPlumb{})
}

// runOnce executes a single attempt: cfg, the attempt's injector (nil
// when faults are off or this is a supervised retry), and the
// supervisor's checkpoint plumbing (zero value when checkpointing is
// off).
func (d *Dataflow) runOnce(cfg RunConfig, inj *fault.Injector, ck ckPlumb) (*Result, error) {
	switch cfg.Engine {
	case EngineMachine:
		var col *obs.Collector
		var rec *journal.Recorder
		if cfg.Obs != nil {
			opts := obs.Options{CriticalPath: cfg.Obs.CriticalPath}
			if cfg.Obs.Journal {
				// The journal captures the full run configuration so Replay
				// can re-execute it bit-for-bit, fault plan included.
				jcfg := journal.Config{
					Processors: cfg.Processors,
					MemLatency: cfg.MemLatency,
					MaxCycles:  cfg.MaxCycles,
					MaxOps:     cfg.MaxOps,
					RandomSeed: cfg.RandomSeed,
					Workers:    cfg.Workers,
					Binding:    cfg.Binding,
				}
				if cfg.Fault != nil {
					jcfg.FaultClass = string(cfg.Fault.Class)
					jcfg.FaultSite = cfg.Fault.Site
					jcfg.FaultDelay = cfg.Fault.Delay
				}
				rec = journal.NewRecorder(d.res.Graph, cfg.Obs.Label, jcfg)
				opts.Journal = rec
			}
			col = obs.NewCollector(d.res.Graph, opts)
			if cfg.Obs.Events != nil {
				if err := obs.WriteMeta(cfg.Obs.Events, col.Meta()); err != nil {
					return nil, err
				}
				col.AddSink(obs.NewNDJSONSink(cfg.Obs.Events))
			}
		}
		out, err := machine.Run(d.res.Graph, machine.Config{
			Processors:      cfg.Processors,
			MemLatency:      cfg.MemLatency,
			MaxCycles:       cfg.MaxCycles,
			MaxOps:          cfg.MaxOps,
			Deadline:        cfg.Deadline,
			Inject:          inj,
			Binding:         interp.Binding(cfg.Binding),
			RandomSeed:      cfg.RandomSeed,
			DetectRaces:     cfg.DetectRaces,
			ParallelIssue:   cfg.ParallelIssue,
			Workers:         cfg.Workers,
			Trace:           cfg.Trace,
			Collector:       col,
			Telemetry:       cfg.Telemetry.registry(),
			CheckpointEvery: ck.every,
			CheckpointSink:  ck.sink,
			Resume:          ck.resume,
		})
		if out == nil {
			// Validation failed before the simulation started.
			return nil, err
		}
		res := &Result{
			Snapshot:       translate.FinalSnapshot(d.res, out.Store, out.EndValues),
			Cycles:         out.Stats.Cycles,
			Ops:            out.Stats.Ops,
			MemOps:         out.Stats.MemOps,
			MaxParallelism: out.Stats.MaxParallelism,
			AvgParallelism: out.Stats.AvgParallelism(),
			PeakMatchStore: out.Stats.PeakMatchStore,
			Profile:        out.Stats.Profile,
			Fault:          faultReport(inj),
		}
		if out.Checkpoint != nil {
			res.Checkpoint = &CheckpointRef{ID: out.Checkpoint.ID, Cycle: out.Checkpoint.Cycle}
		}
		if col != nil {
			rep := col.Report(out.Stats.Cycles, out.Stats.Profile)
			rep.Engine = "machine"
			rep.Schema = cfg.Obs.Label
			if cfg.Obs.Events != nil {
				if werr := obs.WriteSummary(cfg.Obs.Events, rep); werr != nil && err == nil {
					err = werr
				}
			}
			res.Obs = &ObsReport{rep: rep}
		}
		if rec != nil {
			res.Journal = &ExecJournal{j: rec.Finish(out.Stats.Cycles)}
		}
		return res, err
	case EngineChannels:
		var counters *obs.NodeCounters
		if cfg.Obs != nil {
			counters = obs.NewNodeCounters(d.res.Graph.NumNodes())
		}
		out, err := chanexec.Run(d.res.Graph, chanexec.Config{
			Binding:   interp.Binding(cfg.Binding),
			MaxOps:    cfg.MaxOps,
			Deadline:  cfg.Deadline,
			Inject:    inj,
			Counters:  counters,
			Telemetry: cfg.Telemetry.registry(),
		})
		if out == nil {
			// Validation failed before any worker started.
			return nil, err
		}
		res := &Result{
			Snapshot: translate.FinalSnapshot(d.res, out.Store, out.EndValues),
			Ops:      int(out.Ops),
			Fault:    faultReport(inj),
		}
		if counters != nil {
			rep := obs.NewCountersReport(d.res.Graph.Meta(), counters.Firings(), counters.Clocks())
			rep.Engine = "channels"
			rep.Schema = cfg.Obs.Label
			if cfg.Obs.Events != nil {
				if werr := obs.WriteMeta(cfg.Obs.Events, d.res.Graph.Meta()); werr != nil && err == nil {
					err = werr
				}
				if werr := obs.WriteSummary(cfg.Obs.Events, rep); werr != nil && err == nil {
					err = werr
				}
			}
			res.Obs = &ObsReport{rep: rep}
		}
		return res, err
	}
	return nil, fmt.Errorf("ctdf: unknown engine %d", cfg.Engine)
}

// faultReport summarizes an injector's run (nil when injection is off).
func faultReport(inj *fault.Injector) *FaultReport {
	if inj == nil {
		return nil
	}
	return &FaultReport{Class: inj.Class(), Sites: inj.Sites(), Injected: inj.Injected()}
}

// graph exposes the underlying dataflow graph to the module's own
// commands and benchmarks.
func (d *Dataflow) graph() *dfg.Graph { return d.res.Graph }
