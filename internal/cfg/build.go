package cfg

import (
	"fmt"

	"ctdf/internal/lang"
)

// Build lowers a checked program into its statement-level CFG. Structured
// if/while statements are lowered to forks and joins; labels become joins;
// gotos become edges. Unreachable statements are pruned (a statement
// directly after an unconditional goto and not labeled can never execute).
// The resulting graph satisfies Graph.Validate; in particular every node
// lies on some path from start to end, so programs that cannot terminate
// are rejected.
func Build(prog *lang.Program) (*Graph, error) {
	// Procedure calls are expanded by reference-parameter substitution
	// before control-flow construction (the alias structures they induce
	// are recovered by analysis.DeriveAliasStructures for the paper's
	// separate-compilation view, §5).
	prog, err := prog.Inline()
	if err != nil {
		return nil, err
	}
	return buildCFG(prog, false)
}

// BuildSeparate builds the CFG without inlining: call statements become
// KindCall nodes, for the linked (separate-compilation) translation. The
// given statement list is used as the body (the program's own body for
// the main unit, a procedure's body for a callee unit).
func BuildSeparate(prog *lang.Program, body []lang.Stmt) (*Graph, error) {
	unit := *prog
	unit.Body = body
	return buildCFG(&unit, true)
}

func buildCFG(prog *lang.Program, separate bool) (*Graph, error) {
	b := &builder{g: NewGraph(prog), labels: map[string]int{}, separate: separate}
	// Pre-create a join node for every label so forward gotos resolve.
	b.collectLabels(prog.Body)
	b.labels["end"] = b.g.End

	start := b.g.Nodes[b.g.Start]
	start.Succs = []int{-1, -1} // slot 0: program entry, slot 1: conventional edge to end
	frontier := []pending{{b.g.Start, 0}}
	frontier = b.stmts(prog.Body, frontier)
	// Whatever still dangles falls through to end.
	for _, p := range frontier {
		b.wire(p, b.g.End)
	}
	// Conventional start→end edge (paper §2.1: "an edge is added between
	// start and end, and thus start is a fork").
	b.wire(pending{b.g.Start, 1}, b.g.End)

	g, err := b.g.compact()
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build, panicking on error; for tests and fixed fixtures.
func MustBuild(prog *lang.Program) *Graph {
	g, err := Build(prog)
	if err != nil {
		panic(err)
	}
	return g
}

// pending is a dangling out-edge: slot s of node from awaits its target.
type pending struct {
	from int
	slot int
}

type builder struct {
	g        *Graph
	labels   map[string]int // label name -> join node ID
	separate bool
}

func (b *builder) collectLabels(stmts []lang.Stmt) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *lang.Label:
			j := b.g.AddNode(KindJoin)
			j.Label = x.Name
			j.Succs = []int{-1}
			b.labels[x.Name] = j.ID
		case *lang.If:
			b.collectLabels(x.Then)
			b.collectLabels(x.Else)
		case *lang.While:
			b.collectLabels(x.Body)
		}
	}
}

// wire connects a pending edge to its target node.
func (b *builder) wire(p pending, to int) {
	b.g.Nodes[p.from].Succs[p.slot] = to
	b.g.Nodes[to].Preds = append(b.g.Nodes[to].Preds, p.from)
}

func (b *builder) wireAll(ps []pending, to int) {
	for _, p := range ps {
		b.wire(p, to)
	}
}

// stmts lowers a statement list. frontier is the set of dangling edges that
// should flow into the first statement; the returned frontier dangles out
// of the last.
func (b *builder) stmts(stmts []lang.Stmt, frontier []pending) []pending {
	for _, s := range stmts {
		frontier = b.stmt(s, frontier)
	}
	return frontier
}

func (b *builder) stmt(s lang.Stmt, frontier []pending) []pending {
	switch x := s.(type) {
	case *lang.Assign:
		n := b.g.AddNode(KindAssign)
		n.Target, n.RHS = x.Name, x.Expr
		n.Succs = []int{-1}
		b.wireAll(frontier, n.ID)
		return []pending{{n.ID, 0}}

	case *lang.ArrayAssign:
		n := b.g.AddNode(KindAssign)
		n.Target, n.TargetIndex, n.RHS = x.Name, x.Index, x.Expr
		n.Succs = []int{-1}
		b.wireAll(frontier, n.ID)
		return []pending{{n.ID, 0}}

	case *lang.CallStmt:
		if !b.separate {
			panic("cfg: call statement survived inlining")
		}
		n := b.g.AddNode(KindCall)
		n.Proc, n.Args = x.Proc, append([]string(nil), x.Args...)
		n.Succs = []int{-1}
		b.wireAll(frontier, n.ID)
		return []pending{{n.ID, 0}}

	case *lang.Label:
		j := b.labels[x.Name]
		b.wireAll(frontier, j)
		return []pending{{j, 0}}

	case *lang.Goto:
		b.wireAll(frontier, b.labels[x.Label])
		return nil

	case *lang.CondGoto:
		f := b.g.AddNode(KindFork)
		f.Cond = x.Cond
		f.Succs = []int{-1, -1}
		b.wireAll(frontier, f.ID)
		b.wire(pending{f.ID, 0}, b.labels[x.True])
		b.wire(pending{f.ID, 1}, b.labels[x.False])
		return nil

	case *lang.If:
		f := b.g.AddNode(KindFork)
		f.Cond = x.Cond
		f.Succs = []int{-1, -1}
		b.wireAll(frontier, f.ID)
		thenOut := b.stmts(x.Then, []pending{{f.ID, 0}})
		elseOut := b.stmts(x.Else, []pending{{f.ID, 1}})
		switch {
		case len(thenOut) == 0:
			return elseOut
		case len(elseOut) == 0:
			return thenOut
		default:
			j := b.g.AddNode(KindJoin)
			j.Succs = []int{-1}
			b.wireAll(thenOut, j.ID)
			b.wireAll(elseOut, j.ID)
			return []pending{{j.ID, 0}}
		}

	case *lang.While:
		// header join → fork(cond); true → body → back to header;
		// false → fall through.
		h := b.g.AddNode(KindJoin)
		h.Succs = []int{-1}
		b.wireAll(frontier, h.ID)
		f := b.g.AddNode(KindFork)
		f.Cond = x.Cond
		f.Succs = []int{-1, -1}
		b.wire(pending{h.ID, 0}, f.ID)
		bodyOut := b.stmts(x.Body, []pending{{f.ID, 0}})
		b.wireAll(bodyOut, h.ID)
		return []pending{{f.ID, 1}}
	}
	panic(fmt.Sprintf("cfg: unknown statement type %T", s))
}

// compact removes nodes unreachable from start (dead code after gotos,
// labels never targeted inside dead regions) and renumbers node IDs
// densely. Dangling out-edges of reachable nodes are an error.
func (g *Graph) compact() (*Graph, error) {
	reach := map[int]bool{g.Start: true}
	stack := []int{g.Start}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Nodes[id].Succs {
			if s < 0 {
				return nil, fmt.Errorf("cfg: internal error: dangling edge out of %s", g.Nodes[id])
			}
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	remap := make([]int, len(g.Nodes))
	for i := range remap {
		remap[i] = -1
	}
	out := &Graph{Prog: g.Prog}
	for _, n := range g.Nodes {
		if reach[n.ID] {
			remap[n.ID] = len(out.Nodes)
			nn := *n
			nn.ID = remap[n.ID]
			nn.Succs = append([]int(nil), n.Succs...)
			nn.Preds = nil
			out.Nodes = append(out.Nodes, &nn)
		}
	}
	for _, n := range out.Nodes {
		for i, s := range n.Succs {
			n.Succs[i] = remap[s]
		}
	}
	// Rebuild pred lists from succ lists.
	for _, n := range out.Nodes {
		for _, s := range n.Succs {
			out.Nodes[s].Preds = append(out.Nodes[s].Preds, n.ID)
		}
	}
	out.Start = remap[g.Start]
	out.End = remap[g.End]
	return out, nil
}
