package cfg

import (
	"sort"
	"testing"

	"ctdf/internal/workloads"
)

func TestIntervalsPartition(t *testing.T) {
	// Every node lies in exactly one level-0 interval; headers are the
	// only entries.
	progs := append(workloads.All(), workloads.RandomUnstructured(5, 3))
	for _, w := range progs {
		g := build(t, w.Source)
		ivs := Intervals(g.SortedIDs(), g.Start,
			func(n int) []int { return g.Nodes[n].Succs },
			func(n int) []int { return g.Nodes[n].Preds })
		seen := map[int]int{}
		for i, iv := range ivs {
			for n := range iv.Nodes {
				if prev, dup := seen[n]; dup {
					t.Fatalf("%s: node n%d in intervals %d and %d", w.Name, n, prev, i)
				}
				seen[n] = i
			}
			// Single entry: every member other than the header has all
			// preds inside the interval.
			for n := range iv.Nodes {
				if n == iv.Header {
					continue
				}
				for _, p := range g.Nodes[n].Preds {
					if !iv.Nodes[p] {
						t.Errorf("%s: interval of n%d entered at non-header n%d (pred n%d)",
							w.Name, iv.Header, n, p)
					}
				}
			}
		}
		if len(seen) != g.Len() {
			t.Errorf("%s: intervals cover %d of %d nodes", w.Name, len(seen), g.Len())
		}
	}
}

func TestDerivedSequenceReducible(t *testing.T) {
	for _, w := range workloads.All() {
		g := build(t, w.Source)
		levels, reducible := DerivedSequence(g)
		if !reducible {
			t.Errorf("%s: derived sequence did not reduce", w.Name)
			continue
		}
		last := levels[len(levels)-1]
		if len(last) != 1 {
			t.Errorf("%s: final level has %d intervals, want 1", w.Name, len(last))
		}
		if len(last[0].Nodes) != g.Len() {
			t.Errorf("%s: final interval covers %d of %d nodes", w.Name, len(last[0].Nodes), g.Len())
		}
	}
}

func TestDerivedSequenceIrreducible(t *testing.T) {
	g := build(t, irreducibleSrc)
	if _, reducible := DerivedSequence(g); reducible {
		t.Error("irreducible graph reduced by intervals")
	}
	if _, err := CyclicIntervalHeaders(g); err == nil {
		t.Error("CyclicIntervalHeaders must fail on irreducible graphs")
	}
}

// The paper's §3 decomposition and the implementation's natural-loop view
// must agree on reducible graphs: cyclic interval headers == natural loop
// headers.
func TestIntervalsAgreeWithLoops(t *testing.T) {
	progs := workloads.All()
	for seed := int64(600); seed < 615; seed++ {
		progs = append(progs, workloads.Random(seed, 4, 2), workloads.RandomUnstructured(seed, 3))
	}
	for _, w := range progs {
		g := build(t, w.Source)
		ivHeaders, err := CyclicIntervalHeaders(g)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		// Natural loop headers: targets of back edges (h dominates source).
		dom := Dominators(g)
		headerSet := map[int]bool{}
		for _, n := range g.Nodes {
			for _, s := range n.Succs {
				if dom.Dominates(s, n.ID) {
					headerSet[s] = true
				}
			}
		}
		var loopHeaders []int
		for h := range headerSet {
			loopHeaders = append(loopHeaders, h)
		}
		sort.Ints(loopHeaders)
		if len(ivHeaders) != len(loopHeaders) {
			t.Errorf("%s: cyclic interval headers %v vs natural loop headers %v", w.Name, ivHeaders, loopHeaders)
			continue
		}
		for i := range ivHeaders {
			if ivHeaders[i] != loopHeaders[i] {
				t.Errorf("%s: cyclic interval headers %v vs natural loop headers %v", w.Name, ivHeaders, loopHeaders)
				break
			}
		}
	}
}
