package cfg

import (
	"fmt"
	"sort"
)

// This file implements the interval transformation of paper §3: identify
// the cyclic intervals of the CFG and insert loop-entry and loop-exit
// control statements so that translation Schema 2 (and the optimized
// construction) can give tokens of different iterations different tags.
//
// For reducible control-flow graphs — which the paper notes cover "most
// control-flow graphs arising from programs" — nested cyclic intervals
// coincide with natural loops, so we identify loops through the dominator
// tree: a back edge t→h (h dominates t) defines the natural loop of h.
// Arcs into the header from outside the loop are redirected to a single
// loop-entry node, all back edges are redirected to the same loop-entry
// node (flagged as iteration re-entries), and a loop-exit node is spliced
// onto every edge A→B with A inside the cyclic part and B outside.
// Irreducible graphs would require code copying (paper footnote 5); they
// are reported as an error.

// ErrIrreducible is returned (wrapped) by InsertLoopControl for CFGs whose
// cycles cannot be decomposed into nested single-entry intervals.
var ErrIrreducible = fmt.Errorf("irreducible control flow (would require code copying, paper footnote 5)")

// Loop describes one transformed loop in a CFG produced by
// InsertLoopControl.
type Loop struct {
	// Entry is the loop-entry node ID; Header the original header join it
	// feeds; Exits the loop-exit node IDs.
	Entry  int
	Header int
	Exits  []int
	// Body is the set of nodes in the cyclic part of the interval,
	// including Entry and the bodies of nested loops, excluding Exits.
	Body map[int]bool
	// Depth is the nesting depth (outermost loop = 1).
	Depth int
}

// InsertLoopControl returns a copy of g with loop-entry/loop-exit nodes
// inserted for every cyclic interval, innermost first. The input graph is
// not modified. Graphs without cycles are returned as a (validated) copy
// with no loops.
func InsertLoopControl(g *Graph) (*Graph, []Loop, error) {
	if err := checkReducible(g); err != nil {
		return nil, nil, err
	}
	out := g.Clone()
	for {
		loop, ok := findUntransformedLoop(out)
		if !ok {
			break
		}
		transformLoop(out, loop.header, loop.body, loop.backs)
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("cfg: loop transformation broke the graph: %w", err)
	}
	loops := FindLoops(out)
	return out, loops, nil
}

// Clone deep-copies the graph structure (expressions are shared; they are
// immutable after parsing).
func (g *Graph) Clone() *Graph {
	out := &Graph{Start: g.Start, End: g.End, Prog: g.Prog}
	for _, n := range g.Nodes {
		nn := *n
		nn.Succs = append([]int(nil), n.Succs...)
		nn.Preds = append([]int(nil), n.Preds...)
		if n.BackPreds != nil {
			nn.BackPreds = make(map[int]bool, len(n.BackPreds))
			for k, v := range n.BackPreds {
				nn.BackPreds[k] = v
			}
		}
		out.Nodes = append(out.Nodes, &nn)
	}
	return out
}

type rawLoop struct {
	header int
	backs  []int // back-edge sources
	body   map[int]bool
}

// findUntransformedLoop locates the smallest natural loop whose header is
// not already a loop-entry node. Returns ok=false when every cycle has
// been transformed.
func findUntransformedLoop(g *Graph) (rawLoop, bool) {
	dom := Dominators(g)
	byHeader := map[int][]int{}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			if dom.Dominates(s, n.ID) && g.Nodes[s].Kind != KindLoopEntry {
				byHeader[s] = append(byHeader[s], n.ID)
			}
		}
	}
	if len(byHeader) == 0 {
		return rawLoop{}, false
	}
	var candidates []rawLoop
	for h, backs := range byHeader {
		sort.Ints(backs)
		candidates = append(candidates, rawLoop{header: h, backs: backs, body: naturalLoop(g, h, backs)})
	}
	sort.Slice(candidates, func(i, j int) bool {
		if len(candidates[i].body) != len(candidates[j].body) {
			return len(candidates[i].body) < len(candidates[j].body)
		}
		return candidates[i].header < candidates[j].header
	})
	return candidates[0], true
}

// naturalLoop computes the natural loop of header h with the given
// back-edge sources: h plus every node that reaches a back-edge source
// without passing through h.
func naturalLoop(g *Graph, h int, backs []int) map[int]bool {
	body := map[int]bool{h: true}
	stack := append([]int(nil), backs...)
	for _, t := range backs {
		body[t] = true
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.Nodes[n].Preds {
			if !body[p] {
				body[p] = true
				stack = append(stack, p)
			}
		}
	}
	return body
}

// transformLoop inserts the loop-entry and loop-exit statements for one
// natural loop, mutating g.
func transformLoop(g *Graph, h int, body map[int]bool, backs []int) {
	le := g.AddNode(KindLoopEntry)
	le.LoopHeader = h
	le.BackPreds = map[int]bool{}

	// Redirect every edge into the header — from outside (entries) and from
	// back-edge sources (iteration) — to the loop entry.
	preds := append([]int(nil), g.Nodes[h].Preds...)
	for _, p := range preds {
		// A predecessor may have two parallel edges to h (both fork arms);
		// ReplaceEdge rewrites one occurrence per call, so loop over them.
		for contains(g.Nodes[p].Succs, h) {
			g.ReplaceEdge(p, h, le.ID)
		}
		if body[p] {
			le.BackPreds[p] = true
		}
	}
	g.AddEdge(le.ID, h)

	// Splice a loop exit onto every edge leaving the cyclic part.
	for _, a := range sortedKeys(body) {
		succs := append([]int(nil), g.Nodes[a].Succs...)
		for _, s := range succs {
			if body[s] || s == le.ID {
				continue
			}
			lx := g.AddNode(KindLoopExit)
			lx.LoopHeader = h
			g.ReplaceEdge(a, s, lx.ID)
			g.AddEdge(lx.ID, s)
		}
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// FindLoops reconstructs the Loop descriptors of a graph already
// transformed by InsertLoopControl: one per loop-entry node, innermost
// loops listed first, with nesting depths filled in.
func FindLoops(g *Graph) []Loop {
	var loops []Loop
	for _, n := range g.Nodes {
		if n.Kind != KindLoopEntry {
			continue
		}
		body := map[int]bool{n.ID: true}
		var stack []int
		for b := range n.BackPreds {
			if !body[b] {
				body[b] = true
				stack = append(stack, b)
			}
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range g.Nodes[x].Preds {
				if !body[p] {
					body[p] = true
					stack = append(stack, p)
				}
			}
		}
		l := Loop{Entry: n.ID, Header: n.Succs[0], Body: body}
		for _, b := range sortedKeys(body) {
			for _, s := range g.Nodes[b].Succs {
				if g.Nodes[s].Kind == KindLoopExit && g.Nodes[s].LoopHeader == n.Succs[0] && !body[s] {
					l.Exits = append(l.Exits, s)
				}
			}
		}
		sort.Ints(l.Exits)
		loops = append(loops, l)
	}
	// Nesting depth: count enclosing loop bodies.
	for i := range loops {
		loops[i].Depth = 1
		for j := range loops {
			if i != j && loops[j].Body[loops[i].Entry] {
				loops[i].Depth++
			}
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth > loops[j].Depth // innermost first
		}
		return loops[i].Entry < loops[j].Entry
	})
	return loops
}

// checkReducible verifies that g reduces to a single node under the
// classic T1 (self-loop removal) / T2 (single-predecessor merge)
// transformations; if not, the CFG has irreducible control flow.
func checkReducible(g *Graph) error {
	succs := map[int]map[int]bool{}
	preds := map[int]map[int]bool{}
	for _, n := range g.Nodes {
		succs[n.ID] = map[int]bool{}
		preds[n.ID] = map[int]bool{}
	}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			succs[n.ID][s] = true
			preds[s][n.ID] = true
		}
	}
	for {
		changed := false
		// T1: remove self-loops.
		for n := range succs {
			if succs[n][n] {
				delete(succs[n], n)
				delete(preds[n], n)
				changed = true
			}
		}
		// T2: merge single-pred nodes into their predecessor.
		for n := range succs {
			if n == g.Start || len(preds[n]) != 1 {
				continue
			}
			var p int
			for q := range preds[n] {
				p = q
			}
			for s := range succs[n] {
				delete(preds[s], n)
				if s != p {
					succs[p][s] = true
					preds[s][p] = true
				} else {
					// merging creates a self-loop on p
					succs[p][p] = true
					preds[p][p] = true
				}
			}
			delete(succs[p], n)
			delete(succs, n)
			delete(preds, n)
			changed = true
		}
		if !changed {
			break
		}
	}
	if len(succs) != 1 {
		return fmt.Errorf("cfg: %w", ErrIrreducible)
	}
	return nil
}
