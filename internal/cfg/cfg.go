// Package cfg implements the statement-level control-flow graph of paper
// §2.1 — nodes are assignments, forks ("if p then goto lt else goto lf"),
// and labeled joins, plus unique start and end nodes — together with the
// dominator/postdominator machinery and the interval (loop) transformation
// of §3 that inserts loop-entry and loop-exit statements.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"ctdf/internal/lang"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// CFG node kinds. Start and End are the unique initial/final nodes; by the
// paper's convention start has an extra edge directly to end (making it a
// fork for control-dependence purposes). LoopEntry and LoopExit are the
// loop control statements inserted by the interval transformation of §3.
const (
	KindStart NodeKind = iota
	KindEnd
	KindAssign
	KindFork
	KindJoin
	KindLoopEntry
	KindLoopExit
	// KindCall is a procedure call statement (separate-compilation mode
	// only; the default Build inlines calls instead).
	KindCall
)

var kindNames = map[NodeKind]string{
	KindStart: "start", KindEnd: "end", KindAssign: "assign",
	KindFork: "fork", KindJoin: "join",
	KindLoopEntry: "loop-entry", KindLoopExit: "loop-exit",
	KindCall: "call",
}

func (k NodeKind) String() string { return kindNames[k] }

// Node is a CFG node. Succs ordering is significant for forks:
// Succs[0] is the true out-direction and Succs[1] the false out-direction.
// For the start node, Succs[0] is the program entry and Succs[1] is the
// conventional edge to end.
type Node struct {
	ID   int
	Kind NodeKind

	// Assign fields (Kind == KindAssign). If TargetIndex is nil the
	// assignment is "Target := RHS"; otherwise "Target[TargetIndex] := RHS".
	Target      string
	TargetIndex lang.Expr
	RHS         lang.Expr

	// Fork field (Kind == KindFork).
	Cond lang.Expr

	// Join field: the source label, if any (debugging only).
	Label string

	// LoopEntry/LoopExit fields: the ID of the loop header this control
	// statement belongs to, and for LoopEntry the set of predecessors that
	// are loop back edges (iteration continues) as opposed to initial
	// entries.
	LoopHeader int
	BackPreds  map[int]bool

	// Call fields (Kind == KindCall).
	Proc string
	Args []string

	Succs []int
	Preds []int
}

// IsMemOp reports whether the node performs memory operations (only
// assignments and forks reference variables; joins, loop control, start
// and end do not).
func (n *Node) IsMemOp() bool { return n.Kind == KindAssign || n.Kind == KindFork }

// String renders the node for diagnostics.
func (n *Node) String() string {
	switch n.Kind {
	case KindAssign:
		if n.TargetIndex != nil {
			return fmt.Sprintf("n%d: %s[%s] := %s", n.ID, n.Target, n.TargetIndex, n.RHS)
		}
		return fmt.Sprintf("n%d: %s := %s", n.ID, n.Target, n.RHS)
	case KindFork:
		return fmt.Sprintf("n%d: fork %s", n.ID, n.Cond)
	case KindJoin:
		if n.Label != "" {
			return fmt.Sprintf("n%d: join %s", n.ID, n.Label)
		}
		return fmt.Sprintf("n%d: join", n.ID)
	case KindLoopEntry:
		return fmt.Sprintf("n%d: loop-entry(h=n%d)", n.ID, n.LoopHeader)
	case KindLoopExit:
		return fmt.Sprintf("n%d: loop-exit(h=n%d)", n.ID, n.LoopHeader)
	case KindCall:
		return fmt.Sprintf("n%d: call %s(%s)", n.ID, n.Proc, strings.Join(n.Args, ", "))
	}
	return fmt.Sprintf("n%d: %s", n.ID, n.Kind)
}

// Graph is a control-flow graph. Node IDs index into Nodes; removed nodes
// are nil-free (graphs are compacted after construction).
type Graph struct {
	Nodes []*Node
	Start int
	End   int

	// Prog is the source program the graph was built from; it supplies the
	// variable universe (names, arrays, aliases).
	Prog *lang.Program
}

// NewGraph creates an empty graph with start and end nodes and the
// conventional start→end edge. The caller wires the program entry as
// Succs[0] of start.
func NewGraph(prog *lang.Program) *Graph {
	g := &Graph{Prog: prog}
	s := g.AddNode(KindStart)
	e := g.AddNode(KindEnd)
	g.Start, g.End = s.ID, e.ID
	return g
}

// AddNode appends a new node of the given kind and returns it.
func (g *Graph) AddNode(kind NodeKind) *Node {
	n := &Node{ID: len(g.Nodes), Kind: kind}
	g.Nodes = append(g.Nodes, n)
	return n
}

// AddEdge adds the edge from→to, appending to the succ/pred lists.
func (g *Graph) AddEdge(from, to int) {
	g.Nodes[from].Succs = append(g.Nodes[from].Succs, to)
	g.Nodes[to].Preds = append(g.Nodes[to].Preds, from)
}

// Node returns the node with the given ID.
func (g *Graph) Node(id int) *Node { return g.Nodes[id] }

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.Nodes) }

// NumEdges returns the number of edges E (including the start→end edge).
func (g *Graph) NumEdges() int {
	e := 0
	for _, n := range g.Nodes {
		e += len(n.Succs)
	}
	return e
}

// ReplaceEdge rewrites the edge from→oldTo into from→newTo, preserving the
// out-direction ordering of from, and fixes the pred lists.
func (g *Graph) ReplaceEdge(from, oldTo, newTo int) {
	f := g.Nodes[from]
	found := false
	for i, s := range f.Succs {
		if s == oldTo {
			f.Succs[i] = newTo
			found = true
			break
		}
	}
	if !found {
		panic(fmt.Sprintf("cfg: no edge n%d→n%d", from, oldTo))
	}
	old := g.Nodes[oldTo]
	for i, p := range old.Preds {
		if p == from {
			old.Preds = append(old.Preds[:i], old.Preds[i+1:]...)
			break
		}
	}
	g.Nodes[newTo].Preds = append(g.Nodes[newTo].Preds, from)
}

// Refs returns the set of variable names referenced (read or written) by
// node n. Forks reference the variables read by their predicate; array
// assignments reference the array name and the variables read by the index
// and right-hand side (paper §6.3 treats an assignment to any array
// location as an operation on the entire array).
func (g *Graph) Refs(id int) map[string]bool {
	n := g.Nodes[id]
	set := map[string]bool{}
	switch n.Kind {
	case KindAssign:
		set[n.Target] = true
		if n.TargetIndex != nil {
			lang.Reads(n.TargetIndex, set)
		}
		lang.Reads(n.RHS, set)
	case KindFork:
		lang.Reads(n.Cond, set)
	}
	return set
}

// ReadSet returns the variables read by node n (for an assignment, the RHS
// and index reads; for a fork, the predicate reads).
func (g *Graph) ReadSet(id int) map[string]bool {
	n := g.Nodes[id]
	set := map[string]bool{}
	switch n.Kind {
	case KindAssign:
		if n.TargetIndex != nil {
			lang.Reads(n.TargetIndex, set)
		}
		lang.Reads(n.RHS, set)
	case KindFork:
		lang.Reads(n.Cond, set)
	}
	return set
}

// Validate checks the structural invariants the translation schemas rely
// on: a unique start with no preds, a unique end with no succs, every node
// reachable from start, end reachable from every node, fork out-degree 2,
// assignment/join/loop-control out-degree 1, and only joins, loop entries
// and end having multiple predecessors.
func (g *Graph) Validate() error {
	if g.Nodes[g.Start].Kind != KindStart || len(g.Nodes[g.Start].Preds) != 0 {
		return fmt.Errorf("cfg: malformed start node")
	}
	if g.Nodes[g.End].Kind != KindEnd || len(g.Nodes[g.End].Succs) != 0 {
		return fmt.Errorf("cfg: malformed end node")
	}
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindStart:
			if len(n.Succs) != 2 {
				return fmt.Errorf("cfg: start must have exactly 2 successors (entry and end), has %d", len(n.Succs))
			}
		case KindEnd:
		case KindFork:
			if len(n.Succs) != 2 {
				return fmt.Errorf("cfg: %s must have 2 successors, has %d", n, len(n.Succs))
			}
		default:
			if len(n.Succs) != 1 {
				return fmt.Errorf("cfg: %s must have 1 successor, has %d", n, len(n.Succs))
			}
		}
		if len(n.Preds) > 1 && n.Kind != KindJoin && n.Kind != KindLoopEntry && n.Kind != KindEnd {
			return fmt.Errorf("cfg: %s has %d predecessors but is not a join", n, len(n.Preds))
		}
		// Pred/succ lists must be consistent.
		for _, s := range n.Succs {
			if s < 0 || s >= len(g.Nodes) {
				return fmt.Errorf("cfg: %s has out-of-range successor %d", n, s)
			}
			if !contains(g.Nodes[s].Preds, n.ID) {
				return fmt.Errorf("cfg: edge n%d→n%d missing from pred list", n.ID, s)
			}
		}
		for _, p := range n.Preds {
			if !contains(g.Nodes[p].Succs, n.ID) {
				return fmt.Errorf("cfg: pred edge n%d→n%d missing from succ list", p, n.ID)
			}
		}
	}
	// Reachability: every node on some path start→end.
	fromStart := g.reachableFrom(g.Start, false)
	toEnd := g.reachableFrom(g.End, true)
	for _, n := range g.Nodes {
		if !fromStart[n.ID] {
			return fmt.Errorf("cfg: %s unreachable from start", n)
		}
		if !toEnd[n.ID] {
			return fmt.Errorf("cfg: %s cannot reach end (infinite loop?)", n)
		}
	}
	return nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// reachableFrom returns the set of nodes reachable from id, following
// successor edges, or predecessor edges when reverse is true.
func (g *Graph) reachableFrom(id int, reverse bool) map[int]bool {
	seen := map[int]bool{id: true}
	stack := []int{id}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		next := g.Nodes[n].Succs
		if reverse {
			next = g.Nodes[n].Preds
		}
		for _, s := range next {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// RPO returns node IDs in reverse postorder from start (following succs).
func (g *Graph) RPO() []int {
	seen := make([]bool, len(g.Nodes))
	var order []int
	var dfs func(int)
	dfs = func(id int) {
		seen[id] = true
		for _, s := range g.Nodes[id].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		order = append(order, id)
	}
	dfs(g.Start)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// ReverseRPO returns node IDs in reverse postorder of the reverse graph,
// starting from end (used by the postdominator computation).
func (g *Graph) ReverseRPO() []int {
	seen := make([]bool, len(g.Nodes))
	var order []int
	var dfs func(int)
	dfs = func(id int) {
		seen[id] = true
		for _, p := range g.Nodes[id].Preds {
			if !seen[p] {
				dfs(p)
			}
		}
		order = append(order, id)
	}
	dfs(g.End)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// String renders the whole graph, one node per line, in ID order.
func (g *Graph) String() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%-40s -> %v\n", n.String(), n.Succs)
	}
	return b.String()
}

// DOT renders the graph in Graphviz format.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, n := range g.Nodes {
		shape := "box"
		switch n.Kind {
		case KindFork:
			shape = "diamond"
		case KindJoin:
			shape = "circle"
		case KindStart, KindEnd:
			shape = "ellipse"
		case KindLoopEntry, KindLoopExit:
			shape = "hexagon"
		}
		fmt.Fprintf(&b, "  n%d [label=%q, shape=%s];\n", n.ID, n.String(), shape)
	}
	for _, n := range g.Nodes {
		for i, s := range n.Succs {
			label := ""
			if n.Kind == KindFork || n.Kind == KindStart {
				if i == 0 {
					label = " [label=\"T\"]"
				} else {
					label = " [label=\"F\"]"
				}
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", n.ID, s, label)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// SortedIDs returns all node IDs in ascending order (deterministic
// iteration helper).
func (g *Graph) SortedIDs() []int {
	ids := make([]int, len(g.Nodes))
	for i := range g.Nodes {
		ids[i] = i
	}
	sort.Ints(ids)
	return ids
}
