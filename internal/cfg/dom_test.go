package cfg

import (
	"testing"
)

// pathExistsAvoiding reports whether a path from src to dst exists that
// never passes through avoid (unless src or dst is avoid itself, in which
// case it must still not be an interior node).
func pathExistsAvoiding(g *Graph, src, dst, avoid int) bool {
	if src == dst {
		return true
	}
	seen := map[int]bool{src: true}
	stack := []int{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n != src && n == avoid {
			continue
		}
		for _, s := range g.Nodes[n].Succs {
			if s == dst {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// bruteDominates: a dominates b iff every path start→b passes through a.
func bruteDominates(g *Graph, a, b int) bool {
	if a == b || a == g.Start {
		return true
	}
	return !pathExistsAvoiding(g, g.Start, b, a)
}

// brutePostDominates: a postdominates b iff every path b→end passes
// through a.
func brutePostDominates(g *Graph, a, b int) bool {
	if a == b || a == g.End {
		return true
	}
	return !pathExistsAvoiding(g, b, g.End, a)
}

var domTestPrograms = []string{
	runningExample,
	"var x\nx := 1\n",
	"var a, b, c\nif a < b { c := 1 } else { c := 2 }\na := c\n",
	"var i, j\nwhile i < 10 {\n  j := 0\n  while j < 5 { j := j + 1 }\n  i := i + 1\n}\n",
	`
var x, w
x := x + 1
if w == 0 then goto l1 else goto l2
l1:
w := 1
goto l3
l2:
w := 2
l3:
x := 0
`,
	`
var a, b
top:
a := a + 1
if a < 3 then goto top else goto mid
mid:
b := b + 1
if b < 4 then goto top2 else goto end
top2:
goto mid2
mid2:
a := 0
`,
}

func TestDominatorsAgainstBruteForce(t *testing.T) {
	for _, src := range domTestPrograms {
		g := build(t, src)
		dom := Dominators(g)
		for _, a := range g.SortedIDs() {
			for _, b := range g.SortedIDs() {
				want := bruteDominates(g, a, b)
				got := dom.Dominates(a, b)
				if got != want {
					t.Errorf("prog %q: Dominates(n%d, n%d) = %v, brute force says %v", src, a, b, got, want)
				}
			}
		}
	}
}

func TestPostDominatorsAgainstBruteForce(t *testing.T) {
	for _, src := range domTestPrograms {
		g := build(t, src)
		pdom := PostDominators(g)
		for _, a := range g.SortedIDs() {
			for _, b := range g.SortedIDs() {
				want := brutePostDominates(g, a, b)
				got := pdom.Dominates(a, b)
				if got != want {
					t.Errorf("prog %q: PostDominates(n%d, n%d) = %v, brute force says %v", src, a, b, got, want)
				}
			}
		}
	}
}

func TestImmediatePostdominatorUnique(t *testing.T) {
	// Footnote 6: every node except end has a unique immediate
	// postdominator, and the relation is a tree rooted at end.
	for _, src := range domTestPrograms {
		g := build(t, src)
		pdom := PostDominators(g)
		if pdom.Root() != g.End {
			t.Errorf("postdominator root = n%d, want end n%d", pdom.Root(), g.End)
		}
		for _, n := range g.SortedIDs() {
			if n == g.End {
				if pdom.Idom[n] != -1 {
					t.Errorf("ipdom(end) = n%d, want none", pdom.Idom[n])
				}
				continue
			}
			ip := pdom.Idom[n]
			if ip < 0 {
				t.Errorf("prog %q: node n%d has no immediate postdominator", src, n)
				continue
			}
			// ip must strictly postdominate n, and every other strict
			// postdominator of n must postdominate ip.
			if !pdom.StrictlyDominates(ip, n) {
				t.Errorf("ipdom(n%d)=n%d does not strictly postdominate it", n, ip)
			}
			for _, m := range g.SortedIDs() {
				if m != n && pdom.StrictlyDominates(m, n) && !pdom.Dominates(m, ip) {
					t.Errorf("n%d strictly postdominates n%d but not its ipdom n%d", m, n, ip)
				}
			}
		}
	}
}

func TestStartIpdomIsEndByConvention(t *testing.T) {
	// Because of the conventional start→end edge, ipdom(start) = end, which
	// is what makes "between start and its immediate postdominator" cover
	// the whole program (§4.1).
	g := build(t, runningExample)
	pdom := PostDominators(g)
	if pdom.Idom[g.Start] != g.End {
		t.Errorf("ipdom(start) = n%d, want end n%d", pdom.Idom[g.Start], g.End)
	}
}

func TestDomTreeChildren(t *testing.T) {
	g := build(t, runningExample)
	dom := Dominators(g)
	kids := dom.Children()
	// Every node except the root appears exactly once as a child.
	count := 0
	for _, c := range kids {
		count += len(c)
	}
	if count != g.Len()-1 {
		t.Errorf("children count = %d, want %d", count, g.Len()-1)
	}
}
