package cfg

import (
	"testing"
	"testing/quick"

	"ctdf/internal/workloads"
)

// Property tests over random structured and unstructured programs.

func graphFromSeed(seed int64, unstructured bool) (*Graph, bool) {
	var w workloads.Workload
	if unstructured {
		w = workloads.RandomUnstructured(seed%1000, 3)
	} else {
		w = workloads.Random(seed%1000, 4, 2)
	}
	g, err := Build(w.Parse())
	if err != nil {
		return nil, false
	}
	return g, true
}

func TestQuickBuildProducesValidGraphs(t *testing.T) {
	f := func(seed int64, unstructured bool) bool {
		g, ok := graphFromSeed(seed, unstructured)
		if !ok {
			return false // generators must always produce buildable programs
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickDominatorAxioms(t *testing.T) {
	f := func(seed int64, unstructured bool) bool {
		g, ok := graphFromSeed(seed, unstructured)
		if !ok {
			return false
		}
		dom := Dominators(g)
		pdom := PostDominators(g)
		for _, n := range g.SortedIDs() {
			// start dominates everything; end postdominates everything.
			if !dom.Dominates(g.Start, n) || !pdom.Dominates(g.End, n) {
				return false
			}
			// idom is a strict dominator (except the root).
			if n != g.Start {
				if id := dom.Idom[n]; id < 0 || !dom.StrictlyDominates(id, n) {
					return false
				}
			}
			if n != g.End {
				if ip := pdom.Idom[n]; ip < 0 || !pdom.StrictlyDominates(ip, n) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickLoopControlInvariants(t *testing.T) {
	f := func(seed int64, unstructured bool) bool {
		g, ok := graphFromSeed(seed, unstructured)
		if !ok {
			return false
		}
		out, loops, err := InsertLoopControl(g)
		if err != nil {
			return false // all generated programs are reducible
		}
		if out.Validate() != nil {
			return false
		}
		// Every back edge targets a loop entry; every loop entry has at
		// least one back pred and one initial pred.
		dom := Dominators(out)
		for _, n := range out.Nodes {
			for _, s := range n.Succs {
				if dom.Dominates(s, n.ID) && out.Nodes[s].Kind != KindLoopEntry {
					return false
				}
			}
			if n.Kind == KindLoopEntry {
				backs, inits := 0, 0
				for _, p := range n.Preds {
					if n.BackPreds[p] {
						backs++
					} else {
						inits++
					}
				}
				if backs == 0 || inits == 0 {
					return false
				}
			}
		}
		// Loop bodies are disjoint or nested.
		for i := range loops {
			for j := range loops {
				if i == j {
					continue
				}
				var inter, ai, bi int
				for n := range loops[i].Body {
					if loops[j].Body[n] {
						inter++
					}
				}
				if inter == 0 {
					continue
				}
				for n := range loops[i].Body {
					if loops[j].Body[n] {
						ai++
					}
				}
				for n := range loops[j].Body {
					if loops[i].Body[n] {
						bi++
					}
				}
				if ai != len(loops[i].Body) && bi != len(loops[j].Body) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickRPOIsTopologicalIgnoringBackEdges(t *testing.T) {
	f := func(seed int64) bool {
		g, ok := graphFromSeed(seed, true)
		if !ok {
			return false
		}
		out, _, err := InsertLoopControl(g)
		if err != nil {
			return false
		}
		pos := map[int]int{}
		for i, id := range out.RPO() {
			pos[id] = i
		}
		for _, n := range out.Nodes {
			for _, s := range n.Succs {
				// Forward edges respect RPO; back edges (into loop
				// entries) are exempt.
				if out.Nodes[s].Kind == KindLoopEntry && out.Nodes[s].BackPreds[n.ID] {
					continue
				}
				if pos[s] <= pos[n.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
