package cfg

import (
	"strings"
	"testing"

	"ctdf/internal/lang"
)

// runningExample is the paper's running example program (§2.1, Figure 1).
const runningExample = `
var x, y
l: y := x + 1
x := x + 1
if x < 5 then goto l else goto end
`

func build(t *testing.T, src string) *Graph {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func countKind(g *Graph, k NodeKind) int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind == k {
			n++
		}
	}
	return n
}

func TestBuildRunningExample(t *testing.T) {
	g := build(t, runningExample)
	// Figure 1: start, end, join l, two assignments, one fork.
	if got := countKind(g, KindAssign); got != 2 {
		t.Errorf("assignments = %d, want 2", got)
	}
	if got := countKind(g, KindFork); got != 1 {
		t.Errorf("forks = %d, want 1", got)
	}
	if got := countKind(g, KindJoin); got != 1 {
		t.Errorf("joins = %d, want 1", got)
	}
	// start has the conventional extra edge to end.
	start := g.Nodes[g.Start]
	if len(start.Succs) != 2 || start.Succs[1] != g.End {
		t.Errorf("start succs = %v, want [entry end]", start.Succs)
	}
	// The fork's true arm goes to the join, false arm to end.
	for _, n := range g.Nodes {
		if n.Kind == KindFork {
			if g.Nodes[n.Succs[0]].Kind != KindJoin {
				t.Errorf("fork true arm goes to %v, want join", g.Nodes[n.Succs[0]].Kind)
			}
			if n.Succs[1] != g.End {
				t.Errorf("fork false arm goes to n%d, want end", n.Succs[1])
			}
		}
	}
}

func TestBuildStructuredIf(t *testing.T) {
	g := build(t, `
var a, b, c
if a < b {
  c := 1
} else {
  c := 2
}
a := c
`)
	if got := countKind(g, KindFork); got != 1 {
		t.Errorf("forks = %d, want 1", got)
	}
	if got := countKind(g, KindJoin); got != 1 {
		t.Errorf("joins = %d, want 1 (if-merge)", got)
	}
	if got := countKind(g, KindAssign); got != 3 {
		t.Errorf("assigns = %d, want 3", got)
	}
}

func TestBuildIfWithoutElse(t *testing.T) {
	g := build(t, "var a\nif a < 3 {\n  a := 3\n}\na := a + 1\n")
	// fork false arm must reach the statement after the if (via the merge join).
	var fork *Node
	for _, n := range g.Nodes {
		if n.Kind == KindFork {
			fork = n
		}
	}
	if fork == nil {
		t.Fatal("no fork built")
	}
	j := g.Nodes[fork.Succs[1]]
	if j.Kind != KindJoin {
		t.Fatalf("fork false arm = %v, want join", j.Kind)
	}
}

func TestBuildWhile(t *testing.T) {
	g := build(t, "var i\nwhile i < 10 {\n  i := i + 1\n}\n")
	if got := countKind(g, KindJoin); got != 1 {
		t.Errorf("joins = %d, want 1 (loop header)", got)
	}
	// The join must have two preds: entry and back edge.
	for _, n := range g.Nodes {
		if n.Kind == KindJoin && len(n.Preds) != 2 {
			t.Errorf("loop header preds = %v, want 2", n.Preds)
		}
	}
}

func TestBuildDeadCodeEliminated(t *testing.T) {
	g := build(t, `
var x
goto done
x := 42
done:
x := 1
`)
	if got := countKind(g, KindAssign); got != 1 {
		t.Errorf("assigns = %d, want 1 (x := 42 is unreachable)", got)
	}
}

func TestBuildRejectsInfiniteLoop(t *testing.T) {
	p, err := lang.Parse("var x\nspin:\nx := x + 1\ngoto spin\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(p); err == nil {
		t.Fatal("Build accepted a program that can never reach end")
	} else if !strings.Contains(err.Error(), "cannot reach end") {
		t.Errorf("error = %v, want 'cannot reach end'", err)
	}
}

func TestValidateCatchesBrokenGraphs(t *testing.T) {
	g := build(t, "var x\nx := 1\n")
	// Break the pred list.
	g.Nodes[g.End].Preds = nil
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted inconsistent pred list")
	}
}

func TestEmptyProgram(t *testing.T) {
	g := build(t, "var x\n")
	if g.Len() != 2 {
		t.Errorf("nodes = %d, want 2 (start, end)", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRefs(t *testing.T) {
	g := build(t, "var x, y\narray a[4]\na[x] := y + 1\nif x < 2 then goto end else goto end\n")
	var assign, fork *Node
	for _, n := range g.Nodes {
		switch n.Kind {
		case KindAssign:
			assign = n
		case KindFork:
			fork = n
		}
	}
	refs := g.Refs(assign.ID)
	for _, want := range []string{"a", "x", "y"} {
		if !refs[want] {
			t.Errorf("assign refs missing %s: %v", want, refs)
		}
	}
	reads := g.ReadSet(assign.ID)
	if reads["a"] {
		t.Errorf("a is written, not read, by a[x] := y+1: %v", reads)
	}
	if !reads["x"] || !reads["y"] {
		t.Errorf("reads = %v, want x and y", reads)
	}
	frefs := g.Refs(fork.ID)
	if !frefs["x"] || len(frefs) != 1 {
		t.Errorf("fork refs = %v, want {x}", frefs)
	}
}

func TestRPOAndReverseRPO(t *testing.T) {
	g := build(t, runningExample)
	rpo := g.RPO()
	if rpo[0] != g.Start {
		t.Errorf("RPO must start at start, got n%d", rpo[0])
	}
	pos := map[int]int{}
	for i, id := range rpo {
		pos[id] = i
	}
	if len(pos) != g.Len() {
		t.Errorf("RPO covers %d nodes, want %d", len(pos), g.Len())
	}
	rrpo := g.ReverseRPO()
	if rrpo[0] != g.End {
		t.Errorf("reverse RPO must start at end, got n%d", rrpo[0])
	}
}

func TestDOTOutput(t *testing.T) {
	g := build(t, runningExample)
	dot := g.DOT()
	if !strings.Contains(dot, "digraph cfg") || !strings.Contains(dot, "->") {
		t.Errorf("DOT output malformed:\n%s", dot)
	}
}

func TestGotoEndFromMiddle(t *testing.T) {
	g := build(t, `
var x
if x < 1 then goto quit else goto cont
cont:
x := 5
quit:
`)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if countKind(g, KindAssign) != 1 {
		t.Errorf("assigns = %d, want 1", countKind(g, KindAssign))
	}
}
