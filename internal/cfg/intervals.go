package cfg

import (
	"fmt"
	"sort"
)

// This file implements the Allen–Cocke interval decomposition the paper
// cites for identifying cycles in unstructured control flow (§3): "An
// interval is a generalization of a loop and is a maximal, single entry
// subgraph having a unique node called the header which is the only entry
// node and in which all cyclic paths contain the header." The derived
// sequence collapses each interval to a node and repeats; a graph whose
// sequence terminates in a single node is reducible. The loop
// transformation itself (loops.go) uses natural loops — on reducible
// graphs the two views agree, and IntervalsAgreeWithLoops verifies it.

// Interval is one interval of a flow graph (at some derivation level).
type Interval struct {
	// Header is the interval's unique entry node.
	Header int
	// Nodes is the interval's member set (including the header).
	Nodes map[int]bool
	// Cyclic reports whether some member has a back arc to the header.
	Cyclic bool
}

// sortedMembers returns the member IDs in ascending order.
func (iv *Interval) sortedMembers() []int {
	return sortedKeys(iv.Nodes)
}

// Intervals partitions the nodes of a flow graph into intervals using the
// classic worklist algorithm: starting from a header h, repeatedly absorb
// any node all of whose predecessors already lie in the interval; every
// successor that cannot be absorbed becomes a header of another interval.
// The graph is given generically (successor/predecessor functions over a
// node ID set) so the algorithm can run on derived graphs too.
func Intervals(nodes []int, entry int, succs, preds func(int) []int) []Interval {
	inInterval := map[int]int{} // node → interval index
	var out []Interval
	headers := []int{entry}
	isHeader := map[int]bool{entry: true}

	for len(headers) > 0 {
		h := headers[0]
		headers = headers[1:]
		iv := Interval{Header: h, Nodes: map[int]bool{h: true}}
		idx := len(out)
		inInterval[h] = idx

		for changed := true; changed; {
			changed = false
			for _, n := range nodes {
				if iv.Nodes[n] || n == entry || isHeader[n] {
					continue
				}
				ps := preds(n)
				if len(ps) == 0 {
					continue
				}
				all := true
				for _, p := range ps {
					if !iv.Nodes[p] {
						all = false
						break
					}
				}
				if all {
					iv.Nodes[n] = true
					inInterval[n] = idx
					changed = true
				}
			}
		}
		// Successors outside the interval become headers.
		for _, n := range iv.sortedMembers() {
			for _, s := range succs(n) {
				if !iv.Nodes[s] && !isHeader[s] {
					isHeader[s] = true
					headers = append(headers, s)
				}
				if s == h && iv.Nodes[n] {
					iv.Cyclic = true
				}
			}
		}
		out = append(out, iv)
	}
	return out
}

// DerivedSequence computes the sequence of derived graphs of g's interval
// decomposition: level 0 partitions g's nodes; each further level
// partitions the previous level's intervals (as collapsed nodes). It stops
// when a level has a single interval (reducible) or when no progress is
// made (irreducible), returning the per-level interval lists and whether
// the graph is reducible by intervals.
func DerivedSequence(g *Graph) ([][]Interval, bool) {
	// Level 0 runs on the concrete graph.
	nodes := g.SortedIDs()
	level := Intervals(nodes, g.Start,
		func(n int) []int { return g.Nodes[n].Succs },
		func(n int) []int { return g.Nodes[n].Preds })
	var out [][]Interval
	out = append(out, level)

	// Map concrete nodes to interval ids, build the derived graph, repeat.
	cur := level
	curMembers := map[int]map[int]bool{}
	for i, iv := range cur {
		curMembers[i] = iv.Nodes
	}
	for len(cur) > 1 {
		owner := map[int]int{}
		for i, iv := range cur {
			for n := range iv.Nodes {
				owner[n] = i
			}
		}
		// Derived adjacency between interval ids.
		succSet := map[int]map[int]bool{}
		for i := range cur {
			succSet[i] = map[int]bool{}
		}
		for _, n := range g.SortedIDs() {
			for _, s := range g.Nodes[n].Succs {
				a, b := owner[n], owner[s]
				if a != b {
					succSet[a][b] = true
				}
			}
		}
		predSet := map[int]map[int]bool{}
		for i := range cur {
			predSet[i] = map[int]bool{}
		}
		for a, ss := range succSet {
			for b := range ss {
				predSet[b][a] = true
			}
		}
		ids := make([]int, len(cur))
		for i := range cur {
			ids[i] = i
		}
		next := Intervals(ids, 0,
			func(n int) []int { return sortedKeys(succSet[n]) },
			func(n int) []int { return sortedKeys(predSet[n]) })
		if len(next) >= len(cur) {
			return out, false // no progress: irreducible
		}
		// Express next level's members in terms of concrete nodes.
		expanded := make([]Interval, len(next))
		for i, iv := range next {
			m := map[int]bool{}
			for id := range iv.Nodes {
				for n := range cur[id].Nodes {
					m[n] = true
				}
			}
			// Header in concrete terms: the header interval's header.
			expanded[i] = Interval{Header: cur[iv.Header].Header, Nodes: m, Cyclic: iv.Cyclic}
		}
		out = append(out, expanded)
		cur = expanded
	}
	return out, true
}

// CyclicIntervalHeaders returns the headers of every cyclic interval at
// every derivation level — on reducible graphs, exactly the natural loop
// headers the loop transformation uses.
func CyclicIntervalHeaders(g *Graph) ([]int, error) {
	levels, reducible := DerivedSequence(g)
	if !reducible {
		return nil, fmt.Errorf("cfg: %w", ErrIrreducible)
	}
	set := map[int]bool{}
	for _, level := range levels {
		for _, iv := range level {
			if iv.Cyclic {
				set[iv.Header] = true
			}
		}
	}
	out := sortedKeys(set)
	sort.Ints(out)
	return out, nil
}
