package cfg

import (
	"testing"

	"ctdf/internal/lang"
)

// irreducibleSrc jumps into the middle of a loop: the classic two-entry
// cycle.
const irreducibleSrc = `
var x
if x == 0 then goto a else goto b
a:
x := x + 1
goto b2
b:
x := x + 2
goto a2
a2:
if x < 10 then goto a else goto end
b2:
if x < 20 then goto b else goto end
`

// doublyIrreducibleSrc chains two irreducible regions.
const doublyIrreducibleSrc = `
var x
if x == 0 then goto a else goto b
a:
x := x + 1
goto b2
b:
x := x + 2
goto a2
a2:
if x < 10 then goto a else goto mid
b2:
if x < 20 then goto b else goto mid
mid:
x := x + 100
if x == 0 then goto c else goto d
c:
x := x + 1
goto d2
d:
x := x + 2
goto c2
c2:
if x < 210 then goto c else goto end
d2:
if x < 220 then goto d else goto end
`

func TestMakeReducibleNoOpOnReducible(t *testing.T) {
	g := build(t, runningExample)
	out, copies, err := MakeReducible(g)
	if err != nil {
		t.Fatal(err)
	}
	if copies != 0 {
		t.Errorf("reducible graph got %d copies", copies)
	}
	if out != g {
		t.Error("reducible graph should be returned unchanged")
	}
}

func TestMakeReducibleOnIrreducible(t *testing.T) {
	for _, src := range []string{irreducibleSrc, doublyIrreducibleSrc} {
		p, err := lang.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		g, err := Build(p)
		if err != nil {
			t.Fatal(err)
		}
		if checkReducible(g) == nil {
			t.Fatal("test premise broken: graph is reducible")
		}
		out, copies, err := MakeReducible(g)
		if err != nil {
			t.Fatal(err)
		}
		if copies == 0 {
			t.Fatal("no nodes copied for an irreducible graph")
		}
		if err := checkReducible(out); err != nil {
			t.Fatalf("result still irreducible: %v", err)
		}
		if err := out.Validate(); err != nil {
			t.Fatal(err)
		}
		// Loop insertion must now succeed.
		if _, _, err := InsertLoopControl(out); err != nil {
			t.Fatalf("loop insertion on copied graph: %v", err)
		}
		// Statement multiset: every original assignment text still occurs,
		// possibly duplicated, and nothing new was invented.
		origs := map[string]bool{}
		for _, n := range g.Nodes {
			if n.Kind == KindAssign {
				origs[n.Target+":="+n.RHS.String()] = true
			}
		}
		for _, n := range out.Nodes {
			if n.Kind == KindAssign && !origs[n.Target+":="+n.RHS.String()] {
				t.Errorf("copying invented a new assignment %s", n)
			}
		}
	}
}
