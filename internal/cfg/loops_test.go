package cfg

import (
	"errors"
	"testing"

	"ctdf/internal/lang"
)

func withLoops(t *testing.T, src string) (*Graph, []Loop) {
	t.Helper()
	g := build(t, src)
	out, loops, err := InsertLoopControl(g)
	if err != nil {
		t.Fatal(err)
	}
	return out, loops
}

func TestLoopControlRunningExample(t *testing.T) {
	g, loops := withLoops(t, runningExample)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if countKind(g, KindLoopEntry) != 1 || countKind(g, KindLoopExit) != 1 {
		t.Fatalf("loop control nodes: %d entries, %d exits; want 1/1",
			countKind(g, KindLoopEntry), countKind(g, KindLoopExit))
	}
	le := g.Nodes[l.Entry]
	// Entry feeds the original header join.
	if g.Nodes[le.Succs[0]].Kind != KindJoin {
		t.Errorf("loop entry feeds %v, want the header join", g.Nodes[le.Succs[0]].Kind)
	}
	// One back pred (the fork), one outside pred (start).
	if len(le.Preds) != 2 {
		t.Errorf("loop entry preds = %v, want 2", le.Preds)
	}
	backs := 0
	for _, p := range le.Preds {
		if le.BackPreds[p] {
			backs++
			if g.Nodes[p].Kind != KindFork {
				t.Errorf("back pred is %v, want the loop fork", g.Nodes[p].Kind)
			}
		}
	}
	if backs != 1 {
		t.Errorf("back preds = %d, want 1", backs)
	}
	// The loop exit sits on the fork's false edge toward end.
	lx := g.Nodes[l.Exits[0]]
	if lx.Succs[0] != g.End {
		t.Errorf("loop exit leads to n%d, want end", lx.Succs[0])
	}
}

func TestLoopControlAcyclic(t *testing.T) {
	g, loops := withLoops(t, "var a, b\nif a < b { a := 1 }\nb := 2\n")
	if len(loops) != 0 {
		t.Errorf("acyclic program got %d loops", len(loops))
	}
	if countKind(g, KindLoopEntry)+countKind(g, KindLoopExit) != 0 {
		t.Errorf("acyclic program got loop control nodes")
	}
}

func TestLoopControlNestedLoops(t *testing.T) {
	g, loops := withLoops(t, `
var i, j, s
while i < 10 {
  j := 0
  while j < 5 {
    s := s + 1
    j := j + 1
  }
  i := i + 1
}
`)
	if len(loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(loops))
	}
	// Innermost first.
	inner, outer := loops[0], loops[1]
	if inner.Depth != 2 || outer.Depth != 1 {
		t.Errorf("depths = %d/%d, want 2/1", inner.Depth, outer.Depth)
	}
	// The inner loop's entry node must be inside the outer loop's body.
	if !outer.Body[inner.Entry] {
		t.Errorf("inner loop entry n%d not inside outer loop body", inner.Entry)
	}
	if outer.Body[inner.Entry] && inner.Body[outer.Entry] {
		t.Errorf("loops mutually contain each other")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoopControlMultipleExits(t *testing.T) {
	// An unstructured loop with two distinct exit edges.
	_, loops := withLoops(t, `
var x, y
top:
x := x + 1
if x > 9 then goto out else goto more
more:
y := y + 1
if y > 9 then goto out else goto top
out:
y := 0
`)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if len(loops[0].Exits) != 2 {
		t.Errorf("exits = %d, want 2 (one per exiting edge, §3)", len(loops[0].Exits))
	}
}

func TestLoopControlMultipleBackedges(t *testing.T) {
	// Two gotos back to the same header: both must be redirected to a
	// single loop entry (§3: "All arcs from within the interval back to the
	// header are changed to lead back to the loop entry node").
	g, loops := withLoops(t, `
var x
top:
x := x + 1
if x % 2 == 0 then goto top else goto check
check:
if x < 9 then goto top else goto end
`)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	le := g.Nodes[loops[0].Entry]
	backs := 0
	for range le.BackPreds {
		backs++
	}
	if backs != 2 {
		t.Errorf("back preds = %d, want 2", backs)
	}
	if countKind(g, KindLoopEntry) != 1 {
		t.Errorf("loop entries = %d, want exactly 1", countKind(g, KindLoopEntry))
	}
}

func TestIrreducibleRejected(t *testing.T) {
	// The classic two-entry cycle: jump into the middle of a loop.
	p, err := lang.Parse(`
var x
if x == 0 then goto a else goto b
a:
x := x + 1
goto b2
b:
x := x + 2
goto a2
a2:
if x < 10 then goto a else goto end
b2:
if x < 20 then goto b else goto end
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = InsertLoopControl(g)
	if err == nil {
		t.Fatal("irreducible CFG accepted")
	}
	if !errors.Is(err, ErrIrreducible) {
		t.Errorf("error = %v, want ErrIrreducible", err)
	}
}

func TestLoopTransformPreservesInterpretation(t *testing.T) {
	// The transformation only inserts pass-through nodes; sequential
	// semantics must be unchanged. (Full check lives in interp tests; here
	// we check structure: every original node still present with same kind.)
	g := build(t, runningExample)
	before := map[NodeKind]int{}
	for _, n := range g.Nodes {
		before[n.Kind]++
	}
	out, _, err := InsertLoopControl(g)
	if err != nil {
		t.Fatal(err)
	}
	after := map[NodeKind]int{}
	for _, n := range out.Nodes {
		after[n.Kind]++
	}
	for k, c := range before {
		if after[k] != c {
			t.Errorf("kind %v count changed %d → %d", k, c, after[k])
		}
	}
	// And the input graph must not have been mutated.
	if countKind(g, KindLoopEntry) != 0 {
		t.Error("InsertLoopControl mutated its input")
	}
}

func TestLoopBodiesWellNested(t *testing.T) {
	_, loops := withLoops(t, `
var i, j, k
while i < 3 {
  while j < 3 {
    k := k + 1
    j := j + 1
  }
  i := i + 1
}
while k > 0 {
  k := k - 1
}
`)
	if len(loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(loops))
	}
	// Any two loop bodies are disjoint or nested.
	for i := range loops {
		for j := range loops {
			if i == j {
				continue
			}
			a, b := loops[i].Body, loops[j].Body
			var inter, aInB, bInA int
			for n := range a {
				if b[n] {
					inter++
				}
			}
			if inter == 0 {
				continue
			}
			for n := range a {
				if b[n] {
					aInB++
				}
			}
			for n := range b {
				if a[n] {
					bInA++
				}
			}
			if aInB != len(a) && bInA != len(b) {
				t.Errorf("loop bodies %d and %d overlap without nesting", i, j)
			}
		}
	}
}

func TestSelfLoopSingleNodeCycle(t *testing.T) {
	// A fork whose true arm jumps straight back to its own header join:
	// smallest possible cyclic interval.
	g, loops := withLoops(t, `
var x
l:
if x < 1 then goto l else goto end
`)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}
