package cfg

import (
	"fmt"
	"sort"
)

// MakeReducible returns a CFG equivalent to g whose cycles decompose into
// nested single-entry intervals, applying the code copying the paper
// alludes to in footnote 5 ("if we allow code copying, then any
// control-flow graph can be decomposed into such nested intervals").
//
// The algorithm runs the T1 (self-loop removal) / T2 (single-predecessor
// merge) reduction with supernode tracking; when the reduction jams, every
// remaining supernode has at least two predecessors, so the smallest one
// is an irreducible region entered from several places. That region's
// nodes are duplicated once per entering supernode and the reduction
// restarts. The returned copy count is the number of duplicated nodes
// (zero when g was already reducible, in which case g itself is returned).
//
// Region entry nodes are necessarily joins (anything with one predecessor
// was absorbed by T2), and cross-region edge targets are joins for the
// same reason, so duplication preserves the CFG invariant that only joins
// merge control.
func MakeReducible(g *Graph) (*Graph, int, error) {
	if checkReducible(g) == nil {
		return g, 0, nil
	}
	cur := g.Clone()
	copies := 0
	for round := 0; ; round++ {
		if round > 64 || cur.Len() > 100_000 {
			return nil, 0, fmt.Errorf("cfg: code copying did not converge (%d rounds, %d nodes)", round, cur.Len())
		}
		region, preds, reducible := jamRegion(cur)
		if reducible {
			if err := cur.Validate(); err != nil {
				return nil, 0, fmt.Errorf("cfg: code copying broke the graph: %w", err)
			}
			return cur, copies, nil
		}
		copies += duplicateRegion(cur, region, preds)
	}
}

// jamRegion runs the supernode T1/T2 reduction. If the graph is reducible
// it reports reducible=true. Otherwise it returns the original-node set of
// the smallest jammed supernode together with the partition of its
// external predecessor (original) nodes by entering supernode.
func jamRegion(g *Graph) (region map[int]bool, preds [][]int, reducible bool) {
	// super[n] = representative supernode id for original node n.
	super := make([]int, g.Len())
	members := map[int][]int{}
	succs := map[int]map[int]bool{}
	predsOf := map[int]map[int]bool{}
	for _, n := range g.Nodes {
		super[n.ID] = n.ID
		members[n.ID] = []int{n.ID}
		succs[n.ID] = map[int]bool{}
		predsOf[n.ID] = map[int]bool{}
	}
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			if s != n.ID {
				succs[n.ID][s] = true
				predsOf[s][n.ID] = true
			}
		}
	}
	for {
		changed := false
		for id := range succs {
			// T1
			if succs[id][id] {
				delete(succs[id], id)
				delete(predsOf[id], id)
				changed = true
			}
		}
		for id := range succs {
			if id == super[g.Start] || len(predsOf[id]) != 1 {
				continue
			}
			var p int
			for q := range predsOf[id] {
				p = q
			}
			// T2: merge id into p.
			members[p] = append(members[p], members[id]...)
			for _, orig := range members[id] {
				super[orig] = p
			}
			for s := range succs[id] {
				delete(predsOf[s], id)
				if s == p {
					succs[p][p] = true
					predsOf[p][p] = true
				} else {
					succs[p][s] = true
					predsOf[s][p] = true
				}
			}
			delete(succs[p], id)
			delete(succs, id)
			delete(predsOf, id)
			delete(members, id)
			changed = true
		}
		if !changed {
			break
		}
	}
	if len(succs) == 1 {
		return nil, nil, true
	}
	// Jammed. The jam also contains innocent acyclic fan-in (joins fed by
	// several stuck supernodes, the end node); only supernodes on a cycle
	// of the limit graph belong to an irreducible region. Restrict the
	// pick to members of non-trivial strongly connected components.
	cyclic := nontrivialSCCMembers(succs)
	var ids []int
	for id := range succs {
		if id == super[g.Start] || !cyclic[id] {
			continue
		}
		ids = append(ids, id)
	}
	if len(ids) == 0 {
		// Cannot happen for a genuinely irreducible graph; fail loudly
		// rather than loop.
		panic("cfg: T1/T2 jammed without a cyclic supernode")
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(members[ids[i]]) != len(members[ids[j]]) {
			return len(members[ids[i]]) < len(members[ids[j]])
		}
		return ids[i] < ids[j]
	})
	pick := ids[0]
	region = map[int]bool{}
	for _, orig := range members[pick] {
		region[orig] = true
	}
	// Partition the region's external original predecessors by supernode.
	bySuper := map[int][]int{}
	for orig := range region {
		for _, p := range g.Nodes[orig].Preds {
			if !region[p] {
				bySuper[super[p]] = append(bySuper[super[p]], p)
			}
		}
	}
	var superIDs []int
	for sid := range bySuper {
		superIDs = append(superIDs, sid)
	}
	sort.Ints(superIDs)
	for _, sid := range superIDs {
		ps := bySuper[sid]
		sort.Ints(ps)
		preds = append(preds, ps)
	}
	return region, preds, false
}

// nontrivialSCCMembers returns the nodes of adj that lie on some cycle
// (members of strongly connected components with more than one node;
// self-loops were removed by T1).
func nontrivialSCCMembers(adj map[int]map[int]bool) map[int]bool {
	// Tarjan's algorithm, iterative enough for our sizes via recursion.
	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	var stack []int
	next := 0
	out := map[int]bool{}
	var strong func(v int)
	strong = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for w := range adj[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				for _, w := range comp {
					out[w] = true
				}
			}
		}
	}
	ids := make([]int, 0, len(adj))
	for id := range adj {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if _, seen := index[id]; !seen {
			strong(id)
		}
	}
	return out
}

// duplicateRegion clones the region once per entering predecessor group
// beyond the first, redirecting each group's edges into its own clone.
// Returns the number of nodes created.
func duplicateRegion(g *Graph, region map[int]bool, predGroups [][]int) int {
	created := 0
	for gi := 1; gi < len(predGroups); gi++ {
		// Clone every region node.
		cloneOf := map[int]int{}
		for _, orig := range sortedKeys(region) {
			n := g.Nodes[orig]
			c := g.AddNode(n.Kind)
			c.Target, c.TargetIndex, c.RHS = n.Target, n.TargetIndex, n.RHS
			c.Cond = n.Cond
			c.Label = ""
			c.LoopHeader = n.LoopHeader
			cloneOf[orig] = c.ID
			created++
		}
		// Wire clone successors: internal edges to clones, external edges
		// to the original targets.
		for _, orig := range sortedKeys(region) {
			c := g.Nodes[cloneOf[orig]]
			for _, s := range g.Nodes[orig].Succs {
				t := s
				if region[s] {
					t = cloneOf[s]
				}
				c.Succs = append(c.Succs, t)
				g.Nodes[t].Preds = append(g.Nodes[t].Preds, c.ID)
			}
		}
		// Redirect this group's entering edges to the clones.
		for _, p := range predGroups[gi] {
			for si, s := range g.Nodes[p].Succs {
				if region[s] {
					g.ReplaceEdgeAt(p, si, cloneOf[s])
				}
			}
		}
	}
	return created
}

// ReplaceEdgeAt rewrites successor slot si of node from to point at newTo,
// fixing pred lists.
func (g *Graph) ReplaceEdgeAt(from, si, newTo int) {
	f := g.Nodes[from]
	oldTo := f.Succs[si]
	f.Succs[si] = newTo
	old := g.Nodes[oldTo]
	for i, p := range old.Preds {
		if p == from {
			old.Preds = append(old.Preds[:i], old.Preds[i+1:]...)
			break
		}
	}
	g.Nodes[newTo].Preds = append(g.Nodes[newTo].Preds, from)
}
