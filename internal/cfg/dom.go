package cfg

// Dominator and postdominator trees via the Cooper–Harvey–Kennedy
// iterative algorithm ("A Simple, Fast Dominance Algorithm"). The paper
// (§4.1, footnote 6) relies on the postdominator tree: every node has a
// unique immediate postdominator because end is reachable from every node.

// DomTree holds an immediate-(post)dominator relation. Idom[start] (or
// Ipdom[end]) is -1.
type DomTree struct {
	// Idom[n] is the immediate (post)dominator of n, or -1 for the root.
	Idom []int
	// order[n] is the reverse-postorder number used for intersections.
	order []int
	root  int
}

// Root returns the tree root (start for dominators, end for postdominators).
func (t *DomTree) Root() int { return t.root }

// Dominates reports whether a (post)dominates b (reflexively).
func (t *DomTree) Dominates(a, b int) bool {
	for b != -1 {
		if a == b {
			return true
		}
		b = t.Idom[b]
	}
	return false
}

// StrictlyDominates reports whether a (post)dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b int) bool {
	return a != b && t.Dominates(a, b)
}

// Children returns, for each node, its children in the (post)dominator tree.
func (t *DomTree) Children() [][]int {
	kids := make([][]int, len(t.Idom))
	for n, p := range t.Idom {
		if p >= 0 {
			kids[p] = append(kids[p], n)
		}
	}
	return kids
}

// Dominators computes the dominator tree of g rooted at start.
func Dominators(g *Graph) *DomTree {
	return computeDom(g, g.RPO(), g.Start, func(n int) []int { return g.Nodes[n].Preds })
}

// PostDominators computes the postdominator tree of g rooted at end (the
// dominator tree of the reverse graph).
func PostDominators(g *Graph) *DomTree {
	return computeDom(g, g.ReverseRPO(), g.End, func(n int) []int { return g.Nodes[n].Succs })
}

func computeDom(g *Graph, rpo []int, root int, preds func(int) []int) *DomTree {
	n := len(g.Nodes)
	order := make([]int, n)
	for i := range order {
		order[i] = -1
	}
	for i, id := range rpo {
		order[id] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root

	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, id := range rpo {
			if id == root {
				continue
			}
			newIdom := -1
			for _, p := range preds(id) {
				if idom[p] == -1 {
					continue // not yet processed (or unreachable)
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != -1 && idom[id] != newIdom {
				idom[id] = newIdom
				changed = true
			}
		}
	}
	idom[root] = -1
	return &DomTree{Idom: idom, order: order, root: root}
}
