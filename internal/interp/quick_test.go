package interp

import (
	"testing"
	"testing/quick"

	"ctdf/internal/lang"
)

// Arithmetic properties of the shared Apply, which every execution engine
// uses — if these hold, the engines cannot diverge on arithmetic.

func TestQuickApplyProperties(t *testing.T) {
	cfgq := &quick.Config{MaxCount: 500}

	commutative := func(a, b int64) bool {
		for _, op := range []lang.Op{lang.OpAdd, lang.OpMul, lang.OpEq, lang.OpNe, lang.OpAnd, lang.OpOr} {
			x, err1 := Apply(op, a, b)
			y, err2 := Apply(op, b, a)
			if (err1 == nil) != (err2 == nil) || x != y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(commutative, cfgq); err != nil {
		t.Error(err)
	}

	comparisonComplements := func(a, b int64) bool {
		lt, _ := Apply(lang.OpLt, a, b)
		ge, _ := Apply(lang.OpGe, a, b)
		eq, _ := Apply(lang.OpEq, a, b)
		ne, _ := Apply(lang.OpNe, a, b)
		le, _ := Apply(lang.OpLe, a, b)
		gt, _ := Apply(lang.OpGt, a, b)
		return lt+ge == 1 && eq+ne == 1 && le+gt == 1
	}
	if err := quick.Check(comparisonComplements, cfgq); err != nil {
		t.Error(err)
	}

	booleansAreBits := func(a, b int64) bool {
		for _, op := range []lang.Op{lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe, lang.OpAnd, lang.OpOr} {
			v, err := Apply(op, a, b)
			if err != nil || (v != 0 && v != 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(booleansAreBits, cfgq); err != nil {
		t.Error(err)
	}

	divMod := func(a, b int64) bool {
		if b == 0 {
			_, err1 := Apply(lang.OpDiv, a, b)
			_, err2 := Apply(lang.OpMod, a, b)
			return err1 != nil && err2 != nil
		}
		q, err1 := Apply(lang.OpDiv, a, b)
		r, err2 := Apply(lang.OpMod, a, b)
		return err1 == nil && err2 == nil && q*b+r == a
	}
	if err := quick.Check(divMod, cfgq); err != nil {
		t.Error(err)
	}
}

// Store properties: bindings induce exactly the sharing they describe.
func TestQuickBindingSharing(t *testing.T) {
	prog := lang.MustParse("var x, y, z\nalias x ~ z\nalias y ~ z\nx := 0\n")
	f := func(vx, vz int64, shareXZ bool) bool {
		var b Binding
		if shareXZ {
			b = Binding{"x": "x", "z": "x"}
		}
		st := NewStoreWithBinding(prog, b)
		st.Set("x", vx)
		st.Set("z", vz)
		if shareXZ {
			return st.Get("x") == vz && st.Get("z") == vz
		}
		return st.Get("x") == vx && st.Get("z") == vz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
