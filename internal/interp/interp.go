// Package interp executes control-flow graphs with the standard sequential
// operational semantics of imperative programs — a program counter walking
// the CFG and a global updatable store. It is the semantics oracle against
// which every dataflow translation and execution engine is checked.
package interp

import (
	"fmt"
	"sort"

	"ctdf/internal/cfg"
	"ctdf/internal/lang"
)

// Store is the memory state of a program: scalar variables and arrays.
// Aliased scalars share a location (see NewStore).
type Store struct {
	// loc maps a variable name to its location index.
	loc map[string]int
	// cells holds scalar locations.
	cells []int64
	// arrays maps array names to their backing storage. Aliased arrays
	// share a slice.
	arrays map[string][]int64
	names  []string
}

// Binding fixes, for one execution, which variable names actually denote
// the same memory location. It maps each name to a canonical
// representative; names with the same representative share a location. The
// alias relation of the program (paper Definition 6) constrains which
// bindings are legal: names may share only if they are declared aliases.
// The relation is deliberately NOT transitive — with [X]={X,Z},
// [Y]={Y,Z}, the binding {X=Z} is legal and so is {Y=Z}, but {X=Y=Z} is
// not — so a single execution realizes one legal binding, and correctness
// of a translation means correctness under every legal binding.
type Binding map[string]string

// IdentityBinding is the binding in which every name is its own location.
var IdentityBinding = Binding(nil)

func (b Binding) canon(name string) string {
	if b == nil {
		return name
	}
	if c, ok := b[name]; ok {
		return c
	}
	return name
}

// Validate checks that the binding is legal for the program: every group
// of names sharing a representative must be pairwise declared aliases, of
// the same kind, and (for arrays) of the same size.
func (b Binding) Validate(prog *lang.Program) error {
	if b == nil {
		return nil
	}
	rel := map[[2]string]bool{}
	for _, al := range prog.Aliases {
		rel[[2]string{al.A, al.B}] = true
		rel[[2]string{al.B, al.A}] = true
	}
	groups := map[string][]string{}
	for _, n := range prog.AllNames() {
		c := b.canon(n)
		groups[c] = append(groups[c], n)
	}
	for _, g := range groups {
		for i := 0; i < len(g); i++ {
			for j := i + 1; j < len(g); j++ {
				if !rel[[2]string{g[i], g[j]}] {
					return fmt.Errorf("interp: binding shares %s and %s which are not declared aliases", g[i], g[j])
				}
				if prog.IsArray(g[i]) != prog.IsArray(g[j]) {
					return fmt.Errorf("interp: binding shares scalar and array (%s, %s)", g[i], g[j])
				}
				if prog.IsArray(g[i]) && prog.ArraySize(g[i]) != prog.ArraySize(g[j]) {
					return fmt.Errorf("interp: binding shares arrays of different sizes (%s, %s)", g[i], g[j])
				}
			}
		}
	}
	return nil
}

// NewStore allocates storage with the identity binding (no two names share
// a location).
func NewStore(prog *lang.Program) *Store {
	return NewStoreWithBinding(prog, IdentityBinding)
}

// NewStoreWithBinding allocates storage in which names with the same
// binding representative share one location. The binding should have been
// validated against the program.
func NewStoreWithBinding(prog *lang.Program, b Binding) *Store {
	s := &Store{loc: map[string]int{}, arrays: map[string][]int64{}}
	canonLoc := map[string]int{}
	for _, v := range prog.Vars {
		c := b.canon(v.Name)
		idx, ok := canonLoc[c]
		if !ok {
			idx = len(s.cells)
			s.cells = append(s.cells, 0)
			canonLoc[c] = idx
		}
		s.loc[v.Name] = idx
	}
	canonArr := map[string][]int64{}
	for _, a := range prog.Arrays {
		c := b.canon(a.Name)
		arr, ok := canonArr[c]
		if !ok {
			arr = make([]int64, a.Size)
			canonArr[c] = arr
		}
		s.arrays[a.Name] = arr
	}
	s.names = prog.AllNames()
	return s
}

// Get reads scalar variable name.
func (s *Store) Get(name string) int64 { return s.cells[s.loc[name]] }

// Set writes scalar variable name.
func (s *Store) Set(name string, v int64) { s.cells[s.loc[name]] = v }

// GetIdx reads array element name[i].
func (s *Store) GetIdx(name string, i int64) (int64, error) {
	arr := s.arrays[name]
	if i < 0 || i >= int64(len(arr)) {
		return 0, fmt.Errorf("interp: index %d out of range for array %s[%d]", i, name, len(arr))
	}
	return arr[i], nil
}

// SetIdx writes array element name[i].
func (s *Store) SetIdx(name string, i, v int64) error {
	arr := s.arrays[name]
	if i < 0 || i >= int64(len(arr)) {
		return fmt.Errorf("interp: index %d out of range for array %s[%d]", i, name, len(arr))
	}
	arr[i] = v
	return nil
}

// Array returns a copy of the named array's contents.
func (s *Store) Array(name string) []int64 {
	return append([]int64(nil), s.arrays[name]...)
}

// Snapshot renders the entire final state deterministically — scalar
// values and array contents by name — so executions can be compared.
func (s *Store) Snapshot() string {
	names := append([]string(nil), s.names...)
	sort.Strings(names)
	out := ""
	for _, n := range names {
		if arr, ok := s.arrays[n]; ok {
			out += fmt.Sprintf("%s=%v\n", n, arr)
		} else {
			out += fmt.Sprintf("%s=%d\n", n, s.Get(n))
		}
	}
	return out
}

// Result is the outcome of an execution: the final store and the number of
// statements executed.
type Result struct {
	Store      *Store
	Statements int
}

// Options configures the interpreter.
type Options struct {
	// MaxSteps bounds execution (0 means the default of 10 million).
	MaxSteps int
	// Binding selects which aliased names share a location this run
	// (nil = identity binding).
	Binding Binding
}

// Run executes the CFG from start to end and returns the final store.
func Run(g *cfg.Graph, opts Options) (*Result, error) {
	max := opts.MaxSteps
	if max == 0 {
		max = 10_000_000
	}
	if err := opts.Binding.Validate(g.Prog); err != nil {
		return nil, err
	}
	st := NewStoreWithBinding(g.Prog, opts.Binding)
	cur := g.Start
	steps := 0
	for {
		if steps++; steps > max {
			return nil, fmt.Errorf("interp: exceeded %d steps (non-terminating program?)", max)
		}
		n := g.Nodes[cur]
		switch n.Kind {
		case cfg.KindStart:
			cur = n.Succs[0] // Succs[1] is the conventional start→end edge
		case cfg.KindEnd:
			return &Result{Store: st, Statements: steps}, nil
		case cfg.KindAssign:
			v, err := Eval(n.RHS, st)
			if err != nil {
				return nil, err
			}
			if n.TargetIndex != nil {
				idx, err := Eval(n.TargetIndex, st)
				if err != nil {
					return nil, err
				}
				if err := st.SetIdx(n.Target, idx, v); err != nil {
					return nil, err
				}
			} else {
				st.Set(n.Target, v)
			}
			cur = n.Succs[0]
		case cfg.KindFork:
			v, err := Eval(n.Cond, st)
			if err != nil {
				return nil, err
			}
			if v != 0 {
				cur = n.Succs[0]
			} else {
				cur = n.Succs[1]
			}
		case cfg.KindJoin, cfg.KindLoopEntry, cfg.KindLoopExit:
			cur = n.Succs[0]
		default:
			return nil, fmt.Errorf("interp: unknown node kind %v", n.Kind)
		}
	}
}

// Eval evaluates an expression against a store. Booleans are 0/1; division
// or modulus by zero is an error (the dataflow engines must agree).
func Eval(e lang.Expr, st *Store) (int64, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return x.Value, nil
	case *lang.VarRef:
		return st.Get(x.Name), nil
	case *lang.IndexRef:
		i, err := Eval(x.Index, st)
		if err != nil {
			return 0, err
		}
		return st.GetIdx(x.Name, i)
	case *lang.UnExpr:
		v, err := Eval(x.X, st)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case lang.OpNeg:
			return -v, nil
		case lang.OpNot:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
		return 0, fmt.Errorf("interp: bad unary op %v", x.Op)
	case *lang.BinExpr:
		l, err := Eval(x.L, st)
		if err != nil {
			return 0, err
		}
		r, err := Eval(x.R, st)
		if err != nil {
			return 0, err
		}
		return Apply(x.Op, l, r)
	}
	return 0, fmt.Errorf("interp: unknown expression type %T", e)
}

// Apply computes a binary operation; it is shared by every execution
// engine so arithmetic semantics cannot diverge.
func Apply(op lang.Op, l, r int64) (int64, error) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case lang.OpAdd:
		return l + r, nil
	case lang.OpSub:
		return l - r, nil
	case lang.OpMul:
		return l * r, nil
	case lang.OpDiv:
		if r == 0 {
			return 0, fmt.Errorf("division by zero")
		}
		return l / r, nil
	case lang.OpMod:
		if r == 0 {
			return 0, fmt.Errorf("modulus by zero")
		}
		return l % r, nil
	case lang.OpLt:
		return b2i(l < r), nil
	case lang.OpLe:
		return b2i(l <= r), nil
	case lang.OpGt:
		return b2i(l > r), nil
	case lang.OpGe:
		return b2i(l >= r), nil
	case lang.OpEq:
		return b2i(l == r), nil
	case lang.OpNe:
		return b2i(l != r), nil
	case lang.OpAnd:
		return b2i(l != 0 && r != 0), nil
	case lang.OpOr:
		return b2i(l != 0 || r != 0), nil
	}
	return 0, fmt.Errorf("bad binary op %v", op)
}
