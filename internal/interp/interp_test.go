package interp

import (
	"strings"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/lang"
)

func run(t *testing.T, src string) *Result {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunningExample(t *testing.T) {
	// l: y := x+1; x := x+1; if x < 5 goto l — terminates with x=5, y=5.
	r := run(t, `
var x, y
l: y := x + 1
x := x + 1
if x < 5 then goto l else goto end
`)
	if got := r.Store.Get("x"); got != 5 {
		t.Errorf("x = %d, want 5", got)
	}
	if got := r.Store.Get("y"); got != 5 {
		t.Errorf("y = %d, want 5", got)
	}
}

func TestArithmetic(t *testing.T) {
	r := run(t, `
var a, b, c, d, e, f, g, h
a := 7 + 3
b := 7 - 3
c := 7 * 3
d := 7 / 3
e := 7 % 3
f := -a
g := !0 + !5
h := (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1)
`)
	want := map[string]int64{"a": 10, "b": 4, "c": 21, "d": 2, "e": 1, "f": -10, "g": 1, "h": 4}
	for k, v := range want {
		if got := r.Store.Get(k); got != v {
			t.Errorf("%s = %d, want %d", k, got, v)
		}
	}
}

func TestShortCircuitSemanticsAreStrict(t *testing.T) {
	// && and || are strict (both sides evaluated) — they operate on 0/1.
	r := run(t, "var a, b\na := 1 && 2\nb := 0 || 7\n")
	if r.Store.Get("a") != 1 || r.Store.Get("b") != 1 {
		t.Errorf("a=%d b=%d, want 1 1", r.Store.Get("a"), r.Store.Get("b"))
	}
}

func TestArrays(t *testing.T) {
	r := run(t, `
var i, s
array a[10]
while i < 10 {
  a[i] := i * i
  i := i + 1
}
i := 0
while i < 10 {
  s := s + a[i]
  i := i + 1
}
`)
	if got := r.Store.Get("s"); got != 285 {
		t.Errorf("s = %d, want 285", got)
	}
	arr := r.Store.Array("a")
	if arr[7] != 49 {
		t.Errorf("a[7] = %d, want 49", arr[7])
	}
}

func TestArrayBounds(t *testing.T) {
	p := lang.MustParse("var i\narray a[3]\ni := 5\na[i] := 1\n")
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, Options{}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("err = %v, want out of range", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	p := lang.MustParse("var x, y\nx := 1 / y\n")
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, Options{}); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v, want division by zero", err)
	}
}

func TestMaxSteps(t *testing.T) {
	p := lang.MustParse("var i\nwhile i < 1000 { i := i + 1 }\n")
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, Options{MaxSteps: 10}); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("err = %v, want step bound exceeded", err)
	}
}

func TestAliasBindings(t *testing.T) {
	// The paper's FORTRAN alias structure: [X]={X,Z}, [Y]={Y,Z}, [Z]={X,Y,Z}.
	src := `
var x, y, z
alias x ~ z
alias y ~ z
x := 1
y := 2
z := 3
`
	p := lang.MustParse(src)
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}

	// Identity binding: all distinct.
	r, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Store.Get("x") != 1 || r.Store.Get("y") != 2 || r.Store.Get("z") != 3 {
		t.Errorf("identity binding: got x=%d y=%d z=%d", r.Store.Get("x"), r.Store.Get("y"), r.Store.Get("z"))
	}

	// X and Z share a location (CALL F(A,B,A)): z := 3 overwrites x.
	bXZ := Binding{"x": "x", "z": "x"}
	r, err = Run(g, Options{Binding: bXZ})
	if err != nil {
		t.Fatal(err)
	}
	if r.Store.Get("x") != 3 || r.Store.Get("z") != 3 || r.Store.Get("y") != 2 {
		t.Errorf("x~z binding: got x=%d y=%d z=%d, want 3 2 3", r.Store.Get("x"), r.Store.Get("y"), r.Store.Get("z"))
	}

	// X and Y may NOT share (not declared aliases).
	bXY := Binding{"x": "x", "y": "x"}
	if err := bXY.Validate(p); err == nil {
		t.Error("binding sharing x and y must be rejected")
	}

	// X, Y, Z all shared is illegal too (x and y not aliases).
	bAll := Binding{"x": "z", "y": "z", "z": "z"}
	if err := bAll.Validate(p); err == nil {
		t.Error("binding sharing x, y, z must be rejected")
	}
}

func TestBindingKindMismatch(t *testing.T) {
	p := lang.MustParse("var x\narray a[3]\nalias x ~ a\nx := 1\n")
	b := Binding{"x": "x", "a": "x"}
	if err := b.Validate(p); err == nil {
		t.Error("binding sharing a scalar and an array must be rejected")
	}
}

func TestArrayAliasBinding(t *testing.T) {
	src := `
var i
array a[4]
array b[4]
alias a ~ b
a[0] := 10
i := b[0]
`
	p := lang.MustParse(src)
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(g, Options{Binding: Binding{"a": "a", "b": "a"}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Store.Get("i") != 10 {
		t.Errorf("i = %d, want 10 (a and b share storage)", r.Store.Get("i"))
	}
	r, err = Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Store.Get("i") != 0 {
		t.Errorf("i = %d, want 0 (identity binding)", r.Store.Get("i"))
	}
}

func TestRunOnLoopControlGraph(t *testing.T) {
	// The interval transformation must not change sequential semantics.
	src := `
var x, y
l: y := x + 1
x := x + 1
if x < 5 then goto l else goto end
`
	p := lang.MustParse(src)
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := cfg.InsertLoopControl(g)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Store.Snapshot() != r2.Store.Snapshot() {
		t.Errorf("loop control changed semantics:\nbefore:\n%s\nafter:\n%s",
			r1.Store.Snapshot(), r2.Store.Snapshot())
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	r := run(t, "var b, a\narray z[2], c[2]\na := 1\nb := 2\nz[0] := 3\nc[1] := 4\n")
	s1 := r.Store.Snapshot()
	s2 := r.Store.Snapshot()
	if s1 != s2 {
		t.Error("snapshot not deterministic")
	}
	// Names sorted.
	if !strings.HasPrefix(s1, "a=") {
		t.Errorf("snapshot should start with a=: %q", s1)
	}
}

func TestEvalUnknownExprRejected(t *testing.T) {
	if _, err := Eval(nil, NewStore(lang.MustParse("var x\n"))); err == nil {
		t.Error("Eval(nil) must error")
	}
}
