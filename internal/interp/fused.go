package interp

import (
	"fmt"

	"ctdf/internal/dfg"
	"ctdf/internal/lang"
)

// EvalFused evaluates a fused operator's step program over its external
// input operands, returning one value per step (the caller selects the
// emitted ones via FusedInfo.Outs). It is shared by both execution
// engines so fused arithmetic cannot diverge from the unfused operators
// it replaced: binops go through Apply, unops use the engines' neg/not
// semantics, consts consume their trigger operand and produce Val.
// scratch, if large enough, backs the result slice to avoid per-firing
// allocation.
func EvalFused(steps []dfg.FusedOp, in []int64, scratch []int64) ([]int64, error) {
	var res []int64
	if cap(scratch) >= len(steps) {
		res = scratch[:len(steps)]
	} else {
		res = make([]int64, len(steps))
	}
	rd := func(r int) int64 {
		if r >= 0 {
			return res[r]
		}
		return in[dfg.FusedInputPort(r)]
	}
	for i, s := range steps {
		switch s.Kind {
		case dfg.Const:
			rd(s.A) // the trigger operand is consumed but carries no value
			res[i] = s.Val
		case dfg.UnOp:
			switch s.Op {
			case lang.OpNeg:
				res[i] = -rd(s.A)
			case lang.OpNot:
				if rd(s.A) == 0 {
					res[i] = 1
				} else {
					res[i] = 0
				}
			default:
				return nil, fmt.Errorf("fused step %d: bad unary op %v", i, s.Op)
			}
		case dfg.BinOp:
			v, err := Apply(s.Op, rd(s.A), rd(s.B))
			if err != nil {
				return nil, fmt.Errorf("fused step %d: %v", i, err)
			}
			res[i] = v
		default:
			return nil, fmt.Errorf("fused step %d: kind %v cannot fuse", i, s.Kind)
		}
	}
	return res, nil
}
