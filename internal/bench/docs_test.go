package bench

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ctdf/internal/obs/telemetry"
)

// These tests keep the documentation honest, in the spirit of
// internal/experiments/checkdoc_test.go: the architecture docs must
// mention every internal package, and SCALING.md's quoted worker-scaling
// numbers must equal the committed BENCH_machine.json and the gate
// floors compiled into this package.

func readDoc(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// internalPackages returns every directory under internal/ that directly
// contains Go source — i.e. every internal package, including nested
// ones like obs/journal.
func internalPackages(t *testing.T) []string {
	t.Helper()
	root := filepath.Join("..", "..", "internal")
	hasGo := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			hasGo[filepath.ToSlash(rel)] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []string
	for rel := range hasGo {
		pkgs = append(pkgs, "internal/"+rel)
	}
	return pkgs
}

// TestArchitectureDocsCoverInternalPackages: the README repository
// layout and the DESIGN.md system inventory must each mention every
// internal package, so a new subsystem cannot land undocumented.
func TestArchitectureDocsCoverInternalPackages(t *testing.T) {
	docs := map[string]string{
		"README.md": readDoc(t, "README.md"),
		"DESIGN.md": readDoc(t, "DESIGN.md"),
	}
	for _, pkg := range internalPackages(t) {
		for name, body := range docs {
			if !strings.Contains(body, pkg) {
				t.Errorf("%s does not mention %s (add it to the subsystem map)", name, pkg)
			}
		}
	}
}

// group3 formats n with comma thousands separators ("9,643,940"),
// matching how SCALING.md quotes fires/sec.
func group3(n int64) string {
	s := fmt.Sprintf("%d", n)
	for i := len(s) - 3; i > 0; i -= 3 {
		s = s[:i] + "," + s[i:]
	}
	return s
}

// TestScalingDocMatchesBench: every number SCALING.md quotes about the
// worker matrix — per-cell best-iteration fires/sec, the vs-w1 ratios,
// the host's GOMAXPROCS, and the gate floors — must match the committed
// BENCH_machine.json and the ScalingFloor* constants. Regenerate with
// `go run ./cmd/ctdf bench -cpu 1,4,8` and update SCALING.md together.
func TestScalingDocMatchesBench(t *testing.T) {
	doc := readDoc(t, "SCALING.md")
	data, err := os.ReadFile(filepath.Join("..", "..", "BENCH_machine.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}

	base, _, _ := workerEndpoints(&rep)
	if base == nil {
		t.Fatal("BENCH_machine.json has no workers/ matrix (regenerate with `go run ./cmd/ctdf bench -cpu 1,4,8`)")
	}
	for i := range rep.Results {
		r := &rep.Results[i]
		if !strings.HasPrefix(r.Name, "workers/") {
			continue
		}
		if !strings.Contains(doc, r.Name) {
			t.Errorf("SCALING.md does not mention bench cell %s", r.Name)
			continue
		}
		fires := group3(int64(math.Round(bestFires(r))))
		if !strings.Contains(doc, fires) {
			t.Errorf("SCALING.md does not quote %s fires/sec %s (stale table? regenerate and update)", r.Name, fires)
		}
		ratio := fmt.Sprintf("%.2fx", bestFires(r)/bestFires(base))
		if !strings.Contains(doc, ratio) {
			t.Errorf("SCALING.md does not quote %s vs-w1 ratio %s", r.Name, ratio)
		}
	}

	if !strings.Contains(doc, fmt.Sprintf("GOMAXPROCS=%d", rep.GOMAXPROCS)) {
		t.Errorf("SCALING.md does not state the measured GOMAXPROCS=%d", rep.GOMAXPROCS)
	}
	for _, floor := range []float64{ScalingFloorFull, ScalingFloorHalf, ScalingFloorTwo, ScalingFloorOversub} {
		want := fmt.Sprintf("%gx floor", floor)
		if !strings.Contains(doc, want) {
			t.Errorf("SCALING.md does not document the %s (gate floors changed in bench.go?)", want)
		}
	}
}

// TestTelemetryCatalogDocumented: OBSERVABILITY.md's engine-telemetry
// metric catalog must name every family in telemetry.Catalog(), so a
// metric cannot be added to the engines without a documented row.
func TestTelemetryCatalogDocumented(t *testing.T) {
	doc := readDoc(t, "OBSERVABILITY.md")
	for _, spec := range telemetry.Catalog() {
		if !strings.Contains(doc, "`"+spec.Name+"`") {
			t.Errorf("OBSERVABILITY.md metric catalog is missing %s", spec.Name)
		}
	}
}
