// Package bench is the benchmark-trajectory harness behind `ctdf bench`:
// it measures the execution engines on the E11/E12 workload matrix plus
// the simulator-scaling sizes, writes the results as BENCH_machine.json,
// and gates steady-state allocation regressions against the committed
// numbers. The committed seed_baseline.json holds the same matrix
// measured on the pre-overhaul engine (per-cycle sort.Slice scheduling,
// string-keyed monolithic matching store), so every report carries the
// speedup trajectory since the seed. See PERFORMANCE.md.
package bench

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"ctdf"
	"ctdf/internal/workloads"
)

// Case is one benchmark cell: a workload × translation × run
// configuration measured end to end (translate once, Run per iteration).
type Case struct {
	// Name is the stable cell identifier ("e11/fib-iterative/mem-elim").
	Name string
	// Source is the workload program text.
	Source string
	// Opt translates the program; Run executes it.
	Opt ctdf.Options
	Run ctdf.RunConfig
	// SteadyState marks the allocation-gated cells: long-running loop
	// workloads whose per-firing hot path must not allocate, so their
	// allocs/op must stay flat against the committed baseline.
	SteadyState bool
	// Smoke marks cells the fast CI gate (`ctdf bench -smoke`) runs.
	Smoke bool
	// Telemetry attaches a metrics registry to the cell's runs and fills
	// the Result's phase-breakdown cells from it; TelemetryGate holds the
	// instrumented/uninstrumented throughput ratio on the telemetry/
	// pairs.
	Telemetry bool
}

// Matrix returns the benchmark matrix: the E11 schema comparison, the
// E12 engine comparison, and the simulator-scaling sizes of
// BenchmarkScalingSimulate.
func Matrix() []Case {
	var cases []Case
	e11Configs := []struct {
		name string
		opt  ctdf.Options
	}{
		{"schema1", ctdf.Options{Schema: ctdf.Schema1}},
		{"schema2", ctdf.Options{Schema: ctdf.Schema2}},
		{"schema2-opt", ctdf.Options{Schema: ctdf.Schema2Opt}},
		{"mem-elim", ctdf.Options{Schema: ctdf.Schema2Opt, EliminateMemory: true}},
		// The graph-optimizer counterpart of mem-elim: same translation
		// run through internal/opt (fusion, switch sinking, merge
		// collapsing, dead-token elimination). OptGate holds each +opt
		// cell to no-worse cycles/ops than its base cell.
		{"mem-elim+opt", ctdf.Options{Schema: ctdf.Schema2Opt, EliminateMemory: true, Optimize: 1}},
	}
	for _, wn := range []string{"running-example", "fib-iterative", "matmul-2x2-flat", "independent-chains"} {
		w := workloads.MustByName(wn)
		for _, c := range e11Configs {
			cases = append(cases, Case{
				Name:        "e11/" + wn + "/" + c.name,
				Source:      w.Source,
				Opt:         c.opt,
				Run:         ctdf.RunConfig{MemLatency: 4},
				SteadyState: wn == "fib-iterative" && strings.HasPrefix(c.name, "mem-elim"),
				Smoke:       wn == "fib-iterative" || wn == "running-example",
			})
		}
	}
	// The telemetry overhead pair: one workload measured with the
	// registry off and on, otherwise identical. TelemetryGate rides on
	// these two cells in the smoke run.
	fib := workloads.MustByName("fib-iterative")
	for _, on := range []bool{false, true} {
		name := "telemetry/fib-iterative/off"
		if on {
			name = "telemetry/fib-iterative/on"
		}
		cases = append(cases, Case{
			Name:   name,
			Source: fib.Source,
			Opt:    ctdf.Options{Schema: ctdf.Schema2Opt},
			Run:    ctdf.RunConfig{MemLatency: 4},
			Smoke:  true, Telemetry: on,
		})
	}
	nested := workloads.MustByName("nested-loops")
	cases = append(cases,
		Case{
			Name: "e12/nested-loops/machine", Source: nested.Source,
			Opt: ctdf.Options{Schema: ctdf.Schema2Opt}, Run: ctdf.RunConfig{Engine: ctdf.EngineMachine},
			SteadyState: true, Smoke: true,
		},
		Case{
			Name: "e12/nested-loops/channels", Source: nested.Source,
			Opt: ctdf.Options{Schema: ctdf.Schema2Opt}, Run: ctdf.RunConfig{Engine: ctdf.EngineChannels},
		},
	)
	for _, size := range []int{4, 8, 16} {
		w := workloads.Random(4242, size, 3)
		cases = append(cases, Case{
			Name:        fmt.Sprintf("scaling/size=%d", size),
			Source:      w.Source,
			Opt:         ctdf.Options{Schema: ctdf.Schema2Opt},
			Run:         ctdf.RunConfig{},
			SteadyState: size == 16,
			Smoke:       size == 16,
		})
		if size == 16 {
			// Optimized counterpart of the largest scaling cell, so the
			// smoke gate holds the optimizer's non-regression bar
			// (OptGate) on a generated workload too, not just the paper
			// kernels.
			cases = append(cases, Case{
				Name:   fmt.Sprintf("scaling/size=%d+opt", size),
				Source: w.Source,
				Opt:    ctdf.Options{Schema: ctdf.Schema2Opt, Optimize: 1},
				Run:    ctdf.RunConfig{},
				Smoke:  true,
			})
		}
	}
	return cases
}

// WorkerMatrix returns the worker-scaling cells (`ctdf bench -cpu`): the
// wide independent-lane workload — sustained issue width proportional to
// the lane count, the shape the sharded machine is built for — run once
// per requested worker count. Memory elimination keeps the firings pure,
// so the parallel fire phase carries nearly all the work. Every cell is
// part of the smoke subset: the scaling gate (ScalingGate) rides on the
// smoke run in scripts/verify.sh.
func WorkerMatrix(counts []int) []Case {
	w := workloads.Wide(64, 60)
	var cases []Case
	for _, n := range counts {
		// Every scaling cell carries the profiler: the committed
		// BENCH_machine.json records each worker count's phase shares,
		// fire imbalance, and remote-token fraction. Both endpoints of
		// the scaling gate are instrumented, so the ratio stays fair.
		cases = append(cases, Case{
			Name:   fmt.Sprintf("workers/%s/w%d", w.Name, n),
			Source: w.Source,
			Opt:    ctdf.Options{Schema: ctdf.Schema2Opt, EliminateMemory: true},
			Run:    ctdf.RunConfig{Workers: n},
			Smoke:  true, Telemetry: true,
		})
	}
	return cases
}

// Result is one measured cell.
type Result struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// BestNsPerOp is the fastest single iteration — the noise-robust
	// number the worker-scaling gate compares (see measure).
	BestNsPerOp float64 `json:"best_ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	// Cycles and Ops describe one simulated execution of the cell.
	Cycles int `json:"cycles"`
	Ops    int `json:"ops"`
	// CyclesPerSec and FiresPerSec are simulated throughput per wall
	// second (cycles only on the cycle-driven machine).
	CyclesPerSec float64 `json:"cycles_per_sec"`
	FiresPerSec  float64 `json:"fires_per_sec"`
	// AllocsPerFiring is AllocsPerOp spread over the operator firings of
	// one run — the steady-state allocation pressure of the hot path.
	AllocsPerFiring float64 `json:"allocs_per_firing"`
	// SeedNsPerOp and SeedAllocsPerOp are the committed pre-overhaul
	// numbers for this cell (0 when the seed baseline lacks it), and
	// Speedup is SeedNsPerOp/NsPerOp.
	SeedNsPerOp     float64 `json:"seed_ns_per_op,omitempty"`
	SeedAllocsPerOp float64 `json:"seed_allocs_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	SteadyState     bool    `json:"steady_state,omitempty"`
	// Workers is the sharded-machine worker count of the cell (0 for
	// sequential cells outside the worker matrix).
	Workers int `json:"workers,omitempty"`
	// Telemetry phase cells, filled only on instrumented cells: the
	// share of accumulated busy wall time each BSP phase took across all
	// measured iterations (barrier = coordinator time parked at the two
	// phase barriers), the fire-phase load imbalance (slowest shard over
	// the mean, 1.0 = perfectly balanced), and the fraction of
	// shard-sourced tokens delivered across shards.
	Telemetry        bool    `json:"telemetry,omitempty"`
	SelectShare      float64 `json:"select_share,omitempty"`
	FireShare        float64 `json:"fire_share,omitempty"`
	RetireShare      float64 `json:"retire_share,omitempty"`
	DeliverShare     float64 `json:"deliver_share,omitempty"`
	BarrierShare     float64 `json:"barrier_share,omitempty"`
	FireImbalance    float64 `json:"fire_imbalance,omitempty"`
	RemoteTokenShare float64 `json:"remote_token_share,omitempty"`
}

// Report is the full benchmark-trajectory artifact (BENCH_machine.json).
type Report struct {
	GoVersion string `json:"go_version"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GOMAXPROCS is the host parallelism the run had available; the
	// worker-scaling gate is host-aware (ScalingGate), so the committed
	// report must record what the numbers were measured against.
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchtime  string   `json:"benchtime"`
	Results    []Result `json:"results"`
	// MaxScalingSpeedup is the speedup vs seed on the largest scaling
	// cell — the headline number EXPERIMENTS.md E16 asserts.
	MaxScalingSpeedup float64 `json:"max_scaling_speedup,omitempty"`
	// WorkerSpeedup is fires/sec at the largest measured worker count
	// over fires/sec at workers=1 on the worker matrix (0 when the run
	// didn't measure it). See SCALING.md for the methodology.
	WorkerSpeedup float64 `json:"worker_speedup,omitempty"`
}

// seedBaseline is the committed measurement of this same matrix on the
// pre-overhaul engine.
//
//go:embed seed_baseline.json
var seedBaselineJSON []byte

type seedEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// SeedBaseline returns the committed pre-overhaul numbers by cell name.
func SeedBaseline() (map[string]seedEntry, error) {
	out := map[string]seedEntry{}
	if err := json.Unmarshal(seedBaselineJSON, &out); err != nil {
		return nil, fmt.Errorf("bench: corrupt seed_baseline.json: %w", err)
	}
	return out, nil
}

// measure times fn until benchtime has elapsed (at least one iteration)
// and reports per-iteration wall time (mean and fastest-iteration) and
// allocation counts. The fastest iteration is what noise-sensitive
// comparisons (the worker-scaling gate) use: on shared CI hosts,
// hypervisor steal time inflates the mean by integer factors, while the
// minimum tracks what the code can actually do.
func measure(fn func() error, benchtime time.Duration) (nsPerOp, bestNsPerOp, allocsPerOp, bytesPerOp float64, iters int, err error) {
	if err := fn(); err != nil { // warmup + validity
		return 0, 0, 0, 0, 0, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	n := 0
	best := time.Duration(0)
	for elapsed := time.Duration(0); n == 0 || elapsed < benchtime; elapsed = time.Since(start) {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, 0, 0, 0, 0, err
		}
		if d := time.Since(t0); n == 0 || d < best {
			best = d
		}
		n++
	}
	total := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(total.Nanoseconds()) / float64(n),
		float64(best.Nanoseconds()),
		float64(after.Mallocs-before.Mallocs) / float64(n),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		n, nil
}

// RunCase measures one cell.
func RunCase(c Case, benchtime time.Duration) (Result, error) {
	p, err := ctdf.Compile(c.Source)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	d, err := p.Translate(c.Opt)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	run := c.Run
	var reg *ctdf.Telemetry
	if c.Telemetry {
		reg = ctdf.NewTelemetry()
		run.Telemetry = reg
	}
	var last *ctdf.Result
	ns, bestNs, allocs, bytes, iters, err := measure(func() error {
		r, err := d.Run(run)
		last = r
		return err
	}, benchtime)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	res := Result{
		Name: c.Name, NsPerOp: ns, BestNsPerOp: bestNs, AllocsPerOp: allocs, BytesPerOp: bytes,
		Iterations: iters, SteadyState: c.SteadyState, Workers: c.Run.Workers,
		Telemetry: c.Telemetry,
	}
	if reg != nil {
		fillPhaseCells(&res, reg)
	}
	if last != nil {
		res.Cycles = last.Cycles
		res.Ops = last.Ops
		if ns > 0 {
			res.CyclesPerSec = float64(last.Cycles) / (ns / 1e9)
			res.FiresPerSec = float64(last.Ops) / (ns / 1e9)
		}
		if last.Ops > 0 {
			res.AllocsPerFiring = allocs / float64(last.Ops)
		}
	}
	return res, nil
}

// RunMatrix measures the matrix (the smoke subset when smokeOnly) plus
// the worker-scaling matrix at the given worker counts (none when cpus
// is empty), and fills in the seed-baseline trajectory and the
// worker-speedup headline.
func RunMatrix(benchtime time.Duration, smokeOnly bool, cpus []int) (*Report, error) {
	seed, err := SeedBaseline()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime.String(),
	}
	cases := Matrix()
	cases = append(cases, WorkerMatrix(cpus)...)
	for _, c := range cases {
		if smokeOnly && !c.Smoke {
			continue
		}
		r, err := RunCase(c, benchtime)
		if err != nil {
			return nil, err
		}
		if s, ok := seed[c.Name]; ok && r.NsPerOp > 0 {
			r.SeedNsPerOp = s.NsPerOp
			r.SeedAllocsPerOp = s.AllocsPerOp
			r.Speedup = s.NsPerOp / r.NsPerOp
		}
		if c.Name == "scaling/size=16" {
			rep.MaxScalingSpeedup = r.Speedup
		}
		rep.Results = append(rep.Results, r)
	}
	if base, best, over := workerEndpoints(rep); base != nil {
		// Informational headline: the largest measured worker count, even
		// when it oversubscribes the host (the gate itself is host-aware).
		top := over
		if top == nil {
			top = best
		}
		if top != nil {
			if b, g := bestFires(base), bestFires(top); b > 0 && g > 0 {
				rep.WorkerSpeedup = g / b
			}
		}
	}
	return rep, nil
}

// fillPhaseCells folds the registry accumulated across a cell's
// iterations into the Result's phase cells. Shares are percentages of
// total busy wall time; the registry sums over every iteration, so they
// describe the cell's average cycle.
func fillPhaseCells(res *Result, reg *ctdf.Telemetry) {
	b := reg.Snapshot().MachineBreakdown()
	sum := func(xs []int64) (n int64) {
		for _, x := range xs {
			n += x
		}
		return n
	}
	fire, deliv := sum(b.FireNs), sum(b.DeliverNs)
	bar := b.BarrierFireNs + b.BarrierDeliverNs
	total := b.SelectNs + b.RetireNs + fire + deliv + bar
	if total == 0 {
		return
	}
	pct := func(ns int64) float64 { return 100 * float64(ns) / float64(total) }
	res.SelectShare = pct(b.SelectNs)
	res.FireShare = pct(fire)
	res.RetireShare = pct(b.RetireNs)
	res.DeliverShare = pct(deliv)
	res.BarrierShare = pct(bar)
	if len(b.FireNs) > 1 && fire > 0 {
		var max int64
		for _, x := range b.FireNs {
			if x > max {
				max = x
			}
		}
		res.FireImbalance = float64(max) * float64(len(b.FireNs)) / float64(fire)
	}
	if b.ShardTokens > 0 {
		res.RemoteTokenShare = float64(b.RemoteTokens) / float64(b.ShardTokens)
	}
}

// bestFires is the cell's fires/sec at its fastest observed iteration —
// the number the scaling comparisons use (see measure).
func bestFires(r *Result) float64 {
	if r.BestNsPerOp <= 0 || r.Ops <= 0 {
		return 0
	}
	return float64(r.Ops) / (r.BestNsPerOp / 1e9)
}

// workerEndpoints picks out of a report's worker matrix: the workers=1
// cell, the largest-worker-count cell that fits the host's core budget
// (the cell the scaling gate scores — a count above GOMAXPROCS cannot
// physically speed up), and the largest oversubscribed cell (gated only
// against the pathology floor).
func workerEndpoints(rep *Report) (base, best, over *Result) {
	for i := range rep.Results {
		r := &rep.Results[i]
		if !strings.HasPrefix(r.Name, "workers/") {
			continue
		}
		switch {
		case r.Workers <= 1:
			base = r
		case r.Workers <= rep.GOMAXPROCS:
			if best == nil || r.Workers > best.Workers {
				best = r
			}
		default:
			if over == nil || r.Workers > over.Workers {
				over = r
			}
		}
	}
	return base, best, over
}

// Scaling-gate floors: minimum best-iteration fires/sec ratio versus
// the workers=1 cell, chosen by how many of the measured workers fit
// the host (see ScalingGate). SCALING.md documents the rationale; the
// doc-sync test in docs_test.go keeps its quoted numbers equal to
// these.
const (
	ScalingFloorFull    = 2.5  // >= 8 usable slots: the acceptance bar
	ScalingFloorHalf    = 0.75 // 4-7 slots: regression tripwire
	ScalingFloorTwo     = 0.35 // 2-3 slots: parity is best case, gate collapse
	ScalingFloorOversub = 0.2  // workers > GOMAXPROCS: pathology floor
)

// ScalingGate checks the worker matrix against host-aware floors. The
// acceptance bar — >=2.5x fires/sec at 8 workers — is only physically
// reachable with 8 cores, so the gate scores the largest worker count
// <= GOMAXPROCS and scales its expectation to the host:
//
//   - with >=8 usable slots the full 2.5x floor applies;
//   - with 4-7 slots the floor is 0.75x: the host cannot demonstrate
//     the scaling the bar protects, so this (and the tiers below) are
//     regression tripwires, not performance claims;
//   - with 2-3 slots the floor is 0.35x — per-cycle phase barriers and
//     sequential merges cost roughly what two cores win back on this
//     engine's token grain (SCALING.md quantifies this), so two-core
//     parity is the realistic best case and only collapse is gated;
//   - worker counts above GOMAXPROCS are informational, gated only
//     against a catastrophic-regression floor (>=0.2x).
//
// All comparisons use each cell's fastest observed iteration (BestNsPerOp)
// rather than the mean: shared CI hosts show multi-x steal-time noise,
// and the minimum is the only statistic stable enough to gate on.
// GOMAXPROCS and per-cell worker counts are recorded in the report so a
// committed BENCH_machine.json states which bar its numbers cleared.
func ScalingGate(rep *Report) []string {
	base, best, over := workerEndpoints(rep)
	if base == nil || bestFires(base) <= 0 {
		return nil
	}
	var violations []string
	check := func(cell *Result, floor float64, kind string) {
		if cell == nil {
			return
		}
		g := bestFires(cell)
		if g <= 0 {
			return
		}
		speedup := g / bestFires(base)
		if speedup < floor {
			violations = append(violations, fmt.Sprintf(
				"%s: best-iteration fires/sec %.2fx of %s is below the %.2fx %s floor (GOMAXPROCS=%d)",
				cell.Name, speedup, base.Name, floor, kind, rep.GOMAXPROCS))
		}
	}
	if best != nil {
		slots := best.Workers
		floor := ScalingFloorTwo
		switch {
		case slots >= 8:
			floor = ScalingFloorFull
		case slots >= 4:
			floor = ScalingFloorHalf
		}
		check(best, floor, "scaling")
	}
	check(over, ScalingFloorOversub, "oversubscription")
	return violations
}

// TelemetryOverheadFloor is the minimum instrumented/uninstrumented
// best-iteration fires/sec ratio TelemetryGate accepts on the
// telemetry/ cell pairs. The probe is designed to cost only phase-
// boundary work — a handful of clock reads and atomic folds per cycle,
// nothing per firing — so on the short-cycle fib workload the
// instrumented run keeps well over half its throughput; the floor sits
// at 0.4 to leave room for shared-host noise while still catching an
// accidental per-firing instrument.
const TelemetryOverheadFloor = 0.4

// TelemetryGate holds the telemetry overhead tripwire: every
// "telemetry/<workload>/on" cell is compared against its "/off" twin.
func TelemetryGate(rep *Report) []string {
	cells := map[string]*Result{}
	for i := range rep.Results {
		r := &rep.Results[i]
		if strings.HasPrefix(r.Name, "telemetry/") {
			cells[r.Name] = r
		}
	}
	var violations []string
	for name, on := range cells {
		base, ok := strings.CutSuffix(name, "/on")
		if !ok {
			continue
		}
		off, ok := cells[base+"/off"]
		if !ok {
			continue
		}
		b, g := bestFires(off), bestFires(on)
		if b <= 0 || g <= 0 {
			continue
		}
		if ratio := g / b; ratio < TelemetryOverheadFloor {
			violations = append(violations, fmt.Sprintf(
				"%s: instrumented best-iteration fires/sec is %.2fx of %s, below the %.2fx telemetry-overhead floor",
				name, ratio, off.Name, TelemetryOverheadFloor))
		}
	}
	sort.Strings(violations)
	return violations
}

// OptGate is the graph-optimizer non-regression gate: every "+opt"
// cell in the report is compared against its base cell (same name minus
// the suffix). The simulated metrics are deterministic, so they are
// gated exactly — an optimized graph may never take more cycles or fire
// more operators than the graph it was rewritten from. Wall time is
// gated loosely (best iteration within 1.5x of the base cell's): the
// optimized run does strictly less work, so only a real regression —
// e.g. fused-operator evaluation going quadratic — can trip it.
func OptGate(rep *Report) []string {
	base := map[string]*Result{}
	for i := range rep.Results {
		r := &rep.Results[i]
		base[r.Name] = r
	}
	var violations []string
	for _, r := range base {
		bn, ok := strings.CutSuffix(r.Name, "+opt")
		if !ok {
			continue
		}
		b, ok := base[bn]
		if !ok {
			continue
		}
		if r.Cycles > b.Cycles {
			violations = append(violations, fmt.Sprintf(
				"%s: optimized graph takes %d cycles vs %d unoptimized", r.Name, r.Cycles, b.Cycles))
		}
		if r.Ops > b.Ops {
			violations = append(violations, fmt.Sprintf(
				"%s: optimized graph fires %d operators vs %d unoptimized", r.Name, r.Ops, b.Ops))
		}
		if r.BestNsPerOp > 0 && b.BestNsPerOp > 0 && r.BestNsPerOp > 1.5*b.BestNsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: best-iteration %.0fns/op is over 1.5x the unoptimized cell's %.0fns/op",
				r.Name, r.BestNsPerOp, b.BestNsPerOp))
		}
	}
	sort.Strings(violations)
	return violations
}

// Gate checks a fresh (smoke) report against the committed
// BENCH_machine.json: every steady-state cell's allocs/op must stay
// within tolerance (a fraction, e.g. 0.25) of the committed number plus
// a small absolute slack for measurement noise. It returns one message
// per violation.
func Gate(fresh, committed *Report, tolerance float64) []string {
	base := map[string]Result{}
	for _, r := range committed.Results {
		base[r.Name] = r
	}
	var violations []string
	for _, r := range fresh.Results {
		if !r.SteadyState {
			continue
		}
		b, ok := base[r.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: steady-state cell missing from committed baseline (rerun `ctdf bench`)", r.Name))
			continue
		}
		limit := b.AllocsPerOp*(1+tolerance) + 16
		if r.AllocsPerOp > limit {
			violations = append(violations, fmt.Sprintf("%s: allocs/op %.1f exceeds committed %.1f (+%d%% tolerance = %.1f)",
				r.Name, r.AllocsPerOp, b.AllocsPerOp, int(tolerance*100), limit))
		}
	}
	return violations
}

// Table renders the report as an aligned text table.
func (rep *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %12s %11s %12s %13s %9s\n",
		"case", "ns/op", "allocs/op", "cycles/sec", "fires/sec", "speedup")
	for _, r := range rep.Results {
		speedup := "-"
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(&b, "%-34s %12.0f %11.1f %12.0f %13.0f %9s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.CyclesPerSec, r.FiresPerSec, speedup)
		if r.Telemetry && r.SelectShare+r.FireShare+r.RetireShare+r.DeliverShare > 0 {
			fmt.Fprintf(&b, "%-34s   select %.0f%%  fire %.0f%%  retire %.0f%%  deliver %.0f%%  barrier %.0f%%",
				"  phases:", r.SelectShare, r.FireShare, r.RetireShare, r.DeliverShare, r.BarrierShare)
			if r.FireImbalance > 0 {
				fmt.Fprintf(&b, "  imbalance %.2fx", r.FireImbalance)
			}
			if r.RemoteTokenShare > 0 {
				fmt.Fprintf(&b, "  remote %.0f%%", 100*r.RemoteTokenShare)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
