// Package bench is the benchmark-trajectory harness behind `ctdf bench`:
// it measures the execution engines on the E11/E12 workload matrix plus
// the simulator-scaling sizes, writes the results as BENCH_machine.json,
// and gates steady-state allocation regressions against the committed
// numbers. The committed seed_baseline.json holds the same matrix
// measured on the pre-overhaul engine (per-cycle sort.Slice scheduling,
// string-keyed monolithic matching store), so every report carries the
// speedup trajectory since the seed. See PERFORMANCE.md.
package bench

import (
	_ "embed"
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"ctdf"
	"ctdf/internal/workloads"
)

// Case is one benchmark cell: a workload × translation × run
// configuration measured end to end (translate once, Run per iteration).
type Case struct {
	// Name is the stable cell identifier ("e11/fib-iterative/mem-elim").
	Name string
	// Source is the workload program text.
	Source string
	// Opt translates the program; Run executes it.
	Opt ctdf.Options
	Run ctdf.RunConfig
	// SteadyState marks the allocation-gated cells: long-running loop
	// workloads whose per-firing hot path must not allocate, so their
	// allocs/op must stay flat against the committed baseline.
	SteadyState bool
	// Smoke marks cells the fast CI gate (`ctdf bench -smoke`) runs.
	Smoke bool
}

// Matrix returns the benchmark matrix: the E11 schema comparison, the
// E12 engine comparison, and the simulator-scaling sizes of
// BenchmarkScalingSimulate.
func Matrix() []Case {
	var cases []Case
	e11Configs := []struct {
		name string
		opt  ctdf.Options
	}{
		{"schema1", ctdf.Options{Schema: ctdf.Schema1}},
		{"schema2", ctdf.Options{Schema: ctdf.Schema2}},
		{"schema2-opt", ctdf.Options{Schema: ctdf.Schema2Opt}},
		{"mem-elim", ctdf.Options{Schema: ctdf.Schema2Opt, EliminateMemory: true}},
	}
	for _, wn := range []string{"running-example", "fib-iterative", "matmul-2x2-flat", "independent-chains"} {
		w := workloads.MustByName(wn)
		for _, c := range e11Configs {
			cases = append(cases, Case{
				Name:        "e11/" + wn + "/" + c.name,
				Source:      w.Source,
				Opt:         c.opt,
				Run:         ctdf.RunConfig{MemLatency: 4},
				SteadyState: wn == "fib-iterative" && c.name == "mem-elim",
				Smoke:       wn == "fib-iterative" || wn == "running-example",
			})
		}
	}
	nested := workloads.MustByName("nested-loops")
	cases = append(cases,
		Case{
			Name: "e12/nested-loops/machine", Source: nested.Source,
			Opt: ctdf.Options{Schema: ctdf.Schema2Opt}, Run: ctdf.RunConfig{Engine: ctdf.EngineMachine},
			SteadyState: true, Smoke: true,
		},
		Case{
			Name: "e12/nested-loops/channels", Source: nested.Source,
			Opt: ctdf.Options{Schema: ctdf.Schema2Opt}, Run: ctdf.RunConfig{Engine: ctdf.EngineChannels},
		},
	)
	for _, size := range []int{4, 8, 16} {
		w := workloads.Random(4242, size, 3)
		cases = append(cases, Case{
			Name:        fmt.Sprintf("scaling/size=%d", size),
			Source:      w.Source,
			Opt:         ctdf.Options{Schema: ctdf.Schema2Opt},
			Run:         ctdf.RunConfig{},
			SteadyState: size == 16,
			Smoke:       size == 16,
		})
	}
	return cases
}

// Result is one measured cell.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	// Cycles and Ops describe one simulated execution of the cell.
	Cycles int `json:"cycles"`
	Ops    int `json:"ops"`
	// CyclesPerSec and FiresPerSec are simulated throughput per wall
	// second (cycles only on the cycle-driven machine).
	CyclesPerSec float64 `json:"cycles_per_sec"`
	FiresPerSec  float64 `json:"fires_per_sec"`
	// AllocsPerFiring is AllocsPerOp spread over the operator firings of
	// one run — the steady-state allocation pressure of the hot path.
	AllocsPerFiring float64 `json:"allocs_per_firing"`
	// SeedNsPerOp and SeedAllocsPerOp are the committed pre-overhaul
	// numbers for this cell (0 when the seed baseline lacks it), and
	// Speedup is SeedNsPerOp/NsPerOp.
	SeedNsPerOp     float64 `json:"seed_ns_per_op,omitempty"`
	SeedAllocsPerOp float64 `json:"seed_allocs_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	SteadyState     bool    `json:"steady_state,omitempty"`
}

// Report is the full benchmark-trajectory artifact (BENCH_machine.json).
type Report struct {
	GoVersion string   `json:"go_version"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Benchtime string   `json:"benchtime"`
	Results   []Result `json:"results"`
	// MaxScalingSpeedup is the speedup vs seed on the largest scaling
	// cell — the headline number EXPERIMENTS.md E16 asserts.
	MaxScalingSpeedup float64 `json:"max_scaling_speedup,omitempty"`
}

// seedBaseline is the committed measurement of this same matrix on the
// pre-overhaul engine.
//
//go:embed seed_baseline.json
var seedBaselineJSON []byte

type seedEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// SeedBaseline returns the committed pre-overhaul numbers by cell name.
func SeedBaseline() (map[string]seedEntry, error) {
	out := map[string]seedEntry{}
	if err := json.Unmarshal(seedBaselineJSON, &out); err != nil {
		return nil, fmt.Errorf("bench: corrupt seed_baseline.json: %w", err)
	}
	return out, nil
}

// measure times fn until benchtime has elapsed (at least one iteration)
// and reports per-iteration wall time and allocation counts.
func measure(fn func() error, benchtime time.Duration) (nsPerOp, allocsPerOp, bytesPerOp float64, iters int, err error) {
	if err := fn(); err != nil { // warmup + validity
		return 0, 0, 0, 0, err
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	n := 0
	for elapsed := time.Duration(0); n == 0 || elapsed < benchtime; elapsed = time.Since(start) {
		if err := fn(); err != nil {
			return 0, 0, 0, 0, err
		}
		n++
	}
	total := time.Since(start)
	runtime.ReadMemStats(&after)
	return float64(total.Nanoseconds()) / float64(n),
		float64(after.Mallocs-before.Mallocs) / float64(n),
		float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		n, nil
}

// RunCase measures one cell.
func RunCase(c Case, benchtime time.Duration) (Result, error) {
	p, err := ctdf.Compile(c.Source)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	d, err := p.Translate(c.Opt)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	var last *ctdf.Result
	ns, allocs, bytes, iters, err := measure(func() error {
		r, err := d.Run(c.Run)
		last = r
		return err
	}, benchtime)
	if err != nil {
		return Result{}, fmt.Errorf("%s: %w", c.Name, err)
	}
	res := Result{
		Name: c.Name, NsPerOp: ns, AllocsPerOp: allocs, BytesPerOp: bytes,
		Iterations: iters, SteadyState: c.SteadyState,
	}
	if last != nil {
		res.Cycles = last.Cycles
		res.Ops = last.Ops
		if ns > 0 {
			res.CyclesPerSec = float64(last.Cycles) / (ns / 1e9)
			res.FiresPerSec = float64(last.Ops) / (ns / 1e9)
		}
		if last.Ops > 0 {
			res.AllocsPerFiring = allocs / float64(last.Ops)
		}
	}
	return res, nil
}

// RunMatrix measures the matrix (the smoke subset when smokeOnly) and
// fills in the seed-baseline trajectory.
func RunMatrix(benchtime time.Duration, smokeOnly bool) (*Report, error) {
	seed, err := SeedBaseline()
	if err != nil {
		return nil, err
	}
	rep := &Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Benchtime: benchtime.String(),
	}
	for _, c := range Matrix() {
		if smokeOnly && !c.Smoke {
			continue
		}
		r, err := RunCase(c, benchtime)
		if err != nil {
			return nil, err
		}
		if s, ok := seed[c.Name]; ok && r.NsPerOp > 0 {
			r.SeedNsPerOp = s.NsPerOp
			r.SeedAllocsPerOp = s.AllocsPerOp
			r.Speedup = s.NsPerOp / r.NsPerOp
		}
		if c.Name == "scaling/size=16" {
			rep.MaxScalingSpeedup = r.Speedup
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}

// Gate checks a fresh (smoke) report against the committed
// BENCH_machine.json: every steady-state cell's allocs/op must stay
// within tolerance (a fraction, e.g. 0.25) of the committed number plus
// a small absolute slack for measurement noise. It returns one message
// per violation.
func Gate(fresh, committed *Report, tolerance float64) []string {
	base := map[string]Result{}
	for _, r := range committed.Results {
		base[r.Name] = r
	}
	var violations []string
	for _, r := range fresh.Results {
		if !r.SteadyState {
			continue
		}
		b, ok := base[r.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: steady-state cell missing from committed baseline (rerun `ctdf bench`)", r.Name))
			continue
		}
		limit := b.AllocsPerOp*(1+tolerance) + 16
		if r.AllocsPerOp > limit {
			violations = append(violations, fmt.Sprintf("%s: allocs/op %.1f exceeds committed %.1f (+%d%% tolerance = %.1f)",
				r.Name, r.AllocsPerOp, b.AllocsPerOp, int(tolerance*100), limit))
		}
	}
	return violations
}

// Table renders the report as an aligned text table.
func (rep *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %12s %11s %12s %13s %9s\n",
		"case", "ns/op", "allocs/op", "cycles/sec", "fires/sec", "speedup")
	for _, r := range rep.Results {
		speedup := "-"
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.Speedup)
		}
		fmt.Fprintf(&b, "%-34s %12.0f %11.1f %12.0f %13.0f %9s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.CyclesPerSec, r.FiresPerSec, speedup)
	}
	return b.String()
}
