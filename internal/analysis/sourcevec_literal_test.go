package analysis

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/workloads"
)

// acyclicPrograms collects loop-free workloads and random programs.
func acyclicPrograms(t *testing.T) []*cfg.Graph {
	t.Helper()
	var out []*cfg.Graph
	add := func(src string) {
		g := buildCFG(t, src)
		if _, loops, err := cfg.InsertLoopControl(g); err == nil && len(loops) == 0 {
			out = append(out, g)
		}
	}
	for _, w := range workloads.All() {
		add(w.Source)
	}
	for seed := int64(700); seed < 720; seed++ {
		add(workloads.Random(seed, 4, 0).Source) // depth 0: no loops generated
	}
	return out
}

// The production source-vector computation and the literal Figure 11
// transliteration must name the same ultimate source for every token
// consumer once single-source joins are resolved away.
func TestSourceVectorsMatchLiteralFigure11(t *testing.T) {
	for _, g := range acyclicPrograms(t) {
		universe := g.Prog.AllNames()
		need := VarNeed(g)
		cd := ComputeControlDeps(g)
		placement := PlaceSwitches(g, cd, need)

		prod, err := ComputeSourceVectors(g, nil, universe, need, placement)
		if err != nil {
			t.Fatal(err)
		}
		lit, err := ComputeSourceVectorsLiteral(g, universe, need, placement)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range g.SortedIDs() {
			for _, tok := range universe {
				ps := prod.SV[id][tok]
				ls := lit.SV[id][tok]
				// Compare resolved source sets.
				resolve := func(sv *SourceVectors, in []Source) map[Source]bool {
					out := map[Source]bool{}
					for _, s := range in {
						out[sv.ResolveThroughJoins(g, s, tok)] = true
					}
					return out
				}
				pr := resolve(prod, ps)
				lr := resolve(lit, ls)
				if len(pr) != len(lr) {
					t.Errorf("node n%d tok %s: production %v vs literal %v", id, tok, ps, ls)
					continue
				}
				for s := range pr {
					if !lr[s] {
						t.Errorf("node n%d tok %s: production source %s missing from literal %v", id, tok, s, ls)
					}
				}
			}
		}
	}
}

func TestLiteralRejectsLoops(t *testing.T) {
	g := buildCFG(t, workloads.RunningExample.Source)
	tg, _, err := cfg.InsertLoopControl(g)
	if err != nil {
		t.Fatal(err)
	}
	need := VarNeed(tg)
	cd := ComputeControlDeps(tg)
	placement := PlaceSwitches(tg, cd, need)
	if _, err := ComputeSourceVectorsLiteral(tg, tg.Prog.AllNames(), need, placement); err == nil {
		t.Error("literal reference must reject loop-control graphs")
	}
}
