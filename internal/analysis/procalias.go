package analysis

import (
	"fmt"
	"sort"

	"ctdf/internal/interp"
	"ctdf/internal/lang"
)

// DeriveAliasStructures computes, for every procedure, the alias structure
// its formals inherit from the program's call sites — the paper's §5
// example:
//
//	SUBROUTINE F(X, Y, Z)
//	CALL F(A, B, A)   → X ~ Z
//	CALL F(C, D, D)   → Y ~ Z
//
// giving [X]={X,Z}, [Y]={Y,Z}, [Z]={X,Y,Z} with X and Y NOT aliased (the
// relation is not transitive). Two formals may alias when some call passes
// the same variable — or two variables that may themselves alias — in
// their positions; aliasing propagates through nested calls (a caller's
// formals carry their own derived relation into the callee). A formal also
// aliases every global variable that may be passed in its position, since
// the body can name that global directly.
//
// The returned structure for procedure F ranges over F's formals plus all
// global scalars; global-global pairs keep the program's declared
// relation.
func DeriveAliasStructures(prog *lang.Program) (map[string]*AliasStructure, error) {
	procs := map[string]*lang.ProcDecl{}
	for i := range prog.Procedures {
		procs[prog.Procedures[i].Name] = &prog.Procedures[i]
	}
	globals := map[string]bool{}
	for _, v := range prog.Vars {
		globals[v.Name] = true
	}

	// may[context][a][b]: names a, b may denote one location in that
	// context ("" = main). Seed the main context with declared aliases.
	may := map[string]map[[2]string]bool{}
	relate := func(ctx, a, b string) {
		if may[ctx] == nil {
			may[ctx] = map[[2]string]bool{}
		}
		may[ctx][[2]string{a, b}] = true
		may[ctx][[2]string{b, a}] = true
	}
	related := func(ctx, a, b string) bool {
		return a == b || may[ctx][[2]string{a, b}]
	}
	for _, al := range prog.Aliases {
		relate("", al.A, al.B)
	}

	// Propagate caller relations to callees in call-graph topological
	// order (callers first). The call graph is acyclic (checked by the
	// front end); iterate to a fixpoint for simplicity.
	sites := prog.Calls()
	for changed := true; changed; {
		changed = false
		for _, cs := range sites {
			pr, ok := procs[cs.Call.Proc]
			if !ok {
				return nil, fmt.Errorf("analysis: call of unknown procedure %s", cs.Call.Proc)
			}
			ctx := cs.Caller
			callee := pr.Name
			for i, fi := range pr.Params {
				ai := cs.Call.Args[i]
				// Formal/formal pairs.
				for j := i + 1; j < len(pr.Params); j++ {
					aj := cs.Call.Args[j]
					if related(ctx, ai, aj) && !related(callee, fi, pr.Params[j]) {
						relate(callee, fi, pr.Params[j])
						changed = true
					}
				}
				// Formal/global pairs: the argument is (or may alias) a
				// global the body could name directly.
				for g := range globals {
					if related(ctx, ai, g) && !related(callee, fi, g) {
						relate(callee, fi, g)
						changed = true
					}
				}
			}
		}
	}

	out := map[string]*AliasStructure{}
	for name, pr := range procs {
		vars := append([]string(nil), pr.Params...)
		for g := range globals {
			vars = append(vars, g)
		}
		sort.Strings(vars)
		a := &AliasStructure{rel: map[string]map[string]bool{}}
		a.vars = vars
		for _, v := range vars {
			a.rel[v] = map[string]bool{v: true}
		}
		for pair := range may[name] {
			if a.rel[pair[0]] != nil && a.rel[pair[1]] != nil {
				a.rel[pair[0]][pair[1]] = true
			}
		}
		// Globals keep their declared relation inside the body too.
		for _, al := range prog.Aliases {
			if a.rel[al.A] != nil && a.rel[al.B] != nil {
				a.rel[al.A][al.B] = true
				a.rel[al.B][al.A] = true
			}
		}
		out[name] = a
	}
	return out, nil
}

// StandaloneProc builds the "separate compilation" view of a procedure:
// a program whose variables are the formals plus the globals, whose alias
// declarations come from the derived alias structure, and whose body is
// the procedure body. Translating it under Schema 3 yields one dataflow
// graph that is correct under the binding induced by any call site.
func StandaloneProc(prog *lang.Program, name string, derived *AliasStructure) (*lang.Program, error) {
	var pr *lang.ProcDecl
	for i := range prog.Procedures {
		if prog.Procedures[i].Name == name {
			pr = &prog.Procedures[i]
		}
	}
	if pr == nil {
		return nil, fmt.Errorf("analysis: no procedure %s", name)
	}
	out := &lang.Program{Body: pr.Body}
	// Nested calls inside the body still resolve: carry the transitively
	// called procedure declarations along (they inline when the standalone
	// view is compiled). The subject procedure itself is excluded — its
	// formals become the standalone program's variables.
	needed := map[string]bool{}
	var mark func(stmts []lang.Stmt)
	byName := map[string]*lang.ProcDecl{}
	for i := range prog.Procedures {
		byName[prog.Procedures[i].Name] = &prog.Procedures[i]
	}
	mark = func(stmts []lang.Stmt) {
		for _, s := range stmts {
			switch x := s.(type) {
			case *lang.CallStmt:
				if !needed[x.Proc] {
					needed[x.Proc] = true
					if callee := byName[x.Proc]; callee != nil {
						mark(callee.Body)
					}
				}
			case *lang.If:
				mark(x.Then)
				mark(x.Else)
			case *lang.While:
				mark(x.Body)
			}
		}
	}
	mark(pr.Body)
	for i := range prog.Procedures {
		if n := prog.Procedures[i].Name; n != name && needed[n] {
			out.Procedures = append(out.Procedures, prog.Procedures[i])
		}
	}
	for _, f := range pr.Params {
		out.Vars = append(out.Vars, lang.VarDecl{Name: f})
	}
	for _, v := range prog.Vars {
		out.Vars = append(out.Vars, lang.VarDecl{Name: v.Name})
	}
	out.Arrays = append(out.Arrays, prog.Arrays...)
	seen := map[[2]string]bool{}
	for _, a := range derived.vars {
		for _, b := range derived.Class(a) {
			if a >= b || seen[[2]string{a, b}] {
				continue
			}
			seen[[2]string{a, b}] = true
			out.Aliases = append(out.Aliases, lang.AliasDecl{A: a, B: b})
		}
	}
	if err := lang.Check(out); err != nil {
		return nil, fmt.Errorf("analysis: standalone %s: %w", name, err)
	}
	return out, nil
}

// CallBinding returns the alias binding a particular call site induces on
// the standalone view of its callee: formals passed the same actual share
// a location (and share it with that actual's global name when the actual
// is a global).
func CallBinding(prog *lang.Program, call *lang.CallStmt) (interp.Binding, error) {
	var pr *lang.ProcDecl
	for i := range prog.Procedures {
		if prog.Procedures[i].Name == call.Proc {
			pr = &prog.Procedures[i]
		}
	}
	if pr == nil {
		return nil, fmt.Errorf("analysis: no procedure %s", call.Proc)
	}
	globals := map[string]bool{}
	for _, v := range prog.Vars {
		globals[v.Name] = true
	}
	b := interp.Binding{}
	for i, f := range pr.Params {
		a := call.Args[i]
		if globals[a] {
			// Bind the formal to the global's own cell.
			b[f] = a
		} else {
			// Caller-formal actual: group callee formals by actual name.
			b[f] = "arg$" + a
		}
	}
	// Canonicalize groups whose representative is a synthetic arg$ name to
	// the first member.
	rep := map[string]string{}
	for _, f := range pr.Params {
		c := b[f]
		if globals[c] {
			continue
		}
		if r, ok := rep[c]; ok {
			b[f] = r
		} else {
			rep[c] = f
			b[f] = f
		}
	}
	return b, nil
}
