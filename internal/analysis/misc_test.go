package analysis

import (
	"strings"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/lang"
)

func TestAliasStructureAccessors(t *testing.T) {
	withAliases := NewAliasStructure(lang.MustParse("var x, z\nalias x ~ z\nx := 1\n"))
	if !withAliases.HasAliases() {
		t.Error("HasAliases = false with a declared pair")
	}
	plain := NewAliasStructure(lang.MustParse("var x, z\nx := 1\n"))
	if plain.HasAliases() {
		t.Error("HasAliases = true without declarations")
	}
	if got := plain.Vars(); len(got) != 2 || got[0] != "x" {
		t.Errorf("Vars = %v", got)
	}
}

func TestControlDepAccessors(t *testing.T) {
	g := buildCFG(t, "var a, b\nif a < 1 {\n  b := 2\n}\nb := 3\n")
	cd := ComputeControlDeps(g)
	found := false
	for _, n := range g.SortedIDs() {
		if deps := cd.CD(n); len(deps) > 0 {
			found = true
			// Sorted ascending.
			for i := 1; i < len(deps); i++ {
				if deps[i-1] >= deps[i] {
					t.Error("CD not sorted")
				}
			}
			// Between agrees (the one-shot variant recomputes postdoms).
			for _, f := range deps {
				if !Between(g, f, n) {
					t.Errorf("CD(n%d) ∋ n%d but Between disagrees", n, f)
				}
			}
		}
	}
	if !found {
		t.Error("no control dependences in a conditional program")
	}
}

func TestSourceAndVectorsAccessors(t *testing.T) {
	s := Source{Node: 3, Dir: false}
	if s.String() != "⟨n3,f⟩" {
		t.Errorf("Source.String = %q", s.String())
	}
	r := Source{Node: 4, Dir: true, Read: true}
	if !strings.Contains(r.String(), "r") {
		t.Errorf("read tap not marked: %q", r.String())
	}

	g := buildCFG(t, "var x\nx := 1\nx := x + 1\n")
	cd := ComputeControlDeps(g)
	need := VarNeed(g)
	placement := PlaceSwitches(g, cd, need)
	sv, err := ComputeSourceVectors(g, nil, []string{"x"}, need, placement)
	if err != nil {
		t.Fatal(err)
	}
	// The second statement's x source is the first statement.
	var second int = -1
	for _, id := range g.SortedIDs() {
		if n := g.Nodes[id]; n.Kind == cfg.KindAssign && n.RHS.String() != "1" {
			second = id
		}
	}
	if second < 0 {
		t.Fatal("no second assignment")
	}
	if got := sv.Sources(second, "x"); len(got) != 1 {
		t.Errorf("Sources = %v, want one", got)
	}
}
