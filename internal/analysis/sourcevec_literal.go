package analysis

import (
	"fmt"
	"sort"

	"ctdf/internal/cfg"
)

// ComputeSourceVectorsLiteral is a transliteration of Figure 11 as printed,
// kept as a cross-validation reference for ComputeSourceVectors:
//
//   - a join contributes ⟨N,true⟩ for every token present at it, even with
//     a single source (the paper resolves single-source joins to "no
//     operator" later, when the graph is wired: "A join with a single
//     source is equivalent to no operator");
//   - the production version (ComputeSourceVectors) instead forwards
//     single sources during propagation, so merges appear in its vectors
//     only where real merges will exist.
//
// ResolveThroughJoins erases that representational difference; the
// cross-check in the tests asserts both algorithms name identical
// ultimate sources for every consumer. This reference supports plain
// variables on acyclic graphs (Figure 11 predates the loop-control
// generalization this repository adds).
func ComputeSourceVectorsLiteral(g *cfg.Graph, universe []string, need NeedFunc, placement *Placement) (*SourceVectors, error) {
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindLoopEntry || n.Kind == cfg.KindLoopExit {
			return nil, fmt.Errorf("analysis: the literal Figure 11 reference handles acyclic graphs only")
		}
	}
	n := g.Len()
	sv := make([]map[string]map[Source]bool, n)
	for i := 0; i < n; i++ {
		sv[i] = map[string]map[Source]bool{}
	}
	pdom := cfg.PostDominators(g)
	add := func(to int, tok string, srcs ...Source) {
		m := sv[to][tok]
		if m == nil {
			m = map[Source]bool{}
			sv[to][tok] = m
		}
		for _, s := range srcs {
			m[s] = true
		}
	}
	current := func(id int, tok string) []Source {
		m := sv[id][tok]
		out := make([]Source, 0, len(m))
		for s := range m {
			out = append(out, s)
		}
		sortSources(out)
		return out
	}

	// Figure 11's worklist: process a node once all predecessors are
	// visited (acyclic, so plain topological order works).
	processed := make([]bool, n)
	for count := 0; count < n; count++ {
		pick := -1
		for _, id := range g.SortedIDs() {
			if processed[id] {
				continue
			}
			ready := true
			for _, p := range g.Nodes[id].Preds {
				if !processed[p] {
					ready = false
					break
				}
			}
			if ready {
				pick = id
				break
			}
		}
		if pick == -1 {
			return nil, fmt.Errorf("analysis: cycle in supposedly acyclic graph")
		}
		processed[pick] = true
		nd := g.Nodes[pick]
		switch nd.Kind {
		case cfg.KindStart:
			for _, tok := range universe {
				add(nd.Succs[0], tok, Source{Node: pick, Dir: true})
			}
		case cfg.KindEnd:
		case cfg.KindAssign:
			needSet := map[string]bool{}
			for _, tok := range need(pick) {
				needSet[tok] = true
			}
			for _, tok := range universe {
				if needSet[tok] {
					add(nd.Succs[0], tok, Source{Node: pick, Dir: true})
				} else {
					add(nd.Succs[0], tok, current(pick, tok)...)
				}
			}
		case cfg.KindFork:
			readSet := map[string]bool{}
			for _, tok := range need(pick) {
				readSet[tok] = true
			}
			for _, tok := range universe {
				switch {
				case placement.NeedsSwitch(pick, tok):
					add(nd.Succs[0], tok, Source{Node: pick, Dir: true})
					add(nd.Succs[1], tok, Source{Node: pick, Dir: false})
				case readSet[tok]:
					add(pdom.Idom[pick], tok, Source{Node: pick, Dir: true, Read: true})
				default:
					add(pdom.Idom[pick], tok, current(pick, tok)...)
				}
			}
		case cfg.KindJoin:
			// The figure as printed: every token present becomes sourced
			// by the join itself.
			for _, tok := range universe {
				if len(current(pick, tok)) > 0 {
					add(nd.Succs[0], tok, Source{Node: pick, Dir: true})
				}
			}
		}
	}

	out := &SourceVectors{
		SV:       make([]map[string][]Source, n),
		Back:     make([]map[string][]Source, n),
		LoopNeed: map[int]map[string]bool{},
		Universe: append([]string(nil), universe...),
	}
	sort.Strings(out.Universe)
	for i, m := range sv {
		out.SV[i] = map[string][]Source{}
		out.Back[i] = map[string][]Source{}
		for tok, set := range m {
			srcs := make([]Source, 0, len(set))
			for s := range set {
				srcs = append(srcs, s)
			}
			sortSources(srcs)
			out.SV[i][tok] = srcs
		}
	}
	return out, nil
}

// ResolveThroughJoins maps a source to its ultimate producer by chasing
// single-source joins (the "equivalent to no operator" rule of §4.2).
func (s *SourceVectors) ResolveThroughJoins(g *cfg.Graph, src Source, tok string) Source {
	for {
		n := g.Nodes[src.Node]
		if n.Kind != cfg.KindJoin {
			return src
		}
		srcs := s.SV[src.Node][tok]
		if len(srcs) != 1 {
			return src
		}
		src = srcs[0]
	}
}
