// Package analysis implements the program analyses the translation schemas
// depend on: control dependence and its iterated closure (paper §4.1,
// Definitions 4–5, Theorem 1), switch placement (Figure 10), source
// vectors (Figure 11), and alias structures with covers and access sets
// (§5, Definitions 6–7).
//
// Map to the paper:
//
//   - controldep.go — CD (Definition 4) over the postdominator tree, and
//     iterated control dependence CD+ (Definition 5); Theorem 1 equates
//     CD+(N) with the forks F such that N lies between F and ipdom(F),
//     which is what TestSwitchPlacementMatchesTheorem1 checks by brute
//     force.
//   - switchplace.go — switch placement (Figure 10): a token for x needs a
//     switch at fork F iff some statement referencing x is in CD+ of F.
//   - sourcevec.go — source vectors (Figure 11) for the §4.2 direct
//     construction; sourcevec_literal.go is a line-by-line transliteration
//     of the figure kept as a cross-check.
//   - alias.go — alias structures, covers, and access sets C[x]
//     (Definitions 6–7) with cover legality checking.
//   - procalias.go — deriving alias structures from FORTRAN-style call
//     sites (§5's CALL F(A,B,A) example).
package analysis

import (
	"sort"

	"ctdf/internal/cfg"
)

// ControlDeps holds, for every node N, the set CD(N) of nodes N is control
// dependent on (Definition 4). Targets of control dependence are always
// fork nodes (including start, which the conventional start→end edge makes
// a fork).
type ControlDeps struct {
	// On[n] is CD(n): the nodes n is control dependent on.
	On []map[int]bool
	// Of[f] is the inverse: the nodes control dependent on f.
	Of []map[int]bool

	pdom *cfg.DomTree
}

// ComputeControlDeps computes control dependences with the
// Ferrante–Ottenstein–Warren walk: for each CFG edge a→b where b does not
// strictly postdominate a, every node on the postdominator-tree path from
// b up to (excluding) ipdom(a) is control dependent on a.
func ComputeControlDeps(g *cfg.Graph) *ControlDeps {
	pdom := cfg.PostDominators(g)
	cd := &ControlDeps{
		On:   make([]map[int]bool, g.Len()),
		Of:   make([]map[int]bool, g.Len()),
		pdom: pdom,
	}
	for i := 0; i < g.Len(); i++ {
		cd.On[i] = map[int]bool{}
		cd.Of[i] = map[int]bool{}
	}
	for _, a := range g.SortedIDs() {
		for _, b := range g.Nodes[a].Succs {
			if pdom.StrictlyDominates(b, a) {
				continue
			}
			for w := b; w != -1 && w != pdom.Idom[a]; w = pdom.Idom[w] {
				cd.On[w][a] = true
				cd.Of[a][w] = true
			}
		}
	}
	return cd
}

// PostDom returns the postdominator tree used by the computation.
func (cd *ControlDeps) PostDom() *cfg.DomTree { return cd.pdom }

// CD returns CD(n) as a sorted slice.
func (cd *ControlDeps) CD(n int) []int { return sortedSet(cd.On[n]) }

// IteratedCD computes CD+(seeds): the limit of CD(S), CD(S) ∪ CD(CD(S)),
// ... (Definition 5, generalized to a seed set). By Theorem 1, F ∈
// CD+(N) iff N is between F and its immediate postdominator, which by
// Corollary 1 is exactly when F needs a switch for N.
// Seeds outside the graph (stale statement IDs from before a code-copying
// rewrite, or any ID on a start-end-only graph) contribute nothing rather
// than faulting: CD+ of a node that does not exist is empty.
func (cd *ControlDeps) IteratedCD(seeds []int) map[int]bool {
	out := map[int]bool{}
	work := make([]int, 0, len(seeds))
	for _, n := range seeds {
		if n >= 0 && n < len(cd.On) {
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for f := range cd.On[n] {
			if !out[f] {
				out[f] = true
				work = append(work, f)
			}
		}
	}
	return out
}

// Between reports whether n is between f and f's immediate postdominator
// (Definition 1): there is a non-null path f ⇒ n that does not pass
// through ipdom(f). Computed directly from the definition by graph search;
// used to validate Theorem 1 and for brute-force comparisons.
func Between(g *cfg.Graph, f, n int) bool {
	pdom := cfg.PostDominators(g)
	return BetweenWith(g, pdom, f, n)
}

// BetweenWith is Between with a precomputed postdominator tree. Node IDs
// outside the graph are between nothing (false), matching IteratedCD's
// treatment of stale seeds.
func BetweenWith(g *cfg.Graph, pdom *cfg.DomTree, f, n int) bool {
	if f < 0 || f >= g.Len() || n < 0 || n >= g.Len() {
		return false
	}
	p := pdom.Idom[f]
	// Non-null path from f to n avoiding p. Successors of f start the path;
	// interior nodes (and n itself, as path end) must not be p.
	if n == p {
		return false
	}
	seen := map[int]bool{}
	stack := []int{}
	for _, s := range g.Nodes[f].Succs {
		if s == n {
			return true
		}
		if s != p && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.Nodes[u].Succs {
			if s == n {
				return true
			}
			if s != p && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func sortedSet(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
