package analysis

import (
	"fmt"
	"sort"
	"strings"

	"ctdf/internal/lang"
)

// AliasStructure is the pair ⟨V, ~⟩ of paper Definition 6: a variable name
// universe and a reflexive, symmetric (but NOT transitive) alias relation.
type AliasStructure struct {
	vars []string
	rel  map[string]map[string]bool
}

// NewAliasStructure builds the alias structure declared by a program.
func NewAliasStructure(prog *lang.Program) *AliasStructure {
	a := &AliasStructure{rel: map[string]map[string]bool{}}
	a.vars = append(a.vars, prog.AllNames()...)
	sort.Strings(a.vars)
	for _, v := range a.vars {
		a.rel[v] = map[string]bool{v: true} // reflexive
	}
	for _, al := range prog.Aliases {
		a.rel[al.A][al.B] = true
		a.rel[al.B][al.A] = true
	}
	return a
}

// Vars returns the variable universe V, sorted.
func (a *AliasStructure) Vars() []string { return append([]string(nil), a.vars...) }

// Related reports x ~ y.
func (a *AliasStructure) Related(x, y string) bool { return a.rel[x][y] }

// Class returns the alias class [x] = {y : y ~ x}, sorted.
func (a *AliasStructure) Class(x string) []string {
	return sortedNames(a.rel[x])
}

// HasAliases reports whether any two distinct names are related.
func (a *AliasStructure) HasAliases() bool {
	for x, m := range a.rel {
		for y := range m {
			if x != y {
				return true
			}
		}
	}
	return false
}

// CoverElement is one element of a cover: a named subset of V. One access
// token circulates per cover element (paper §5).
type CoverElement struct {
	Name string
	Vars map[string]bool
}

// Cover is a collection of subsets of V whose union is V (Definition 7).
// Schema 3 is parameterized by the choice of cover.
type Cover struct {
	Elements []CoverElement
}

// Validate checks Definition 7: every variable is covered, element names
// are unique and non-empty, and elements mention only universe variables.
func (c *Cover) Validate(a *AliasStructure) error {
	seen := map[string]bool{}
	inUniverse := map[string]bool{}
	for _, v := range a.vars {
		inUniverse[v] = true
	}
	covered := map[string]bool{}
	for _, e := range c.Elements {
		if e.Name == "" {
			return fmt.Errorf("analysis: cover element with empty name")
		}
		if seen[e.Name] {
			return fmt.Errorf("analysis: duplicate cover element name %q", e.Name)
		}
		seen[e.Name] = true
		if len(e.Vars) == 0 {
			return fmt.Errorf("analysis: cover element %q is empty", e.Name)
		}
		for v := range e.Vars {
			if !inUniverse[v] {
				return fmt.Errorf("analysis: cover element %q mentions unknown variable %q", e.Name, v)
			}
			covered[v] = true
		}
	}
	for _, v := range a.vars {
		if !covered[v] {
			return fmt.Errorf("analysis: variable %q not covered (Definition 7 requires the union to be V)", v)
		}
	}
	return nil
}

// TokenNames returns the sorted access-token names, one per cover element.
func (c *Cover) TokenNames() []string {
	out := make([]string, 0, len(c.Elements))
	for _, e := range c.Elements {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// AccessSet returns C[x]: the names of the cover elements whose variable
// set intersects the alias class [x]. A memory operation on x must collect
// the access tokens of every element of C[x] before it starts, and
// regenerates them all when it completes.
func (c *Cover) AccessSet(a *AliasStructure, x string) []string {
	var out []string
	for _, e := range c.Elements {
		for v := range e.Vars {
			if a.Related(v, x) {
				out = append(out, e.Name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// SynchCost returns the total number of token collections a program's
// references would perform under this cover: for each referenced variable
// occurrence, |C[x]|. Used to quantify the parallelism/synchronization
// tradeoff of §5.
func (c *Cover) SynchCost(a *AliasStructure, refs []string) int {
	cost := 0
	for _, x := range refs {
		cost += len(c.AccessSet(a, x))
	}
	return cost
}

// SingletonCover is the finest cover: one element per variable. It
// maximizes parallelism (unaliased variables never share a token) at the
// price of collecting |[x]| tokens per operation on aliased x. With no
// aliasing it degenerates to Schema 2.
func SingletonCover(a *AliasStructure) *Cover {
	c := &Cover{}
	for _, v := range a.vars {
		c.Elements = append(c.Elements, CoverElement{Name: v, Vars: map[string]bool{v: true}})
	}
	return c
}

// ClassCover has one element per distinct alias class [x].
func ClassCover(a *AliasStructure) *Cover {
	c := &Cover{}
	seen := map[string]bool{}
	for _, v := range a.vars {
		class := a.Class(v)
		key := strings.Join(class, ",")
		if seen[key] {
			continue
		}
		seen[key] = true
		vars := map[string]bool{}
		for _, y := range class {
			vars[y] = true
		}
		c.Elements = append(c.Elements, CoverElement{Name: "[" + v + "]", Vars: vars})
	}
	return c
}

// MonolithicCover is the coarsest cover: a single element holding all of
// V, so exactly one access token serializes every memory operation. It
// minimizes synchronization (each operation collects one token) and
// parallelism alike.
func MonolithicCover(a *AliasStructure) *Cover {
	vars := map[string]bool{}
	for _, v := range a.vars {
		vars[v] = true
	}
	return &Cover{Elements: []CoverElement{{Name: "V", Vars: vars}}}
}
