package analysis

import (
	"sort"

	"ctdf/internal/cfg"
)

// NeedFunc reports, for a CFG node, which access tokens the node consumes
// and regenerates. Token names are abstract: for Schema 2 they are variable
// names (a node needs the tokens of the variables it references); for
// Schema 3 they are cover-element names (a node needs the access set C[x]
// of every variable x it references).
type NeedFunc func(nodeID int) []string

// VarNeed is the Schema 2 NeedFunc: the tokens a node needs are exactly
// the variables it references.
func VarNeed(g *cfg.Graph) NeedFunc {
	return func(id int) []string {
		return sortedNames(g.Refs(id))
	}
}

// Placement is the result of switch placement (Figure 10): for each fork
// node, the set of access tokens for which the fork must create a switch.
type Placement struct {
	// Needs[f] is the set of token names needing a switch at fork f.
	Needs map[int]map[string]bool
}

// NeedsSwitch reports whether fork f needs a switch for token tok.
func (p *Placement) NeedsSwitch(f int, tok string) bool { return p.Needs[f][tok] }

// Tokens returns the sorted token names switched at fork f.
func (p *Placement) Tokens(f int) []string { return sortedNames(p.Needs[f]) }

// PlaceSwitches runs the worklist algorithm of Figure 10 for every access
// token: seed the worklist with the nodes that need the token, then
// propagate through control dependences; every fork reached is marked as
// needing a switch for that token. By Corollary 1 the marked forks for
// token x are exactly CD+({N : N needs x}).
func PlaceSwitches(g *cfg.Graph, cd *ControlDeps, need NeedFunc) *Placement {
	p := &Placement{Needs: map[int]map[string]bool{}}
	// Invert need: token -> nodes that need it.
	users := map[string][]int{}
	for _, id := range g.SortedIDs() {
		for _, tok := range need(id) {
			users[tok] = append(users[tok], id)
		}
	}
	toks := make([]string, 0, len(users))
	for tok := range users {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		onWL := map[int]bool{}
		var worklist []int
		for _, n := range users[tok] {
			if !onWL[n] {
				onWL[n] = true
				worklist = append(worklist, n)
			}
		}
		for len(worklist) > 0 {
			n := worklist[len(worklist)-1]
			worklist = worklist[:len(worklist)-1]
			for f := range cd.On[n] {
				if p.Needs[f] == nil {
					p.Needs[f] = map[string]bool{}
				}
				p.Needs[f][tok] = true
				if !onWL[f] {
					onWL[f] = true
					worklist = append(worklist, f)
				}
			}
		}
	}
	return p
}

// LoopNeeds computes, for each loop, the set of tokens that must circulate
// through the loop's entry and exit control statements: tokens needed by
// any node in the loop body plus tokens switched at any fork in the body
// (§4's relaxation: all other tokens bypass the loop entirely).
func LoopNeeds(g *cfg.Graph, loops []cfg.Loop, need NeedFunc, p *Placement) map[int]map[string]bool {
	out := map[int]map[string]bool{}
	for _, l := range loops {
		set := map[string]bool{}
		for b := range l.Body {
			for _, tok := range need(b) {
				set[tok] = true
			}
			for tok := range p.Needs[b] {
				set[tok] = true
			}
		}
		out[l.Entry] = set
		for _, x := range l.Exits {
			out[x] = set
		}
	}
	return out
}

func sortedNames(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
