package analysis

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/workloads"
)

// TestControlDepsTrivialGraph pins the degenerate CFG an empty program
// produces: start and end only, with both start out-directions wired to
// end. End postdominates everything, so nothing is control dependent on
// anything, CD+ is empty for every seed, and no fork needs a switch.
func TestControlDepsTrivialGraph(t *testing.T) {
	g := buildCFG(t, "")
	if g.Len() != 2 {
		t.Fatalf("empty program CFG has %d nodes, want 2 (start, end)", g.Len())
	}
	cd := ComputeControlDeps(g)
	for _, n := range g.SortedIDs() {
		if deps := cd.CD(n); len(deps) != 0 {
			t.Errorf("CD(n%d) = %v, want empty on the trivial graph", n, deps)
		}
		if cdp := cd.IteratedCD([]int{n}); len(cdp) != 0 {
			t.Errorf("CD+(n%d) = %v, want empty on the trivial graph", n, cdp)
		}
	}
	if p := PlaceSwitches(g, cd, VarNeed(g)); len(p.Needs) != 0 {
		t.Errorf("trivial graph placed switches: %v", p.Needs)
	}
	pdom := cd.PostDom()
	for _, f := range g.SortedIDs() {
		for _, n := range g.SortedIDs() {
			if BetweenWith(g, pdom, f, n) {
				t.Errorf("Between(n%d, n%d) on the trivial graph", f, n)
			}
		}
	}
}

// TestIteratedCDStaleSeeds: seeds naming nodes outside the graph — stale
// statement IDs surviving a code-copying rewrite, or any ID against a
// trivial graph — contribute nothing instead of faulting, and do not
// perturb the answer for the in-range seeds next to them.
func TestIteratedCDStaleSeeds(t *testing.T) {
	g := buildCFG(t, workloads.MustByName("running-example").Source)
	cd := ComputeControlDeps(g)
	if got := cd.IteratedCD([]int{-1, g.Len(), g.Len() + 40}); len(got) != 0 {
		t.Errorf("CD+ of out-of-range seeds = %v, want empty", got)
	}
	for _, n := range g.SortedIDs() {
		clean := cd.IteratedCD([]int{n})
		mixed := cd.IteratedCD([]int{-7, n, g.Len() + 3})
		if len(clean) != len(mixed) {
			t.Fatalf("n%d: stale seeds changed CD+: %v vs %v", n, clean, mixed)
		}
		for f := range clean {
			if !mixed[f] {
				t.Fatalf("n%d: stale seeds dropped n%d from CD+", n, f)
			}
		}
	}
	pdom := cd.PostDom()
	for _, bad := range []int{-1, g.Len(), g.Len() + 40} {
		if BetweenWith(g, pdom, bad, g.End) || BetweenWith(g, pdom, g.Start, bad) {
			t.Errorf("BetweenWith accepted out-of-range node %d", bad)
		}
	}
}

// TestTheorem1OnRewrittenIrreducible re-proves Theorem 1 (CD+(N) ∋ F ⟺ N
// between F and ipdom(F)) on the graphs the translator actually analyzes:
// irreducible CFGs after the footnote-5 code-copying rewrite of
// cfg.MakeReducible. The duplicated join nodes have fan-in patterns the
// structured workloads never produce.
func TestTheorem1OnRewrittenIrreducible(t *testing.T) {
	cases := []workloads.Workload{
		// Two mutually-entering loops: the classic irreducible pattern.
		{Name: "two-entry-loops", Source: `
var x
if x == 0 then goto a else goto b
a:
x := x + 1
goto b2
b:
x := x + 2
goto a2
a2:
if x < 10 then goto a else goto end
b2:
if x < 20 then goto b else goto end
`},
		// A jump into the middle of a loop body.
		{Name: "loop-mid-entry", Source: `
var x, y, s
y := 3
if y > 2 then goto mid else goto top
top:
x := x + 1
s := s + x
mid:
s := s + 10
x := x + 2
if x < 15 then goto top else goto done
done:
y := s
`},
		workloads.MustByName("unstructured-two-exit"),
		workloads.MustByName("unstructured-skip"),
	}
	for seed := int64(0); seed < 10; seed++ {
		cases = append(cases, workloads.RandomUnstructured(seed, 5))
	}
	rewritten := 0
	for _, w := range cases {
		g0 := buildCFG(t, w.Source)
		g, copies, err := cfg.MakeReducible(g0)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if copies > 0 {
			rewritten++
		}
		cd := ComputeControlDeps(g)
		pdom := cd.PostDom()
		for _, n := range g.SortedIDs() {
			cdp := cd.IteratedCD([]int{n})
			for _, f := range g.SortedIDs() {
				if want := BetweenWith(g, pdom, f, n); cdp[f] != want {
					t.Errorf("%s (copies=%d): Theorem 1 violated at F=n%d N=n%d: CD+ says %v, between says %v",
						w.Name, copies, f, n, cdp[f], want)
				}
			}
		}
	}
	if rewritten == 0 {
		t.Fatal("no test case exercised the code-copying rewrite; the irreducible inputs have gone stale")
	}
}
