package analysis

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/lang"
	"ctdf/internal/workloads"
)

func buildCFG(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testPrograms mixes the paper examples, kernels, and random programs.
func testPrograms() []workloads.Workload {
	out := workloads.All()
	for seed := int64(100); seed < 115; seed++ {
		out = append(out, workloads.Random(seed, 4, 2))
	}
	return out
}

// bruteCD checks Definition 4 through the textbook successor
// characterization: N is control dependent on F iff N postdominates some
// successor of F and does not strictly postdominate F.
func bruteCD(g *cfg.Graph, pdom *cfg.DomTree, n, f int) bool {
	if pdom.StrictlyDominates(n, f) {
		return false
	}
	for _, s := range g.Nodes[f].Succs {
		if pdom.Dominates(n, s) {
			return true
		}
	}
	return false
}

func TestControlDependenceMatchesDefinition(t *testing.T) {
	for _, w := range testPrograms() {
		g := buildCFG(t, w.Source)
		cd := ComputeControlDeps(g)
		pdom := cd.PostDom()
		for _, n := range g.SortedIDs() {
			for _, f := range g.SortedIDs() {
				want := bruteCD(g, pdom, n, f)
				got := cd.On[n][f]
				if got != want {
					t.Errorf("%s: CD(n%d ← n%d) = %v, definition says %v", w.Name, n, f, got, want)
				}
			}
		}
	}
}

func TestControlDependenceTargetsAreForks(t *testing.T) {
	// Only nodes with two successors (forks, and start by convention) can
	// have anything control dependent on them.
	for _, w := range testPrograms() {
		g := buildCFG(t, w.Source)
		cd := ComputeControlDeps(g)
		for _, n := range g.SortedIDs() {
			for f := range cd.On[n] {
				k := g.Nodes[f].Kind
				if k != cfg.KindFork && k != cfg.KindStart {
					t.Errorf("%s: n%d control dependent on non-fork %s", w.Name, n, g.Nodes[f])
				}
			}
		}
	}
}

func TestTheorem1(t *testing.T) {
	// Theorem 1: F ∈ CD+(N) ⟺ N is between F and ipdom(F). Between is
	// computed by raw path search straight from Definition 1, fully
	// independent of the control dependence machinery.
	for _, w := range testPrograms() {
		g := buildCFG(t, w.Source)
		cd := ComputeControlDeps(g)
		pdom := cd.PostDom()
		for _, n := range g.SortedIDs() {
			cdp := cd.IteratedCD([]int{n})
			for _, f := range g.SortedIDs() {
				want := BetweenWith(g, pdom, f, n)
				if cdp[f] != want {
					t.Errorf("%s: Theorem 1 violated: F=n%d N=n%d: CD+ says %v, between says %v",
						w.Name, f, n, cdp[f], want)
				}
			}
		}
	}
}

func TestSwitchPlacementMatchesTheorem1(t *testing.T) {
	// Corollary 1 + Definition 3: F needs a switch for access_x iff some
	// node referencing x is between F and its immediate postdominator.
	for _, w := range testPrograms() {
		g := buildCFG(t, w.Source)
		cd := ComputeControlDeps(g)
		pdom := cd.PostDom()
		placement := PlaceSwitches(g, cd, VarNeed(g))
		for _, x := range g.Prog.AllNames() {
			for _, f := range g.SortedIDs() {
				want := false
				for _, n := range g.SortedIDs() {
					if g.Refs(n)[x] && BetweenWith(g, pdom, f, n) {
						want = true
						break
					}
				}
				if got := placement.NeedsSwitch(f, x); got != want {
					t.Errorf("%s: switch placement for %s at n%d = %v, Definition 3 says %v",
						w.Name, x, f, got, want)
				}
			}
		}
	}
}

func TestFig9SwitchElimination(t *testing.T) {
	// Figure 9: x is not referenced inside the conditional, so the fork
	// must not switch access_x, while w (the predicate) and y (assigned in
	// both arms) are switched... w is only read at the fork itself, which
	// sits right before its postdominator, so no switch for w either.
	g := buildCFG(t, workloads.Fig9Example.Source)
	cd := ComputeControlDeps(g)
	placement := PlaceSwitches(g, cd, VarNeed(g))
	var fork int = -1
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindFork {
			fork = n.ID
		}
	}
	if fork < 0 {
		t.Fatal("no fork")
	}
	if placement.NeedsSwitch(fork, "x") {
		t.Error("fork needs no switch for x (Figure 9's whole point)")
	}
	if !placement.NeedsSwitch(fork, "y") {
		t.Error("fork must switch y: y is assigned in both arms")
	}
}

func TestLoopForkSwitchesLoopVariables(t *testing.T) {
	// In the running example every variable is referenced in the loop, so
	// the loop fork switches both x and y (via the cyclic path through the
	// back edge).
	g := buildCFG(t, workloads.RunningExample.Source)
	tg, _, err := cfg.InsertLoopControl(g)
	if err != nil {
		t.Fatal(err)
	}
	cd := ComputeControlDeps(tg)
	placement := PlaceSwitches(tg, cd, VarNeed(tg))
	for _, n := range tg.Nodes {
		if n.Kind == cfg.KindFork {
			for _, v := range []string{"x", "y"} {
				if !placement.NeedsSwitch(n.ID, v) {
					t.Errorf("loop fork must switch %s", v)
				}
			}
		}
	}
}

func TestIteratedCDClosure(t *testing.T) {
	// CD+ is a closure: CD(CD+(N)) ⊆ CD+(N).
	for _, w := range testPrograms() {
		g := buildCFG(t, w.Source)
		cd := ComputeControlDeps(g)
		for _, n := range g.SortedIDs() {
			cdp := cd.IteratedCD([]int{n})
			for f := range cdp {
				for f2 := range cd.On[f] {
					if !cdp[f2] {
						t.Errorf("%s: CD+ not closed: n%d ∈ CD+(n%d) but CD(n%d) ∋ n%d missing",
							w.Name, f, n, f, f2)
					}
				}
			}
		}
	}
}

func TestLoopNeedsIncludePlacement(t *testing.T) {
	// A token switched at a fork inside a loop must circulate through the
	// loop's entry/exit even if no statement in the loop references it.
	src := `
var x, y
top:
y := y + 1
if y > 9 then goto hot else goto cold
hot:
x := 1
goto after
cold:
if y < 5 then goto top else goto coldexit
coldexit:
x := 2
after:
`
	g := buildCFG(t, src)
	tg, loops, err := cfg.InsertLoopControl(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	cd := ComputeControlDeps(tg)
	need := VarNeed(tg)
	placement := PlaceSwitches(tg, cd, need)
	ln := LoopNeeds(tg, loops, need, placement)
	// x is not referenced in the loop body, but the in-loop forks decide
	// which x assignment runs, so access_x must circulate.
	if !ln[loops[0].Entry]["x"] {
		t.Error("x must circulate through the loop: in-loop forks switch it")
	}
}
