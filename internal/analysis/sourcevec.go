package analysis

import (
	"fmt"
	"sort"

	"ctdf/internal/cfg"
)

// Source identifies where an access token comes from: a dataflow-producing
// CFG node and the out-direction along which the token leaves it (paper
// §4.2: "If the source node has only a single out-direction then we simply
// use true as the out-direction"). Read distinguishes the post-read tap of
// a fork: a fork is also a memory operation (it loads its predicate
// variables), and a token it reads but does not switch leaves the fork's
// read block before any switch, independent of the branch taken.
type Source struct {
	Node int
	Dir  bool
	Read bool
}

func (s Source) String() string {
	d := "t"
	if !s.Dir {
		d = "f"
	}
	if s.Read {
		d = "r"
	}
	return fmt.Sprintf("⟨n%d,%s⟩", s.Node, d)
}

func sortSources(srcs []Source) {
	sort.Slice(srcs, func(i, j int) bool {
		if srcs[i].Node != srcs[j].Node {
			return srcs[i].Node < srcs[j].Node
		}
		if srcs[i].Read != srcs[j].Read {
			return srcs[j].Read
		}
		return srcs[i].Dir && !srcs[j].Dir
	})
}

// SourceVectors is the result of the Figure 11 computation: for every node
// N and token, the sources access tokens arrive from. Deviating slightly
// from the figure for convenience, a join with a single source is resolved
// at propagation time (the paper resolves it when building the graph: "A
// join with a single source is equivalent to no operator"), so an entry
// with more than one source appears only at joins, at end, and at
// loop-entry ports — exactly the places where dataflow merges may be
// created.
type SourceVectors struct {
	// SV[n][tok] is the source set of token tok at node n. For loop
	// entries this is the initial (entry-side) port.
	SV []map[string][]Source
	// Back[n][tok] holds, for loop-entry nodes, the back-edge (iteration)
	// port sources.
	Back []map[string][]Source
	// LoopNeed[n], for loop-entry and loop-exit nodes, is the token set
	// that must circulate through the loop (everything else bypasses it).
	LoopNeed map[int]map[string]bool
	// Universe is the full token name universe, sorted.
	Universe []string
}

// Sources returns the sorted source list of token tok at node n.
func (s *SourceVectors) Sources(n int, tok string) []Source { return s.SV[n][tok] }

// ComputeSourceVectors runs the worklist algorithm of Figure 11,
// generalized to abstract tokens and to the loop control statements of §3:
//
//   - start sources every token to its successor;
//   - a memory-operation node (assignment or fork predicate evaluation)
//     consumes and regenerates the tokens it needs, and passes all other
//     token sources through unchanged;
//   - a fork creates a switch for every token placed at it, and for every
//     other token propagates the sources non-locally to the fork's
//     immediate postdominator (the bypass of §4);
//   - a join merges: with two or more sources it becomes a dataflow merge
//     (and thus a new source); with one source it is no operator;
//   - a loop entry consumes and regenerates every token the loop needs
//     (giving iterations fresh tags) and bypasses all others to the first
//     postdominator outside the loop;
//   - a loop exit consumes and regenerates the loop's tokens.
//
// Nodes are processed in topological order ignoring loop back edges, so
// every source vector is complete before its node is processed; back-edge
// contributions to loop-entry ports are recorded for wiring but never
// influence propagation (a loop entry regenerates its tokens).
func ComputeSourceVectors(g *cfg.Graph, loops []cfg.Loop, universe []string, need NeedFunc, placement *Placement) (*SourceVectors, error) {
	n := g.Len()
	sv := make([]map[string]map[Source]bool, n)
	svBack := make([]map[string]map[Source]bool, n)
	for i := 0; i < n; i++ {
		sv[i] = map[string]map[Source]bool{}
		svBack[i] = map[string]map[Source]bool{}
	}
	loopNeed := LoopNeeds(g, loops, need, placement)
	pdom := cfg.PostDominators(g)

	// Bypass target per loop entry: the first node on the entry's
	// postdominator chain that is outside the loop body and not one of its
	// exit statements.
	bypass := map[int]int{}
	for _, l := range loops {
		exitSet := map[int]bool{}
		for _, x := range l.Exits {
			exitSet[x] = true
		}
		t := pdom.Idom[l.Entry]
		for t != -1 && (l.Body[t] || exitSet[t]) {
			t = pdom.Idom[t]
		}
		if t == -1 {
			return nil, fmt.Errorf("analysis: loop at n%d has no postdominator outside its body", l.Entry)
		}
		bypass[l.Entry] = t
	}

	// contribute records srcs as sources of tok at node to; writes from a
	// back predecessor of a loop entry land on the entry's back port.
	contribute := func(to int, tok string, srcs []Source, fromNode int) {
		tgt := sv
		toNode := g.Nodes[to]
		if toNode.Kind == cfg.KindLoopEntry && fromNode >= 0 && toNode.BackPreds[fromNode] {
			tgt = svBack
		}
		m := tgt[to][tok]
		if m == nil {
			m = map[Source]bool{}
			tgt[to][tok] = m
		}
		for _, s := range srcs {
			m[s] = true
		}
	}
	// passThrough forwards the (at most one) source of tok at node id to
	// target to.
	current := func(id int, tok string) []Source {
		m := sv[id][tok]
		out := make([]Source, 0, len(m))
		for s := range m {
			out = append(out, s)
		}
		sortSources(out)
		return out
	}

	// Topological processing ignoring back edges.
	isBackPred := func(node, pred int) bool {
		nd := g.Nodes[node]
		return nd.Kind == cfg.KindLoopEntry && nd.BackPreds[pred]
	}
	processed := make([]bool, n)
	for count := 0; count < n; count++ {
		pick := -1
		for _, id := range g.SortedIDs() {
			if processed[id] {
				continue
			}
			ready := true
			for _, p := range g.Nodes[id].Preds {
				if !processed[p] && !isBackPred(id, p) {
					ready = false
					break
				}
			}
			if ready {
				pick = id
				break
			}
		}
		if pick == -1 {
			return nil, fmt.Errorf("analysis: no topological order (cycle not broken by loop entries)")
		}
		processed[pick] = true
		nd := g.Nodes[pick]
		self := []Source{{Node: pick, Dir: true}}

		switch nd.Kind {
		case cfg.KindStart:
			// Figure 11: every token flows from start to its (program
			// entry) successor; the conventional start→end edge carries
			// nothing.
			for _, tok := range universe {
				contribute(nd.Succs[0], tok, self, pick)
			}

		case cfg.KindEnd:
			// Terminal; the translation collects every token here.

		case cfg.KindAssign, cfg.KindCall:
			// A call statement is a memory operation on everything its
			// callee may touch: it consumes and regenerates the mapped
			// token set (separate-compilation mode).
			needSet := map[string]bool{}
			for _, tok := range need(pick) {
				needSet[tok] = true
			}
			for _, tok := range universe {
				if needSet[tok] {
					contribute(nd.Succs[0], tok, self, pick)
				} else if srcs := current(pick, tok); len(srcs) > 0 {
					contribute(nd.Succs[0], tok, srcs, pick)
				}
			}

		case cfg.KindFork:
			readSet := map[string]bool{}
			for _, tok := range need(pick) {
				readSet[tok] = true
			}
			for _, tok := range universe {
				switch {
				case placement.NeedsSwitch(pick, tok):
					contribute(nd.Succs[0], tok, []Source{{Node: pick, Dir: true}}, pick)
					contribute(nd.Succs[1], tok, []Source{{Node: pick, Dir: false}}, pick)
				case readSet[tok]:
					// The fork's read block consumed and regenerated the
					// token; it continues past the (unneeded) switch point
					// to the fork's immediate postdominator.
					contribute(pdom.Idom[pick], tok, []Source{{Node: pick, Dir: true, Read: true}}, -1)
				default:
					if srcs := current(pick, tok); len(srcs) > 0 {
						contribute(pdom.Idom[pick], tok, srcs, -1)
					}
				}
			}

		case cfg.KindJoin:
			for _, tok := range universe {
				srcs := current(pick, tok)
				switch {
				case len(srcs) == 0:
				case len(srcs) == 1:
					// Single source: no merge operator; forward the source.
					contribute(nd.Succs[0], tok, srcs, pick)
				default:
					// A dataflow merge is created here; it becomes the source.
					contribute(nd.Succs[0], tok, self, pick)
				}
			}

		case cfg.KindLoopEntry:
			for _, tok := range universe {
				if loopNeed[pick][tok] {
					contribute(nd.Succs[0], tok, self, pick)
				} else if srcs := current(pick, tok); len(srcs) > 0 {
					contribute(bypass[pick], tok, srcs, -1)
				}
			}

		case cfg.KindLoopExit:
			for _, tok := range universe {
				if loopNeed[pick][tok] {
					contribute(nd.Succs[0], tok, self, pick)
				} else if srcs := current(pick, tok); len(srcs) > 0 {
					// A token that bypassed the loop never reaches its
					// exits; this is defensive pass-through.
					contribute(nd.Succs[0], tok, srcs, pick)
				}
			}
		}
	}

	out := &SourceVectors{
		SV:       make([]map[string][]Source, n),
		Back:     make([]map[string][]Source, n),
		LoopNeed: loopNeed,
		Universe: append([]string(nil), universe...),
	}
	sort.Strings(out.Universe)
	flatten := func(in []map[string]map[Source]bool, dst []map[string][]Source) {
		for i, m := range in {
			dst[i] = map[string][]Source{}
			for tok, set := range m {
				srcs := make([]Source, 0, len(set))
				for s := range set {
					srcs = append(srcs, s)
				}
				sortSources(srcs)
				dst[i][tok] = srcs
			}
		}
	}
	flatten(sv, out.SV)
	flatten(svBack, out.Back)
	if err := out.validate(g, need, placement); err != nil {
		return nil, err
	}
	return out, nil
}

// validate checks the structural invariants the graph builder relies on.
func (s *SourceVectors) validate(g *cfg.Graph, need NeedFunc, placement *Placement) error {
	for _, id := range g.SortedIDs() {
		nd := g.Nodes[id]
		// Multiple sources may appear only where merges are legal.
		if nd.Kind != cfg.KindJoin && nd.Kind != cfg.KindEnd && nd.Kind != cfg.KindLoopEntry {
			for tok, srcs := range s.SV[id] {
				if len(srcs) > 1 {
					return fmt.Errorf("analysis: %s has %d sources for %s at non-merge node", nd, len(srcs), tok)
				}
			}
		}
		switch nd.Kind {
		case cfg.KindAssign, cfg.KindCall:
			for _, tok := range need(id) {
				if len(s.SV[id][tok]) != 1 {
					return fmt.Errorf("analysis: %s needs token %s but has %d sources", nd, tok, len(s.SV[id][tok]))
				}
			}
		case cfg.KindFork:
			for _, tok := range need(id) {
				if len(s.SV[id][tok]) != 1 {
					return fmt.Errorf("analysis: %s reads token %s but has %d sources", nd, tok, len(s.SV[id][tok]))
				}
			}
			for tok := range placement.Needs[id] {
				if len(s.SV[id][tok]) != 1 {
					return fmt.Errorf("analysis: %s switches token %s but has %d sources", nd, tok, len(s.SV[id][tok]))
				}
			}
		case cfg.KindLoopEntry:
			for tok := range s.LoopNeed[id] {
				if len(s.SV[id][tok]) < 1 {
					return fmt.Errorf("analysis: loop entry %s has no initial source for %s", nd, tok)
				}
				if len(s.Back[id][tok]) < 1 {
					return fmt.Errorf("analysis: loop entry %s has no back-edge source for %s", nd, tok)
				}
			}
		case cfg.KindLoopExit:
			for tok := range s.LoopNeed[id] {
				if len(s.SV[id][tok]) != 1 {
					return fmt.Errorf("analysis: loop exit %s has %d sources for %s", nd, len(s.SV[id][tok]), tok)
				}
			}
		case cfg.KindEnd:
			for _, tok := range s.Universe {
				if len(s.SV[id][tok]) < 1 {
					return fmt.Errorf("analysis: token %s never reaches end", tok)
				}
			}
		}
	}
	return nil
}
