package analysis

import (
	"reflect"
	"testing"

	"ctdf/internal/lang"
)

// The paper's §5 FORTRAN example: SUBROUTINE F(X, Y, Z) called as
// CALL F(A, B, A) and CALL F(C, D, D).
const paperSubroutine = `
var a, b, c, d
proc f(x, y, z) {
  z := x + y
}
call f(a, b, a)
call f(c, d, d)
`

func TestDeriveAliasStructuresPaperExample(t *testing.T) {
	prog := lang.MustParse(paperSubroutine)
	derived, err := DeriveAliasStructures(prog)
	if err != nil {
		t.Fatal(err)
	}
	f := derived["f"]
	if f == nil {
		t.Fatal("no structure for f")
	}
	// The paper's result: [X]={X,Z}, [Y]={Y,Z}, [Z]={X,Y,Z} — restricted
	// to the formals (globals are also in the universe).
	classOf := func(v string) []string {
		var out []string
		for _, w := range []string{"x", "y", "z"} {
			if f.Related(v, w) {
				out = append(out, w)
			}
		}
		return out
	}
	if got := classOf("x"); !reflect.DeepEqual(got, []string{"x", "z"}) {
		t.Errorf("[x] = %v, want [x z]", got)
	}
	if got := classOf("y"); !reflect.DeepEqual(got, []string{"y", "z"}) {
		t.Errorf("[y] = %v, want [y z]", got)
	}
	if got := classOf("z"); !reflect.DeepEqual(got, []string{"x", "y", "z"}) {
		t.Errorf("[z] = %v, want [x y z]", got)
	}
	// Non-transitivity: x and y must NOT alias.
	if f.Related("x", "y") {
		t.Error("x ~ y derived although no call identifies them")
	}
	// Formal/global: x may be bound to a (first call) — the body could
	// reference the global a.
	if !f.Related("x", "a") {
		t.Error("x should alias global a (passed at call 1)")
	}
	if f.Related("x", "b") {
		t.Error("x never receives b")
	}
}

func TestDeriveAliasPropagatesThroughNestedCalls(t *testing.T) {
	// outer's formals u, v alias (called with the same actual); outer
	// forwards both to inner, so inner's p, q alias too.
	src := `
var a
proc inner(p, q) {
  q := p + 1
}
proc outer(u, v) {
  call inner(u, v)
}
call outer(a, a)
`
	prog := lang.MustParse(src)
	derived, err := DeriveAliasStructures(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !derived["outer"].Related("u", "v") {
		t.Error("u ~ v missing")
	}
	if !derived["inner"].Related("p", "q") {
		t.Error("p ~ q missing (propagation through the call graph)")
	}
}

func TestDeriveAliasRespectsDeclaredAliases(t *testing.T) {
	// g and h are declared aliases; passing them in two positions aliases
	// the formals.
	src := `
var g, h
alias g ~ h
proc f(x, y) {
  y := x
}
call f(g, h)
`
	prog := lang.MustParse(src)
	derived, err := DeriveAliasStructures(prog)
	if err != nil {
		t.Fatal(err)
	}
	if !derived["f"].Related("x", "y") {
		t.Error("x ~ y missing: actuals g, h are declared aliases")
	}
}

func TestCallBindingLegalUnderDerivedStructure(t *testing.T) {
	// Soundness: the binding each call site induces must be legal under
	// the derived alias structure of the standalone view.
	prog := lang.MustParse(paperSubroutine)
	derived, err := DeriveAliasStructures(prog)
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := StandaloneProc(prog, "f", derived["f"])
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range prog.Calls() {
		b, err := CallBinding(prog, cs.Call)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Validate(standalone); err != nil {
			t.Errorf("call %s: induced binding %v illegal: %v", cs.Call, b, err)
		}
	}
}

func TestCallBindingShape(t *testing.T) {
	prog := lang.MustParse(paperSubroutine)
	calls := prog.Calls()
	b1, err := CallBinding(prog, calls[0].Call) // f(a, b, a)
	if err != nil {
		t.Fatal(err)
	}
	// x and z both receive a → same canonical (the global a); y separate.
	if b1["x"] != b1["z"] {
		t.Errorf("x and z should share under call 1: %v", b1)
	}
	if b1["y"] == b1["x"] {
		t.Errorf("y must not share with x under call 1: %v", b1)
	}
	b2, err := CallBinding(prog, calls[1].Call) // f(c, d, d)
	if err != nil {
		t.Fatal(err)
	}
	if b2["y"] != b2["z"] || b2["x"] == b2["y"] {
		t.Errorf("call 2 binding wrong: %v", b2)
	}
}

func TestStandaloneProc(t *testing.T) {
	prog := lang.MustParse(paperSubroutine)
	derived, err := DeriveAliasStructures(prog)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := StandaloneProc(prog, "f", derived["f"])
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, v := range sp.Vars {
		names[v.Name] = true
	}
	for _, want := range []string{"x", "y", "z", "a", "b", "c", "d"} {
		if !names[want] {
			t.Errorf("standalone program missing variable %s", want)
		}
	}
	// The alias declarations must include x~z and y~z.
	has := func(a, b string) bool {
		for _, al := range sp.Aliases {
			if (al.A == a && al.B == b) || (al.A == b && al.B == a) {
				return true
			}
		}
		return false
	}
	if !has("x", "z") || !has("y", "z") {
		t.Errorf("standalone aliases = %v", sp.Aliases)
	}
	if has("x", "y") {
		t.Error("x ~ y wrongly declared")
	}
	if _, err := StandaloneProc(prog, "nosuch", derived["f"]); err == nil {
		t.Error("unknown procedure accepted")
	}
}
