package analysis

import (
	"testing"
	"testing/quick"

	"ctdf/internal/cfg"
	"ctdf/internal/lang"
	"ctdf/internal/workloads"
)

func buildGraph(prog *lang.Program) (*cfg.Graph, error) { return cfg.Build(prog) }

// Property tests (testing/quick) over random programs and alias
// structures.

// randomProgram maps an arbitrary seed to a generated workload.
func randomProgram(seed int64) *lang.Program {
	return workloads.Random(seed%1000, 3, 2).Parse()
}

func TestQuickAliasStructureAxioms(t *testing.T) {
	f := func(seed int64) bool {
		prog := workloads.RandomAliased(seed%500, 3, 1).Parse()
		a := NewAliasStructure(prog)
		vars := a.Vars()
		for _, x := range vars {
			// Reflexive.
			if !a.Related(x, x) {
				return false
			}
			for _, y := range vars {
				// Symmetric.
				if a.Related(x, y) != a.Related(y, x) {
					return false
				}
				// Class membership matches the relation.
				inClass := false
				for _, c := range a.Class(x) {
					if c == y {
						inClass = true
					}
				}
				if inClass != a.Related(x, y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoverLaws(t *testing.T) {
	f := func(seed int64) bool {
		prog := workloads.RandomAliased(seed%500, 3, 1).Parse()
		a := NewAliasStructure(prog)
		for _, cover := range []*Cover{SingletonCover(a), ClassCover(a), MonolithicCover(a)} {
			if cover.Validate(a) != nil {
				return false
			}
			for _, x := range a.Vars() {
				// The access set is never empty (x itself is covered) and
				// contains only declared cover elements.
				cx := cover.AccessSet(a, x)
				if len(cx) == 0 {
					return false
				}
				names := map[string]bool{}
				for _, e := range cover.Elements {
					names[e.Name] = true
				}
				for _, c := range cx {
					if !names[c] {
						return false
					}
				}
			}
		}
		// Singleton cover: C[x] is exactly the alias class [x].
		sc := SingletonCover(a)
		for _, x := range a.Vars() {
			cx := sc.AccessSet(a, x)
			cls := a.Class(x)
			if len(cx) != len(cls) {
				return false
			}
			for i := range cx {
				if cx[i] != cls[i] {
					return false
				}
			}
		}
		// Monolithic cover: every access set is {V}.
		mc := MonolithicCover(a)
		for _, x := range a.Vars() {
			if cx := mc.AccessSet(a, x); len(cx) != 1 || cx[0] != "V" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSwitchPlacementMonotone(t *testing.T) {
	// Adding a referencing node can only add switches: placement over
	// need ∪ extra is a superset of placement over need.
	f := func(seed int64) bool {
		prog := randomProgram(seed)
		g, err := buildGraph(prog)
		if err != nil {
			return true // generator produced something cfg rejects; skip
		}
		cd := ComputeControlDeps(g)
		base := VarNeed(g)
		p1 := PlaceSwitches(g, cd, base)
		extended := func(id int) []string {
			out := base(id)
			if g.Nodes[id].Kind == cfg.KindAssign {
				out = append(append([]string(nil), out...), "extra-token")
			}
			return out
		}
		p2 := PlaceSwitches(g, cd, extended)
		for f2, toks := range p1.Needs {
			for tok := range toks {
				if !p2.Needs[f2][tok] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickIteratedCDSubsetOfForks(t *testing.T) {
	f := func(seed int64) bool {
		prog := randomProgram(seed)
		g, err := buildGraph(prog)
		if err != nil {
			return true
		}
		cd := ComputeControlDeps(g)
		for _, n := range g.SortedIDs() {
			for fk := range cd.IteratedCD([]int{n}) {
				if len(g.Nodes[fk].Succs) != 2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
