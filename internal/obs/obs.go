// Package obs is the shared observability layer of the two dataflow
// execution engines (internal/machine and internal/chanexec). It turns
// the paper's qualitative claims — parallelism profiles, critical paths,
// synchronization counts (§3, §5, §6) — into machine-readable data:
//
//   - per-node counters keyed by dfg node id and operator kind: firings,
//     tokens consumed and emitted, matching-store waits, and split-phase
//     memory-latency stall cycles;
//   - a cycle-stamped event stream with pluggable sinks (in-memory ring
//     buffer, NDJSON writer, the historical trace format);
//   - post-run analyses: critical-path extraction over the firing DAG
//     (the longest dependence chain, with per-operator attribution),
//     parallelism-profile histograms, and schema-vs-schema diff reports
//     (Compare) that make experiment deltas machine-readable.
//
// A nil *Collector is valid everywhere and every method on it is a
// no-op, so an engine instrumented with obs pays only a nil check per
// firing when observability is off (verified by BenchmarkObsDisabled).
// The event schema and counter semantics are documented in
// OBSERVABILITY.md at the repository root.
package obs

import (
	"ctdf/internal/dfg"
)

// NodeMeta is the stable per-node metadata used for attribution; it is
// the dfg graph's own metadata record.
type NodeMeta = dfg.Meta

// noDep marks a token that carries no recorded producer firing.
const noDep int32 = -1

// Journal receives the causal execution journal: one record per firing
// carrying the full set of operand-producer firing ids (the provenance
// DAG, generalizing the critical-path collector's single
// latest-finishing link), one record per matching-store park, and the
// run-ending fault/abort records. Implementations live in
// internal/obs/journal; the engines only ever see this interface, so
// journal collection stays nil-safe and zero-cost when disabled.
//
// RecordFire is called once per firing, in engine issue order; the
// firing's id is its zero-based call index (identical to the id Fire
// returns). deps holds the producer firing ids of every operand the
// firing consumed (negative ids — initial tokens — are never passed);
// the callee owns the slice.
type Journal interface {
	RecordFire(node, cycle, cost, port int, tag string, deps []int32)
	RecordPark(node, cycle, port int, tag string, dep int32)
	RecordFault(node, cycle int, detail string)
	RecordAbort(cycle int, check string)
}

// firingRec is one recorded operator firing: a node of the firing DAG.
type firingRec struct {
	node int32
	// pred is the input firing on the longest dependence chain into this
	// firing (noDep at the start of a chain).
	pred int32
	cost int32
	// cycle is the engine cycle the firing issued at.
	cycle int32
	// finish is the length in cycles of the longest dependence chain
	// ending with this firing's completion.
	finish int64
	tag    string
}

// Collector gathers per-node counters, streams events to an optional
// sink, and (optionally) records the firing DAG for critical-path
// extraction. It is single-goroutine (the cycle-driven machine); the
// concurrent channel engine uses NodeCounters instead.
//
// A nil *Collector is valid: every method is a no-op and Fire returns
// noDep, so engines thread one pointer and pay one branch when
// observability is disabled.
type Collector struct {
	meta     []NodeMeta
	nodes    []NodeStats
	sink     Sink
	critical bool
	journal  Journal
	firings  []firingRec
	endID    int
}

// Options configures a Collector.
type Options struct {
	// Sink receives the cycle-stamped event stream (nil for counters
	// only).
	Sink Sink
	// CriticalPath records every firing's longest dependence chain so
	// Report can extract the critical path. Costs one small record per
	// firing.
	CriticalPath bool
	// Journal receives the causal execution journal (nil to disable).
	// Enabling it also records the firing DAG, since journal records are
	// keyed by firing id.
	Journal Journal
}

// NewCollector prepares a collector for one run of g.
func NewCollector(g *dfg.Graph, opt Options) *Collector {
	meta := g.Meta()
	c := &Collector{meta: meta, sink: opt.Sink, critical: opt.CriticalPath, journal: opt.Journal, endID: g.EndID}
	c.nodes = make([]NodeStats, len(meta))
	for i, m := range meta {
		c.nodes[i].Meta = m
	}
	return c
}

// Meta returns the node metadata the collector attributes against.
func (c *Collector) Meta() []NodeMeta {
	if c == nil {
		return nil
	}
	return c.meta
}

// CriticalPathEnabled reports whether the firing DAG is being recorded.
func (c *Collector) CriticalPathEnabled() bool { return c != nil && c.critical }

// DAGEnabled reports whether firings must carry producer ids — true when
// either the critical path or the causal journal is being recorded.
func (c *Collector) DAGEnabled() bool { return c != nil && (c.critical || c.journal != nil) }

// JournalEnabled reports whether the full per-firing operand-producer
// sets (and matching-store parks) are being journaled.
func (c *Collector) JournalEnabled() bool { return c != nil && c.journal != nil }

// AddSink attaches an additional event sink.
func (c *Collector) AddSink(s Sink) {
	if c == nil || s == nil {
		return
	}
	if c.sink == nil {
		c.sink = s
		return
	}
	c.sink = MultiSink{c.sink, s}
}

// Fire records one operator firing: node and issue cycle, the firing's
// cost in cycles (1 for ordinary operators, the split-phase latency for
// memory operations), the number of tokens consumed, the arrival port
// (meaningful for any-arrival operators; 0 otherwise), the producer
// firing of the firing's latest input (dep), the full set of producer
// firings of its operands (deps; nil unless journaling), and the token
// tag. It returns the firing's id for threading onto the tokens the
// firing emits, or noDep when the firing DAG is not being recorded.
func (c *Collector) Fire(node, cycle, cost, consumed, port int, dep int32, deps []int32, tag string) int32 {
	if c == nil {
		return noDep
	}
	ns := &c.nodes[node]
	ns.Firings++
	ns.Consumed += int64(consumed)
	if cost > 1 {
		ns.MemStallCycles += int64(cost - 1)
	}
	if c.sink != nil {
		c.sink.Emit(Event{Cycle: cycle, Type: EvFire, Node: node, Kind: ns.Meta.Kind, Tag: tag, Cost: cost})
	}
	if c.journal != nil {
		c.journal.RecordFire(node, cycle, cost, port, tag, deps)
	} else if !c.critical {
		return noDep
	}
	rec := firingRec{node: int32(node), pred: dep, cost: int32(cost), cycle: int32(cycle), tag: tag}
	rec.finish = int64(cost)
	if dep >= 0 {
		rec.finish += c.firings[dep].finish
	}
	c.firings = append(c.firings, rec)
	return int32(len(c.firings) - 1)
}

// Emitted credits n emitted tokens to node.
func (c *Collector) Emitted(node, n int) {
	if c == nil {
		return
	}
	c.nodes[node].Emitted += int64(n)
}

// Wait records a token that had to wait in the matching store for its
// partner operands (ETS frame-memory pressure, §2.2). port is the
// arrival port and dep the token's producer firing (noDep for initial
// tokens); both feed the journal's park records.
func (c *Collector) Wait(node, cycle, port int, dep int32, tag string) {
	if c == nil {
		return
	}
	c.nodes[node].MatchWaits++
	if c.sink != nil {
		c.sink.Emit(Event{Cycle: cycle, Type: EvWait, Node: node, Kind: c.nodes[node].Meta.Kind, Tag: tag})
	}
	if c.journal != nil {
		c.journal.RecordPark(node, cycle, port, tag, dep)
	}
}

// Fault records an injected fault at node (-1 when the fault has no
// single node, e.g. a lost memory response); detail is the fault class.
func (c *Collector) Fault(node, cycle int, detail string) {
	if c == nil {
		return
	}
	if c.journal != nil {
		c.journal.RecordFault(node, cycle, detail)
	}
	if c.sink == nil {
		return
	}
	kind := ""
	if node >= 0 && node < len(c.nodes) {
		kind = c.nodes[node].Meta.Kind
	}
	c.sink.Emit(Event{Cycle: cycle, Type: EvFault, Node: node, Kind: kind, Detail: detail})
}

// Abort records a failed machine check ending the run; detail is the
// check name. Aborted runs still produce a full report, so partial
// executions stay profilable.
func (c *Collector) Abort(cycle int, detail string) {
	if c == nil {
		return
	}
	if c.journal != nil {
		c.journal.RecordAbort(cycle, detail)
	}
	if c.sink == nil {
		return
	}
	c.sink.Emit(Event{Cycle: cycle, Type: EvAbort, Node: -1, Detail: detail})
}

// FiringCount returns the number of firings recorded in the firing DAG
// so far. The sharded machine uses it to precompute the ids Fire will
// assign to a cycle's batch (ids are dense call indices), so parallel
// shard workers can stamp emitted tokens with their producer's id before
// the sequential retire pass actually calls Fire.
func (c *Collector) FiringCount() int {
	if c == nil {
		return 0
	}
	return len(c.firings)
}

// MaxDep returns whichever of two producer firings completes later —
// the dependence a token matched from both inherits.
//
// MaxDep only reads the firing DAG, so concurrent calls are safe as long
// as no Fire call runs at the same time — the discipline the sharded
// machine's delivery phase observes (all Fire calls happen in the
// sequential retire pass that precedes it).
func (c *Collector) MaxDep(a, b int32) int32 {
	if c == nil || (!c.critical && c.journal == nil) {
		return noDep
	}
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if c.firings[a].finish >= c.firings[b].finish {
		return a
	}
	return b
}

// NodeCounters is the lock-free per-node firing counter the concurrent
// channel engine uses: each node's count must be updated only by the
// goroutine that owns the node (chanexec's one-goroutine-per-operator
// discipline), which makes plain int64 slots race-free.
type NodeCounters struct {
	fires  []int64
	clocks []int64
}

// NewNodeCounters allocates counters for n nodes.
func NewNodeCounters(n int) *NodeCounters {
	return &NodeCounters{fires: make([]int64, n), clocks: make([]int64, n)}
}

// Inc counts one firing of node. A nil receiver is a no-op.
func (c *NodeCounters) Inc(node int) {
	if c == nil {
		return
	}
	c.fires[node]++
}

// ObserveClock records a firing's Lamport logical timestamp
// (max over operand token clocks + 1); the per-node maximum gives the
// channel engine's causal depth profile. Same ownership discipline as
// Inc: only the node's goroutine may call it.
func (c *NodeCounters) ObserveClock(node int, clock int64) {
	if c == nil {
		return
	}
	if clock > c.clocks[node] {
		c.clocks[node] = clock
	}
}

// Firings returns the per-node firing counts (indexed by node id). Call
// only after the engine has quiesced.
func (c *NodeCounters) Firings() []int64 {
	if c == nil {
		return nil
	}
	return append([]int64(nil), c.fires...)
}

// Clocks returns the per-node maximum Lamport timestamps (indexed by
// node id; 0 for nodes that never fired). Call only after the engine has
// quiesced. On the machine engine the same quantity is the journal's
// per-node maximum causal depth, which makes the two engines' causal
// orders directly comparable (see internal/chanexec's Lamport tests).
func (c *NodeCounters) Clocks() []int64 {
	if c == nil {
		return nil
	}
	return append([]int64(nil), c.clocks...)
}
