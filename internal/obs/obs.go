// Package obs is the shared observability layer of the two dataflow
// execution engines (internal/machine and internal/chanexec). It turns
// the paper's qualitative claims — parallelism profiles, critical paths,
// synchronization counts (§3, §5, §6) — into machine-readable data:
//
//   - per-node counters keyed by dfg node id and operator kind: firings,
//     tokens consumed and emitted, matching-store waits, and split-phase
//     memory-latency stall cycles;
//   - a cycle-stamped event stream with pluggable sinks (in-memory ring
//     buffer, NDJSON writer, the historical trace format);
//   - post-run analyses: critical-path extraction over the firing DAG
//     (the longest dependence chain, with per-operator attribution),
//     parallelism-profile histograms, and schema-vs-schema diff reports
//     (Compare) that make experiment deltas machine-readable.
//
// A nil *Collector is valid everywhere and every method on it is a
// no-op, so an engine instrumented with obs pays only a nil check per
// firing when observability is off (verified by BenchmarkObsDisabled).
// The event schema and counter semantics are documented in
// OBSERVABILITY.md at the repository root.
package obs

import (
	"ctdf/internal/dfg"
)

// NodeMeta is the stable per-node metadata used for attribution; it is
// the dfg graph's own metadata record.
type NodeMeta = dfg.Meta

// noDep marks a token that carries no recorded producer firing.
const noDep int32 = -1

// firingRec is one recorded operator firing: a node of the firing DAG.
type firingRec struct {
	node int32
	// pred is the input firing on the longest dependence chain into this
	// firing (noDep at the start of a chain).
	pred int32
	cost int32
	// cycle is the engine cycle the firing issued at.
	cycle int32
	// finish is the length in cycles of the longest dependence chain
	// ending with this firing's completion.
	finish int64
	tag    string
}

// Collector gathers per-node counters, streams events to an optional
// sink, and (optionally) records the firing DAG for critical-path
// extraction. It is single-goroutine (the cycle-driven machine); the
// concurrent channel engine uses NodeCounters instead.
//
// A nil *Collector is valid: every method is a no-op and Fire returns
// noDep, so engines thread one pointer and pay one branch when
// observability is disabled.
type Collector struct {
	meta     []NodeMeta
	nodes    []NodeStats
	sink     Sink
	critical bool
	firings  []firingRec
	endID    int
}

// Options configures a Collector.
type Options struct {
	// Sink receives the cycle-stamped event stream (nil for counters
	// only).
	Sink Sink
	// CriticalPath records every firing's longest dependence chain so
	// Report can extract the critical path. Costs one small record per
	// firing.
	CriticalPath bool
}

// NewCollector prepares a collector for one run of g.
func NewCollector(g *dfg.Graph, opt Options) *Collector {
	meta := g.Meta()
	c := &Collector{meta: meta, sink: opt.Sink, critical: opt.CriticalPath, endID: g.EndID}
	c.nodes = make([]NodeStats, len(meta))
	for i, m := range meta {
		c.nodes[i].Meta = m
	}
	return c
}

// Meta returns the node metadata the collector attributes against.
func (c *Collector) Meta() []NodeMeta {
	if c == nil {
		return nil
	}
	return c.meta
}

// CriticalPathEnabled reports whether the firing DAG is being recorded.
func (c *Collector) CriticalPathEnabled() bool { return c != nil && c.critical }

// AddSink attaches an additional event sink.
func (c *Collector) AddSink(s Sink) {
	if c == nil || s == nil {
		return
	}
	if c.sink == nil {
		c.sink = s
		return
	}
	c.sink = MultiSink{c.sink, s}
}

// Fire records one operator firing: node and issue cycle, the firing's
// cost in cycles (1 for ordinary operators, the split-phase latency for
// memory operations), the number of tokens consumed, the producer firing
// of the firing's latest input (dep), and the token tag. It returns the
// firing's id for threading onto the tokens the firing emits, or noDep
// when the firing DAG is not being recorded.
func (c *Collector) Fire(node, cycle, cost, consumed int, dep int32, tag string) int32 {
	if c == nil {
		return noDep
	}
	ns := &c.nodes[node]
	ns.Firings++
	ns.Consumed += int64(consumed)
	if cost > 1 {
		ns.MemStallCycles += int64(cost - 1)
	}
	if c.sink != nil {
		c.sink.Emit(Event{Cycle: cycle, Type: EvFire, Node: node, Kind: ns.Meta.Kind, Tag: tag, Cost: cost})
	}
	if !c.critical {
		return noDep
	}
	rec := firingRec{node: int32(node), pred: dep, cost: int32(cost), cycle: int32(cycle), tag: tag}
	rec.finish = int64(cost)
	if dep >= 0 {
		rec.finish += c.firings[dep].finish
	}
	c.firings = append(c.firings, rec)
	return int32(len(c.firings) - 1)
}

// Emitted credits n emitted tokens to node.
func (c *Collector) Emitted(node, n int) {
	if c == nil {
		return
	}
	c.nodes[node].Emitted += int64(n)
}

// Wait records a token that had to wait in the matching store for its
// partner operands (ETS frame-memory pressure, §2.2).
func (c *Collector) Wait(node, cycle int, tag string) {
	if c == nil {
		return
	}
	c.nodes[node].MatchWaits++
	if c.sink != nil {
		c.sink.Emit(Event{Cycle: cycle, Type: EvWait, Node: node, Kind: c.nodes[node].Meta.Kind, Tag: tag})
	}
}

// Fault records an injected fault at node (-1 when the fault has no
// single node, e.g. a lost memory response); detail is the fault class.
func (c *Collector) Fault(node, cycle int, detail string) {
	if c == nil || c.sink == nil {
		return
	}
	kind := ""
	if node >= 0 && node < len(c.nodes) {
		kind = c.nodes[node].Meta.Kind
	}
	c.sink.Emit(Event{Cycle: cycle, Type: EvFault, Node: node, Kind: kind, Detail: detail})
}

// Abort records a failed machine check ending the run; detail is the
// check name. Aborted runs still produce a full report, so partial
// executions stay profilable.
func (c *Collector) Abort(cycle int, detail string) {
	if c == nil || c.sink == nil {
		return
	}
	c.sink.Emit(Event{Cycle: cycle, Type: EvAbort, Node: -1, Detail: detail})
}

// MaxDep returns whichever of two producer firings completes later —
// the dependence a token matched from both inherits.
func (c *Collector) MaxDep(a, b int32) int32 {
	if c == nil || !c.critical {
		return noDep
	}
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if c.firings[a].finish >= c.firings[b].finish {
		return a
	}
	return b
}

// NodeCounters is the lock-free per-node firing counter the concurrent
// channel engine uses: each node's count must be updated only by the
// goroutine that owns the node (chanexec's one-goroutine-per-operator
// discipline), which makes plain int64 slots race-free.
type NodeCounters struct {
	fires []int64
}

// NewNodeCounters allocates counters for n nodes.
func NewNodeCounters(n int) *NodeCounters { return &NodeCounters{fires: make([]int64, n)} }

// Inc counts one firing of node. A nil receiver is a no-op.
func (c *NodeCounters) Inc(node int) {
	if c == nil {
		return
	}
	c.fires[node]++
}

// Firings returns the per-node firing counts (indexed by node id). Call
// only after the engine has quiesced.
func (c *NodeCounters) Firings() []int64 {
	if c == nil {
		return nil
	}
	return append([]int64(nil), c.fires...)
}
