// Package telemetry is the engine-level metrics registry: counters,
// gauges, and fixed-bucket histograms describing the *runtime* (BSP
// phase times, barrier waits, cross-shard traffic, mailbox depths)
// rather than the translated program, which internal/obs observes.
//
// The package follows the obs discipline on both axes that matter to
// the machine:
//
//   - Disabled is near-free. Engines hold nil probe structs when no
//     registry is attached, and every instrument method is nil-receiver
//     safe, so an uninstrumented firing pays only nil-check branches
//     (guarded by BenchmarkTelemetryDisabled).
//
//   - Enabled is deterministic where the machine is. Instrument values
//     are int64 (durations in nanoseconds), updated with atomics so a
//     Snapshot is race-free at any instant — that is what lets `ctdf
//     top` and the /metrics endpoint read a *running* machine. The
//     sharded engine keeps per-shard scratch in plain fields during the
//     parallel phases and folds it into the registry during the
//     sequential merge step in shard order 0..W-1, so series creation
//     order — and therefore the rendered text — is byte-deterministic.
//
// Not everything a profiler measures can be invariant: wall-clock times
// depend on the host and per-shard series depend on the worker count.
// Each family therefore carries two flags. Varying marks families whose
// *values* are wall-clock or scheduling dependent; Sharded marks
// families whose *shape or values* depend on the worker topology.
// Snapshot.Stable (drop Varying) is byte-reproducible for a fixed
// worker count; Snapshot.Invariant (drop Varying and Sharded) is
// byte-identical across worker counts, pinned by the machine's
// cross-worker equivalence test.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Kind is the instrument kind of a metric family.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the OpenMetrics type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Spec declares a metric family: its identity, shape, and determinism
// class. Specs are plain values; the engine probes register them
// against a Registry and the catalog exposes them for documentation.
type Spec struct {
	Name   string   `json:"name"`             // family name without the counter _total suffix
	Help   string   `json:"help"`             // one-line description for the exposition
	Kind   Kind     `json:"kind"`             // counter, gauge, or histogram
	Unit   string   `json:"unit,omitempty"`   // "" or "seconds"; seconds families store nanoseconds
	Labels []string `json:"labels,omitempty"` // label names, in declaration order
	// Buckets holds histogram upper bounds in the stored unit
	// (nanoseconds for seconds families). An implicit +Inf bucket is
	// always appended.
	Buckets []int64 `json:"buckets,omitempty"`
	// Varying marks values that depend on wall-clock time or
	// scheduling (phase durations, mailbox depths, watchdog slack).
	// Varying families are excluded from every byte-exact comparison.
	Varying bool `json:"varying,omitempty"`
	// Sharded marks families whose series set or values depend on the
	// worker topology (per-shard timings, the traffic matrix, the
	// pure/impure firing split). Sharded families are deterministic at
	// a fixed worker count but excluded from cross-worker comparisons.
	Sharded bool `json:"sharded,omitempty"`
}

// MarshalJSON renders the kind as its OpenMetrics type name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// SampleName is the name samples are rendered under: OpenMetrics
// counters expose `<name>_total` while the family keeps the base name.
func (s Spec) SampleName() string {
	if s.Kind == KindCounter {
		return s.Name + "_total"
	}
	return s.Name
}

// Series is one labelled instrument inside a family. All mutation is
// atomic and all methods are nil-receiver safe, so engine probes can
// hold nil handles when telemetry is disabled.
type Series struct {
	labels  []string
	v       atomic.Int64   // counter / gauge value
	buckets []atomic.Int64 // histogram: len(spec.Buckets)+1, last is +Inf
	count   atomic.Int64
	sum     atomic.Int64
}

// Add increments a counter (or adjusts a gauge) by n.
func (s *Series) Add(n int64) {
	if s == nil {
		return
	}
	s.v.Add(n)
}

// Set stores a gauge value.
func (s *Series) Set(n int64) {
	if s == nil {
		return
	}
	s.v.Store(n)
}

// SetMax raises a gauge to n if n exceeds the current value.
func (s *Series) SetMax(n int64) {
	if s == nil {
		return
	}
	for {
		cur := s.v.Load()
		if n <= cur || s.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Observe records one histogram observation.
func (s *Series) Observe(v int64, bounds []int64) {
	if s == nil {
		return
	}
	i := 0
	for i < len(bounds) && v > bounds[i] {
		i++
	}
	s.buckets[i].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
}

// Family is a registered metric family: a Spec plus its series, in
// creation order. Creation order is part of the exposition format —
// per-shard series are created in shard order by the probes — so
// renders are byte-deterministic without any locale-dependent sorting
// of numeric label values.
type Family struct {
	Spec
	mu     *sync.Mutex // the owning registry's lock
	series []*Series
	index  map[string]*Series
}

// Series returns the instrument for the given label values, creating
// it on first use. The number of values must match the Spec's labels.
func (f *Family) Series(labelVals ...string) *Series {
	if f == nil {
		return nil
	}
	if len(labelVals) != len(f.Labels) {
		panic("telemetry: label arity mismatch on " + f.Name)
	}
	key := seriesKey(labelVals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.index[key]; ok {
		return s
	}
	s := &Series{labels: append([]string(nil), labelVals...)}
	if f.Kind == KindHistogram {
		s.buckets = make([]atomic.Int64, len(f.Buckets)+1)
	}
	f.index[key] = s
	f.series = append(f.series, s)
	return s
}

// Observe records v into the series for the given labels, looking up
// the family bounds. Convenience for call sites that do not cache the
// series handle.
func (f *Family) Observe(v int64, labelVals ...string) {
	if f == nil {
		return
	}
	f.Series(labelVals...).Observe(v, f.Buckets)
}

func seriesKey(vals []string) string {
	key := ""
	for _, v := range vals {
		key += v + "\x00"
	}
	return key
}

// Registry holds metric families in registration order. Registration
// takes the lock; instrument updates are lock-free atomics; Snapshot
// is safe at any time, including while engine phases are running.
type Registry struct {
	mu       sync.Mutex
	families []*Family
	byName   map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Family)}
}

// Family registers spec (or returns the existing family of that name,
// so repeated runs against one registry accumulate). Nil-receiver safe.
func (r *Registry) Family(spec Spec) *Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[spec.Name]; ok {
		return f
	}
	f := &Family{Spec: spec, mu: &r.mu, index: make(map[string]*Series)}
	r.byName[spec.Name] = f
	r.families = append(r.families, f)
	return f
}

// Snapshot copies every family and series into an immutable view.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := &Snapshot{}
	for _, f := range r.families {
		fs := FamilySnap{Spec: f.Spec}
		for _, s := range f.series {
			ss := SeriesSnap{Labels: s.labels, Value: s.v.Load()}
			if f.Kind == KindHistogram {
				ss.Buckets = make([]int64, len(s.buckets))
				for i := range s.buckets {
					ss.Buckets[i] = s.buckets[i].Load()
				}
				ss.Count = s.count.Load()
				ss.Sum = s.sum.Load()
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// Snapshot is an immutable copy of a registry. Families appear in
// registration order, series in creation order; both are deterministic
// because registration happens in sequential engine code.
type Snapshot struct {
	Families []FamilySnap `json:"families"`
}

// FamilySnap is one family in a snapshot.
type FamilySnap struct {
	Spec
	Series []SeriesSnap `json:"series"`
}

// SeriesSnap is one series in a snapshot. Durations are nanoseconds
// (families with Unit "seconds"); the renderers convert.
type SeriesSnap struct {
	Labels  []string `json:"labels,omitempty"`
	Value   int64    `json:"value,omitempty"`   // counter / gauge
	Buckets []int64  `json:"buckets,omitempty"` // histogram, +Inf last
	Count   int64    `json:"count,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
}

// Stable returns the snapshot without Varying families: the projection
// that is byte-reproducible for a fixed worker count.
func (s *Snapshot) Stable() *Snapshot { return s.filter(func(f FamilySnap) bool { return !f.Varying }) }

// Invariant returns the snapshot without Varying and Sharded families:
// the projection that is byte-identical across worker counts.
func (s *Snapshot) Invariant() *Snapshot {
	return s.filter(func(f FamilySnap) bool { return !f.Varying && !f.Sharded })
}

func (s *Snapshot) filter(keep func(FamilySnap) bool) *Snapshot {
	out := &Snapshot{}
	for _, f := range s.Families {
		if keep(f) {
			out.Families = append(out.Families, f)
		}
	}
	return out
}

// Family returns the named family snapshot, or nil.
func (s *Snapshot) Family(name string) *FamilySnap {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Get returns the value of the series with the given label values
// (counter/gauge), or 0 when absent.
func (f *FamilySnap) Get(labelVals ...string) int64 {
	if f == nil {
		return 0
	}
	for _, s := range f.Series {
		if labelsEqual(s.Labels, labelVals) {
			return s.Value
		}
	}
	return 0
}

// Sums returns count and sum of the histogram series with the given
// label values.
func (f *FamilySnap) Sums(labelVals ...string) (count, sum int64) {
	if f == nil {
		return 0, 0
	}
	for _, s := range f.Series {
		if labelsEqual(s.Labels, labelVals) {
			return s.Count, s.Sum
		}
	}
	return 0, 0
}

func labelsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SortedCopy returns a deep copy with families sorted by name and
// series sorted by label values. The engines never need it (their
// registration order is deterministic), but tests comparing registries
// built along different code paths do.
func (s *Snapshot) SortedCopy() *Snapshot {
	out := &Snapshot{Families: append([]FamilySnap(nil), s.Families...)}
	sort.Slice(out.Families, func(i, j int) bool { return out.Families[i].Name < out.Families[j].Name })
	for i := range out.Families {
		f := &out.Families[i]
		f.Series = append([]SeriesSnap(nil), f.Series...)
		sort.Slice(f.Series, func(a, b int) bool {
			return seriesKey(f.Series[a].Labels) < seriesKey(f.Series[b].Labels)
		})
	}
	return out
}
