package telemetry

import "strconv"

// Bucket layouts shared by the engine families. Durations are stored
// in nanoseconds; TimeBuckets spans 1µs..10s in decades, which is the
// range a phase, barrier wait, or checkpoint capture can plausibly
// occupy. DepthBuckets is a power-of-two ladder for token counts and
// queue depths.
var (
	TimeBuckets  = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10}
	DepthBuckets = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}
)

// Machine engine families. Per-shard series use the shard id as the
// label value; the sequential phases run on the coordinator and use
// shard "seq". The traffic matrix has two extra source lanes: "seq"
// for tokens emitted by the sequential select/retire step (and by the
// w=1 engine) and "mem" for memory-latency releases delivered at the
// cycle boundary.
var (
	SpecMachineCycles = Spec{
		Name: "ctdf_machine_cycles", Kind: KindCounter,
		Help: "machine cycles executed, including post-halt drain cycles",
	}
	SpecMachineFirings = Spec{
		Name: "ctdf_machine_firings", Kind: KindCounter,
		Help: "operator firings executed",
	}
	SpecMachineTokens = Spec{
		Name: "ctdf_machine_tokens_delivered", Kind: KindCounter,
		Help: "tokens delivered to operator inputs",
	}
	SpecMachineMatches = Spec{
		Name: "ctdf_machine_matches", Kind: KindCounter,
		Help: "tokens that parked in the matching store awaiting a partner",
	}
	SpecMachineMatchDepth = Spec{
		Name: "ctdf_machine_match_store_depth", Kind: KindHistogram, Buckets: DepthBuckets,
		Help: "matching-store population sampled once per cycle",
	}
	SpecMachineMatchPeak = Spec{
		Name: "ctdf_machine_match_store_peak", Kind: KindGauge,
		Help: "high-water matching-store population",
	}
	SpecMachineCheckpoints = Spec{
		Name: "ctdf_machine_checkpoints", Kind: KindCounter,
		Help: "checkpoints captured at cycle boundaries",
	}
	SpecMachineCheckpointSeconds = Spec{
		Name: "ctdf_machine_checkpoint_seconds", Kind: KindHistogram,
		Unit: "seconds", Buckets: TimeBuckets, Varying: true,
		Help: "wall time capturing one checkpoint (snapshot plus sink)",
	}
	SpecMachinePhaseSeconds = Spec{
		Name: "ctdf_machine_phase_seconds", Kind: KindHistogram,
		Unit: "seconds", Buckets: TimeBuckets,
		Labels: []string{"phase", "shard"}, Varying: true, Sharded: true,
		Help: "per-cycle wall time in each BSP phase (select/fire/retire/deliver) per shard",
	}
	SpecMachineBarrierSeconds = Spec{
		Name: "ctdf_machine_barrier_wait_seconds", Kind: KindHistogram,
		Unit: "seconds", Buckets: TimeBuckets,
		Labels: []string{"phase"}, Varying: true, Sharded: true,
		Help: "coordinator wait at the fire/deliver phase barriers",
	}
	SpecMachineTraffic = Spec{
		Name: "ctdf_machine_shard_traffic_tokens", Kind: KindCounter,
		Labels: []string{"src", "dst"}, Sharded: true,
		Help: "tokens routed from src shard outboxes to dst shard inboxes (src seq = sequential step, src mem = latency releases)",
	}
	SpecMachineOutbox = Spec{
		Name: "ctdf_machine_outbox_tokens", Kind: KindHistogram, Buckets: DepthBuckets,
		Labels: []string{"shard"}, Sharded: true,
		Help: "tokens staged in a shard's outboxes per fire phase",
	}
	SpecMachineInbox = Spec{
		Name: "ctdf_machine_inbox_tokens", Kind: KindHistogram, Buckets: DepthBuckets,
		Labels: []string{"shard"}, Sharded: true,
		Help: "tokens merged into a shard's stores per deliver phase",
	}
	SpecMachinePhaseFirings = Spec{
		Name: "ctdf_machine_phase_firings", Kind: KindCounter,
		Labels: []string{"phase"}, Sharded: true,
		Help: "firings by executing phase: fire = pure parallel, retire = impure sequential",
	}
)

// Channel-engine (chanexec) families.
var (
	SpecChanFirings = Spec{
		Name: "ctdf_chanexec_firings", Kind: KindCounter,
		Help: "operator firings executed by the channel engine",
	}
	SpecChanTokens = Spec{
		Name: "ctdf_chanexec_tokens_delivered", Kind: KindCounter,
		Help: "messages delivered to operator mailboxes",
	}
	SpecChanMailboxDepth = Spec{
		Name: "ctdf_chanexec_mailbox_depth", Kind: KindHistogram,
		Buckets: DepthBuckets, Varying: true,
		Help: "mailbox depth observed at each delivery",
	}
	SpecChanWatchdogExtensions = Spec{
		Name: "ctdf_chanexec_watchdog_extensions", Kind: KindCounter, Varying: true,
		Help: "watchdog expiries re-armed because deliveries were still flowing",
	}
	SpecChanWatchdogHeadroom = Spec{
		Name: "ctdf_chanexec_watchdog_idle_headroom_seconds", Kind: KindHistogram,
		Unit: "seconds", Buckets: TimeBuckets, Varying: true,
		Help: "slack between the watchdog window and observed idle time at each expiry",
	}
)

// Catalog lists every engine family, machine first then chanexec, in
// registration order. OBSERVABILITY.md's metric catalog is held to
// this list by a doc-sync test.
func Catalog() []Spec {
	return []Spec{
		SpecMachineCycles, SpecMachineFirings, SpecMachineTokens,
		SpecMachineMatches, SpecMachineMatchDepth, SpecMachineMatchPeak,
		SpecMachineCheckpoints, SpecMachineCheckpointSeconds,
		SpecMachinePhaseSeconds, SpecMachineBarrierSeconds,
		SpecMachineTraffic, SpecMachineOutbox, SpecMachineInbox,
		SpecMachinePhaseFirings,
		SpecChanFirings, SpecChanTokens, SpecChanMailboxDepth,
		SpecChanWatchdogExtensions, SpecChanWatchdogHeadroom,
	}
}

// TrafficCell is one src→dst entry of the cross-shard traffic matrix.
type TrafficCell struct {
	Src, Dst string
	Tokens   int64
}

// MachineBreakdown is the machine engine's profile extracted from a
// snapshot: per-shard phase busy time, barrier waits, firing split,
// and the traffic matrix — the inputs to the human phase table, the
// bench phase cells, and experiment E19.
type MachineBreakdown struct {
	Workers              int     // shard count observed in per-shard series
	SelectNs, RetireNs   int64   // sequential phases (coordinator)
	FireNs, DeliverNs    []int64 // per-shard busy time
	BarrierFireNs        int64
	BarrierDeliverNs     int64
	Cycles, Firings      int64
	Tokens, Matches      int64
	FireFirings          int64 // pure firings in the parallel fire phase
	RetireFirings        int64 // impure firings retired sequentially
	Traffic              []TrafficCell
	RemoteTokens         int64 // shard→different-shard tokens
	ShardTokens          int64 // all tokens with a numeric src shard
	SeqTokens, MemTokens int64 // coordinator and latency-release lanes
}

// MachineBreakdown extracts the machine profile from the snapshot.
func (s *Snapshot) MachineBreakdown() *MachineBreakdown {
	b := &MachineBreakdown{
		Cycles:        s.Family(SpecMachineCycles.Name).Get(),
		Firings:       s.Family(SpecMachineFirings.Name).Get(),
		Tokens:        s.Family(SpecMachineTokens.Name).Get(),
		Matches:       s.Family(SpecMachineMatches.Name).Get(),
		FireFirings:   s.Family(SpecMachinePhaseFirings.Name).Get("fire"),
		RetireFirings: s.Family(SpecMachinePhaseFirings.Name).Get("retire"),
	}
	if f := s.Family(SpecMachinePhaseSeconds.Name); f != nil {
		for _, ser := range f.Series {
			phase, shard := ser.Labels[0], ser.Labels[1]
			switch phase {
			case "select":
				b.SelectNs += ser.Sum
			case "retire":
				b.RetireNs += ser.Sum
			case "fire", "deliver":
				id, err := strconv.Atoi(shard)
				if err != nil {
					continue
				}
				for id >= len(b.FireNs) {
					b.FireNs = append(b.FireNs, 0)
					b.DeliverNs = append(b.DeliverNs, 0)
				}
				if phase == "fire" {
					b.FireNs[id] += ser.Sum
				} else {
					b.DeliverNs[id] += ser.Sum
				}
			}
		}
	}
	b.Workers = len(b.FireNs)
	if f := s.Family(SpecMachineBarrierSeconds.Name); f != nil {
		_, b.BarrierFireNs = f.Sums("fire")
		_, b.BarrierDeliverNs = f.Sums("deliver")
	}
	if f := s.Family(SpecMachineTraffic.Name); f != nil {
		for _, ser := range f.Series {
			src, dst := ser.Labels[0], ser.Labels[1]
			b.Traffic = append(b.Traffic, TrafficCell{Src: src, Dst: dst, Tokens: ser.Value})
			switch src {
			case "seq":
				b.SeqTokens += ser.Value
			case "mem":
				b.MemTokens += ser.Value
			default:
				b.ShardTokens += ser.Value
				if src != dst {
					b.RemoteTokens += ser.Value
				}
			}
		}
	}
	return b
}
