package telemetry

import (
	"sort"
	"strconv"
	"strings"
	"testing"
)

// A minimal hand-rolled OpenMetrics text parser, strict about the
// subset this package emits. It is deliberately independent of the
// renderer's internals: it re-derives family membership from sample
// name suffixes and checks the structural invariants of the format —
// metadata (TYPE/UNIT/HELP) precedes samples, counter samples carry
// _total, histogram buckets are cumulative and agree with _count, and
// the exposition ends with # EOF.

type omSample struct {
	name   string // full sample name, including suffix
	labels map[string]string
	value  string
}

type omFamily struct {
	typ, unit, help string
	samples         []omSample
}

func parseOpenMetrics(t *testing.T, text string) map[string]*omFamily {
	t.Helper()
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Fatal("exposition does not end with # EOF")
	}
	fams := map[string]*omFamily{}
	var cur *omFamily
	curName := ""
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	for i, line := range lines {
		if line == "# EOF" {
			if i != len(lines)-1 {
				t.Fatalf("line %d: # EOF before end of exposition", i+1)
			}
			break
		}
		if meta, rest, ok := cutMeta(line); ok {
			name, payload, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("line %d: malformed metadata %q", i+1, line)
			}
			switch meta {
			case "TYPE":
				if _, dup := fams[name]; dup {
					t.Fatalf("line %d: duplicate TYPE for %s", i+1, name)
				}
				cur = &omFamily{typ: payload}
				curName = name
				fams[name] = cur
			case "UNIT", "HELP":
				if cur == nil || name != curName {
					t.Fatalf("line %d: %s for %s outside its TYPE block", i+1, meta, name)
				}
				if meta == "UNIT" {
					cur.unit = payload
				} else {
					cur.help = payload
				}
			default:
				t.Fatalf("line %d: unknown metadata %q", i+1, meta)
			}
			continue
		}
		smp := parseSample(t, i+1, line)
		fam, famName := familyFor(fams, smp.name)
		if fam == nil {
			t.Fatalf("line %d: sample %s has no preceding TYPE", i+1, smp.name)
		}
		switch fam.typ {
		case "counter":
			if smp.name != famName+"_total" {
				t.Fatalf("line %d: counter sample %s must end in _total", i+1, smp.name)
			}
		case "gauge":
			if smp.name != famName {
				t.Fatalf("line %d: gauge sample %s has unexpected suffix", i+1, smp.name)
			}
		case "histogram":
			switch strings.TrimPrefix(smp.name, famName) {
			case "_bucket":
				if smp.labels["le"] == "" {
					t.Fatalf("line %d: histogram bucket without le", i+1)
				}
			case "_count", "_sum":
			default:
				t.Fatalf("line %d: histogram sample %s has bad suffix", i+1, smp.name)
			}
		default:
			t.Fatalf("family %s: unknown type %q", famName, fam.typ)
		}
		fam.samples = append(fam.samples, smp)
	}
	for name, fam := range fams {
		if fam.typ == "histogram" {
			checkHistogram(t, name, fam)
		}
	}
	return fams
}

func cutMeta(line string) (meta, rest string, ok bool) {
	if !strings.HasPrefix(line, "# ") {
		return "", "", false
	}
	meta, rest, found := strings.Cut(line[2:], " ")
	return meta, rest, found
}

func parseSample(t *testing.T, lineNo int, line string) omSample {
	t.Helper()
	smp := omSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		smp.name = line[:i]
		end := strings.IndexByte(line, '}')
		if end < i {
			t.Fatalf("line %d: unterminated label set", lineNo)
		}
		for _, pair := range strings.Split(line[i+1:end], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q", lineNo, pair)
			}
			smp.labels[k] = strings.NewReplacer(`\"`, `"`, `\n`, "\n", `\\`, `\`).Replace(v[1 : len(v)-1])
		}
		rest = line[end+1:]
	} else {
		i := strings.IndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("line %d: sample without value", lineNo)
		}
		smp.name = line[:i]
		rest = line[i:]
	}
	smp.value = strings.TrimSpace(rest)
	if _, err := strconv.ParseFloat(smp.value, 64); err != nil {
		t.Fatalf("line %d: unparseable value %q", lineNo, smp.value)
	}
	return smp
}

// familyFor resolves a sample name to its family, preferring the
// longest registered family name that is a valid prefix.
func familyFor(fams map[string]*omFamily, sample string) (*omFamily, string) {
	best := ""
	for name := range fams {
		if len(name) < len(best) {
			continue
		}
		if sample == name || strings.HasPrefix(sample, name+"_") {
			best = name
		}
	}
	if best == "" {
		return nil, ""
	}
	return fams[best], best
}

// checkHistogram verifies cumulative buckets per label set and that
// the +Inf bucket equals _count.
func checkHistogram(t *testing.T, name string, fam *omFamily) {
	t.Helper()
	type serKey string
	key := func(labels map[string]string) serKey {
		parts := []string{}
		for k, v := range labels {
			if k != "le" {
				parts = append(parts, k+"="+v)
			}
		}
		sort.Strings(parts)
		return serKey(strings.Join(parts, ","))
	}
	type hstate struct {
		prev, inf float64
		hasInf    bool
		count     float64
		hasCount  bool
	}
	sers := map[serKey]*hstate{}
	get := func(l map[string]string) *hstate {
		k := key(l)
		if sers[k] == nil {
			sers[k] = &hstate{}
		}
		return sers[k]
	}
	for _, smp := range fam.samples {
		v, _ := strconv.ParseFloat(smp.value, 64)
		st := get(smp.labels)
		switch strings.TrimPrefix(smp.name, name) {
		case "_bucket":
			if v < st.prev {
				t.Fatalf("%s: buckets not cumulative (%v then %v)", name, st.prev, v)
			}
			st.prev = v
			if smp.labels["le"] == "+Inf" {
				st.inf, st.hasInf = v, true
			}
		case "_count":
			st.count, st.hasCount = v, true
		}
	}
	for k, st := range sers {
		if !st.hasInf || !st.hasCount {
			t.Fatalf("%s{%s}: missing +Inf bucket or _count", name, k)
		}
		if st.inf != st.count {
			t.Fatalf("%s{%s}: +Inf bucket %v != count %v", name, k, st.inf, st.count)
		}
	}
}
