package telemetry

import (
	"net"
	"net/http"
)

// openMetricsContentType is the scrape content type for the text
// exposition format.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// Handler serves the registry's current snapshot at /metrics in the
// OpenMetrics text format. Scraping is race-free against a running
// machine because Snapshot reads only atomics.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", openMetricsContentType)
		w.Write(r.Snapshot().OpenMetrics())
	})
	return mux
}

// Server is a running /metrics endpoint. Close shuts it down and waits
// for the serve goroutine, so a clean shutdown leaks nothing — the
// property the verify.sh HTTP smoke asserts.
type Server struct {
	lis  net.Listener
	srv  *http.Server
	done chan struct{}
}

// Serve starts an HTTP server for the registry on addr (e.g. ":9464"
// or "127.0.0.1:0"). It returns once the listener is bound.
func Serve(r *Registry, addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{lis: lis, srv: &http.Server{Handler: Handler(r)}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		s.srv.Serve(lis)
	}()
	return s, nil
}

// Addr is the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the server and waits for its goroutine to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}
