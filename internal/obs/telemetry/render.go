package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics renders the snapshot in the OpenMetrics text exposition
// format (the Prometheus scrape format, version 1.0.0): one metadata
// block per family (# TYPE, # UNIT for seconds families, # HELP),
// samples in series-creation order, and a terminal # EOF. Counter
// samples carry the _total suffix; histogram samples expose cumulative
// _bucket series plus _count and _sum. The output is byte-exact for a
// deterministic snapshot and pinned by goldens.
func (s *Snapshot) OpenMetrics() []byte {
	var b strings.Builder
	for _, f := range s.Families {
		name := f.Name
		fmt.Fprintf(&b, "# TYPE %s %s\n", name, f.Kind)
		if f.Unit != "" {
			fmt.Fprintf(&b, "# UNIT %s %s\n", name, f.Unit)
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", name, escapeHelp(f.Help))
		for _, ser := range f.Series {
			switch f.Kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s_total%s %s\n", name, labelSet(f.Labels, ser.Labels, "", ""), strconv.FormatInt(ser.Value, 10))
			case KindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", name, labelSet(f.Labels, ser.Labels, "", ""), strconv.FormatInt(ser.Value, 10))
			case KindHistogram:
				cum := int64(0)
				for i, n := range ser.Buckets {
					cum += n
					le := "+Inf"
					if i < len(f.Buckets) {
						le = formatValue(f.Buckets[i], f.Unit)
					}
					fmt.Fprintf(&b, "%s_bucket%s %s\n", name, labelSet(f.Labels, ser.Labels, "le", le), strconv.FormatInt(cum, 10))
				}
				fmt.Fprintf(&b, "%s_count%s %s\n", name, labelSet(f.Labels, ser.Labels, "", ""), strconv.FormatInt(ser.Count, 10))
				fmt.Fprintf(&b, "%s_sum%s %s\n", name, labelSet(f.Labels, ser.Labels, "", ""), formatValue(ser.Sum, f.Unit))
			}
		}
	}
	b.WriteString("# EOF\n")
	return []byte(b.String())
}

// formatValue renders a stored int64 in the family's exposition unit:
// seconds families store nanoseconds and render as float seconds.
func formatValue(v int64, unit string) string {
	if unit == "seconds" {
		return strconv.FormatFloat(float64(v)/1e9, 'g', -1, 64)
	}
	return strconv.FormatInt(v, 10)
}

// labelSet renders {k="v",...}, appending one extra pair (the
// histogram le label) when extraKey is non-empty.
func labelSet(keys, vals []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// PhaseTable renders the human profile: per-phase wall time with
// per-shard fire/deliver rows and imbalance, barrier waits, the firing
// split, and the cross-shard traffic matrix. Shares are fractions of
// the total busy time accounted across all rows.
func (s *Snapshot) PhaseTable() string {
	b := s.MachineBreakdown()
	var out strings.Builder
	total := b.SelectNs + b.RetireNs + b.BarrierFireNs + b.BarrierDeliverNs
	for i := range b.FireNs {
		total += b.FireNs[i] + b.DeliverNs[i]
	}
	out.WriteString("phase breakdown (busy wall time)\n")
	out.WriteString("  phase    shard      time    share\n")
	row := func(phase, shard string, ns int64) {
		fmt.Fprintf(&out, "  %-8s %-5s %9s  %6s\n", phase, shard, fmtDur(ns), fmtShare(ns, total))
	}
	row("select", "seq", b.SelectNs)
	for i, ns := range b.FireNs {
		row("fire", strconv.Itoa(i), ns)
	}
	row("retire", "seq", b.RetireNs)
	for i, ns := range b.DeliverNs {
		row("deliver", strconv.Itoa(i), ns)
	}
	row("barrier", "fire", b.BarrierFireNs)
	row("barrier", "deliv", b.BarrierDeliverNs)
	fmt.Fprintf(&out, "  cycles %d  firings %d (fire %d / retire %d)  tokens %d  matches %d\n",
		b.Cycles, b.Firings, b.FireFirings, b.RetireFirings, b.Tokens, b.Matches)
	if b.Workers > 1 {
		fmt.Fprintf(&out, "  fire imbalance (max/mean): %.2fx   deliver imbalance: %.2fx\n",
			imbalance(b.FireNs), imbalance(b.DeliverNs))
	}
	if len(b.Traffic) > 0 {
		out.WriteString(trafficMatrix(b))
	}
	return out.String()
}

// trafficMatrix renders the src→dst token matrix with the seq/mem
// lanes last and a remote-share summary line.
func trafficMatrix(b *MachineBreakdown) string {
	srcs, dsts := []string{}, []string{}
	cells := map[[2]string]int64{}
	seen := map[string]bool{}
	seenDst := map[string]bool{}
	for _, c := range b.Traffic {
		cells[[2]string{c.Src, c.Dst}] += c.Tokens
		if !seen[c.Src] {
			seen[c.Src] = true
			srcs = append(srcs, c.Src)
		}
		if !seenDst[c.Dst] {
			seenDst[c.Dst] = true
			dsts = append(dsts, c.Dst)
		}
	}
	sortLanes(srcs)
	sortLanes(dsts)
	var out strings.Builder
	out.WriteString("cross-shard traffic (tokens, src rows / dst columns)\n")
	fmt.Fprintf(&out, "  %6s", "src\\dst")
	for _, d := range dsts {
		fmt.Fprintf(&out, " %8s", d)
	}
	out.WriteByte('\n')
	for _, s := range srcs {
		fmt.Fprintf(&out, "  %6s", s)
		for _, d := range dsts {
			fmt.Fprintf(&out, " %8d", cells[[2]string{s, d}])
		}
		out.WriteByte('\n')
	}
	if b.ShardTokens > 0 {
		fmt.Fprintf(&out, "  remote share: %s (%d of %d shard-sourced tokens cross shards)\n",
			fmtShare(b.RemoteTokens, b.ShardTokens), b.RemoteTokens, b.ShardTokens)
	}
	return out.String()
}

// sortLanes orders numeric shard ids numerically and places the seq
// and mem lanes after them.
func sortLanes(lanes []string) {
	rank := func(s string) (int, int) {
		if n, err := strconv.Atoi(s); err == nil {
			return 0, n
		}
		if s == "seq" {
			return 1, 0
		}
		return 2, 0
	}
	sort.Slice(lanes, func(i, j int) bool {
		ci, ni := rank(lanes[i])
		cj, nj := rank(lanes[j])
		if ci != cj {
			return ci < cj
		}
		return ni < nj
	})
}

func imbalance(ns []int64) float64 {
	if len(ns) == 0 {
		return 1
	}
	var max, sum int64
	for _, v := range ns {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return 1
	}
	return float64(max) * float64(len(ns)) / float64(sum)
}

func fmtDur(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

func fmtShare(part, total int64) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}
