package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite testdata goldens from the current renderer")

// syntheticRegistry builds a registry exercising every instrument kind
// and rendering rule: an unlabelled counter, a labelled counter, a
// gauge, a seconds histogram with labels, and a unitless depth
// histogram. Values are fixed so the render is byte-stable.
func syntheticRegistry() *Registry {
	r := NewRegistry()
	r.Family(Spec{Name: "ctdf_test_ops", Kind: KindCounter,
		Help: "operations with a \\ backslash in help"}).Series().Add(42)
	traffic := r.Family(Spec{Name: "ctdf_test_traffic", Kind: KindCounter,
		Labels: []string{"src", "dst"}, Sharded: true, Help: "tokens moved"})
	traffic.Series("0", "1").Add(7)
	traffic.Series("1", "0").Add(9)
	traffic.Series("seq", "0").Add(3)
	r.Family(Spec{Name: "ctdf_test_peak", Kind: KindGauge, Help: "high water"}).Series().SetMax(17)
	lat := r.Family(Spec{Name: "ctdf_test_phase_seconds", Kind: KindHistogram,
		Unit: "seconds", Buckets: TimeBuckets, Labels: []string{"phase"},
		Varying: true, Help: "phase wall time"})
	for _, ns := range []int64{500, 1500, 2_000_000, 30_000_000_000} {
		lat.Observe(ns, "fire")
	}
	lat.Observe(999, "select")
	depth := r.Family(Spec{Name: "ctdf_test_depth", Kind: KindHistogram,
		Buckets: []int64{0, 2, 8}, Help: "queue depth"})
	for _, d := range []int64{0, 1, 2, 3, 9} {
		depth.Observe(d)
	}
	return r
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	f := r.Family(SpecMachineCycles)
	if f != nil {
		t.Fatal("nil registry returned a family")
	}
	f.Series().Add(1) // all no-ops
	f.Observe(5)
	var s *Series
	s.Add(1)
	s.Set(2)
	s.SetMax(3)
	s.Observe(4, TimeBuckets)
	snap := r.Snapshot()
	if got := string(snap.OpenMetrics()); got != "# EOF\n" {
		t.Fatalf("empty snapshot render = %q", got)
	}
	if snap.MachineBreakdown().Workers != 0 {
		t.Fatal("empty snapshot reported workers")
	}
}

func TestInstrumentSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.Family(SpecMachineFirings).Series()
	c.Add(3)
	c.Add(4)
	// Re-registering the same spec must return the same family so
	// repeated runs accumulate into one registry.
	if r.Family(SpecMachineFirings).Series() != c {
		t.Fatal("re-registration minted a new series")
	}
	g := r.Family(SpecMachineMatchPeak).Series()
	g.SetMax(10)
	g.SetMax(7)
	h := r.Family(SpecMachineMatchDepth)
	h.Observe(0)
	h.Observe(5)
	h.Observe(100000)
	snap := r.Snapshot()
	if got := snap.Family(SpecMachineFirings.Name).Get(); got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
	if got := snap.Family(SpecMachineMatchPeak.Name).Get(); got != 10 {
		t.Fatalf("gauge = %d, want 10 (SetMax must not lower)", got)
	}
	count, sum := snap.Family(SpecMachineMatchDepth.Name).Sums()
	if count != 3 || sum != 100005 {
		t.Fatalf("histogram count/sum = %d/%d", count, sum)
	}
	hs := snap.Family(SpecMachineMatchDepth.Name).Series[0]
	// depth 0 → bucket le=0; depth 5 → le=8; 100000 → +Inf.
	if hs.Buckets[0] != 1 || hs.Buckets[4] != 1 || hs.Buckets[len(hs.Buckets)-1] != 1 {
		t.Fatalf("bucket placement wrong: %v", hs.Buckets)
	}
}

func TestProjections(t *testing.T) {
	snap := syntheticRegistry().Snapshot()
	if n := len(snap.Families); n != 5 {
		t.Fatalf("families = %d", n)
	}
	stable := snap.Stable()
	for _, f := range stable.Families {
		if f.Varying {
			t.Fatalf("Stable kept varying family %s", f.Name)
		}
	}
	if len(stable.Families) != 4 {
		t.Fatalf("stable families = %d", len(stable.Families))
	}
	inv := snap.Invariant()
	for _, f := range inv.Families {
		if f.Varying || f.Sharded {
			t.Fatalf("Invariant kept %s", f.Name)
		}
	}
	if len(inv.Families) != 3 {
		t.Fatalf("invariant families = %d", len(inv.Families))
	}
}

// TestOpenMetricsGolden pins the exposition format byte-exactly, the
// same way the Chrome-trace and pprof exporters pin theirs.
func TestOpenMetricsGolden(t *testing.T) {
	got := syntheticRegistry().Snapshot().OpenMetrics()
	path := filepath.Join("testdata", "synthetic.om")
	if *updateGoldens {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to generate): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("OpenMetrics render diverged from committed golden (%d bytes committed, %d produced); rerun with -update if the change is intentional",
			len(want), len(got))
	}
}

// TestOpenMetricsParses validates the render against a minimal
// hand-rolled parser of the exposition format: metadata before
// samples, suffix rules per kind, cumulative buckets, le/count
// agreement, terminal # EOF.
func TestOpenMetricsParses(t *testing.T) {
	fams := parseOpenMetrics(t, string(syntheticRegistry().Snapshot().OpenMetrics()))
	f, ok := fams["ctdf_test_traffic"]
	if !ok || f.typ != "counter" {
		t.Fatalf("traffic family missing or mistyped: %+v", f)
	}
	want := map[string]string{"0\x001": "7", "1\x000": "9", "seq\x000": "3"}
	for _, smp := range f.samples {
		key := smp.labels["src"] + "\x00" + smp.labels["dst"]
		if want[key] != smp.value {
			t.Fatalf("traffic sample %v = %s, want %s", smp.labels, smp.value, want[key])
		}
	}
	h := fams["ctdf_test_phase_seconds"]
	if h.unit != "seconds" {
		t.Fatalf("unit = %q", h.unit)
	}
	if fams["ctdf_test_ops"].samples[0].value != "42" {
		t.Fatal("counter value lost")
	}
}
