package obs

import (
	"fmt"
	"sort"
	"strings"
)

// MetricDelta is one compared metric: the two values, their difference
// (B−A) and ratio (A/B, so >1 means B improved on a cost metric).
type MetricDelta struct {
	Metric string  `json:"metric"`
	A      int64   `json:"a"`
	B      int64   `json:"b"`
	Delta  int64   `json:"delta"`
	Ratio  float64 `json:"ratio"`
}

// KindDelta compares per-kind firing counts between two runs.
type KindDelta struct {
	Kind    string `json:"kind"`
	FiresA  int64  `json:"firingsA"`
	FiresB  int64  `json:"firingsB"`
	NodesA  int    `json:"nodesA"`
	NodesB  int    `json:"nodesB"`
	StallsA int64  `json:"memStallCyclesA"`
	StallsB int64  `json:"memStallCyclesB"`
}

// Diff is a machine-readable schema-vs-schema (or engine-vs-engine)
// comparison of two observed runs — the shape E4/E9/E10/E11-style
// deltas are exported in.
type Diff struct {
	A       string        `json:"a"`
	B       string        `json:"b"`
	Metrics []MetricDelta `json:"metrics"`
	ByKind  []KindDelta   `json:"byKind"`
	// CriticalPathByKindA/B carry the per-op attribution of each side's
	// critical path, when both were recorded.
	CriticalPathByKindA []KindCost `json:"criticalPathByKindA,omitempty"`
	CriticalPathByKindB []KindCost `json:"criticalPathByKindB,omitempty"`
}

func delta(metric string, a, b int64) MetricDelta {
	d := MetricDelta{Metric: metric, A: a, B: b, Delta: b - a}
	if b != 0 {
		d.Ratio = float64(a) / float64(b)
	}
	return d
}

// Compare diffs two reports (conventionally A = baseline, B = the
// configuration under test; Ratio > 1 on a cost metric means B is
// better).
func Compare(a, b *Report) *Diff {
	d := &Diff{A: label(a), B: label(b)}
	d.Metrics = []MetricDelta{
		delta("cycles", int64(a.Cycles), int64(b.Cycles)),
		delta("ops", a.Ops, b.Ops),
		delta("matchWaits", a.MatchWaits, b.MatchWaits),
		delta("memStallCycles", a.MemStallCycles, b.MemStallCycles),
	}
	if a.CriticalPath != nil && b.CriticalPath != nil {
		d.Metrics = append(d.Metrics, delta("criticalPath", a.CriticalPath.Length, b.CriticalPath.Length))
		d.CriticalPathByKindA = a.CriticalPath.ByKind
		d.CriticalPathByKindB = b.CriticalPath.ByKind
	}
	kinds := map[string]*KindDelta{}
	for _, ks := range a.ByKind {
		kinds[ks.Kind] = &KindDelta{Kind: ks.Kind, FiresA: ks.Firings, NodesA: ks.Nodes, StallsA: ks.MemStallCycles}
	}
	for _, ks := range b.ByKind {
		kd := kinds[ks.Kind]
		if kd == nil {
			kd = &KindDelta{Kind: ks.Kind}
			kinds[ks.Kind] = kd
		}
		kd.FiresB = ks.Firings
		kd.NodesB = ks.Nodes
		kd.StallsB = ks.MemStallCycles
	}
	for _, kd := range kinds {
		d.ByKind = append(d.ByKind, *kd)
	}
	sort.Slice(d.ByKind, func(i, j int) bool { return d.ByKind[i].Kind < d.ByKind[j].Kind })
	return d
}

func label(r *Report) string {
	if r.Schema != "" {
		return r.Schema
	}
	return r.Engine
}

// Text renders the diff for humans.
func (d *Diff) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s:\n", d.A, d.B)
	fmt.Fprintf(&b, "  %-16s %10s %10s %10s %8s\n", "metric", d.A, d.B, "delta", "ratio")
	for _, m := range d.Metrics {
		fmt.Fprintf(&b, "  %-16s %10d %10d %+10d %8.2f\n", m.Metric, m.A, m.B, m.Delta, m.Ratio)
	}
	b.WriteString("\n  firings by kind:\n")
	for _, k := range d.ByKind {
		fmt.Fprintf(&b, "  %-16s %10d %10d %+10d\n", k.Kind, k.FiresA, k.FiresB, k.FiresB-k.FiresA)
	}
	return b.String()
}
