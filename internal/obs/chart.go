package obs

import (
	"fmt"
	"strings"
)

// ProfileChart renders a parallelism profile as an ASCII bar chart:
// time flows left to right (bucketed to fit width), bar height is the
// number of operations issued. The chart is the visual form of the
// "parallelism profile" measurement the paper's model motivates;
// profile[i] is the number of operations issued at cycle i and cycles
// the run's total execution time.
func ProfileChart(profile []int, cycles, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 2 {
		height = 2
	}
	if len(profile) == 0 {
		return "(empty profile)\n"
	}
	// Bucket cycles into columns, keeping the peak of each bucket so
	// bursts stay visible.
	cols := width
	if len(profile) < cols {
		cols = len(profile)
	}
	buckets := make([]int, cols)
	per := float64(len(profile)) / float64(cols)
	for c := 0; c < cols; c++ {
		lo := int(float64(c) * per)
		hi := int(float64(c+1) * per)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > len(profile) {
			hi = len(profile)
		}
		peak := 0
		for _, v := range profile[lo:hi] {
			if v > peak {
				peak = v
			}
		}
		buckets[c] = peak
	}
	max := 1
	for _, v := range buckets {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for row := height; row >= 1; row-- {
		threshold := float64(row) * float64(max) / float64(height)
		if row == height {
			fmt.Fprintf(&b, "%4d |", max)
		} else {
			b.WriteString("     |")
		}
		for _, v := range buckets {
			if float64(v) >= threshold {
				b.WriteByte('#')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("   0 +" + strings.Repeat("-", cols) + "\n")
	fmt.Fprintf(&b, "      0%*s\n", cols-1, fmt.Sprintf("cycle %d", cycles))
	return b.String()
}
