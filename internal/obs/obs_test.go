package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func mustRing(t *testing.T, n int) *RingSink {
	t.Helper()
	r, err := NewRingSink(n)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingSinkWraps(t *testing.T) {
	r := mustRing(t, 3)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Cycle: i, Type: EvFire})
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d events, want 3", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != i+2 {
			t.Errorf("event %d has cycle %d, want %d (oldest-first)", i, e.Cycle, i+2)
		}
	}
}

func TestNDJSONSinkOneObjectPerLine(t *testing.T) {
	var b strings.Builder
	s := NewNDJSONSink(&b)
	s.Emit(Event{Cycle: 1, Type: EvFire, Node: 2, Kind: "binop", Tag: "0", Cost: 1})
	s.Emit(Event{Cycle: 3, Type: EvWait, Node: 4, Kind: "store", Tag: "0.1"})
	if s.Err() != nil {
		t.Fatal(s.Err())
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatal(err)
	}
	if e != (Event{Cycle: 1, Type: EvFire, Node: 2, Kind: "binop", Tag: "0", Cost: 1}) {
		t.Errorf("round-trip mismatch: %+v", e)
	}
	var w Event
	if err := json.Unmarshal([]byte(lines[1]), &w); err != nil {
		t.Fatal(err)
	}
	if w.Type != EvWait || w.Cost != 0 {
		t.Errorf("wait event round-trip mismatch: %+v", w)
	}
}

func TestRingSinkRejectsNonPositiveCapacity(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if r, err := NewRingSink(n); err == nil {
			t.Errorf("NewRingSink(%d) = %v, want error", n, r)
		}
	}
	if _, err := NewRingSink(1); err != nil {
		t.Errorf("NewRingSink(1) rejected: %v", err)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := mustRing(t, 8), mustRing(t, 8)
	m := MultiSink{a, b}
	m.Emit(Event{Cycle: 7, Type: EvFire})
	if a.Total() != 1 || b.Total() != 1 {
		t.Errorf("fan-out failed: %d, %d", a.Total(), b.Total())
	}
}

func TestTraceSinkFormatAndFilter(t *testing.T) {
	var b strings.Builder
	s := &TraceSink{W: &b, Labels: []string{"d0: start", "d1: binop +"}}
	s.Emit(Event{Cycle: 12, Type: EvFire, Node: 1, Tag: "0.1"})
	s.Emit(Event{Cycle: 13, Type: EvWait, Node: 1, Tag: "0.1"}) // not traced
	s.Emit(Event{Cycle: 14, Type: EvFire, Node: 1, Tag: ""})    // root tag renders empty
	want := "cycle 12: d1: binop + [tag 0.1]\ncycle 14: d1: binop + [tag ]\n"
	if b.String() != want {
		t.Errorf("trace output %q, want %q", b.String(), want)
	}
}

func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	if got := c.Fire(3, 1, 1, 2, 0, 5, nil, "0"); got != noDep {
		t.Errorf("nil Fire returned %d", got)
	}
	c.Emitted(3, 2)
	c.Wait(3, 1, 0, noDep, "0")
	if got := c.MaxDep(1, 2); got != noDep {
		t.Errorf("nil MaxDep returned %d", got)
	}
	if c.Report(0, nil) != nil {
		t.Error("nil Report should be nil")
	}
	if c.Meta() != nil || c.CriticalPathEnabled() {
		t.Error("nil collector leaks state")
	}
	var nc *NodeCounters
	nc.Inc(0)
	nc.ObserveClock(0, 5)
	if nc.Firings() != nil {
		t.Error("nil NodeCounters.Firings should be nil")
	}
	if nc.Clocks() != nil {
		t.Error("nil NodeCounters.Clocks should be nil")
	}
}

func TestNewCountersReportAggregates(t *testing.T) {
	meta := []NodeMeta{
		{Node: 0, Kind: "start", Label: "d0: start"},
		{Node: 1, Kind: "binop", Label: "d1: binop +"},
		{Node: 2, Kind: "binop", Label: "d2: binop *"},
	}
	r := NewCountersReport(meta, []int64{0, 4, 6}, []int64{0, 2, 3})
	if r.Ops != 10 {
		t.Errorf("ops = %d, want 10", r.Ops)
	}
	if r.Nodes[1].LamportMax != 2 || r.Nodes[2].LamportMax != 3 {
		t.Errorf("lamport clocks not carried: %+v", r.Nodes)
	}
	if len(r.ByKind) != 2 || r.ByKind[0].Kind != "binop" || r.ByKind[0].Firings != 10 {
		t.Errorf("byKind = %+v", r.ByKind)
	}
	if got := r.NodeFirings(); got[1] != 4 || got[2] != 6 {
		t.Errorf("node firings = %v", got)
	}
}

func TestCompare(t *testing.T) {
	a := &Report{Schema: "schema1", Cycles: 100, Ops: 50,
		ByKind: []KindStats{{Kind: "load", Nodes: 2, Firings: 20}}}
	b := &Report{Schema: "schema2", Cycles: 40, Ops: 60,
		ByKind: []KindStats{{Kind: "load", Nodes: 2, Firings: 20}, {Kind: "switch", Nodes: 1, Firings: 10}}}
	d := Compare(a, b)
	if d.A != "schema1" || d.B != "schema2" {
		t.Errorf("labels %q, %q", d.A, d.B)
	}
	var cycles *MetricDelta
	for i := range d.Metrics {
		if d.Metrics[i].Metric == "cycles" {
			cycles = &d.Metrics[i]
		}
	}
	if cycles == nil || cycles.Delta != -60 || cycles.Ratio != 2.5 {
		t.Errorf("cycles delta = %+v", cycles)
	}
	if len(d.ByKind) != 2 {
		t.Errorf("byKind rows = %d, want 2", len(d.ByKind))
	}
	txt := d.Text()
	for _, want := range []string{"schema1 vs schema2", "cycles", "switch"} {
		if !strings.Contains(txt, want) {
			t.Errorf("diff text missing %q", want)
		}
	}
}

func TestHistogram(t *testing.T) {
	bins := histogram([]int{0, 2, 2, 1, 0, 0})
	want := []HistBin{{0, 3}, {1, 1}, {2, 2}}
	if len(bins) != len(want) {
		t.Fatalf("bins = %v", bins)
	}
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("bin %d = %+v, want %+v", i, bins[i], want[i])
		}
	}
	if histogram(nil) != nil {
		t.Error("empty profile should give nil histogram")
	}
}
