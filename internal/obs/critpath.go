package obs

import (
	"fmt"
	"sort"
	"strings"
)

// CritStep is one firing on the critical path.
type CritStep struct {
	Node  int    `json:"node"`
	Kind  string `json:"kind"`
	Label string `json:"label"`
	Tag   string `json:"tag,omitempty"`
	// Cycle is when the firing actually issued; Cost its duration. The
	// gap between one step's Finish and the next step's issue Cycle is
	// scheduling delay (processor contention), not dependence.
	Cycle int `json:"cycle"`
	Cost  int `json:"cost"`
	// Finish is the dependence-chain length up to and including this
	// step.
	Finish int64 `json:"finish"`
}

// KindCost attributes critical-path cycles to one operator kind.
type KindCost struct {
	Kind   string  `json:"kind"`
	Ops    int     `json:"ops"`
	Cycles int64   `json:"cycles"`
	Share  float64 `json:"share"`
}

// CriticalPath is the longest dependence chain through the firing DAG
// ending at the end node — the execution time an ideal machine with
// unlimited processors needs. With unlimited processors the machine's
// cycle count equals Length exactly; with P processors Length is a
// lower bound (property-tested in this package).
type CriticalPath struct {
	// Length is the chain's total cost in cycles.
	Length int64 `json:"length"`
	// Ops is the number of firings on the chain.
	Ops int `json:"ops"`
	// Steps lists the chain from the first firing to the end node.
	Steps []CritStep `json:"steps"`
	// ByKind attributes Length to operator kinds, costliest first.
	ByKind []KindCost `json:"byKind"`
}

// criticalPath extracts the longest dependence chain ending at the end
// node's firing (nil when the DAG was not recorded or end never fired).
func (c *Collector) criticalPath() *CriticalPath {
	if c == nil || !c.critical {
		return nil
	}
	end := -1
	for i := range c.firings {
		if int(c.firings[i].node) == c.endID {
			end = i
			break
		}
	}
	if end < 0 {
		return nil
	}
	var chain []int
	for f := int32(end); f >= 0; f = c.firings[f].pred {
		chain = append(chain, int(f))
	}
	// chain is end→start; reverse it.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	cp := &CriticalPath{Length: c.firings[end].finish, Ops: len(chain)}
	byKind := map[string]*KindCost{}
	for _, f := range chain {
		rec := c.firings[f]
		m := c.meta[rec.node]
		cp.Steps = append(cp.Steps, CritStep{
			Node: int(rec.node), Kind: m.Kind, Label: m.Label, Tag: rec.tag,
			Cycle: int(rec.cycle), Cost: int(rec.cost), Finish: rec.finish,
		})
		kc := byKind[m.Kind]
		if kc == nil {
			kc = &KindCost{Kind: m.Kind}
			byKind[m.Kind] = kc
		}
		kc.Ops++
		kc.Cycles += int64(rec.cost)
	}
	for _, kc := range byKind {
		if cp.Length > 0 {
			kc.Share = float64(kc.Cycles) / float64(cp.Length)
		}
		cp.ByKind = append(cp.ByKind, *kc)
	}
	sort.Slice(cp.ByKind, func(i, j int) bool {
		a, b := cp.ByKind[i], cp.ByKind[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		return a.Kind < b.Kind
	})
	return cp
}

// Text renders the critical path for humans: the per-kind attribution
// followed by the chain itself.
func (cp *CriticalPath) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path: %d cycles over %d firings\n", cp.Length, cp.Ops)
	b.WriteString("  attribution by kind:\n")
	for _, kc := range cp.ByKind {
		fmt.Fprintf(&b, "    %-12s %4d ops  %6d cycles  %5.1f%%\n", kc.Kind, kc.Ops, kc.Cycles, 100*kc.Share)
	}
	b.WriteString("  chain:\n")
	for _, s := range cp.Steps {
		tag := s.Tag
		if tag == "" {
			tag = "root"
		}
		fmt.Fprintf(&b, "    @%-6d +%-3d %-26s [tag %s]\n", s.Cycle, s.Cost, s.Label, tag)
	}
	return b.String()
}
