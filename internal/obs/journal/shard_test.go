package journal

import (
	"errors"
	"fmt"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/machcheck"
	"ctdf/internal/machine"
	"ctdf/internal/obs"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// These tests pin the sharded machine's contract at the journal level:
// the full causal record — every firing with its complete provenance
// deps, every matching-store park with its producer attribution, tag
// lineage, abort forensics — must be byte-identical between a sequential
// run and a sharded run at any worker count. They live here rather than
// in internal/machine because the journal package imports the machine
// (the import cycle runs the other way).

// diffParks compares the two journals' park lists field by field. Diff
// only checks the counts (parks are secondary to the firing DAG in the
// replay gate); the sharded merge reorders park processing internally,
// so this is the test that proves the merge re-serializes them exactly.
func diffParks(t *testing.T, label string, want, got []Park) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: park count diverged: sequential %d, sharded %d", label, len(want), len(got))
		return
	}
	for i := range want {
		a, b := want[i], got[i]
		if a != b {
			t.Errorf("%s: park #%d diverged:\nsequential: %+v\nsharded:    %+v", label, i, a, b)
			return
		}
	}
}

// TestShardedJournalByteExact records the same workload × schema cell
// under the sequential engine and under the sharded engine at several
// worker counts, then demands the journals agree on every firing (node,
// cycle, cost, tag, full provenance deps) and on every park event.
// Producers and consumers land on different shards for essentially
// every arc, so this is the routing + deterministic-merge forensics
// test: if cross-shard token delivery perturbed match order, park
// attribution (Dep) or firing provenance would shift and Diff would
// catch it.
func TestShardedJournalByteExact(t *testing.T) {
	schemas := []translate.Options{
		{Schema: translate.Schema2},
		{Schema: translate.Schema2Opt},
	}
	for _, w := range workloads.All() {
		for _, opt := range schemas {
			w, opt := w, opt
			t.Run(fmt.Sprintf("%s/%v", w.Name, opt.Schema), func(t *testing.T) {
				res := translateWorkload(t, w, opt)
				mcfg := machine.Config{Processors: 2, MemLatency: 3}
				seq, _ := record(t, res.Graph, w.Name+"/seq", Config{Processors: 2, MemLatency: 3}, mcfg)
				for _, workers := range []int{2, 4, 8} {
					mcfg.Workers = workers
					jcfg := Config{Processors: 2, MemLatency: 3, Workers: workers}
					sh, _ := record(t, res.Graph, fmt.Sprintf("%s/w%d", w.Name, workers), jcfg, mcfg)
					if ds := Diff(seq, sh); len(ds) > 0 {
						for _, d := range ds {
							t.Errorf("W=%d: %s", workers, d)
						}
						return
					}
					diffParks(t, fmt.Sprintf("W=%d", workers), seq.Parks, sh.Parks)
				}
			})
		}
	}
}

// TestShardedAbortJournalByteExact aborts a runaway loop via MaxCycles
// with producers and consumers of the loop's tokens scattered across
// shards, and checks the aborted journals are byte-identical too: same
// firing prefix, same parks, same abort check at the same cycle. This is
// the abort-edge-case half of the cross-shard routing forensics.
func TestShardedAbortJournalByteExact(t *testing.T) {
	w := workloads.Workload{Name: "runaway", Source: "var x\nwhile x < 1 {\n  x := x - 1\n}\n"}
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *Journal {
		jcfg := Config{MaxCycles: 150, Workers: workers}
		rec := NewRecorder(res.Graph, fmt.Sprintf("runaway/w%d", workers), jcfg)
		col := obs.NewCollector(res.Graph, obs.Options{Journal: rec})
		out, err := machine.Run(res.Graph, machine.Config{MaxCycles: 150, Collector: col, Workers: workers})
		if err == nil || !errors.Is(err, machcheck.CyclesExceeded) {
			t.Fatalf("W=%d: expected CyclesExceeded, got %v", workers, err)
		}
		return rec.Finish(out.Stats.Cycles)
	}
	seq := run(1)
	if seq.AbortCheck == "" {
		t.Fatal("sequential abort was not journaled")
	}
	for _, workers := range []int{2, 4, 8} {
		sh := run(workers)
		if ds := Diff(seq, sh); len(ds) > 0 {
			for _, d := range ds {
				t.Errorf("W=%d: %s", workers, d)
			}
			continue
		}
		diffParks(t, fmt.Sprintf("W=%d", workers), seq.Parks, sh.Parks)
	}
}

// TestShardedReplayRoundTrip records under the sharded engine, then
// replays the journal — Replay re-executes under the journal's own
// recorded configuration, Workers included, so this checks the Workers
// field survives the Config capture and that a sharded re-execution
// reproduces a sharded recording divergence-free.
func TestShardedReplayRoundTrip(t *testing.T) {
	w := workloads.MustByName("fib-iterative")
	res := translateWorkload(t, w, translate.Options{Schema: translate.Schema2Opt})
	jcfg := Config{Processors: 2, MemLatency: 3, Workers: 4}
	j, _ := record(t, res.Graph, "fib/w4", jcfg, machine.Config{Processors: 2, MemLatency: 3, Workers: 4})
	if j.Config.Workers != 4 {
		t.Fatalf("journal lost Workers: %+v", j.Config)
	}
	rr, err := Replay(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Divergences) > 0 {
		t.Errorf("sharded replay diverged:\n%s", rr.Text())
	}
	if rr.Replayed.Config.Workers != 4 {
		t.Errorf("replayed journal lost Workers: %+v", rr.Replayed.Config)
	}
}
