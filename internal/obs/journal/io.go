package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"ctdf/internal/obs"
)

// The on-disk journal is NDJSON: one self-describing JSON object per
// line, streamable and greppable like the event log (-events). Line
// types, in order:
//
//	{"type":"journal", ...}   header: version, engine, label, config,
//	                          graph text, node metadata
//	{"type":"fire", ...}      one per firing, in issue order
//	{"type":"park", ...}      one per matching-store wait
//	{"type":"fault", ...}     one per injected fault
//	{"type":"abort", ...}     present iff the run died on a machine check
//	{"type":"end", ...}       trailer: total cycles; its presence marks
//	                          the journal complete
//
// Fires/parks/faults are written sorted by kind (not interleaved by
// cycle): the fire ids are self-describing, so no information is lost,
// and readers get locality. Paths ending in ".gz" are transparently
// compressed on write and sniffed on read (obs.CreateStream/OpenStream).

type headerLine struct {
	Type    string         `json:"type"`
	Version int            `json:"version"`
	Engine  string         `json:"engine"`
	Label   string         `json:"label,omitempty"`
	Config  Config         `json:"config"`
	Graph   string         `json:"graph,omitempty"`
	Nodes   []obs.NodeMeta `json:"nodes"`
}

type fireLine struct {
	Type string `json:"type"`
	Fire
}

type parkLine struct {
	Type string `json:"type"`
	Park
}

type faultLine struct {
	Type string `json:"type"`
	Fault
}

type abortLine struct {
	Type  string `json:"type"`
	Cycle int    `json:"cycle"`
	Check string `json:"check"`
}

type endLine struct {
	Type   string `json:"type"`
	Cycles int    `json:"cycles"`
}

// Write streams the journal as NDJSON.
func (j *Journal) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(headerLine{
		Type: "journal", Version: j.Version, Engine: j.Engine, Label: j.Label,
		Config: j.Config, Graph: j.GraphText, Nodes: j.Nodes,
	}); err != nil {
		return err
	}
	for i := range j.Fires {
		if err := enc.Encode(fireLine{Type: "fire", Fire: j.Fires[i]}); err != nil {
			return err
		}
	}
	for i := range j.Parks {
		if err := enc.Encode(parkLine{Type: "park", Park: j.Parks[i]}); err != nil {
			return err
		}
	}
	for i := range j.Faults {
		if err := enc.Encode(faultLine{Type: "fault", Fault: j.Faults[i]}); err != nil {
			return err
		}
	}
	if j.AbortCheck != "" {
		if err := enc.Encode(abortLine{Type: "abort", Cycle: j.AbortCycle, Check: j.AbortCheck}); err != nil {
			return err
		}
	}
	if err := enc.Encode(endLine{Type: "end", Cycles: j.Cycles}); err != nil {
		return err
	}
	return bw.Flush()
}

// Read parses an NDJSON journal and validates its internal consistency.
func Read(r io.Reader) (*Journal, error) {
	sc := bufio.NewScanner(r)
	// A serialized graph rides in one header line; give it room.
	sc.Buffer(make([]byte, 64*1024), 1<<26)
	j := &Journal{}
	var kind struct {
		Type string `json:"type"`
	}
	sawHeader, sawEnd := false, false
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		if err := json.Unmarshal(raw, &kind); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", line, err)
		}
		if !sawHeader && kind.Type != "journal" {
			return nil, fmt.Errorf("journal: line %d: expected journal header, got %q", line, kind.Type)
		}
		switch kind.Type {
		case "journal":
			if sawHeader {
				return nil, fmt.Errorf("journal: line %d: duplicate header", line)
			}
			var h headerLine
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("journal: line %d: %w", line, err)
			}
			if h.Version != Version {
				return nil, fmt.Errorf("journal: unsupported format version %d (have %d)", h.Version, Version)
			}
			j.Version, j.Engine, j.Label = h.Version, h.Engine, h.Label
			j.Config, j.GraphText, j.Nodes = h.Config, h.Graph, h.Nodes
			sawHeader = true
		case "fire":
			var f fireLine
			if err := json.Unmarshal(raw, &f); err != nil {
				return nil, fmt.Errorf("journal: line %d: %w", line, err)
			}
			j.Fires = append(j.Fires, f.Fire)
		case "park":
			var p parkLine
			if err := json.Unmarshal(raw, &p); err != nil {
				return nil, fmt.Errorf("journal: line %d: %w", line, err)
			}
			j.Parks = append(j.Parks, p.Park)
		case "fault":
			var f faultLine
			if err := json.Unmarshal(raw, &f); err != nil {
				return nil, fmt.Errorf("journal: line %d: %w", line, err)
			}
			j.Faults = append(j.Faults, f.Fault)
		case "abort":
			var a abortLine
			if err := json.Unmarshal(raw, &a); err != nil {
				return nil, fmt.Errorf("journal: line %d: %w", line, err)
			}
			j.AbortCycle, j.AbortCheck = a.Cycle, a.Check
		case "end":
			var e endLine
			if err := json.Unmarshal(raw, &e); err != nil {
				return nil, fmt.Errorf("journal: line %d: %w", line, err)
			}
			j.Cycles = e.Cycles
			sawEnd = true
		default:
			return nil, fmt.Errorf("journal: line %d: unknown line type %q", line, kind.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("journal: empty input")
	}
	if !sawEnd {
		return nil, fmt.Errorf("journal: truncated (no end trailer)")
	}
	if err := j.checkIDs(); err != nil {
		return nil, err
	}
	return j, nil
}

// WriteFile writes the journal to path, gzipped when path ends in ".gz".
func (j *Journal) WriteFile(path string) error {
	w, err := obs.CreateStream(path)
	if err != nil {
		return err
	}
	if err := j.Write(w); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// ReadFile loads a journal from path, decompressing gzip transparently
// (detected by content, not suffix).
func ReadFile(path string) (*Journal, error) {
	r, err := obs.OpenStream(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return Read(r)
}
