package journal

import (
	"fmt"
	"sort"
	"strings"
)

// Cone is the result of a causal query: a set of firings (ids into the
// journal) reachable from one or more anchor firings by following
// provenance edges backward (Explain) or forward (Impact).
type Cone struct {
	j *Journal
	// Anchors are the query's starting firings.
	Anchors []int32
	// IDs holds every firing in the cone, anchors included, ascending.
	IDs []int32
	// Forward is true for an Impact cone.
	Forward bool
}

// Explain computes the backward cause cone of the given firings: every
// firing whose value transitively flowed into them. Because the graphs
// are determinate, this is THE set of operations that caused the
// anchors — on any engine and any schedule.
func Explain(j *Journal, anchors []int32) (*Cone, error) {
	return cone(j, anchors, false)
}

// Impact computes the forward slice: every firing the anchors
// transitively fed — what would change if the anchor's value did.
func Impact(j *Journal, anchors []int32) (*Cone, error) {
	return cone(j, anchors, true)
}

func cone(j *Journal, anchors []int32, forward bool) (*Cone, error) {
	if err := j.checkIDs(); err != nil {
		return nil, err
	}
	if len(anchors) == 0 {
		return nil, fmt.Errorf("journal: no anchor firings for causal query")
	}
	for _, a := range anchors {
		if a < 0 || int(a) >= len(j.Fires) {
			return nil, fmt.Errorf("journal: anchor firing %d out of range (have %d firings)", a, len(j.Fires))
		}
	}
	in := make([]bool, len(j.Fires))
	for _, a := range anchors {
		in[a] = true
	}
	if forward {
		// A single ascending sweep closes the forward slice: deps always
		// point strictly backward (checked by checkIDs), so by the time
		// firing i is visited every potential cause is already marked.
		for i := range j.Fires {
			if in[i] {
				continue
			}
			for _, d := range j.Fires[i].Deps {
				if in[d] {
					in[i] = true
					break
				}
			}
		}
	} else {
		// Backward: one descending sweep for the same reason.
		for i := len(j.Fires) - 1; i >= 0; i-- {
			if !in[i] {
				continue
			}
			for _, d := range j.Fires[i].Deps {
				in[d] = true
			}
		}
	}
	c := &Cone{j: j, Anchors: append([]int32(nil), anchors...), Forward: forward}
	for i := range in {
		if in[i] {
			c.IDs = append(c.IDs, int32(i))
		}
	}
	return c, nil
}

// Contains reports whether firing id is in the cone.
func (c *Cone) Contains(id int32) bool {
	i := sort.Search(len(c.IDs), func(i int) bool { return c.IDs[i] >= id })
	return i < len(c.IDs) && c.IDs[i] == id
}

// Nodes returns the distinct node ids appearing in the cone, ascending.
func (c *Cone) Nodes() []int {
	seen := map[int]bool{}
	for _, id := range c.IDs {
		seen[int(c.j.Fires[id].Node)] = true
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Text renders the cone as an indented causal tree rooted at the
// anchors, cycle-stamped, suitable for terminal output:
//
//	#42 d10: load x [tag 0.1] @cycle 9 (cost 4)
//	  #37 d8: i-read x [tag 0.1] @cycle 5
//	    #12 d3: store x [tag 0] @cycle 2
//
// Each firing is expanded at its first (shallowest) occurrence and
// referenced by id afterwards, so shared subtrees — the normal case in
// a DAG — do not explode the output. maxDepth <= 0 means unlimited.
func (c *Cone) Text(maxDepth int) string {
	var b strings.Builder
	expanded := make(map[int32]bool, len(c.IDs))
	var walk func(id int32, depth int)
	walk = func(id int32, depth int) {
		f := &c.j.Fires[id]
		indent := strings.Repeat("  ", depth)
		tag := f.Tag
		if tag == "" {
			tag = "root"
		}
		if expanded[id] {
			fmt.Fprintf(&b, "%s#%d (see above)\n", indent, id)
			return
		}
		expanded[id] = true
		fmt.Fprintf(&b, "%s#%d %s [tag %s] @cycle %d", indent, id, c.j.label(f.Node), tag, f.Cycle)
		if f.Cost > 1 {
			fmt.Fprintf(&b, " (cost %d)", f.Cost)
		}
		b.WriteByte('\n')
		if maxDepth > 0 && depth+1 >= maxDepth {
			if len(c.next(id)) > 0 {
				fmt.Fprintf(&b, "%s  ...\n", indent)
			}
			return
		}
		for _, nxt := range c.next(id) {
			walk(nxt, depth+1)
		}
	}
	for _, a := range c.Anchors {
		walk(a, 0)
	}
	return b.String()
}

// next returns the firings one causal step from id in the cone's
// direction: producers for a backward cone, consumers for a forward one.
func (c *Cone) next(id int32) []int32 {
	if !c.Forward {
		return c.j.Fires[id].Deps
	}
	var out []int32
	for _, cand := range c.IDs {
		if cand <= id {
			continue
		}
		for _, d := range c.j.Fires[cand].Deps {
			if d == id {
				out = append(out, cand)
				break
			}
		}
	}
	return out
}

// Summary renders one line of cone vitals.
func (c *Cone) Summary() string {
	dir := "cause cone"
	if c.Forward {
		dir = "impact slice"
	}
	return fmt.Sprintf("%s: %d of %d firings across %d nodes",
		dir, len(c.IDs), len(c.j.Fires), len(c.Nodes()))
}

// ResolveAnchor parses an anchor spec of the form "NODE@TAG", "NODE"
// (all tags), or "#ID" (a raw firing id). NODE is either a dN node id or
// a label substring. It returns the matching firing ids.
func ResolveAnchor(j *Journal, spec string) ([]int32, error) {
	if spec == "" {
		return nil, fmt.Errorf("journal: empty anchor spec")
	}
	if strings.HasPrefix(spec, "#") {
		var id int32
		if _, err := fmt.Sscanf(spec, "#%d", &id); err != nil {
			return nil, fmt.Errorf("journal: bad firing id %q", spec)
		}
		if id < 0 || int(id) >= len(j.Fires) {
			return nil, fmt.Errorf("journal: firing %s out of range (have %d firings)", spec, len(j.Fires))
		}
		return []int32{id}, nil
	}
	nodeSpec, tag := spec, ""
	hasTag := false
	if i := strings.IndexByte(spec, '@'); i >= 0 {
		nodeSpec, tag, hasTag = spec[:i], spec[i+1:], true
		if tag == "root" {
			tag = ""
		}
	}
	var nodes []int
	var n int
	if _, err := fmt.Sscanf(nodeSpec, "d%d", &n); err == nil && fmt.Sprintf("d%d", n) == nodeSpec {
		if n < 0 || n >= len(j.Nodes) {
			return nil, fmt.Errorf("journal: node %s out of range (have %d nodes)", nodeSpec, len(j.Nodes))
		}
		nodes = []int{n}
	} else {
		nodes = j.NodesByLabel(nodeSpec)
		if len(nodes) == 0 {
			return nil, fmt.Errorf("journal: no node matches %q", nodeSpec)
		}
	}
	var out []int32
	for i := range j.Fires {
		f := &j.Fires[i]
		if hasTag && f.Tag != tag {
			continue
		}
		for _, nd := range nodes {
			if int(f.Node) == nd {
				out = append(out, f.ID)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("journal: no firings match %q", spec)
	}
	return out, nil
}
