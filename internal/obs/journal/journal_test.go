package journal

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/machine"
	"ctdf/internal/obs"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

func translateWorkload(t *testing.T, w workloads.Workload, opt translate.Options) *translate.Result {
	t.Helper()
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// record runs the machine with a journal recorder attached and returns
// the sealed journal plus the collector's report.
func record(t *testing.T, g *dfg.Graph, label string, jcfg Config, mcfg machine.Config) (*Journal, *obs.Report) {
	t.Helper()
	rec := NewRecorder(g, label, jcfg)
	col := obs.NewCollector(g, obs.Options{CriticalPath: true, Journal: rec})
	mcfg.Collector = col
	out, err := machine.Run(g, mcfg)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return rec.Finish(out.Stats.Cycles), col.Report(out.Stats.Cycles, out.Stats.Profile)
}

// TestCriticalPathEqualsLongestProvenancePath is the cross-validation of
// the PR 1 critical-path extractor against the full provenance DAG: the
// collector tracks only the single latest-finishing link per firing,
// the journal keeps every link; the longest weighted path through the
// complete DAG must equal the extractor's Length on every workload,
// schema, latency, and processor count.
func TestCriticalPathEqualsLongestProvenancePath(t *testing.T) {
	schemas := []translate.Options{
		{Schema: translate.Schema1},
		{Schema: translate.Schema2},
		{Schema: translate.Schema2Opt},
	}
	for _, w := range workloads.All() {
		for _, opt := range schemas {
			res := translateWorkload(t, w, opt)
			for _, lat := range []int{1, 4} {
				for _, procs := range []int{0, 1, 3} {
					jcfg := Config{Processors: procs, MemLatency: lat}
					j, rep := record(t, res.Graph, w.Name, jcfg, machine.Config{MemLatency: lat, Processors: procs})
					if err := j.CheckLinearization(); err != nil {
						t.Fatalf("%s/%v lat=%d P=%d: %v", w.Name, opt.Schema, lat, procs, err)
					}
					if rep.CriticalPath == nil {
						t.Fatalf("%s/%v: no critical path", w.Name, opt.Schema)
					}
					// Longest weighted path: L(f) = cost(f) + max L(deps).
					longest := make([]int64, len(j.Fires))
					var max int64
					for i := range j.Fires {
						var m int64
						for _, d := range j.Fires[i].Deps {
							if longest[d] > m {
								m = longest[d]
							}
						}
						longest[i] = m + int64(j.Fires[i].Cost)
						if longest[i] > max {
							max = longest[i]
						}
					}
					if max != rep.CriticalPath.Length {
						t.Errorf("%s/%v lat=%d P=%d: longest provenance path %d != critical path %d",
							w.Name, opt.Schema, lat, procs, max, rep.CriticalPath.Length)
					}
				}
			}
		}
	}
}

// TestJournalRoundTrip serializes and re-reads a journal, plain and
// gzipped, and checks nothing is lost.
func TestJournalRoundTrip(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	j, _ := record(t, res.Graph, "running-example/s2", Config{MemLatency: 4}, machine.Config{MemLatency: 4})

	check := func(t *testing.T, got *Journal) {
		t.Helper()
		if got.Cycles != j.Cycles || len(got.Fires) != len(j.Fires) || len(got.Parks) != len(j.Parks) {
			t.Fatalf("roundtrip lost data: cycles %d/%d fires %d/%d parks %d/%d",
				got.Cycles, j.Cycles, len(got.Fires), len(j.Fires), len(got.Parks), len(j.Parks))
		}
		if got.Label != j.Label || got.Engine != "machine" || got.Version != Version {
			t.Fatalf("roundtrip header: %q %q v%d", got.Label, got.Engine, got.Version)
		}
		if len(got.Nodes) != len(j.Nodes) {
			t.Fatalf("roundtrip nodes: %d != %d", len(got.Nodes), len(j.Nodes))
		}
		for i := range j.Fires {
			a, b := j.Fires[i], got.Fires[i]
			if a.Node != b.Node || a.Cycle != b.Cycle || a.Cost != b.Cost || a.Tag != b.Tag || !depsEqual(a.Deps, b.Deps) {
				t.Fatalf("fire %d roundtrip: %+v != %+v", i, a, b)
			}
		}
		g, err := got.Graph()
		if err != nil {
			t.Fatalf("roundtrip graph: %v", err)
		}
		if len(g.Nodes) != len(res.Graph.Nodes) {
			t.Fatalf("roundtrip graph nodes: %d != %d", len(g.Nodes), len(res.Graph.Nodes))
		}
	}

	t.Run("plain", func(t *testing.T) {
		var buf bytes.Buffer
		if err := j.Write(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		check(t, got)
	})
	t.Run("gzip-file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "run.journal.gz")
		if err := j.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		check(t, got)
	})
	t.Run("truncated", func(t *testing.T) {
		var buf bytes.Buffer
		if err := j.Write(&buf); err != nil {
			t.Fatal(err)
		}
		lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
		cut := bytes.Join(lines[:len(lines)-1], []byte("\n"))
		if _, err := Read(bytes.NewReader(cut)); err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncated journal accepted: %v", err)
		}
	})
}

// TestExplainImpactDuality checks the two causal queries against each
// other and against the cone-closure property on the running example.
func TestExplainImpactDuality(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	j, _ := record(t, res.Graph, "running-example", Config{MemLatency: 4}, machine.Config{MemLatency: 4})

	endFires := j.FiringsAt(res.Graph.EndID, j.Fires[len(j.Fires)-1].Tag)
	if len(endFires) == 0 {
		t.Fatal("end node never fired")
	}
	cause, err := Explain(j, endFires)
	if err != nil {
		t.Fatal(err)
	}
	// Backward closure: every member's deps are members.
	for _, id := range cause.IDs {
		for _, d := range j.Fires[id].Deps {
			if !cause.Contains(d) {
				t.Fatalf("cause cone not closed: #%d in, dep #%d out", id, d)
			}
		}
	}
	// Duality: x in Explain(end) iff end in Impact(x), spot-checked on
	// every firing (the example is small).
	for i := range j.Fires {
		imp, err := Impact(j, []int32{int32(i)})
		if err != nil {
			t.Fatal(err)
		}
		feedsEnd := false
		for _, e := range endFires {
			if imp.Contains(e) {
				feedsEnd = true
				break
			}
		}
		if feedsEnd != cause.Contains(int32(i)) {
			t.Fatalf("duality broken at firing #%d: impact-reaches-end=%v, in-cause-cone=%v",
				i, feedsEnd, cause.Contains(int32(i)))
		}
	}
	// The rendered tree mentions the anchor and at least one cause.
	text := cause.Text(0)
	if !strings.Contains(text, "end") {
		t.Fatalf("explain text misses anchor:\n%s", text)
	}
	if cause.Summary() == "" || len(cause.Nodes()) == 0 {
		t.Fatal("empty cone summary")
	}
}

// TestResolveAnchor exercises the query-spec grammar.
func TestResolveAnchor(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	j, _ := record(t, res.Graph, "running-example", Config{MemLatency: 4}, machine.Config{MemLatency: 4})

	if ids, err := ResolveAnchor(j, "#0"); err != nil || len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("#0: %v %v", ids, err)
	}
	node := int(j.Fires[0].Node)
	spec := dfgNodeSpec(node)
	ids, err := ResolveAnchor(j, spec)
	if err != nil || len(ids) == 0 {
		t.Fatalf("%s: %v %v", spec, ids, err)
	}
	// With the root tag qualifier.
	if ids, err := ResolveAnchor(j, spec+"@root"); err != nil || len(ids) == 0 {
		t.Fatalf("%s@root: %v %v", spec, ids, err)
	}
	// Label substring.
	if ids, err := ResolveAnchor(j, "store"); err != nil || len(ids) == 0 {
		t.Fatalf("store: %v %v", ids, err)
	}
	for _, bad := range []string{"", "#99999", "d99999", "no-such-label", "store@9.9.9"} {
		if _, err := ResolveAnchor(j, bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func dfgNodeSpec(n int) string {
	return fmt.Sprintf("d%d", n)
}

// TestStateAt reconstructs mid-run states and checks conservation
// against the journal.
func TestStateAt(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	j, _ := record(t, res.Graph, "running-example", Config{MemLatency: 4}, machine.Config{MemLatency: 4})

	for c := 0; c <= j.Cycles; c++ {
		st, err := j.StateAt(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range st.Issued {
			f := j.Fires[id]
			if !(f.Cycle <= int32(c) && int32(c) < f.Cycle+f.Cost) {
				t.Fatalf("cycle %d: firing #%d not actually in flight", c, id)
			}
		}
		for _, tk := range st.Tokens {
			p, f := j.Fires[tk.Producer], j.Fires[tk.Consumer]
			if !(p.Cycle+p.Cost <= int32(c) && int32(c) < f.Cycle) {
				t.Fatalf("cycle %d: token %d->%d not actually live", c, tk.Producer, tk.Consumer)
			}
		}
		_ = st.Text(j)
	}
	// After the run everything is drained.
	st, err := j.StateAt(j.Cycles + 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Issued) != 0 || len(st.Tokens) != 0 || len(st.Parked) != 0 {
		t.Fatalf("state not drained after completion: %+v", st)
	}
	// Mid-run, something is happening on a machine with latency 4.
	mid, err := j.StateAt(j.Cycles / 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid.Issued)+len(mid.Tokens)+len(mid.Parked) == 0 {
		t.Fatal("mid-run state empty")
	}
}

// TestReplayIdentical replays journals across the workload suite and
// demands zero divergences, through an NDJSON round trip.
func TestReplayIdentical(t *testing.T) {
	schemas := []translate.Options{
		{Schema: translate.Schema1},
		{Schema: translate.Schema2Opt},
	}
	for _, w := range workloads.All() {
		for _, opt := range schemas {
			res := translateWorkload(t, w, opt)
			if len(res.Graph.Calls) > 0 {
				continue // not serializable; covered by TestReplayInMemory
			}
			jcfg := Config{Processors: 2, MemLatency: 3}
			j, _ := record(t, res.Graph, w.Name, jcfg, machine.Config{Processors: 2, MemLatency: 3})
			var buf bytes.Buffer
			if err := j.Write(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := Read(&buf)
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			rr, err := Replay(loaded)
			if err != nil {
				t.Fatalf("%s/%v: %v", w.Name, opt.Schema, err)
			}
			if len(rr.Divergences) != 0 {
				t.Errorf("%s/%v: replay diverged:\n%s", w.Name, opt.Schema, rr.Text())
			}
		}
	}
}

// TestReplayInMemory covers procedure-call graphs, which are not
// serializable but replay via the retained in-memory graph.
func TestReplayInMemory(t *testing.T) {
	found := false
	for _, w := range workloads.All() {
		res := translateWorkload(t, w, translate.Options{Schema: translate.Schema2})
		if len(res.Graph.Calls) == 0 {
			continue
		}
		found = true
		j, _ := record(t, res.Graph, w.Name, Config{MemLatency: 2}, machine.Config{MemLatency: 2})
		if j.GraphText != "" {
			t.Fatalf("%s: linked graph serialized?", w.Name)
		}
		rr, err := Replay(j)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(rr.Divergences) != 0 {
			t.Errorf("%s: replay diverged:\n%s", w.Name, rr.Text())
		}
		// Through serialization it must refuse with a clear error.
		var buf bytes.Buffer
		if err := j.Write(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Replay(loaded); err == nil {
			t.Errorf("%s: replay of graph-less journal did not fail", w.Name)
		}
	}
	if !found {
		t.Skip("no procedure workloads in suite")
	}
}

// TestReplayDetectsTampering flips a recorded fact and expects the diff
// to catch it.
func TestReplayDetectsTampering(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	j, _ := record(t, res.Graph, "running-example", Config{MemLatency: 4}, machine.Config{MemLatency: 4})
	j.Fires[len(j.Fires)/2].Cycle += 3
	// Invalidate linearization cheaply: replay diff, not CheckLinearization.
	rr, err := Replay(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Divergences) == 0 {
		t.Fatal("tampered journal replayed clean")
	}
	if !strings.Contains(rr.Text(), "DIVERGED") {
		t.Fatalf("verdict text: %s", rr.Text())
	}
}

// TestChromeTraceValid validates the exporter output is well-formed
// JSON with the expected event population.
func TestChromeTraceValid(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	j, _ := record(t, res.Graph, "running-example", Config{MemLatency: 4}, machine.Config{MemLatency: 4})
	var buf bytes.Buffer
	if err := j.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   *int64 `json:"ts"`
			Dur  int64  `json:"dur"`
			Pid  *int   `json:"pid"`
			Tid  *int   `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, e := range doc.TraceEvents {
		counts[e.Ph]++
		if e.Ts == nil || e.Pid == nil || e.Tid == nil {
			t.Fatalf("event %q missing ts/pid/tid", e.Name)
		}
	}
	if counts["X"] != len(j.Fires) {
		t.Errorf("trace has %d X events, journal %d fires", counts["X"], len(j.Fires))
	}
	if counts["b"] == 0 || counts["b"] != counts["e"] {
		t.Errorf("unbalanced async spans: %d begin, %d end", counts["b"], counts["e"])
	}
	if counts["i"] != len(j.Parks) {
		t.Errorf("trace has %d instants, journal %d parks", counts["i"], len(j.Parks))
	}
	if counts["M"] == 0 {
		t.Error("no metadata events")
	}
}

// TestPprofValid decodes the exporter's protobuf wire format and checks
// the profile invariants pprof enforces (string table, id references,
// sample arity).
func TestPprofValid(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	j, _ := record(t, res.Graph, "running-example", Config{MemLatency: 4}, machine.Config{MemLatency: 4})
	var buf bytes.Buffer
	if err := j.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	gr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("pprof output is not gzipped: %v", err)
	}
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(gr); err != nil {
		t.Fatal(err)
	}
	sampleTypes, samples, locs, funcs, strs := 0, 0, 0, 0, 0
	b := raw.Bytes()
	for len(b) > 0 {
		key, n := binary.Uvarint(b)
		if n <= 0 {
			t.Fatal("bad varint in profile")
		}
		b = b[n:]
		field, wire := key>>3, key&7
		switch wire {
		case 0:
			_, n := binary.Uvarint(b)
			if n <= 0 {
				t.Fatal("bad varint value")
			}
			b = b[n:]
		case 2:
			l, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b[n:])) < l {
				t.Fatal("bad length-delimited field")
			}
			b = b[n+int(l):]
			switch field {
			case 1:
				sampleTypes++
			case 2:
				samples++
			case 4:
				locs++
			case 5:
				funcs++
			case 6:
				strs++
			}
		default:
			t.Fatalf("unexpected wire type %d", wire)
		}
	}
	if sampleTypes != 2 {
		t.Errorf("sample types: %d, want 2", sampleTypes)
	}
	firing := map[int32]bool{}
	for i := range j.Fires {
		firing[j.Fires[i].Node] = true
	}
	if samples != len(firing) {
		t.Errorf("samples: %d, want one per fired node (%d)", samples, len(firing))
	}
	if locs == 0 || locs != funcs {
		t.Errorf("locations %d, functions %d", locs, funcs)
	}
	if strs < 4 {
		t.Errorf("string table suspiciously small: %d", strs)
	}
}

// TestDepthsMatchParallelStructure sanity-checks the Lamport depths: at
// least one firing at depth 1 (fed only by start tokens), monotone along
// edges, and NodeMaxDepths covers exactly the fired nodes.
func TestDepthsMatchParallelStructure(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	j, _ := record(t, res.Graph, "running-example", Config{MemLatency: 4}, machine.Config{MemLatency: 4})
	depths := j.Depths()
	sawRoot := false
	for i := range j.Fires {
		if depths[i] == 1 {
			sawRoot = true
		}
		for _, d := range j.Fires[i].Deps {
			if depths[d] >= depths[i] {
				t.Fatalf("depth not strictly increasing along edge %d->%d", d, i)
			}
		}
	}
	if !sawRoot {
		t.Fatal("no depth-1 firing")
	}
	perNode := j.NodeMaxDepths()
	for n, d := range perNode {
		fired := false
		for i := range j.Fires {
			if int(j.Fires[i].Node) == n {
				fired = true
				break
			}
		}
		if fired != (d > 0) {
			t.Fatalf("node %d fired=%v but max depth %d", n, fired, d)
		}
	}
}
