package journal

import (
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
)

// WritePprof exports the journal as a gzipped pprof profile.proto,
// accepted by `go tool pprof`. Two sample types: "firings/count" and
// "cycles/count" (sum of firing costs — occupancy, not wall-clock,
// since firings overlap). Each node contributes one sample whose stack
// reads leaf to root:
//
//	node  ("d5: binop +")  — the individual dataflow operator
//	stmt  ("stmt 3")       — the source statement it was translated from
//	kind  ("binop")        — the operator class
//
// so `pprof -top` aggregates by operator, and the flame graph groups
// cost by operator class, then statement, then node: the standard
// profiling UX over a dataflow execution.
//
// The encoder is ~100 lines of hand-rolled protobuf below — wire format
// only needs varints and length-delimited fields, and vendoring a
// protobuf library for one message is not worth a dependency.
func (j *Journal) WritePprof(w io.Writer) error {
	// Per-node aggregation.
	fires := make([]int64, len(j.Nodes))
	cycles := make([]int64, len(j.Nodes))
	for i := range j.Fires {
		fires[j.Fires[i].Node]++
		cycles[j.Fires[i].Node] += int64(j.Fires[i].Cost)
	}

	p := &profileBuilder{strings: map[string]int64{"": 0}, tab: []string{""}}

	// sample_type: ValueType{type, unit}.
	for _, st := range [][2]string{{"firings", "count"}, {"cycles", "count"}} {
		var vt protoMsg
		vt.varint(1, uint64(p.str(st[0])))
		vt.varint(2, uint64(p.str(st[1])))
		p.msg.bytes(1, vt.buf)
	}

	// Functions and locations: one of each per distinct frame name.
	// Location ids are 1-based; 0 is protobuf-reserved ("no location").
	locOf := map[string]uint64{}
	location := func(name string) uint64 {
		if id, ok := locOf[name]; ok {
			return id
		}
		id := uint64(len(locOf) + 1)
		locOf[name] = id
		var fn protoMsg
		fn.varint(1, id)
		fn.varint(2, uint64(p.str(name)))
		fn.varint(3, uint64(p.str(name)))
		fn.varint(4, uint64(p.str(j.Label)))
		p.functions.bytes(5, fn.buf)
		var line protoMsg
		line.varint(1, id)
		var loc protoMsg
		loc.varint(1, id)
		loc.bytes(4, line.buf)
		p.locations.bytes(4, loc.buf)
		return id
	}

	for n := range j.Nodes {
		if fires[n] == 0 {
			continue
		}
		m := &j.Nodes[n]
		stack := []uint64{
			location(m.Label),
			location(fmt.Sprintf("stmt %d", m.Stmt)),
			location(m.Kind),
		}
		var locs, vals protoMsg
		for _, id := range stack {
			locs.raw(id)
		}
		vals.raw(uint64(fires[n]))
		vals.raw(uint64(cycles[n]))
		var sample protoMsg
		sample.bytes(1, locs.buf) // location_id, packed
		sample.bytes(2, vals.buf) // value, packed
		p.msg.bytes(2, sample.buf)
	}

	p.msg.buf = append(p.msg.buf, p.locations.buf...)
	p.msg.buf = append(p.msg.buf, p.functions.buf...)
	for _, s := range p.tab {
		p.msg.str(6, s)
	}
	// period_type cycles/count, period 1: pprof wants to know the
	// sampling rate; the journal is exhaustive, so one unit per count.
	var pt protoMsg
	pt.varint(1, uint64(p.str("cycles")))
	pt.varint(2, uint64(p.str("count")))
	p.msg.bytes(11, pt.buf)
	p.msg.varint(12, 1)

	// pprof files are gzipped by convention; the zero gzip header keeps
	// the bytes deterministic for golden tests.
	gz := gzip.NewWriter(w)
	if _, err := gz.Write(p.msg.buf); err != nil {
		return err
	}
	return gz.Close()
}

// --- minimal protobuf wire encoding ------------------------------------

// protoMsg accumulates one message's encoded fields.
type protoMsg struct {
	buf []byte
}

// varint emits field as wire type 0.
func (m *protoMsg) varint(field int, v uint64) {
	m.buf = binary.AppendUvarint(m.buf, uint64(field)<<3)
	m.buf = binary.AppendUvarint(m.buf, v)
}

// bytes emits field as wire type 2 (length-delimited): submessages and
// packed repeated scalars.
func (m *protoMsg) bytes(field int, b []byte) {
	m.buf = binary.AppendUvarint(m.buf, uint64(field)<<3|2)
	m.buf = binary.AppendUvarint(m.buf, uint64(len(b)))
	m.buf = append(m.buf, b...)
}

// str emits field as a length-delimited string.
func (m *protoMsg) str(field int, s string) {
	m.buf = binary.AppendUvarint(m.buf, uint64(field)<<3|2)
	m.buf = binary.AppendUvarint(m.buf, uint64(len(s)))
	m.buf = append(m.buf, s...)
}

// raw appends a bare varint (an element of a packed repeated field).
func (m *protoMsg) raw(v uint64) {
	m.buf = binary.AppendUvarint(m.buf, v)
}

// profileBuilder holds the profile's top-level message plus the interned
// string table and the location/function sections (buffered separately
// so samples can be emitted first, in node order).
type profileBuilder struct {
	msg       protoMsg
	locations protoMsg
	functions protoMsg
	strings   map[string]int64
	tab       []string
}

// str interns s into the profile string table.
func (p *profileBuilder) str(s string) int64 {
	if i, ok := p.strings[s]; ok {
		return i
	}
	i := int64(len(p.tab))
	p.strings[s] = i
	p.tab = append(p.tab, s)
	return i
}
