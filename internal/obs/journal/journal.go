// Package journal records and replays causal execution journals of the
// machine engine. A journal holds, for every firing, the full set of
// operand-producer firings — the complete provenance DAG, generalizing
// the critical-path collector's single latest-finishing link — plus the
// matching-store park events and tag lineage. Because the translated
// graphs are determinate (paper §3, §5), one journal is a complete,
// replayable description of every run of the same configuration, which
// is what makes the three consumers built on top of it sound:
//
//   - causal queries: Explain (the backward cause cone of a firing) and
//     Impact (the forward slice), surfaced as `ctdf trace -explain`;
//   - time-travel replay: Replay re-executes the machine engine against
//     the journal's own recorded configuration and diffs the two runs
//     firing by firing — a translation-validation oracle at runtime
//     granularity (complementing `ctdf vet`), with StateAt dumping the
//     live tokens and matching-store contents at any cycle;
//   - standard exporters: Chrome Trace Event JSON (Perfetto) and pprof
//     profile.proto (`go tool pprof`), in chrome.go and pprof.go.
//
// The journal format (NDJSON, transparently gzipped for ".gz" paths) is
// documented in OBSERVABILITY.md.
package journal

import (
	"fmt"
	"sort"
	"strings"

	"ctdf/internal/dfg"
	"ctdf/internal/obs"
)

// Version is the journal format version.
const Version = 1

// Fire is one recorded firing — a node of the provenance DAG. Its ID is
// its index in the journal's fire list, which is the engine's issue
// order (deterministic for the machine engine).
type Fire struct {
	ID    int32  `json:"id"`
	Node  int32  `json:"node"`
	Cycle int32  `json:"cycle"`
	Cost  int32  `json:"cost"`
	Port  int32  `json:"port,omitempty"`
	Tag   string `json:"tag,omitempty"`
	// Deps holds the producer firing ids of every operand the firing
	// consumed (empty for firings fed only by initial tokens). A deferred
	// I-structure read's consumer carries both the read and the
	// satisfying store.
	Deps []int32 `json:"deps,omitempty"`
}

// Park is one matching-store park: a token that had to wait for its
// partner operands (§2.2 frame-memory pressure). Dep is the parked
// token's producer firing (-1 for initial tokens).
type Park struct {
	Node  int32  `json:"node"`
	Cycle int32  `json:"cycle"`
	Port  int32  `json:"port,omitempty"`
	Tag   string `json:"tag,omitempty"`
	Dep   int32  `json:"dep"`
}

// Fault is one injected fault observed during the run.
type Fault struct {
	Node  int    `json:"node"`
	Cycle int    `json:"cycle"`
	Class string `json:"class"`
}

// Config captures the machine configuration a journal was recorded
// under — everything Replay needs to re-execute the run bit-for-bit.
// Zero values mean engine defaults, exactly as in machine.Config.
type Config struct {
	Processors int               `json:"processors,omitempty"`
	MemLatency int               `json:"memLatency,omitempty"`
	MaxCycles  int               `json:"maxCycles,omitempty"`
	MaxOps     int64             `json:"maxOps,omitempty"`
	RandomSeed int64             `json:"randomSeed,omitempty"`
	Workers    int               `json:"workers,omitempty"`
	Binding    map[string]string `json:"binding,omitempty"`
	// FaultClass/FaultSite/FaultDelay reconstruct the deterministic fault
	// injector, so replaying a fault-injected journal reproduces the same
	// machcheck abort at the same cycle (see internal/chaos).
	FaultClass string `json:"faultClass,omitempty"`
	FaultSite  int64  `json:"faultSite,omitempty"`
	FaultDelay int    `json:"faultDelay,omitempty"`
}

// Journal is one recorded machine-engine run.
type Journal struct {
	Version int    `json:"version"`
	Engine  string `json:"engine"`
	// Label optionally names the run (workload/schema), for reports.
	Label string `json:"label,omitempty"`
	// GraphText is the dfg text serialization of the executed graph,
	// making the journal self-contained for file-based replay. Empty for
	// linked procedure graphs (not serializable in dfg format v1); those
	// journals replay in-memory via the retained graph only.
	GraphText string `json:"-"`
	// Nodes is the per-node attribution metadata, indexed by node id.
	Nodes  []obs.NodeMeta `json:"-"`
	Config Config         `json:"config"`
	// Cycles is the run's total execution time.
	Cycles int `json:"cycles"`
	// AbortCheck/AbortCycle record the machine check that ended the run
	// ("" for clean completion).
	AbortCheck string `json:"abortCheck,omitempty"`
	AbortCycle int    `json:"abortCycle,omitempty"`

	Fires  []Fire  `json:"-"`
	Parks  []Park  `json:"-"`
	Faults []Fault `json:"-"`

	// graph is the executed graph when the journal was recorded (or
	// replayed) in-process; file-loaded journals parse GraphText lazily.
	graph *dfg.Graph
}

// Recorder implements obs.Journal, accumulating a Journal during one
// machine run. Wire it via obs.Options.Journal; call Finish once the run
// returns.
type Recorder struct {
	j *Journal
}

// NewRecorder prepares a journal recorder for one run of g. label names
// the run in reports; cfg must describe the machine configuration the
// run uses, so the journal replays identically.
func NewRecorder(g *dfg.Graph, label string, cfg Config) *Recorder {
	j := &Journal{
		Version: Version,
		Engine:  "machine",
		Label:   label,
		Nodes:   g.Meta(),
		Config:  cfg,
		graph:   g,
	}
	if len(g.Calls) == 0 {
		j.GraphText = dfg.Text(g)
	}
	return &Recorder{j: j}
}

// RecordFire implements obs.Journal; the firing id is the call index.
func (r *Recorder) RecordFire(node, cycle, cost, port int, tag string, deps []int32) {
	r.j.Fires = append(r.j.Fires, Fire{
		ID: int32(len(r.j.Fires)), Node: int32(node), Cycle: int32(cycle),
		Cost: int32(cost), Port: int32(port), Tag: tag, Deps: deps,
	})
}

// RecordPark implements obs.Journal.
func (r *Recorder) RecordPark(node, cycle, port int, tag string, dep int32) {
	r.j.Parks = append(r.j.Parks, Park{
		Node: int32(node), Cycle: int32(cycle), Port: int32(port), Tag: tag, Dep: dep,
	})
}

// RecordFault implements obs.Journal.
func (r *Recorder) RecordFault(node, cycle int, detail string) {
	r.j.Faults = append(r.j.Faults, Fault{Node: node, Cycle: cycle, Class: detail})
}

// RecordAbort implements obs.Journal.
func (r *Recorder) RecordAbort(cycle int, check string) {
	r.j.AbortCheck = check
	r.j.AbortCycle = cycle
}

// Finish seals the journal with the run's total cycle count and returns
// it. The recorder must not be used afterwards.
func (r *Recorder) Finish(cycles int) *Journal {
	r.j.Cycles = cycles
	return r.j
}

// Graph returns the journal's executed graph, parsing GraphText on
// demand for file-loaded journals.
func (j *Journal) Graph() (*dfg.Graph, error) {
	if j.graph != nil {
		return j.graph, nil
	}
	if j.GraphText == "" {
		return nil, fmt.Errorf("journal: no graph recorded (linked procedure graphs are not serializable); replay requires the in-memory graph")
	}
	g, err := dfg.ParseText(strings.NewReader(j.GraphText))
	if err != nil {
		return nil, fmt.Errorf("journal: parsing recorded graph: %w", err)
	}
	j.graph = g
	return g, nil
}

// label returns node's diagnostic label ("d7: store x").
func (j *Journal) label(node int32) string {
	if int(node) < len(j.Nodes) {
		return j.Nodes[node].Label
	}
	return fmt.Sprintf("d%d", node)
}

// checkIDs validates every dependence edge's target, so queries and
// depth computations cannot panic on a truncated or corrupted journal.
func (j *Journal) checkIDs() error {
	for i := range j.Fires {
		f := &j.Fires[i]
		if f.ID != int32(i) {
			return fmt.Errorf("journal: fire %d carries id %d", i, f.ID)
		}
		if int(f.Node) >= len(j.Nodes) || f.Node < 0 {
			return fmt.Errorf("journal: fire %d names unknown node %d", i, f.Node)
		}
		for _, d := range f.Deps {
			if d < 0 || d >= f.ID {
				return fmt.Errorf("journal: fire %d depends on invalid firing %d", i, d)
			}
		}
	}
	for i := range j.Parks {
		if int(j.Parks[i].Node) >= len(j.Nodes) || j.Parks[i].Node < 0 {
			return fmt.Errorf("journal: park %d names unknown node %d", i, j.Parks[i].Node)
		}
		if j.Parks[i].Dep >= int32(len(j.Fires)) {
			return fmt.Errorf("journal: park %d names invalid producer %d", i, j.Parks[i].Dep)
		}
	}
	return nil
}

// Depths returns every firing's Lamport causal depth: 1 + the maximum
// depth over its operand producers (1 for firings fed only by initial
// tokens). This is an engine-independent property of the determinate
// provenance DAG — the channel engine's Lamport clocks compute the same
// quantity with no global clock at all (asserted cross-engine in
// internal/chanexec).
func (j *Journal) Depths() []int64 {
	depths := make([]int64, len(j.Fires))
	for i := range j.Fires {
		var max int64
		for _, d := range j.Fires[i].Deps {
			if depths[d] > max {
				max = depths[d]
			}
		}
		depths[i] = max + 1
	}
	return depths
}

// NodeMaxDepths folds Depths per node: the causal depth of each node's
// deepest firing (0 for nodes that never fired) — directly comparable to
// obs.NodeCounters.Clocks() from a channel-engine run.
func (j *Journal) NodeMaxDepths() []int64 {
	depths := j.Depths()
	out := make([]int64, len(j.Nodes))
	for i := range j.Fires {
		if n := j.Fires[i].Node; depths[i] > out[n] {
			out[n] = depths[i]
		}
	}
	return out
}

// CheckLinearization verifies the journal's causal order embeds into its
// cycle order: every dependence edge's producer finishes no later than
// its consumer issues. A violation means the journal (or the engine that
// wrote it) is corrupt.
func (j *Journal) CheckLinearization() error {
	if err := j.checkIDs(); err != nil {
		return err
	}
	for i := range j.Fires {
		f := &j.Fires[i]
		for _, d := range f.Deps {
			p := &j.Fires[d]
			if p.Cycle+p.Cost > f.Cycle {
				return fmt.Errorf("journal: firing #%d (%s @%d) consumes #%d (%s) finishing at %d",
					f.ID, j.label(f.Node), f.Cycle, p.ID, j.label(p.Node), p.Cycle+p.Cost)
			}
		}
	}
	return nil
}

// Summary renders one-line run vitals for CLI output.
func (j *Journal) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "journal: %d firings, %d parks, %d cycles", len(j.Fires), len(j.Parks), j.Cycles)
	if j.Label != "" {
		fmt.Fprintf(&b, " (%s)", j.Label)
	}
	if j.AbortCheck != "" {
		fmt.Fprintf(&b, "; aborted: %s at cycle %d", j.AbortCheck, j.AbortCycle)
	}
	if len(j.Faults) > 0 {
		fmt.Fprintf(&b, "; %d injected faults", len(j.Faults))
	}
	return b.String()
}

// FiringsAt returns the ids of node's firings under the given tag key,
// in issue order. It is the anchor resolver for Explain/Impact queries
// ("d10@0.1"): any-arrival operators (merge, loop entry) legitimately
// fire several times per tag.
func (j *Journal) FiringsAt(node int, tag string) []int32 {
	var out []int32
	for i := range j.Fires {
		if int(j.Fires[i].Node) == node && j.Fires[i].Tag == tag {
			out = append(out, j.Fires[i].ID)
		}
	}
	return out
}

// NodesByLabel finds node ids whose label contains the given substring —
// the fallback resolver for human-entered queries.
func (j *Journal) NodesByLabel(sub string) []int {
	var out []int
	for i := range j.Nodes {
		if strings.Contains(j.Nodes[i].Label, sub) {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
