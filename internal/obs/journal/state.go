package journal

import (
	"fmt"
	"sort"
	"strings"
)

// State is the machine state at one cycle, reconstructed purely from
// the journal — no re-execution needed. It is the time-travel view
// behind `ctdf replay -at`.
type State struct {
	Cycle int
	// Issued holds the firings occupying functional units at the cycle
	// (issued, not yet finished).
	Issued []int32
	// Tokens holds the live dependence edges: values produced by a
	// finished firing but not yet consumed. A deferred I-structure read
	// contributes two edges (read and satisfying store) for its one
	// response token.
	Tokens []LiveToken
	// Parked holds the matching-store contents: operands parked waiting
	// for their partners. Activations that never complete (deadlock)
	// stay parked through every later cycle, which is exactly what makes
	// this view useful for deadlock forensics.
	Parked []ParkedToken
}

// LiveToken is one in-flight dependence edge.
type LiveToken struct {
	// Producer is the firing that produced the value.
	Producer int32
	// Consumer is the firing that will consume it (journals are complete
	// runs, so the consumer is always known).
	Consumer int32
}

// ParkedToken is one matching-store resident.
type ParkedToken struct {
	Park
	// Claimed is the cycle the parked operand's activation finally fired,
	// or -1 if it never did (deadlocked or aborted run).
	Claimed int32
}

// StateAt reconstructs the state at cycle c. Leaked tokens (produced but
// never consumed — flagged separately by machcheck token-leak) have no
// dependence edge in the journal and do not appear.
func (j *Journal) StateAt(c int) (*State, error) {
	if err := j.checkIDs(); err != nil {
		return nil, err
	}
	st := &State{Cycle: c}
	cy := int32(c)
	for i := range j.Fires {
		f := &j.Fires[i]
		if f.Cycle <= cy && cy < f.Cycle+f.Cost {
			st.Issued = append(st.Issued, f.ID)
		}
		for _, d := range f.Deps {
			p := &j.Fires[d]
			if p.Cycle+p.Cost <= cy && cy < f.Cycle {
				st.Tokens = append(st.Tokens, LiveToken{Producer: d, Consumer: f.ID})
			}
		}
	}
	// A park is claimed by the first firing of its (node, tag) activation
	// at or after the park cycle; fires are already in cycle order.
	type actKey struct {
		node int32
		tag  string
	}
	cycles := map[actKey][]int32{}
	for i := range j.Fires {
		k := actKey{j.Fires[i].Node, j.Fires[i].Tag}
		cycles[k] = append(cycles[k], j.Fires[i].Cycle)
	}
	for i := range j.Parks {
		p := &j.Parks[i]
		if p.Cycle > cy {
			continue
		}
		claimed := int32(-1)
		for _, fc := range cycles[actKey{p.Node, p.Tag}] {
			if fc >= p.Cycle {
				claimed = fc
				break
			}
		}
		if claimed < 0 || claimed > cy {
			st.Parked = append(st.Parked, ParkedToken{Park: *p, Claimed: claimed})
		}
	}
	sort.Slice(st.Tokens, func(a, b int) bool {
		if st.Tokens[a].Consumer != st.Tokens[b].Consumer {
			return st.Tokens[a].Consumer < st.Tokens[b].Consumer
		}
		return st.Tokens[a].Producer < st.Tokens[b].Producer
	})
	return st, nil
}

// Text renders the state dump for terminal output.
func (j *Journal) renderTag(tag string) string {
	if tag == "" {
		return "root"
	}
	return tag
}

func (s *State) Text(j *Journal) string {
	var b strings.Builder
	fmt.Fprintf(&b, "state at cycle %d: %d issued, %d live tokens, %d parked\n",
		s.Cycle, len(s.Issued), len(s.Tokens), len(s.Parked))
	if len(s.Issued) > 0 {
		b.WriteString("  in functional units:\n")
		for _, id := range s.Issued {
			f := &j.Fires[id]
			fmt.Fprintf(&b, "    #%-5d %-26s [tag %s] issued @%d, done @%d\n",
				id, j.label(f.Node), j.renderTag(f.Tag), f.Cycle, f.Cycle+f.Cost)
		}
	}
	if len(s.Tokens) > 0 {
		b.WriteString("  live tokens (producer -> consumer):\n")
		for _, t := range s.Tokens {
			p, c := &j.Fires[t.Producer], &j.Fires[t.Consumer]
			fmt.Fprintf(&b, "    #%-5d %-26s -> #%d %s [tag %s] (consumed @%d)\n",
				t.Producer, j.label(p.Node), t.Consumer, j.label(c.Node), j.renderTag(c.Tag), c.Cycle)
		}
	}
	if len(s.Parked) > 0 {
		b.WriteString("  matching store:\n")
		for _, p := range s.Parked {
			claim := "never claimed"
			if p.Claimed >= 0 {
				claim = fmt.Sprintf("claimed @%d", p.Claimed)
			}
			fmt.Fprintf(&b, "    %-26s port %d [tag %s] parked @%d, %s\n",
				j.label(p.Node), p.Port, j.renderTag(p.Tag), p.Cycle, claim)
		}
	}
	return b.String()
}
