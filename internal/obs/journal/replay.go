package journal

import (
	"errors"
	"fmt"
	"strings"

	"ctdf/internal/fault"
	"ctdf/internal/interp"
	"ctdf/internal/machcheck"
	"ctdf/internal/machine"
	"ctdf/internal/obs"
)

// Divergence is one firing-level disagreement between a journal and its
// replay.
type Divergence struct {
	// Index is the firing id (or -1 for run-level divergences: cycle
	// count, abort, fire-count mismatch).
	Index int    `json:"index"`
	Field string `json:"field"`
	Want  string `json:"want"`
	Got   string `json:"got"`
}

func (d Divergence) String() string {
	if d.Index < 0 {
		return fmt.Sprintf("%s: recorded %s, replayed %s", d.Field, d.Want, d.Got)
	}
	return fmt.Sprintf("firing #%d %s: recorded %s, replayed %s", d.Index, d.Field, d.Want, d.Got)
}

// ReplayResult reports one time-travel replay.
type ReplayResult struct {
	// Replayed is the journal of the re-execution; StateAt against it
	// (equivalently, against the original when Divergences is empty)
	// implements the time-travel inspection.
	Replayed *Journal
	// Divergences lists recorded-vs-replayed disagreements, capped at
	// MaxDivergences; empty means the replay reproduced the run exactly.
	Divergences []Divergence
	// Truncated reports that more divergences existed than were kept.
	Truncated bool
}

// MaxDivergences caps how many diffs a replay reports: past the first
// disagreement the runs have different token histories and every later
// firing tends to diverge too, so an exhaustive list is noise.
const MaxDivergences = 20

// Replay re-executes the machine engine under the journal's recorded
// configuration — including the fault-injection plan, so a journal of a
// crashed run reproduces its machine-check abort — and diffs the
// re-execution against the recording firing by firing. The machine is
// deterministic by construction, so any divergence means the journal,
// the engine, or the configuration capture is broken; `ctdf replay`
// gates on zero divergences in scripts/verify.sh.
func Replay(j *Journal) (*ReplayResult, error) {
	g, err := j.Graph()
	if err != nil {
		return nil, err
	}
	cfg := machine.Config{
		Processors: j.Config.Processors,
		MemLatency: j.Config.MemLatency,
		MaxCycles:  j.Config.MaxCycles,
		MaxOps:     j.Config.MaxOps,
		RandomSeed: j.Config.RandomSeed,
		Workers:    j.Config.Workers,
	}
	if len(j.Config.Binding) > 0 {
		cfg.Binding = interp.Binding(j.Config.Binding)
	}
	if j.Config.FaultClass != "" {
		cfg.Inject = fault.NewInjector(fault.Plan{
			Class: fault.Class(j.Config.FaultClass),
			Site:  j.Config.FaultSite,
			Delay: j.Config.FaultDelay,
		})
	}
	rec := NewRecorder(g, j.Label, j.Config)
	cfg.Collector = obs.NewCollector(g, obs.Options{Journal: rec})

	out, err := machine.Run(g, cfg)
	cycles := 0
	if err != nil {
		var ce *machcheck.Error
		if !errors.As(err, &ce) {
			return nil, fmt.Errorf("journal: replay failed outside machine checks: %w", err)
		}
		// The abort itself was journaled via RecordAbort; the diff below
		// compares it against the recording.
		cycles = ce.Cycle
	} else {
		cycles = out.Stats.Cycles
	}
	replayed := rec.Finish(cycles)

	res := &ReplayResult{Replayed: replayed}
	res.Divergences, res.Truncated = Diff(j, replayed), false
	if len(res.Divergences) > MaxDivergences {
		res.Divergences = res.Divergences[:MaxDivergences]
		res.Truncated = true
	}
	return res, nil
}

// Diff compares two journals of what should be the same run — a
// recording against its replay, or a sequential-engine journal against a
// sharded-engine one (byte-exactness gate, SCALING.md) — firing by
// firing. It returns at most MaxDivergences+1 entries; an empty slice
// means the journals agree exactly.
func Diff(j, replayed *Journal) []Divergence {
	var out []Divergence
	truncated := false
	add := func(index int, field, want, got string) {
		if len(out) > MaxDivergences {
			truncated = true
			return
		}
		out = append(out, Divergence{Index: index, Field: field, Want: want, Got: got})
	}

	if len(j.Fires) != len(replayed.Fires) {
		add(-1, "firings", fmt.Sprint(len(j.Fires)), fmt.Sprint(len(replayed.Fires)))
	}
	n := len(j.Fires)
	if len(replayed.Fires) < n {
		n = len(replayed.Fires)
	}
	for i := 0; i < n; i++ {
		a, b := &j.Fires[i], &replayed.Fires[i]
		if a.Node != b.Node {
			add(i, "node", j.label(a.Node), j.label(b.Node))
		}
		if a.Cycle != b.Cycle {
			add(i, "cycle", fmt.Sprint(a.Cycle), fmt.Sprint(b.Cycle))
		}
		if a.Cost != b.Cost {
			add(i, "cost", fmt.Sprint(a.Cost), fmt.Sprint(b.Cost))
		}
		if a.Tag != b.Tag {
			add(i, "tag", j.renderTag(a.Tag), j.renderTag(b.Tag))
		}
		if !depsEqual(a.Deps, b.Deps) {
			add(i, "deps", fmt.Sprint(a.Deps), fmt.Sprint(b.Deps))
		}
		if truncated {
			break
		}
	}
	if len(j.Parks) != len(replayed.Parks) {
		add(-1, "parks", fmt.Sprint(len(j.Parks)), fmt.Sprint(len(replayed.Parks)))
	}
	if j.Cycles != replayed.Cycles {
		add(-1, "cycles", fmt.Sprint(j.Cycles), fmt.Sprint(replayed.Cycles))
	}
	if j.AbortCheck != replayed.AbortCheck {
		add(-1, "abort check", orNone(j.AbortCheck), orNone(replayed.AbortCheck))
	}
	if j.AbortCheck == replayed.AbortCheck && j.AbortCycle != replayed.AbortCycle {
		add(-1, "abort cycle", fmt.Sprint(j.AbortCycle), fmt.Sprint(replayed.AbortCycle))
	}
	return out
}

func depsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// Text renders the replay verdict for terminal output.
func (r *ReplayResult) Text() string {
	if len(r.Divergences) == 0 {
		return fmt.Sprintf("replay: identical — %d firings, %d cycles reproduced exactly\n",
			len(r.Replayed.Fires), r.Replayed.Cycles)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "replay: DIVERGED — %d disagreement(s):\n", len(r.Divergences))
	for _, d := range r.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if r.Truncated {
		b.WriteString("  ... (further divergences suppressed)\n")
	}
	return b.String()
}
