package journal

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/machine"
	"ctdf/internal/obs"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// The committed export goldens pin the byte-exact Chrome-trace and pprof
// encodings of the running example: both exporters are deterministic
// (sorted JSON keys, lane assignment fixed by cycle order, gzip with a
// zeroed header), so any encoding change shows up as a byte diff.
// Regenerate with:
//
//	go test ./internal/obs/journal -run TestExportGoldens -update
var updateGoldens = flag.Bool("update", false, "rewrite testdata export goldens from the current exporters")

// goldenJournal records the running example under the configuration the
// OBSERVABILITY.md walkthrough uses: schema2-opt, memory latency 4,
// unlimited processors.
func goldenJournal(t *testing.T) *Journal {
	t.Helper()
	w, err := workloads.ByName("running-example")
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder(res.Graph, "schema2-opt", Config{MemLatency: 4})
	col := obs.NewCollector(res.Graph, obs.Options{Journal: rec})
	out, err := machine.Run(res.Graph, machine.Config{MemLatency: 4, Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	return rec.Finish(out.Stats.Cycles)
}

func checkExportGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to generate): %v", err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("%s: export diverged from committed golden (%d bytes committed, %d produced); rerun with -update if the change is intentional",
			name, len(want), len(got))
	}
}

// TestExportGoldens locks both exporters to their committed byte-exact
// output on the running example. The exporters must stay deterministic:
// two encodings of the same journal are compared first, so a
// nondeterminism bug is reported as such rather than as a golden diff.
func TestExportGoldens(t *testing.T) {
	j := goldenJournal(t)

	var trace1, trace2 bytes.Buffer
	if err := j.WriteChromeTrace(&trace1); err != nil {
		t.Fatal(err)
	}
	if err := j.WriteChromeTrace(&trace2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(trace1.Bytes(), trace2.Bytes()) {
		t.Fatal("Chrome-trace export is nondeterministic")
	}
	checkExportGolden(t, "running-example.trace.json", trace1.Bytes())

	var prof1, prof2 bytes.Buffer
	if err := j.WritePprof(&prof1); err != nil {
		t.Fatal(err)
	}
	if err := j.WritePprof(&prof2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prof1.Bytes(), prof2.Bytes()) {
		t.Fatal("pprof export is nondeterministic")
	}
	checkExportGolden(t, "running-example.pprof.pb.gz", prof1.Bytes())
}
