package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteChromeTrace exports the journal as Chrome Trace Event JSON,
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing. One
// simulated cycle maps to one microsecond of trace time.
//
// Layout: a single process, one thread lane per issue slot — a firing
// issued as the k-th operation of its cycle renders on lane k, so the
// lane count at any instant IS the machine's instantaneous parallelism
// and the processor bound is directly visible as a lane ceiling.
// Firings are "X" (complete) events carrying tag, firing id, and
// producer ids in args; each loop-iteration tag additionally gets an
// async "b"/"e" span covering its firings, so iterations overlap
// visibly in the tag track exactly when tagged-token matching lets them
// overlap in the machine (paper §4).
func (j *Journal) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(v any) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = bw.Write(raw)
		return err
	}

	type ev struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat,omitempty"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur,omitempty"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		ID   string         `json:"id,omitempty"`
		S    string         `json:"s,omitempty"`
		Args map[string]any `json:"args,omitempty"`
	}

	if err := emit(ev{Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "ctdf machine (" + j.Label + ")"}}); err != nil {
		return err
	}

	// Lane assignment and per-tag span extents in one pass (fires are in
	// cycle order).
	type span struct{ start, end int64 }
	tags := map[string]*span{}
	var tagOrder []string
	lanes := 0
	lane, laneCycle := 0, int32(-1)
	for i := range j.Fires {
		f := &j.Fires[i]
		if f.Cycle != laneCycle {
			lane, laneCycle = 0, f.Cycle
		} else {
			lane++
		}
		if lane+1 > lanes {
			lanes = lane + 1
		}
		args := map[string]any{"tag": j.renderTag(f.Tag), "firing": f.ID}
		if len(f.Deps) > 0 {
			args["deps"] = f.Deps
		}
		if err := emit(ev{
			Name: j.label(f.Node), Cat: j.kind(f.Node), Ph: "X",
			Ts: int64(f.Cycle), Dur: int64(f.Cost), Pid: 0, Tid: lane, Args: args,
		}); err != nil {
			return err
		}
		s := tags[f.Tag]
		if s == nil {
			tags[f.Tag] = &span{start: int64(f.Cycle), end: int64(f.Cycle + f.Cost)}
			tagOrder = append(tagOrder, f.Tag)
		} else if e := int64(f.Cycle + f.Cost); e > s.end {
			s.end = e
		}
	}
	for l := 0; l < lanes; l++ {
		if err := emit(ev{Name: "thread_name", Ph: "M", Pid: 0, Tid: l,
			Args: map[string]any{"name": fmt.Sprintf("issue slot %d", l)}}); err != nil {
			return err
		}
	}
	// Async spans: one per tag, first-seen order, ids stable across runs.
	for n, tag := range tagOrder {
		s := tags[tag]
		id := fmt.Sprintf("tag-%d", n)
		name := "tag " + j.renderTag(tag)
		if err := emit(ev{Name: name, Cat: "tag", Ph: "b", Ts: s.start, Pid: 0, Tid: 0, ID: id}); err != nil {
			return err
		}
		if err := emit(ev{Name: name, Cat: "tag", Ph: "e", Ts: s.end, Pid: 0, Tid: 0, ID: id}); err != nil {
			return err
		}
	}
	// Instant events for parks and faults, on the lane-0 track.
	for i := range j.Parks {
		p := &j.Parks[i]
		if err := emit(ev{Name: "park " + j.label(p.Node), Cat: "match", Ph: "i",
			Ts: int64(p.Cycle), Pid: 0, Tid: 0, S: "t",
			Args: map[string]any{"tag": j.renderTag(p.Tag), "port": p.Port}}); err != nil {
			return err
		}
	}
	for i := range j.Faults {
		f := &j.Faults[i]
		if err := emit(ev{Name: "fault " + f.Class, Cat: "fault", Ph: "i",
			Ts: int64(f.Cycle), Pid: 0, Tid: 0, S: "g"}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// kind returns node's operator kind for event categorization.
func (j *Journal) kind(node int32) string {
	if int(node) < len(j.Nodes) {
		return j.Nodes[node].Kind
	}
	return "unknown"
}
