package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// EventType classifies stream events.
type EventType string

// Event types. The NDJSON stream additionally contains "meta" lines
// (one per node, written by WriteMeta before the run) and a "summary"
// line (the full Report, written by WriteSummary after it).
const (
	// EvFire is one operator firing.
	EvFire EventType = "fire"
	// EvWait is a token waiting in the matching store for its partner
	// operands.
	EvWait EventType = "wait"
	// EvFault is an injected fault (see internal/fault and
	// ROBUSTNESS.md); Detail carries the fault class.
	EvFault EventType = "fault"
	// EvAbort is a failed machine check ending the run; Detail carries
	// the check name (see internal/machcheck).
	EvAbort EventType = "abort"
)

// Event is one cycle-stamped occurrence inside an engine.
type Event struct {
	Cycle int       `json:"cycle"`
	Type  EventType `json:"type"`
	Node  int       `json:"node"`
	Kind  string    `json:"kind"`
	Tag   string    `json:"tag,omitempty"`
	// Cost is the firing's duration in cycles (fire events only): 1 for
	// ordinary operators, the split-phase latency for memory operations.
	Cost int `json:"cost,omitempty"`
	// Detail carries the fault class (fault events) or the failed check
	// name (abort events).
	Detail string `json:"detail,omitempty"`
}

// Sink receives the event stream. Emit is called once per event, in
// engine order, from the engine's goroutine.
type Sink interface {
	Emit(Event)
}

// MultiSink fans every event out to several sinks in order.
type MultiSink []Sink

// Emit implements Sink.
func (m MultiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// RingSink keeps the last N events in memory — the cheap always-on
// flight recorder for postmortems.
type RingSink struct {
	buf   []Event
	next  int
	total int
}

// NewRingSink makes a ring holding the last n events. Non-positive
// capacities are rejected: a ring that silently clamped to one event
// would drop almost the entire stream while looking configured.
func NewRingSink(n int) (*RingSink, error) {
	if n < 1 {
		return nil, fmt.Errorf("obs: ring sink capacity must be positive, got %d", n)
	}
	return &RingSink{buf: make([]Event, 0, n)}, nil
}

// Emit implements Sink.
func (r *RingSink) Emit(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.total++
}

// Total returns how many events were emitted over the run (including
// those that have fallen out of the ring).
func (r *RingSink) Total() int { return r.total }

// Events returns the retained events, oldest first.
func (r *RingSink) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// NDJSONSink streams events as newline-delimited JSON, one event per
// line. The first write error is retained and stops further output.
type NDJSONSink struct {
	enc *json.Encoder
	err error
}

// NewNDJSONSink wraps w.
func NewNDJSONSink(w io.Writer) *NDJSONSink { return &NDJSONSink{enc: json.NewEncoder(w)} }

// Emit implements Sink.
func (s *NDJSONSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(e)
}

// Err returns the first write error, if any.
func (s *NDJSONSink) Err() error { return s.err }

// TraceSink renders fire events in the machine's historical execution
// trace format, one line per firing:
//
//	cycle 12: d5: binop + [tag 0.1]
//
// Labels must be the per-node diagnostic labels (NodeMeta.Label). Wait
// events are not traced, keeping the output byte-compatible with the
// pre-obs `ctdf run -trace` format (golden-tested in internal/machine).
type TraceSink struct {
	W      io.Writer
	Labels []string
}

// Emit implements Sink.
func (s *TraceSink) Emit(e Event) {
	if e.Type != EvFire {
		return
	}
	fmt.Fprintf(s.W, "cycle %d: %s [tag %s]\n", e.Cycle, s.Labels[e.Node], e.Tag)
}

// metaLine and summaryLine are the non-event NDJSON stream records.
type metaLine struct {
	Type EventType `json:"type"`
	NodeMeta
}

type summaryLine struct {
	Type   EventType `json:"type"`
	Report *Report   `json:"report"`
}

// Stream record types for the non-event NDJSON lines.
const (
	EvMeta    EventType = "meta"
	EvSummary EventType = "summary"
)

// WriteMeta writes one "meta" NDJSON line per node — the stream header
// that makes an event file self-describing.
func WriteMeta(w io.Writer, meta []NodeMeta) error {
	enc := json.NewEncoder(w)
	for _, m := range meta {
		if err := enc.Encode(metaLine{Type: EvMeta, NodeMeta: m}); err != nil {
			return err
		}
	}
	return nil
}

// WriteSummary writes the report as a single trailing "summary" NDJSON
// line.
func WriteSummary(w io.Writer, r *Report) error {
	return json.NewEncoder(w).Encode(summaryLine{Type: EvSummary, Report: r})
}
