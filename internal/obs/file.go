package obs

import (
	"bufio"
	"compress/gzip"
	"io"
	"os"
)

// CreateStream opens path for writing an NDJSON stream (events or
// journal lines), transparently gzip-compressing when the path ends in
// ".gz". The returned WriteCloser must be closed to flush; the gzip
// header is written with a zero modification time, so compressed output
// is byte-deterministic.
func CreateStream(path string) (io.WriteCloser, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if !isGzipPath(path) {
		return f, nil
	}
	return &gzipStream{gz: gzip.NewWriter(f), f: f}, nil
}

// OpenStream opens path for reading an NDJSON stream, transparently
// decompressing gzip input. Detection is by content (the two gzip magic
// bytes), not by file name, so renamed journals still load.
func OpenStream(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	magic, err := br.Peek(2)
	if err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, err
		}
		return &gunzipStream{gz: gz, f: f}, nil
	}
	return &plainStream{r: br, f: f}, nil
}

func isGzipPath(path string) bool {
	return len(path) > 3 && path[len(path)-3:] == ".gz"
}

type gzipStream struct {
	gz *gzip.Writer
	f  *os.File
}

func (s *gzipStream) Write(p []byte) (int, error) { return s.gz.Write(p) }

func (s *gzipStream) Close() error {
	gzErr := s.gz.Close()
	if err := s.f.Close(); err != nil {
		return err
	}
	return gzErr
}

type gunzipStream struct {
	gz *gzip.Reader
	f  *os.File
}

func (s *gunzipStream) Read(p []byte) (int, error) { return s.gz.Read(p) }

func (s *gunzipStream) Close() error {
	gzErr := s.gz.Close()
	if err := s.f.Close(); err != nil {
		return err
	}
	return gzErr
}

type plainStream struct {
	r *bufio.Reader
	f *os.File
}

func (s *plainStream) Read(p []byte) (int, error) { return s.r.Read(p) }

func (s *plainStream) Close() error { return s.f.Close() }
