package obs

import (
	"fmt"
	"sort"
	"strings"
)

// NodeStats is the per-node counter block of one observed run. Counter
// semantics (see OBSERVABILITY.md):
//
//   - Firings: operator activations issued.
//   - Consumed / Emitted: tokens matched into firings / placed on arcs.
//   - MatchWaits: tokens that had to wait in the matching store for
//     partner operands (the paper's synchronization cost, §5).
//   - MemStallCycles: cycles beyond the issue cycle spent waiting on
//     split-phase memory (cost−1 summed over memory firings, §2.2).
type NodeStats struct {
	Meta           NodeMeta `json:"meta"`
	Firings        int64    `json:"firings"`
	Consumed       int64    `json:"consumed"`
	Emitted        int64    `json:"emitted"`
	MatchWaits     int64    `json:"matchWaits"`
	MemStallCycles int64    `json:"memStallCycles"`
	// LamportMax is the node's maximum Lamport logical timestamp
	// (channel-engine runs with clock tracking; 0 elsewhere) — the causal
	// depth of the node's deepest firing.
	LamportMax int64 `json:"lamportMax,omitempty"`
}

// KindStats aggregates NodeStats over an operator kind.
type KindStats struct {
	Kind           string `json:"kind"`
	Nodes          int    `json:"nodes"`
	Firings        int64  `json:"firings"`
	Consumed       int64  `json:"consumed"`
	Emitted        int64  `json:"emitted"`
	MatchWaits     int64  `json:"matchWaits"`
	MemStallCycles int64  `json:"memStallCycles"`
}

// HistBin is one bin of the parallelism histogram: Cycles cycles issued
// exactly Parallelism operations.
type HistBin struct {
	Parallelism int `json:"parallelism"`
	Cycles      int `json:"cycles"`
}

// Report is the machine-readable outcome of one observed run.
type Report struct {
	// Engine names the engine that produced the run ("machine",
	// "channels").
	Engine string `json:"engine,omitempty"`
	// Schema optionally names the translation configuration, for diff
	// reports.
	Schema string `json:"schema,omitempty"`
	// Cycles is the run's total execution time (0 for engines without a
	// clock).
	Cycles int `json:"cycles"`
	// Ops is the total number of firings (sum of per-node Firings).
	Ops int64 `json:"ops"`
	// MatchWaits and MemStallCycles are suite-wide sums of the per-node
	// counters.
	MatchWaits     int64 `json:"matchWaits"`
	MemStallCycles int64 `json:"memStallCycles"`
	// Nodes holds the per-node counters, indexed by node id.
	Nodes []NodeStats `json:"nodes"`
	// ByKind aggregates Nodes per operator kind, busiest first.
	ByKind []KindStats `json:"byKind"`
	// CriticalPath is the longest dependence chain of the firing DAG
	// (nil unless Options.CriticalPath was set).
	CriticalPath *CriticalPath `json:"criticalPath,omitempty"`
	// Histogram distributes cycles over parallelism levels (from the
	// machine's per-cycle issue profile; nil for engines without one).
	Histogram []HistBin `json:"parallelismHistogram,omitempty"`
}

// Report assembles the run's report. cycles and profile come from the
// engine's own statistics (pass 0/nil for engines without a clock).
func (c *Collector) Report(cycles int, profile []int) *Report {
	if c == nil {
		return nil
	}
	r := &Report{Cycles: cycles, Nodes: append([]NodeStats(nil), c.nodes...)}
	r.aggregate()
	r.Histogram = histogram(profile)
	r.CriticalPath = c.criticalPath()
	return r
}

// NewCountersReport builds a firing-counts-only report (the shape the
// channel engine produces from NodeCounters): meta must be the graph's
// node metadata, fires the per-node firing counts, and clocks the
// per-node maximum Lamport timestamps (nil when not tracked), all
// indexed by node id.
func NewCountersReport(meta []NodeMeta, fires, clocks []int64) *Report {
	r := &Report{Nodes: make([]NodeStats, len(meta))}
	for i, m := range meta {
		r.Nodes[i] = NodeStats{Meta: m}
		if i < len(fires) {
			r.Nodes[i].Firings = fires[i]
		}
		if i < len(clocks) {
			r.Nodes[i].LamportMax = clocks[i]
		}
	}
	r.aggregate()
	return r
}

// aggregate fills the run totals and the per-kind rollup from Nodes.
func (r *Report) aggregate() {
	byKind := map[string]*KindStats{}
	for _, ns := range r.Nodes {
		r.Ops += ns.Firings
		r.MatchWaits += ns.MatchWaits
		r.MemStallCycles += ns.MemStallCycles
		ks := byKind[ns.Meta.Kind]
		if ks == nil {
			ks = &KindStats{Kind: ns.Meta.Kind}
			byKind[ns.Meta.Kind] = ks
		}
		ks.Nodes++
		ks.Firings += ns.Firings
		ks.Consumed += ns.Consumed
		ks.Emitted += ns.Emitted
		ks.MatchWaits += ns.MatchWaits
		ks.MemStallCycles += ns.MemStallCycles
	}
	for _, ks := range byKind {
		r.ByKind = append(r.ByKind, *ks)
	}
	sort.Slice(r.ByKind, func(i, j int) bool {
		a, b := r.ByKind[i], r.ByKind[j]
		if a.Firings != b.Firings {
			return a.Firings > b.Firings
		}
		return a.Kind < b.Kind
	})
}

// histogram folds the per-cycle issue profile into parallelism bins.
func histogram(profile []int) []HistBin {
	if len(profile) == 0 {
		return nil
	}
	counts := map[int]int{}
	for _, p := range profile {
		counts[p]++
	}
	bins := make([]HistBin, 0, len(counts))
	for p, n := range counts {
		bins = append(bins, HistBin{Parallelism: p, Cycles: n})
	}
	sort.Slice(bins, func(i, j int) bool { return bins[i].Parallelism < bins[j].Parallelism })
	return bins
}

// NodeFirings returns the per-node firing counts, indexed by node id —
// the engine-agnostic shape cross-engine tests compare.
func (r *Report) NodeFirings() []int64 {
	out := make([]int64, len(r.Nodes))
	for i, ns := range r.Nodes {
		out[i] = ns.Firings
	}
	return out
}

// Text renders the report for humans: run totals, the busiest nodes
// (top rows of the per-node table; top <= 0 means all), the per-kind
// aggregation, the parallelism histogram, and the critical path.
func (r *Report) Text(top int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles: %d   ops: %d   match waits: %d   mem stall cycles: %d\n",
		r.Cycles, r.Ops, r.MatchWaits, r.MemStallCycles)

	nodes := append([]NodeStats(nil), r.Nodes...)
	sort.Slice(nodes, func(i, j int) bool {
		a, b := nodes[i], nodes[j]
		if a.Firings != b.Firings {
			return a.Firings > b.Firings
		}
		return a.Meta.Node < b.Meta.Node
	})
	shown := len(nodes)
	if top > 0 && top < shown {
		shown = top
	}
	b.WriteString("\nper-node counters (busiest first):\n")
	fmt.Fprintf(&b, "  %-26s %8s %8s %8s %10s %10s\n", "node", "firings", "in", "out", "waits", "memstall")
	for _, ns := range nodes[:shown] {
		if ns.Firings == 0 && ns.MatchWaits == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-26s %8d %8d %8d %10d %10d\n",
			ns.Meta.Label, ns.Firings, ns.Consumed, ns.Emitted, ns.MatchWaits, ns.MemStallCycles)
	}
	if shown < len(nodes) {
		fmt.Fprintf(&b, "  … %d more nodes\n", len(nodes)-shown)
	}

	b.WriteString("\nby operator kind:\n")
	fmt.Fprintf(&b, "  %-12s %6s %8s %8s %8s %10s %10s\n", "kind", "nodes", "firings", "in", "out", "waits", "memstall")
	for _, ks := range r.ByKind {
		fmt.Fprintf(&b, "  %-12s %6d %8d %8d %8d %10d %10d\n",
			ks.Kind, ks.Nodes, ks.Firings, ks.Consumed, ks.Emitted, ks.MatchWaits, ks.MemStallCycles)
	}

	if len(r.Histogram) > 0 {
		b.WriteString("\nparallelism histogram (ops issued per cycle → cycles):\n")
		for _, bin := range r.Histogram {
			fmt.Fprintf(&b, "  %4d → %6d\n", bin.Parallelism, bin.Cycles)
		}
	}

	if cp := r.CriticalPath; cp != nil {
		b.WriteString("\n" + cp.Text())
	}
	return b.String()
}
