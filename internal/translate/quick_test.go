package translate

import (
	"testing"
	"testing/quick"
	"time"

	"ctdf/internal/cfg"
	"ctdf/internal/chanexec"
	"ctdf/internal/interp"
	"ctdf/internal/machine"
	"ctdf/internal/workloads"
)

// End-to-end property tests driven by testing/quick over generator seeds.

// TestQuickTranslationSoundness: for arbitrary generated programs and any
// schema, machine execution equals sequential interpretation.
func TestQuickTranslationSoundness(t *testing.T) {
	f := func(seed int64, unstructured bool, schemaPick uint8, elim, parReads, parStores bool) bool {
		var w workloads.Workload
		if unstructured {
			w = workloads.RandomUnstructured(seed%4096, 2)
		} else {
			w = workloads.Random(seed%4096, 3, 2)
		}
		g, err := mustBuild(w)
		if err != nil {
			return false
		}
		schema := []Schema{Schema1, Schema2, Schema2Opt, Schema3, Schema3Opt}[int(schemaPick)%5]
		opt := Options{Schema: schema}
		if schema == Schema2 || schema == Schema2Opt {
			opt.EliminateMemory = elim
			opt.ParallelArrayStores = parStores
		}
		if schema != Schema1 {
			opt.ParallelReads = parReads
		}
		res, err := Translate(g, opt)
		if err != nil {
			return false
		}
		want, err := interp.Run(g, interp.Options{})
		if err != nil {
			return false
		}
		out, err := machine.Run(res.Graph, machine.Config{DetectRaces: true})
		if err != nil {
			return false
		}
		return FinalSnapshot(res, out.Store, out.EndValues) == want.Store.Snapshot()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickEngineAgreement: both engines, any seed, identical stores and
// firing counts.
func TestQuickEngineAgreement(t *testing.T) {
	f := func(seed int64, unstructured bool) bool {
		var w workloads.Workload
		if unstructured {
			w = workloads.RandomUnstructured(seed%4096, 2)
		} else {
			w = workloads.Random(seed%4096, 3, 2)
		}
		g, err := mustBuild(w)
		if err != nil {
			return false
		}
		res, err := Translate(g, Options{Schema: Schema2Opt})
		if err != nil {
			return false
		}
		mo, err := machine.Run(res.Graph, machine.Config{})
		if err != nil {
			return false
		}
		// The deadline is the channel engine's deadlock oracle: a graph
		// that wedges would otherwise hang the whole quick.Check rather
		// than fail one seed with a typed error. It bounds idle time, not
		// total runtime — the watchdog re-arms while tokens move, so a
		// slow-but-live run on a loaded host can never be killed by it
		// (see ROBUSTNESS.md, "Known flakes, root-caused").
		co, err := chanexec.Run(res.Graph, chanexec.Config{Deadline: 10 * time.Second})
		if err != nil {
			return false
		}
		return mo.Store.Snapshot() == co.Store.Snapshot() && int64(mo.Stats.Ops) == co.Ops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickProcessorCountIrrelevantToResult: the processor count changes
// timing, never results or total work.
func TestQuickProcessorCountIrrelevantToResult(t *testing.T) {
	f := func(seed int64, procs uint8) bool {
		w := workloads.Random(seed%4096, 3, 2)
		g, err := mustBuild(w)
		if err != nil {
			return false
		}
		res, err := Translate(g, Options{Schema: Schema2})
		if err != nil {
			return false
		}
		ref, err := machine.Run(res.Graph, machine.Config{})
		if err != nil {
			return false
		}
		p := int(procs)%7 + 1
		out, err := machine.Run(res.Graph, machine.Config{Processors: p})
		if err != nil {
			return false
		}
		return out.Store.Snapshot() == ref.Store.Snapshot() && out.Stats.Ops == ref.Stats.Ops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func mustBuild(w workloads.Workload) (*cfg.Graph, error) {
	return cfg.Build(w.Parse())
}
