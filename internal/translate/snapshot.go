package translate

import (
	"ctdf/internal/interp"
)

// FinalSnapshot renders the final program state of an execution: the
// memory store, with §6.1 value-carrying token lines (whose variables
// never touch memory) patched in from the values collected at the end
// node. endValues is indexed like the translation's token universe.
func FinalSnapshot(res *Result, store *interp.Store, endValues []int64) string {
	for i, tok := range res.Universe {
		if v, ok := res.ValueTokens[tok]; ok {
			store.Set(v, endValues[i])
		}
	}
	return store.Snapshot()
}
