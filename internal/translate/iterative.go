package translate

import (
	"sort"

	"ctdf/internal/dfg"
)

// EliminateRedundantSwitches implements the iterative optimization the
// paper sketches at the start of §4 (and credits to an earlier version of
// itself): repeatedly remove every switch whose two outputs are
// immediately merged together again — such a switch imposes an order
// between the predicate and the token for no reason. Eliminating one
// switch can make an enclosing one redundant, so the pass iterates to a
// fixpoint. Dead pure value nodes (typically predicate subexpressions
// whose only consumers were eliminated switches) are cleaned up
// afterwards.
//
// On acyclic control flow this reaches exactly the switch placement of the
// direct §4.2 construction; the loop-bypass part of the direct
// construction is out of its reach (that is the paper's argument for
// building the optimized graph directly). The returned graph is a new
// graph; the input is unchanged. The second result is the number of
// switches eliminated.
func EliminateRedundantSwitches(g *dfg.Graph) (*dfg.Graph, int) {
	m := newMutGraph(g)
	eliminated := 0
	for {
		changed := false
		for _, id := range m.liveIDs() {
			n := m.nodes[id]
			if n == nil || n.Kind != dfg.Switch {
				// The node may have been removed earlier in this sweep.
				continue
			}
			// Both outputs must each feed exactly one arc, into the same
			// merge's single input port.
			t := m.outs[id][0]
			f := m.outs[id][1]
			if len(t) != 1 || len(f) != 1 {
				continue
			}
			mt, mf := t[0], f[0]
			if mt.Node != mf.Node || mt.Port != 0 || mf.Port != 0 {
				continue
			}
			mg := m.nodes[mt.Node]
			if mg.Kind != dfg.Merge || len(m.ins[mt.Node][0]) != 2 {
				continue
			}
			// Rewire: the switch's data source feeds the merge's consumers
			// directly; the control arc is dropped.
			dataSrc := m.ins[id][0][0]
			dummy := m.dummy[[2]arcEnd{dataSrc, {id, 0}}]
			m.removeArcsInto(id)
			consumers := append([]arcEnd(nil), m.outs[mg.ID][0]...)
			m.removeNode(mg.ID)
			m.removeNode(id)
			for _, c := range consumers {
				m.addArc(dataSrc, c)
				m.dummy[[2]arcEnd{dataSrc, c}] = dummy
			}
			eliminated++
			changed = true
		}
		if !changed {
			break
		}
	}
	m.removeDeadPure()
	return m.rebuild(g), eliminated
}

// arcEnd is one endpoint of an arc.
type arcEnd struct {
	Node int
	Port int
}

// mutGraph is a small mutable adjacency view used by graph-to-graph
// passes.
type mutGraph struct {
	nodes map[int]*dfg.Node
	// outs[node][port] / ins[node][port] list opposite endpoints; dummy
	// per arc tracked alongside.
	outs   map[int][][]arcEnd
	ins    map[int][][]arcEnd
	dummy  map[[2]arcEnd]bool
	nextID int
}

// addNode allocates a fresh node in the mutable view and returns its id.
func (m *mutGraph) addNode(n *dfg.Node) int {
	id := m.nextID
	m.nextID++
	n.ID = id
	m.nodes[id] = n
	m.outs[id] = make([][]arcEnd, numOutPorts(n.Kind))
	m.ins[id] = make([][]arcEnd, n.NIns)
	return id
}

func newMutGraph(g *dfg.Graph) *mutGraph {
	m := &mutGraph{
		nodes: map[int]*dfg.Node{},
		outs:  map[int][][]arcEnd{},
		ins:   map[int][][]arcEnd{},
		dummy: map[[2]arcEnd]bool{},
	}
	for _, n := range g.Nodes {
		nn := *n
		m.nodes[n.ID] = &nn
		m.outs[n.ID] = make([][]arcEnd, numOutPorts(n.Kind))
		m.ins[n.ID] = make([][]arcEnd, n.NIns)
		if n.ID >= m.nextID {
			m.nextID = n.ID + 1
		}
	}
	for _, a := range g.Arcs {
		from := arcEnd{a.From, a.FromPort}
		to := arcEnd{a.To, a.ToPort}
		m.outs[a.From][a.FromPort] = append(m.outs[a.From][a.FromPort], to)
		m.ins[a.To][a.ToPort] = append(m.ins[a.To][a.ToPort], from)
		m.dummy[[2]arcEnd{from, to}] = a.Dummy
	}
	return m
}

func numOutPorts(k dfg.Kind) int {
	switch k {
	case dfg.End:
		return 0
	case dfg.Switch, dfg.Load, dfg.LoadIdx:
		return 2
	default:
		return 1
	}
}

func (m *mutGraph) liveIDs() []int {
	ids := make([]int, 0, len(m.nodes))
	for id := range m.nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (m *mutGraph) addArc(from, to arcEnd) {
	m.outs[from.Node][from.Port] = append(m.outs[from.Node][from.Port], to)
	m.ins[to.Node][to.Port] = append(m.ins[to.Node][to.Port], from)
}

func (m *mutGraph) removeArc(from, to arcEnd) {
	m.outs[from.Node][from.Port] = drop(m.outs[from.Node][from.Port], to)
	m.ins[to.Node][to.Port] = drop(m.ins[to.Node][to.Port], from)
}

func drop(xs []arcEnd, x arcEnd) []arcEnd {
	for i, v := range xs {
		if v == x {
			return append(xs[:i:i], xs[i+1:]...)
		}
	}
	return xs
}

func (m *mutGraph) removeArcsInto(id int) {
	for p, srcs := range m.ins[id] {
		for _, s := range append([]arcEnd(nil), srcs...) {
			m.removeArc(s, arcEnd{id, p})
		}
	}
}

func (m *mutGraph) removeArcsOutOf(id int) {
	for p, dsts := range m.outs[id] {
		for _, d := range append([]arcEnd(nil), dsts...) {
			m.removeArc(arcEnd{id, p}, d)
		}
	}
}

func (m *mutGraph) removeNode(id int) {
	m.removeArcsInto(id)
	m.removeArcsOutOf(id)
	delete(m.nodes, id)
	delete(m.outs, id)
	delete(m.ins, id)
}

// removeDeadPure deletes pure value nodes none of whose outputs are
// consumed (constants and arithmetic left over from eliminated predicate
// uses), iterating since removals expose new dead nodes.
func (m *mutGraph) removeDeadPure() {
	for {
		changed := false
		for _, id := range m.liveIDs() {
			n := m.nodes[id]
			switch n.Kind {
			case dfg.Const, dfg.BinOp, dfg.UnOp:
			default:
				continue
			}
			used := false
			for _, dsts := range m.outs[id] {
				if len(dsts) > 0 {
					used = true
					break
				}
			}
			if !used {
				m.removeNode(id)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// rebuild materializes the mutable view as a fresh dfg.Graph with dense
// IDs.
func (m *mutGraph) rebuild(orig *dfg.Graph) *dfg.Graph {
	out := dfg.NewGraph(orig.Prog)
	remap := map[int]int{}
	for _, id := range m.liveIDs() {
		n := m.nodes[id]
		nn := *n
		added := out.Add(&nn)
		remap[id] = added.ID
	}
	for _, id := range m.liveIDs() {
		for p, dsts := range m.outs[id] {
			for _, d := range dsts {
				from := arcEnd{id, p}
				out.Connect(remap[id], p, remap[d.Node], d.Port, m.dummy[[2]arcEnd{from, d}])
			}
		}
	}
	return out
}
