package translate

import (
	"strings"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/chanexec"
	"ctdf/internal/machine"
	"ctdf/internal/workloads"
)

// producerConsumer writes an array in one loop and folds it in a second:
// the §6.3 I-structure case, where the consumer can overlap the producer.
var producerConsumer = workloads.MustByName("producer-consumer")

func TestFindIStructures(t *testing.T) {
	g := cfg.MustBuild(producerConsumer.Parse())
	tg, loops, err := cfg.InsertLoopControl(g)
	if err != nil {
		t.Fatal(err)
	}
	got := FindIStructures(tg, loops)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("FindIStructures = %v, want [a]", got)
	}
}

func TestFindIStructuresRejects(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"read inside storing loop",
			"var i, s\narray a[12]\nstart: i := i + 1\na[i] := 1\ns := s + a[i]\nif i < 10 then goto start else goto end\n"},
		{"two store statements",
			"var i\narray a[12]\na[0] := 5\nstart: i := i + 1\na[i] := 1\nif i < 10 then goto start else goto end\n"},
		{"non-unit stride",
			"var i, j, s\narray a[20]\nwhile i < 16 {\n  a[i] := 1\n  i := i + 2\n}\nwhile j < 16 {\n  s := s + a[j]\n  j := j + 1\n}\n"},
		{"aliased array",
			"var i, j, s\narray a[8]\narray b[8]\nalias a ~ b\nwhile i < 8 {\n  a[i] := 1\n  i := i + 1\n}\nwhile j < 8 {\n  s := s + b[j]\n  j := j + 1\n}\n"},
		{"read not dominated by exit",
			"var i, s, w\narray a[12]\nif w == 0 { s := a[3] }\nstart: i := i + 1\na[i] := 1\nif i < 10 then goto start else goto end\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := workloads.Workload{Name: c.name, Source: c.src}
			g := cfg.MustBuild(w.Parse())
			tg, loops, err := cfg.InsertLoopControl(g)
			if err != nil {
				t.Fatal(err)
			}
			if got := FindIStructures(tg, loops); len(got) != 0 {
				t.Errorf("wrongly accepted: %v", got)
			}
			// Correctness with the option on must hold regardless.
			checkEquivalence(t, w, Options{Schema: Schema2Opt, UseIStructures: true}, nil)
		})
	}
}

func TestIStructureCorrect(t *testing.T) {
	for _, w := range append(workloads.All(), producerConsumer) {
		for _, schema := range []Schema{Schema2, Schema2Opt} {
			t.Run(w.Name+"/"+schema.String(), func(t *testing.T) {
				checkEquivalence(t, w, Options{Schema: schema, UseIStructures: true, EliminateMemory: true}, nil)
			})
		}
	}
}

func TestIStructureGraphHasNoArrayTokens(t *testing.T) {
	g := cfg.MustBuild(producerConsumer.Parse())
	res, err := Translate(g, Options{Schema: Schema2Opt, UseIStructures: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IStructures) != 1 || res.IStructures[0] != "a" {
		t.Fatalf("IStructures = %v", res.IStructures)
	}
	for _, tok := range res.Universe {
		if tok == "a" {
			t.Error("I-structured array must not have an access token")
		}
	}
}

func TestIStructureOverlapsProducerConsumer(t *testing.T) {
	g := cfg.MustBuild(producerConsumer.Parse())
	base, err := Translate(g, Options{Schema: Schema2Opt, EliminateMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	ist, err := Translate(g, Options{Schema: Schema2Opt, EliminateMemory: true, UseIStructures: true})
	if err != nil {
		t.Fatal(err)
	}
	lat := 10
	bo, err := machine.Run(base.Graph, machine.Config{MemLatency: lat})
	if err != nil {
		t.Fatal(err)
	}
	io, err := machine.Run(ist.Graph, machine.Config{MemLatency: lat})
	if err != nil {
		t.Fatal(err)
	}
	if io.Stats.Cycles >= bo.Stats.Cycles {
		t.Errorf("I-structures did not overlap producer and consumer: %d vs %d cycles",
			io.Stats.Cycles, bo.Stats.Cycles)
	}
	if bo.Store.Snapshot() != io.Store.Snapshot() {
		t.Error("I-structures changed the result")
	}
}

func TestIStructureNeverWrittenCell(t *testing.T) {
	// The loop writes a[1..10]; the read of a[12] defers forever.
	w := workloads.Workload{Name: "hole", Source: `
var i, s
array a[16]
start: i := i + 1
a[i] := i
if i < 10 then goto start else goto done
done:
s := a[12]
`}
	g := cfg.MustBuild(w.Parse())
	res, err := Translate(g, Options{Schema: Schema2Opt, UseIStructures: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IStructures) == 0 {
		t.Skip("detection did not accept the array; nothing to test")
	}
	if _, err := machine.Run(res.Graph, machine.Config{}); err == nil || !strings.Contains(err.Error(), "never-written") {
		t.Errorf("machine err = %v, want never-written report", err)
	}
	if _, err := chanexec.Run(res.Graph, chanexec.Config{}); err == nil {
		t.Error("chanexec must also fail on a never-satisfied deferred read")
	}
}

func TestIStructureEnginesAgree(t *testing.T) {
	g := cfg.MustBuild(producerConsumer.Parse())
	res, err := Translate(g, Options{Schema: Schema2Opt, UseIStructures: true, EliminateMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	mo, err := machine.Run(res.Graph, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	co, err := chanexec.Run(res.Graph, chanexec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if mo.Store.Snapshot() != co.Store.Snapshot() {
		t.Error("engines disagree under I-structures")
	}
}

func TestIStructureRejectedForSchema1And3(t *testing.T) {
	g := cfg.MustBuild(producerConsumer.Parse())
	if _, err := Translate(g, Options{Schema: Schema1, UseIStructures: true}); err == nil {
		t.Error("Schema 1 + I-structures must be rejected")
	}
	if _, err := Translate(g, Options{Schema: Schema3, UseIStructures: true}); err == nil {
		t.Error("Schema 3 + I-structures must be rejected")
	}
}
