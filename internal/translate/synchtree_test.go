package translate

import (
	"testing"

	"ctdf/internal/analysis"
	"ctdf/internal/cfg"
	"ctdf/internal/machine"
	"ctdf/internal/workloads"
)

// wideSynchWorkload produces wide synch trees: Schema 3 with the singleton
// cover on a variable aliased to many others collects many tokens per
// operation.
func wideSynchWorkload() (workloads.Workload, *analysis.Cover) {
	w := workloads.Workload{Name: "wide-synch", Source: `
var a, b, c, d, e
alias a ~ e
alias b ~ e
alias c ~ e
alias d ~ e
a := 1
b := 2
c := 3
d := 4
e := a + b + c + d
`}
	as := analysis.NewAliasStructure(w.Parse())
	return w, analysis.SingletonCover(as)
}

func TestLegalizeSynchTrees(t *testing.T) {
	w, cover := wideSynchWorkload()
	g := cfg.MustBuild(w.Parse())
	res, err := Translate(g, Options{Schema: Schema3, Cover: cover})
	if err != nil {
		t.Fatal(err)
	}
	if MaxSynchArity(res.Graph) <= 2 {
		t.Skip("fixture produced no wide synchs; nothing to legalize")
	}
	leg, added := LegalizeSynchTrees(res.Graph)
	if added == 0 {
		t.Fatal("nothing legalized")
	}
	if err := leg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := MaxSynchArity(leg); got > 2 {
		t.Errorf("max synch arity after legalization = %d, want ≤ 2", got)
	}
	// Behavior identical.
	a, err := machine.Run(res.Graph, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := machine.Run(leg, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Store.Snapshot() != b.Store.Snapshot() {
		t.Error("legalization changed semantics")
	}
	// The tree deepens the critical path by at most ⌈log2⌉ of the widest
	// collector per operation — sanity-check it didn't explode.
	if b.Stats.Cycles > a.Stats.Cycles*3 {
		t.Errorf("legalized path %d vs %d cycles: unreasonable growth", b.Stats.Cycles, a.Stats.Cycles)
	}
}

func TestLegalizeSynchTreesAcrossSuite(t *testing.T) {
	for _, w := range workloads.All() {
		g := cfg.MustBuild(w.Parse())
		for _, opt := range []Options{
			{Schema: Schema3},
			{Schema: Schema2Opt, ParallelReads: true},
			{Schema: Schema2Opt, ParallelArrayStores: true},
		} {
			res, err := Translate(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			leg, _ := LegalizeSynchTrees(res.Graph)
			if err := leg.Validate(); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			if MaxSynchArity(leg) > 2 {
				t.Errorf("%s: synch arity %d remains", w.Name, MaxSynchArity(leg))
			}
			a, err := machine.Run(res.Graph, machine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := machine.Run(leg, machine.Config{})
			if err != nil {
				t.Fatalf("%s: legalized graph failed: %v", w.Name, err)
			}
			if a.Store.Snapshot() != b.Store.Snapshot() {
				t.Errorf("%s: legalization changed semantics", w.Name)
			}
		}
	}
}

func TestLegalizeIdempotentOnNarrowGraphs(t *testing.T) {
	g := cfg.MustBuild(workloads.RunningExample.Parse())
	res, err := Translate(g, Options{Schema: Schema2})
	if err != nil {
		t.Fatal(err)
	}
	leg, added := LegalizeSynchTrees(res.Graph)
	if added != 0 {
		t.Errorf("added %d synchs to a graph with none wide", added)
	}
	if leg.NumNodes() != res.Graph.NumNodes() {
		t.Error("node count changed")
	}
}
