package translate

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/workloads"
)

// irreducibleWorkloads exercise footnote 5's code copying: jumps into the
// middle of loops.
var irreducibleWorkloads = []workloads.Workload{
	{
		Name: "irreducible-two-entry",
		Source: `
var x
if x == 0 then goto a else goto b
a:
x := x + 1
goto b2
b:
x := x + 2
goto a2
a2:
if x < 10 then goto a else goto end
b2:
if x < 20 then goto b else goto end
`,
	},
	{
		Name: "irreducible-with-state",
		Source: `
var x, y, s
y := 3
if y > 2 then goto mid else goto top
top:
x := x + 1
s := s + x
mid:
s := s + 10
x := x + 2
if x < 15 then goto top else goto done
done:
y := s
`,
	},
}

func TestIrreducibleProgramsAllSchemas(t *testing.T) {
	for _, w := range irreducibleWorkloads {
		// Premise: the raw CFG really is irreducible.
		g := mustCFG(t, w)
		if _, _, err := cfg.InsertLoopControl(g); err == nil {
			t.Fatalf("%s: fixture is unexpectedly reducible", w.Name)
		}
		for _, opt := range allSchemas {
			t.Run(w.Name+"/"+opt.Schema.String(), func(t *testing.T) {
				checkEquivalence(t, w, opt, nil)
			})
		}
	}
}

func TestIrreducibleReportsCopies(t *testing.T) {
	g := mustCFG(t, irreducibleWorkloads[0])
	res, err := Translate(g, Options{Schema: Schema2})
	if err != nil {
		t.Fatal(err)
	}
	if res.CopiedNodes == 0 {
		t.Error("CopiedNodes should report footnote-5 duplication")
	}
	// Reducible input reports zero.
	g2 := mustCFG(t, workloads.RunningExample)
	res2, err := Translate(g2, Options{Schema: Schema2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CopiedNodes != 0 {
		t.Errorf("CopiedNodes = %d on reducible input", res2.CopiedNodes)
	}
}
