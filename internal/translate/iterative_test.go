package translate

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/machine"
	"ctdf/internal/workloads"
)

// acyclicWorkloads lists the loop-free programs: the iterative algorithm's
// reach equals the direct construction exactly there (§4: the direct
// construction additionally lets tokens bypass loops).
func acyclicWorkloads() []workloads.Workload {
	var out []workloads.Workload
	for _, w := range workloads.All() {
		g := cfg.MustBuild(w.Parse())
		_, loops, err := cfg.InsertLoopControl(g)
		if err != nil || len(loops) > 0 {
			continue
		}
		out = append(out, w)
	}
	return out
}

func TestIterativeEliminationPreservesSemantics(t *testing.T) {
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			g := cfg.MustBuild(w.Parse())
			res, err := Translate(g, Options{Schema: Schema2})
			if err != nil {
				t.Fatal(err)
			}
			simplified, n := EliminateRedundantSwitches(res.Graph)
			if err := simplified.Validate(); err != nil {
				t.Fatalf("simplified graph invalid after %d eliminations: %v", n, err)
			}
			a, err := machine.Run(res.Graph, machine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := machine.Run(simplified, machine.Config{})
			if err != nil {
				t.Fatalf("simplified graph failed: %v", err)
			}
			if a.Store.Snapshot() != b.Store.Snapshot() {
				t.Error("switch elimination changed program semantics")
			}
		})
	}
}

func TestIterativeMatchesDirectOnAcyclic(t *testing.T) {
	// Cross-validation of the §4.2 direct construction against the §4
	// iterative algorithm: on acyclic programs both must arrive at the
	// same number of switches.
	for _, w := range acyclicWorkloads() {
		t.Run(w.Name, func(t *testing.T) {
			g := cfg.MustBuild(w.Parse())
			s2, err := Translate(g, Options{Schema: Schema2})
			if err != nil {
				t.Fatal(err)
			}
			direct, err := Translate(g, Options{Schema: Schema2Opt})
			if err != nil {
				t.Fatal(err)
			}
			iter, n := EliminateRedundantSwitches(s2.Graph)
			got := iter.CountKind(dfg.Switch)
			want := direct.Graph.CountKind(dfg.Switch)
			if got != want {
				t.Errorf("iterative elimination reached %d switches (removed %d), direct construction has %d",
					got, n, want)
			}
		})
	}
}

func TestIterativeEliminatesFig9Switch(t *testing.T) {
	g := cfg.MustBuild(workloads.Fig9Example.Parse())
	res, err := Translate(g, Options{Schema: Schema2})
	if err != nil {
		t.Fatal(err)
	}
	_, n := EliminateRedundantSwitches(res.Graph)
	if n == 0 {
		t.Error("Figure 9's redundant access_x switch was not eliminated")
	}
}

func TestIterativeIdempotent(t *testing.T) {
	g := cfg.MustBuild(workloads.Fig9Example.Parse())
	res, err := Translate(g, Options{Schema: Schema2})
	if err != nil {
		t.Fatal(err)
	}
	once, n1 := EliminateRedundantSwitches(res.Graph)
	twice, n2 := EliminateRedundantSwitches(once)
	if n2 != 0 {
		t.Errorf("second pass eliminated %d more switches after %d (not a fixpoint)", n2, n1)
	}
	if twice.NumNodes() != once.NumNodes() {
		t.Error("second pass changed the graph")
	}
}
