package translate

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/workloads"
)

// Structural "golden" checks against the paper's figures: the shapes of
// the translated graphs, not just their behavior.

// Figure 5: the Schema 1 translation of the running example has exactly
// one access token line — a single switch routes it at the fork, a single
// merge joins it at the label, and all memory operations thread it.
func TestGoldenSchema1RunningExample(t *testing.T) {
	g := cfg.MustBuild(workloads.RunningExample.Parse())
	res, err := Translate(g, Options{Schema: Schema1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Universe) != 1 || res.Universe[0] != SingleTokenName {
		t.Fatalf("universe = %v, want just the single access token", res.Universe)
	}
	st := res.Graph.Stats()
	// y := x+1 loads x; x := x+1 loads x; fork loads x: 3 loads.
	if st.Loads != 3 {
		t.Errorf("loads = %d, want 3", st.Loads)
	}
	// Stores: y and x.
	if st.Stores != 2 {
		t.Errorf("stores = %d, want 2", st.Stores)
	}
	// One switch for the single token at the fork. The label join of
	// Figure 5 is realized by the loop entry's two ports (initial/back)
	// once loop control is inserted, so no separate merge remains.
	if st.Switches != 1 {
		t.Errorf("switches = %d, want 1", st.Switches)
	}
	if st.Merges != 0 {
		t.Errorf("merges = %d, want 0 (the loop entry subsumes the join)", st.Merges)
	}
	if res.Graph.CountKind(dfg.LoopEntry) != 1 || res.Graph.CountKind(dfg.LoopExit) != 1 {
		t.Errorf("loop control = %d/%d, want 1/1",
			res.Graph.CountKind(dfg.LoopEntry), res.Graph.CountKind(dfg.LoopExit))
	}
	// Memory operations are strictly serialized on the single token: no
	// synch trees needed.
	if st.Synchs != 0 {
		t.Errorf("synchs = %d, want 0", st.Synchs)
	}
}

// Figure 8: Schema 2 on the running example — one token per variable, so
// per-variable switches at the fork, merges at the join, and loop
// entry/exit per variable.
func TestGoldenSchema2RunningExample(t *testing.T) {
	g := cfg.MustBuild(workloads.RunningExample.Parse())
	res, err := Translate(g, Options{Schema: Schema2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Universe) != 2 {
		t.Fatalf("universe = %v, want x and y", res.Universe)
	}
	byTok := map[string]map[dfg.Kind]int{}
	for _, n := range res.Graph.Nodes {
		if n.Tok != "" {
			if byTok[n.Tok] == nil {
				byTok[n.Tok] = map[dfg.Kind]int{}
			}
			byTok[n.Tok][n.Kind]++
		}
	}
	for _, v := range []string{"x", "y"} {
		if byTok[v][dfg.Switch] != 1 {
			t.Errorf("switches for %s = %d, want 1", v, byTok[v][dfg.Switch])
		}
		if byTok[v][dfg.Merge] != 0 {
			t.Errorf("merges for %s = %d, want 0 (loop entry subsumes the join)", v, byTok[v][dfg.Merge])
		}
		if byTok[v][dfg.LoopEntry] != 1 || byTok[v][dfg.LoopExit] != 1 {
			t.Errorf("loop control for %s = %d/%d, want 1/1",
				v, byTok[v][dfg.LoopEntry], byTok[v][dfg.LoopExit])
		}
	}
}

// Figure 9(b)→(a): under the optimized construction the access token for
// x flows directly from "x := x+1" to "x := 0" without passing any switch,
// merge, or other statement's operators.
func TestGoldenFig9BypassWiring(t *testing.T) {
	g := cfg.MustBuild(workloads.Fig9Example.Parse())
	res, err := Translate(g, Options{Schema: Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	dg := res.Graph
	// Find the store of the first x assignment (x := x+1) and of the
	// second (x := 0).
	var firstStore, secondStore *dfg.Node
	for _, n := range dg.Nodes {
		if n.Kind == dfg.Store && n.Var == "x" {
			if firstStore == nil {
				firstStore = n
			} else {
				secondStore = n
			}
		}
	}
	if firstStore == nil || secondStore == nil {
		t.Fatal("expected two stores to x")
	}
	// The access-out of the first store must feed the second statement's x
	// operation chain directly: follow the single dummy arc.
	arcs := dg.OutArcs(firstStore.ID, 0)
	foundDirect := false
	for _, a := range arcs {
		to := dg.Nodes[a.To]
		// Acceptable direct targets: the load of x in the second statement
		// (x := 0 has no load — so the store itself) or the store.
		if (to.Kind == dfg.Load || to.Kind == dfg.Store) && to.Var == "x" && to.Stmt == secondStore.Stmt {
			foundDirect = true
		}
		if to.Kind == dfg.Switch {
			t.Errorf("access_x still passes a switch (d%d)", a.To)
		}
	}
	if !foundDirect {
		t.Errorf("access_x does not flow directly between the two x statements; arcs: %v", arcs)
	}
}

// §3: Schema 2's loop control carries the complete token set; §4's
// optimized construction lets unneeded tokens bypass the loop.
func TestGoldenLoopBypass(t *testing.T) {
	w := workloads.Workload{Name: "bypass-loop", Source: `
var x, i
x := 42
while i < 5 {
  i := i + 1
}
x := x + 1
`}
	g := cfg.MustBuild(w.Parse())
	s2, err := Translate(g, Options{Schema: Schema2})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Translate(g, Options{Schema: Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	countLE := func(res *Result, tok string) int {
		c := 0
		for _, n := range res.Graph.Nodes {
			if n.Kind == dfg.LoopEntry && n.Tok == tok {
				c++
			}
		}
		return c
	}
	if countLE(s2, "x") != 1 {
		t.Errorf("Schema 2 must thread x through the loop (complete set), got %d", countLE(s2, "x"))
	}
	if countLE(opt, "x") != 0 {
		t.Errorf("optimized construction must let x bypass the loop, got %d loop entries", countLE(opt, "x"))
	}
	if countLE(opt, "i") != 1 {
		t.Errorf("i is needed by the loop: %d loop entries", countLE(opt, "i"))
	}
}
