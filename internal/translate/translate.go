// Package translate implements the paper's translation schemas from
// control-flow graphs to dataflow graphs:
//
//   - Schema 1 (§2.3): a single access token visits every memory operation
//     in sequence, playing the role of the program counter.
//   - Schema 2 (§3): one access token per variable; independent memory
//     operations proceed in parallel; cyclic intervals get loop entry/exit
//     control.
//   - The optimized direct construction (§4.2): switches are created only
//     where switch placement (Figure 10) demands them and wiring follows
//     the source vectors of Figure 11, so access tokens bypass conditionals
//     and loops that never reference their variables.
//   - Schema 3 (§5): one access token per cover element of an alias
//     structure; a memory operation on x collects the access set C[x]
//     through a synch tree and regenerates it on completion.
//
// The §6 parallelizing transformations — memory-operation elimination for
// unaliased scalars (§6.1), read parallelization (§6.2), and array store
// parallelization across loop iterations (§6.3, Figure 14) — are options
// layered on the same builder.
//
// All schemas share one generic builder: they differ only in the token
// universe, the variable→tokens mapping, and the switch placement. Schema
// 1 is the single-token instance; Schema 2 places a switch at every fork
// for every token (which makes the Figure 11 computation degenerate to
// "tokens follow control-flow edges"); the optimized construction uses
// computed placement; Schema 3 maps variables to access sets.
//
// Map to the paper:
//
//   - translate.go, build.go — the generic schema builder (§2.3, §3, §4.2,
//     §5) and the Options surface selecting schema and transformations.
//   - iterative.go — the iterative redundant-switch elimination §4
//     sketches, cross-checked against the direct construction.
//   - arraypar.go — array store parallelization (§6.3, Figure 14).
//   - istruct.go — I-structure translation for write-once arrays (§6.3).
//   - synchtree.go — synch-tree legalization to two-operand ETS matching
//     (Figure 2).
//   - linked.go — separate compilation with Apply/Param/ProcReturn linkage
//     and per-activation tag frames (§2.2).
//   - snapshot.go — loadable textual graph format and assembly listing.
//
// The effect of each choice here is measurable: run the result under
// ctdf profile (or obs.Compare two runs) to see firing counts, matching
// waits, and the critical path a schema produces — see OBSERVABILITY.md.
package translate

import (
	"fmt"
	"sort"

	"ctdf/internal/analysis"
	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
)

// Schema selects a translation schema.
type Schema int

// Translation schema variants.
const (
	// Schema1 circulates a single access token (sequential semantics).
	Schema1 Schema = iota
	// Schema2 circulates one access token per variable, switched at every
	// fork along control-flow edges.
	Schema2
	// Schema2Opt is the §4.2 direct optimized construction: Schema 2
	// tokens, switches only where needed.
	Schema2Opt
	// Schema3 circulates one access token per cover element (aliasing).
	Schema3
	// Schema3Opt is Schema 3 with optimized switch placement.
	Schema3Opt
)

var schemaNames = map[Schema]string{
	Schema1: "schema1", Schema2: "schema2", Schema2Opt: "schema2-opt",
	Schema3: "schema3", Schema3Opt: "schema3-opt",
}

func (s Schema) String() string { return schemaNames[s] }

// ParseSchema parses a schema name as printed by String.
func ParseSchema(name string) (Schema, error) {
	for s, n := range schemaNames {
		if n == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("translate: unknown schema %q", name)
}

// Options configures a translation.
type Options struct {
	Schema Schema

	// Cover parameterizes Schema 3 (ignored otherwise). Nil selects the
	// singleton cover.
	Cover *analysis.Cover

	// EliminateMemory applies §6.1: unaliased scalars lose their loads and
	// stores; their access tokens carry the values. Valid for Schema2,
	// Schema2Opt.
	EliminateMemory bool

	// ParallelReads applies §6.2 within statements: the loads of a maximal
	// load sequence on a token line receive replicas of the incoming token
	// and their completions are collected by a synch tree.
	ParallelReads bool

	// ParallelArrayStores applies §6.3 (Figure 14) to every loop/array
	// pair that the independence check of FindParallelStores accepts.
	ParallelArrayStores bool

	// UseIStructures applies §6.3's final enhancement to every array the
	// write-once analysis of FindIStructures accepts: its reads and writes
	// drop their access tokens entirely and the memory defers premature
	// reads (I-structure semantics). Valid for Schema2, Schema2Opt.
	UseIStructures bool

	// Optimize selects the post-translation graph-optimizer level
	// (internal/opt): 0 runs no optimizer; 1 runs the full pipeline
	// (switch sinking, merge collapsing, operator fusion, dead-token
	// elimination). The optimizer rewrites Result.Graph in place after
	// Translate returns and records its claims in Result.Opt so the
	// verifier can hold the optimized graph to the schema contract.
	Optimize int
}

// StmtTok identifies one (originating statement, access token) placement
// slot — the key under which the verifier diffs actual switch and merge
// operators against the schema contract.
type StmtTok struct {
	Stmt int
	Tok  string
}

// PassCount is one optimizer pass's rewrite tally.
type PassCount struct {
	Name     string `json:"name"`
	Rewrites int    `json:"rewrites"`
}

// OptCertificate records what the optimizer (internal/opt) did to a
// graph, in the form the verifier checks rather than trusts: per
// placement slot, how many switch and merge operators were removed. Vet
// adjusts the schema contract's expected operator counts by these claims
// and independently recomputes the minimal (§4 optimized) placement to
// confirm each removal was legal — a bogus claim surfaces as a vet
// error, not a silently weakened check.
type OptCertificate struct {
	RemovedSwitches map[StmtTok]int `json:"-"`
	RemovedMerges   map[StmtTok]int `json:"-"`
	// Passes records per-pass rewrite counts in pipeline order (for
	// `ctdf opt -explain` and the experiments).
	Passes []PassCount `json:"passes"`
}

// Rewrites sums the per-pass rewrite counts.
func (c *OptCertificate) Rewrites() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, p := range c.Passes {
		n += p.Rewrites
	}
	return n
}

// SingleTokenName is the access token name used by Schema 1.
const SingleTokenName = "π"

// doneSuffix marks the store-completion token lines introduced by the
// §6.3 transformation.
const doneSuffix = "#done"

// Result bundles the dataflow graph with the intermediate artifacts of
// the translation, for inspection and experiments.
type Result struct {
	Graph *dfg.Graph
	// Options records the translation request that produced the graph, so
	// downstream verifiers (internal/vet) know which schema contract the
	// graph must satisfy. Zero for graphs not built by Translate (loaded
	// from text, linked separate compilation).
	Options Options
	// CFG is the loop-control-transformed control-flow graph the
	// translation ran on.
	CFG   *cfg.Graph
	Loops []cfg.Loop
	// Placement is the switch placement used (for Schema 1/2/3 this is
	// "every token at every fork").
	Placement *analysis.Placement
	// SV holds the source vectors that wired the graph.
	SV *analysis.SourceVectors
	// Universe is the access-token name universe.
	Universe []string
	// TokensOf maps each variable to the tokens its memory operations
	// collect (Schema 3 access sets; identity for Schema 2).
	TokensOf map[string][]string
	// ValueTokens names tokens that carry variable values instead of
	// dummy synchronization payloads (§6.1); maps token name → variable.
	ValueTokens map[string]string
	// ParallelStores lists the (loop entry, array) pairs transformed by
	// §6.3.
	ParallelStores []ParallelStore
	// IStructures lists the arrays given I-structure semantics.
	IStructures []string
	// CopiedNodes is the number of CFG nodes duplicated to make
	// irreducible control flow reducible (paper footnote 5).
	CopiedNodes int
	// Opt is the optimizer's certificate when Options.Optimize > 0 ran
	// (set by internal/opt, nil otherwise).
	Opt *OptCertificate
}

// Translate builds the dataflow graph for prog's CFG under the given
// options.
func Translate(g0 *cfg.Graph, opt Options) (*Result, error) {
	// Footnote 5: irreducible control flow is made reducible by code
	// copying before the interval decomposition.
	g0, copied, err := cfg.MakeReducible(g0)
	if err != nil {
		return nil, err
	}
	g, loops, err := cfg.InsertLoopControl(g0)
	if err != nil {
		return nil, err
	}

	// Token universe and variable→token mapping.
	prog := g.Prog
	tokensOf := map[string][]string{}
	var universe []string
	valueTokens := map[string]string{}
	switch opt.Schema {
	case Schema1:
		universe = []string{SingleTokenName}
		for _, v := range prog.AllNames() {
			tokensOf[v] = []string{SingleTokenName}
		}
		if opt.EliminateMemory {
			return nil, fmt.Errorf("translate: memory elimination requires per-variable tokens (Schema 2)")
		}
	case Schema2, Schema2Opt:
		universe = append(universe, prog.AllNames()...)
		sort.Strings(universe)
		for _, v := range prog.AllNames() {
			tokensOf[v] = []string{v}
		}
		if opt.EliminateMemory {
			as := analysis.NewAliasStructure(prog)
			for _, v := range prog.VarNames() {
				if len(as.Class(v)) == 1 {
					valueTokens[v] = v
				}
			}
		}
	case Schema3, Schema3Opt:
		as := analysis.NewAliasStructure(prog)
		cover := opt.Cover
		if cover == nil {
			cover = analysis.SingletonCover(as)
		}
		if err := cover.Validate(as); err != nil {
			return nil, err
		}
		universe = cover.TokenNames()
		for _, v := range prog.AllNames() {
			tokensOf[v] = cover.AccessSet(as, v)
		}
		if opt.EliminateMemory {
			return nil, fmt.Errorf("translate: memory elimination is not defined for Schema 3 covers")
		}
	default:
		return nil, fmt.Errorf("translate: unknown schema %v", opt.Schema)
	}

	// §6.3: arrays with provably write-once stores and post-loop reads get
	// I-structure semantics — no access token at all.
	istructs := map[string]bool{}
	var istructList []string
	if opt.UseIStructures {
		if opt.Schema != Schema2 && opt.Schema != Schema2Opt {
			return nil, fmt.Errorf("translate: I-structures require per-variable tokens (Schema 2)")
		}
		istructList = FindIStructures(g, loops)
		for _, a := range istructList {
			istructs[a] = true
		}
		universe = removeTokens(universe, istructs)
	}

	// §6.3: find loop/array pairs with provably independent stores, give
	// each a completion token line.
	var pstores []ParallelStore
	if opt.ParallelArrayStores {
		if opt.Schema == Schema1 {
			return nil, fmt.Errorf("translate: array store parallelization requires per-variable tokens")
		}
		for _, ps := range FindParallelStores(g, loops) {
			if istructs[ps.Array] {
				// Already tokenless; Figure 14's token duplication is moot.
				continue
			}
			pstores = append(pstores, ps)
			universe = append(universe, ps.DoneToken())
		}
		sort.Strings(universe)
	}

	need := makeNeed(g, tokensOf, pstores, istructs)

	var placement *analysis.Placement
	switch opt.Schema {
	case Schema2Opt, Schema3Opt:
		cd := analysis.ComputeControlDeps(g)
		need, placement = placeWithLoopControl(g, loops, cd, need)
	default:
		placement = allSwitches(g, universe)
	}

	sv, err := analysis.ComputeSourceVectors(g, loops, universe, need, placement)
	if err != nil {
		return nil, err
	}

	b := &builder{
		g:           g,
		loops:       loops,
		sv:          sv,
		placement:   placement,
		tokensOf:    tokensOf,
		universe:    universe,
		valueTokens: invertValueTokens(valueTokens),
		parReads:    opt.ParallelReads,
		pstores:     indexParallelStores(pstores),
		istructs:    istructs,
		out:         dfg.NewGraph(prog),
	}
	if err := b.build(); err != nil {
		return nil, err
	}
	if err := b.out.Validate(); err != nil {
		return nil, fmt.Errorf("translate: built an invalid graph: %w", err)
	}
	return &Result{
		Graph:          b.out,
		Options:        opt,
		CFG:            g,
		Loops:          loops,
		Placement:      placement,
		SV:             sv,
		Universe:       universe,
		TokensOf:       tokensOf,
		ValueTokens:    invertValueTokens(valueTokens),
		ParallelStores: pstores,
		IStructures:    istructList,
		CopiedNodes:    copied,
	}, nil
}

// removeTokens drops the named tokens from the universe.
func removeTokens(universe []string, drop map[string]bool) []string {
	out := universe[:0:0]
	for _, tok := range universe {
		if !drop[tok] {
			out = append(out, tok)
		}
	}
	return out
}

// makeNeed derives the NeedFunc: a node needs the union of the token sets
// of the variables it references (I-structure arrays have none);
// statements carrying a §6.3-parallelized store additionally need the
// loop's completion token.
func makeNeed(g *cfg.Graph, tokensOf map[string][]string, pstores []ParallelStore, istructs map[string]bool) analysis.NeedFunc {
	doneAt := map[int][]string{}
	for _, ps := range pstores {
		doneAt[ps.StoreStmt] = append(doneAt[ps.StoreStmt], ps.DoneToken())
	}
	return func(id int) []string {
		set := map[string]bool{}
		for v := range g.Refs(id) {
			if istructs[v] {
				continue
			}
			for _, tok := range tokensOf[v] {
				set[tok] = true
			}
		}
		for _, tok := range doneAt[id] {
			set[tok] = true
		}
		out := make([]string, 0, len(set))
		for tok := range set {
			out = append(out, tok)
		}
		sort.Strings(out)
		return out
	}
}

// placeWithLoopControl computes switch placement for the optimized
// schemas. The loop entry/exit statements are themselves users of every
// token that circulates through their loop — a token that must cross a
// back edge (to get its next iteration tag) has to be routed back-or-out
// by every fork between the loop entry and that fork's postdominator, even
// when the token's next real reference lies beyond the postdominator.
// Treating loop control statements as referencing their loop's needed
// tokens makes the Figure 10 algorithm place those switches. Because the
// needed-token set itself grows when new switches appear at in-loop forks,
// placement and loop needs are iterated to a (monotone, hence terminating)
// fixpoint. The returned NeedFunc is the extended one the source-vector
// computation must also see.
func placeWithLoopControl(g *cfg.Graph, loops []cfg.Loop, cd *analysis.ControlDeps, base analysis.NeedFunc) (analysis.NeedFunc, *analysis.Placement) {
	loopNeed := map[int]map[string]bool{}
	extended := func(id int) []string {
		if set, ok := loopNeed[id]; ok {
			merged := map[string]bool{}
			for _, tok := range base(id) {
				merged[tok] = true
			}
			for tok := range set {
				merged[tok] = true
			}
			return sortedTokens(merged)
		}
		return base(id)
	}
	var placement *analysis.Placement
	for {
		placement = analysis.PlaceSwitches(g, cd, extended)
		next := analysis.LoopNeeds(g, loops, base, placement)
		if loopNeedsEqual(loopNeed, next) {
			return extended, placement
		}
		loopNeed = next
	}
}

func loopNeedsEqual(a, b map[int]map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for tok := range av {
			if !bv[tok] {
				return false
			}
		}
	}
	return true
}

// allSwitches is the Schema 1/2/3 placement: every fork switches every
// token, so tokens follow control-flow edges exactly.
func allSwitches(g *cfg.Graph, universe []string) *analysis.Placement {
	p := &analysis.Placement{Needs: map[int]map[string]bool{}}
	for _, n := range g.Nodes {
		if n.Kind != cfg.KindFork {
			continue
		}
		set := map[string]bool{}
		for _, tok := range universe {
			set[tok] = true
		}
		p.Needs[n.ID] = set
	}
	return p
}

// invertValueTokens turns var→token into token→var (they coincide for
// Schema 2 tokens but the indirection keeps the builder honest).
func invertValueTokens(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for v, tok := range m {
		out[tok] = v
	}
	return out
}
