package translate

import (
	"testing"

	"ctdf/internal/analysis"
	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/interp"
	"ctdf/internal/machine"
	"ctdf/internal/workloads"
)

// --- Aliasing (§5) ---

// legalBindings enumerates a few legal bindings for the paper's X~Z, Y~Z
// alias structure.
func fortranBindings() []interp.Binding {
	return []interp.Binding{
		nil,                  // all distinct
		{"x": "x", "z": "x"}, // CALL F(A, B, A)
		{"y": "y", "z": "y"}, // CALL F(C, D, D)
	}
}

func TestSchema3CorrectUnderEveryBinding(t *testing.T) {
	covers := func(prog *analysis.AliasStructure) map[string]*analysis.Cover {
		return map[string]*analysis.Cover{
			"singleton":  analysis.SingletonCover(prog),
			"class":      analysis.ClassCover(prog),
			"monolithic": analysis.MonolithicCover(prog),
		}
	}
	for _, w := range []workloads.Workload{workloads.FortranAlias} {
		prog := w.Parse()
		as := analysis.NewAliasStructure(prog)
		for name, cover := range covers(as) {
			for _, schema := range []Schema{Schema3, Schema3Opt} {
				for bi, b := range fortranBindings() {
					t.Run(w.Name+"/"+schema.String()+"/"+name, func(t *testing.T) {
						checkEquivalence(t, w, Options{Schema: schema, Cover: cover}, b)
						_ = bi
					})
				}
			}
		}
	}
}

func TestAliasedWorkloadsAllBindings(t *testing.T) {
	cases := []struct {
		w        workloads.Workload
		bindings []interp.Binding
	}{
		{workloads.MustByName("aliased-swap"), fortranBindings()},                             // aliased-swap (x~z, y~z)
		{workloads.MustByName("aliased-arrays"), []interp.Binding{nil, {"p": "p", "q": "p"}}}, // aliased-arrays
	}
	for _, c := range cases {
		for _, b := range c.bindings {
			for _, schema := range []Schema{Schema3, Schema3Opt} {
				t.Run(c.w.Name+"/"+schema.String(), func(t *testing.T) {
					checkEquivalence(t, c.w, Options{Schema: schema}, b)
				})
			}
		}
	}
}

func TestRandomAliasedPrograms(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		w := workloads.RandomAliased(seed, 3, 2)
		bindings := []interp.Binding{nil, {"v0": "v0", "v1": "v0"}}
		for _, b := range bindings {
			t.Run(w.Name, func(t *testing.T) {
				checkEquivalence(t, w, Options{Schema: Schema3}, b)
				checkEquivalence(t, w, Options{Schema: Schema3Opt}, b)
			})
		}
	}
}

func TestSchema2RejectsNothingButSchema3HandlesAliases(t *testing.T) {
	// Schema 2 assumes no aliasing (§3); under a sharing binding it may
	// produce wrong answers — that is exactly why Schema 3 exists. Verify
	// Schema 3 with the class cover gets the aliased case right where the
	// test matters: z's final value must reflect the x~z sharing.
	w := workloads.FortranAlias
	b := interp.Binding{"x": "x", "z": "x"}
	checkEquivalence(t, w, Options{Schema: Schema3, Cover: nil}, b)
}

// --- Memory elimination (§6.1) ---

func TestMemoryEliminationCorrect(t *testing.T) {
	for _, w := range workloads.All() {
		for _, schema := range []Schema{Schema2, Schema2Opt} {
			t.Run(w.Name+"/"+schema.String(), func(t *testing.T) {
				checkEquivalence(t, w, Options{Schema: schema, EliminateMemory: true}, nil)
			})
		}
	}
}

func TestMemoryEliminationRemovesScalarOps(t *testing.T) {
	// In an alias-free scalar program every load and store disappears
	// (§6.1: "memory operations on scalars can be eliminated completely").
	w := workloads.MustByName("fib-iterative") // fib-iterative: scalars only
	g := cfg.MustBuild(w.Parse())
	plain, err := Translate(g, Options{Schema: Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	elim, err := Translate(g, Options{Schema: Schema2Opt, EliminateMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	ps, es := plain.Graph.Stats(), elim.Graph.Stats()
	if ps.Loads == 0 || ps.Stores == 0 {
		t.Fatalf("baseline has no memory ops to eliminate (loads=%d stores=%d)", ps.Loads, ps.Stores)
	}
	if es.Loads != 0 || es.Stores != 0 {
		t.Errorf("after elimination: loads=%d stores=%d, want 0/0", es.Loads, es.Stores)
	}
}

func TestMemoryEliminationKeepsAliasedAndArrayOps(t *testing.T) {
	w := workloads.MustByName("aliased-swap") // aliased-swap
	g := cfg.MustBuild(w.Parse())
	res, err := Translate(g, Options{Schema: Schema2, EliminateMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Graph.Stats()
	if s.Loads == 0 && s.Stores == 0 {
		t.Error("aliased variables must keep their memory operations")
	}
	if len(res.ValueTokens) == 0 {
		t.Error("the unaliased scalar t should still have been eliminated")
	}
	for tok := range res.ValueTokens {
		if tok == "x" || tok == "y" || tok == "z" {
			t.Errorf("aliased variable %s must not be value-eliminated", tok)
		}
	}
}

func TestMemoryEliminationRejectedForSchema1And3(t *testing.T) {
	g := cfg.MustBuild(workloads.RunningExample.Parse())
	if _, err := Translate(g, Options{Schema: Schema1, EliminateMemory: true}); err == nil {
		t.Error("Schema 1 + elimination must be rejected")
	}
	if _, err := Translate(g, Options{Schema: Schema3, EliminateMemory: true}); err == nil {
		t.Error("Schema 3 + elimination must be rejected")
	}
}

// --- Read parallelization (§6.2) ---

func TestParallelReadsCorrect(t *testing.T) {
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			checkEquivalence(t, w, Options{Schema: Schema2Opt, ParallelReads: true}, nil)
			checkEquivalence(t, w, Options{Schema: Schema3, ParallelReads: true}, nil)
		})
	}
}

func TestParallelReadsShortenReadChains(t *testing.T) {
	// read-heavy: 8 loads of the same array in one statement. Sequential
	// threading costs ~8·L on the access line; replicated reads cost ~L.
	w := workloads.MustByName("read-heavy")
	g := cfg.MustBuild(w.Parse())
	seq, err := Translate(g, Options{Schema: Schema2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Translate(g, Options{Schema: Schema2, ParallelReads: true})
	if err != nil {
		t.Fatal(err)
	}
	lat := 8
	so, err := machine.Run(seq.Graph, machine.Config{MemLatency: lat})
	if err != nil {
		t.Fatal(err)
	}
	po, err := machine.Run(par.Graph, machine.Config{MemLatency: lat})
	if err != nil {
		t.Fatal(err)
	}
	if po.Stats.Cycles >= so.Stats.Cycles {
		t.Errorf("parallel reads did not shorten the critical path: %d vs %d cycles",
			po.Stats.Cycles, so.Stats.Cycles)
	}
	// A synch tree collects the replicated reads.
	if par.Graph.CountKind(dfg.Synch) == 0 {
		t.Error("expected synch trees collecting parallel read completions")
	}
}

// --- Array store parallelization (§6.3, Figure 14) ---

func TestParallelArrayStoresCorrect(t *testing.T) {
	for _, w := range workloads.All() {
		for _, schema := range []Schema{Schema2, Schema2Opt} {
			t.Run(w.Name+"/"+schema.String(), func(t *testing.T) {
				checkEquivalence(t, w, Options{Schema: schema, ParallelArrayStores: true}, nil)
			})
		}
	}
}

func TestFindParallelStoresOnFig14(t *testing.T) {
	g := cfg.MustBuild(workloads.Fig14ArrayLoop.Parse())
	tg, loops, err := cfg.InsertLoopControl(g)
	if err != nil {
		t.Fatal(err)
	}
	ps := FindParallelStores(tg, loops)
	if len(ps) != 1 {
		t.Fatalf("found %d parallel stores, want 1", len(ps))
	}
	if ps[0].Array != "x" || ps[0].IndexVar != "i" {
		t.Errorf("found %+v, want array x indexed by i", ps[0])
	}
}

func TestFindParallelStoresRejectsDependent(t *testing.T) {
	cases := []string{
		// Read of the array in the loop.
		"var i\narray x[12]\nstart: i := i + 1\nx[i] := x[i-1]\nif i < 10 then goto start else goto end\n",
		// Index is not an induction variable.
		"var i, j\narray x[12]\nstart: i := i + 1\nx[j] := 1\nif i < 10 then goto start else goto end\n",
		// Induction variable updated twice.
		"var i\narray x[30]\nstart: i := i + 1\ni := i + 1\nx[i] := 1\nif i < 20 then goto start else goto end\n",
		// Conditional induction update: may repeat an index.
		"var i, w\narray x[12]\nstart: if w == 0 { i := i + 1 }\nx[i] := 1\nw := w + 1\nif w < 10 then goto start else goto end\n",
	}
	for _, src := range cases {
		w := workloads.Workload{Name: "dep", Source: src}
		g := cfg.MustBuild(w.Parse())
		tg, loops, err := cfg.InsertLoopControl(g)
		if err != nil {
			t.Fatal(err)
		}
		if ps := FindParallelStores(tg, loops); len(ps) != 0 {
			t.Errorf("dependent loop %q wrongly accepted: %+v", src, ps)
		}
		// And translation with the option on must still be correct.
		checkEquivalence(t, w, Options{Schema: Schema2, ParallelArrayStores: true}, nil)
	}
}

func TestParallelStoresOverlapInTime(t *testing.T) {
	// With store latency L ≫ 1, the sequential loop needs ≥ N·L cycles for
	// N stores; the parallelized loop pipelines them. Memory elimination
	// (§6.1) is applied to both sides so the induction variable's own
	// loads/stores do not dominate the iteration time — the paper's
	// transformations are designed to compose.
	g := cfg.MustBuild(workloads.Fig14ArrayLoop.Parse())
	seq, err := Translate(g, Options{Schema: Schema2Opt, EliminateMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Translate(g, Options{Schema: Schema2Opt, EliminateMemory: true, ParallelArrayStores: true})
	if err != nil {
		t.Fatal(err)
	}
	lat := 20
	so, err := machine.Run(seq.Graph, machine.Config{MemLatency: lat})
	if err != nil {
		t.Fatal(err)
	}
	po, err := machine.Run(par.Graph, machine.Config{MemLatency: lat, DetectRaces: true})
	if err != nil {
		t.Fatal(err)
	}
	n := 10
	if so.Stats.Cycles < n*lat {
		t.Errorf("sequential stores should cost at least N·L = %d cycles, got %d", n*lat, so.Stats.Cycles)
	}
	if po.Stats.Cycles >= so.Stats.Cycles {
		t.Errorf("parallelized stores not faster: %d vs %d cycles", po.Stats.Cycles, so.Stats.Cycles)
	}
}

// --- Composition of all §6 transformations ---

func TestAllTransformsComposed(t *testing.T) {
	opt := Options{
		Schema:              Schema2Opt,
		EliminateMemory:     true,
		ParallelReads:       true,
		ParallelArrayStores: true,
	}
	for _, w := range workloads.All() {
		t.Run(w.Name, func(t *testing.T) {
			checkEquivalence(t, w, opt, nil)
		})
	}
	for seed := int64(30); seed <= 45; seed++ {
		w := workloads.Random(seed, 4, 2)
		t.Run(w.Name, func(t *testing.T) {
			checkEquivalence(t, w, opt, nil)
		})
	}
}

// --- Determinacy ---

func TestDeterminacyUnderRandomScheduling(t *testing.T) {
	// Dataflow execution must produce the same final state no matter the
	// issue order (the determinacy property the schemas rely on).
	for _, w := range []workloads.Workload{workloads.RunningExample, workloads.MustByName("nested-loops"), workloads.MustByName("matmul-2x2-flat")} {
		g := cfg.MustBuild(w.Parse())
		for _, opt := range allSchemas {
			res, err := Translate(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			base, err := machine.Run(res.Graph, machine.Config{})
			if err != nil {
				t.Fatal(err)
			}
			want := base.Store.Snapshot()
			for seed := int64(1); seed <= 5; seed++ {
				out, err := machine.Run(res.Graph, machine.Config{RandomSeed: seed, Processors: 2})
				if err != nil {
					t.Fatalf("%s/%v seed %d: %v", w.Name, opt.Schema, seed, err)
				}
				if got := out.Store.Snapshot(); got != want {
					t.Errorf("%s/%v seed %d: nondeterministic result", w.Name, opt.Schema, seed)
				}
			}
		}
	}
}
