package translate

import (
	"ctdf/internal/cfg"
	"ctdf/internal/lang"
)

// ParallelStore describes one loop/array pair to which the §6.3
// transformation (Figure 14) applies: the stores of successive iterations
// are independent, so each iteration's store receives a replica of the
// array's access token (which passes to the next iteration immediately)
// while store completions accumulate on a separate completion line that
// downstream consumers synchronize with.
type ParallelStore struct {
	// Entry is the loop-entry CFG node of the loop.
	Entry int
	// Array is the array variable whose stores are parallelized.
	Array string
	// StoreStmt is the CFG assignment performing the store.
	StoreStmt int
	// IndexVar is the induction variable indexing the store.
	IndexVar string
	// Exits are the loop-exit CFG nodes where the completion line rejoins
	// the access line.
	Exits []int
}

// DoneToken names the completion token line of this transformation.
func (ps ParallelStore) DoneToken() string { return ps.Array + doneSuffix }

func (ps ParallelStore) loopHasExit(id int) bool {
	for _, x := range ps.Exits {
		if x == id {
			return true
		}
	}
	return false
}

// FindParallelStores applies the "standard disambiguation" of §6.3 in its
// simplest classical form — stores indexed by a strict induction variable
// are independent across iterations. A loop/array pair (L, x) qualifies
// when:
//
//   - exactly one statement in L's body assigns to x, with index
//     expression exactly an induction variable v;
//   - no statement in L's body reads x;
//   - v is a scalar assigned exactly once in the body, as v := v + c or
//     v := v - c with constant c ≠ 0, and that update dominates every
//     back edge (so v strictly changes every iteration);
//   - neither x nor v has aliases;
//   - the loop has at least one exit (always true after loop insertion).
//
// The paper leaves the analysis open ("standard disambiguation techniques
// such as subscript analysis can be applied"); this implements the classic
// a[i], i := i+c case of its Figure 14 example.
func FindParallelStores(g *cfg.Graph, loops []cfg.Loop) []ParallelStore {
	aliased := map[string]bool{}
	for _, al := range g.Prog.Aliases {
		aliased[al.A] = true
		aliased[al.B] = true
	}
	dom := cfg.Dominators(g)

	var out []ParallelStore
	for _, l := range loops {
		// Gather per-array store statements and read flags, and per-scalar
		// assignment statistics, over the loop body.
		arrayStores := map[string][]int{}
		arrayRead := map[string]bool{}
		scalarAssigns := map[string][]int{}
		for _, id := range sortedIntKeys(l.Body) {
			n := g.Nodes[id]
			for v := range g.ReadSet(id) {
				if g.Prog.IsArray(v) {
					arrayRead[v] = true
				}
			}
			if n.Kind != cfg.KindAssign {
				continue
			}
			if n.TargetIndex != nil {
				arrayStores[n.Target] = append(arrayStores[n.Target], id)
			} else {
				scalarAssigns[n.Target] = append(scalarAssigns[n.Target], id)
			}
		}

		le := g.Nodes[l.Entry]
		for _, arr := range sortedTokens(arrayStores) {
			stores := arrayStores[arr]
			if len(stores) != 1 || arrayRead[arr] || aliased[arr] {
				continue
			}
			st := g.Nodes[stores[0]]
			iv, ok := st.TargetIndex.(*lang.VarRef)
			if !ok {
				continue
			}
			v := iv.Name
			if aliased[v] {
				continue
			}
			assigns := scalarAssigns[v]
			if len(assigns) != 1 {
				continue
			}
			if !isInductionUpdate(g.Nodes[assigns[0]], v) {
				continue
			}
			// The update must run every iteration: it dominates every back
			// edge source.
			everyIter := true
			for back := range le.BackPreds {
				if !dom.Dominates(assigns[0], back) {
					everyIter = false
					break
				}
			}
			if !everyIter {
				continue
			}
			out = append(out, ParallelStore{
				Entry:     l.Entry,
				Array:     arr,
				StoreStmt: stores[0],
				IndexVar:  v,
				Exits:     append([]int(nil), l.Exits...),
			})
		}
	}
	return out
}

// isInductionUpdate reports whether assignment node n is v := v + c or
// v := v - c for a nonzero constant c.
func isInductionUpdate(n *cfg.Node, v string) bool {
	if n.Target != v || n.TargetIndex != nil {
		return false
	}
	be, ok := n.RHS.(*lang.BinExpr)
	if !ok || (be.Op != lang.OpAdd && be.Op != lang.OpSub) {
		return false
	}
	vr, ok := be.L.(*lang.VarRef)
	if !ok || vr.Name != v {
		// Also accept c + v.
		if be.Op != lang.OpAdd {
			return false
		}
		c, okc := be.L.(*lang.IntLit)
		vr2, okv := be.R.(*lang.VarRef)
		return okc && okv && vr2.Name == v && c.Value != 0
	}
	c, ok := be.R.(*lang.IntLit)
	return ok && c.Value != 0
}

func sortedIntKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
