package translate

import (
	"fmt"
	"sort"

	"ctdf/internal/analysis"
	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/lang"
)

// LinkedResult is the outcome of separate compilation: one dataflow graph
// in which every procedure body appears once, call sites are Apply nodes,
// and each dynamic call executes the shared body under a fresh activation
// frame (paper §2.2: "each invocation of a procedure ... gets an
// activation context").
type LinkedResult struct {
	Graph *dfg.Graph
	// MainUniverse is the main unit's access-token universe; the graph's
	// end node collects it.
	MainUniverse []string
	// ProcUniverse maps each procedure to its token universe (formals plus
	// the globals it may touch, transitively).
	ProcUniverse map[string][]string
	// ValueTokens is always empty in linked mode (the §6 transformations
	// are not applied); present so FinalSnapshot-style helpers compose.
	ValueTokens map[string]string
}

// TranslateLinked compiles prog with separate procedure compilation: each
// procedure body is translated once — under the optimized construction
// with the alias structure its call sites induce (DeriveAliasStructures) —
// and linked to its call sites with Apply/Param/ProcReturn nodes. The §6
// transformations do not apply in this mode.
func TranslateLinked(prog *lang.Program) (*LinkedResult, error) {
	if len(prog.Procs()) == 0 {
		return nil, fmt.Errorf("translate: no procedures to compile separately")
	}
	derived, err := analysis.DeriveAliasStructures(prog)
	if err != nil {
		return nil, err
	}
	globals := map[string]bool{}
	for _, n := range prog.AllNames() {
		globals[n] = true
	}

	// Only procedures reachable from the main body are compiled (an
	// uncalled body would have no call sites to feed its Param nodes).
	called := map[string]bool{}
	var markCalled func(stmts []lang.Stmt)
	byName := map[string]*lang.ProcDecl{}
	procsList := prog.Procs()
	for i := range procsList {
		byName[procsList[i].Name] = &procsList[i]
	}
	markCalled = func(stmts []lang.Stmt) {
		for _, s := range stmts {
			switch x := s.(type) {
			case *lang.CallStmt:
				if !called[x.Proc] {
					called[x.Proc] = true
					markCalled(byName[x.Proc].Body)
				}
			case *lang.If:
				markCalled(x.Then)
				markCalled(x.Else)
			case *lang.While:
				markCalled(x.Body)
			}
		}
	}
	markCalled(prog.Body)
	if len(called) == 0 {
		return nil, fmt.Errorf("translate: no procedure is ever called")
	}

	// Per-unit CFGs ("" = main).
	units := map[string]*cfg.Graph{}
	order := []string{""}
	g, err := cfg.BuildSeparate(prog, prog.Body)
	if err != nil {
		return nil, err
	}
	units[""] = g
	for _, pr := range prog.Procs() {
		if !called[pr.Name] {
			continue
		}
		pg, err := cfg.BuildSeparate(prog, pr.Body)
		if err != nil {
			return nil, fmt.Errorf("translate: procedure %s: %w", pr.Name, err)
		}
		units[pr.Name] = pg
		order = append(order, pr.Name)
	}

	// Universes: formals plus transitively touched globals; the call graph
	// is acyclic, so iterate to a fixpoint.
	universe := map[string]map[string]bool{}
	for name, ug := range units {
		set := map[string]bool{}
		for _, f := range procParams(prog, name) {
			set[f] = true
		}
		for _, id := range ug.SortedIDs() {
			n := ug.Nodes[id]
			for v := range ug.Refs(id) {
				set[v] = true
			}
			if n.Kind == cfg.KindCall {
				for _, a := range n.Args {
					set[a] = true
				}
			}
		}
		universe[name] = set
	}
	for changed := true; changed; {
		changed = false
		for name, ug := range units {
			for _, id := range ug.SortedIDs() {
				n := ug.Nodes[id]
				if n.Kind != cfg.KindCall {
					continue
				}
				for v := range universe[n.Proc] {
					if globals[v] && !universe[name][v] {
						universe[name][v] = true
						changed = true
					}
				}
			}
		}
	}
	// Main's universe covers every declared name (unused tokens flow
	// straight to end, matching the inlined translations).
	for _, n := range prog.AllNames() {
		universe[""][n] = true
	}

	sortedUniverse := map[string][]string{}
	for name, set := range universe {
		sortedUniverse[name] = sortedTokens(set)
	}

	// Per-unit alias structure and singleton-cover token mapping.
	mainAlias := analysis.NewAliasStructure(prog)
	classOf := func(unit, name string) []string {
		var as *analysis.AliasStructure
		if unit == "" {
			as = mainAlias
		} else {
			as = derived[unit]
		}
		var out []string
		for _, m := range as.Class(name) {
			if universe[unit][m] {
				out = append(out, m)
			}
		}
		if len(out) == 0 {
			out = []string{name}
		}
		return out
	}

	out := dfg.NewGraph(prog)
	type unitExports struct {
		params  map[string]int
		ret     int
		pending []*pendingCall
	}
	exports := map[string]*unitExports{}

	for _, name := range order {
		ug0 := units[name]
		ug0, _, err := cfg.MakeReducible(ug0)
		if err != nil {
			return nil, err
		}
		ug, loops, err := cfg.InsertLoopControl(ug0)
		if err != nil {
			return nil, err
		}
		unit := name
		tokensOf := map[string][]string{}
		for v := range universe[unit] {
			tokensOf[v] = classOf(unit, v)
		}
		// A call consumes, for every token of its callee, the caller-side
		// tokens of the bound name.
		callNeed := func(id int) []string {
			n := ug.Nodes[id]
			bind := map[string]string{}
			for i, f := range procParams(prog, n.Proc) {
				bind[f] = n.Args[i]
			}
			set := map[string]bool{}
			for _, ct := range sortedUniverse[n.Proc] {
				caller := ct
				if b, ok := bind[ct]; ok {
					caller = b
				}
				for _, tok := range tokensOf[caller] {
					set[tok] = true
				}
			}
			return sortedTokens(set)
		}
		need := func(id int) []string {
			if ug.Nodes[id].Kind == cfg.KindCall {
				return callNeed(id)
			}
			set := map[string]bool{}
			for v := range ug.Refs(id) {
				for _, tok := range tokensOf[v] {
					set[tok] = true
				}
			}
			return sortedTokens(set)
		}

		cd := analysis.ComputeControlDeps(ug)
		extNeed, placement := placeWithLoopControl(ug, loops, cd, need)
		sv, err := analysis.ComputeSourceVectors(ug, loops, sortedUniverse[unit], extNeed, placement)
		if err != nil {
			return nil, fmt.Errorf("translate: unit %q: %w", unit, err)
		}
		b := &builder{
			g: ug, loops: loops, sv: sv, placement: placement,
			tokensOf: tokensOf, universe: sortedUniverse[unit],
			valueTokens: map[string]string{},
			pstores:     map[int]ParallelStore{},
			istructs:    map[string]bool{},
			out:         out,
			procMode:    unit != "",
			procName:    unit,
			callNeed:    callNeed,
			calleeArity: func(proc string) int { return len(sortedUniverse[proc]) },
		}
		if err := b.build(); err != nil {
			return nil, fmt.Errorf("translate: unit %q: %w", unit, err)
		}
		exports[unit] = &unitExports{params: b.paramNodes, ret: b.returnNode, pending: b.pendingCalls}
	}

	// Link every call site to its callee.
	for _, name := range order {
		for _, pc := range exports[name].pending {
			callee := exports[pc.proc]
			toks := sortedUniverse[pc.proc]
			info := dfg.CallInfo{
				Apply:    pc.apply,
				Proc:     pc.proc,
				InTokens: pc.inTokens,
				Return:   callee.ret,
				Bindings: pc.bindings,
			}
			for j, tok := range toks {
				pn, ok := callee.params[tok]
				if !ok {
					return nil, fmt.Errorf("translate: callee %s has no param node for token %s", pc.proc, tok)
				}
				info.Params = append(info.Params, pn)
				out.Connect(pc.apply, len(pc.inTokens)+j, pn, 0, true)
			}
			out.Calls = append(out.Calls, info)
		}
	}
	sort.Slice(out.Calls, func(i, j int) bool { return out.Calls[i].Apply < out.Calls[j].Apply })

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("translate: linked graph invalid: %w", err)
	}
	return &LinkedResult{
		Graph:        out,
		MainUniverse: sortedUniverse[""],
		ProcUniverse: sortedUniverse,
		ValueTokens:  map[string]string{},
	}, nil
}
