package translate

import (
	"sort"

	"ctdf/internal/cfg"
	"ctdf/internal/lang"
)

// FindIStructures applies the final enhancement of §6.3: "detect when an
// array is 'write-once'. If the dataflow machine has I-structure memory,
// array reads and writes can be done concurrently, since I-structure
// memory takes care of delaying premature read requests until the
// corresponding writes have occurred."
//
// An array qualifies when every execution writes each of its cells at most
// once and reads only follow writes in the sequential order (so I-structure
// execution computes the sequential answer, just more concurrently):
//
//   - the array has no aliases;
//   - exactly one statement stores to it, indexed by a strict induction
//     variable (the FindParallelStores criterion), so dynamic stores hit
//     distinct cells;
//   - every read of the array lies outside the storing loop and is
//     dominated by one of the loop's exits (all writes sequentially precede
//     every read).
//
// Reading a cell no store ever fills is an execution error under
// I-structure semantics (the deferred read is never satisfied), exactly as
// in I-structure machines; the engines report it.
func FindIStructures(g *cfg.Graph, loops []cfg.Loop) []string {
	pstores := FindParallelStores(g, loops)
	byArray := map[string][]ParallelStore{}
	for _, ps := range pstores {
		byArray[ps.Array] = append(byArray[ps.Array], ps)
	}
	// Count all stores per array to reject arrays with extra stores
	// outside the qualifying one.
	storeCount := map[string]int{}
	reads := map[string][]int{} // array -> reading statement IDs
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindAssign && n.TargetIndex != nil {
			storeCount[n.Target]++
		}
		for v := range g.ReadSet(n.ID) {
			if g.Prog.IsArray(v) {
				reads[v] = append(reads[v], n.ID)
			}
		}
	}
	dom := cfg.Dominators(g)

	var out []string
	arrays := make([]string, 0, len(byArray))
	for a := range byArray {
		arrays = append(arrays, a)
	}
	sort.Strings(arrays)
nextArray:
	for _, a := range arrays {
		pss := byArray[a]
		if len(pss) != 1 || storeCount[a] != 1 {
			continue
		}
		ps := pss[0]
		entryLoop := loopOf(loops, ps.Entry)
		if entryLoop == nil {
			continue
		}
		// Step must be ±1 so successive iterations fill a contiguous range
		// (larger strides leave unwritten holes a subsequent sweep-read
		// would block on).
		if !unitStepInduction(findInductionUpdate(g, entryLoop, ps.IndexVar)) {
			continue
		}
		for _, r := range reads[a] {
			// Reads must sit outside the loop's body, beyond an exit.
			if entryLoop.Body[r] {
				continue nextArray
			}
			dominated := false
			for _, x := range entryLoop.Exits {
				if dom.Dominates(x, r) {
					dominated = true
					break
				}
			}
			if !dominated {
				continue nextArray
			}
		}
		out = append(out, a)
	}
	return out
}

func loopOf(loops []cfg.Loop, entry int) *cfg.Loop {
	for i := range loops {
		if loops[i].Entry == entry {
			return &loops[i]
		}
	}
	return nil
}

// findInductionUpdate locates the unique in-body induction update of v.
func findInductionUpdate(g *cfg.Graph, l *cfg.Loop, v string) *cfg.Node {
	for id := range l.Body {
		n := g.Nodes[id]
		if n.Kind == cfg.KindAssign && n.Target == v && n.TargetIndex == nil && isInductionUpdate(n, v) {
			return n
		}
	}
	return nil
}

func unitStepInduction(n *cfg.Node) bool {
	if n == nil {
		return false
	}
	be, ok := n.RHS.(*lang.BinExpr)
	if !ok {
		return false
	}
	if c, ok := be.R.(*lang.IntLit); ok && (c.Value == 1 || c.Value == -1) {
		return true
	}
	if c, ok := be.L.(*lang.IntLit); ok && c.Value == 1 && be.Op == lang.OpAdd {
		return true
	}
	return false
}
