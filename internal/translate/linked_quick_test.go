package translate

import (
	"testing"
	"testing/quick"

	"ctdf/internal/cfg"
	"ctdf/internal/chanexec"
	"ctdf/internal/interp"
	"ctdf/internal/machine"
	"ctdf/internal/workloads"
)

// Random procedure programs — repeated actuals (aliased formals), calls in
// loops, nested procedures — must compute the interpreter's answer under
// separate compilation, on both engines.
func TestQuickLinkedSoundness(t *testing.T) {
	f := func(seed int64, calls uint8) bool {
		w := workloads.RandomProcs(seed%4096, int(calls)%4+1)
		prog := w.Parse()
		res, err := TranslateLinked(prog)
		if err != nil {
			t.Logf("%s: translate: %v\n%s", w.Name, err, w.Source)
			return false
		}
		inlined, err := cfg.Build(prog)
		if err != nil {
			t.Logf("%s: cfg: %v", w.Name, err)
			return false
		}
		want, err := interp.Run(inlined, interp.Options{})
		if err != nil {
			t.Logf("%s: interp: %v", w.Name, err)
			return false
		}
		mo, err := machine.Run(res.Graph, machine.Config{DetectRaces: true})
		if err != nil {
			t.Logf("%s: machine: %v\n%s", w.Name, err, w.Source)
			return false
		}
		if mo.Store.Snapshot() != want.Store.Snapshot() {
			t.Logf("%s: wrong result\n%s", w.Name, w.Source)
			return false
		}
		co, err := chanexec.Run(res.Graph, chanexec.Config{})
		if err != nil {
			t.Logf("%s: chanexec: %v", w.Name, err)
			return false
		}
		return co.Store.Snapshot() == want.Store.Snapshot()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestRandomProcsParseAndTerminate(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		w := workloads.RandomProcs(seed, 3)
		g, err := cfg.Build(w.Parse())
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, w.Source)
		}
		if _, err := interp.Run(g, interp.Options{}); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, w.Source)
		}
	}
}
