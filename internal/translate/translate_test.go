package translate

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/interp"
	"ctdf/internal/machine"
	"ctdf/internal/workloads"
)

// allSchemas lists every schema with default options.
var allSchemas = []Options{
	{Schema: Schema1},
	{Schema: Schema2},
	{Schema: Schema2Opt},
	{Schema: Schema3},
	{Schema: Schema3Opt},
}

func mustCFG(t *testing.T, w workloads.Workload) *cfg.Graph {
	t.Helper()
	g, err := cfg.Build(w.Parse())
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return g
}

// checkEquivalence translates under opt, executes on the machine, and
// compares the final state against the sequential interpreter.
func checkEquivalence(t *testing.T, w workloads.Workload, opt Options, binding interp.Binding) {
	t.Helper()
	g := mustCFG(t, w)
	want, err := interp.Run(g, interp.Options{Binding: binding})
	if err != nil {
		t.Fatalf("%s: interpreter failed: %v", w.Name, err)
	}
	res, err := Translate(g, opt)
	if err != nil {
		t.Fatalf("%s/%v: translation failed: %v", w.Name, opt.Schema, err)
	}
	out, err := machine.Run(res.Graph, machine.Config{Binding: binding, DetectRaces: true})
	if err != nil {
		t.Fatalf("%s/%v: machine failed: %v", w.Name, opt.Schema, err)
	}
	got := FinalSnapshot(res, out.Store, out.EndValues)
	if got != want.Store.Snapshot() {
		t.Errorf("%s/%v: final state differs\nmachine:\n%s\ninterp:\n%s\ndataflow graph:\n%s",
			w.Name, opt.Schema, got, want.Store.Snapshot(), res.Graph.DOT())
	}
}

func TestAllSchemasMatchInterpreterOnSuite(t *testing.T) {
	for _, w := range workloads.All() {
		for _, opt := range allSchemas {
			t.Run(w.Name+"/"+opt.Schema.String(), func(t *testing.T) {
				checkEquivalence(t, w, opt, nil)
			})
		}
	}
}

func TestRandomProgramsAllSchemas(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		w := workloads.Random(seed, 4, 2)
		for _, opt := range allSchemas {
			t.Run(w.Name+"/"+opt.Schema.String(), func(t *testing.T) {
				checkEquivalence(t, w, opt, nil)
			})
		}
	}
}

func TestRunningExampleValues(t *testing.T) {
	prog := workloads.RunningExample.Parse()
	g := cfg.MustBuild(prog)
	res, err := Translate(g, Options{Schema: Schema2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := machine.Run(res.Graph, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Store.Get("x") != 5 || out.Store.Get("y") != 5 {
		t.Errorf("x=%d y=%d, want 5 5", out.Store.Get("x"), out.Store.Get("y"))
	}
}
