package translate

import (
	"testing"

	"ctdf/internal/workloads"
)

// The unstructured generator exercises multi-exit loops, multiple back
// edges, and unstructured joins — the control flow §4's machinery exists
// for.
func TestRandomUnstructuredAllSchemas(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		w := workloads.RandomUnstructured(seed, 3)
		for _, opt := range allSchemas {
			t.Run(w.Name+"/"+opt.Schema.String(), func(t *testing.T) {
				checkEquivalence(t, w, opt, nil)
			})
		}
	}
}

func TestRandomUnstructuredWithTransforms(t *testing.T) {
	opt := Options{
		Schema:              Schema2Opt,
		EliminateMemory:     true,
		ParallelReads:       true,
		ParallelArrayStores: true,
	}
	for seed := int64(50); seed <= 80; seed++ {
		w := workloads.RandomUnstructured(seed, 4)
		t.Run(w.Name, func(t *testing.T) {
			checkEquivalence(t, w, opt, nil)
		})
	}
}

func TestRandomUnstructuredIterativeElimination(t *testing.T) {
	for seed := int64(90); seed <= 100; seed++ {
		w := workloads.RandomUnstructured(seed, 3)
		t.Run(w.Name, func(t *testing.T) {
			g := mustCFG(t, w)
			res, err := Translate(g, Options{Schema: Schema2})
			if err != nil {
				t.Fatal(err)
			}
			simplified, _ := EliminateRedundantSwitches(res.Graph)
			if err := simplified.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
