package translate

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/chanexec"
	"ctdf/internal/dfg"
	"ctdf/internal/interp"
	"ctdf/internal/machine"
	"ctdf/internal/workloads"
)

// checkLinked runs the separately compiled graph and compares against the
// sequential interpreter (over the inlined CFG).
func checkLinked(t *testing.T, w workloads.Workload) *LinkedResult {
	t.Helper()
	prog := w.Parse()
	res, err := TranslateLinked(prog)
	if err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	inlined := cfg.MustBuild(prog)
	want, err := interp.Run(inlined, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := machine.Run(res.Graph, machine.Config{DetectRaces: true})
	if err != nil {
		t.Fatalf("%s: linked execution failed: %v", w.Name, err)
	}
	if got := out.Store.Snapshot(); got != want.Store.Snapshot() {
		t.Errorf("%s: linked result differs\nlinked:\n%s\ninterp:\n%s", w.Name, got, want.Store.Snapshot())
	}
	return res
}

func TestLinkedBasicCall(t *testing.T) {
	checkLinked(t, workloads.Workload{Name: "one-call", Source: `
var a, b
proc double(x) {
  x := x * 2
}
a := 21
call double(a)
b := a + 1
`})
}

func TestLinkedPaperExample(t *testing.T) {
	res := checkLinked(t, workloads.MustByName("proc-fortran"))
	// The body is compiled ONCE: exactly one set of Param nodes and one
	// ProcReturn for f, with two Apply sites.
	if got := res.Graph.CountKind(dfg.Apply); got != 2 {
		t.Errorf("apply nodes = %d, want 2", got)
	}
	if got := res.Graph.CountKind(dfg.ProcReturn); got != 1 {
		t.Errorf("proc-return nodes = %d, want 1", got)
	}
	if len(res.Graph.Calls) != 2 {
		t.Errorf("call infos = %d, want 2", len(res.Graph.Calls))
	}
}

func TestLinkedCallInLoop(t *testing.T) {
	checkLinked(t, workloads.MustByName("proc-in-loop"))
}

func TestLinkedNestedCalls(t *testing.T) {
	checkLinked(t, workloads.Workload{Name: "nested", Source: `
var a, r, s
proc inner(p, q) {
  q := p * 10
}
proc outer(u) {
  call inner(u, r)
  s := r + 1
}
a := 7
call outer(a)
`})
}

func TestLinkedAliasedActuals(t *testing.T) {
	// f(a, b, a): formals x and z denote the same cell during the call;
	// the derived alias structure makes the shared body serialize them.
	checkLinked(t, workloads.Workload{Name: "aliased-actuals", Source: `
var a, b
proc f(x, y, z) {
  x := 5
  z := z + 1
  y := z * 10
}
call f(a, b, a)
`})
}

func TestLinkedCallsWithLoopsInside(t *testing.T) {
	checkLinked(t, workloads.Workload{Name: "loopy-callee", Source: `
var n, out1, out2
proc sumto(limit, acc) {
  acc := 0
  iv := 0
  while iv < limit {
    iv := iv + 1
    acc := acc + iv
  }
}
var iv
n := 6
call sumto(n, out1)
n := 4
call sumto(n, out2)
`})
}

func TestLinkedConditionalCall(t *testing.T) {
	checkLinked(t, workloads.Workload{Name: "conditional-call", Source: `
var a, b, w
proc bump(x) {
  x := x + 100
}
w := 1
if w == 1 {
  call bump(a)
} else {
  call bump(b)
}
`})
}

func TestLinkedGlobalAccessInCallee(t *testing.T) {
	checkLinked(t, workloads.Workload{Name: "callee-global", Source: `
var g, a, b
proc addg(x) {
  x := x + g
  g := g + 1
}
g := 5
a := 1
b := 2
call addg(a)
call addg(b)
`})
}

func TestLinkedRejectsProcFreePrograms(t *testing.T) {
	prog := workloads.RunningExample.Parse()
	if _, err := TranslateLinked(prog); err == nil {
		t.Error("linked translation of a procedure-free program must be rejected")
	}
}

// Independent calls on disjoint data overlap: two activations of the same
// body run concurrently under different activation frames.
func TestLinkedActivationsOverlap(t *testing.T) {
	w := workloads.Workload{Name: "parallel-calls", Source: `
var a, b
proc work(x) {
  x := x + 1
  x := x * 3
  x := x - 2
  x := x * x
}
a := 2
b := 5
call work(a)
call work(b)
`}
	prog := w.Parse()
	res, err := TranslateLinked(prog)
	if err != nil {
		t.Fatal(err)
	}
	out, err := machine.Run(res.Graph, machine.Config{MemLatency: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Sequentialized calls would cost at least 2× the single-call path;
	// overlapping activations should do noticeably better than the serial
	// sum. Compare against the inlined Schema 1 (fully serial) baseline.
	inlined := cfg.MustBuild(prog)
	serial, err := Translate(inlined, Options{Schema: Schema1})
	if err != nil {
		t.Fatal(err)
	}
	so, err := machine.Run(serial.Graph, machine.Config{MemLatency: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Cycles >= so.Stats.Cycles {
		t.Errorf("linked activations (%d cycles) no faster than serial schema 1 (%d)",
			out.Stats.Cycles, so.Stats.Cycles)
	}
}

// Both engines agree on linked graphs too (same stores, same firings).
func TestLinkedEnginesAgree(t *testing.T) {
	for _, w := range []workloads.Workload{
		workloads.MustByName("proc-fortran"),
		workloads.MustByName("proc-in-loop"),
	} {
		res, err := TranslateLinked(w.Parse())
		if err != nil {
			t.Fatal(err)
		}
		mo, err := machine.Run(res.Graph, machine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		co, err := chanexec.Run(res.Graph, chanexec.Config{})
		if err != nil {
			t.Fatalf("%s: chanexec: %v", w.Name, err)
		}
		if mo.Store.Snapshot() != co.Store.Snapshot() {
			t.Errorf("%s: engines disagree on linked graph", w.Name)
		}
		if int64(mo.Stats.Ops) != co.Ops {
			t.Errorf("%s: firing counts differ: %d vs %d", w.Name, mo.Stats.Ops, co.Ops)
		}
	}
}

// Linked graphs stay deterministic under randomized issue order.
func TestLinkedDeterminacy(t *testing.T) {
	res, err := TranslateLinked(workloads.MustByName("proc-fortran").Parse())
	if err != nil {
		t.Fatal(err)
	}
	base, err := machine.Run(res.Graph, machine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 6; seed++ {
		out, err := machine.Run(res.Graph, machine.Config{RandomSeed: seed, Processors: 2})
		if err != nil {
			t.Fatal(err)
		}
		if out.Store.Snapshot() != base.Store.Snapshot() {
			t.Errorf("seed %d: nondeterministic linked result", seed)
		}
	}
}

// The point of separate compilation: the body appears once, so the graph
// grows with the number of procedures, not the number of call sites.
func TestLinkedSmallerThanInlining(t *testing.T) {
	w := workloads.Workload{Name: "many-calls", Source: `
var a, b, c, d, e
proc work(x) {
  x := x + 1
  x := x * 3
  x := x - 2
  x := x * x
  x := x % 97
}
call work(a)
call work(b)
call work(c)
call work(d)
call work(e)
`}
	prog := w.Parse()
	linked, err := TranslateLinked(prog)
	if err != nil {
		t.Fatal(err)
	}
	inlined, err := Translate(cfg.MustBuild(prog), Options{Schema: Schema2Opt})
	if err != nil {
		t.Fatal(err)
	}
	if linked.Graph.NumNodes() >= inlined.Graph.NumNodes() {
		t.Errorf("linked graph (%d nodes) not smaller than inlined (%d nodes)",
			linked.Graph.NumNodes(), inlined.Graph.NumNodes())
	}
	checkLinked(t, w)
}
