package translate

import (
	"testing"

	"ctdf/internal/analysis"
	"ctdf/internal/cfg"
	"ctdf/internal/interp"
	"ctdf/internal/machine"
	"ctdf/internal/workloads"
)

var procWorkloads = []workloads.Workload{
	{
		Name: "proc-fortran",
		Source: `
var a, b, c, d
proc f(x, y, z) {
  z := x + y
  x := x * 2
}
a := 1
b := 2
call f(a, b, a)
c := 10
d := 20
call f(c, d, d)
`,
	},
	{
		Name: "proc-loop-body",
		Source: `
var n, acc, i
proc addsq(v, out) {
  out := out + v * v
}
i := 0
while i < 6 {
  call addsq(i, acc)
  i := i + 1
}
n := acc
`,
	},
	{
		Name: "proc-nested",
		Source: `
var a, r, s
proc inner(p, q) {
  q := p * 10
}
proc outer(u) {
  call inner(u, r)
  s := r + 1
}
a := 7
call outer(a)
`,
	},
}

// Procedure programs run through the whole pipeline (inline expansion →
// CFG → every schema → machine) and match the interpreter.
func TestProceduresAllSchemas(t *testing.T) {
	for _, w := range procWorkloads {
		for _, opt := range allSchemas {
			t.Run(w.Name+"/"+opt.Schema.String(), func(t *testing.T) {
				checkEquivalence(t, w, opt, nil)
			})
		}
	}
}

// The §5 separate-compilation story: the procedure body is compiled ONCE
// under its derived alias structure; the single dataflow graph computes
// the interpreter's answer under the binding each call site induces.
func TestStandaloneProcCorrectUnderEveryCallBinding(t *testing.T) {
	prog := procWorkloads[0].Parse()
	derived, err := analysis.DeriveAliasStructures(prog)
	if err != nil {
		t.Fatal(err)
	}
	standalone, err := analysis.StandaloneProc(prog, "f", derived["f"])
	if err != nil {
		t.Fatal(err)
	}
	g, err := cfg.Build(standalone)
	if err != nil {
		t.Fatal(err)
	}
	for _, schema := range []Schema{Schema3, Schema3Opt} {
		res, err := Translate(g, Options{Schema: schema})
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range prog.Calls() {
			b, err := analysis.CallBinding(prog, cs.Call)
			if err != nil {
				t.Fatal(err)
			}
			want, err := interp.Run(g, interp.Options{Binding: b})
			if err != nil {
				t.Fatal(err)
			}
			out, err := machine.Run(res.Graph, machine.Config{Binding: b, DetectRaces: true})
			if err != nil {
				t.Fatalf("%v under %s: %v", schema, cs.Call, err)
			}
			if out.Store.Snapshot() != want.Store.Snapshot() {
				t.Errorf("%v under %s: dataflow disagrees with interpreter\n%s\nvs\n%s",
					schema, cs.Call, out.Store.Snapshot(), want.Store.Snapshot())
			}
		}
	}
}

// Soundness property: for randomized call shapes, the induced binding is
// always legal under the derived structure.
func TestDerivedStructureCoversCallBindings(t *testing.T) {
	srcs := []string{
		"var a, b\nproc f(x, y) { y := x + 1 }\ncall f(a, a)\ncall f(a, b)\ncall f(b, b)\n",
		"var a, b, c\nalias a ~ b\nproc f(x, y, z) { z := x + y }\ncall f(a, b, c)\ncall f(c, c, a)\n",
		"var a\nproc g(p, q) { q := p }\nproc h(u, v) { call g(u, v) }\ncall h(a, a)\n",
	}
	for _, src := range srcs {
		prog := workloads.Workload{Name: "t", Source: src}.Parse()
		derived, err := analysis.DeriveAliasStructures(prog)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range prog.Calls() {
			standalone, err := analysis.StandaloneProc(prog, cs.Call.Proc, derived[cs.Call.Proc])
			if err != nil {
				t.Fatal(err)
			}
			b, err := analysis.CallBinding(prog, cs.Call)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Validate(standalone); err != nil {
				t.Errorf("%q call %s: %v", src, cs.Call, err)
			}
		}
	}
}
