package translate

import (
	"ctdf/internal/dfg"
)

// LegalizeSynchTrees rewrites every synch operator with more than two
// inputs into a balanced tree of two-input synchs. The paper's Figure 2
// presents the n-input collector as a synch *tree*; explicit token store
// machines match at most two operands per activation frame, so wide
// collectors must be decomposed before such a machine could run the graph.
// The builder emits flat n-ary synchs for clarity; this pass is the
// machine-level legalization. End nodes (the program's terminal collector)
// and three-input stores are left alone — they model machine services, not
// single instructions.
//
// Returns a new graph and the number of synch nodes added; the input is
// unchanged.
func LegalizeSynchTrees(g *dfg.Graph) (*dfg.Graph, int) {
	m := newMutGraph(g)
	added := 0
	for _, id := range m.liveIDs() {
		n := m.nodes[id]
		if n == nil || n.Kind != dfg.Synch || n.NIns <= 2 {
			continue
		}
		srcs := make([]arcEnd, n.NIns)
		for p := 0; p < n.NIns; p++ {
			srcs[p] = m.ins[id][p][0]
		}
		consumers := append([]arcEnd(nil), m.outs[id][0]...)
		tok, stmt := n.Tok, n.Stmt
		m.removeNode(id)

		// Pairwise reduction to a balanced binary tree.
		cur := srcs
		for len(cur) > 1 {
			var next []arcEnd
			for i := 0; i+1 < len(cur); i += 2 {
				s := m.addNode(&dfg.Node{Kind: dfg.Synch, NIns: 2, Tok: tok, Stmt: stmt})
				m.addArc(cur[i], arcEnd{s, 0})
				m.dummy[[2]arcEnd{cur[i], {s, 0}}] = true
				m.addArc(cur[i+1], arcEnd{s, 1})
				m.dummy[[2]arcEnd{cur[i+1], {s, 1}}] = true
				next = append(next, arcEnd{s, 0})
				added++
			}
			if len(cur)%2 == 1 {
				next = append(next, cur[len(cur)-1])
			}
			cur = next
		}
		for _, c := range consumers {
			m.addArc(cur[0], c)
			m.dummy[[2]arcEnd{cur[0], c}] = true
		}
	}
	return m.rebuild(g), added
}

// MaxSynchArity returns the widest synch operator in the graph (0 if none).
func MaxSynchArity(g *dfg.Graph) int {
	max := 0
	for _, n := range g.Nodes {
		if n.Kind == dfg.Synch && n.NIns > max {
			max = n.NIns
		}
	}
	return max
}
