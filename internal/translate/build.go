package translate

import (
	"fmt"
	"sort"

	"ctdf/internal/analysis"
	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/lang"
)

// src is a wire source: an output port of a dataflow node.
type src struct {
	node int
	port int
}

type builder struct {
	g           *cfg.Graph
	loops       []cfg.Loop
	sv          *analysis.SourceVectors
	placement   *analysis.Placement
	tokensOf    map[string][]string
	universe    []string
	valueTokens map[string]string // token → variable whose value it carries (§6.1)
	parReads    bool
	pstores     map[int]ParallelStore // by StoreStmt
	istructs    map[string]bool       // arrays with I-structure semantics (§6.3)
	out         *dfg.Graph

	// Separate-compilation (linked) mode: a procedure unit replaces the
	// start node by per-token Param nodes and the end node by a ProcReturn;
	// call statements become Apply nodes. callNeed supplies the mapped
	// token set a call consumes; pendingCalls records linkage to resolve
	// after every unit is built.
	procMode     bool
	procName     string
	paramNodes   map[string]int
	returnNode   int
	callNeed     func(id int) []string
	calleeArity  func(proc string) int // callee universe size (param ports)
	pendingCalls []*pendingCall

	// Output taps per CFG node and token: the true/single out-direction,
	// the false out-direction (switch false arms), and the fork post-read
	// tap.
	tapT map[int]map[string]src
	tapF map[int]map[string]src
	tapR map[int]map[string]src
}

func indexParallelStores(ps []ParallelStore) map[int]ParallelStore {
	out := map[int]ParallelStore{}
	for _, p := range ps {
		out[p.StoreStmt] = p
	}
	return out
}

func (b *builder) isValueToken(tok string) bool { return b.valueTokens[tok] != "" }

// dummyFor reports whether arcs carrying token tok are dummy
// (synchronization-only) arcs; value-carrying token lines (§6.1) are not.
func (b *builder) dummyFor(tok string) bool { return !b.isValueToken(tok) }

func (b *builder) setTap(m map[int]map[string]src, id int, tok string, s src) {
	if m[id] == nil {
		m[id] = map[string]src{}
	}
	m[id][tok] = s
}

// resolve maps an SV source to the concrete output port it names.
func (b *builder) resolve(s analysis.Source, tok string) (src, error) {
	var m map[int]map[string]src
	switch {
	case s.Read:
		m = b.tapR
	case s.Dir:
		m = b.tapT
	default:
		m = b.tapF
	}
	w, ok := m[s.Node][tok]
	if !ok {
		return src{}, fmt.Errorf("translate: no tap for %v token %s (source %s)", b.g.Nodes[s.Node], tok, s)
	}
	return w, nil
}

// inputSrc resolves the (single or merged) source of token tok flowing
// into CFG node id and returns the wire to consume it from. A merge node
// is created when several sources feed the same point.
func (b *builder) inputSrc(id int, tok string) (src, error) {
	srcs := b.sv.SV[id][tok]
	return b.combine(srcs, id, tok)
}

func (b *builder) combine(srcs []analysis.Source, id int, tok string) (src, error) {
	if len(srcs) == 0 {
		return src{}, fmt.Errorf("translate: %v consumes token %s but it has no sources", b.g.Nodes[id], tok)
	}
	if len(srcs) == 1 {
		return b.resolve(srcs[0], tok)
	}
	m := b.out.Add(&dfg.Node{Kind: dfg.Merge, Tok: tok, Stmt: id})
	for _, s := range srcs {
		w, err := b.resolve(s, tok)
		if err != nil {
			return src{}, err
		}
		b.out.Connect(w.node, w.port, m.ID, 0, b.dummyFor(tok))
	}
	return src{m.ID, 0}, nil
}

// synchOf collects a set of wires into one: a single wire passes through;
// several are joined by a synch tree (paper Figure 2). Wires are
// deduplicated — token lines that already merged at a shared operation
// need only one arc.
func (b *builder) synchOf(wires []src, stmt int, tok string) src {
	dedup := wires[:0:0]
	seen := map[src]bool{}
	for _, w := range wires {
		if !seen[w] {
			seen[w] = true
			dedup = append(dedup, w)
		}
	}
	sort.Slice(dedup, func(i, j int) bool {
		if dedup[i].node != dedup[j].node {
			return dedup[i].node < dedup[j].node
		}
		return dedup[i].port < dedup[j].port
	})
	if len(dedup) == 1 {
		return dedup[0]
	}
	s := b.out.Add(&dfg.Node{Kind: dfg.Synch, NIns: len(dedup), Tok: tok, Stmt: stmt})
	for i, w := range dedup {
		b.out.Connect(w.node, w.port, s.ID, i, true)
	}
	return src{s.ID, 0}
}

// build drives the translation: CFG nodes are processed in topological
// order ignoring loop back edges, so every input source tap exists by the
// time it is consumed; loop-entry back ports are wired in a final pass.
func (b *builder) build() error {
	b.tapT = map[int]map[string]src{}
	b.tapF = map[int]map[string]src{}
	b.tapR = map[int]map[string]src{}

	order, err := b.topoOrder()
	if err != nil {
		return err
	}
	var pendingBack []int
	for _, id := range order {
		n := b.g.Nodes[id]
		switch n.Kind {
		case cfg.KindStart:
			if err := b.buildStart(id); err != nil {
				return err
			}
		case cfg.KindEnd:
			if err := b.buildEnd(id); err != nil {
				return err
			}
		case cfg.KindAssign:
			if err := b.buildAssign(id); err != nil {
				return err
			}
		case cfg.KindFork:
			if err := b.buildFork(id); err != nil {
				return err
			}
		case cfg.KindJoin:
			if err := b.buildJoin(id); err != nil {
				return err
			}
		case cfg.KindLoopEntry:
			if err := b.buildLoopEntry(id); err != nil {
				return err
			}
			pendingBack = append(pendingBack, id)
		case cfg.KindLoopExit:
			if err := b.buildLoopExit(id); err != nil {
				return err
			}
		case cfg.KindCall:
			if err := b.buildCall(id); err != nil {
				return err
			}
		}
	}
	// Back-edge wiring: every tap now exists.
	for _, id := range pendingBack {
		if err := b.wireBackPort(id); err != nil {
			return err
		}
	}
	return nil
}

func (b *builder) topoOrder() ([]int, error) {
	n := b.g.Len()
	isBackPred := func(node, pred int) bool {
		nd := b.g.Nodes[node]
		return nd.Kind == cfg.KindLoopEntry && nd.BackPreds[pred]
	}
	processed := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		pick := -1
		for _, id := range b.g.SortedIDs() {
			if processed[id] {
				continue
			}
			ready := true
			for _, p := range b.g.Nodes[id].Preds {
				if !processed[p] && !isBackPred(id, p) {
					ready = false
					break
				}
			}
			if ready {
				pick = id
				break
			}
		}
		if pick == -1 {
			return nil, fmt.Errorf("translate: CFG has a cycle not broken by loop entries")
		}
		processed[pick] = true
		order = append(order, pick)
	}
	return order, nil
}

func (b *builder) buildStart(id int) error {
	if b.procMode {
		// A procedure unit's tokens arrive from its call sites: one Param
		// node per token, fed by every Apply.
		b.paramNodes = map[string]int{}
		for _, tok := range b.universe {
			p := b.out.Add(&dfg.Node{Kind: dfg.Param, Tok: tok, Var: b.procName, Stmt: id})
			b.paramNodes[tok] = p.ID
			b.setTap(b.tapT, id, tok, src{p.ID, 0})
		}
		return nil
	}
	s := b.out.Add(&dfg.Node{Kind: dfg.Start, Stmt: id})
	for _, tok := range b.universe {
		b.setTap(b.tapT, id, tok, src{s.ID, 0})
	}
	return nil
}

func (b *builder) buildEnd(id int) error {
	kind := dfg.End
	if b.procMode {
		kind = dfg.ProcReturn
	}
	e := b.out.Add(&dfg.Node{Kind: kind, NIns: len(b.universe), Var: b.procName, Stmt: id})
	b.returnNode = e.ID
	for i, tok := range b.universe {
		w, err := b.inputSrc(id, tok)
		if err != nil {
			return err
		}
		b.out.Connect(w.node, w.port, e.ID, i, b.dummyFor(tok))
	}
	return nil
}

// pendingCall records one Apply awaiting linkage to its callee unit.
type pendingCall struct {
	apply    int
	proc     string
	inTokens []string
	bindings map[string]string
}

// buildCall translates a call statement (separate-compilation mode): an
// Apply node consumes the caller-side tokens of everything the callee may
// touch; its return ports regenerate them when the callee's ProcReturn
// fires. Entry arcs into the callee's Param nodes are wired by the linker
// once every unit is built.
func (b *builder) buildCall(id int) error {
	if b.callNeed == nil {
		return fmt.Errorf("translate: call statement outside separate-compilation mode at %s", b.g.Nodes[id])
	}
	n := b.g.Nodes[id]
	consumed := b.callNeed(id)
	if len(consumed) == 0 {
		return fmt.Errorf("translate: call of %s touches nothing (empty effect set)", n.Proc)
	}
	apply := b.out.Add(&dfg.Node{
		Kind: dfg.Apply, Var: n.Proc, Stmt: id,
		NIns:  len(consumed),
		NOuts: len(consumed) + b.calleeArity(n.Proc),
	})
	for i, tok := range consumed {
		w, err := b.inputSrc(id, tok)
		if err != nil {
			return err
		}
		b.out.Connect(w.node, w.port, apply.ID, i, true)
		b.setTap(b.tapT, id, tok, src{apply.ID, i})
	}
	bindings := map[string]string{}
	for i, formal := range procParams(b.g.Prog, n.Proc) {
		bindings[formal] = n.Args[i]
	}
	b.pendingCalls = append(b.pendingCalls, &pendingCall{
		apply: apply.ID, proc: n.Proc, inTokens: consumed, bindings: bindings,
	})
	return nil
}

func procParams(prog *lang.Program, name string) []string {
	for _, pr := range prog.Procs() {
		if pr.Name == name {
			return pr.Params
		}
	}
	return nil
}

func (b *builder) buildJoin(id int) error {
	// A join becomes a merge for every token with several sources; tokens
	// with a single source were forwarded during the source-vector
	// computation ("a join with a single source is equivalent to no
	// operator", §4.2).
	toks := sortedTokens(b.sv.SV[id])
	for _, tok := range toks {
		srcs := b.sv.SV[id][tok]
		if len(srcs) < 2 {
			continue
		}
		w, err := b.combine(srcs, id, tok)
		if err != nil {
			return err
		}
		b.setTap(b.tapT, id, tok, w)
	}
	return nil
}

func (b *builder) buildLoopEntry(id int) error {
	for _, tok := range sortedTokens(b.sv.LoopNeed[id]) {
		le := b.out.Add(&dfg.Node{Kind: dfg.LoopEntry, Tok: tok, Stmt: id})
		w, err := b.inputSrc(id, tok)
		if err != nil {
			return err
		}
		b.out.Connect(w.node, w.port, le.ID, 0, b.dummyFor(tok))
		b.setTap(b.tapT, id, tok, src{le.ID, 0})
	}
	return nil
}

func (b *builder) wireBackPort(id int) error {
	for _, tok := range sortedTokens(b.sv.LoopNeed[id]) {
		w, err := b.combine(b.sv.Back[id][tok], id, tok)
		if err != nil {
			return err
		}
		tap := b.tapT[id][tok]
		b.out.Connect(w.node, w.port, tap.node, 1, b.dummyFor(tok))
	}
	return nil
}

func (b *builder) buildLoopExit(id int) error {
	for _, tok := range sortedTokens(b.sv.LoopNeed[id]) {
		lx := b.out.Add(&dfg.Node{Kind: dfg.LoopExit, Tok: tok, Stmt: id})
		w, err := b.inputSrc(id, tok)
		if err != nil {
			return err
		}
		b.out.Connect(w.node, w.port, lx.ID, 0, b.dummyFor(tok))
		b.setTap(b.tapT, id, tok, src{lx.ID, 0})
	}
	// §6.3: downstream consumers of a parallelized array must wait for all
	// of the loop's stores: rejoin the array's access line with the
	// completion line at the exit.
	for _, ps := range b.pstores {
		if ps.loopHasExit(id) {
			arr := b.tapT[id][ps.Array]
			done := b.tapT[id][ps.DoneToken()]
			s := b.out.Add(&dfg.Node{Kind: dfg.Synch, NIns: 2, Tok: ps.Array, Stmt: id})
			b.out.Connect(arr.node, arr.port, s.ID, 0, true)
			b.out.Connect(done.node, done.port, s.ID, 1, true)
			b.setTap(b.tapT, id, ps.Array, src{s.ID, 0})
		}
	}
	return nil
}

// stmtCtx tracks, while one statement or fork block is built, the current
// tail of every token line threading through the block's memory
// operations (paper Figures 4, 7, 13), the pending read completions of
// §6.2 read parallelization, and the trigger wire feeding constants.
type stmtCtx struct {
	b          *builder
	id         int
	tails      map[string]src
	pending    map[string][]src
	trigger    src
	hasTrigger bool
	vals       map[string]src // loaded scalar values
}

func (b *builder) newStmtCtx(id int, consumed []string) (*stmtCtx, error) {
	ctx := &stmtCtx{b: b, id: id, tails: map[string]src{}, pending: map[string][]src{}, vals: map[string]src{}}
	for i, tok := range consumed {
		w, err := b.inputSrc(id, tok)
		if err != nil {
			return nil, err
		}
		ctx.tails[tok] = w
		if i == 0 {
			ctx.trigger = w
			ctx.hasTrigger = true
		}
	}
	return ctx, nil
}

// collapse finishes any pending parallel reads on token tok and returns
// its up-to-date tail.
func (ctx *stmtCtx) collapse(tok string) src {
	if p := ctx.pending[tok]; len(p) > 0 {
		ctx.tails[tok] = ctx.b.synchOf(p, ctx.id, tok)
		delete(ctx.pending, tok)
	}
	return ctx.tails[tok]
}

// gateRead returns the access wire for a read on the given token lines and
// registers the op's completion: sequentially threaded normally, or fed a
// replica with the completion collected later under §6.2.
func (ctx *stmtCtx) gateRead(tokens []string) (gate src, complete func(accessOut src)) {
	if ctx.b.parReads {
		wires := make([]src, 0, len(tokens))
		for _, t := range tokens {
			wires = append(wires, ctx.tails[t])
		}
		gate = ctx.b.synchOf(wires, ctx.id, tokens[0])
		return gate, func(out src) {
			for _, t := range tokens {
				ctx.pending[t] = append(ctx.pending[t], out)
			}
		}
	}
	wires := make([]src, 0, len(tokens))
	for _, t := range tokens {
		wires = append(wires, ctx.collapse(t))
	}
	gate = ctx.b.synchOf(wires, ctx.id, tokens[0])
	return gate, func(out src) {
		for _, t := range tokens {
			ctx.tails[t] = out
		}
	}
}

// gateWrite returns the access wire for a write: all pending reads on the
// token lines complete first; the store's completion becomes the new tail.
func (ctx *stmtCtx) gateWrite(tokens []string) (gate src, complete func(accessOut src)) {
	wires := make([]src, 0, len(tokens))
	for _, t := range tokens {
		wires = append(wires, ctx.collapse(t))
	}
	gate = ctx.b.synchOf(wires, ctx.id, tokens[0])
	return gate, func(out src) {
		for _, t := range tokens {
			ctx.tails[t] = out
		}
	}
}

// loadScalar emits the (single) load of scalar variable v for this block.
func (ctx *stmtCtx) loadScalar(v string) {
	b := ctx.b
	toks := b.tokensOf[v]
	if len(toks) == 1 && b.isValueToken(toks[0]) {
		// §6.1: the token line carries the value; no load needed.
		ctx.vals[v] = ctx.tails[toks[0]]
		return
	}
	gate, complete := ctx.gateRead(toks)
	ld := b.out.Add(&dfg.Node{Kind: dfg.Load, Var: v, Stmt: ctx.id})
	b.out.Connect(gate.node, gate.port, ld.ID, 0, true)
	complete(src{ld.ID, 1})
	ctx.vals[v] = src{ld.ID, 0}
}

// compile builds the dataflow subgraph of an expression and returns the
// wire carrying its value. Scalar reads use the block's pre-loaded values;
// array reads emit LoadIdx operations threaded on the array's token lines
// in evaluation order.
func (ctx *stmtCtx) compile(e lang.Expr) (src, error) {
	b := ctx.b
	switch x := e.(type) {
	case *lang.IntLit:
		if !ctx.hasTrigger {
			return src{}, fmt.Errorf("translate: internal: no trigger wire for constant in %s", b.g.Nodes[ctx.id])
		}
		c := b.out.Add(&dfg.Node{Kind: dfg.Const, Val: x.Value, Stmt: ctx.id})
		b.out.Connect(ctx.trigger.node, ctx.trigger.port, c.ID, 0, true)
		return src{c.ID, 0}, nil
	case *lang.VarRef:
		v, ok := ctx.vals[x.Name]
		if !ok {
			return src{}, fmt.Errorf("translate: internal: %s not pre-loaded in %s", x.Name, b.g.Nodes[ctx.id])
		}
		return v, nil
	case *lang.IndexRef:
		idx, err := ctx.compile(x.Index)
		if err != nil {
			return src{}, err
		}
		if b.istructs[x.Name] {
			// I-structure read: no access token; the memory defers the
			// read until the cell is written.
			ld := b.out.Add(&dfg.Node{Kind: dfg.ILoad, Var: x.Name, Stmt: ctx.id})
			b.out.Connect(idx.node, idx.port, ld.ID, 0, false)
			return src{ld.ID, 0}, nil
		}
		gate, complete := ctx.gateRead(b.tokensOf[x.Name])
		ld := b.out.Add(&dfg.Node{Kind: dfg.LoadIdx, Var: x.Name, Stmt: ctx.id})
		b.out.Connect(idx.node, idx.port, ld.ID, 0, false)
		b.out.Connect(gate.node, gate.port, ld.ID, 1, true)
		complete(src{ld.ID, 1})
		return src{ld.ID, 0}, nil
	case *lang.BinExpr:
		l, err := ctx.compile(x.L)
		if err != nil {
			return src{}, err
		}
		r, err := ctx.compile(x.R)
		if err != nil {
			return src{}, err
		}
		op := b.out.Add(&dfg.Node{Kind: dfg.BinOp, Op: x.Op, Stmt: ctx.id})
		b.out.Connect(l.node, l.port, op.ID, 0, false)
		b.out.Connect(r.node, r.port, op.ID, 1, false)
		return src{op.ID, 0}, nil
	case *lang.UnExpr:
		v, err := ctx.compile(x.X)
		if err != nil {
			return src{}, err
		}
		op := b.out.Add(&dfg.Node{Kind: dfg.UnOp, Op: x.Op, Stmt: ctx.id})
		b.out.Connect(v.node, v.port, op.ID, 0, false)
		return src{op.ID, 0}, nil
	}
	return src{}, fmt.Errorf("translate: unknown expression %T", e)
}

// consumedTokens returns the sorted token set a statement block consumes:
// the tokens of every variable it references plus any §6.3 completion
// tokens attached to it.
func (b *builder) consumedTokens(id int) []string {
	set := map[string]bool{}
	for v := range b.g.Refs(id) {
		if b.istructs[v] {
			continue
		}
		for _, tok := range b.tokensOf[v] {
			set[tok] = true
		}
	}
	if ps, ok := b.pstores[id]; ok {
		set[ps.DoneToken()] = true
	}
	return sortedTokens(set)
}

func (b *builder) buildAssign(id int) error {
	n := b.g.Nodes[id]
	consumed := b.consumedTokens(id)
	ctx, err := b.newStmtCtx(id, consumed)
	if err != nil {
		return err
	}

	// Read block: one load per distinct scalar variable read, in name
	// order ("the assignment schema begins by reading the values it will
	// reference", §3).
	for _, v := range sortedTokens(b.g.ReadSet(id)) {
		if !b.g.Prog.IsArray(v) {
			ctx.loadScalar(v)
		}
	}

	var idxSrc src
	if n.TargetIndex != nil {
		if idxSrc, err = ctx.compile(n.TargetIndex); err != nil {
			return err
		}
	}
	val, err := ctx.compile(n.RHS)
	if err != nil {
		return err
	}

	// Store.
	target := n.Target
	toks := b.tokensOf[target]
	switch {
	case n.TargetIndex == nil && len(toks) == 1 && b.isValueToken(toks[0]):
		// §6.1: the value rides the token line; no store.
		ctx.collapse(toks[0])
		ctx.tails[toks[0]] = val
	case n.TargetIndex == nil:
		gate, complete := ctx.gateWrite(toks)
		st := b.out.Add(&dfg.Node{Kind: dfg.Store, Var: target, Stmt: id})
		b.out.Connect(val.node, val.port, st.ID, 0, false)
		b.out.Connect(gate.node, gate.port, st.ID, 1, true)
		complete(src{st.ID, 0})
	case b.istructs[target]:
		// I-structure write: index and value in, no token, no output.
		st := b.out.Add(&dfg.Node{Kind: dfg.IStore, Var: target, Stmt: id})
		b.out.Connect(idxSrc.node, idxSrc.port, st.ID, 0, false)
		b.out.Connect(val.node, val.port, st.ID, 1, false)
	default:
		ps, parallel := b.pstores[id]
		st := b.out.Add(&dfg.Node{Kind: dfg.StoreIdx, Var: target, Stmt: id})
		b.out.Connect(idxSrc.node, idxSrc.port, st.ID, 0, false)
		b.out.Connect(val.node, val.port, st.ID, 1, false)
		if parallel {
			// §6.3 / Figure 14(b): the store receives a replica of the
			// access token, which passes to the next iteration
			// immediately; the store's completion joins the loop's
			// completion line.
			wires := make([]src, 0, len(toks))
			for _, t := range toks {
				wires = append(wires, ctx.collapse(t))
			}
			gate := b.synchOf(wires, id, ps.Array)
			b.out.Connect(gate.node, gate.port, st.ID, 2, true)
			d := ps.DoneToken()
			ctx.tails[d] = b.synchOf([]src{ctx.collapse(d), {st.ID, 0}}, id, d)
		} else {
			gate, complete := ctx.gateWrite(toks)
			b.out.Connect(gate.node, gate.port, st.ID, 2, true)
			complete(src{st.ID, 0})
		}
	}

	for _, tok := range consumed {
		b.setTap(b.tapT, id, tok, ctx.collapse(tok))
	}
	return nil
}

func (b *builder) buildFork(id int) error {
	n := b.g.Nodes[id]
	consumed := b.consumedTokens(id)
	switched := b.placement.Tokens(id)
	consumedSet := map[string]bool{}
	for _, t := range consumed {
		consumedSet[t] = true
	}

	ctx, err := b.newStmtCtx(id, consumed)
	if err != nil {
		return err
	}
	// Switched-but-not-read tokens enter at the switch directly.
	swIn := map[string]src{}
	for _, tok := range switched {
		if consumedSet[tok] {
			continue
		}
		w, err := b.inputSrc(id, tok)
		if err != nil {
			return err
		}
		swIn[tok] = w
		if !ctx.hasTrigger {
			ctx.trigger = w
			ctx.hasTrigger = true
		}
	}
	if len(consumed) == 0 && len(switched) == 0 {
		// A fork that reads nothing and switches nothing has no dataflow
		// presence at all; source vectors routed every token past it.
		return nil
	}

	// Read block for the predicate's variables.
	for _, v := range sortedTokens(b.g.ReadSet(id)) {
		if !b.g.Prog.IsArray(v) {
			ctx.loadScalar(v)
		}
	}
	pval, err := ctx.compile(n.Cond)
	if err != nil {
		return err
	}

	for _, tok := range switched {
		var data src
		if consumedSet[tok] {
			data = ctx.collapse(tok)
		} else {
			data = swIn[tok]
		}
		sw := b.out.Add(&dfg.Node{Kind: dfg.Switch, Tok: tok, Stmt: id})
		b.out.Connect(data.node, data.port, sw.ID, 0, b.dummyFor(tok))
		b.out.Connect(pval.node, pval.port, sw.ID, 1, false)
		b.setTap(b.tapT, id, tok, src{sw.ID, 0})
		b.setTap(b.tapF, id, tok, src{sw.ID, 1})
	}
	// Read-but-unswitched tokens leave through the post-read tap.
	switchedSet := map[string]bool{}
	for _, t := range switched {
		switchedSet[t] = true
	}
	for _, tok := range consumed {
		if !switchedSet[tok] {
			b.setTap(b.tapR, id, tok, ctx.collapse(tok))
		}
	}
	return nil
}

func sortedTokens[T any](m map[string]T) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
