package chanexec

import (
	"errors"
	"testing"
	"time"

	"ctdf/internal/cfg"
	"ctdf/internal/fault"
	"ctdf/internal/machcheck"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

func translateWorkload(t *testing.T, name string, opt translate.Options) *translate.Result {
	t.Helper()
	g := cfg.MustBuild(workloads.MustByName(name).Parse())
	res, err := translate.Translate(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// countSites runs res once with a counting-pass injector, returning the
// eligible site count and the clean run's snapshot for oracle comparison.
func countSites(t *testing.T, res *translate.Result, class fault.Class) (int64, string, int64) {
	t.Helper()
	in := fault.NewInjector(fault.Plan{Class: class, Site: 0})
	out, err := Run(res.Graph, Config{Inject: in})
	if err != nil {
		t.Fatalf("counting pass failed: %v", err)
	}
	if in.Injected() {
		t.Fatal("counting pass injected a fault")
	}
	return in.Sites(), out.Store.Snapshot(), out.Ops
}

func faultSites(n int64) []int64 {
	if n <= 6 {
		sites := make([]int64, 0, n)
		for s := int64(1); s <= n; s++ {
			sites = append(sites, s)
		}
		return sites
	}
	return []int64{1, 2, n / 3, n / 2, n - 1, n}
}

func TestChanexecDetectsInjectedFaults(t *testing.T) {
	res := translateWorkload(t, "array-sum", translate.Options{Schema: translate.Schema2Opt})
	for _, class := range []fault.Class{
		fault.DropToken, fault.DupToken, fault.CorruptTag, fault.WedgeMailbox,
	} {
		sites, _, _ := countSites(t, res, class)
		if sites == 0 {
			t.Fatalf("%s: no eligible sites in array-sum", class)
		}
		// A wedged run can only end via the watchdog, so every wedge site
		// burns at least one full idle window; keep it short. The window is
		// idle time, not total runtime: the watchdog re-arms while tokens
		// still move, so it cannot expire before delivery reaches the wedge
		// site — the fault is guaranteed to fire, no retries needed.
		deadline := 5 * time.Second
		if class == fault.WedgeMailbox {
			deadline = 150 * time.Millisecond
		}
		for _, site := range faultSites(sites) {
			in := fault.NewInjector(fault.Plan{Class: class, Site: site})
			out, err := Run(res.Graph, Config{Inject: in, Deadline: deadline})
			if !in.Injected() {
				t.Fatalf("%s site %d/%d: fault did not fire (deadline %v)", class, site, sites, deadline)
			}
			if err == nil {
				t.Errorf("%s site %d/%d: fault went undetected", class, site, sites)
				continue
			}
			if _, ok := machcheck.Of(err); !ok {
				t.Errorf("%s site %d: untyped error %v", class, site, err)
			}
			if out == nil {
				t.Errorf("%s site %d: no partial outcome alongside %v", class, site, err)
			}
		}
	}
}

func TestChanexecMisfireDetectedByCheckOrOracle(t *testing.T) {
	res := translateWorkload(t, "array-sum", translate.Options{Schema: translate.Schema2Opt})
	sites, cleanSnap, cleanOps := countSites(t, res, fault.MisfireValue)
	if sites == 0 {
		t.Fatal("no binop sites in array-sum")
	}
	for _, site := range faultSites(sites) {
		in := fault.NewInjector(fault.Plan{Class: fault.MisfireValue, Site: site})
		out, err := Run(res.Graph, Config{Inject: in, Deadline: 5 * time.Second, MaxOps: 1_000_000})
		if !in.Injected() {
			t.Fatalf("misfire site %d/%d: fault did not fire", site, sites)
		}
		if err == nil && out.Store.Snapshot() == cleanSnap && out.Ops == cleanOps {
			t.Errorf("misfire site %d/%d: corrupted predicate escaped checks, oracle, and op counts", site, sites)
		}
	}
}

func TestWatchdogReportsDeadlockWithinDeadline(t *testing.T) {
	// A wedged mailbox freezes an operator, so the run can never quiesce;
	// the watchdog must convert the hang into a typed ErrDeadlock well
	// within the test's own timeout, with mailbox-depth diagnostics.
	res := translateWorkload(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
	in := fault.NewInjector(fault.Plan{Class: fault.WedgeMailbox, Site: 10})
	start := time.Now()
	out, err := Run(res.Graph, Config{Inject: in, Deadline: 200 * time.Millisecond})
	elapsed := time.Since(start)
	if !errors.Is(err, machcheck.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if elapsed > 3*time.Second {
		t.Errorf("watchdog took %v to trip a 200ms deadline", elapsed)
	}
	var ce *machcheck.Error
	if !errors.As(err, &ce) {
		t.Fatalf("err %v is not a *machcheck.Error", err)
	}
	wedged := false
	for _, s := range ce.Stuck {
		if len(s.Label) > 0 && s.Have >= 0 {
			wedged = true
		}
	}
	if !wedged && len(ce.Stuck) == 0 {
		t.Error("watchdog error carries no mailbox diagnostics")
	}
	if out == nil {
		t.Error("watchdog abort returned no partial outcome")
	}
}

func TestChanexecDeadlineOnLiveRunStillTyped(t *testing.T) {
	// Even a live (non-wedged) run that overruns its deadline must come
	// back typed, with workers torn down — never a hang.
	res := translateWorkload(t, "nested-loops", translate.Options{Schema: translate.Schema2Opt})
	out, err := Run(res.Graph, Config{Deadline: 1}) // 1ns: expires immediately
	if err != nil && !errors.Is(err, machcheck.ErrDeadlock) {
		t.Fatalf("err = %v, want nil or ErrDeadlock", err)
	}
	if err != nil && out == nil {
		t.Error("no partial outcome on deadline abort")
	}
}

// TestSeedingCannotQuiesceSpuriously pins down the seeding race behind
// the rare clean-run "quiescent before end fired" flake: workers start
// before the seed loop runs, so if every token sent so far is absorbed
// (matched partially and retired) before the next send, the in-flight
// count hits zero mid-seeding. The seed loop must hold a virtual
// in-flight token until the last seed is out. seedTestDelay forces the
// widest window — every seed chain drains fully before the next send —
// so without the guard this fails deterministically, not once in 450.
func TestSeedingCannotQuiesceSpuriously(t *testing.T) {
	res := translateWorkload(t, "bubble-sort", translate.Options{Schema: translate.Schema2Opt})
	seedTestDelay = func() { time.Sleep(2 * time.Millisecond) }
	defer func() { seedTestDelay = nil }()
	out, err := Run(res.Graph, Config{Deadline: time.Minute})
	if err != nil {
		t.Fatalf("clean run with drained seeding failed: %v", err)
	}
	want, _, _ := cleanRunSnapshot(t, res)
	if got := out.Store.Snapshot(); got != want {
		t.Errorf("snapshot diverged:\n%s\nwant:\n%s", got, want)
	}
}

// cleanRunSnapshot runs res without faults and returns its snapshot.
func cleanRunSnapshot(t *testing.T, res *translate.Result) (string, int64, int64) {
	t.Helper()
	out, err := Run(res.Graph, Config{})
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	return out.Store.Snapshot(), out.Ops, 0
}
