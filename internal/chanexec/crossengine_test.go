package chanexec_test

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/chanexec"
	"ctdf/internal/machine"
	"ctdf/internal/obs"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// TestCrossEngineFiringCountsAgree asserts dataflow determinacy at the
// operator level: the cycle-driven machine and the goroutine-per-node
// channel engine must fire every node exactly the same number of times
// on every workload — scheduling freedom may reorder firings but never
// add or remove one.
func TestCrossEngineFiringCountsAgree(t *testing.T) {
	schemas := []translate.Options{
		{Schema: translate.Schema2},
		{Schema: translate.Schema2Opt},
	}
	for _, w := range workloads.All() {
		for _, opt := range schemas {
			g := cfg.MustBuild(w.Parse())
			res, err := translate.Translate(g, opt)
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}

			col := obs.NewCollector(res.Graph, obs.Options{})
			mout, err := machine.Run(res.Graph, machine.Config{Collector: col})
			if err != nil {
				t.Fatalf("%s/%v machine: %v", w.Name, opt.Schema, err)
			}
			mrep := col.Report(mout.Stats.Cycles, nil)

			counters := obs.NewNodeCounters(res.Graph.NumNodes())
			cout, err := chanexec.Run(res.Graph, chanexec.Config{Counters: counters})
			if err != nil {
				t.Fatalf("%s/%v chanexec: %v", w.Name, opt.Schema, err)
			}

			if mout.Stats.Ops != int(cout.Ops) {
				t.Errorf("%s/%v: total ops differ: machine %d, chanexec %d",
					w.Name, opt.Schema, mout.Stats.Ops, cout.Ops)
			}
			mf, cf := mrep.NodeFirings(), counters.Firings()
			if len(mf) != len(cf) {
				t.Fatalf("%s/%v: counter lengths differ: %d vs %d", w.Name, opt.Schema, len(mf), len(cf))
			}
			for id := range mf {
				if mf[id] != cf[id] {
					t.Errorf("%s/%v: node %s fired %d times on machine, %d on chanexec",
						w.Name, opt.Schema, res.Graph.Nodes[id], mf[id], cf[id])
				}
			}
			if mout.Store.Snapshot() != cout.Store.Snapshot() {
				t.Errorf("%s/%v: final stores differ", w.Name, opt.Schema)
			}
		}
	}
}
