package chanexec_test

import (
	"fmt"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/chanexec"
	"ctdf/internal/machine"
	"ctdf/internal/obs"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// TestCrossEngineFiringCountsAgree asserts dataflow determinacy at the
// operator level: the cycle-driven machine — under every scheduling
// regime it offers (unlimited processors, a tight processor bound, a
// seeded-random issue order, and the parallel issue stage) — and the
// goroutine-per-node channel engine must fire every node exactly the
// same number of times on every workload. Scheduling freedom may reorder
// firings but never add or remove one, and every engine must converge on
// the same final store.
func TestCrossEngineFiringCountsAgree(t *testing.T) {
	schemas := []translate.Options{
		{Schema: translate.Schema2},
		{Schema: translate.Schema2Opt},
	}
	variants := []struct {
		name string
		cfg  machine.Config
	}{
		{"p0", machine.Config{}},
		{"p1", machine.Config{Processors: 1}},
		{"p3", machine.Config{Processors: 3}},
		{"p0-rand", machine.Config{RandomSeed: 42}},
		{"p0-par", machine.Config{ParallelIssue: true}},
	}
	for _, w := range workloads.All() {
		for _, opt := range schemas {
			g := cfg.MustBuild(w.Parse())
			res, err := translate.Translate(g, opt)
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}

			counters := obs.NewNodeCounters(res.Graph.NumNodes())
			cout, err := chanexec.Run(res.Graph, chanexec.Config{Counters: counters})
			if err != nil {
				t.Fatalf("%s/%v chanexec: %v", w.Name, opt.Schema, err)
			}
			cf := counters.Firings()

			for _, v := range variants {
				tag := fmt.Sprintf("%s/%v/%s", w.Name, opt.Schema, v.name)
				col := obs.NewCollector(res.Graph, obs.Options{})
				mc := v.cfg
				mc.Collector = col
				mout, err := machine.Run(res.Graph, mc)
				if err != nil {
					t.Fatalf("%s machine: %v", tag, err)
				}
				mrep := col.Report(mout.Stats.Cycles, nil)

				if mout.Stats.Ops != int(cout.Ops) {
					t.Errorf("%s: total ops differ: machine %d, chanexec %d",
						tag, mout.Stats.Ops, cout.Ops)
				}
				mf := mrep.NodeFirings()
				if len(mf) != len(cf) {
					t.Fatalf("%s: counter lengths differ: %d vs %d", tag, len(mf), len(cf))
				}
				for id := range mf {
					if mf[id] != cf[id] {
						t.Errorf("%s: node %s fired %d times on machine, %d on chanexec",
							tag, res.Graph.Nodes[id], mf[id], cf[id])
					}
				}
				if mout.Store.Snapshot() != cout.Store.Snapshot() {
					t.Errorf("%s: final stores differ", tag)
				}
			}
		}
	}
}
