package chanexec_test

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/chanexec"
	"ctdf/internal/machine"
	"ctdf/internal/obs"
	"ctdf/internal/obs/journal"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// TestLamportClocksMatchMachineCausalDepth asserts that the channel
// engine's Lamport logical timestamps — each firing stamped
// max(operand clocks)+1, with no global clock anywhere — agree with the
// causal depths computed from the machine engine's provenance journal
// on every workload and schema. Both quantities are per-firing
// properties of the determinate dataflow graph, so the per-node maxima
// must be identical even though one engine is cycle-driven and the
// other free-running; and the machine's journal must linearize: every
// producer firing finishes no later than its consumer issues, i.e. the
// partial causal order embeds into the machine's total cycle order.
func TestLamportClocksMatchMachineCausalDepth(t *testing.T) {
	schemas := []translate.Options{
		{Schema: translate.Schema1},
		{Schema: translate.Schema2},
		{Schema: translate.Schema2Opt},
	}
	for _, w := range workloads.All() {
		for _, opt := range schemas {
			g := cfg.MustBuild(w.Parse())
			res, err := translate.Translate(g, opt)
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}

			counters := obs.NewNodeCounters(res.Graph.NumNodes())
			if _, err := chanexec.Run(res.Graph, chanexec.Config{Counters: counters}); err != nil {
				t.Fatalf("%s/%v chanexec: %v", w.Name, opt.Schema, err)
			}
			clocks := counters.Clocks()

			for _, procs := range []int{0, 2} {
				rec := journal.NewRecorder(res.Graph, w.Name, journal.Config{Processors: procs, MemLatency: 2})
				col := obs.NewCollector(res.Graph, obs.Options{Journal: rec})
				out, err := machine.Run(res.Graph, machine.Config{Processors: procs, MemLatency: 2, Collector: col})
				if err != nil {
					t.Fatalf("%s/%v machine: %v", w.Name, opt.Schema, err)
				}
				j := rec.Finish(out.Stats.Cycles)

				if err := j.CheckLinearization(); err != nil {
					t.Errorf("%s/%v P=%d: %v", w.Name, opt.Schema, procs, err)
				}
				depths := j.NodeMaxDepths()
				if len(depths) != len(clocks) {
					t.Fatalf("%s/%v: node counts differ: %d vs %d", w.Name, opt.Schema, len(depths), len(clocks))
				}
				for id := range depths {
					if depths[id] != clocks[id] {
						t.Errorf("%s/%v P=%d: node %s causal depth %d on machine, Lamport clock %d on chanexec",
							w.Name, opt.Schema, procs, res.Graph.Nodes[id], depths[id], clocks[id])
					}
				}
			}
		}
	}
}
