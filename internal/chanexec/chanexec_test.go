package chanexec

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/interp"
	"ctdf/internal/machine"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

var engineSchemas = []translate.Options{
	{Schema: translate.Schema1},
	{Schema: translate.Schema2},
	{Schema: translate.Schema2Opt},
	{Schema: translate.Schema3},
	{Schema: translate.Schema2Opt, EliminateMemory: true, ParallelReads: true, ParallelArrayStores: true},
}

func TestEnginesAgree(t *testing.T) {
	// The machine simulator and the goroutine/channel engine must compute
	// identical final states on every workload × schema (dataflow
	// determinacy, experiment E12).
	for _, w := range workloads.All() {
		g := cfg.MustBuild(w.Parse())
		for _, opt := range engineSchemas {
			t.Run(w.Name+"/"+opt.Schema.String(), func(t *testing.T) {
				res, err := translate.Translate(g, opt)
				if err != nil {
					t.Fatal(err)
				}
				mo, err := machine.Run(res.Graph, machine.Config{})
				if err != nil {
					t.Fatal(err)
				}
				co, err := Run(res.Graph, Config{})
				if err != nil {
					t.Fatal(err)
				}
				ms := translate.FinalSnapshot(res, mo.Store, mo.EndValues)
				cs := translate.FinalSnapshot(res, co.Store, co.EndValues)
				if ms != cs {
					t.Errorf("engines disagree:\nmachine:\n%s\nchanexec:\n%s", ms, cs)
				}
				if co.Ops != int64(mo.Stats.Ops) {
					t.Errorf("firing counts differ: chanexec %d vs machine %d", co.Ops, mo.Stats.Ops)
				}
			})
		}
	}
}

func TestEnginesAgreeOnRandomPrograms(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		w := workloads.Random(seed, 4, 2)
		g := cfg.MustBuild(w.Parse())
		res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
		if err != nil {
			t.Fatal(err)
		}
		mo, err := machine.Run(res.Graph, machine.Config{})
		if err != nil {
			t.Fatal(err)
		}
		co, err := Run(res.Graph, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if mo.Store.Snapshot() != co.Store.Snapshot() {
			t.Errorf("%s: engines disagree", w.Name)
		}
	}
}

func TestChanexecMatchesInterpreterWithBinding(t *testing.T) {
	w := workloads.FortranAlias
	b := interp.Binding{"x": "x", "z": "x"}
	g := cfg.MustBuild(w.Parse())
	want, err := interp.Run(g, interp.Options{Binding: b})
	if err != nil {
		t.Fatal(err)
	}
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema3})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Graph, Config{Binding: b})
	if err != nil {
		t.Fatal(err)
	}
	if out.Store.Snapshot() != want.Store.Snapshot() {
		t.Errorf("chanexec disagrees with interpreter:\n%s\nvs\n%s", out.Store.Snapshot(), want.Store.Snapshot())
	}
}

func TestChanexecRuntimeError(t *testing.T) {
	w := workloads.Workload{Name: "div0", Source: "var x, y\nx := 1 / y\n"}
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(res.Graph, Config{}); err == nil {
		t.Error("division by zero must surface as an error")
	}
}

func TestChanexecOpsBound(t *testing.T) {
	w := workloads.MustByName("fib-iterative")
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(res.Graph, Config{MaxOps: 10}); err == nil {
		t.Error("MaxOps must bound execution")
	}
}
