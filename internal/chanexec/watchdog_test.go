package chanexec

import (
	"errors"
	"testing"
	"time"

	"ctdf/internal/fault"
	"ctdf/internal/machcheck"
	"ctdf/internal/translate"
)

// These tests pin the root cause of the historical watchdog flake family
// (ROBUSTNESS.md, "Known flakes, root-caused"): the old watchdog was a
// one-shot wall-clock bound on *total* runtime, so on a loaded host it
// could kill a live run — aborting clean executions spuriously
// (TestQuickEngineAgreement) and expiring before token delivery reached a
// planned injection site (TestChanexecDetectsInjectedFaults). The fix
// bounds *idle* time instead: the watchdog re-arms whenever the delivered
// counter moved since its last expiry. The deliverTestDelay hook paces
// every send slower than the deadline, recreating the loaded-host
// interleaving deterministically instead of once in hundreds of CI runs.

// TestWatchdogExtendsLiveRunPacedSlowerThanDeadline: a clean run whose
// every token delivery is paced at 2ms against a 250ms deadline. The
// run makes ~800 deliveries, so total paced runtime spans several
// deadline windows; under the old one-shot watchdog this aborted
// deterministically. The progress-aware watchdog must keep extending
// (watchdogExtended advances — proof the run outlived the original
// deadline) and the run must complete with the clean snapshot. The
// deadline is deliberately two orders of magnitude above the per-send
// pacing: under -race a single time.Sleep can oversleep by tens of
// milliseconds, and one delivery stalling past the whole window is a
// genuine idle window the watchdog is *supposed* to flag.
func TestWatchdogExtendsLiveRunPacedSlowerThanDeadline(t *testing.T) {
	res := translateWorkload(t, "array-sum", translate.Options{Schema: translate.Schema2Opt})
	want, _, _ := cleanRunSnapshot(t, res)

	deliverTestDelay = func() { time.Sleep(2 * time.Millisecond) }
	defer func() { deliverTestDelay = nil }()
	extBefore := watchdogExtended.Load()
	out, err := Run(res.Graph, Config{Deadline: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("paced live run was killed by its watchdog: %v", err)
	}
	if got := out.Store.Snapshot(); got != want {
		t.Errorf("paced run snapshot diverged:\n%s\nwant:\n%s", got, want)
	}
	if watchdogExtended.Load() == extBefore {
		t.Error("watchdog never re-armed: the run finished inside one deadline, so this test exercised nothing — lower the deadline or raise the pacing")
	}
}

// TestWatchdogWaitsForDeepInjectionSite: a wedge planned at the very last
// delivery of the run, with every send paced at 1ms against a 250ms
// deadline. The old watchdog expired long before delivery reached the
// site, so the fault never fired and the run aborted as a plain
// uninjected deadline — the exact failure TestChanexecDetectsInjectedFaults
// used to retry around. The progress-aware watchdog cannot expire while
// deliveries still advance toward the site, so the wedge must fire, and
// only the genuinely silent wedged run may then be aborted, typed.
// (Same pacing-vs-deadline margin rationale as the test above.)
func TestWatchdogWaitsForDeepInjectionSite(t *testing.T) {
	res := translateWorkload(t, "array-sum", translate.Options{Schema: translate.Schema2Opt})
	sites, _, _ := countSites(t, res, fault.WedgeMailbox)
	if sites < 100 {
		t.Fatalf("array-sum has only %d deliveries; the deep-site scenario needs a long run", sites)
	}

	deliverTestDelay = func() { time.Sleep(time.Millisecond) }
	defer func() { deliverTestDelay = nil }()
	extBefore := watchdogExtended.Load()
	in := fault.NewInjector(fault.Plan{Class: fault.WedgeMailbox, Site: sites})
	out, err := Run(res.Graph, Config{Inject: in, Deadline: 250 * time.Millisecond})
	if !in.Injected() {
		t.Fatalf("wedge at final site %d never fired: watchdog aborted a progressing run (err = %v)", sites, err)
	}
	if !errors.Is(err, machcheck.ErrDeadlock) {
		t.Fatalf("wedged run ended with %v, want ErrDeadlock", err)
	}
	if out == nil {
		t.Error("wedged run returned no partial outcome")
	}
	if watchdogExtended.Load() == extBefore {
		t.Error("watchdog never re-armed: delivery reached the last site inside one deadline, so this test exercised nothing")
	}
}
