// Package chanexec executes dataflow graphs with one goroutine per
// operator and token delivery over per-node mailboxes — the natural Go
// realization of the dataflow firing rule ("operators that test conditions
// at their inputs and outputs to determine when to execute", §2.2). It
// validates the cycle-driven machine simulator: both engines must compute
// identical final states, because dataflow graphs are determinate.
//
// Tokens are never dropped: an execution is complete when the global
// in-flight token count reaches zero; if that happens before the end node
// has collected all access tokens, the graph deadlocked (a translation
// bug) and the engine reports it.
//
// The engine has no global clock, so its observability surface is the
// clockless subset of the machine simulator's: Config.Counters (an
// *obs.NodeCounters) records per-node firing counts, each slot written
// only by the owning node's goroutine. Dataflow determinacy makes those
// counts comparable across engines at per-instruction granularity —
// TestCrossEngineFiringCountsAgree asserts they match the machine
// simulator's exactly on the whole workload suite (see OBSERVABILITY.md).
package chanexec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ctdf/internal/dfg"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/obs"
	"ctdf/internal/token"
)

// Config configures an execution.
type Config struct {
	// Binding selects which aliased names share storage this run.
	Binding interp.Binding
	// MaxOps bounds total firings (default ten million).
	MaxOps int64
	// Counters, when non-nil, receives per-node firing counts. Each
	// node's slot is written only by that node's worker goroutine, so
	// plain increments are race-free; read it only after Run returns.
	Counters *obs.NodeCounters
}

// Outcome is the result of an execution.
type Outcome struct {
	Store     *interp.Store
	EndValues []int64
	// Ops is the number of operator firings.
	Ops int64
}

type msg struct {
	port int
	val  int64
	tg   token.Tag
}

// mailbox is an unbounded FIFO: sends never block, so cyclic graphs cannot
// deadlock on channel capacity.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []msg
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) push(m msg) {
	b.mu.Lock()
	b.q = append(b.q, m)
	b.mu.Unlock()
	b.cond.Signal()
}

func (b *mailbox) pop() (msg, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.q) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.q) == 0 {
		return msg{}, false
	}
	m := b.q[0]
	b.q = b.q[1:]
	return m, true
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

type engine struct {
	g        *dfg.Graph
	store    *interp.Store
	boxes    []*mailbox
	counters *obs.NodeCounters

	inflight atomic.Int64
	ops      atomic.Int64
	leftover atomic.Int64
	maxOps   int64

	done     chan struct{}
	doneOnce sync.Once
	failed   atomic.Bool
	errMu    sync.Mutex
	err      error

	endMu   sync.Mutex
	endVals []int64
	endDone bool

	// Procedure linkage (separate compilation): activation registry.
	procMu      sync.Mutex
	procByApply map[int]*dfg.CallInfo
	procLive    map[int]*chanActivation
	procNext    int

	// I-structure memory (§6.3): presence bits and deferred readers,
	// guarded by istructMu. Deferred reads count toward deferredReads;
	// quiescence with unsatisfied deferred reads is an error.
	istructMu     sync.Mutex
	istructFull   map[string][]bool
	istructWait   map[string]map[int64][]deferredRead
	deferredReads atomic.Int64
}

type deferredRead struct {
	node int
	tg   token.Tag
}

type chanActivation struct {
	info      *dfg.CallInfo
	callerTag token.Tag
	resolved  map[string]string
}

// Run executes the dataflow graph to completion.
func Run(g *dfg.Graph, cfg Config) (*Outcome, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Binding.Validate(g.Prog); err != nil {
		return nil, err
	}
	maxOps := cfg.MaxOps
	if maxOps == 0 {
		maxOps = 10_000_000
	}
	e := &engine{
		g:        g,
		store:    interp.NewStoreWithBinding(g.Prog, cfg.Binding),
		boxes:    make([]*mailbox, len(g.Nodes)),
		counters: cfg.Counters,
		maxOps:   maxOps,
		done:     make(chan struct{}),
	}
	e.endVals = make([]int64, g.Nodes[g.EndID].NIns)
	for i := range e.boxes {
		e.boxes[i] = newMailbox()
	}
	if len(g.Calls) > 0 {
		e.procByApply = map[int]*dfg.CallInfo{}
		e.procLive = map[int]*chanActivation{}
		for i := range g.Calls {
			e.procByApply[g.Calls[i].Apply] = &g.Calls[i]
		}
	}
	e.istructFull = map[string][]bool{}
	e.istructWait = map[string]map[int64][]deferredRead{}
	for _, n := range g.Nodes {
		if n.Kind == dfg.ILoad || n.Kind == dfg.IStore {
			if _, ok := e.istructFull[n.Var]; !ok {
				e.istructFull[n.Var] = make([]bool, g.Prog.ArraySize(n.Var))
				e.istructWait[n.Var] = map[int64][]deferredRead{}
			}
		}
	}

	var wg sync.WaitGroup
	for _, n := range g.Nodes {
		if n.Kind == dfg.Start {
			continue
		}
		wg.Add(1)
		go func(n *dfg.Node) {
			defer wg.Done()
			e.worker(n)
		}(n)
	}

	// The start node emits one dummy token per arc at the root context.
	for _, a := range g.OutArcs(g.StartID, 0) {
		e.send(a.To, msg{port: a.ToPort, val: 0, tg: token.Root})
	}
	<-e.done
	for _, b := range e.boxes {
		b.close()
	}
	wg.Wait()

	e.errMu.Lock()
	err := e.err
	e.errMu.Unlock()
	if err != nil {
		return nil, err
	}
	if e.procLive != nil {
		e.procMu.Lock()
		live := len(e.procLive)
		e.procMu.Unlock()
		if live != 0 {
			return nil, fmt.Errorf("chanexec: %d procedure activations never returned", live)
		}
	}
	if n := e.deferredReads.Load(); n != 0 {
		return nil, fmt.Errorf("chanexec: %d I-structure reads of never-written cells", n)
	}
	// Strict conservation: no partially matched activation may survive the
	// run (its partner token can never arrive).
	if n := e.leftover.Load(); n != 0 {
		return nil, fmt.Errorf("chanexec: %d partially matched activations left after end fired (token leak)", n)
	}
	return &Outcome{Store: e.store, EndValues: e.endVals, Ops: e.ops.Load()}, nil
}

func (e *engine) fail(err error) {
	e.failed.Store(true)
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.errMu.Unlock()
	e.doneOnce.Do(func() { close(e.done) })
}

// send delivers a token; the in-flight count rises before delivery so the
// quiescence check cannot fire spuriously.
func (e *engine) send(node int, m msg) {
	e.inflight.Add(1)
	e.boxes[node].push(m)
}

// retire marks one delivered token fully processed; when the last token
// retires the execution is quiescent.
func (e *engine) retire() {
	if e.inflight.Add(-1) == 0 {
		e.endMu.Lock()
		finished := e.endDone
		e.endMu.Unlock()
		if !finished {
			e.fail(fmt.Errorf("chanexec: quiescent before end fired (deadlocked tokens)"))
			return
		}
		e.doneOnce.Do(func() { close(e.done) })
	}
}

type matchState struct {
	have uint64
	vals []int64
	tg   token.Tag
	n    int
}

func (e *engine) worker(n *dfg.Node) {
	box := e.boxes[n.ID]
	match := map[string]*matchState{}
	defer func() { e.leftover.Add(int64(len(match))) }()
	anyArrival := n.Kind == dfg.Merge || n.Kind == dfg.LoopEntry || n.Kind == dfg.Param
	for {
		m, ok := box.pop()
		if !ok {
			return
		}
		if anyArrival || n.NIns <= 1 {
			e.fire(n, []int64{m.val}, m.port, m.tg)
			e.retire()
			continue
		}
		st := match[m.tg.Key()]
		if st == nil {
			st = &matchState{vals: make([]int64, n.NIns), tg: m.tg}
			match[m.tg.Key()] = st
		}
		bit := uint64(1) << uint(m.port)
		if st.have&bit != 0 {
			e.fail(fmt.Errorf("chanexec: duplicate token at %s port %d tag %q", n, m.port, m.tg.Key()))
			e.retire()
			continue
		}
		st.have |= bit
		st.vals[m.port] = m.val
		st.n++
		if st.n == n.NIns {
			delete(match, m.tg.Key())
			e.fire(n, st.vals, 0, st.tg)
		}
		e.retire()
	}
}

// resolveName maps a variable name to the storage it denotes under tg:
// formals resolve through the innermost activation's binding.
func (e *engine) resolveName(name string, tg token.Tag) string {
	if e.procLive == nil {
		return name
	}
	e.procMu.Lock()
	defer e.procMu.Unlock()
	return e.resolveNameLocked(name, tg)
}

func (e *engine) resolveNameLocked(name string, tg token.Tag) string {
	act := tg.Activation()
	if act < 0 {
		return name
	}
	rec := e.procLive[act]
	if rec == nil {
		return name
	}
	if r, ok := rec.resolved[name]; ok {
		return r
	}
	return name
}

// emit broadcasts val on every arc leaving (node, port).
func (e *engine) emit(node, port int, val int64, tg token.Tag) {
	for _, a := range e.g.OutArcs(node, port) {
		e.send(a.To, msg{port: a.ToPort, val: val, tg: tg})
	}
}

func (e *engine) fire(n *dfg.Node, vals []int64, port int, tg token.Tag) {
	if e.failed.Load() {
		return
	}
	if e.ops.Add(1) > e.maxOps {
		e.fail(fmt.Errorf("chanexec: exceeded %d firings (runaway loop?)", e.maxOps))
		return
	}
	e.counters.Inc(n.ID)
	switch n.Kind {
	case dfg.End:
		if !tg.IsRoot() {
			e.fail(fmt.Errorf("chanexec: token reached end with non-root tag %q", tg.Key()))
			return
		}
		e.endMu.Lock()
		copy(e.endVals, vals)
		e.endDone = true
		e.endMu.Unlock()

	case dfg.Const:
		e.emit(n.ID, 0, n.Val, tg)

	case dfg.BinOp:
		v, err := interp.Apply(n.Op, vals[0], vals[1])
		if err != nil {
			e.fail(fmt.Errorf("chanexec: %s: %w", n, err))
			return
		}
		e.emit(n.ID, 0, v, tg)

	case dfg.UnOp:
		var v int64
		switch n.Op {
		case lang.OpNeg:
			v = -vals[0]
		case lang.OpNot:
			if vals[0] == 0 {
				v = 1
			}
		default:
			e.fail(fmt.Errorf("chanexec: bad unary op %v", n.Op))
			return
		}
		e.emit(n.ID, 0, v, tg)

	case dfg.Switch:
		out := 0
		if vals[1] == 0 {
			out = 1
		}
		e.emit(n.ID, out, vals[0], tg)

	case dfg.Merge, dfg.Param:
		e.emit(n.ID, 0, vals[0], tg)

	case dfg.Apply:
		info := e.procByApply[n.ID]
		if info == nil {
			e.fail(fmt.Errorf("chanexec: apply d%d has no call linkage", n.ID))
			return
		}
		e.procMu.Lock()
		id := e.procNext
		e.procNext++
		rec := &chanActivation{info: info, callerTag: tg, resolved: map[string]string{}}
		for formal, actual := range info.Bindings {
			rec.resolved[formal] = e.resolveNameLocked(actual, tg)
		}
		e.procLive[id] = rec
		e.procMu.Unlock()
		nt := tg.PushCall(id)
		for j := range info.Params {
			e.emit(n.ID, len(info.InTokens)+j, 0, nt)
		}

	case dfg.ProcReturn:
		_, id, err := tg.PopCall()
		if err != nil {
			e.fail(fmt.Errorf("chanexec: %s: %w", n, err))
			return
		}
		e.procMu.Lock()
		rec := e.procLive[id]
		delete(e.procLive, id)
		e.procMu.Unlock()
		if rec == nil {
			e.fail(fmt.Errorf("chanexec: return for unknown activation %d", id))
			return
		}
		for p := 0; p < len(rec.info.InTokens); p++ {
			e.emit(rec.info.Apply, p, 0, rec.callerTag)
		}

	case dfg.Synch:
		e.emit(n.ID, 0, 0, tg)

	case dfg.LoopEntry:
		var nt token.Tag
		var err error
		if port == 0 {
			nt = tg.Push()
		} else {
			nt, err = tg.Bump()
			if err != nil {
				e.fail(fmt.Errorf("chanexec: %s: %w", n, err))
				return
			}
		}
		e.emit(n.ID, 0, vals[0], nt)

	case dfg.LoopExit:
		nt, err := tg.Pop()
		if err != nil {
			e.fail(fmt.Errorf("chanexec: %s: %w", n, err))
			return
		}
		e.emit(n.ID, 0, vals[0], nt)

	case dfg.Load:
		e.emit(n.ID, 0, e.store.Get(e.resolveName(n.Var, tg)), tg)
		e.emit(n.ID, 1, 0, tg)

	case dfg.Store:
		e.store.Set(e.resolveName(n.Var, tg), vals[0])
		e.emit(n.ID, 0, 0, tg)

	case dfg.LoadIdx:
		v, err := e.store.GetIdx(e.resolveName(n.Var, tg), vals[0])
		if err != nil {
			e.fail(fmt.Errorf("chanexec: %s: %w", n, err))
			return
		}
		e.emit(n.ID, 0, v, tg)
		e.emit(n.ID, 1, 0, tg)

	case dfg.StoreIdx:
		if err := e.store.SetIdx(e.resolveName(n.Var, tg), vals[0], vals[1]); err != nil {
			e.fail(fmt.Errorf("chanexec: %s: %w", n, err))
			return
		}
		e.emit(n.ID, 0, 0, tg)

	case dfg.ILoad:
		idx := vals[0]
		e.istructMu.Lock()
		full := e.istructFull[n.Var]
		if idx < 0 || idx >= int64(len(full)) {
			e.istructMu.Unlock()
			e.fail(fmt.Errorf("chanexec: I-structure index %d out of range for %s[%d]", idx, n.Var, len(full)))
			return
		}
		if !full[idx] {
			e.istructWait[n.Var][idx] = append(e.istructWait[n.Var][idx], deferredRead{node: n.ID, tg: tg})
			e.deferredReads.Add(1)
			e.istructMu.Unlock()
			return
		}
		e.istructMu.Unlock()
		v, err := e.store.GetIdx(n.Var, idx)
		if err != nil {
			e.fail(fmt.Errorf("chanexec: %s: %w", n, err))
			return
		}
		e.emit(n.ID, 0, v, tg)

	case dfg.IStore:
		idx := vals[0]
		e.istructMu.Lock()
		full := e.istructFull[n.Var]
		if idx < 0 || idx >= int64(len(full)) {
			e.istructMu.Unlock()
			e.fail(fmt.Errorf("chanexec: I-structure index %d out of range for %s[%d]", idx, n.Var, len(full)))
			return
		}
		if full[idx] {
			e.istructMu.Unlock()
			e.fail(fmt.Errorf("chanexec: I-structure write-once violation: %s[%d] written twice", n.Var, idx))
			return
		}
		full[idx] = true
		if err := e.store.SetIdx(n.Var, idx, vals[1]); err != nil {
			e.istructMu.Unlock()
			e.fail(fmt.Errorf("chanexec: %s: %w", n, err))
			return
		}
		waiters := e.istructWait[n.Var][idx]
		delete(e.istructWait[n.Var], idx)
		e.istructMu.Unlock()
		for _, w := range waiters {
			e.deferredReads.Add(-1)
			e.emit(w.node, 0, vals[1], w.tg)
		}

	default:
		e.fail(fmt.Errorf("chanexec: cannot fire %s", n))
	}
}
