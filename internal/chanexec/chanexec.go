// Package chanexec executes dataflow graphs with one goroutine per
// operator and token delivery over per-node mailboxes — the natural Go
// realization of the dataflow firing rule ("operators that test conditions
// at their inputs and outputs to determine when to execute", §2.2). It
// validates the cycle-driven machine simulator: both engines must compute
// identical final states, because dataflow graphs are determinate.
//
// Tokens are never dropped: an execution is complete when the global
// in-flight token count reaches zero; if that happens before the end node
// has collected all access tokens, the graph deadlocked (a translation
// bug) and the engine reports it.
//
// The engine has no global clock, so its observability surface is the
// clockless subset of the machine simulator's: Config.Counters (an
// *obs.NodeCounters) records per-node firing counts, each slot written
// only by the owning node's goroutine. Dataflow determinacy makes those
// counts comparable across engines at per-instruction granularity —
// TestCrossEngineFiringCountsAgree asserts they match the machine
// simulator's exactly on the whole workload suite (see OBSERVABILITY.md).
package chanexec

import (
	"sync"
	"sync/atomic"
	"time"

	"ctdf/internal/dfg"
	"ctdf/internal/fault"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/machcheck"
	"ctdf/internal/obs"
	"ctdf/internal/obs/telemetry"
	"ctdf/internal/token"
)

// Config configures an execution.
type Config struct {
	// Binding selects which aliased names share storage this run.
	Binding interp.Binding
	// MaxOps bounds total firings (default ten million).
	MaxOps int64
	// Deadline bounds wall-clock *idle* time (0 = none). The engine has no
	// clock, so the deadline doubles as its deadlock oracle — but it is
	// progress-aware: the watchdog only aborts a run that has delivered no
	// token for a full Deadline window. A live run that is merely slow (a
	// loaded host, a descheduled worker) keeps extending the watchdog and
	// can never be killed by it; a deadlocked, wedged, or starved run goes
	// silent and is aborted with a Deadlock machine check carrying
	// per-mailbox queue depths, every worker goroutine torn down before
	// Run returns.
	Deadline time.Duration
	// Inject threads a deterministic fault-injection plan through the
	// run (nil = no injection; see internal/fault and ROBUSTNESS.md).
	Inject *fault.Injector
	// Counters, when non-nil, receives per-node firing counts. Each
	// node's slot is written only by that node's worker goroutine, so
	// plain increments are race-free; read it only after Run returns.
	Counters *obs.NodeCounters
	// Telemetry, when non-nil, receives engine-level metrics: firings,
	// deliveries, mailbox depth at each delivery, and the watchdog's
	// extension count and idle headroom (see internal/obs/telemetry).
	// This engine is concurrent, so everything but the firing and
	// delivery totals is scheduling-dependent (marked Varying in the
	// catalog). Nil disables it at one branch per delivery.
	Telemetry *telemetry.Registry
}

// chanTel is the channel engine's telemetry probe; nil when disabled.
// Unlike the machine probe it writes atomics directly — this engine has
// no sequential merge point, and its instruments are either monotone
// counters or Varying histograms where interleaving order is immaterial.
type chanTel struct {
	firings   *telemetry.Series
	delivered *telemetry.Series
	boxDepth  *telemetry.Series
	wdExt     *telemetry.Series
	headroom  *telemetry.Series
	// base anchors the delivery timestamps: lastDeliver holds
	// nanoseconds-since-base of the newest push, read by the watchdog
	// to compute how much of its idle window a slow run had left.
	base        time.Time
	lastDeliver atomic.Int64
}

func newChanTel(reg *telemetry.Registry) *chanTel {
	return &chanTel{
		firings:   reg.Family(telemetry.SpecChanFirings).Series(),
		delivered: reg.Family(telemetry.SpecChanTokens).Series(),
		boxDepth:  reg.Family(telemetry.SpecChanMailboxDepth).Series(),
		wdExt:     reg.Family(telemetry.SpecChanWatchdogExtensions).Series(),
		headroom:  reg.Family(telemetry.SpecChanWatchdogHeadroom).Series(),
		base:      time.Now(),
	}
}

// delivery records one mailbox push and the depth it left behind.
func (t *chanTel) delivery(depth int) {
	if t == nil {
		return
	}
	t.delivered.Add(1)
	t.boxDepth.Observe(int64(depth), telemetry.DepthBuckets)
	t.lastDeliver.Store(time.Since(t.base).Nanoseconds())
}

// extended records a watchdog expiry that found progress and re-armed:
// headroom is how much of the idle window was still unspent when the
// timer fired (0 when the last delivery predates the whole window).
func (t *chanTel) extended(d time.Duration) {
	if t == nil {
		return
	}
	idle := time.Since(t.base).Nanoseconds() - t.lastDeliver.Load()
	head := d.Nanoseconds() - idle
	if head < 0 {
		head = 0
	}
	t.wdExt.Add(1)
	t.headroom.Observe(head, telemetry.TimeBuckets)
}

// Outcome is the result of an execution.
type Outcome struct {
	Store     *interp.Store
	EndValues []int64
	// Ops is the number of operator firings.
	Ops int64
}

type msg struct {
	port int
	val  int64
	tg   token.Tag
	// clock is the producing firing's Lamport logical timestamp (0 for
	// the start node's initial tokens). A firing's own timestamp is the
	// max over its operand clocks + 1, giving the engine a causal order
	// despite having no global cycle counter; on the machine engine the
	// same quantity is the journal's causal depth, so the two engines'
	// orders are directly comparable (dataflow determinacy).
	clock int64
}

// mailbox is an unbounded FIFO: sends never block, so cyclic graphs cannot
// deadlock on channel capacity. A wedged mailbox (fault injection) accepts
// tokens but never yields them, simulating a stuck operator; close() still
// releases the owning worker, so teardown is guaranteed.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []msg
	closed bool
	wedged bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// push enqueues m and returns the queue depth it left behind (telemetry
// observes it; other callers ignore it).
func (b *mailbox) push(m msg) int {
	b.mu.Lock()
	b.q = append(b.q, m)
	depth := len(b.q)
	b.mu.Unlock()
	b.cond.Signal()
	return depth
}

func (b *mailbox) pop() (msg, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for (len(b.q) == 0 || b.wedged) && !b.closed {
		b.cond.Wait()
	}
	if len(b.q) == 0 || b.wedged {
		return msg{}, false
	}
	m := b.q[0]
	b.q = b.q[1:]
	return m, true
}

// wedge freezes the mailbox: queued and future tokens are never yielded.
func (b *mailbox) wedge() {
	b.mu.Lock()
	b.wedged = true
	b.mu.Unlock()
}

// depth returns the number of queued tokens and whether the box is wedged.
func (b *mailbox) depth() (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.q), b.wedged
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Run lifecycle states (engine.state).
const (
	stateRunning int32 = iota
	stateCompleted
	stateFailed
)

// Watchdog instrumentation, read by tests: watchdogFired counts deadline
// callbacks that found a fully idle run and failed it; watchdogExtended
// counts callbacks that observed delivery progress since the previous
// expiry and re-armed instead of aborting; watchdogLate counts callbacks
// that fired after the run had already completed or failed and were
// discarded. watchdogTestDelay, when non-nil, runs inside the callback
// before it inspects the run — tests use it to force the callback to lose
// the race deterministically.
var (
	watchdogFired     atomic.Int64
	watchdogExtended  atomic.Int64
	watchdogLate      atomic.Int64
	watchdogTestDelay func()
)

// deliverTestDelay, when non-nil, runs at the top of every send — tests
// use it to pace token delivery slower than a short watchdog deadline,
// making "live run outlasts its deadline" a deterministic scenario rather
// than a loaded-host accident.
var deliverTestDelay func()

// seedTestDelay, when non-nil, runs between the start node's seed sends —
// tests use it to hold the seeding loop open so every already-sent token
// drains before the next send, forcing the widest possible quiescence
// window mid-seeding.
var seedTestDelay func()

type engine struct {
	g        *dfg.Graph
	store    *interp.Store
	boxes    []*mailbox
	counters *obs.NodeCounters
	tel      *chanTel

	inflight atomic.Int64
	ops      atomic.Int64
	leftover atomic.Int64
	// delivered counts every token ever pushed to a mailbox; it only grows.
	// The watchdog reads it at each expiry: movement since the previous
	// expiry is proof of life, and only a full deadline window with no
	// movement is treated as a deadlock.
	delivered atomic.Int64
	maxOps    int64
	inj       *fault.Injector

	done chan struct{}
	// state is the run lifecycle: stateRunning until the single transition
	// to stateCompleted (quiescent success, in retire) or stateFailed (in
	// fail) — whichever CASes first wins and closes done. The losing side
	// is a no-op, which is what makes a deadline watchdog firing
	// concurrently with normal completion harmless.
	state  atomic.Int32
	failed atomic.Bool
	errMu  sync.Mutex
	err    error

	endMu   sync.Mutex
	endVals []int64
	endDone bool

	// Procedure linkage (separate compilation): activation registry.
	procMu      sync.Mutex
	procByApply map[int]*dfg.CallInfo
	procLive    map[int]*chanActivation
	procNext    int

	// I-structure memory (§6.3): presence bits and deferred readers,
	// guarded by istructMu. Deferred reads count toward deferredReads;
	// quiescence with unsatisfied deferred reads is an error.
	istructMu     sync.Mutex
	istructFull   map[string][]bool
	istructWait   map[string]map[int64][]deferredRead
	deferredReads atomic.Int64
}

type deferredRead struct {
	node int
	tg   token.Tag
	// clock is the deferred read firing's own Lamport timestamp; the
	// satisfying write joins it with its own (max) before emitting the
	// result, keeping both causal edges.
	clock int64
}

type chanActivation struct {
	info      *dfg.CallInfo
	callerTag token.Tag
	resolved  map[string]string
}

// Run executes the dataflow graph to completion.
func Run(g *dfg.Graph, cfg Config) (*Outcome, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Binding.Validate(g.Prog); err != nil {
		return nil, err
	}
	maxOps := cfg.MaxOps
	if maxOps == 0 {
		maxOps = 10_000_000
	}
	e := &engine{
		g:        g,
		store:    interp.NewStoreWithBinding(g.Prog, cfg.Binding),
		boxes:    make([]*mailbox, len(g.Nodes)),
		counters: cfg.Counters,
		maxOps:   maxOps,
		inj:      cfg.Inject,
		done:     make(chan struct{}),
	}
	if cfg.Telemetry != nil {
		e.tel = newChanTel(cfg.Telemetry)
	}
	e.endVals = make([]int64, g.Nodes[g.EndID].NIns)
	for i := range e.boxes {
		e.boxes[i] = newMailbox()
	}
	if len(g.Calls) > 0 {
		e.procByApply = map[int]*dfg.CallInfo{}
		e.procLive = map[int]*chanActivation{}
		for i := range g.Calls {
			e.procByApply[g.Calls[i].Apply] = &g.Calls[i]
		}
	}
	e.istructFull = map[string][]bool{}
	e.istructWait = map[string]map[int64][]deferredRead{}
	for _, n := range g.Nodes {
		if n.Kind == dfg.ILoad || n.Kind == dfg.IStore {
			if _, ok := e.istructFull[n.Var]; !ok {
				e.istructFull[n.Var] = make([]bool, g.Prog.ArraySize(n.Var))
				e.istructWait[n.Var] = map[int64][]deferredRead{}
			}
		}
	}

	var wg sync.WaitGroup
	for _, n := range g.Nodes {
		if n.Kind == dfg.Start {
			continue
		}
		wg.Add(1)
		go func(n *dfg.Node) {
			defer wg.Done()
			e.worker(n)
		}(n)
	}

	// The quiescence watchdog: the engine has no clock, so a wall-clock
	// bound is its deadlock oracle. The bound is on idle time, not total
	// runtime: at each expiry the callback compares the monotone delivered
	// counter against what it saw last time, and re-arms if the run moved.
	// Only a full deadline window with zero deliveries aborts the run —
	// so a deadlocked or wedged graph (which goes permanently silent) is
	// still converted into a typed Deadlock error, while a live run can
	// never be killed mid-progress no matter how loaded the host is. This
	// closed the historical watchdog-races-live-run flake family (see
	// ROBUSTNESS.md, "Known flakes").
	var watchdog *wdog
	if cfg.Deadline > 0 {
		watchdog = e.startWatchdog(cfg.Deadline)
	}

	// The start node emits one dummy token per arc at the root context.
	// The seeding loop itself holds a virtual in-flight token: workers are
	// already running, and without it a prefix of the seeds can be fully
	// absorbed (matched partially and retired) before the next send raises
	// the count again, driving inflight to zero mid-seeding and tripping a
	// spurious quiescent-before-end deadlock on a clean run.
	e.inflight.Add(1)
	for _, a := range g.OutArcs(g.StartID, 0) {
		e.send(a.To, msg{port: a.ToPort, val: 0, tg: token.Root})
		if seedTestDelay != nil {
			seedTestDelay()
		}
	}
	e.retire()
	<-e.done
	if watchdog != nil {
		watchdog.stop()
	}
	for _, b := range e.boxes {
		b.close()
	}
	wg.Wait()

	// From here every worker has exited: engine state is quiescent and
	// safe to read. Aborted runs still return the partial outcome so the
	// store and op count stay inspectable.
	partial := &Outcome{Store: e.store, EndValues: e.endVals, Ops: e.ops.Load()}
	e.errMu.Lock()
	err := e.err
	e.errMu.Unlock()
	if err != nil {
		return partial, err
	}
	if e.procLive != nil {
		e.procMu.Lock()
		live := len(e.procLive)
		e.procMu.Unlock()
		if live != 0 {
			return partial, machcheck.Newf(machcheck.TokenLeak, "channels",
				"%d procedure activations never returned", live)
		}
	}
	if n := e.deferredReads.Load(); n != 0 {
		return partial, machcheck.Newf(machcheck.Deadlock, "channels",
			"%d I-structure reads of never-written cells", n)
	}
	// Strict conservation: no partially matched activation may survive the
	// run (its partner token can never arrive).
	if n := e.leftover.Load(); n != 0 {
		return partial, machcheck.Newf(machcheck.TokenLeak, "channels",
			"%d partially matched activations left after end fired (token leak)", n)
	}
	return partial, nil
}

// watchdogError renders the stuck state at deadline expiry: the global
// in-flight count plus every non-empty mailbox's queue depth.
func (e *engine) watchdogError(d time.Duration) error {
	ce := machcheck.Newf(machcheck.Deadlock, "channels",
		"no token delivered for a full %v idle window: %d tokens in flight", d, e.inflight.Load())
	var stuck []machcheck.Stuck
	for i, b := range e.boxes {
		if b == nil {
			continue
		}
		depth, wedged := b.depth()
		if depth == 0 && !wedged {
			continue
		}
		label := e.g.Nodes[i].String()
		if wedged {
			label += " (wedged)"
		}
		stuck = append(stuck, machcheck.Stuck{Node: i, Label: label, Have: depth})
	}
	return ce.WithStuck(stuck)
}

// wdog is the progress-aware quiescence watchdog: a self-re-arming timer
// that aborts the run only after a full deadline window with zero token
// deliveries. stopped is set by Run once the run is over, turning any
// still-in-flight callback into a counted no-op.
type wdog struct {
	mu       sync.Mutex
	timer    *time.Timer
	stopped  bool
	lastSeen int64
}

func (e *engine) startWatchdog(d time.Duration) *wdog {
	// lastSeen starts at -1 so the first expiry always re-arms (delivered
	// is never negative): an abort therefore requires one complete window
	// during which the callback's snapshot did not move.
	w := &wdog{lastSeen: -1}
	expire := func() {
		if watchdogTestDelay != nil {
			watchdogTestDelay()
		}
		w.mu.Lock()
		if w.stopped {
			w.mu.Unlock()
			watchdogLate.Add(1)
			return
		}
		now := e.delivered.Load()
		if now != w.lastSeen {
			// Tokens moved since the last expiry: the run is slow, not
			// stuck. Grant it another full idle window.
			w.lastSeen = now
			w.timer.Reset(d)
			w.mu.Unlock()
			watchdogExtended.Add(1)
			e.tel.extended(d)
			return
		}
		w.mu.Unlock()
		if e.fail(e.watchdogError(d)) {
			watchdogFired.Add(1)
		} else {
			watchdogLate.Add(1)
		}
	}
	// Assign the timer under the lock: with a tiny deadline the callback
	// can run before AfterFunc returns, and it must block until w.timer is
	// set before it may Reset it.
	w.mu.Lock()
	w.timer = time.AfterFunc(d, expire)
	w.mu.Unlock()
	return w
}

// stop retires the watchdog at the end of the run. A callback already past
// the stopped check may still lose the fail CAS to normal completion;
// either way it is a no-op, counted under watchdogLate.
func (w *wdog) stop() {
	w.mu.Lock()
	w.stopped = true
	t := w.timer
	w.mu.Unlock()
	t.Stop()
}

// fail moves the run to the failed state and records err, reporting
// whether this call won the transition. A fail that loses the race to
// normal completion (or to an earlier fail) changes nothing and returns
// false — late watchdog fires rely on this.
func (e *engine) fail(err error) bool {
	if !e.state.CompareAndSwap(stateRunning, stateFailed) {
		return false
	}
	e.failed.Store(true)
	e.errMu.Lock()
	e.err = err
	e.errMu.Unlock()
	close(e.done)
	return true
}

// matchSite reports whether node is a matching operator (>=2 inputs with
// strict per-port matching) or the end node — the deliveries where token
// conservation makes drop/dup/corrupt-tag faults provably visible.
func (e *engine) matchSite(node int) bool {
	n := e.g.Nodes[node]
	switch n.Kind {
	case dfg.Merge, dfg.LoopEntry, dfg.Param:
		return false
	case dfg.End:
		return true
	}
	return n.NIns >= 2
}

// send delivers a token; the in-flight count rises before delivery so the
// quiescence check cannot fire spuriously, and the delivered count rises
// with every push so the watchdog sees the run is alive.
func (e *engine) send(node int, m msg) {
	if deliverTestDelay != nil {
		deliverTestDelay()
	}
	if e.inj != nil {
		switch e.inj.Deliver(e.matchSite(node)) {
		case fault.ActDrop:
			// The token vanishes: in-flight never counts it, so the run
			// quiesces with the destination starved.
			return
		case fault.ActDup:
			e.inflight.Add(1)
			e.delivered.Add(1)
			e.tel.delivery(e.boxes[node].push(m))
		case fault.ActCorruptTag:
			m.tg = m.tg.Push()
		case fault.ActWedge:
			e.boxes[node].wedge()
		}
	}
	e.inflight.Add(1)
	e.delivered.Add(1)
	e.tel.delivery(e.boxes[node].push(m))
}

// retire marks one delivered token fully processed; when the last token
// retires the execution is quiescent.
func (e *engine) retire() {
	if e.inflight.Add(-1) == 0 {
		e.endMu.Lock()
		finished := e.endDone
		e.endMu.Unlock()
		if !finished {
			e.fail(machcheck.Newf(machcheck.Deadlock, "channels",
				"quiescent before end fired (deadlocked tokens)"))
			return
		}
		if e.state.CompareAndSwap(stateRunning, stateCompleted) {
			close(e.done)
		}
	}
}

type matchState struct {
	have uint64
	vals []int64
	tg   token.Tag
	n    int
	// clock accumulates the max Lamport timestamp over arrived operands.
	clock int64
}

func (e *engine) worker(n *dfg.Node) {
	box := e.boxes[n.ID]
	match := map[string]*matchState{}
	defer func() { e.leftover.Add(int64(len(match))) }()
	anyArrival := n.Kind == dfg.Merge || n.Kind == dfg.LoopEntry || n.Kind == dfg.Param
	for {
		m, ok := box.pop()
		if !ok {
			return
		}
		if anyArrival || n.NIns <= 1 {
			e.fire(n, []int64{m.val}, m.port, m.tg, m.clock)
			e.retire()
			continue
		}
		st := match[m.tg.Key()]
		if st == nil {
			st = &matchState{vals: make([]int64, n.NIns), tg: m.tg}
			match[m.tg.Key()] = st
		}
		if m.clock > st.clock {
			st.clock = m.clock
		}
		bit := uint64(1) << uint(m.port)
		if st.have&bit != 0 {
			e.fail(machcheck.Newf(machcheck.TagViolation, "channels",
				"duplicate token at %s port %d tag %q", n, m.port, m.tg.Key()))
			e.retire()
			continue
		}
		st.have |= bit
		st.vals[m.port] = m.val
		st.n++
		if st.n == n.NIns {
			delete(match, m.tg.Key())
			e.fire(n, st.vals, 0, st.tg, st.clock)
		}
		e.retire()
	}
}

// resolveName maps a variable name to the storage it denotes under tg:
// formals resolve through the innermost activation's binding.
func (e *engine) resolveName(name string, tg token.Tag) string {
	if e.procLive == nil {
		return name
	}
	e.procMu.Lock()
	defer e.procMu.Unlock()
	return e.resolveNameLocked(name, tg)
}

func (e *engine) resolveNameLocked(name string, tg token.Tag) string {
	act := tg.Activation()
	if act < 0 {
		return name
	}
	rec := e.procLive[act]
	if rec == nil {
		return name
	}
	if r, ok := rec.resolved[name]; ok {
		return r
	}
	return name
}

// emit broadcasts val on every arc leaving (node, port), stamping each
// token with the producing firing's Lamport clock.
func (e *engine) emit(node, port int, val int64, tg token.Tag, clock int64) {
	for _, a := range e.g.OutArcs(node, port) {
		e.send(a.To, msg{port: a.ToPort, val: val, tg: tg, clock: clock})
	}
}

// fire executes one activation. clock is the max Lamport timestamp over
// the activation's operand tokens; the firing's own timestamp is
// clock + 1 and is stamped onto every token it emits.
func (e *engine) fire(n *dfg.Node, vals []int64, port int, tg token.Tag, clock int64) {
	if e.failed.Load() {
		return
	}
	if e.ops.Add(1) > e.maxOps {
		e.fail(machcheck.Newf(machcheck.CyclesExceeded, "channels",
			"exceeded %d firings (runaway loop?)", e.maxOps))
		return
	}
	fc := clock + 1
	e.counters.Inc(n.ID)
	e.counters.ObserveClock(n.ID, fc)
	if e.tel != nil {
		e.tel.firings.Add(1)
	}
	switch n.Kind {
	case dfg.End:
		if !tg.IsRoot() {
			e.fail(machcheck.Newf(machcheck.TagViolation, "channels",
				"token reached end with non-root tag %q (unbalanced loop context)", tg.Key()))
			return
		}
		e.endMu.Lock()
		fired := e.endDone
		if !fired {
			copy(e.endVals, vals)
			e.endDone = true
		}
		e.endMu.Unlock()
		if fired {
			e.fail(machcheck.Newf(machcheck.TagViolation, "channels",
				"end fired twice (duplicate result token)"))
			return
		}

	case dfg.Const:
		e.emit(n.ID, 0, n.Val, tg, fc)

	case dfg.BinOp:
		v, err := interp.Apply(n.Op, vals[0], vals[1])
		if err != nil {
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels", "%s: %v", n, err))
			return
		}
		if e.inj != nil && fault.PredicateOp(n.Op) {
			if fv, hit := e.inj.Misfire(v); hit {
				v = fv
			}
		}
		e.emit(n.ID, 0, v, tg, fc)

	case dfg.UnOp:
		var v int64
		switch n.Op {
		case lang.OpNeg:
			v = -vals[0]
		case lang.OpNot:
			if vals[0] == 0 {
				v = 1
			}
		default:
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels", "bad unary op %v", n.Op))
			return
		}
		e.emit(n.ID, 0, v, tg, fc)

	case dfg.Fused:
		// One activation evaluates the whole step program (no Misfire
		// inside: fused steps are interior value computations, mirroring
		// the machine engine).
		fi := e.g.FusionOf(n.ID)
		res, err := interp.EvalFused(fi.Steps, vals, nil)
		if err != nil {
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels", "%s: %v", n, err))
			return
		}
		for p, s := range fi.Outs {
			e.emit(n.ID, p, res[s], tg, fc)
		}

	case dfg.Switch:
		out := 0
		if vals[1] == 0 {
			out = 1
		}
		e.emit(n.ID, out, vals[0], tg, fc)

	case dfg.Merge, dfg.Param:
		e.emit(n.ID, 0, vals[0], tg, fc)

	case dfg.Apply:
		info := e.procByApply[n.ID]
		if info == nil {
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels",
				"apply d%d has no call linkage", n.ID))
			return
		}
		e.procMu.Lock()
		id := e.procNext
		e.procNext++
		rec := &chanActivation{info: info, callerTag: tg, resolved: map[string]string{}}
		for formal, actual := range info.Bindings {
			rec.resolved[formal] = e.resolveNameLocked(actual, tg)
		}
		e.procLive[id] = rec
		e.procMu.Unlock()
		nt := tg.PushCall(id)
		for j := range info.Params {
			e.emit(n.ID, len(info.InTokens)+j, 0, nt, fc)
		}

	case dfg.ProcReturn:
		_, id, err := tg.PopCall()
		if err != nil {
			e.fail(machcheck.Newf(machcheck.TagViolation, "channels", "%s: %v", n, err))
			return
		}
		e.procMu.Lock()
		rec := e.procLive[id]
		delete(e.procLive, id)
		e.procMu.Unlock()
		if rec == nil {
			e.fail(machcheck.Newf(machcheck.TagViolation, "channels",
				"return for unknown activation %d", id))
			return
		}
		for p := 0; p < len(rec.info.InTokens); p++ {
			e.emit(rec.info.Apply, p, 0, rec.callerTag, fc)
		}

	case dfg.Synch:
		e.emit(n.ID, 0, 0, tg, fc)

	case dfg.LoopEntry:
		var nt token.Tag
		var err error
		if port == 0 {
			nt = tg.Push()
		} else {
			nt, err = tg.Bump()
			if err != nil {
				e.fail(machcheck.Newf(machcheck.TagViolation, "channels", "%s: %v", n, err))
				return
			}
		}
		e.emit(n.ID, 0, vals[0], nt, fc)

	case dfg.LoopExit:
		nt, err := tg.Pop()
		if err != nil {
			e.fail(machcheck.Newf(machcheck.TagViolation, "channels", "%s: %v", n, err))
			return
		}
		e.emit(n.ID, 0, vals[0], nt, fc)

	case dfg.Load:
		e.emit(n.ID, 0, e.store.Get(e.resolveName(n.Var, tg)), tg, fc)
		e.emit(n.ID, 1, 0, tg, fc)

	case dfg.Store:
		e.store.Set(e.resolveName(n.Var, tg), vals[0])
		e.emit(n.ID, 0, 0, tg, fc)

	case dfg.LoadIdx:
		v, err := e.store.GetIdx(e.resolveName(n.Var, tg), vals[0])
		if err != nil {
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels", "%s: %v", n, err))
			return
		}
		e.emit(n.ID, 0, v, tg, fc)
		e.emit(n.ID, 1, 0, tg, fc)

	case dfg.StoreIdx:
		if err := e.store.SetIdx(e.resolveName(n.Var, tg), vals[0], vals[1]); err != nil {
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels", "%s: %v", n, err))
			return
		}
		e.emit(n.ID, 0, 0, tg, fc)

	case dfg.ILoad:
		idx := vals[0]
		e.istructMu.Lock()
		full := e.istructFull[n.Var]
		if idx < 0 || idx >= int64(len(full)) {
			e.istructMu.Unlock()
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels",
				"I-structure index %d out of range for %s[%d]", idx, n.Var, len(full)))
			return
		}
		if !full[idx] {
			e.istructWait[n.Var][idx] = append(e.istructWait[n.Var][idx], deferredRead{node: n.ID, tg: tg, clock: fc})
			e.deferredReads.Add(1)
			e.istructMu.Unlock()
			return
		}
		e.istructMu.Unlock()
		v, err := e.store.GetIdx(n.Var, idx)
		if err != nil {
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels", "%s: %v", n, err))
			return
		}
		e.emit(n.ID, 0, v, tg, fc)

	case dfg.IStore:
		idx := vals[0]
		e.istructMu.Lock()
		full := e.istructFull[n.Var]
		if idx < 0 || idx >= int64(len(full)) {
			e.istructMu.Unlock()
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels",
				"I-structure index %d out of range for %s[%d]", idx, n.Var, len(full)))
			return
		}
		if full[idx] {
			e.istructMu.Unlock()
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels",
				"I-structure write-once violation: %s[%d] written twice", n.Var, idx))
			return
		}
		full[idx] = true
		if err := e.store.SetIdx(n.Var, idx, vals[1]); err != nil {
			e.istructMu.Unlock()
			e.fail(machcheck.Newf(machcheck.OperatorFault, "channels", "%s: %v", n, err))
			return
		}
		waiters := e.istructWait[n.Var][idx]
		delete(e.istructWait[n.Var], idx)
		e.istructMu.Unlock()
		for _, w := range waiters {
			e.deferredReads.Add(-1)
			// The result token is causally after both the store firing and
			// the deferred read firing: join their clocks.
			jc := fc
			if w.clock > jc {
				jc = w.clock
			}
			e.emit(w.node, 0, vals[1], w.tg, jc)
		}

	default:
		e.fail(machcheck.Newf(machcheck.OperatorFault, "channels", "cannot fire %s", n))
	}
}
