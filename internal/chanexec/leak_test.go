package chanexec

import (
	"runtime"
	"testing"
	"time"

	"ctdf/internal/fault"
	"ctdf/internal/translate"
)

// checkNoLeak asserts the goroutine count settles back to its baseline
// after fn returns: every chanexec error and abort path must tear down all
// worker goroutines before Run returns.
func checkNoLeak(t *testing.T, name string, fn func()) {
	t.Helper()
	runtime.GC()
	base := runtime.NumGoroutine()
	fn()
	// Workers have all exited by the time Run returns (wg.Wait), but give
	// the runtime a moment to account for them.
	for i := 0; i < 50; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("%s: goroutines leaked: baseline %d, now %d", name, base, runtime.NumGoroutine())
}

func TestNoGoroutineLeakOnErrorPaths(t *testing.T) {
	res := translateWorkload(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
	div0 := translateWorkload(t, "straightline", translate.Options{Schema: translate.Schema2Opt})
	_ = div0

	cases := []struct {
		name string
		fn   func()
	}{
		{"clean run", func() {
			if _, err := Run(res.Graph, Config{}); err != nil {
				t.Errorf("clean run failed: %v", err)
			}
		}},
		{"max-ops abort", func() {
			if _, err := Run(res.Graph, Config{MaxOps: 5}); err == nil {
				t.Error("max-ops run did not abort")
			}
		}},
		{"deadline abort", func() {
			Run(res.Graph, Config{Deadline: 1})
		}},
		{"wedged mailbox + watchdog", func() {
			in := fault.NewInjector(fault.Plan{Class: fault.WedgeMailbox, Site: 5})
			if _, err := Run(res.Graph, Config{Inject: in, Deadline: 100 * time.Millisecond}); err == nil {
				t.Error("wedged run did not abort")
			}
		}},
		{"dropped token deadlock", func() {
			in := fault.NewInjector(fault.Plan{Class: fault.DropToken, Site: 1})
			if _, err := Run(res.Graph, Config{Inject: in, Deadline: 5 * time.Second}); err == nil {
				t.Error("dropped-token run did not abort")
			}
		}},
		{"duplicate token", func() {
			in := fault.NewInjector(fault.Plan{Class: fault.DupToken, Site: 1})
			Run(res.Graph, Config{Inject: in, Deadline: 5 * time.Second})
		}},
	}
	for _, c := range cases {
		checkNoLeak(t, c.name, c.fn)
	}
}

// TestWatchdogFiredOrStopped pins the watchdog lifecycle invariant: every
// deadline callback either wins the state race and fails the run, or
// observes the run already settled and is discarded — a late fire must
// never overwrite a successful outcome. The test forces the late case
// deterministically: a 1ns deadline guarantees the callback starts, and
// the test hook holds it hostage until the run has completed.
func TestWatchdogFiredOrStopped(t *testing.T) {
	res := translateWorkload(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})

	t.Run("late fire is a no-op", func(t *testing.T) {
		release := make(chan struct{})
		watchdogTestDelay = func() { <-release }
		defer func() { watchdogTestDelay = nil }()
		lateBefore := watchdogLate.Load()

		out, err := Run(res.Graph, Config{Deadline: time.Nanosecond})
		if err != nil {
			t.Fatalf("run with hostage watchdog failed: %v", err)
		}
		if out == nil || out.Ops == 0 {
			t.Fatalf("run with hostage watchdog returned empty outcome: %+v", out)
		}
		close(release)
		deadline := time.Now().Add(5 * time.Second)
		for watchdogLate.Load() == lateBefore {
			if time.Now().After(deadline) {
				t.Fatal("late watchdog fire was never recorded as discarded")
			}
			time.Sleep(time.Millisecond)
		}
	})

	t.Run("genuine expiry is recorded as fired", func(t *testing.T) {
		firedBefore := watchdogFired.Load()
		in := fault.NewInjector(fault.Plan{Class: fault.WedgeMailbox, Site: 5})
		if _, err := Run(res.Graph, Config{Inject: in, Deadline: 50 * time.Millisecond}); err == nil {
			t.Fatal("wedged run did not abort")
		}
		if watchdogFired.Load() == firedBefore {
			t.Fatal("expired watchdog was not recorded as fired")
		}
	})
}
