// Package fault implements deterministic, seed-driven fault injection for
// the dataflow execution engines. It exists to prove the machine checks
// have teeth: each fault class synthesizes one failure mode an illegal
// execution could exhibit, and the chaos harness (internal/chaos, `ctdf
// chaos`) asserts that every injected fault is caught by a named machine
// check (machcheck) or by oracle mismatch.
//
// A Plan names a fault class and the 1-based index of the eligible
// injection site to hit; an Injector threads through an engine run via
// small hooks (Deliver, MemResponse, Misfire) the engines call at each
// potential site. Running with Site 0 counts eligible sites without
// injecting anything — the counting pass a harness uses to pick a site
// deterministically from a seed. Exactly one fault is injected per run.
//
// Site eligibility is chosen so that detection is guaranteed, not merely
// likely:
//
//   - drop/dup/corrupt-tag apply only to tokens delivered to matching
//     operators (≥2 inputs) or to the end node, where strict token
//     conservation makes the missing/extra/mismatched partner visible;
//   - lose/delay-mem apply to split-phase memory responses before the end
//     node fires, where every response is still needed;
//   - misfire applies to predicate-producing binop firings (comparisons
//     and boolean connectives), corrupting the result v to 1-v — the flip
//     provably inverts the branch decision the predicate feeds, so the
//     execution diverges in its firing counts, its final store, or a
//     machine check (an arithmetic misfire, by contrast, can be legally
//     absorbed by a downstream comparison and is not injected);
//   - wedge applies to any token delivery, freezing the destination
//     mailbox (channel engine only — the machine simulator has no
//     mailboxes to wedge).
//
// delay-mem is the deliberate negative control: delaying a split-phase
// response must NOT change the result (dataflow determinacy), so its
// "detection" criterion is inverted — the run must complete with the
// oracle's exact store and firing counts, proving the checks do not
// false-positive under timing perturbation.
package fault

import (
	"fmt"
	"sync/atomic"

	"ctdf/internal/lang"
)

// Class names one fault class.
type Class string

// The fault classes.
const (
	// DropToken discards a token on delivery.
	DropToken Class = "drop-token"
	// DupToken delivers a token twice.
	DupToken Class = "dup-token"
	// CorruptTag wraps a delivered token's tag in a bogus loop context.
	CorruptTag Class = "corrupt-tag"
	// LoseMemResponse discards the result tokens of a split-phase memory
	// operation (machine engine only).
	LoseMemResponse Class = "lose-mem-response"
	// DelayMemResponse delays a split-phase memory response by extra
	// cycles without losing it (machine engine only; a determinacy probe).
	DelayMemResponse Class = "delay-mem-response"
	// MisfireValue makes a predicate-producing operator (comparison or
	// boolean connective) produce the flipped value 1-v.
	MisfireValue Class = "misfire-value"
	// WedgeMailbox freezes an operator's mailbox so it stops consuming
	// tokens (channel engine only).
	WedgeMailbox Class = "wedge-mailbox"
)

// Classes returns every fault class, in stable order.
func Classes() []Class {
	return []Class{DropToken, DupToken, CorruptTag, LoseMemResponse, DelayMemResponse, MisfireValue, WedgeMailbox}
}

// ParseClass parses a fault class name.
func ParseClass(s string) (Class, error) {
	for _, c := range Classes() {
		if string(c) == s {
			return c, nil
		}
	}
	return "", fmt.Errorf("fault: unknown fault class %q", s)
}

// Engine names for AppliesTo.
const (
	EngineMachine  = "machine"
	EngineChannels = "channels"
)

// AppliesTo reports whether the class has injection sites in the given
// engine: split-phase memory responses exist only in the cycle-driven
// machine, mailboxes only in the channel engine.
func (c Class) AppliesTo(engine string) bool {
	switch c {
	case LoseMemResponse, DelayMemResponse:
		return engine == EngineMachine
	case WedgeMailbox:
		return engine == EngineChannels
	}
	return engine == EngineMachine || engine == EngineChannels
}

// Benign reports whether the class is a determinacy probe: the run must
// tolerate it and produce the oracle's exact result, rather than abort.
func (c Class) Benign() bool { return c == DelayMemResponse }

// DefaultDelay is the extra latency DelayMemResponse injects when the
// plan does not specify one.
const DefaultDelay = 32

// Plan selects one fault to inject.
type Plan struct {
	// Class is the fault class.
	Class Class
	// Site is the 1-based index of the eligible injection site to hit; 0
	// makes the injector count sites without injecting (the counting
	// pass).
	Site int64
	// Delay is the extra latency in cycles for DelayMemResponse (0 means
	// DefaultDelay).
	Delay int
}

// Action tells an engine what to do with the token it is delivering.
type Action int

// Delivery actions.
const (
	// ActNone delivers the token normally.
	ActNone Action = iota
	// ActDrop discards the token.
	ActDrop
	// ActDup delivers the token twice.
	ActDup
	// ActCorruptTag delivers the token under a corrupted tag (the engine
	// pushes a bogus loop frame).
	ActCorruptTag
	// ActWedge freezes the destination mailbox, then delivers normally.
	ActWedge
)

// Injector threads a Plan through one engine run. All hooks are safe for
// concurrent use (the channel engine calls them from many goroutines) and
// all are no-ops on a nil receiver, so engines thread one pointer and pay
// one nil check when fault injection is off.
type Injector struct {
	plan Plan
	seen atomic.Int64
	hit  atomic.Bool
}

// NewInjector prepares an injector for one run of plan.
func NewInjector(plan Plan) *Injector {
	if plan.Delay == 0 {
		plan.Delay = DefaultDelay
	}
	return &Injector{plan: plan}
}

// Class returns the plan's fault class ("" on a nil injector).
func (in *Injector) Class() Class {
	if in == nil {
		return ""
	}
	return in.plan.Class
}

// Sites returns the number of eligible injection sites observed so far
// (after a run: the site count of that run).
func (in *Injector) Sites() int64 {
	if in == nil {
		return 0
	}
	return in.seen.Load()
}

// Injected reports whether the fault actually fired.
func (in *Injector) Injected() bool {
	return in != nil && in.hit.Load()
}

// take counts one eligible site and reports whether it is the chosen one.
func (in *Injector) take() bool {
	n := in.seen.Add(1)
	if in.plan.Site != 0 && n == in.plan.Site && in.hit.CompareAndSwap(false, true) {
		return true
	}
	return false
}

// Deliver is called once per token delivery. matching reports whether the
// destination is a matching operator (≥2 inputs) or the end node — the
// sites where conservation checks make drop/dup/corrupt-tag faults
// visible. Wedge faults are eligible at every delivery.
func (in *Injector) Deliver(matching bool) Action {
	if in == nil {
		return ActNone
	}
	switch in.plan.Class {
	case DropToken:
		if matching && in.take() {
			return ActDrop
		}
	case DupToken:
		if matching && in.take() {
			return ActDup
		}
	case CorruptTag:
		if matching && in.take() {
			return ActCorruptTag
		}
	case WedgeMailbox:
		if in.take() {
			return ActWedge
		}
	}
	return ActNone
}

// MemResponse is called once per split-phase memory response carrying
// result tokens (machine engine, before end fires). It returns whether to
// lose the response entirely, and extra cycles of latency to add.
func (in *Injector) MemResponse() (lose bool, delay int) {
	if in == nil {
		return false, 0
	}
	switch in.plan.Class {
	case LoseMemResponse:
		if in.take() {
			return true, 0
		}
	case DelayMemResponse:
		if in.take() {
			return false, in.plan.Delay
		}
	}
	return false, 0
}

// PredicateOp reports whether a binary operator produces a 0/1 branch
// predicate — the misfire-eligible firings. Flipping a predicate provably
// inverts a control decision; flipping an arbitrary arithmetic value can
// be absorbed by a downstream comparison without any observable effect.
func PredicateOp(op lang.Op) bool {
	return op.IsComparison() || op == lang.OpAnd || op == lang.OpOr
}

// Misfire is called once per predicate-producing binop firing with the
// computed result; on the chosen site it returns the corrupted value 1-v
// (flipping the 0/1 predicate) and true.
func (in *Injector) Misfire(v int64) (int64, bool) {
	if in == nil || in.plan.Class != MisfireValue {
		return v, false
	}
	if in.take() {
		return 1 - v, true
	}
	return v, false
}

// PickSite chooses a 1-based site from a seed and a counting pass's site
// count, spreading seeds uniformly over sites.
func PickSite(seed, sites int64) int64 {
	if sites <= 0 {
		return 0
	}
	s := seed % sites
	if s < 0 {
		s += sites
	}
	return 1 + s
}
