package fault

import (
	"sync"
	"testing"
)

func TestCountingPassInjectsNothing(t *testing.T) {
	in := NewInjector(Plan{Class: DropToken, Site: 0})
	for i := 0; i < 100; i++ {
		if a := in.Deliver(true); a != ActNone {
			t.Fatalf("counting pass returned action %v", a)
		}
	}
	if in.Sites() != 100 {
		t.Errorf("Sites() = %d, want 100", in.Sites())
	}
	if in.Injected() {
		t.Error("counting pass reported an injection")
	}
}

func TestExactlyOneInjection(t *testing.T) {
	in := NewInjector(Plan{Class: DupToken, Site: 7})
	var hits int
	for i := 0; i < 50; i++ {
		if in.Deliver(true) == ActDup {
			hits++
		}
		in.Deliver(false) // ineligible deliveries never count
	}
	if hits != 1 {
		t.Errorf("got %d injections, want 1", hits)
	}
	if in.Sites() != 50 {
		t.Errorf("Sites() = %d (ineligible sites were counted?)", in.Sites())
	}
	if !in.Injected() {
		t.Error("Injected() = false after a hit")
	}
}

func TestWedgeEligibleEverywhere(t *testing.T) {
	in := NewInjector(Plan{Class: WedgeMailbox, Site: 3})
	actions := []Action{in.Deliver(false), in.Deliver(false), in.Deliver(false)}
	if actions[0] != ActNone || actions[1] != ActNone || actions[2] != ActWedge {
		t.Errorf("actions = %v, want wedge on the 3rd delivery", actions)
	}
}

func TestMemResponseClasses(t *testing.T) {
	lose := NewInjector(Plan{Class: LoseMemResponse, Site: 2})
	if l, _ := lose.MemResponse(); l {
		t.Error("site 1 lost")
	}
	if l, _ := lose.MemResponse(); !l {
		t.Error("site 2 not lost")
	}
	delay := NewInjector(Plan{Class: DelayMemResponse, Site: 1, Delay: 5})
	if _, d := delay.MemResponse(); d != 5 {
		t.Errorf("delay = %d, want 5", d)
	}
	def := NewInjector(Plan{Class: DelayMemResponse, Site: 1})
	if _, d := def.MemResponse(); d != DefaultDelay {
		t.Errorf("default delay = %d, want %d", d, DefaultDelay)
	}
	// Delivery hooks must not consume mem-response sites or vice versa.
	if lose.Deliver(true) != ActNone {
		t.Error("mem-class injector acted on a delivery")
	}
}

func TestMisfireCorruptsEveryValue(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 42, -9000} {
		in := NewInjector(Plan{Class: MisfireValue, Site: 1})
		got, hit := in.Misfire(v)
		if !hit || got == v {
			t.Errorf("Misfire(%d) = %d, %v; want a changed value", v, got, hit)
		}
		if v == 0 && got != 1 || v == 1 && got != 0 {
			t.Errorf("Misfire(%d) = %d; comparison results must flip", v, got)
		}
	}
}

func TestConcurrentInjectionHitsOnce(t *testing.T) {
	in := NewInjector(Plan{Class: WedgeMailbox, Site: 500})
	var wg sync.WaitGroup
	var mu sync.Mutex
	hits := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if in.Deliver(true) == ActWedge {
					mu.Lock()
					hits++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if hits != 1 {
		t.Errorf("concurrent injector fired %d times, want 1", hits)
	}
	if in.Sites() != 2000 {
		t.Errorf("Sites() = %d, want 2000", in.Sites())
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Deliver(true) != ActNone || in.Injected() || in.Sites() != 0 || in.Class() != "" {
		t.Error("nil injector not inert")
	}
	if l, d := in.MemResponse(); l || d != 0 {
		t.Error("nil MemResponse not inert")
	}
	if v, hit := in.Misfire(3); v != 3 || hit {
		t.Error("nil Misfire not inert")
	}
}

func TestClassMetadata(t *testing.T) {
	if len(Classes()) != 7 {
		t.Fatalf("Classes() = %d entries, want 7", len(Classes()))
	}
	for _, c := range Classes() {
		got, err := ParseClass(string(c))
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %q, %v", c, got, err)
		}
		if !c.AppliesTo(EngineMachine) && !c.AppliesTo(EngineChannels) {
			t.Errorf("class %q applies to no engine", c)
		}
	}
	if _, err := ParseClass("nope"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
	if WedgeMailbox.AppliesTo(EngineMachine) {
		t.Error("wedge-mailbox cannot apply to the machine engine")
	}
	if LoseMemResponse.AppliesTo(EngineChannels) {
		t.Error("lose-mem-response cannot apply to the channel engine")
	}
	if !DelayMemResponse.Benign() || DropToken.Benign() {
		t.Error("Benign() wrong")
	}
	if PickSite(11, 5) < 1 || PickSite(11, 5) > 5 || PickSite(-3, 5) < 1 || PickSite(0, 0) != 0 {
		t.Error("PickSite out of range")
	}
}
