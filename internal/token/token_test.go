package token

import (
	"testing"
	"testing/quick"
)

func TestTagBasics(t *testing.T) {
	r := Root
	if !r.IsRoot() || r.Key() != "" || r.Depth() != 0 {
		t.Fatal("root tag malformed")
	}
	a := r.Push()
	if a.Key() != "0" || a.Depth() != 1 {
		t.Errorf("push: key=%q depth=%d", a.Key(), a.Depth())
	}
	b, err := a.Bump()
	if err != nil {
		t.Fatal(err)
	}
	if b.Key() != "1" {
		t.Errorf("bump: key=%q, want 1", b.Key())
	}
	c := b.Push()
	if c.Key() != "1.0" {
		t.Errorf("nested push: key=%q, want 1.0", c.Key())
	}
	d, err := c.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if d.Key() != b.Key() {
		t.Errorf("pop did not restore: %q vs %q", d.Key(), b.Key())
	}
}

func TestTagRootErrors(t *testing.T) {
	if _, err := Root.Bump(); err == nil {
		t.Error("bump at root must fail")
	}
	if _, err := Root.Pop(); err == nil {
		t.Error("pop at root must fail")
	}
}

func TestTagImmutability(t *testing.T) {
	a := Root.Push()
	b := a.Push()
	c, _ := b.Bump()
	if a.Key() != "0" || b.Key() != "0.0" || c.Key() != "0.1" {
		t.Errorf("tags mutated: %q %q %q", a.Key(), b.Key(), c.Key())
	}
	// Bump must not disturb earlier derivatives sharing backing arrays.
	d, _ := b.Bump()
	if c.Key() != "0.1" || d.Key() != "0.1" {
		t.Errorf("aliasing bug: %q %q", c.Key(), d.Key())
	}
}

func TestTagPushPopRoundTrip(t *testing.T) {
	// Property: any sequence of pushes and bumps, undone by the same
	// number of pops, restores the original key.
	f := func(ops []bool) bool {
		tg := Root.Push() // start inside one loop so bumps are legal
		base := tg
		depth := 0
		for _, push := range ops {
			if push {
				tg = tg.Push()
				depth++
			} else {
				var err error
				tg, err = tg.Bump()
				if err != nil {
					return false
				}
				if depth == 0 {
					base = tg // bumping the base level changes the base
				}
			}
		}
		for i := 0; i < depth; i++ {
			var err error
			tg, err = tg.Pop()
			if err != nil {
				return false
			}
		}
		return tg.Depth() == base.Depth()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTagKeysUnique(t *testing.T) {
	// Distinct iteration vectors must have distinct keys (matching
	// correctness depends on it).
	seen := map[string]bool{}
	tags := []Tag{Root}
	for depth := 0; depth < 3; depth++ {
		var next []Tag
		for _, tg := range tags {
			cur := tg.Push()
			for i := 0; i < 4; i++ {
				next = append(next, cur)
				cur, _ = cur.Bump()
			}
		}
		for _, tg := range next {
			if seen[tg.Key()] {
				t.Fatalf("duplicate key %q", tg.Key())
			}
			seen[tg.Key()] = true
		}
		tags = next
	}
	// 4 + 16 + 64 keys.
	if len(seen) != 84 {
		t.Errorf("generated %d distinct keys, want 84", len(seen))
	}
}
