// Package token defines the tagged-token identity shared by the execution
// engines: a Tag is the loop iteration vector of a token (the dynamic
// dataflow context of §2.2/§3 — each loop iteration is a fresh activation
// context). Tags are immutable; Push opens a new innermost loop context,
// Bump advances the innermost iteration (a token crossing a loop back
// edge), and Pop closes it (a token leaving the loop).
package token

import (
	"fmt"
	"strconv"
	"strings"
)

// Tag is an activation context: a stack of frames, one per enclosing loop
// iteration (holding the iteration index) or procedure activation (holding
// a machine-assigned activation id). The zero Tag is the root context. A
// canonical string form serves as the matching-store key.
type Tag struct {
	ix []frame
	s  string
}

type frame struct {
	call bool
	v    int
}

// Root is the outermost activation context.
var Root = Tag{}

// Key returns the canonical string form ("" for the root; "0.2.1" for
// iteration 1 of a loop inside iteration 2 of a loop inside iteration 0).
func (t Tag) Key() string { return t.s }

// Depth returns the loop nesting depth of the context.
func (t Tag) Depth() int { return len(t.ix) }

// IsRoot reports whether the tag is the root context.
func (t Tag) IsRoot() bool { return len(t.ix) == 0 }

// Push opens a new innermost loop context at iteration 0.
func (t Tag) Push() Tag {
	ix := append(append([]frame(nil), t.ix...), frame{})
	return Tag{ix: ix, s: encode(ix)}
}

// Bump advances the innermost iteration index; it fails at the root or
// inside a procedure frame (a back-edge token outside any loop context
// indicates unbalanced tags).
func (t Tag) Bump() (Tag, error) {
	if len(t.ix) == 0 || t.ix[len(t.ix)-1].call {
		return Tag{}, fmt.Errorf("token: iteration advance outside any loop context")
	}
	ix := append([]frame(nil), t.ix...)
	ix[len(ix)-1].v++
	return Tag{ix: ix, s: encode(ix)}, nil
}

// Pop closes the innermost loop context; it fails at the root or inside a
// procedure frame.
func (t Tag) Pop() (Tag, error) {
	if len(t.ix) == 0 || t.ix[len(t.ix)-1].call {
		return Tag{}, fmt.Errorf("token: loop exit outside any loop context (unbalanced tags)")
	}
	ix := append([]frame(nil), t.ix[:len(t.ix)-1]...)
	return Tag{ix: ix, s: encode(ix)}, nil
}

// PushCall opens a procedure activation frame carrying the machine's
// activation id.
func (t Tag) PushCall(activation int) Tag {
	ix := append(append([]frame(nil), t.ix...), frame{call: true, v: activation})
	return Tag{ix: ix, s: encode(ix)}
}

// PopCall closes the innermost frame, which must be a procedure
// activation, and returns its activation id.
func (t Tag) PopCall() (Tag, int, error) {
	if len(t.ix) == 0 || !t.ix[len(t.ix)-1].call {
		return Tag{}, 0, fmt.Errorf("token: procedure return outside any activation (unbalanced tags)")
	}
	id := t.ix[len(t.ix)-1].v
	ix := append([]frame(nil), t.ix[:len(t.ix)-1]...)
	return Tag{ix: ix, s: encode(ix)}, id, nil
}

// Activation returns the innermost procedure activation id, or -1 at the
// root program level.
func (t Tag) Activation() int {
	for i := len(t.ix) - 1; i >= 0; i-- {
		if t.ix[i].call {
			return t.ix[i].v
		}
	}
	return -1
}

// ParseKey reconstructs a Tag from its canonical Key form. It is the
// inverse of Key for every tag the engines construct, and exists so a
// serialized machine checkpoint can re-intern its tags on restore.
func ParseKey(s string) (Tag, error) {
	if s == "" {
		return Root, nil
	}
	parts := strings.Split(s, ".")
	ix := make([]frame, len(parts))
	for i, p := range parts {
		f := frame{}
		if strings.HasPrefix(p, "c") {
			f.call = true
			p = p[1:]
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return Tag{}, fmt.Errorf("token: malformed tag key %q", s)
		}
		f.v = v
		ix[i] = f
	}
	return Tag{ix: ix, s: encode(ix)}, nil
}

func encode(ix []frame) string {
	if len(ix) == 0 {
		return ""
	}
	var b strings.Builder
	for i, f := range ix {
		if i > 0 {
			b.WriteByte('.')
		}
		if f.call {
			b.WriteByte('c')
		}
		b.WriteString(strconv.Itoa(f.v))
	}
	return b.String()
}
