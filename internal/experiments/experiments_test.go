package experiments

import (
	"strings"
	"testing"

	"ctdf/internal/machine"
	"ctdf/internal/translate"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if !strings.Contains(out, "\n") {
				t.Errorf("%s output is not a table:\n%s", e.ID, out)
			}
		})
	}
}

func TestAllExperimentsDeterministic(t *testing.T) {
	for _, e := range []string{"E1", "E4", "E7", "E8"} {
		exp, ok := ByID(e)
		if !ok {
			t.Fatalf("missing %s", e)
		}
		a, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s is nondeterministic:\n%s\nvs\n%s", e, a, b)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
}

func TestTheorem1ExperimentReportsNoMismatches(t *testing.T) {
	exp, _ := ByID("E5")
	out, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Theorem 1 mismatches") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "mismatches") && !strings.Contains(line, " 0") {
			t.Errorf("Theorem 1 mismatches reported:\n%s", out)
		}
	}
}

// TestOptimizerDeltasExperiment pins E18's asserted metric on the exact
// cells the table reports: under schema2-opt with memory elimination —
// the strongest translation the paper builds — the graph optimizer must
// still strictly reduce both interconnect traffic (tokens moved) and the
// critical path (cycles) on Figure 9 and every loop workload, without
// changing any result.
func TestOptimizerDeltasExperiment(t *testing.T) {
	topt := translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true}
	for _, name := range []string{"fig9-bypass", "running-example", "fib-iterative", "gcd", "collatz-bounded", "sieve"} {
		d, err := measureOptDelta(name, topt, machine.Config{MemLatency: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !d.agree {
			t.Errorf("%s: optimization changed the result", name)
		}
		if d.rewrites == 0 {
			t.Errorf("%s: optimizer found nothing to rewrite", name)
		}
		if d.opt.Stats.Cycles >= d.base.Stats.Cycles {
			t.Errorf("%s: cycles did not drop: %d -> %d", name, d.base.Stats.Cycles, d.opt.Stats.Cycles)
		}
		if d.opt.Stats.TokensMoved >= d.base.Stats.TokensMoved {
			t.Errorf("%s: tokens moved did not drop: %d -> %d", name, d.base.Stats.TokensMoved, d.opt.Stats.TokensMoved)
		}
	}
}

func TestEnginesAgreementExperiment(t *testing.T) {
	exp, _ := ByID("E12")
	out, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "false") {
		t.Errorf("engines disagreed somewhere:\n%s", out)
	}
}
