package experiments

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if !strings.Contains(out, "\n") {
				t.Errorf("%s output is not a table:\n%s", e.ID, out)
			}
		})
	}
}

func TestAllExperimentsDeterministic(t *testing.T) {
	for _, e := range []string{"E1", "E4", "E7", "E8"} {
		exp, ok := ByID(e)
		if !ok {
			t.Fatalf("missing %s", e)
		}
		a, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s is nondeterministic:\n%s\nvs\n%s", e, a, b)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
}

func TestTheorem1ExperimentReportsNoMismatches(t *testing.T) {
	exp, _ := ByID("E5")
	out, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Theorem 1 mismatches") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "mismatches") && !strings.Contains(line, " 0") {
			t.Errorf("Theorem 1 mismatches reported:\n%s", out)
		}
	}
}

func TestEnginesAgreementExperiment(t *testing.T) {
	exp, _ := ByID("E12")
	out, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "false") {
		t.Errorf("engines disagreed somewhere:\n%s", out)
	}
}
