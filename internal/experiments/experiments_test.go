package experiments

import (
	"strconv"
	"strings"
	"testing"

	"ctdf/internal/machine"
	"ctdf/internal/translate"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run()
			if err != nil {
				t.Fatalf("%s (%s): %v", e.ID, e.Title, err)
			}
			if len(out) == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if !strings.Contains(out, "\n") {
				t.Errorf("%s output is not a table:\n%s", e.ID, out)
			}
		})
	}
}

func TestAllExperimentsDeterministic(t *testing.T) {
	for _, e := range []string{"E1", "E4", "E7", "E8"} {
		exp, ok := ByID(e)
		if !ok {
			t.Fatalf("missing %s", e)
		}
		a, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := exp.Run()
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%s is nondeterministic:\n%s\nvs\n%s", e, a, b)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
}

func TestTheorem1ExperimentReportsNoMismatches(t *testing.T) {
	exp, _ := ByID("E5")
	out, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Theorem 1 mismatches") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "mismatches") && !strings.Contains(line, " 0") {
			t.Errorf("Theorem 1 mismatches reported:\n%s", out)
		}
	}
}

// TestOptimizerDeltasExperiment pins E18's asserted metric on the exact
// cells the table reports: under schema2-opt with memory elimination —
// the strongest translation the paper builds — the graph optimizer must
// still strictly reduce both interconnect traffic (tokens moved) and the
// critical path (cycles) on Figure 9 and every loop workload, without
// changing any result.
func TestOptimizerDeltasExperiment(t *testing.T) {
	topt := translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true}
	for _, name := range []string{"fig9-bypass", "running-example", "fib-iterative", "gcd", "collatz-bounded", "sieve"} {
		d, err := measureOptDelta(name, topt, machine.Config{MemLatency: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !d.agree {
			t.Errorf("%s: optimization changed the result", name)
		}
		if d.rewrites == 0 {
			t.Errorf("%s: optimizer found nothing to rewrite", name)
		}
		if d.opt.Stats.Cycles >= d.base.Stats.Cycles {
			t.Errorf("%s: cycles did not drop: %d -> %d", name, d.base.Stats.Cycles, d.opt.Stats.Cycles)
		}
		if d.opt.Stats.TokensMoved >= d.base.Stats.TokensMoved {
			t.Errorf("%s: tokens moved did not drop: %d -> %d", name, d.base.Stats.TokensMoved, d.opt.Stats.TokensMoved)
		}
	}
}

func TestEnginesAgreementExperiment(t *testing.T) {
	exp, _ := ByID("E12")
	out, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "false") {
		t.Errorf("engines disagreed somewhere:\n%s", out)
	}
}

// TestTelemetryScalingExperiment asserts E19's claims row by row:
// cycles, firings, and total tokens are invariant across worker counts
// per workload; cross-shard traffic is zero at w=1 and positive on
// every w>=4 row; and the fire/retire split sums to the firing total on
// every sharded row.
func TestTelemetryScalingExperiment(t *testing.T) {
	ts, err := e19()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("e19 returned %d tables, want 1", len(ts))
	}
	col := map[string]int{}
	for i, c := range ts[0].cols {
		col[c] = i
	}
	base := map[string][]string{} // workload -> w=1 row
	for _, r := range ts[0].rows {
		wl, workers := r[col["workload"]], r[col["workers"]]
		if workers == "1" {
			base[wl] = r
			if r[col["remote"]] != "0" {
				t.Errorf("%s w=1: remote tokens %s, want 0", wl, r[col["remote"]])
			}
			continue
		}
		b, ok := base[wl]
		if !ok {
			t.Fatalf("%s: no w=1 baseline row", wl)
		}
		for _, c := range []string{"cycles", "firings", "tokens"} {
			if r[col[c]] != b[col[c]] {
				t.Errorf("%s w=%s: %s = %s, want %s (invariant across workers)", wl, workers, c, r[col[c]], b[col[c]])
			}
		}
		fire, _ := strconv.Atoi(r[col["fire"]])
		retire, _ := strconv.Atoi(r[col["retire"]])
		firings, _ := strconv.Atoi(r[col["firings"]])
		if fire+retire != firings {
			t.Errorf("%s w=%s: fire %d + retire %d != firings %d", wl, workers, fire, retire, firings)
		}
		if remote, _ := strconv.Atoi(r[col["remote"]]); remote <= 0 {
			t.Errorf("%s w=%s: no cross-shard traffic on a sharded run", wl, workers)
		}
	}
	if len(base) == 0 {
		t.Fatal("no rows")
	}
}
