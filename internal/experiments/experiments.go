// Package experiments regenerates every quantitative result reported in
// EXPERIMENTS.md: one experiment per paper artifact (figure, theorem,
// size bound, or parallelism claim), each producing a deterministic
// plain-text table. The CLI (`ctdf experiments`) and the repository's
// benchmark suite drive the same code.
package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ctdf/internal/analysis"
	"ctdf/internal/cfg"
	"ctdf/internal/chanexec"
	"ctdf/internal/dfg"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/machine"
	"ctdf/internal/obs/telemetry"
	graphopt "ctdf/internal/opt"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// Experiment is one reproducible measurement.
type Experiment struct {
	ID    string
	Title string
	// Paper names the artifact reproduced.
	Paper string
	// Artifact is the JSON artifact file name this experiment writes
	// under `ctdf experiments -json DIR`.
	Artifact string
	// Asserts states the metric the experiment (and its tests) check.
	Asserts string
	run     func() ([]*table, error)
}

// All returns every experiment in report order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Schema 1 on the running example", "Figures 1, 3–5", "e1.json",
			"avg parallelism stays near 1 (sequential schedule) and the final store matches the interpreter", e1},
		{"E2", "Schema 2 exposes cross-statement parallelism", "Figures 6–8", "e2.json",
			"schema2 cycle count <= schema1's on every workload; speedup > 1 on independent-chains", e2},
		{"E3", "Schema 2 graph size is O(E·V)", "§3 size bound", "e3.json",
			"DFG arcs / (CFG edges x tokens) stays bounded by a small constant across the suite", e3},
		{"E4", "Redundant switch elimination on Figure 9", "Figure 9", "e4.json",
			"schema2-opt removes the switch for x and does not lengthen the critical path", e4},
		{"E5", "Switch placement = iterated control dependence", "Theorem 1 / Figure 10", "e5.json",
			"0 mismatches between iterated control dependence and the between-ness characterization", e5},
		{"E6", "Direct construction vs iterative elimination", "§4.2 / Figure 11", "e6.json",
			"iterative switch elimination reaches the direct construction's switch count on acyclic programs", e6},
		{"E7", "Cover choice: parallelism vs synchronization", "Figures 12–13, §5", "e7.json",
			"finer covers lower cycles and raise token collections; monolithic minimizes synchronization", e7},
		{"E8", "Array store parallelization", "Figure 14, §6.3", "e8.json",
			"sequential store time grows ~N*L while the parallelized loop approaches ~N+L", e8},
		{"E9", "Memory operation elimination", "§6.1", "e9.json",
			"unaliased scalar loads/stores drop to zero and cycle counts shrink (speedup >= 1)", e9},
		{"E10", "Read parallelization", "§6.2", "e10.json",
			"speedup of parallel reads grows with load latency L", e10},
		{"E11", "Schema comparison across the suite", "headline claim", "e11.json",
			"cycles are monotonically nonincreasing from schema1 through the §6 transformations", e11},
		{"E12", "Machine simulator vs goroutine engine", "§2.2 firing rules", "e12.json",
			"identical firing counts and final stores on every workload (dataflow determinacy)", e12},
		{"E13", "I-structure memory overlaps producer and consumer", "§6.3 (write-once arrays)", "e13.json",
			"I-structure speedup over access tokens grows with memory latency", e13},
		{"E14", "Alias structures derived from subroutine call sites", "§5 FORTRAN example", "e14.json",
			"derived classes equal the paper's {X,Z} {Y,Z} {X,Y,Z}; one compiled body is correct at every call site", e14},
		{"E15", "Separate compilation with activation contexts", "§2.2 (procedure invocations get activation contexts)", "e15.json",
			"linked graph size grows with procedure count, not call sites, and results agree with inlining", e15},
		{"E18", "Graph optimizer: fusion and switch sinking cut traffic and cycles", "Figure 9 generalized; §6 transformations composed post-translation", "e18.json",
			"tokens moved drop on every cell, and Figure 9 plus the loop workloads finish in fewer cycles than schema2-opt+elim alone", e18},
		{"E19", "Engine telemetry: phase firing split and cross-shard traffic across worker counts", "observability of the sharded BSP engine (SCALING.md); byte-identical execution at every worker count", "e19.json",
			"cycles, firings, and token counts are invariant across worker counts; cross-shard traffic is zero at w=1 and positive at w>=4; and the fire/retire split sums to total firings on every sharded run", e19},
	}
}

// Run executes the experiment and renders its tables as plain text (the
// exact format EXPERIMENTS.md embeds).
func (e Experiment) Run() (string, error) {
	ts, err := e.run()
	if err != nil {
		return "", err
	}
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, "\n"), nil
}

// tableJSON is the machine-readable form of one rendered table.
type tableJSON struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// artifact is the JSON document `ctdf experiments -json` writes per
// experiment.
type artifact struct {
	ID      string      `json:"id"`
	Title   string      `json:"title"`
	Paper   string      `json:"paper"`
	Asserts string      `json:"asserts"`
	Tables  []tableJSON `json:"tables"`
}

// JSON executes the experiment and renders the result as an indented
// JSON artifact carrying the same tables as the text output plus the
// experiment's metadata and asserted metric.
func (e Experiment) JSON() ([]byte, error) {
	ts, err := e.run()
	if err != nil {
		return nil, err
	}
	a := artifact{ID: e.ID, Title: e.Title, Paper: e.Paper, Asserts: e.Asserts}
	for _, t := range ts {
		a.Tables = append(a.Tables, tableJSON{Columns: t.cols, Rows: t.rows})
	}
	return json.MarshalIndent(a, "", "  ")
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func translateW(w workloads.Workload, opt translate.Options) (*translate.Result, error) {
	g, err := cfg.Build(w.Parse())
	if err != nil {
		return nil, err
	}
	return translate.Translate(g, opt)
}

func runMachine(res *translate.Result, cfgc machine.Config) (*machine.Outcome, error) {
	return machine.Run(res.Graph, cfgc)
}

type table struct {
	cols   []string
	widths []int
	rows   [][]string
}

func newTable(cols ...string) *table {
	t := &table{cols: cols, widths: make([]int, len(cols))}
	for i, c := range cols {
		t.widths[i] = len(c)
	}
	return t
}

func (t *table) row(cells ...any) {
	r := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			r[i] = fmt.Sprintf("%.2f", v)
		default:
			r[i] = fmt.Sprint(c)
		}
		if len(r[i]) > t.widths[i] {
			t.widths[i] = len(r[i])
		}
	}
	t.rows = append(t.rows, r)
}

func (t *table) String() string {
	var b strings.Builder
	for i, c := range t.cols {
		fmt.Fprintf(&b, "%-*s  ", t.widths[i], c)
	}
	b.WriteString("\n")
	for i := range t.cols {
		b.WriteString(strings.Repeat("-", t.widths[i]) + "  ")
	}
	b.WriteString("\n")
	for _, r := range t.rows {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", t.widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// e1: Schema 1 executes the running example sequentially.
func e1() ([]*table, error) {
	res, err := translateW(workloads.RunningExample, translate.Options{Schema: translate.Schema1})
	if err != nil {
		return nil, err
	}
	out, err := runMachine(res, machine.Config{MemLatency: 4})
	if err != nil {
		return nil, err
	}
	s := res.Graph.Stats()
	t := newTable("metric", "value")
	t.row("dataflow nodes", s.Nodes)
	t.row("dataflow arcs", s.Arcs)
	t.row("switches", s.Switches)
	t.row("access tokens", len(res.Universe))
	t.row("cycles (L=4, unlimited procs)", out.Stats.Cycles)
	t.row("operations fired", out.Stats.Ops)
	t.row("avg parallelism", out.Stats.AvgParallelism())
	t.row("final x", out.Store.Get("x"))
	t.row("final y", out.Store.Get("y"))
	return []*table{t}, nil
}

// e2: Schema 2 vs Schema 1 on the running example and a parallel workload.
func e2() ([]*table, error) {
	t := newTable("workload", "schema", "tokens", "cycles(L=4)", "ops", "avg par", "speedup")
	for _, w := range []workloads.Workload{workloads.RunningExample, workloads.MustByName("independent-chains")} {
		base := 0
		for _, schema := range []translate.Schema{translate.Schema1, translate.Schema2} {
			res, err := translateW(w, translate.Options{Schema: schema})
			if err != nil {
				return nil, err
			}
			out, err := runMachine(res, machine.Config{MemLatency: 4})
			if err != nil {
				return nil, err
			}
			if schema == translate.Schema1 {
				base = out.Stats.Cycles
			}
			t.row(w.Name, schema, len(res.Universe), out.Stats.Cycles, out.Stats.Ops,
				out.Stats.AvgParallelism(), float64(base)/float64(out.Stats.Cycles))
		}
	}
	return []*table{t}, nil
}

// e3: graph size scales as O(E·V).
func e3() ([]*table, error) {
	t := newTable("workload", "E (CFG edges)", "V (tokens)", "E·V", "DFG arcs", "arcs/(E·V)")
	ws := append([]workloads.Workload{}, workloads.All()...)
	for seed := int64(300); seed < 306; seed++ {
		ws = append(ws, workloads.Random(seed, 6, 2))
	}
	for _, w := range ws {
		res, err := translateW(w, translate.Options{Schema: translate.Schema2})
		if err != nil {
			return nil, err
		}
		e := res.CFG.NumEdges()
		v := len(res.Universe)
		t.row(w.Name, e, v, e*v, res.Graph.NumArcs(), float64(res.Graph.NumArcs())/float64(e*v))
	}
	return []*table{t}, nil
}

// e4: Figure 9 — the bypass removes the switch for x and shortens the
// critical path.
func e4() ([]*table, error) {
	t := newTable("schema", "switches", "switch for x", "cycles(L=8)")
	for _, schema := range []translate.Schema{translate.Schema2, translate.Schema2Opt} {
		res, err := translateW(workloads.Fig9Example, translate.Options{Schema: schema})
		if err != nil {
			return nil, err
		}
		swx := 0
		for _, n := range res.Graph.Nodes {
			if n.Kind == dfg.Switch && n.Tok == "x" {
				swx++
			}
		}
		out, err := runMachine(res, machine.Config{MemLatency: 8})
		if err != nil {
			return nil, err
		}
		t.row(schema, res.Graph.CountKind(dfg.Switch), swx, out.Stats.Cycles)
	}
	return []*table{t}, nil
}

// e5: Theorem 1 verified exhaustively over the suite plus random CFGs.
func e5() ([]*table, error) {
	ws := append([]workloads.Workload{}, workloads.All()...)
	for seed := int64(400); seed < 420; seed++ {
		ws = append(ws, workloads.Random(seed, 4, 2))
	}
	pairs, mismatches := 0, 0
	for _, w := range ws {
		g, err := cfg.Build(w.Parse())
		if err != nil {
			return nil, err
		}
		cd := analysis.ComputeControlDeps(g)
		pdom := cd.PostDom()
		for _, n := range g.SortedIDs() {
			cdp := cd.IteratedCD([]int{n})
			for _, f := range g.SortedIDs() {
				pairs++
				if cdp[f] != analysis.BetweenWith(g, pdom, f, n) {
					mismatches++
				}
			}
		}
	}
	t := newTable("metric", "value")
	t.row("programs checked", len(ws))
	t.row("(F, N) pairs checked", pairs)
	t.row("Theorem 1 mismatches", mismatches)
	return []*table{t}, nil
}

// e6: the §4 iterative algorithm reaches the direct construction on
// acyclic programs.
func e6() ([]*table, error) {
	t := newTable("workload", "schema2 switches", "after iterative", "direct (Fig 11)", "agree")
	for _, w := range workloads.All() {
		g, err := cfg.Build(w.Parse())
		if err != nil {
			return nil, err
		}
		_, loops, err := cfg.InsertLoopControl(g)
		if err != nil || len(loops) > 0 {
			continue
		}
		s2, err := translate.Translate(g, translate.Options{Schema: translate.Schema2})
		if err != nil {
			return nil, err
		}
		direct, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
		if err != nil {
			return nil, err
		}
		iter, _ := translate.EliminateRedundantSwitches(s2.Graph)
		a := iter.CountKind(dfg.Switch)
		b := direct.Graph.CountKind(dfg.Switch)
		t.row(w.Name, s2.Graph.CountKind(dfg.Switch), a, b, a == b)
	}
	return []*table{t}, nil
}

// e7: covers trade parallelism against synchronization (§5).
func e7() ([]*table, error) {
	t := newTable("workload", "cover", "tokens", "token collections", "synch nodes", "cycles(L=6)", "avg par")
	for _, w := range []workloads.Workload{workloads.FortranAlias, workloads.MustByName("cover-tradeoff")} {
		prog := w.Parse()
		as := analysis.NewAliasStructure(prog)
		covers := []struct {
			name  string
			cover *analysis.Cover
		}{
			{"singleton", analysis.SingletonCover(as)},
			{"class", analysis.ClassCover(as)},
			{"monolithic", analysis.MonolithicCover(as)},
		}
		// Reference occurrences for the synchronization cost metric.
		g, err := cfg.Build(prog)
		if err != nil {
			return nil, err
		}
		var refs []string
		for _, id := range g.SortedIDs() {
			for v := range g.Refs(id) {
				refs = append(refs, v)
			}
		}
		sort.Strings(refs)

		for _, c := range covers {
			res, err := translateW(w, translate.Options{Schema: translate.Schema3, Cover: c.cover})
			if err != nil {
				return nil, err
			}
			out, err := runMachine(res, machine.Config{MemLatency: 6})
			if err != nil {
				return nil, err
			}
			t.row(w.Name, c.name, len(res.Universe), c.cover.SynchCost(as, refs),
				res.Graph.CountKind(dfg.Synch), out.Stats.Cycles, out.Stats.AvgParallelism())
		}
	}
	return []*table{t}, nil
}

// e8: Figure 14 — store time N·L sequential vs ~N+L parallelized.
func e8() ([]*table, error) {
	g, err := cfg.Build(workloads.Fig14ArrayLoop.Parse())
	if err != nil {
		return nil, err
	}
	seq, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true})
	if err != nil {
		return nil, err
	}
	par, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true, ParallelArrayStores: true})
	if err != nil {
		return nil, err
	}
	t := newTable("store latency L", "sequential cycles", "parallelized cycles", "speedup", "N·L floor")
	for _, lat := range []int{1, 5, 10, 20, 50} {
		so, err := machine.Run(seq.Graph, machine.Config{MemLatency: lat})
		if err != nil {
			return nil, err
		}
		po, err := machine.Run(par.Graph, machine.Config{MemLatency: lat})
		if err != nil {
			return nil, err
		}
		t.row(lat, so.Stats.Cycles, po.Stats.Cycles,
			float64(so.Stats.Cycles)/float64(po.Stats.Cycles), 10*lat)
	}
	return []*table{t}, nil
}

// e9: §6.1 memory elimination across scalar workloads.
func e9() ([]*table, error) {
	t := newTable("workload", "loads+stores", "after elim", "cycles(L=4)", "after elim ", "speedup")
	for _, w := range []workloads.Workload{
		workloads.RunningExample,
		workloads.MustByName("fib-iterative"),
		workloads.MustByName("gcd"),
		workloads.MustByName("nested-loops"),
		workloads.MustByName("independent-chains"),
	} {
		plain, err := translateW(w, translate.Options{Schema: translate.Schema2Opt})
		if err != nil {
			return nil, err
		}
		elim, err := translateW(w, translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true})
		if err != nil {
			return nil, err
		}
		po, err := runMachine(plain, machine.Config{MemLatency: 4})
		if err != nil {
			return nil, err
		}
		eo, err := runMachine(elim, machine.Config{MemLatency: 4})
		if err != nil {
			return nil, err
		}
		ps, es := plain.Graph.Stats(), elim.Graph.Stats()
		t.row(w.Name, ps.Loads+ps.Stores, es.Loads+es.Stores, po.Stats.Cycles, eo.Stats.Cycles,
			float64(po.Stats.Cycles)/float64(eo.Stats.Cycles))
	}
	return []*table{t}, nil
}

// e10: §6.2 read parallelization vs latency.
func e10() ([]*table, error) {
	w := workloads.MustByName("read-heavy")
	g, err := cfg.Build(w.Parse())
	if err != nil {
		return nil, err
	}
	seq, err := translate.Translate(g, translate.Options{Schema: translate.Schema2})
	if err != nil {
		return nil, err
	}
	par, err := translate.Translate(g, translate.Options{Schema: translate.Schema2, ParallelReads: true})
	if err != nil {
		return nil, err
	}
	t := newTable("load latency L", "sequential reads", "parallel reads", "speedup")
	for _, lat := range []int{1, 4, 8, 16, 32} {
		so, err := machine.Run(seq.Graph, machine.Config{MemLatency: lat})
		if err != nil {
			return nil, err
		}
		po, err := machine.Run(par.Graph, machine.Config{MemLatency: lat})
		if err != nil {
			return nil, err
		}
		t.row(lat, so.Stats.Cycles, po.Stats.Cycles, float64(so.Stats.Cycles)/float64(po.Stats.Cycles))
	}
	return []*table{t}, nil
}

// e11: the full schema comparison across the suite.
func e11() ([]*table, error) {
	schemas := []translate.Options{
		{Schema: translate.Schema1},
		{Schema: translate.Schema2},
		{Schema: translate.Schema2Opt},
		{Schema: translate.Schema2Opt, EliminateMemory: true},
		{Schema: translate.Schema2Opt, EliminateMemory: true, ParallelReads: true, ParallelArrayStores: true},
	}
	names := []string{"schema1", "schema2", "schema2-opt", "+mem-elim", "+all §6"}
	t := newTable("workload", "schema1", "schema2", "schema2-opt", "+mem-elim", "+all §6", "best speedup")
	_ = names
	for _, w := range workloads.All() {
		cells := []any{w.Name}
		base, best := 0, 1<<62
		for i, opt := range schemas {
			res, err := translateW(w, opt)
			if err != nil {
				return nil, err
			}
			out, err := runMachine(res, machine.Config{MemLatency: 4})
			if err != nil {
				return nil, err
			}
			c := out.Stats.Cycles
			if i == 0 {
				base = c
			}
			if c < best {
				best = c
			}
			cells = append(cells, c)
		}
		cells = append(cells, float64(base)/float64(best))
		t.row(cells...)
	}
	return []*table{t}, nil
}

// e13: I-structure memory (§6.3): with write-once arrays, the consumer
// loop's reads defer at the memory instead of waiting for the producer
// loop's access token, so the two loops overlap.
func e13() ([]*table, error) {
	w := workloads.MustByName("producer-consumer")
	g, err := cfg.Build(w.Parse())
	if err != nil {
		return nil, err
	}
	base, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true})
	if err != nil {
		return nil, err
	}
	ist, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true, UseIStructures: true})
	if err != nil {
		return nil, err
	}
	t := newTable("memory latency L", "access-token cycles", "I-structure cycles", "speedup")
	for _, lat := range []int{1, 4, 8, 16, 32} {
		bo, err := machine.Run(base.Graph, machine.Config{MemLatency: lat})
		if err != nil {
			return nil, err
		}
		io, err := machine.Run(ist.Graph, machine.Config{MemLatency: lat})
		if err != nil {
			return nil, err
		}
		t.row(lat, bo.Stats.Cycles, io.Stats.Cycles, float64(bo.Stats.Cycles)/float64(io.Stats.Cycles))
	}
	return []*table{t}, nil
}

// e14: the §5 FORTRAN example end to end: derive the alias structure of
// SUBROUTINE F(X,Y,Z) from CALL F(A,B,A) and CALL F(C,D,D), compile the
// body once under Schema 3, and execute it under each call site's storage
// binding.
func e14() ([]*table, error) {
	src := `
var a, b, c, d
proc f(x, y, z) {
  z := x + y
  x := x * 2
}
a := 1
b := 2
call f(a, b, a)
c := 10
d := 20
call f(c, d, d)
`
	prog := lang.MustParse(src)
	derived, err := analysis.DeriveAliasStructures(prog)
	if err != nil {
		return nil, err
	}
	f := derived["f"]
	classOf := func(v string) string {
		var out []string
		for _, w := range []string{"x", "y", "z"} {
			if f.Related(v, w) {
				out = append(out, w)
			}
		}
		return "{" + strings.Join(out, ",") + "}"
	}
	t := newTable("formal", "derived class", "paper (§5)")
	t.row("x", classOf("x"), "{X,Z}")
	t.row("y", classOf("y"), "{Y,Z}")
	t.row("z", classOf("z"), "{X,Y,Z}")

	// Compile once; run under each call site's binding.
	standalone, err := analysis.StandaloneProc(prog, "f", f)
	if err != nil {
		return nil, err
	}
	g, err := cfg.Build(standalone)
	if err != nil {
		return nil, err
	}
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema3})
	if err != nil {
		return nil, err
	}
	t2 := newTable("call site", "binding", "one graph correct")
	for _, cs := range prog.Calls() {
		b, err := analysis.CallBinding(prog, cs.Call)
		if err != nil {
			return nil, err
		}
		want, err := interp.Run(g, interp.Options{Binding: b})
		if err != nil {
			return nil, err
		}
		out, err := machine.Run(res.Graph, machine.Config{Binding: b, DetectRaces: true})
		if err != nil {
			return nil, err
		}
		var pairs []string
		for _, k := range []string{"x", "y", "z"} {
			pairs = append(pairs, k+"→"+b[k])
		}
		t2.row(cs.Call.String(), strings.Join(pairs, " "), out.Store.Snapshot() == want.Store.Snapshot())
	}
	return []*table{t, t2}, nil
}

// e15: separate compilation — each procedure body appears once, calls run
// it under fresh activation frames. Measured: graph size grows with
// procedure count (not call-site count) while concurrent activations keep
// the parallelism of inlining.
func e15() ([]*table, error) {
	mkSrc := func(nCalls int) string {
		src := "var a0, a1, a2, a3, a4, a5, a6, a7\n" +
			"proc work(x) {\n  x := x + 1\n  x := x * 3\n  x := x - 2\n  x := x * x\n  x := x % 97\n}\n"
		for i := 0; i < nCalls; i++ {
			src += fmt.Sprintf("call work(a%d)\n", i)
		}
		return src
	}
	t := newTable("call sites", "inlined nodes", "linked nodes", "inlined cycles(L=4)", "linked cycles(L=4)", "results agree")
	for _, n := range []int{1, 2, 4, 8} {
		prog := lang.MustParse(mkSrc(n))
		inCFG, err := cfg.Build(prog)
		if err != nil {
			return nil, err
		}
		inl, err := translate.Translate(inCFG, translate.Options{Schema: translate.Schema2Opt})
		if err != nil {
			return nil, err
		}
		lnk, err := translate.TranslateLinked(prog)
		if err != nil {
			return nil, err
		}
		io, err := machine.Run(inl.Graph, machine.Config{MemLatency: 4})
		if err != nil {
			return nil, err
		}
		lo, err := machine.Run(lnk.Graph, machine.Config{MemLatency: 4})
		if err != nil {
			return nil, err
		}
		t.row(n, inl.Graph.NumNodes(), lnk.Graph.NumNodes(),
			io.Stats.Cycles, lo.Stats.Cycles,
			io.Store.Snapshot() == lo.Store.Snapshot())
	}
	return []*table{t}, nil
}

// e12: the two engines agree exactly on results and firing counts.
func e12() ([]*table, error) {
	t := newTable("workload", "machine ops", "chanexec ops", "states agree")
	for _, w := range workloads.All() {
		res, err := translateW(w, translate.Options{Schema: translate.Schema2Opt})
		if err != nil {
			return nil, err
		}
		mo, err := runMachine(res, machine.Config{})
		if err != nil {
			return nil, err
		}
		co, err := chanexec.Run(res.Graph, chanexec.Config{})
		if err != nil {
			return nil, err
		}
		t.row(w.Name, mo.Stats.Ops, co.Ops, mo.Store.Snapshot() == co.Store.Snapshot())
	}
	return []*table{t}, nil
}

// optDelta is one before/after measurement of the graph optimizer
// (internal/opt) on a fixed workload × translation × machine config.
type optDelta struct {
	rewrites  int
	base, opt *machine.Outcome
	agree     bool
}

// measureOptDelta translates a workload, runs it, optimizes the graph,
// and runs it again under the same machine configuration. Both e18 and
// the experiment tests drive this helper so the asserted cells are the
// reported cells.
func measureOptDelta(name string, topt translate.Options, mc machine.Config) (*optDelta, error) {
	res, err := translateW(workloads.MustByName(name), topt)
	if err != nil {
		return nil, err
	}
	base, err := runMachine(res, mc)
	if err != nil {
		return nil, err
	}
	baseSnap := translate.FinalSnapshot(res, base.Store, base.EndValues)
	cert, err := graphopt.Run(res)
	if err != nil {
		return nil, err
	}
	out, err := runMachine(res, mc)
	if err != nil {
		return nil, err
	}
	return &optDelta{
		rewrites: cert.Rewrites(),
		base:     base,
		opt:      out,
		agree:    translate.FinalSnapshot(res, out.Store, out.EndValues) == baseSnap,
	}, nil
}

// e18: the post-translation graph optimizer — operator fusion, switch
// sinking (Figure 9 generalized to any switch the minimal placement
// proves redundant), merge collapsing, and dead-token elimination —
// measured as interconnect traffic (tokens moved), critical path
// (cycles), and operator firings, before and after, per schema.
func e18() ([]*table, error) {
	configs := []struct {
		label string
		topt  translate.Options
	}{
		{"schema2", translate.Options{Schema: translate.Schema2}},
		{"schema2-opt", translate.Options{Schema: translate.Schema2Opt}},
		{"schema2-opt+elim", translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true}},
	}
	t := newTable("workload", "schema", "rewrites", "cycles(L=4)", "+opt", "tokens moved", "+opt", "fires", "+opt", "result ok")
	for _, name := range []string{
		"fig9-bypass", "running-example", "deep-expression",
		"fib-iterative", "gcd", "collatz-bounded", "sieve", "array-sum",
	} {
		for _, c := range configs {
			d, err := measureOptDelta(name, c.topt, machine.Config{MemLatency: 4})
			if err != nil {
				return nil, err
			}
			t.row(name, c.label, d.rewrites,
				d.base.Stats.Cycles, d.opt.Stats.Cycles,
				d.base.Stats.TokensMoved, d.opt.Stats.TokensMoved,
				d.base.Stats.Ops, d.opt.Stats.Ops, d.agree)
		}
	}
	return []*table{t}, nil
}

// e19: engine telemetry — phase firing split and cross-shard token
// traffic across worker counts. Everything in this table is
// scheduling-independent: the sharded machine is byte-identical to the
// sequential engine, so the counters and the traffic matrix depend only
// on workload and worker count (the wall-time families the profiler
// also records are excluded here precisely because they vary). The
// fire/retire split exists only on sharded runs — the sequential engine
// has no separate retire phase — so w=1 rows show "-".
func e19() ([]*table, error) {
	t := newTable("workload", "workers", "cycles", "firings", "fire", "retire",
		"tokens", "seq", "mem", "remote", "remote%")
	cases := []workloads.Workload{
		workloads.MustByName("fib-iterative"),
		workloads.Wide(64, 60),
		workloads.Random(4242, 16, 3),
	}
	for _, w := range cases {
		for _, workers := range []int{1, 4, 8} {
			res, err := translateW(w, translate.Options{Schema: translate.Schema2Opt})
			if err != nil {
				return nil, err
			}
			reg := telemetry.NewRegistry()
			if _, err := runMachine(res, machine.Config{MemLatency: 4, Workers: workers, Telemetry: reg}); err != nil {
				return nil, err
			}
			b := reg.Snapshot().MachineBreakdown()
			fireS, retireS, remotePct := "-", "-", "-"
			if workers > 1 {
				fireS = fmt.Sprint(b.FireFirings)
				retireS = fmt.Sprint(b.RetireFirings)
				if b.ShardTokens > 0 {
					remotePct = fmt.Sprintf("%.2f", 100*float64(b.RemoteTokens)/float64(b.ShardTokens))
				}
			}
			t.row(w.Name, workers, b.Cycles, b.Firings, fireS, retireS,
				b.Tokens, b.SeqTokens, b.MemTokens, b.RemoteTokens, remotePct)
		}
	}
	return []*table{t}, nil
}
