package experiments

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestExperimentsDocInSync keeps EXPERIMENTS.md honest: every experiment's
// section must embed the experiment's current table output verbatim (the
// doc right-trims the final table line before the closing code fence),
// link the experiment's JSON artifact, and state its asserted metric.
// If a table goes stale, regenerate it with `go run ./cmd/ctdf experiments`.
func TestExperimentsDocInSync(t *testing.T) {
	doc, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	s := string(doc)
	for _, e := range All() {
		out, err := e.Run()
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		block := "```\n" + strings.TrimRight(out, " \n") + "\n```"
		if !strings.Contains(s, block) {
			t.Errorf("%s: EXPERIMENTS.md table is stale (regenerate with `go run ./cmd/ctdf experiments`)", e.ID)
		}
		if !strings.Contains(s, fmt.Sprintf("artifacts/%s", e.Artifact)) {
			t.Errorf("%s: EXPERIMENTS.md does not link artifact %q", e.ID, e.Artifact)
		}
		if !strings.Contains(s, e.Asserts) {
			t.Errorf("%s: EXPERIMENTS.md does not state the asserted metric %q", e.ID, e.Asserts)
		}
	}
}

// TestArtifactsDirInSync verifies the checked-in artifacts/ directory
// holds a current JSON artifact for every experiment.
func TestArtifactsDirInSync(t *testing.T) {
	for _, e := range All() {
		got, err := os.ReadFile("../../artifacts/" + e.Artifact)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with `go run ./cmd/ctdf experiments -json artifacts`)", e.ID, err)
		}
		want, err := e.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimRight(string(got), "\n") != string(want) {
			t.Errorf("%s: artifacts/%s is stale (regenerate with `go run ./cmd/ctdf experiments -json artifacts`)", e.ID, e.Artifact)
		}
	}
}
