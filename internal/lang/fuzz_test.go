package lang

import (
	"testing"
)

// FuzzParse checks the front end never panics and that anything it accepts
// survives a Format→Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"var x, y\nl: y := x + 1\nx := x + 1\nif x < 5 then goto l else goto end\n",
		"var a\narray b[4]\nalias a ~ a\n",
		"proc f(x) { x := 1 }\n",
		"var a\nwhile a < 3 { a := a + 1 }\n",
		"var a\nif a { } else { }\n",
		"x :=",
		"goto goto goto",
		"var\n",
		"array a[999999999999999999999]\n",
		"var x\nx := ((((((1))))))\n",
		"var x\nx := 1 / 0 % -0\n",
		"if 1 then goto end else goto end\n",
		"\x00\x01\x02",
		"var π\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		formatted := p.Format()
		p2, err := Parse(formatted)
		if err != nil {
			t.Fatalf("accepted program does not reparse after Format: %v\noriginal: %q\nformatted: %q", err, src, formatted)
		}
		if p2.Format() != formatted {
			t.Fatalf("Format not a fixed point for %q", src)
		}
	})
}
