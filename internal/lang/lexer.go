package lang

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokAssign // :=
	tokColon
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokComma
	tokTilde
	tokOp      // arithmetic/comparison/logical operator
	tokKeyword // var array alias if else while goto then
)

type token struct {
	kind tokenKind
	text string
	val  int64 // for tokInt
	pos  Pos
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"var": true, "array": true, "alias": true,
	"if": true, "else": true, "while": true,
	"goto": true, "then": true,
	"proc": true, "call": true,
}

// lexer converts source text into tokens.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errorf(p Pos, format string, args ...any) error {
	return fmt.Errorf("lang: %s: %s", p, fmt.Sprintf(format, args...))
}

func (l *lexer) peekRune() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) nextRune() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peekRune()
		switch {
		case unicode.IsSpace(r):
			l.nextRune()
		case r == '#':
			for l.pos < len(l.src) && l.peekRune() != '\n' {
				l.nextRune()
			}
		case r == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekRune() != '\n' {
				l.nextRune()
			}
		default:
			return
		}
	}
}

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	p := Pos{l.line, l.col}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: p}, nil
	}
	r := l.peekRune()
	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsLetter(l.peekRune()) || unicode.IsDigit(l.peekRune()) || l.peekRune() == '_') {
			l.nextRune()
		}
		text := string(l.src[start:l.pos])
		if keywords[text] {
			return token{kind: tokKeyword, text: text, pos: p}, nil
		}
		return token{kind: tokIdent, text: text, pos: p}, nil
	case unicode.IsDigit(r):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(l.peekRune()) {
			l.nextRune()
		}
		text := string(l.src[start:l.pos])
		v, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return token{}, l.errorf(p, "bad integer literal %q", text)
		}
		return token{kind: tokInt, text: text, val: v, pos: p}, nil
	}
	l.nextRune()
	two := func(second rune, yes, no string) token {
		if l.peekRune() == second {
			l.nextRune()
			return token{kind: tokOp, text: yes, pos: p}
		}
		if no == "" {
			return token{kind: tokOp, text: string(r), pos: p}
		}
		return token{kind: tokOp, text: no, pos: p}
	}
	switch r {
	case ':':
		if l.peekRune() == '=' {
			l.nextRune()
			return token{kind: tokAssign, text: ":=", pos: p}, nil
		}
		return token{kind: tokColon, text: ":", pos: p}, nil
	case '{':
		return token{kind: tokLBrace, text: "{", pos: p}, nil
	case '}':
		return token{kind: tokRBrace, text: "}", pos: p}, nil
	case '[':
		return token{kind: tokLBracket, text: "[", pos: p}, nil
	case ']':
		return token{kind: tokRBracket, text: "]", pos: p}, nil
	case '(':
		return token{kind: tokLParen, text: "(", pos: p}, nil
	case ')':
		return token{kind: tokRParen, text: ")", pos: p}, nil
	case ',':
		return token{kind: tokComma, text: ",", pos: p}, nil
	case '~':
		return token{kind: tokTilde, text: "~", pos: p}, nil
	case '+', '-', '*', '/', '%':
		return token{kind: tokOp, text: string(r), pos: p}, nil
	case '<':
		return two('=', "<=", "<"), nil
	case '>':
		return two('=', ">=", ">"), nil
	case '=':
		if l.peekRune() == '=' {
			l.nextRune()
			return token{kind: tokOp, text: "==", pos: p}, nil
		}
		return token{}, l.errorf(p, "unexpected '=' (use ':=' for assignment, '==' for equality)")
	case '!':
		return two('=', "!=", "!"), nil
	case '&':
		if l.peekRune() == '&' {
			l.nextRune()
			return token{kind: tokOp, text: "&&", pos: p}, nil
		}
		return token{}, l.errorf(p, "unexpected '&'")
	case '|':
		if l.peekRune() == '|' {
			l.nextRune()
			return token{kind: tokOp, text: "||", pos: p}, nil
		}
		return token{}, l.errorf(p, "unexpected '|'")
	}
	return token{}, l.errorf(p, "unexpected character %q", string(r))
}

// lexAll scans the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
