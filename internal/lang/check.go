package lang

import (
	"fmt"
)

// Check validates a program: declarations are unique, every referenced
// variable/array is declared with the right kind, alias declarations name
// scalar variables, every goto target is a declared label, and labels are
// unique. Structured statements are checked recursively.
func Check(p *Program) error {
	scalars := map[string]bool{}
	arrays := map[string]bool{}
	for _, v := range p.Vars {
		if scalars[v.Name] || arrays[v.Name] {
			return fmt.Errorf("lang: %s: duplicate declaration of %s", v.Pos, v.Name)
		}
		scalars[v.Name] = true
	}
	for _, a := range p.Arrays {
		if scalars[a.Name] || arrays[a.Name] {
			return fmt.Errorf("lang: %s: duplicate declaration of %s", a.Pos, a.Name)
		}
		arrays[a.Name] = true
	}
	for _, al := range p.Aliases {
		if !scalars[al.A] && !arrays[al.A] {
			return fmt.Errorf("lang: %s: alias declaration references undeclared %s", al.Pos, al.A)
		}
		if !scalars[al.B] && !arrays[al.B] {
			return fmt.Errorf("lang: %s: alias declaration references undeclared %s", al.Pos, al.B)
		}
		if al.A == al.B {
			return fmt.Errorf("lang: %s: alias of %s with itself is implicit (the alias relation is reflexive)", al.Pos, al.A)
		}
	}

	// Procedures: unique names, well-formed parameter lists, checked
	// bodies (formals plus globals in scope; a per-body label namespace
	// without the implicit "end" — a procedure cannot jump to the program
	// end).
	procs := map[string]*ProcDecl{}
	for i := range p.Procedures {
		pr := &p.Procedures[i]
		if procs[pr.Name] != nil {
			return fmt.Errorf("lang: %s: duplicate procedure %s", pr.Pos, pr.Name)
		}
		if scalars[pr.Name] || arrays[pr.Name] {
			return fmt.Errorf("lang: %s: procedure %s clashes with a variable", pr.Pos, pr.Name)
		}
		procs[pr.Name] = pr
		seen := map[string]bool{}
		for _, f := range pr.Params {
			if seen[f] {
				return fmt.Errorf("lang: %s: duplicate parameter %s in %s", pr.Pos, f, pr.Name)
			}
			seen[f] = true
			if scalars[f] || arrays[f] {
				return fmt.Errorf("lang: %s: parameter %s of %s shadows a global", pr.Pos, f, pr.Name)
			}
		}
	}
	for i := range p.Procedures {
		pr := &p.Procedures[i]
		bodyScalars := map[string]bool{}
		for v := range scalars {
			bodyScalars[v] = true
		}
		for _, f := range pr.Params {
			bodyScalars[f] = true
		}
		labels := map[string]bool{}
		if err := collectLabels(pr.Body, labels); err != nil {
			return err
		}
		c := &checker{scalars: bodyScalars, arrays: arrays, labels: labels, procs: procs, inProc: pr.Name}
		if err := c.stmts(pr.Body); err != nil {
			return fmt.Errorf("in procedure %s: %w", pr.Name, err)
		}
	}
	if err := checkNoRecursion(p, procs); err != nil {
		return err
	}

	// "end" is implicitly declared: the paper's running example jumps to it
	// ("... else goto end"). User labels may not redefine it.
	labels := map[string]bool{"end": true}
	if err := collectLabels(p.Body, labels); err != nil {
		return err
	}
	c := &checker{scalars: scalars, arrays: arrays, labels: labels, procs: procs}
	return c.stmts(p.Body)
}

func collectLabels(stmts []Stmt, labels map[string]bool) error {
	for _, s := range stmts {
		switch x := s.(type) {
		case *Label:
			if x.Name == "end" {
				return fmt.Errorf("lang: %s: label \"end\" is reserved for the end node", x.Pos)
			}
			if labels[x.Name] {
				return fmt.Errorf("lang: %s: duplicate label %s", x.Pos, x.Name)
			}
			labels[x.Name] = true
		case *If:
			if err := collectLabels(x.Then, labels); err != nil {
				return err
			}
			if err := collectLabels(x.Else, labels); err != nil {
				return err
			}
		case *While:
			if err := collectLabels(x.Body, labels); err != nil {
				return err
			}
		}
	}
	return nil
}

type checker struct {
	scalars map[string]bool
	arrays  map[string]bool
	labels  map[string]bool
	procs   map[string]*ProcDecl
	inProc  string
}

func (c *checker) stmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch x := s.(type) {
	case *Assign:
		if !c.scalars[x.Name] {
			return fmt.Errorf("lang: %s: assignment to undeclared scalar %s", x.Pos, x.Name)
		}
		return c.expr(x.Expr)
	case *ArrayAssign:
		if !c.arrays[x.Name] {
			return fmt.Errorf("lang: %s: assignment to undeclared array %s", x.Pos, x.Name)
		}
		if err := c.expr(x.Index); err != nil {
			return err
		}
		return c.expr(x.Expr)
	case *If:
		if err := c.expr(x.Cond); err != nil {
			return err
		}
		if err := c.stmts(x.Then); err != nil {
			return err
		}
		return c.stmts(x.Else)
	case *While:
		if err := c.expr(x.Cond); err != nil {
			return err
		}
		return c.stmts(x.Body)
	case *Goto:
		if !c.labels[x.Label] {
			return fmt.Errorf("lang: %s: goto to undeclared label %s", x.Pos, x.Label)
		}
		return nil
	case *CondGoto:
		if err := c.expr(x.Cond); err != nil {
			return err
		}
		if !c.labels[x.True] {
			return fmt.Errorf("lang: %s: goto to undeclared label %s", x.Pos, x.True)
		}
		if !c.labels[x.False] {
			return fmt.Errorf("lang: %s: goto to undeclared label %s", x.Pos, x.False)
		}
		return nil
	case *Label:
		return nil
	case *CallStmt:
		pr, ok := c.procs[x.Proc]
		if !ok {
			return fmt.Errorf("lang: %s: call of undeclared procedure %s", x.Pos, x.Proc)
		}
		if len(x.Args) != len(pr.Params) {
			return fmt.Errorf("lang: %s: call of %s with %d arguments, want %d", x.Pos, x.Proc, len(x.Args), len(pr.Params))
		}
		for _, a := range x.Args {
			if !c.scalars[a] {
				return fmt.Errorf("lang: %s: call argument %s is not a declared scalar", x.Pos, a)
			}
		}
		return nil
	}
	return fmt.Errorf("lang: unknown statement type %T", s)
}

func (c *checker) expr(e Expr) error {
	switch x := e.(type) {
	case *IntLit:
		return nil
	case *VarRef:
		if !c.scalars[x.Name] {
			return fmt.Errorf("lang: %s: reference to undeclared scalar %s", x.Pos, x.Name)
		}
		return nil
	case *IndexRef:
		if !c.arrays[x.Name] {
			return fmt.Errorf("lang: %s: index of undeclared array %s", x.Pos, x.Name)
		}
		return c.expr(x.Index)
	case *BinExpr:
		if err := c.expr(x.L); err != nil {
			return err
		}
		return c.expr(x.R)
	case *UnExpr:
		return c.expr(x.X)
	}
	return fmt.Errorf("lang: unknown expression type %T", e)
}

// VarNames returns the declared scalar variable names in declaration order.
func (p *Program) VarNames() []string {
	out := make([]string, len(p.Vars))
	for i, v := range p.Vars {
		out[i] = v.Name
	}
	return out
}

// ArrayNames returns the declared array names in declaration order.
func (p *Program) ArrayNames() []string {
	out := make([]string, len(p.Arrays))
	for i, a := range p.Arrays {
		out[i] = a.Name
	}
	return out
}

// AllNames returns scalar names followed by array names: the variable name
// universe V over which access tokens and alias structures are defined.
func (p *Program) AllNames() []string {
	return append(p.VarNames(), p.ArrayNames()...)
}

// ArraySize returns the declared size of array name, or 0 if not an array.
func (p *Program) ArraySize(name string) int {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a.Size
		}
	}
	return 0
}

// IsArray reports whether name is a declared array.
func (p *Program) IsArray(name string) bool { return p.ArraySize(name) > 0 }
