package lang

import (
	"fmt"
	"strings"
)

// ProcDecl is a FORTRAN-style subroutine: scalar formal parameters passed
// by reference. Procedure bodies reference their formals and global
// variables; they declare nothing of their own (paper §5's SUBROUTINE
// F(X, Y, Z) setting).
type ProcDecl struct {
	Name   string
	Params []string
	Body   []Stmt
	Pos    Pos
}

// CallStmt invokes a procedure, passing declared scalar variables by
// reference. Passing the same variable (or aliased variables) in two
// argument positions aliases the corresponding formals.
type CallStmt struct {
	Proc string
	Args []string
	Pos  Pos
}

func (*CallStmt) stmtNode()       {}
func (s *CallStmt) Position() Pos { return s.Pos }
func (s *CallStmt) String() string {
	return fmt.Sprintf("call %s(%s)", s.Proc, strings.Join(s.Args, ", "))
}

// Procs returns the declared procedures of a program.
func (p *Program) Procs() []ProcDecl { return p.Procedures }

// Calls collects every call statement in the program body (calls inside
// procedure bodies are also returned, annotated by the enclosing
// procedure's name; "" means the main body).
func (p *Program) Calls() []CallSite {
	var out []CallSite
	var walk func(in string, stmts []Stmt)
	walk = func(in string, stmts []Stmt) {
		for _, s := range stmts {
			switch x := s.(type) {
			case *CallStmt:
				out = append(out, CallSite{Caller: in, Call: x})
			case *If:
				walk(in, x.Then)
				walk(in, x.Else)
			case *While:
				walk(in, x.Body)
			}
		}
	}
	walk("", p.Body)
	for _, pr := range p.Procedures {
		walk(pr.Name, pr.Body)
	}
	return out
}

// CallSite is one call statement and its enclosing context.
type CallSite struct {
	Caller string // "" for the main body
	Call   *CallStmt
}

// Inline returns a procedure-free program equivalent to p: every call is
// expanded with formals substituted by the actual argument names
// (by-reference semantics) and labels made unique per expansion. The
// result is what the sequential oracle and all translation schemas
// consume; DeriveAliasStructures (package analysis) is how the paper's
// separate-compilation view recovers the aliasing this expansion resolves
// exactly.
func (p *Program) Inline() (*Program, error) {
	if len(p.Procedures) == 0 {
		return p, nil
	}
	procs := map[string]*ProcDecl{}
	for i := range p.Procedures {
		procs[p.Procedures[i].Name] = &p.Procedures[i]
	}
	if err := checkNoRecursion(p, procs); err != nil {
		return nil, err
	}
	inl := &inliner{procs: procs}
	body, err := inl.stmts(p.Body, nil)
	if err != nil {
		return nil, err
	}
	out := &Program{
		Vars:    append([]VarDecl(nil), p.Vars...),
		Arrays:  append([]ArrayDecl(nil), p.Arrays...),
		Aliases: append([]AliasDecl(nil), p.Aliases...),
		Body:    body,
	}
	if err := Check(out); err != nil {
		return nil, fmt.Errorf("lang: inlining produced an invalid program: %w", err)
	}
	return out, nil
}

// checkNoRecursion verifies the call graph is acyclic.
func checkNoRecursion(p *Program, procs map[string]*ProcDecl) error {
	adj := map[string][]string{}
	for _, cs := range p.Calls() {
		if cs.Caller != "" {
			adj[cs.Caller] = append(adj[cs.Caller], cs.Call.Proc)
		}
	}
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(string) error
	visit = func(n string) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("lang: recursive procedure %s (call graph cycle)", n)
		case 2:
			return nil
		}
		state[n] = 1
		for _, m := range adj[n] {
			if err := visit(m); err != nil {
				return err
			}
		}
		state[n] = 2
		return nil
	}
	for name := range procs {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

type inliner struct {
	procs  map[string]*ProcDecl
	expand int // per-expansion label suffix counter
}

// stmts clones statements, applying the rename map (formal → actual).
func (il *inliner) stmts(in []Stmt, rename map[string]string) ([]Stmt, error) {
	var out []Stmt
	for _, s := range in {
		cloned, err := il.stmt(s, rename)
		if err != nil {
			return nil, err
		}
		out = append(out, cloned...)
	}
	return out, nil
}

func (il *inliner) stmt(s Stmt, rename map[string]string) ([]Stmt, error) {
	rn := func(name string) string {
		if to, ok := rename[name]; ok {
			return to
		}
		return name
	}
	rnLabel := func(name string) string {
		if to, ok := rename["label$"+name]; ok {
			return to
		}
		return name
	}
	switch x := s.(type) {
	case *Assign:
		return []Stmt{&Assign{Name: rn(x.Name), Expr: renameExpr(x.Expr, rename), Pos: x.Pos}}, nil
	case *ArrayAssign:
		return []Stmt{&ArrayAssign{Name: rn(x.Name), Index: renameExpr(x.Index, rename), Expr: renameExpr(x.Expr, rename), Pos: x.Pos}}, nil
	case *If:
		then, err := il.stmts(x.Then, rename)
		if err != nil {
			return nil, err
		}
		els, err := il.stmts(x.Else, rename)
		if err != nil {
			return nil, err
		}
		return []Stmt{&If{Cond: renameExpr(x.Cond, rename), Then: then, Else: els, Pos: x.Pos}}, nil
	case *While:
		body, err := il.stmts(x.Body, rename)
		if err != nil {
			return nil, err
		}
		return []Stmt{&While{Cond: renameExpr(x.Cond, rename), Body: body, Pos: x.Pos}}, nil
	case *Goto:
		return []Stmt{&Goto{Label: rnLabel(x.Label), Pos: x.Pos}}, nil
	case *CondGoto:
		return []Stmt{&CondGoto{Cond: renameExpr(x.Cond, rename), True: rnLabel(x.True), False: rnLabel(x.False), Pos: x.Pos}}, nil
	case *Label:
		return []Stmt{&Label{Name: rnLabel(x.Name), Pos: x.Pos}}, nil
	case *CallStmt:
		proc := il.procs[x.Proc]
		il.expand++
		sub := map[string]string{}
		for i, f := range proc.Params {
			actual := x.Args[i]
			if to, ok := rename[actual]; ok {
				actual = to
			}
			sub[f] = actual
		}
		// Labels inside the body get a unique suffix per expansion.
		suffix := fmt.Sprintf("%s$%d", x.Proc, il.expand)
		collectBodyLabels(proc.Body, suffix, sub)
		return il.stmts(proc.Body, sub)
	}
	return nil, fmt.Errorf("lang: cannot inline statement %T", s)
}

// collectBodyLabels adds label renames ("label$<name>" → "<name>$<suffix>")
// for every label declared in the body.
func collectBodyLabels(stmts []Stmt, suffix string, sub map[string]string) {
	for _, s := range stmts {
		switch x := s.(type) {
		case *Label:
			sub["label$"+x.Name] = x.Name + "_" + suffix
		case *If:
			collectBodyLabels(x.Then, suffix, sub)
			collectBodyLabels(x.Else, suffix, sub)
		case *While:
			collectBodyLabels(x.Body, suffix, sub)
		}
	}
}

// renameExpr clones an expression applying the rename map.
func renameExpr(e Expr, rename map[string]string) Expr {
	rn := func(name string) string {
		if to, ok := rename[name]; ok {
			return to
		}
		return name
	}
	switch x := e.(type) {
	case *IntLit:
		return &IntLit{Value: x.Value, Pos: x.Pos}
	case *VarRef:
		return &VarRef{Name: rn(x.Name), Pos: x.Pos}
	case *IndexRef:
		return &IndexRef{Name: rn(x.Name), Index: renameExpr(x.Index, rename), Pos: x.Pos}
	case *BinExpr:
		return &BinExpr{Op: x.Op, L: renameExpr(x.L, rename), R: renameExpr(x.R, rename), Pos: x.Pos}
	case *UnExpr:
		return &UnExpr{Op: x.Op, X: renameExpr(x.X, rename), Pos: x.Pos}
	}
	return e
}
