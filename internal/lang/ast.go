// Package lang implements the small imperative source language that the
// translation schemas start from: scalar and array variables, assignments,
// structured if/while, unstructured goto/label control flow, and declared
// alias classes standing in for FORTRAN-style reference-parameter aliasing
// (paper §2.1, §5).
package lang

import (
	"fmt"
	"strings"
)

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Program is a parsed source program: declarations (variables, arrays,
// aliases, procedures) followed by the main statement list.
type Program struct {
	Vars       []VarDecl
	Arrays     []ArrayDecl
	Aliases    []AliasDecl
	Procedures []ProcDecl
	Body       []Stmt
}

// VarDecl declares a scalar integer variable.
type VarDecl struct {
	Name string
	Pos  Pos
}

// ArrayDecl declares a fixed-size integer array.
type ArrayDecl struct {
	Name string
	Size int
	Pos  Pos
}

// AliasDecl declares that two variables may refer to the same storage
// location (paper Definition 6: the alias relation is reflexive and
// symmetric; it is NOT transitively closed — X~Z and Y~Z do not imply X~Y).
type AliasDecl struct {
	A, B string
	Pos  Pos
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	Position() Pos
	String() string
}

// Assign is "x := e".
type Assign struct {
	Name string
	Expr Expr
	Pos  Pos
}

// ArrayAssign is "a[i] := e".
type ArrayAssign struct {
	Name  string
	Index Expr
	Expr  Expr
	Pos   Pos
}

// If is a structured conditional with optional else branch.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

// While is a structured loop.
type While struct {
	Cond Expr
	Body []Stmt
	Pos  Pos
}

// Goto is an unconditional jump to a label.
type Goto struct {
	Label string
	Pos   Pos
}

// CondGoto is the paper's fork statement: "if p then goto lt else goto lf".
type CondGoto struct {
	Cond        Expr
	True, False string
	Pos         Pos
}

// Label marks a join point that gotos may target.
type Label struct {
	Name string
	Pos  Pos
}

func (*Assign) stmtNode()      {}
func (*ArrayAssign) stmtNode() {}
func (*If) stmtNode()          {}
func (*While) stmtNode()       {}
func (*Goto) stmtNode()        {}
func (*CondGoto) stmtNode()    {}
func (*Label) stmtNode()       {}

func (s *Assign) Position() Pos      { return s.Pos }
func (s *ArrayAssign) Position() Pos { return s.Pos }
func (s *If) Position() Pos          { return s.Pos }
func (s *While) Position() Pos       { return s.Pos }
func (s *Goto) Position() Pos        { return s.Pos }
func (s *CondGoto) Position() Pos    { return s.Pos }
func (s *Label) Position() Pos       { return s.Pos }

func (s *Assign) String() string { return fmt.Sprintf("%s := %s", s.Name, s.Expr) }
func (s *ArrayAssign) String() string {
	return fmt.Sprintf("%s[%s] := %s", s.Name, s.Index, s.Expr)
}
func (s *If) String() string    { return fmt.Sprintf("if %s { ... }", s.Cond) }
func (s *While) String() string { return fmt.Sprintf("while %s { ... }", s.Cond) }
func (s *Goto) String() string  { return "goto " + s.Label }
func (s *CondGoto) String() string {
	return fmt.Sprintf("if %s then goto %s else goto %s", s.Cond, s.True, s.False)
}
func (s *Label) String() string { return s.Name + ":" }

// Op identifies a binary or unary operator.
type Op int

// Binary and unary operators of the expression language.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpAnd
	OpOr
	OpNeg // unary minus
	OpNot // unary logical not
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpEq: "==", OpNe: "!=",
	OpAnd: "&&", OpOr: "||", OpNeg: "-", OpNot: "!",
}

func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator yields a boolean (0/1) result.
func (o Op) IsComparison() bool {
	switch o {
	case OpLt, OpLe, OpGt, OpGe, OpEq, OpNe:
		return true
	}
	return false
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	Position() Pos
	String() string
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Pos   Pos
}

// VarRef reads a scalar variable.
type VarRef struct {
	Name string
	Pos  Pos
}

// IndexRef reads an array element, "a[i]".
type IndexRef struct {
	Name  string
	Index Expr
	Pos   Pos
}

// BinExpr applies a binary operator.
type BinExpr struct {
	Op   Op
	L, R Expr
	Pos  Pos
}

// UnExpr applies a unary operator.
type UnExpr struct {
	Op  Op
	X   Expr
	Pos Pos
}

func (*IntLit) exprNode()   {}
func (*VarRef) exprNode()   {}
func (*IndexRef) exprNode() {}
func (*BinExpr) exprNode()  {}
func (*UnExpr) exprNode()   {}

func (e *IntLit) Position() Pos   { return e.Pos }
func (e *VarRef) Position() Pos   { return e.Pos }
func (e *IndexRef) Position() Pos { return e.Pos }
func (e *BinExpr) Position() Pos  { return e.Pos }
func (e *UnExpr) Position() Pos   { return e.Pos }

func (e *IntLit) String() string   { return fmt.Sprintf("%d", e.Value) }
func (e *VarRef) String() string   { return e.Name }
func (e *IndexRef) String() string { return fmt.Sprintf("%s[%s]", e.Name, e.Index) }
func (e *BinExpr) String() string  { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e *UnExpr) String() string   { return fmt.Sprintf("%s%s", e.Op, e.X) }

// Reads appends to set the names of all variables (scalar and array) that
// expression e reads.
func Reads(e Expr, set map[string]bool) {
	switch x := e.(type) {
	case *IntLit:
	case *VarRef:
		set[x.Name] = true
	case *IndexRef:
		set[x.Name] = true
		Reads(x.Index, set)
	case *BinExpr:
		Reads(x.L, set)
		Reads(x.R, set)
	case *UnExpr:
		Reads(x.X, set)
	}
}

// Format renders the program in parseable source form.
func (p *Program) Format() string {
	var b strings.Builder
	for _, v := range p.Vars {
		fmt.Fprintf(&b, "var %s\n", v.Name)
	}
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "array %s[%d]\n", a.Name, a.Size)
	}
	for _, al := range p.Aliases {
		fmt.Fprintf(&b, "alias %s ~ %s\n", al.A, al.B)
	}
	for _, pr := range p.Procedures {
		fmt.Fprintf(&b, "proc %s(%s) {\n", pr.Name, strings.Join(pr.Params, ", "))
		formatStmts(&b, pr.Body, 1)
		fmt.Fprintf(&b, "}\n")
	}
	formatStmts(&b, p.Body, 0)
	return b.String()
}

func formatStmts(b *strings.Builder, stmts []Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch x := s.(type) {
		case *If:
			fmt.Fprintf(b, "%sif %s {\n", indent, x.Cond)
			formatStmts(b, x.Then, depth+1)
			if len(x.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				formatStmts(b, x.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", indent)
		case *While:
			fmt.Fprintf(b, "%swhile %s {\n", indent, x.Cond)
			formatStmts(b, x.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", indent)
		case *Label:
			fmt.Fprintf(b, "%s%s:\n", indent, x.Name)
		default:
			fmt.Fprintf(b, "%s%s\n", indent, s)
		}
	}
}
