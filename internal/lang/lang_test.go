package lang

import (
	"strings"
	"testing"
)

func TestParseRunningExample(t *testing.T) {
	// The paper's running example (§2.1).
	src := `
var x, y
l: y := x + 1
x := x + 1
if x < 5 then goto l else goto end
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vars) != 2 {
		t.Fatalf("vars = %d, want 2", len(p.Vars))
	}
	if len(p.Body) != 4 {
		t.Fatalf("body = %d statements, want 4", len(p.Body))
	}
	if _, ok := p.Body[0].(*Label); !ok {
		t.Errorf("body[0] = %T, want *Label", p.Body[0])
	}
	cg, ok := p.Body[3].(*CondGoto)
	if !ok {
		t.Fatalf("body[3] = %T, want *CondGoto", p.Body[3])
	}
	if cg.True != "l" || cg.False != "end" {
		t.Errorf("cond goto targets = %s/%s, want l/end", cg.True, cg.False)
	}
}

func TestParseStructured(t *testing.T) {
	src := `
var a, b, c
if a < b {
  c := 1
} else {
  c := 2
}
while c < 10 {
  c := c + 1
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Body) != 2 {
		t.Fatalf("body = %d statements, want 2", len(p.Body))
	}
	ifs, ok := p.Body[0].(*If)
	if !ok {
		t.Fatalf("body[0] = %T, want *If", p.Body[0])
	}
	if len(ifs.Then) != 1 || len(ifs.Else) != 1 {
		t.Errorf("if arms = %d/%d statements, want 1/1", len(ifs.Then), len(ifs.Else))
	}
	wl, ok := p.Body[1].(*While)
	if !ok {
		t.Fatalf("body[1] = %T, want *While", p.Body[1])
	}
	if len(wl.Body) != 1 {
		t.Errorf("while body = %d statements, want 1", len(wl.Body))
	}
}

func TestParseArraysAndAliases(t *testing.T) {
	src := `
var x, y, z
array a[10], b[5]
alias x ~ z
alias y ~ z
a[x] := b[y] + 1
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Arrays) != 2 || p.Arrays[0].Size != 10 || p.Arrays[1].Size != 5 {
		t.Fatalf("arrays parsed wrong: %+v", p.Arrays)
	}
	if len(p.Aliases) != 2 {
		t.Fatalf("aliases = %d, want 2", len(p.Aliases))
	}
	aa, ok := p.Body[0].(*ArrayAssign)
	if !ok {
		t.Fatalf("body[0] = %T, want *ArrayAssign", p.Body[0])
	}
	if aa.Name != "a" {
		t.Errorf("array assign target = %s, want a", aa.Name)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := "var x\nx := 1 + 2 * 3 < 7 && 1 || 0\n"
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := p.Body[0].(*Assign).Expr.String()
	want := "(((1 + (2 * 3)) < 7) && 1) || 0"
	// Normalize: our printer parenthesizes every binary node.
	want = "((((1 + (2 * 3)) < 7) && 1) || 0)"
	if got != want {
		t.Errorf("parsed %q, want %q", got, want)
	}
}

func TestUnaryOperators(t *testing.T) {
	p, err := Parse("var x\nx := -x + !0\n")
	if err != nil {
		t.Fatal(err)
	}
	got := p.Body[0].(*Assign).Expr.String()
	if got != "(-x + !0)" {
		t.Errorf("parsed %q", got)
	}
}

func TestComments(t *testing.T) {
	src := `
var x  # hash comment
// line comment
x := 1 # trailing
`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"undeclared scalar", "x := 1\n", "undeclared scalar x"},
		{"undeclared in expr", "var x\nx := y\n", "undeclared scalar y"},
		{"undeclared array", "var i\nb[i] := 0\n", "undeclared array b"},
		{"array as scalar", "array a[3]\na := 1\n", "undeclared scalar a"},
		{"scalar as array", "var a\na[0] := 1\n", "undeclared array a"},
		{"unknown label", "var x\ngoto nowhere\n", "undeclared label nowhere"},
		{"duplicate label", "var x\nl:\nl:\n", "duplicate label"},
		{"duplicate var", "var x, x\n", "duplicate declaration"},
		{"var array clash", "var a\narray a[3]\n", "duplicate declaration"},
		{"reserved end label", "var x\nend:\n", "reserved"},
		{"self alias", "var x\nalias x ~ x\n", "itself"},
		{"alias undeclared", "var x\nalias x ~ q\n", "undeclared"},
		{"single equals", "var x\nx := 1 = 2\n", "unexpected '='"},
		{"bad char", "var x\nx := 1 @ 2\n", "unexpected character"},
		{"zero size array", "array a[0]\n", "non-positive size"},
		{"missing brace", "var x\nif x { x := 1\n", "expected '}'"},
		{"garbage", "var x\n)\n", "expected statement"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		"var x, y\nl: y := x + 1\nx := x + 1\nif (x < 5) then goto l else goto end\n",
		"var a, b\nif (a < b) {\n  a := 1\n} else {\n  b := 2\n}\n",
		"var i\narray a[10]\nwhile (i < 10) {\n  a[i] := i\n  i := i + 1\n}\n",
		"var x, z\nalias x ~ z\nx := 1\nz := 2\n",
	}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		f1 := p1.Format()
		p2, err := Parse(f1)
		if err != nil {
			t.Fatalf("reparse of formatted %q failed: %v\nformatted:\n%s", src, err, f1)
		}
		f2 := p2.Format()
		if f1 != f2 {
			t.Errorf("format not a fixed point:\nfirst:\n%s\nsecond:\n%s", f1, f2)
		}
	}
}

func TestReads(t *testing.T) {
	p := MustParse("var x, y\narray a[4]\nx := a[y] + x\n")
	set := map[string]bool{}
	Reads(p.Body[0].(*Assign).Expr, set)
	for _, want := range []string{"x", "y", "a"} {
		if !set[want] {
			t.Errorf("Reads missing %s (got %v)", want, set)
		}
	}
	if len(set) != 3 {
		t.Errorf("Reads = %v, want exactly {x y a}", set)
	}
}

func TestPosReporting(t *testing.T) {
	_, err := Parse("var x\n\n   x := y\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Errorf("error %q should mention line 3", err)
	}
}

func TestKeywordsNotIdents(t *testing.T) {
	_, err := Parse("var while\n")
	if err == nil {
		t.Fatal("'while' must not parse as a variable name")
	}
}

func TestProgramAccessors(t *testing.T) {
	p := MustParse("var x, y\narray a[7]\nx := 1\n")
	if got := p.VarNames(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("VarNames = %v", got)
	}
	if got := p.ArrayNames(); len(got) != 1 || got[0] != "a" {
		t.Errorf("ArrayNames = %v", got)
	}
	if got := p.AllNames(); len(got) != 3 {
		t.Errorf("AllNames = %v", got)
	}
	if p.ArraySize("a") != 7 || p.ArraySize("x") != 0 {
		t.Errorf("ArraySize wrong")
	}
	if !p.IsArray("a") || p.IsArray("x") {
		t.Errorf("IsArray wrong")
	}
}
