package lang

import (
	"fmt"
)

// Parse parses source text into a Program and checks it (undeclared
// variables, unknown labels, duplicate declarations).
func Parse(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse, panicking on error; for tests and fixed fixtures.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("lang: %s: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	if p.cur().kind != kind {
		return token{}, p.errorf("expected %s, found %s", what, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.cur().kind != tokKeyword || p.cur().text != kw {
		return p.errorf("expected %q, found %s", kw, p.cur())
	}
	p.advance()
	return nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	// Declarations come first.
	for p.cur().kind == tokKeyword {
		switch p.cur().text {
		case "var":
			pos := p.advance().pos
			for {
				id, err := p.expect(tokIdent, "variable name")
				if err != nil {
					return nil, err
				}
				prog.Vars = append(prog.Vars, VarDecl{Name: id.text, Pos: pos})
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		case "array":
			pos := p.advance().pos
			for {
				id, err := p.expect(tokIdent, "array name")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokLBracket, "'['"); err != nil {
					return nil, err
				}
				sz, err := p.expect(tokInt, "array size")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokRBracket, "']'"); err != nil {
					return nil, err
				}
				if sz.val <= 0 {
					return nil, fmt.Errorf("lang: %s: array %s has non-positive size %d", sz.pos, id.text, sz.val)
				}
				prog.Arrays = append(prog.Arrays, ArrayDecl{Name: id.text, Size: int(sz.val), Pos: pos})
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		case "alias":
			pos := p.advance().pos
			a, err := p.expect(tokIdent, "variable name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokTilde, "'~'"); err != nil {
				return nil, err
			}
			b, err := p.expect(tokIdent, "variable name")
			if err != nil {
				return nil, err
			}
			prog.Aliases = append(prog.Aliases, AliasDecl{A: a.text, B: b.text, Pos: pos})
		case "proc":
			pos := p.advance().pos
			name, err := p.expect(tokIdent, "procedure name")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLParen, "'('"); err != nil {
				return nil, err
			}
			var params []string
			if p.cur().kind != tokRParen {
				for {
					id, err := p.expect(tokIdent, "parameter name")
					if err != nil {
						return nil, err
					}
					params = append(params, id.text)
					if p.cur().kind != tokComma {
						break
					}
					p.advance()
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLBrace, "'{'"); err != nil {
				return nil, err
			}
			body, err := p.parseStmts(tokRBrace)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrace, "'}'"); err != nil {
				return nil, err
			}
			prog.Procedures = append(prog.Procedures, ProcDecl{Name: name.text, Params: params, Body: body, Pos: pos})
		default:
			// Start of the statement list.
			goto body
		}
	}
body:
	body, err := p.parseStmts(tokEOF)
	if err != nil {
		return nil, err
	}
	prog.Body = body
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %s", p.cur())
	}
	return prog, nil
}

// parseStmts parses statements until the terminator kind (tokEOF or tokRBrace).
func (p *parser) parseStmts(end tokenKind) ([]Stmt, error) {
	var out []Stmt
	for p.cur().kind != end && p.cur().kind != tokEOF {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokIdent && p.peek().kind == tokColon:
		p.advance()
		p.advance()
		return &Label{Name: t.text, Pos: t.pos}, nil
	case t.kind == tokIdent && p.peek().kind == tokAssign:
		p.advance()
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{Name: t.text, Expr: e, Pos: t.pos}, nil
	case t.kind == tokIdent && p.peek().kind == tokLBracket:
		p.advance()
		p.advance()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket, "']'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign, "':='"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &ArrayAssign{Name: t.text, Index: idx, Expr: e, Pos: t.pos}, nil
	case t.kind == tokKeyword && t.text == "goto":
		p.advance()
		id, err := p.expect(tokIdent, "label")
		if err != nil {
			return nil, err
		}
		return &Goto{Label: id.text, Pos: t.pos}, nil
	case t.kind == tokKeyword && t.text == "call":
		p.advance()
		name, err := p.expect(tokIdent, "procedure name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		var args []string
		if p.cur().kind != tokRParen {
			for {
				id, err := p.expect(tokIdent, "argument variable")
				if err != nil {
					return nil, err
				}
				args = append(args, id.text)
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return &CallStmt{Proc: name.text, Args: args, Pos: t.pos}, nil
	case t.kind == tokKeyword && t.text == "if":
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind == tokKeyword && p.cur().text == "then" {
			// Paper-style fork: if p then goto lt else goto lf.
			p.advance()
			if err := p.expectKeyword("goto"); err != nil {
				return nil, err
			}
			lt, err := p.expect(tokIdent, "label")
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("else"); err != nil {
				return nil, err
			}
			if err := p.expectKeyword("goto"); err != nil {
				return nil, err
			}
			lf, err := p.expect(tokIdent, "label")
			if err != nil {
				return nil, err
			}
			return &CondGoto{Cond: cond, True: lt.text, False: lf.text, Pos: t.pos}, nil
		}
		// Structured if.
		if _, err := p.expect(tokLBrace, "'{'"); err != nil {
			return nil, err
		}
		then, err := p.parseStmts(tokRBrace)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrace, "'}'"); err != nil {
			return nil, err
		}
		var els []Stmt
		if p.cur().kind == tokKeyword && p.cur().text == "else" {
			p.advance()
			if _, err := p.expect(tokLBrace, "'{'"); err != nil {
				return nil, err
			}
			els, err = p.parseStmts(tokRBrace)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrace, "'}'"); err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Pos: t.pos}, nil
	case t.kind == tokKeyword && t.text == "while":
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLBrace, "'{'"); err != nil {
			return nil, err
		}
		body, err := p.parseStmts(tokRBrace)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrace, "'}'"); err != nil {
			return nil, err
		}
		return &While{Cond: cond, Body: body, Pos: t.pos}, nil
	}
	return nil, p.errorf("expected statement, found %s", t)
}

// Operator precedence (higher binds tighter).
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

var binOps = map[string]Op{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpMod,
	"<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "==": OpEq, "!=": OpNe,
	"&&": OpAnd, "||": OpOr,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp {
		prec, ok := precedence[p.cur().text]
		if !ok || prec < minPrec {
			break
		}
		opTok := p.advance()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: binOps[opTok.text], L: lhs, R: rhs, Pos: opTok.pos}
	}
	return lhs, nil
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokOp && (t.text == "-" || t.text == "!") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := OpNeg
		if t.text == "!" {
			op = OpNot
		}
		return &UnExpr{Op: op, X: x, Pos: t.pos}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		return &IntLit{Value: t.val, Pos: t.pos}, nil
	case tokIdent:
		p.advance()
		if p.cur().kind == tokLBracket {
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket, "']'"); err != nil {
				return nil, err
			}
			return &IndexRef{Name: t.text, Index: idx, Pos: t.pos}, nil
		}
		return &VarRef{Name: t.text, Pos: t.pos}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("expected expression, found %s", t)
}
