package lang

import (
	"strings"
	"testing"
)

const fortranF = `
var a, b, c, d
proc f(x, y, z) {
  z := x + y
  x := x * 2
}
a := 1
b := 2
call f(a, b, a)
c := 10
d := 20
call f(c, d, d)
`

func TestParseProcAndCall(t *testing.T) {
	p, err := Parse(fortranF)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Procedures) != 1 {
		t.Fatalf("procs = %d", len(p.Procedures))
	}
	pr := p.Procedures[0]
	if pr.Name != "f" || len(pr.Params) != 3 || pr.Params[2] != "z" {
		t.Errorf("proc parsed wrong: %+v", pr)
	}
	calls := p.Calls()
	if len(calls) != 2 {
		t.Fatalf("calls = %d", len(calls))
	}
	if calls[0].Call.Args[0] != "a" || calls[0].Call.Args[2] != "a" {
		t.Errorf("call args = %v", calls[0].Call.Args)
	}
	if calls[0].Caller != "" {
		t.Errorf("caller = %q, want main", calls[0].Caller)
	}
}

func TestInlineSubstitutesByReference(t *testing.T) {
	p := MustParse(fortranF)
	inl, err := p.Inline()
	if err != nil {
		t.Fatal(err)
	}
	if len(inl.Procedures) != 0 {
		t.Error("inlined program still has procedures")
	}
	f := inl.Format()
	// First call: z→a, x→a, y→b: "a := a + b" then "a := a * 2".
	if !strings.Contains(f, "a := (a + b)") {
		t.Errorf("missing substituted statement in:\n%s", f)
	}
	// Second call: z→d, x→c, y→d.
	if !strings.Contains(f, "d := (c + d)") {
		t.Errorf("missing second expansion in:\n%s", f)
	}
	// Inlined output must reparse.
	if _, err := Parse(f); err != nil {
		t.Fatalf("inlined program does not reparse: %v\n%s", err, f)
	}
}

func TestInlineLabelsUnique(t *testing.T) {
	src := `
var a, b
proc g(v) {
  l: v := v + 1
  if v < 3 then goto l else goto done
  done:
}
call g(a)
call g(b)
`
	p := MustParse(src)
	inl, err := p.Inline()
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(inl); err != nil {
		t.Fatalf("inlined labels collide: %v", err)
	}
}

func TestNestedCallsInline(t *testing.T) {
	src := `
var a, r
proc inner(p, q) {
  q := p * 10
}
proc outer(u) {
  call inner(u, r)
}
a := 7
call outer(a)
`
	p := MustParse(src)
	inl, err := p.Inline()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(inl.Format(), "r := (a * 10)") {
		t.Errorf("nested inline wrong:\n%s", inl.Format())
	}
}

func TestProcErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown proc", "var a\ncall nope(a)\n", "undeclared procedure"},
		{"bad arity", "var a\nproc f(x, y) { x := y }\ncall f(a)\n", "want 2"},
		{"arg not scalar", "array a[3]\nproc f(x) { x := 1 }\ncall f(a)\n", "not a declared scalar"},
		{"param shadows global", "var x\nproc f(x) { x := 1 }\nx := 0\n", "shadows a global"},
		{"dup param", "var a\nproc f(x, x) { x := 1 }\ncall f(a)\n", "duplicate parameter"},
		{"dup proc", "var a\nproc f(x) { x := 1 }\nproc f(y) { y := 2 }\ncall f(a)\n", "duplicate procedure"},
		{"recursion", "var a\nproc f(x) { call f(x) }\ncall f(a)\n", "recursive"},
		{"mutual recursion", "var a\nproc f(x) { call g(x) }\nproc g(y) { call f(y) }\ncall f(a)\n", "recursive"},
		{"goto end in body", "var a\nproc f(x) { goto end }\ncall f(a)\n", "undeclared label end"},
		{"undeclared in body", "var a\nproc f(x) { y := 1 }\ncall f(a)\n", "undeclared scalar y"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestProcFormatRoundTrip(t *testing.T) {
	p := MustParse(fortranF)
	f1 := p.Format()
	p2, err := Parse(f1)
	if err != nil {
		t.Fatalf("formatted program does not reparse: %v\n%s", err, f1)
	}
	if f2 := p2.Format(); f1 != f2 {
		t.Errorf("format not a fixed point:\n%s\nvs\n%s", f1, f2)
	}
}
