// Package machcheck defines the structured machine-check taxonomy shared
// by the two dataflow execution engines (internal/machine and
// internal/chanexec). Following the operational-semantics view of the
// paper's correctness argument, every illegal execution must violate one
// of a small set of machine invariants; each invariant has a named check
// here, and every run that aborts does so with a *machcheck.Error
// identifying the violated check and carrying the stuck-token/node
// diagnostics needed to debug it.
//
// The checks:
//
//   - Deadlock — the engine can make no further progress but the end node
//     has not collected its tokens (quiescence before completion, an
//     unsatisfied I-structure read, or a watchdog-detected wedge).
//   - TokenLeak — execution completed but tokens survive it: a partially
//     matched activation whose partner can never arrive, or a procedure
//     activation that never returned (strict token conservation, §2.3).
//   - TagViolation — the tag discipline of §2.2/§3 was broken: a duplicate
//     token at one port under one tag, a token reaching end with a
//     non-root tag, or an unbalanced loop/call context.
//   - CyclesExceeded — a resource bound (cycles, firings, delivered
//     tokens) was exceeded: a runaway loop or token explosion.
//   - Deadline — the wall-clock deadline expired before completion.
//   - OperatorFault — an operator trapped on its operand values: division
//     by zero, an array index out of range, an I-structure write-once
//     violation.
//   - Determinacy — two executions of one determinate graph disagreed
//     (final stores or firing counts differ), or conflicting memory
//     operations overlapped in time (the §5 correctness condition).
//   - InvalidConfig — the run was misconfigured before it started: a
//     negative resource bound or processor count that could only arise
//     from a caller bug (every knob's zero value means "default").
//
// Callers match checks with errors.Is against the exported sentinels:
//
//	if errors.Is(err, machcheck.ErrDeadlock) { … }
//
// and recover full diagnostics with errors.As or Of.
package machcheck

import (
	"errors"
	"fmt"
	"strings"
)

// Check names one machine invariant. A Check is itself an error so it can
// serve as an errors.Is sentinel.
type Check string

// The machine checks.
const (
	Deadlock       Check = "deadlock"
	TokenLeak      Check = "token-leak"
	TagViolation   Check = "tag-violation"
	CyclesExceeded Check = "cycles-exceeded"
	Deadline       Check = "deadline"
	OperatorFault  Check = "operator-fault"
	Determinacy    Check = "determinacy"
	InvalidConfig  Check = "invalid-config"
)

// Error implements error: a bare Check is the sentinel form.
func (c Check) Error() string { return "machine check: " + string(c) }

// Sentinels for errors.Is. Each is the bare Check; a *Error produced by an
// engine matches the sentinel naming its check.
var (
	ErrDeadlock       error = Deadlock
	ErrTokenLeak      error = TokenLeak
	ErrTagViolation   error = TagViolation
	ErrCyclesExceeded error = CyclesExceeded
	ErrDeadline       error = Deadline
	ErrOperatorFault  error = OperatorFault
	ErrDeterminacy    error = Determinacy
	ErrInvalidConfig  error = InvalidConfig
)

// Checks returns every check, in stable order.
func Checks() []Check {
	return []Check{Deadlock, TokenLeak, TagViolation, CyclesExceeded, Deadline, OperatorFault, Determinacy, InvalidConfig}
}

// Stuck describes one stuck token or partially matched activation — the
// diagnostic payload of a failed conservation or progress check.
type Stuck struct {
	// Node is the dataflow node id the token is stuck at.
	Node int `json:"node"`
	// Label is the node's diagnostic label.
	Label string `json:"label"`
	// Tag is the activation context of the stuck tokens.
	Tag string `json:"tag"`
	// Have and Need count arrived vs required operands (0/0 when the
	// entry counts queued, undelivered tokens instead).
	Have int `json:"have"`
	// Need is the number of operands the activation requires.
	Need int `json:"need"`
}

func (s Stuck) String() string {
	if s.Need == 0 {
		return fmt.Sprintf("%s(%d queued)", s.Label, s.Have)
	}
	return fmt.Sprintf("%s(tag %q, %d/%d)", s.Label, s.Tag, s.Have, s.Need)
}

// Error is a failed machine check: which invariant was violated, by which
// engine, when, and the stuck tokens that witness it.
type Error struct {
	// Check names the violated invariant.
	Check Check `json:"check"`
	// Engine names the engine that detected it ("machine", "channels",
	// "chaos").
	Engine string `json:"engine"`
	// Msg is the human-readable description.
	Msg string `json:"msg"`
	// Cycle is the engine cycle at detection (0 for clockless engines).
	Cycle int `json:"cycle,omitempty"`
	// Stuck lists the witnessing stuck tokens/activations (truncated to
	// MaxStuck entries; Truncated reports how many were dropped).
	Stuck []Stuck `json:"stuck,omitempty"`
	// Truncated counts stuck entries beyond the recorded ones.
	Truncated int `json:"truncated,omitempty"`
}

// MaxStuck bounds the stuck-token diagnostics attached to one Error.
const MaxStuck = 8

// Newf builds a check failure with a formatted message.
func Newf(check Check, engine, format string, args ...any) *Error {
	return &Error{Check: check, Engine: engine, Msg: fmt.Sprintf(format, args...)}
}

// Wrap converts an operand-level error (division by zero, index out of
// range, …) into an OperatorFault check failure, preserving the original
// text. A nil err returns nil.
func Wrap(engine string, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return err
	}
	return &Error{Check: OperatorFault, Engine: engine, Msg: err.Error()}
}

// WithStuck attaches stuck-token diagnostics, truncating to MaxStuck.
func (e *Error) WithStuck(stuck []Stuck) *Error {
	if len(stuck) > MaxStuck {
		e.Truncated = len(stuck) - MaxStuck
		stuck = stuck[:MaxStuck]
	}
	e.Stuck = append([]Stuck(nil), stuck...)
	return e
}

// Error renders the failure: engine, check, message, then the stuck
// witnesses.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s check failed: %s", e.Engine, e.Check, e.Msg)
	if len(e.Stuck) > 0 {
		fmt.Fprintf(&b, "; stuck:")
		for _, s := range e.Stuck {
			fmt.Fprintf(&b, " %s", s)
		}
		if e.Truncated > 0 {
			fmt.Fprintf(&b, " …+%d more", e.Truncated)
		}
	}
	return b.String()
}

// Is matches the bare-Check sentinels, so errors.Is(err, ErrDeadlock)
// holds for any deadlock *Error.
func (e *Error) Is(target error) bool {
	c, ok := target.(Check)
	return ok && c == e.Check
}

// Of extracts the violated check from err, unwrapping as needed. The
// second result is false when err carries no machine check.
func Of(err error) (Check, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.Check, true
	}
	var c Check
	if errors.As(err, &c) {
		return c, true
	}
	return "", false
}
