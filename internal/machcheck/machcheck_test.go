package machcheck

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestSentinelMatching(t *testing.T) {
	err := Newf(Deadlock, "machine", "no enabled work at cycle %d", 42)
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("errors.Is(%v, ErrDeadlock) = false, want true", err)
	}
	for _, sentinel := range []error{ErrTokenLeak, ErrTagViolation, ErrCyclesExceeded, ErrDeadline, ErrOperatorFault, ErrDeterminacy} {
		if errors.Is(err, sentinel) {
			t.Errorf("deadlock error matched %v", sentinel)
		}
	}
	// Wrapped errors still match.
	wrapped := fmt.Errorf("run failed: %w", err)
	if !errors.Is(wrapped, ErrDeadlock) {
		t.Errorf("wrapped error lost its check identity")
	}
	if c, ok := Of(wrapped); !ok || c != Deadlock {
		t.Errorf("Of(wrapped) = %q, %v; want deadlock, true", c, ok)
	}
}

func TestEverySentinelRoundTrips(t *testing.T) {
	sentinels := map[Check]error{
		Deadlock: ErrDeadlock, TokenLeak: ErrTokenLeak, TagViolation: ErrTagViolation,
		CyclesExceeded: ErrCyclesExceeded, Deadline: ErrDeadline,
		OperatorFault: ErrOperatorFault, Determinacy: ErrDeterminacy,
		InvalidConfig: ErrInvalidConfig,
	}
	if len(Checks()) != len(sentinels) {
		t.Fatalf("Checks() has %d entries, sentinels %d", len(Checks()), len(sentinels))
	}
	for _, c := range Checks() {
		err := Newf(c, "machine", "x")
		if !errors.Is(err, sentinels[c]) {
			t.Errorf("check %q does not match its sentinel", c)
		}
	}
}

func TestWrapProducesOperatorFault(t *testing.T) {
	base := fmt.Errorf("interp: division by zero")
	err := Wrap("machine", base)
	if !errors.Is(err, ErrOperatorFault) {
		t.Errorf("Wrap did not classify as operator fault: %v", err)
	}
	if !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("Wrap lost the original message: %v", err)
	}
	// Wrapping an existing check error must not reclassify it.
	dl := Newf(Deadlock, "machine", "stuck")
	if got := Wrap("machine", dl); !errors.Is(got, ErrDeadlock) {
		t.Errorf("Wrap reclassified a deadlock as %v", got)
	}
	if Wrap("machine", nil) != nil {
		t.Error("Wrap(nil) != nil")
	}
}

func TestStuckDiagnosticsTruncate(t *testing.T) {
	var stuck []Stuck
	for i := 0; i < MaxStuck+3; i++ {
		stuck = append(stuck, Stuck{Node: i, Label: fmt.Sprintf("d%d: synch", i), Tag: "0", Have: 1, Need: 2})
	}
	err := Newf(TokenLeak, "machine", "3 tokens left").WithStuck(stuck)
	if len(err.Stuck) != MaxStuck || err.Truncated != 3 {
		t.Errorf("got %d stuck, %d truncated; want %d, 3", len(err.Stuck), err.Truncated, MaxStuck)
	}
	msg := err.Error()
	for _, want := range []string{"token-leak", "d0: synch", "…+3 more"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q missing %q", msg, want)
		}
	}
}
