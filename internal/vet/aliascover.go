package vet

import (
	"fmt"

	"ctdf/internal/dfg"
	"ctdf/internal/machcheck"
)

// passAliasCover proves the §5 soundness condition on aliased storage: a
// memory operation on x must hold the access token of every cover element
// intersecting [x] before it fires — TokensOf[x] under the translation's
// cover — and the tokens reach it through a synch tree (Figure 13).
//
// Two complementary checks:
//
//   - gather trace: each memory operation's access input is traced
//     backwards through synchs, switches, merges, and loop operators to
//     the token lines it gathers, which must cover TokensOf[x]. The trace
//     never trusts a synch's Tok label (mutated graphs lie), but it does
//     re-anchor at upstream memory operations, so it localizes the defect
//     rather than proving absence;
//   - pairwise ordering: the condition the gather exists to establish.
//     Any two operations whose access sets intersect, at least one a
//     store, race unless a dataflow path orders them — or no execution
//     fires both (disjoint predicate guards, §2.2).
func passAliasCover(u *Unit) ([]Diagnostic, string) {
	if !u.hasMeta() {
		return nil, noMetaReason
	}
	ds := orderingCheck(u)
	tr := newTokenTracer(u)
	for _, n := range u.G.Nodes {
		var accessIn int
		switch n.Kind {
		case dfg.Load:
			accessIn = 0
		case dfg.Store, dfg.LoadIdx:
			accessIn = 1
		case dfg.StoreIdx:
			accessIn = 2
		default:
			// ILoad/IStore operate on tokenless I-structures (§6.3).
			continue
		}
		got := tr.portTokens(n.ID, accessIn)
		for _, tok := range u.Res.TokensOf[n.Var] {
			if !got[tok] {
				ds = append(ds, Diagnostic{
					Severity: SevError, Check: machcheck.Determinacy, Node: n.ID, Tok: tok,
					Msg: fmt.Sprintf("access input does not gather token %s: cover element [%s] intersects [%s], so operations on the two are unordered", tok, tok, n.Var),
				})
			}
		}
	}
	return ds, ""
}

// orderingCheck enforces the race-freedom reading of §5: for every pair
// of memory operations whose access sets TokensOf[x] intersect, at least
// one of them a store, some dataflow path must run from one to the other
// (the shared cover element's token line serializes them). Pairs whose
// firing guards are predicate-disjoint never fire in one execution and
// are exempt; a §6.3-parallelized store is exempt against itself, since
// the transformation's whole point is to prove its iterations
// independent and unorder them (Figure 14(b)).
func orderingCheck(u *Unit) []Diagnostic {
	var ops []*dfg.Node
	for _, n := range u.G.Nodes {
		switch n.Kind {
		case dfg.Load, dfg.Store, dfg.LoadIdx, dfg.StoreIdx:
			ops = append(ops, n)
		}
	}
	if len(ops) < 2 {
		return nil
	}
	reach := map[int][]bool{}
	for _, n := range ops {
		reach[n.ID] = forwardReach(u, n.ID)
	}
	toks := func(n *dfg.Node) map[string]bool {
		set := map[string]bool{}
		for _, t := range u.Res.TokensOf[n.Var] {
			set[t] = true
		}
		return set
	}
	isStore := func(n *dfg.Node) bool { return n.Kind == dfg.Store || n.Kind == dfg.StoreIdx }
	guards := newGuardTable(u)

	var ds []Diagnostic
	for i, a := range ops {
		for _, b := range ops[i+1:] {
			if !isStore(a) && !isStore(b) {
				continue // reads never race
			}
			shared := ""
			bt := toks(b)
			for t := range toks(a) {
				if bt[t] {
					shared = t
					break
				}
			}
			if shared == "" {
				continue
			}
			if reach[a.ID][b.ID] || reach[b.ID][a.ID] {
				continue
			}
			ga, gb := guards.firingGuard(a), guards.firingGuard(b)
			if ga.top || gb.top {
				continue // a starved operation cannot race (token-balance reports it)
			}
			if disjoint(ga, gb) {
				continue
			}
			ds = append(ds, Diagnostic{
				Severity: SevError, Check: machcheck.Determinacy, Node: a.ID, Tok: shared,
				Msg: fmt.Sprintf("no dataflow ordering against %s: both hold cover element [%s], so the two operations race", u.G.Nodes[b.ID], shared),
			})
		}
	}
	return ds
}

// forwardReach marks every node reachable from src over any arc.
func forwardReach(u *Unit, src int) []bool {
	seen := make([]bool, len(u.G.Nodes))
	seen[src] = true
	stack := []int{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := 0; p < u.G.Nodes[n].OutPorts(); p++ {
			for _, a := range u.Out(n, p) {
				if !seen[a.To] {
					seen[a.To] = true
					stack = append(stack, a.To)
				}
			}
		}
	}
	return seen
}

// tokenTracer memoizes, per output port, the set of access-token lines
// flowing through it.
type tokenTracer struct {
	u *Unit
	// memo[node][port]; nil = not yet computed, inProgress marks a cycle
	// being expanded (contributes nothing — a token line cannot originate
	// inside a cycle that never reaches start).
	memo       []map[int]map[string]bool
	inProgress []map[int]bool
	// parallel marks §6.3-parallelized store statements, whose StoreIdx
	// emits the loop's completion token rather than the array tokens.
	parallel map[int]string
	all      map[string]bool
}

func newTokenTracer(u *Unit) *tokenTracer {
	tr := &tokenTracer{
		u:          u,
		memo:       make([]map[int]map[string]bool, len(u.G.Nodes)),
		inProgress: make([]map[int]bool, len(u.G.Nodes)),
		parallel:   map[int]string{},
		all:        map[string]bool{},
	}
	for i := range u.G.Nodes {
		tr.memo[i] = map[int]map[string]bool{}
		tr.inProgress[i] = map[int]bool{}
	}
	for _, ps := range u.Res.ParallelStores {
		tr.parallel[ps.StoreStmt] = ps.DoneToken()
	}
	for _, tok := range u.Res.Universe {
		tr.all[tok] = true
	}
	return tr
}

// portTokens is the union over the arcs entering (node, port) of the
// tokens each source emits.
func (tr *tokenTracer) portTokens(node, port int) map[string]bool {
	out := map[string]bool{}
	for _, a := range tr.u.In(node, port) {
		for tok := range tr.outTokens(a.From, a.FromPort) {
			out[tok] = true
		}
	}
	return out
}

// outTokens is the set of token lines emitted from (node, port).
func (tr *tokenTracer) outTokens(node, port int) map[string]bool {
	if node < 0 || node >= len(tr.u.G.Nodes) {
		return nil
	}
	if got, ok := tr.memo[node][port]; ok {
		return got
	}
	if tr.inProgress[node][port] {
		return nil
	}
	tr.inProgress[node][port] = true
	got := tr.compute(tr.u.G.Nodes[node], port)
	tr.inProgress[node][port] = false
	tr.memo[node][port] = got
	return got
}

func (tr *tokenTracer) compute(n *dfg.Node, port int) map[string]bool {
	single := func(tok string) map[string]bool { return map[string]bool{tok: true} }
	switch n.Kind {
	case dfg.Start:
		// Start fans every initial token out of one port; which line each
		// arc begins is only visible downstream, so the port is ⊤.
		return tr.all
	case dfg.Switch, dfg.Merge, dfg.LoopEntry, dfg.LoopExit:
		// Routing operators carry exactly the line they are labelled with;
		// the structure pass and determinacy pass police their wiring.
		return single(n.Tok)
	case dfg.Synch:
		// A synch holds every line of its operands (Figure 13's gather
		// tree). Never trust Synch.Tok — it names only the first line.
		out := map[string]bool{}
		for p := 0; p < n.NIns; p++ {
			for tok := range tr.portTokens(n.ID, p) {
				out[tok] = true
			}
		}
		return out
	case dfg.Load, dfg.LoadIdx:
		if port == 1 {
			return tr.tokensOfVar(n.Var)
		}
	case dfg.Store:
		if port == 0 {
			return tr.tokensOfVar(n.Var)
		}
	case dfg.StoreIdx:
		if port == 0 {
			if done, ok := tr.parallel[n.Stmt]; ok {
				// §6.3 / Figure 14(b): a parallelized store replicates the
				// array token on entry and emits a completion instead.
				return single(done)
			}
			return tr.tokensOfVar(n.Var)
		}
	case dfg.Param:
		return single(n.Tok)
	case dfg.Apply:
		for _, c := range tr.u.G.Calls {
			if c.Apply != n.ID {
				continue
			}
			if port < len(c.InTokens) {
				return single(c.InTokens[port])
			}
			if j := port - len(c.InTokens); j >= 0 && j < len(c.ParamIn) {
				return single(c.InTokens[c.ParamIn[j]])
			}
		}
	}
	// Value ports (const, binop, load values, …) carry no access line.
	return nil
}

func (tr *tokenTracer) tokensOfVar(v string) map[string]bool {
	out := map[string]bool{}
	for _, tok := range tr.u.Res.TokensOf[v] {
		out[tok] = true
	}
	return out
}
