package vet

import (
	"fmt"

	"ctdf/internal/dfg"
	"ctdf/internal/machcheck"
)

// passDeterminacy proves that no input port can statically receive two
// tokens under one tag — the static form of the ETS matching discipline
// (§2.2) and of the §5 determinacy condition.
//
// The pass computes, for every output port, a guard set: the switch arms
// every token emitted from that port must have passed. Guards form a
// descending analysis from ⊤ ("never fires"): a port fed by several arcs
// keeps the guards common to all of them (a merge weakens the guard), a
// node firing requires all of its input ports (union of guards), a switch
// adds its own (switch, arm) pair to the respective output, and a loop
// entry resets the guard — iterations run under fresh tags, so guards
// accumulated outside the loop say nothing about collisions inside it.
//
// With guards in hand:
//
//   - a non-merge input port fed by two or more arcs receives two same-tag
//     tokens whenever both sources fire — the duplicate-token case of
//     machcheck's TagViolation;
//   - a merge port is legal exactly when its sources are pairwise
//     disjoint: some switch must send them down opposite arms, so no
//     single execution path produces both (§2.2: "the determinacy of the
//     graphs we construct is guaranteed because merge operators are
//     restricted to receive inputs from disjoint predicate paths").
//
// Param ports accept one arc per call site by construction; activations
// are separated by the tag's frame, so multiple arcs are legal there.
func passDeterminacy(u *Unit) ([]Diagnostic, string) {
	g := u.G
	guards := newGuardTable(u)
	var ds []Diagnostic
	for _, n := range g.Nodes {
		for p := 0; p < n.NIns; p++ {
			arcs := u.In(n.ID, p)
			if len(arcs) < 2 {
				continue
			}
			switch {
			case n.Kind == dfg.Merge && p == 0:
				for i := 0; i < len(arcs); i++ {
					for j := i + 1; j < len(arcs); j++ {
						gi := guards.at(arcs[i].From, arcs[i].FromPort)
						gj := guards.at(arcs[j].From, arcs[j].FromPort)
						if gi.top || gj.top {
							continue // a source that never fires cannot collide (reported by token-balance)
						}
						if !disjoint(gi, gj) {
							ds = append(ds, Diagnostic{
								Severity: SevError, Check: machcheck.Determinacy, Node: n.ID, Tok: n.Tok,
								Msg: fmt.Sprintf("merge inputs from d%d.%d and d%d.%d are not on disjoint predicate paths: one execution can deliver both tokens under one tag",
									arcs[i].From, arcs[i].FromPort, arcs[j].From, arcs[j].FromPort),
							})
						}
					}
				}
			case n.Kind == dfg.Param:
				// One arc per call site; activations are tag-disjoint.
			default:
				ds = append(ds, Diagnostic{
					Severity: SevError, Check: machcheck.TagViolation, Node: n.ID, Tok: n.Tok,
					Msg: fmt.Sprintf("input port %d is fed by %d arcs: two tokens can arrive under one tag", p, len(arcs)),
				})
			}
		}
	}
	return ds, ""
}

// guardKey is one predicate arm. The predicate is identified by the wire
// feeding the switch's control input, not by the switch node: one fork
// emits one switch per routed token, all fed by the same predicate value,
// and arms of DIFFERENT switches on the SAME wire are still the same
// predicate decision (the diamond's merge receives switch-a's false arm
// and switch-b's true arm — disjoint because both switches test a<b).
type guardKey struct {
	predNode int
	predPort int
	arm      bool
}

// guardSet is a set of switch arms, or ⊤ (the port provably never emits).
type guardSet struct {
	top bool
	set map[guardKey]bool
}

func (s guardSet) has(k guardKey) bool { return s.top || s.set[k] }

// disjoint reports whether some predicate routes the two guard sets down
// opposite arms.
func disjoint(a, b guardSet) bool {
	for k := range a.set {
		if b.set[guardKey{predNode: k.predNode, predPort: k.predPort, arm: !k.arm}] {
			return true
		}
	}
	return false
}

// guardTable holds the per-output-port guard sets.
type guardTable struct {
	u *Unit
	// byNode[n][p] is the guard of output port p of node n.
	byNode [][]guardSet
}

func (t *guardTable) at(node, port int) guardSet {
	if node < 0 || node >= len(t.byNode) || port < 0 || port >= len(t.byNode[node]) {
		return guardSet{top: true}
	}
	return t.byNode[node][port]
}

// newGuardTable runs the descending fixpoint. All ports start at ⊤; every
// transfer function is monotone under ⊇ (intersection across a port's
// arcs, union across a node's ports), so iteration from ⊤ converges to the
// greatest fixpoint over the finite lattice of switch-arm sets.
func newGuardTable(u *Unit) *guardTable {
	g := u.G
	t := &guardTable{u: u, byNode: make([][]guardSet, len(g.Nodes))}
	for i, n := range g.Nodes {
		t.byNode[i] = make([]guardSet, n.OutPorts())
		for p := range t.byNode[i] {
			t.byNode[i][p] = guardSet{top: true}
		}
	}
	changed := true
	for rounds := 0; changed && rounds < 4*len(g.Nodes)+16; rounds++ {
		changed = false
		for _, n := range g.Nodes {
			if t.update(n) {
				changed = true
			}
		}
	}
	return t
}

// update recomputes node n's output guards; reports whether they changed.
func (t *guardTable) update(n *dfg.Node) bool {
	fire := t.firingGuard(n)
	changed := false
	set := func(port int, gs guardSet) {
		if !guardEqual(t.byNode[n.ID][port], gs) {
			t.byNode[n.ID][port] = gs
			changed = true
		}
	}
	switch n.Kind {
	case dfg.Switch:
		pred := t.predKey(n)
		pred.arm = true
		set(0, addGuard(fire, pred))
		pred.arm = false
		set(1, addGuard(fire, pred))
	case dfg.LoopEntry:
		// Any-arrival: either the initial or the back port fires the entry,
		// so tokens leaving it carry only the guards common to both — the
		// outer-path arms the initial token passed (an iteration token is
		// the same token under an advanced tag), never loop-internal arms.
		set(0, intersect(t.portGuard(n, 0), t.portGuard(n, 1)))
	default:
		for p := range t.byNode[n.ID] {
			set(p, fire)
		}
	}
	return changed
}

// predKey identifies switch n's predicate by its control-input wire; a
// switch with a malformed control port (no arc, or several) falls back to
// its own identity so its arms at least exclude each other.
func (t *guardTable) predKey(n *dfg.Node) guardKey {
	if arcs := t.u.In(n.ID, 1); len(arcs) == 1 {
		return guardKey{predNode: arcs[0].From, predPort: arcs[0].FromPort}
	}
	return guardKey{predNode: -n.ID - 1, predPort: -1}
}

// portGuard is the guard of one input port: the intersection over its
// arcs (a multi-arc port is a merge point — only common guards survive).
// An unfed port is ⊤: it never matches.
func (t *guardTable) portGuard(n *dfg.Node, p int) guardSet {
	arcs := t.u.In(n.ID, p)
	if len(arcs) == 0 {
		return guardSet{top: true}
	}
	out := t.at(arcs[0].From, arcs[0].FromPort)
	for _, a := range arcs[1:] {
		out = intersect(out, t.at(a.From, a.FromPort))
	}
	return out
}

// firingGuard is the union over the node's input ports of each port's
// guard: the node fires only when every port delivers, so its tokens
// passed every arm any operand passed. Start and Param fire
// unconditionally (per program / per activation).
func (t *guardTable) firingGuard(n *dfg.Node) guardSet {
	if n.Kind == dfg.Start || n.Kind == dfg.Param {
		return guardSet{set: map[guardKey]bool{}}
	}
	out := guardSet{set: map[guardKey]bool{}}
	for p := 0; p < n.NIns; p++ {
		port := t.portGuard(n, p)
		if port.top {
			return guardSet{top: true}
		}
		for k := range port.set {
			out.set[k] = true
		}
	}
	return out
}

func addGuard(gs guardSet, k guardKey) guardSet {
	if gs.top {
		return gs
	}
	out := guardSet{set: make(map[guardKey]bool, len(gs.set)+1)}
	for g := range gs.set {
		out.set[g] = true
	}
	out.set[k] = true
	return out
}

func intersect(a, b guardSet) guardSet {
	if a.top {
		return b
	}
	if b.top {
		return a
	}
	out := guardSet{set: map[guardKey]bool{}}
	for k := range a.set {
		if b.set[k] {
			out.set[k] = true
		}
	}
	return out
}

func guardEqual(a, b guardSet) bool {
	if a.top != b.top {
		return false
	}
	if a.top {
		return true
	}
	if len(a.set) != len(b.set) {
		return false
	}
	for k := range a.set {
		if !b.set[k] {
			return false
		}
	}
	return true
}
