package vet

import (
	"ctdf/internal/dfg"
	"ctdf/internal/translate"
)

// This file is the self-test harness for the verifier: seeded mutations
// that each break one of the paper's correctness conditions in a known
// way. The mutation tests assert that every class is caught by at least
// one pass — if a pass regresses into vacuity, the harness fails, not
// just the (always-clean) translator sweep.
//
// Mutations rebuild the graph from scratch through dfg.NewGraph so the
// result maintains the Graph's internal indices; node provenance (Stmt,
// Tok) is copied, so the translation metadata of the original Result
// still describes the mutated graph's intent.

// A Mutation derives a defective graph from a translation.
type Mutation struct {
	// Name identifies the mutation class.
	Name string
	// Doc says what the mutation breaks.
	Doc string
	// Apply returns the mutated graph, or ok=false when the translation
	// has no site this mutation applies to.
	Apply func(res *translate.Result) (g *dfg.Graph, ok bool)
}

// Mutations returns the seeded mutation classes.
func Mutations() []Mutation {
	return []Mutation{
		{
			Name:  "drop-switch",
			Doc:   "remove a switch and feed its consumers the unrouted token (Theorem 1 violation)",
			Apply: dropSwitch,
		},
		{
			Name:  "retarget-arc",
			Doc:   "retarget a token arc onto end port 0: one port double-fed, one starved",
			Apply: retargetArc,
		},
		{
			Name:  "drop-merge-arm",
			Doc:   "disconnect one arm of a merge: the arm's token line leaks",
			Apply: dropMergeArm,
		},
		{
			Name:  "truncate-synch",
			Doc:   "shrink a synch tree by one operand: the §5 gather set loses a cover element",
			Apply: truncateSynch,
		},
		{
			Name:  "bypass-synch",
			Doc:   "wire a memory op's access input past its synch gate to a single operand line",
			Apply: bypassSynch,
		},
	}
}

// rebuild clones g, dropping the nodes in drop and passing every arc
// through arcFn (identity when nil; return ok=false to delete the arc).
// Arc endpoints are given in the original ID space; arcs touching dropped
// nodes are deleted after the transform. Node IDs are remapped densely.
func rebuild(g *dfg.Graph, drop map[int]bool, edit func(n *dfg.Node), arcFn func(a dfg.Arc) (dfg.Arc, bool)) *dfg.Graph {
	out := dfg.NewGraph(g.Prog)
	remap := make([]int, len(g.Nodes))
	for i, n := range g.Nodes {
		if drop[n.ID] {
			remap[i] = -1
			continue
		}
		c := *n
		if edit != nil {
			edit(&c)
		}
		remap[i] = out.Add(&c).ID
	}
	for _, a := range g.Arcs {
		if arcFn != nil {
			var keep bool
			if a, keep = arcFn(a); !keep {
				continue
			}
		}
		if remap[a.From] < 0 || remap[a.To] < 0 {
			continue
		}
		out.Connect(remap[a.From], a.FromPort, remap[a.To], a.ToPort, a.Dummy)
	}
	return out
}

// dropSwitch removes the first switch and rewires both arms' consumers
// straight to the switch's data source: the token now arrives regardless
// of the branch taken — exactly the unsoundness Theorem 1's placement
// exists to prevent.
func dropSwitch(res *translate.Result) (*dfg.Graph, bool) {
	g := res.Graph
	sw := -1
	for _, n := range g.Nodes {
		if n.Kind == dfg.Switch {
			sw = n.ID
			break
		}
	}
	if sw < 0 {
		return nil, false
	}
	var data dfg.Arc
	found := false
	for _, a := range g.Arcs {
		if a.To == sw && a.ToPort == 0 {
			data, found = a, true
			break
		}
	}
	if !found {
		return nil, false
	}
	mut := rebuild(g, map[int]bool{sw: true}, nil, func(a dfg.Arc) (dfg.Arc, bool) {
		if a.From == sw {
			a.From, a.FromPort = data.From, data.FromPort
		}
		return a, true
	})
	return mut, true
}

// retargetArc redirects the first dummy arc not already feeding end onto
// end port 0: that port is now double-fed (two tokens, one tag) and the
// arc's original destination starves.
func retargetArc(res *translate.Result) (*dfg.Graph, bool) {
	g := res.Graph
	if g.EndID < 0 || g.Nodes[g.EndID].NIns == 0 {
		return nil, false
	}
	victim := -1
	for i, a := range g.Arcs {
		if a.Dummy && a.To != g.EndID {
			victim = i
			break
		}
	}
	if victim < 0 {
		return nil, false
	}
	i := 0
	mut := rebuild(g, nil, nil, func(a dfg.Arc) (dfg.Arc, bool) {
		if i == victim {
			a.To, a.ToPort = g.EndID, 0
		}
		i++
		return a, true
	})
	return mut, true
}

// dropMergeArm deletes one input arc of the first merge fed by two or
// more arcs: the deleted arm's line has no consumer left.
func dropMergeArm(res *translate.Result) (*dfg.Graph, bool) {
	g := res.Graph
	victim := -1
	for i, a := range g.Arcs {
		if a.ToPort != 0 || g.Nodes[a.To].Kind != dfg.Merge {
			continue
		}
		arms := 0
		for _, b := range g.Arcs {
			if b.To == a.To && b.ToPort == 0 {
				arms++
			}
		}
		if arms >= 2 {
			victim = i
			break
		}
	}
	if victim < 0 {
		return nil, false
	}
	i := 0
	mut := rebuild(g, nil, nil, func(a dfg.Arc) (dfg.Arc, bool) {
		keep := i != victim
		i++
		return a, keep
	})
	return mut, true
}

// synchSites finds synchs with at least two operands.
func synchSites(g *dfg.Graph) []*dfg.Node {
	var out []*dfg.Node
	for _, n := range g.Nodes {
		if n.Kind == dfg.Synch && n.NIns >= 2 {
			out = append(out, n)
		}
	}
	return out
}

// truncateSynch shrinks the first eligible synch by one operand: its
// gather set (Figure 13) silently loses a line, and that line's producer
// loses its consumer.
func truncateSynch(res *translate.Result) (*dfg.Graph, bool) {
	sites := synchSites(res.Graph)
	if len(sites) == 0 {
		return nil, false
	}
	s := sites[0]
	last := s.NIns - 1
	mut := rebuild(res.Graph, nil, func(n *dfg.Node) {
		if n.ID == s.ID {
			n.NIns--
		}
	}, func(a dfg.Arc) (dfg.Arc, bool) {
		return a, !(a.To == s.ID && a.ToPort == last)
	})
	return mut, true
}

// bypassSynch rewires a memory operation's access input past its synch
// gate, straight to the line feeding the synch's first operand: the
// operation now fires holding one cover element's token instead of all of
// them — the §5 race the synch tree exists to prevent.
func bypassSynch(res *translate.Result) (*dfg.Graph, bool) {
	g := res.Graph
	for _, s := range synchSites(g) {
		var op dfg.Arc // synch output → memory op access input
		found := false
		for _, a := range g.Arcs {
			if a.From != s.ID {
				continue
			}
			k := g.Nodes[a.To].Kind
			if k == dfg.Load || k == dfg.Store || k == dfg.LoadIdx || k == dfg.StoreIdx {
				op, found = a, true
				break
			}
		}
		if !found {
			continue
		}
		var operand dfg.Arc // line feeding the synch's first operand
		foundOperand := false
		for _, a := range g.Arcs {
			if a.To == s.ID && a.ToPort == 0 {
				operand, foundOperand = a, true
				break
			}
		}
		if !foundOperand {
			continue
		}
		mut := rebuild(g, nil, nil, func(a dfg.Arc) (dfg.Arc, bool) {
			if a == op {
				a.From, a.FromPort = operand.From, operand.FromPort
			}
			return a, true
		})
		return mut, true
	}
	return nil, false
}
