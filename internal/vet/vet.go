// Package vet statically verifies dataflow graphs against the paper's
// correctness conditions. Where internal/machcheck names the invariants an
// execution may violate at run time, vet proves (or refutes) them on the
// graph itself, before any token moves:
//
//   - structure — the dfg.Validate structural invariants (§2.2);
//   - token-balance — every variable's access token count is exactly 1 on
//     every path: no output port leaks tokens, no input port starves, and
//     every token line runs from start to end (the Schema 2 invariant, §3);
//   - determinacy — no port can statically receive two same-tag tokens;
//     merge inputs must arrive from disjoint predicate paths (§2.2, §5);
//   - switch-placement — the emitted switches equal an independent
//     recomputation of CD+ per token (Theorem 1/Corollary 1, Figure 10):
//     a missing switch is unsound, a redundant one is a missed §4
//     optimization;
//   - source-vectors — merges exist exactly where the recomputed source
//     vector SV_N(x) has more than one element (Figure 11), and loop
//     entry/exit operators exist exactly for the tokens each loop
//     circulates;
//   - alias-cover — every memory operation on x gathers, through its synch
//     tree, the access token of every cover element intersecting [x]
//     (§5, Figure 13).
//
// The passes run over a Unit: the graph plus (when available) the
// translate.Result metadata recording which schema contract the graph must
// satisfy. Graphs without metadata (loaded from text, linked separate
// compilation) get the graph-level passes only; the translation-validation
// passes are reported as skipped.
//
// Each Diagnostic carries the machcheck.Check the defect would trip at run
// time, so static findings map onto the existing taxonomy.
package vet

import (
	"fmt"
	"sort"
	"strings"

	"ctdf/internal/dfg"
	"ctdf/internal/machcheck"
	"ctdf/internal/translate"
)

// Severity grades a diagnostic.
type Severity int

// Severities. Errors refute a correctness condition (the graph can
// deadlock, leak, or misbehave); warnings flag missed optimizations and
// harmless redundancy.
const (
	SevError Severity = iota
	SevWarning
)

func (s Severity) String() string {
	if s == SevWarning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	// Pass names the reporting pass.
	Pass string `json:"pass"`
	// Severity grades the finding.
	Severity Severity `json:"-"`
	// Check is the machcheck invariant the defect would violate at run
	// time (empty for pure optimization warnings).
	Check machcheck.Check `json:"check,omitempty"`
	// Node is the dataflow node the finding anchors to, or -1.
	Node int `json:"node"`
	// Label is the node's diagnostic label ("" when Node is -1).
	Label string `json:"label,omitempty"`
	// Tok is the access token or variable involved, if any.
	Tok string `json:"tok,omitempty"`
	// Paper cites the section/figure/theorem the violated condition comes
	// from.
	Paper string `json:"paper,omitempty"`
	// Msg describes the finding.
	Msg string `json:"msg"`
}

// String renders the diagnostic on one line.
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]", d.Severity, d.Pass)
	if d.Node >= 0 {
		if d.Label != "" {
			fmt.Fprintf(&b, " %s:", d.Label)
		} else {
			fmt.Fprintf(&b, " d%d:", d.Node)
		}
	}
	fmt.Fprintf(&b, " %s", d.Msg)
	if d.Paper != "" {
		fmt.Fprintf(&b, " (%s)", d.Paper)
	}
	return b.String()
}

// SkippedPass records a pass that could not run and why.
type SkippedPass struct {
	Pass   string `json:"pass"`
	Reason string `json:"reason"`
}

// Report is the outcome of a vet run.
type Report struct {
	// Diags lists every finding, grouped by pass in registry order.
	Diags []Diagnostic `json:"diagnostics"`
	// Ran lists the passes that ran.
	Ran []string `json:"passes"`
	// Skipped lists the passes that could not run (missing metadata).
	Skipped []SkippedPass `json:"skipped,omitempty"`
}

// Clean reports whether the run produced no diagnostics at all.
func (r *Report) Clean() bool { return len(r.Diags) == 0 }

// Errors counts error-severity diagnostics.
func (r *Report) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == SevError {
			n++
		}
	}
	return n
}

// Detectors returns the sorted set of passes that reported at least one
// error (the mutation self-tests assert on it).
func (r *Report) Detectors() []string {
	set := map[string]bool{}
	for _, d := range r.Diags {
		if d.Severity == SevError {
			set[d.Pass] = true
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// String renders the report: one line per diagnostic, then a summary.
func (r *Report) String() string {
	var b strings.Builder
	for _, d := range r.Diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "vet: %d passes", len(r.Ran))
	if len(r.Skipped) > 0 {
		fmt.Fprintf(&b, " (%d skipped)", len(r.Skipped))
	}
	fmt.Fprintf(&b, ", %d errors, %d warnings\n", r.Errors(), len(r.Diags)-r.Errors())
	return b.String()
}

// Pass is one registered analysis.
type Pass struct {
	// Name identifies the pass in diagnostics and reports.
	Name string
	// Paper is the default citation attached to the pass's findings.
	Paper string
	// Doc is a one-line description.
	Doc string

	run func(u *Unit) (diags []Diagnostic, skip string)
}

// Passes returns the ordered pass registry.
func Passes() []Pass {
	return []Pass{
		{Name: "structure", Paper: "§2.2", Doc: "dfg.Validate structural invariants", run: passStructure},
		{Name: "token-balance", Paper: "§3", Doc: "every access token count is exactly 1 on every path", run: passTokenBalance},
		{Name: "determinacy", Paper: "§2.2, §5", Doc: "no port statically receives two same-tag tokens", run: passDeterminacy},
		{Name: "switch-placement", Paper: "§4 Theorem 1, Figure 10", Doc: "emitted switches equal the recomputed CD+ placement", run: passSwitchPlacement},
		{Name: "source-vectors", Paper: "§4.2 Figure 11", Doc: "merges exist exactly where |SV_N(x)| > 1", run: passSourceVectors},
		{Name: "alias-cover", Paper: "§5 Figure 13", Doc: "memory ops gather the access set C[x] through their synch trees", run: passAliasCover},
	}
}

// Run vets graph g. res supplies the translation metadata the
// translation-validation passes diff against; nil (or a Result without a
// CFG) restricts the run to the graph-level passes.
func Run(g *dfg.Graph, res *translate.Result) *Report {
	u := newUnit(g, res)
	rep := &Report{}
	for _, p := range Passes() {
		diags, skip := p.run(u)
		if skip != "" {
			rep.Skipped = append(rep.Skipped, SkippedPass{Pass: p.Name, Reason: skip})
			continue
		}
		rep.Ran = append(rep.Ran, p.Name)
		for i := range diags {
			diags[i].Pass = p.Name
			if diags[i].Paper == "" {
				diags[i].Paper = p.Paper
			}
			if diags[i].Node >= 0 && diags[i].Node < len(g.Nodes) && diags[i].Label == "" {
				diags[i].Label = g.Nodes[diags[i].Node].String()
			}
		}
		rep.Diags = append(rep.Diags, diags...)
	}
	return rep
}

// Unit is the subject of a vet run: the graph, optional translation
// metadata, and a defensively built arc index (mutated or hand-written
// graphs may violate the invariants dfg.Graph's own index assumes, so the
// passes never trust it).
type Unit struct {
	G   *dfg.Graph
	Res *translate.Result

	// ins[node][port] and outs[node][port] list arcs; arcs referencing
	// out-of-range nodes or ports are dropped here and reported by the
	// structure pass.
	ins  []map[int][]dfg.Arc
	outs []map[int][]dfg.Arc

	place     *placeInfo // cached recomputed placement (passes 3–5)
	placeOnce bool
}

func newUnit(g *dfg.Graph, res *translate.Result) *Unit {
	u := &Unit{
		G: g, Res: res,
		ins:  make([]map[int][]dfg.Arc, len(g.Nodes)),
		outs: make([]map[int][]dfg.Arc, len(g.Nodes)),
	}
	for i := range g.Nodes {
		u.ins[i] = map[int][]dfg.Arc{}
		u.outs[i] = map[int][]dfg.Arc{}
	}
	for _, a := range g.Arcs {
		if a.From < 0 || a.From >= len(g.Nodes) || a.To < 0 || a.To >= len(g.Nodes) {
			continue
		}
		if a.FromPort < 0 || a.FromPort >= g.Nodes[a.From].OutPorts() {
			continue
		}
		if a.ToPort < 0 || a.ToPort >= g.Nodes[a.To].NIns {
			continue
		}
		u.outs[a.From][a.FromPort] = append(u.outs[a.From][a.FromPort], a)
		u.ins[a.To][a.ToPort] = append(u.ins[a.To][a.ToPort], a)
	}
	return u
}

// In returns the arcs entering (node, port).
func (u *Unit) In(node, port int) []dfg.Arc { return u.ins[node][port] }

// Out returns the arcs leaving (node, port).
func (u *Unit) Out(node, port int) []dfg.Arc { return u.outs[node][port] }

// hasMeta reports whether translation-validation metadata is available.
func (u *Unit) hasMeta() bool {
	return u.Res != nil && u.Res.CFG != nil && u.Res.TokensOf != nil
}

const noMetaReason = "no translation metadata (graph loaded from text or linked)"

// passStructure reruns the structural validator and reports its first
// finding as a diagnostic; the remaining passes still run (their arc index
// ignores malformed arcs), so one broken invariant does not hide others.
func passStructure(u *Unit) ([]Diagnostic, string) {
	if err := u.G.Validate(); err != nil {
		return []Diagnostic{{
			Severity: SevError,
			Check:    machcheck.InvalidConfig,
			Node:     -1,
			Msg:      err.Error(),
		}}, ""
	}
	return nil, ""
}
