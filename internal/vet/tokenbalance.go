package vet

import (
	"fmt"

	"ctdf/internal/dfg"
	"ctdf/internal/machcheck"
)

// passTokenBalance proves the Schema 2 invariant of §3 — every variable
// has exactly one access token on every path — by abstract interpretation
// over the static graph:
//
//   - a node (or input port) unreachable from start can never fire: the
//     tokens its consumers wait for never arrive (static starvation, the
//     graph-level shadow of machcheck's Deadlock);
//   - an output port with no consumer discards every token it emits: the
//     count drops below 1 and end can never collect it (static leak, the
//     shadow of machcheck's TokenLeak);
//   - a producing node with no path to any sink pools tokens forever even
//     when every individual port is wired (a closed consuming cycle);
//   - with translation metadata, the end node must collect exactly one
//     port per token of the universe — the "one token per variable,
//     returned at end" contract.
//
// Sinks are the operators allowed to retire tokens: end, proc-return
// (retired into the calling Apply's frame), and istore (write-once cells
// absorb their index/value, §6.3).
func passTokenBalance(u *Unit) ([]Diagnostic, string) {
	g := u.G
	var ds []Diagnostic

	// Forward reachability from start over all arcs.
	fwd := make([]bool, len(g.Nodes))
	if g.StartID >= 0 && g.StartID < len(g.Nodes) {
		stack := []int{g.StartID}
		fwd[g.StartID] = true
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for p := 0; p < g.Nodes[n].OutPorts(); p++ {
				for _, a := range u.Out(n, p) {
					if !fwd[a.To] {
						fwd[a.To] = true
						stack = append(stack, a.To)
					}
				}
			}
		}
	}

	// Backward reachability to a token-retiring sink.
	bwd := make([]bool, len(g.Nodes))
	var stack []int
	for _, n := range g.Nodes {
		if n.Kind == dfg.End || n.Kind == dfg.ProcReturn || n.Kind == dfg.IStore {
			bwd[n.ID] = true
			stack = append(stack, n.ID)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := 0; p < g.Nodes[n].NIns; p++ {
			for _, a := range u.In(n, p) {
				if !bwd[a.From] {
					bwd[a.From] = true
					stack = append(stack, a.From)
				}
			}
		}
	}

	for _, n := range g.Nodes {
		// A node with no input ports (start, an empty program's end) fires
		// without waiting on any token; reachability does not apply.
		if n.Kind != dfg.Start && n.NIns > 0 && !fwd[n.ID] {
			ds = append(ds, Diagnostic{
				Severity: SevError, Check: machcheck.Deadlock, Node: n.ID, Tok: n.Tok,
				Msg: "unreachable from start: the node can never fire and its consumers starve",
			})
			// Its ports would all be reported too; one finding is enough.
			continue
		}
		for p := 0; p < n.NIns; p++ {
			if len(u.In(n.ID, p)) == 0 {
				ds = append(ds, Diagnostic{
					Severity: SevError, Check: machcheck.Deadlock, Node: n.ID, Tok: n.Tok,
					Msg: fmt.Sprintf("input port %d never receives a token: the node can never fire", p),
				})
			}
		}
		for p := 0; p < n.OutPorts(); p++ {
			if len(u.Out(n.ID, p)) == 0 && !unconsumedOK(u, n, p) {
				ds = append(ds, Diagnostic{
					Severity: SevError, Check: machcheck.TokenLeak, Node: n.ID, Tok: n.Tok,
					Msg: fmt.Sprintf("output port %d has no consumer: its token count drops below 1 and end can never collect it", p),
				})
			}
		}
		if n.OutPorts() > 0 && fwd[n.ID] && !bwd[n.ID] && !valueKind(n) && !valueTokenLine(u, n) && !emptyProgramStart(g, n) {
			ds = append(ds, Diagnostic{
				Severity: SevError, Check: machcheck.TokenLeak, Node: n.ID, Tok: n.Tok,
				Msg: "no path to end (or any token-retiring sink): tokens pool here forever",
			})
		}
	}

	// End arity against the token universe: the translation contract wires
	// end port i to token universe[i].
	if u.Res != nil && u.Res.Universe != nil && g.EndID >= 0 && g.EndID < len(g.Nodes) {
		if got, want := g.Nodes[g.EndID].NIns, len(u.Res.Universe); got != want {
			ds = append(ds, Diagnostic{
				Severity: SevError, Check: machcheck.TokenLeak, Node: g.EndID,
				Msg: fmt.Sprintf("end collects %d ports but the token universe has %d tokens", got, want),
			})
		}
	}
	return ds, ""
}

// unconsumedOK lists the output ports legitimately left unconsumed:
//
//   - an empty program's start (no tokens to emit);
//   - a pure value producer (const, binop, unop) — an unconsumed value is
//     dead code, not a leak: the optimized schemas may compute a fork's
//     predicate and then place no switch at that fork;
//   - any port of a routing operator on a §6.1 value-token line — a value
//     is droppable when dead (the diamond's old value of m is discarded on
//     both arms because each arm redefines m), unlike an access token,
//     whose count must stay exactly 1.
func unconsumedOK(u *Unit, n *dfg.Node, port int) bool {
	if emptyProgramStart(u.G, n) {
		return true
	}
	// A load's value out (port 0) is dead code when the assigned variable
	// is redefined before any use; its access out (port 1) stays checked.
	if (n.Kind == dfg.Load || n.Kind == dfg.LoadIdx || n.Kind == dfg.ILoad) && port == 0 {
		return true
	}
	return valueKind(n) || valueTokenLine(u, n)
}

// emptyProgramStart reports whether n is the start node of an empty
// program (end collects nothing): it emits no tokens, so neither the
// unconsumed-port nor the path-to-sink condition applies.
func emptyProgramStart(g *dfg.Graph, n *dfg.Node) bool {
	return n.Kind == dfg.Start && g.EndID >= 0 && g.EndID < len(g.Nodes) && g.Nodes[g.EndID].NIns == 0
}

// valueKind reports whether every output of n is a pure value (never an
// access-token line). ILoad qualifies: I-structure reads are tokenless
// (§6.3), their single output is the deferred value. Fused qualifies:
// the optimizer only fuses pure value-operator trees.
func valueKind(n *dfg.Node) bool {
	switch n.Kind {
	case dfg.Const, dfg.BinOp, dfg.UnOp, dfg.ILoad, dfg.Fused:
		return true
	}
	return false
}

// valueTokenLine reports whether n is a routing operator on a value-token
// line (§6.1 memory elimination), where token-count conservation does not
// apply.
func valueTokenLine(u *Unit, n *dfg.Node) bool {
	if u.Res == nil || n.Tok == "" {
		return false
	}
	return u.Res.ValueTokens[n.Tok] != ""
}
