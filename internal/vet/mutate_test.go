package vet

import (
	"sort"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

func mustTranslate(t *testing.T, name string, opt translate.Options) *translate.Result {
	t.Helper()
	w := workloads.MustByName(name)
	g, err := cfg.Build(w.Parse())
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	res, err := translate.Translate(g, opt)
	if err != nil {
		t.Fatalf("translate %s: %v", name, err)
	}
	return res
}

func mutationByName(t *testing.T, name string) Mutation {
	t.Helper()
	for _, m := range Mutations() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("no mutation %q", name)
	return Mutation{}
}

// TestMutationsDetected: each seeded mutation class must be flagged by
// the passes that own the violated condition. The detecting pass is part
// of the contract — a mutation "detected" by an unrelated pass means the
// owning pass went vacuous.
func TestMutationsDetected(t *testing.T) {
	cases := []struct {
		mutation string
		workload string
		opt      translate.Options
		// detectors that must each report at least one error
		detectors []string
	}{
		{
			mutation: "drop-switch", workload: "diamond",
			opt:       translate.Options{Schema: translate.Schema2},
			detectors: []string{"switch-placement"},
		},
		{
			mutation: "drop-switch", workload: "running-example",
			opt:       translate.Options{Schema: translate.Schema2Opt},
			detectors: []string{"switch-placement"},
		},
		{
			mutation: "retarget-arc", workload: "running-example",
			opt:       translate.Options{Schema: translate.Schema2},
			detectors: []string{"token-balance", "determinacy"},
		},
		{
			mutation: "drop-merge-arm", workload: "diamond",
			opt:       translate.Options{Schema: translate.Schema2},
			detectors: []string{"token-balance"},
		},
		{
			mutation: "truncate-synch", workload: "fortran-alias",
			opt:       translate.Options{Schema: translate.Schema3},
			detectors: []string{"alias-cover"},
		},
		{
			mutation: "bypass-synch", workload: "fortran-alias",
			opt:       translate.Options{Schema: translate.Schema3},
			detectors: []string{"alias-cover"},
		},
		{
			mutation: "bypass-synch", workload: "aliased-swap",
			opt:       translate.Options{Schema: translate.Schema3Opt},
			detectors: []string{"alias-cover"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.mutation+"/"+tc.workload, func(t *testing.T) {
			res := mustTranslate(t, tc.workload, tc.opt)
			if rep := Run(res.Graph, res); !rep.Clean() {
				t.Fatalf("baseline not clean:\n%s", rep)
			}
			m := mutationByName(t, tc.mutation)
			mut, ok := m.Apply(res)
			if !ok {
				t.Fatalf("mutation %s does not apply to %s", tc.mutation, tc.workload)
			}
			rep := Run(mut, res)
			if rep.Errors() == 0 {
				t.Fatalf("mutation %s escaped: report clean", tc.mutation)
			}
			got := rep.Detectors()
			for _, want := range tc.detectors {
				i := sort.SearchStrings(got, want)
				if i >= len(got) || got[i] != want {
					t.Errorf("mutation %s: pass %s reported no error; detectors: %v\n%s", tc.mutation, want, got, rep)
				}
			}
		})
	}
}

// TestMutationsApplyBroadly: every mutation class finds a site on at
// least one committed workload.
func TestMutationsApplyBroadly(t *testing.T) {
	candidates := []*translate.Result{
		mustTranslate(t, "fortran-alias", translate.Options{Schema: translate.Schema3}),
		mustTranslate(t, "diamond", translate.Options{Schema: translate.Schema2}),
		mustTranslate(t, "running-example", translate.Options{Schema: translate.Schema2}),
	}
	for _, m := range Mutations() {
		applied := false
		for _, res := range candidates {
			if _, ok := m.Apply(res); ok {
				applied = true
				break
			}
		}
		if !applied {
			t.Errorf("mutation %s found no site on any candidate workload", m.Name)
		}
	}
}

// TestFig9PlacementAgreement pins the acceptance criterion: on the paper's
// Figure 9–11 worked example the switch-placement pass's independently
// recomputed placement must equal the switch set the translator emitted.
func TestFig9PlacementAgreement(t *testing.T) {
	res := mustTranslate(t, "fig9-bypass", translate.Options{Schema: translate.Schema2Opt})
	u := newUnit(res.Graph, res)
	pi := u.placementInfo()
	if pi.err != nil {
		t.Fatal(pi.err)
	}

	emitted := map[stmtTok]bool{}
	for _, n := range res.Graph.Nodes {
		if n.Kind == dfg.Switch {
			emitted[stmtTok{n.Stmt, n.Tok}] = true
		}
	}
	recomputed := map[stmtTok]bool{}
	for f, toks := range pi.place.Needs {
		if f < 0 || f >= res.CFG.Len() || res.CFG.Nodes[f].Kind != cfg.KindFork {
			continue
		}
		for tok := range toks {
			recomputed[stmtTok{f, tok}] = true
		}
	}
	for k := range emitted {
		if !recomputed[k] {
			t.Errorf("translator switched %q at stmt %d; recomputation did not", k.tok, k.stmt)
		}
	}
	for k := range recomputed {
		if !emitted[k] {
			t.Errorf("recomputation demands a switch for %q at stmt %d; translator emitted none", k.tok, k.stmt)
		}
	}
	if len(emitted) == 0 {
		t.Fatal("fig9-bypass emitted no switches; the worked example lost its fork")
	}
}
