package vet

import (
	"fmt"
	"sort"

	"ctdf/internal/analysis"
	"ctdf/internal/cfg"
	"ctdf/internal/dfg"
	"ctdf/internal/machcheck"
	"ctdf/internal/translate"
)

// stmtTok keys graph operators by provenance: the originating CFG
// statement and the access token served.
type stmtTok struct {
	stmt int
	tok  string
}

func sortedStmtToks[T any](m map[stmtTok]T) []stmtTok {
	out := make([]stmtTok, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].stmt != out[j].stmt {
			return out[i].stmt < out[j].stmt
		}
		return out[i].tok < out[j].tok
	})
	return out
}

func sortedCertKeys(m map[translate.StmtTok]int) []translate.StmtTok {
	out := make([]translate.StmtTok, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stmt != out[j].Stmt {
			return out[i].Stmt < out[j].Stmt
		}
		return out[i].Tok < out[j].Tok
	})
	return out
}

// placeInfo is the independently recomputed translation plan the
// validation passes diff the graph against: the extended need function,
// the switch placement, and the per-loop circulating token sets.
type placeInfo struct {
	need     analysis.NeedFunc
	place    *analysis.Placement
	loopNeed map[int]map[string]bool
	err      error
}

// placementInfo recomputes switch placement from first principles —
// CD+ closures via analysis.IteratedCD (Definition 5), not the Figure 10
// worklist the translator itself ran — so agreement between the two is a
// genuine cross-check, iterated with loop needs to the same monotone
// fixpoint translate.placeWithLoopControl uses. Cached per Unit.
func (u *Unit) placementInfo() *placeInfo {
	if u.placeOnce {
		return u.place
	}
	u.placeOnce = true
	u.place = recomputePlacement(u.Res)
	return u.place
}

func recomputePlacement(res *translate.Result) *placeInfo {
	g := res.CFG
	base := baseNeed(res)

	opt := res.Options.Schema == translate.Schema2Opt || res.Options.Schema == translate.Schema3Opt
	if !opt {
		// Schema 1/2/3: every fork switches every token.
		pi := &placeInfo{}
		needs := map[int]map[string]bool{}
		for _, n := range g.Nodes {
			if n.Kind != cfg.KindFork {
				continue
			}
			set := map[string]bool{}
			for _, tok := range res.Universe {
				set[tok] = true
			}
			needs[n.ID] = set
		}
		pi.place = &analysis.Placement{Needs: needs}
		pi.need = base
		pi.loopNeed = analysis.LoopNeeds(g, res.Loops, base, pi.place)
		return pi
	}
	return minimalFixpoint(res, base)
}

// minimalFixpoint computes the §4-optimized placement — CD+ closures
// iterated with loop needs to a monotone fixpoint — regardless of the
// schema the graph was built under.
func minimalFixpoint(res *translate.Result, base analysis.NeedFunc) *placeInfo {
	g := res.CFG
	pi := &placeInfo{}
	cd := analysis.ComputeControlDeps(g)
	loopNeed := map[int]map[string]bool{}
	extended := func(id int) []string {
		set := map[string]bool{}
		for _, tok := range base(id) {
			set[tok] = true
		}
		for tok := range loopNeed[id] {
			set[tok] = true
		}
		return sortedKeys(set)
	}
	for iter := 0; ; iter++ {
		if iter > g.Len()+len(res.Universe)+8 {
			pi.err = fmt.Errorf("vet: loop-need fixpoint did not converge")
			return pi
		}
		// Corollary 1: fork F needs a switch for token t iff F ∈ CD+ of
		// the nodes needing t.
		users := map[string][]int{}
		for _, id := range g.SortedIDs() {
			for _, tok := range extended(id) {
				users[tok] = append(users[tok], id)
			}
		}
		needs := map[int]map[string]bool{}
		for tok, us := range users {
			for f := range cd.IteratedCD(us) {
				if needs[f] == nil {
					needs[f] = map[string]bool{}
				}
				needs[f][tok] = true
			}
		}
		place := &analysis.Placement{Needs: needs}
		next := analysis.LoopNeeds(g, res.Loops, base, place)
		if loopNeedsEqual(loopNeed, next) {
			pi.place = place
			pi.need = extended
			pi.loopNeed = next
			return pi
		}
		loopNeed = next
	}
}

// MinimalPlacement recomputes the §4-optimized switch placement for res
// whatever its schema: the forks that genuinely need each token routed
// (Corollary 1 plus loop circulation needs). It is both the optimizer's
// sinking criterion (internal/opt removes a switch only where this
// placement has no entry) and the verifier's independent legality check
// for the optimizer's removal claims — the two sides recompute it
// separately, so a bug in one is caught by the other.
func MinimalPlacement(res *translate.Result) (*analysis.Placement, error) {
	if res == nil || res.CFG == nil || res.TokensOf == nil {
		return nil, fmt.Errorf("vet: no translation metadata to recompute placement from")
	}
	pi := minimalFixpoint(res, baseNeed(res))
	if pi.err != nil {
		return nil, pi.err
	}
	return pi.place, nil
}

// baseNeed mirrors the translator's need derivation: a node needs the
// union of the token sets of the variables it references (I-structure
// arrays have none), plus the completion token of any §6.3-parallelized
// store it carries.
func baseNeed(res *translate.Result) analysis.NeedFunc {
	istructs := map[string]bool{}
	for _, a := range res.IStructures {
		istructs[a] = true
	}
	doneAt := map[int][]string{}
	for _, ps := range res.ParallelStores {
		doneAt[ps.StoreStmt] = append(doneAt[ps.StoreStmt], ps.DoneToken())
	}
	g := res.CFG
	return func(id int) []string {
		set := map[string]bool{}
		for v := range g.Refs(id) {
			if istructs[v] {
				continue
			}
			for _, tok := range res.TokensOf[v] {
				set[tok] = true
			}
		}
		for _, tok := range doneAt[id] {
			set[tok] = true
		}
		return sortedKeys(set)
	}
}

// passSwitchPlacement diffs the switches the translator emitted against
// the independently recomputed placement. The comparison is keyed by
// (originating fork, token) via the nodes' Stmt provenance:
//
//   - a missing switch is unsound (Theorem 1: the fork is in CD+ of a node
//     referencing the token, so the token MUST be routed by the branch —
//     unrouted it arrives on an untaken path and breaks determinacy);
//   - a redundant switch is legal but a missed §4 optimization (warning,
//     suppressed for the unoptimized schemas whose contract IS "a switch
//     at every fork for every token");
//   - a duplicated switch delivers two tokens per predicate evaluation.
func passSwitchPlacement(u *Unit) ([]Diagnostic, string) {
	if !u.hasMeta() {
		return nil, noMetaReason
	}
	pi := u.placementInfo()
	if pi.err != nil {
		return []Diagnostic{{Severity: SevError, Check: machcheck.InvalidConfig, Node: -1, Msg: pi.err.Error()}}, ""
	}
	g := u.Res.CFG

	actual := map[stmtTok][]int{}
	for _, n := range u.G.Nodes {
		if n.Kind == dfg.Switch {
			k := stmtTok{n.Stmt, n.Tok}
			actual[k] = append(actual[k], n.ID)
		}
	}

	// The optimizer's certificate (if one ran) claims per-slot switch
	// removals. Each claim is validated, not trusted: the slot's removal
	// must be legal under an independently recomputed minimal placement.
	var removed map[translate.StmtTok]int
	if u.Res.Opt != nil {
		removed = u.Res.Opt.RemovedSwitches
	}
	claimsSeen := map[translate.StmtTok]bool{}
	var minimal *analysis.Placement
	if len(removed) > 0 {
		m, err := MinimalPlacement(u.Res)
		if err != nil {
			return []Diagnostic{{Severity: SevError, Check: machcheck.InvalidConfig, Node: -1,
				Msg: "cannot validate optimizer certificate: " + err.Error()}}, ""
		}
		minimal = m
	}

	var ds []Diagnostic
	expected := map[stmtTok]bool{}
	// Switches are emitted only at real fork statements; placement marks
	// start too (the conventional start→end edge makes it a fork for CD
	// purposes) but the builder gives start no switch.
	for _, f := range sortedIntKeys(pi.place.Needs) {
		if f < 0 || f >= g.Len() || g.Nodes[f].Kind != cfg.KindFork {
			continue
		}
		for _, tok := range sortedKeys(pi.place.Needs[f]) {
			k := stmtTok{f, tok}
			expected[k] = true
			claimed := removed[translate.StmtTok{Stmt: f, Tok: tok}]
			if claimed > 0 {
				claimsSeen[translate.StmtTok{Stmt: f, Tok: tok}] = true
				switch {
				case claimed > 1:
					ds = append(ds, Diagnostic{
						Severity: SevError, Check: machcheck.InvalidConfig, Node: -1, Tok: tok,
						Msg: fmt.Sprintf("optimizer certificate claims %d switch removals for token %s at fork %s, but the contract places exactly one", claimed, tok, g.Nodes[f]),
					})
				case minimal.Needs[f][tok]:
					ds = append(ds, Diagnostic{
						Severity: SevError, Check: machcheck.Determinacy, Node: -1, Tok: tok,
						Msg: fmt.Sprintf("optimizer removed a required switch: fork %s is in CD+ of a node referencing token %s (Theorem 1), so the removal is unsound", g.Nodes[f], tok),
					})
				case len(actual[k]) != 0:
					ds = append(ds, Diagnostic{
						Severity: SevError, Check: machcheck.InvalidConfig, Node: actual[k][0], Tok: tok,
						Msg: fmt.Sprintf("optimizer certificate claims the switch for token %s at fork %s was removed, but it is still present", tok, g.Nodes[f]),
					})
				}
				continue
			}
			switch ids := actual[k]; {
			case len(ids) == 0:
				ds = append(ds, Diagnostic{
					Severity: SevError, Check: machcheck.Determinacy, Node: -1, Tok: tok,
					Msg: fmt.Sprintf("missing switch for token %s at fork %s: the fork is in CD+ of a node referencing it, so the token must be branch-routed", tok, g.Nodes[f]),
				})
			case len(ids) > 1:
				ds = append(ds, Diagnostic{
					Severity: SevError, Check: machcheck.TagViolation, Node: ids[1], Tok: tok,
					Msg: fmt.Sprintf("token %s is switched %d times at fork %s: want exactly one switch", tok, len(ids), g.Nodes[f]),
				})
			}
		}
	}
	// Claims at slots the contract never placed a switch in are bogus by
	// construction.
	for _, k := range sortedCertKeys(removed) {
		if !claimsSeen[k] {
			ds = append(ds, Diagnostic{
				Severity: SevError, Check: machcheck.InvalidConfig, Node: -1, Tok: k.Tok,
				Msg: fmt.Sprintf("optimizer certificate claims a switch removal for token %s at %s, where the contract places none", k.Tok, stmtLabel(g, k.Stmt)),
			})
		}
	}
	for _, n := range u.G.Nodes {
		if n.Kind != dfg.Switch || expected[stmtTok{n.Stmt, n.Tok}] {
			continue
		}
		if n.Stmt < 0 || n.Stmt >= g.Len() || g.Nodes[n.Stmt].Kind != cfg.KindFork {
			ds = append(ds, Diagnostic{
				Severity: SevError, Check: machcheck.Determinacy, Node: n.ID, Tok: n.Tok,
				Msg: fmt.Sprintf("switch has no originating fork (stmt %d)", n.Stmt),
			})
			continue
		}
		ds = append(ds, Diagnostic{
			Severity: SevWarning, Node: n.ID, Tok: n.Tok,
			Msg: fmt.Sprintf("redundant switch: fork %s is not in CD+ of any node referencing token %s (missed §4 optimization)", g.Nodes[n.Stmt], n.Tok),
		})
	}
	return ds, ""
}

// passSourceVectors recomputes the Figure 11 source vectors under the
// recomputed placement and checks the merge set: a dataflow merge exists
// exactly where a token has more than one source — at joins and end, and
// at the initial and back ports of the loop entries of the tokens each
// loop circulates. The same metadata checks the loop entry/exit operator
// sets against the recomputed circulating-token sets.
func passSourceVectors(u *Unit) ([]Diagnostic, string) {
	if !u.hasMeta() {
		return nil, noMetaReason
	}
	pi := u.placementInfo()
	if pi.err != nil {
		return nil, "placement recomputation failed: " + pi.err.Error()
	}
	res := u.Res
	g := res.CFG
	sv, err := analysis.ComputeSourceVectors(g, res.Loops, res.Universe, pi.need, pi.place)
	if err != nil {
		return []Diagnostic{{Severity: SevError, Check: machcheck.InvalidConfig, Node: -1,
			Msg: "source-vector recomputation failed: " + err.Error()}}, ""
	}

	expected := map[stmtTok]int{}
	for _, id := range g.SortedIDs() {
		switch g.Nodes[id].Kind {
		case cfg.KindJoin, cfg.KindEnd:
			for tok, srcs := range sv.SV[id] {
				if len(srcs) > 1 {
					expected[stmtTok{id, tok}]++
				}
			}
		case cfg.KindLoopEntry:
			for tok := range sv.LoopNeed[id] {
				if len(sv.SV[id][tok]) > 1 {
					expected[stmtTok{id, tok}]++
				}
				if len(sv.Back[id][tok]) > 1 {
					expected[stmtTok{id, tok}]++
				}
			}
		}
	}
	actual := map[stmtTok]int{}
	for _, n := range u.G.Nodes {
		if n.Kind == dfg.Merge {
			actual[stmtTok{n.Stmt, n.Tok}]++
		}
	}
	// The optimizer's certificate claims per-slot merge removals (sunk
	// switch/merge pairs, flattened merge chains); the claimed count is
	// deducted from the contract's expectation and can never exceed it.
	var removedMerges map[translate.StmtTok]int
	if u.Res.Opt != nil {
		removedMerges = u.Res.Opt.RemovedMerges
	}
	var ds []Diagnostic
	keys := map[stmtTok]bool{}
	for k := range expected {
		keys[k] = true
	}
	for k := range actual {
		keys[k] = true
	}
	for k := range removedMerges {
		keys[stmtTok{k.Stmt, k.Tok}] = true
	}
	for _, k := range sortedStmtToks(keys) {
		want, got := expected[k], actual[k]
		if claimed := removedMerges[translate.StmtTok{Stmt: k.stmt, Tok: k.tok}]; claimed > 0 {
			if claimed > want {
				ds = append(ds, Diagnostic{
					Severity: SevError, Check: machcheck.InvalidConfig, Node: -1, Tok: k.tok,
					Msg: fmt.Sprintf("optimizer certificate claims %d merge removals for token %s at %s, but the contract places only %d", claimed, k.tok, stmtLabel(g, k.stmt), want),
				})
				continue
			}
			want -= claimed
		}
		switch {
		case got < want:
			ds = append(ds, Diagnostic{
				Severity: SevError, Check: machcheck.TagViolation, Node: -1, Tok: k.tok,
				Msg: fmt.Sprintf("missing merge for token %s at %s: |SV| > 1, so several sources would collide on one port (want %d merges, found %d)", k.tok, stmtLabel(g, k.stmt), want, got),
			})
		case got > want:
			ds = append(ds, Diagnostic{
				Severity: SevWarning, Node: mergeNodeAt(u, k.stmt, k.tok), Tok: k.tok,
				Msg: fmt.Sprintf("redundant merge for token %s at %s: the source vector has a single element (want %d merges, found %d)", k.tok, stmtLabel(g, k.stmt), want, got),
			})
		}
	}

	// Loop circulation: one entry and one exit operator per circulated
	// token, none for bypassing tokens.
	ds = append(ds, checkLoopCirculation(u, sv)...)
	return ds, ""
}

// checkLoopCirculation diffs the loop entry/exit operators against the
// recomputed per-loop circulating token sets (§3's tag discipline: exactly
// the circulated tokens get fresh iteration tags).
func checkLoopCirculation(u *Unit, sv *analysis.SourceVectors) []Diagnostic {
	g := u.Res.CFG
	count := func(kind dfg.Kind) map[stmtTok]int {
		m := map[stmtTok]int{}
		for _, n := range u.G.Nodes {
			if n.Kind == kind {
				m[stmtTok{n.Stmt, n.Tok}]++
			}
		}
		return m
	}
	entries, exits := count(dfg.LoopEntry), count(dfg.LoopExit)
	var ds []Diagnostic
	check := func(kind string, stmt int, actual map[stmtTok]int) {
		for _, tok := range sortedKeys(sv.LoopNeed[stmt]) {
			k := stmtTok{stmt, tok}
			if actual[k] != 1 {
				ds = append(ds, Diagnostic{
					Severity: SevError, Check: machcheck.TagViolation, Node: -1, Tok: tok,
					Msg: fmt.Sprintf("loop %s at %s must circulate token %s exactly once: found %d operators", kind, stmtLabel(g, stmt), tok, actual[k]),
				})
			}
			delete(actual, k)
		}
	}
	for _, id := range g.SortedIDs() {
		switch g.Nodes[id].Kind {
		case cfg.KindLoopEntry:
			check("entry", id, entries)
		case cfg.KindLoopExit:
			check("exit", id, exits)
		}
	}
	stray := func(kind string, left map[stmtTok]int) {
		for _, k := range sortedStmtToks(left) {
			ds = append(ds, Diagnostic{
				Severity: SevError, Check: machcheck.TagViolation, Node: -1, Tok: k.tok,
				Msg: fmt.Sprintf("loop %s operator for token %s at %s, but the loop does not circulate that token", kind, k.tok, stmtLabel(g, k.stmt)),
			})
		}
	}
	stray("entry", entries)
	stray("exit", exits)
	return ds
}

func stmtLabel(g *cfg.Graph, stmt int) string {
	if stmt >= 0 && stmt < g.Len() {
		return g.Nodes[stmt].String()
	}
	return fmt.Sprintf("stmt %d", stmt)
}

// mergeNodeAt finds a merge node with the given provenance, for anchoring
// a diagnostic; -1 when none exists.
func mergeNodeAt(u *Unit, stmt int, tok string) int {
	for _, n := range u.G.Nodes {
		if n.Kind == dfg.Merge && n.Stmt == stmt && n.Tok == tok {
			return n.ID
		}
	}
	return -1
}

func loopNeedsEqual(a, b map[int]map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for tok := range av {
			if !bv[tok] {
				return false
			}
		}
	}
	return true
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedIntKeys(m map[int]map[string]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
