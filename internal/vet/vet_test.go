package vet

import (
	"fmt"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// optionCombos is the schema/transform matrix the clean-sweep tests run
// every workload through. Combinations a schema rejects are skipped at
// Translate time.
func optionCombos() []translate.Options {
	var out []translate.Options
	for _, schema := range []translate.Schema{
		translate.Schema1, translate.Schema2, translate.Schema2Opt,
		translate.Schema3, translate.Schema3Opt,
	} {
		out = append(out, translate.Options{Schema: schema})
	}
	out = append(out,
		translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true},
		translate.Options{Schema: translate.Schema2Opt, ParallelReads: true},
		translate.Options{Schema: translate.Schema2Opt, ParallelArrayStores: true},
		translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true, ParallelReads: true, ParallelArrayStores: true},
		translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true, UseIStructures: true},
		translate.Options{Schema: translate.Schema3Opt, ParallelReads: true},
	)
	return out
}

func optLabel(opt translate.Options) string {
	s := fmt.Sprintf("schema%v", opt.Schema)
	if opt.EliminateMemory {
		s += "+elim"
	}
	if opt.ParallelReads {
		s += "+preads"
	}
	if opt.ParallelArrayStores {
		s += "+pstores"
	}
	if opt.UseIStructures {
		s += "+istruct"
	}
	return s
}

// TestVetCleanOnWorkloads: every graph the translator emits, for every
// committed workload under every schema/option combination, must vet with
// zero diagnostics — the translation-validation contract.
func TestVetCleanOnWorkloads(t *testing.T) {
	vetted := 0
	for _, w := range workloads.All() {
		g, err := cfg.Build(w.Parse())
		if err != nil {
			continue // procedure workloads need linked translation
		}
		for _, opt := range optionCombos() {
			res, err := translate.Translate(g, opt)
			if err != nil {
				continue // combination rejected by the schema
			}
			rep := Run(res.Graph, res)
			if !rep.Clean() {
				t.Errorf("%s/%s: want clean, got:\n%s", w.Name, optLabel(opt), rep)
			}
			if len(rep.Skipped) != 0 {
				t.Errorf("%s/%s: passes skipped despite metadata: %v", w.Name, optLabel(opt), rep.Skipped)
			}
			vetted++
		}
	}
	if vetted < 100 {
		t.Fatalf("only %d workload/option combinations vetted; suite lost coverage", vetted)
	}
}

// TestVetCleanOnRandomPrograms sweeps generator seeds, structured and
// unstructured, through the full option matrix.
func TestVetCleanOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		for _, w := range []workloads.Workload{
			workloads.Random(seed, 3, 2),
			workloads.RandomAliased(seed, 3, 2),
			workloads.RandomUnstructured(seed, 2),
		} {
			g, err := cfg.Build(w.Parse())
			if err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			for _, opt := range optionCombos() {
				res, err := translate.Translate(g, opt)
				if err != nil {
					continue
				}
				if rep := Run(res.Graph, res); !rep.Clean() {
					t.Errorf("%s/%s: want clean, got:\n%s", w.Name, optLabel(opt), rep)
				}
			}
		}
	}
}
