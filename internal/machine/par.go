package machine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ctdf/internal/dfg"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/machcheck"
)

// The optional parallel issue stage (Config.ParallelIssue). The ETS
// firing rule (paper §2.2) is purely local — an enabled operator reads
// only its matched operands — so a cycle's already-selected issue batch
// can be evaluated in any order, including concurrently, without
// changing what each firing computes. A cycle's issue batch is split in
// two phases:
//
//   - compute (parallel): the pure operators — those that read only
//     their operand values and the immutable graph, emit on a port
//     derivable from the operands, and touch no simulator state — are
//     evaluated by a pool of host workers into parOut;
//   - retire (sequential): the batch is walked in deterministic issue
//     order exactly as in the sequential path; precomputed slots only
//     emit their result, everything else (memory, tag arithmetic,
//     procedure linkage, end) fires normally.
//
// Because observation points (collector Fire/Emitted events, statistics,
// error aborts) all live in the sequential retire phase, a parallel run
// is observably identical to a sequential one — the firing-vector oracle
// in par_test.go and the cross-engine suite hold it to that. The stage
// is skipped for small batches (parIssueThreshold) where pool dispatch
// costs more than it saves, and whenever fault injection is active
// (misfire injection must see operator results in issue order).

// parIssueThreshold is the minimum batch size worth dispatching to the
// worker pool; it is a variable so tests can force the parallel path on
// small workloads.
var parIssueThreshold = 256

// parChunk is the unit of work-stealing: workers grab chunks of the
// batch by atomic counter, so stragglers do not serialize the phase.
const parChunk = 64

// pureOut is one precomputed batch slot: ok marks that the compute phase
// handled the operator, and the retire phase only needs to emit val on
// port (or abort with err).
type pureOut struct {
	ok   bool
	port int
	val  int64
	err  error
}

// computePure fills m.parOut for batch using min(GOMAXPROCS, chunks)
// workers. Slots whose operator is impure are left ok=false.
func (m *sim) computePure(batch []firing) {
	if cap(m.parOut) < len(batch) {
		m.parOut = make([]pureOut, len(batch))
	}
	m.parOut = m.parOut[:len(batch)]
	chunks := (len(batch) + parChunk - 1) / parChunk
	workers := runtime.GOMAXPROCS(0)
	if workers > chunks {
		workers = chunks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				lo := c * parChunk
				if lo >= len(batch) {
					return
				}
				hi := lo + parChunk
				if hi > len(batch) {
					hi = len(batch)
				}
				for i := lo; i < hi; i++ {
					m.evalPure(&batch[i], &m.parOut[i])
				}
			}
		}()
	}
	wg.Wait()
}

// evalPure evaluates one operator if it is pure. It reads only the
// firing's operands and the immutable graph — never simulator state —
// so concurrent calls on distinct batch slots are race-free.
func (m *sim) evalPure(f *firing, out *pureOut) {
	*out = pureOut{}
	n := m.g.Nodes[f.node]
	switch n.Kind {
	case dfg.Const:
		out.ok, out.val = true, n.Val
	case dfg.BinOp:
		v, err := interp.Apply(n.Op, f.vals[0], f.vals[1])
		if err != nil {
			out.ok = true
			out.err = machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
			return
		}
		out.ok, out.val = true, v
	case dfg.UnOp:
		switch n.Op {
		case lang.OpNeg:
			out.ok, out.val = true, -f.vals[0]
		case lang.OpNot:
			out.ok = true
			if f.vals[0] == 0 {
				out.val = 1
			}
		default:
			out.ok = true
			out.err = machcheck.Newf(machcheck.OperatorFault, "machine", "bad unary op %v", n.Op)
		}
	case dfg.Switch:
		out.ok, out.val = true, f.vals[0]
		if f.vals[1] == 0 {
			out.port = 1
		}
	case dfg.Merge, dfg.Param:
		out.ok, out.val = true, f.vals[0]
	case dfg.Synch:
		out.ok = true
	case dfg.Fused:
		fi := m.g.FusionOf(f.node)
		if len(fi.Outs) != 1 {
			return // multi-output fused nodes retire sequentially
		}
		vals, err := interp.EvalFused(fi.Steps, f.vals, nil)
		if err != nil {
			out.ok = true
			out.err = machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
			return
		}
		out.ok, out.val = true, vals[fi.Outs[0]]
	}
}
