package machine

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ctdf/internal/cfg"
	"ctdf/internal/machcheck"
	"ctdf/internal/obs"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// forceShardPool drops the inline-execution threshold so every cycle of
// every workload exercises the worker pool and the cross-shard merges,
// however narrow; restores on cleanup.
func forceShardPool(t *testing.T) {
	t.Helper()
	old := shardedPhaseMin
	shardedPhaseMin = 1
	t.Cleanup(func() { shardedPhaseMin = old })
}

// shardWorkerCounts are the worker counts the byte-exactness tests pin;
// 2 and 3 stress uneven partitions, 8 exceeds the host's cores on CI so
// the pool multiplexes shards onto fewer goroutines.
var shardWorkerCounts = []int{2, 3, 4, 8}

// TestShardedObservablyIdentical pins the sharded engine's contract:
// any worker count must reproduce the sequential run byte-for-byte —
// snapshot, cycle count, op counts, matching statistics, and the
// per-node firing vector — across every workload × golden config cell.
// The whole suite runs under -race in CI (scripts/verify.sh), which is
// what holds the parallel phases to the shared-nothing discipline.
func TestShardedObservablyIdentical(t *testing.T) {
	forceShardPool(t)
	for _, w := range workloads.All() {
		for _, gc := range goldenConfigs() {
			w, gc := w, gc
			t.Run(w.Name+"/"+gc.Name, func(t *testing.T) {
				seq := goldenRun(t, w, gc)
				for _, workers := range shardWorkerCounts {
					g := cfg.MustBuild(w.Parse())
					res, err := translate.Translate(g, gc.Opt)
					if err != nil {
						t.Fatalf("translate: %v", err)
					}
					col := obs.NewCollector(res.Graph, obs.Options{})
					out, err := Run(res.Graph, Config{
						Processors: gc.Processors,
						MemLatency: gc.MemLatency,
						Collector:  col,
						Workers:    workers,
					})
					if err != nil {
						t.Fatalf("W=%d: %v", workers, err)
					}
					rep := col.Report(out.Stats.Cycles, nil)
					got := goldenCell{
						Snapshot:       out.Store.Snapshot(),
						Cycles:         out.Stats.Cycles,
						Ops:            out.Stats.Ops,
						MemOps:         out.Stats.MemOps,
						Matches:        out.Stats.Matches,
						MaxParallelism: out.Stats.MaxParallelism,
						PeakMatchStore: out.Stats.PeakMatchStore,
						Firings:        rep.NodeFirings(),
					}
					if d := diffCell(seq, got); d != "" {
						t.Errorf("W=%d diverged from sequential:\n%s", workers, d)
					}
				}
			})
		}
	}
}

// TestShardedCriticalPathIdentical checks the firing-DAG id precompute:
// pure firings stamp their tokens with dagBase+gi before Fire runs, so
// the recorded DAG — and therefore the extracted critical path — must
// be identical to the sequential engine's at any worker count.
func TestShardedCriticalPathIdentical(t *testing.T) {
	forceShardPool(t)
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(workers int) *obs.CriticalPath {
				g := cfg.MustBuild(w.Parse())
				res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
				if err != nil {
					t.Fatalf("translate: %v", err)
				}
				col := obs.NewCollector(res.Graph, obs.Options{CriticalPath: true})
				out, err := Run(res.Graph, Config{MemLatency: 3, Collector: col, Workers: workers})
				if err != nil {
					t.Fatalf("W=%d: %v", workers, err)
				}
				return col.Report(out.Stats.Cycles, nil).CriticalPath
			}
			seq := run(1)
			for _, workers := range shardWorkerCounts {
				got := run(workers)
				if seq == nil || got == nil {
					t.Fatalf("W=%d: missing critical path (seq=%v got=%v)", workers, seq, got)
				}
				if seq.Length != got.Length || seq.Ops != got.Ops {
					t.Errorf("W=%d critical path diverged: sequential length=%d ops=%d, sharded length=%d ops=%d",
						workers, seq.Length, seq.Ops, got.Length, got.Ops)
				}
			}
		})
	}
}

// TestShardedErrorsMatchSequential checks that a fire-phase operator
// fault (division by zero) surfaces the identical typed machine check —
// first in issue order — even though shard workers evaluate the batch
// out of order.
func TestShardedErrorsMatchSequential(t *testing.T) {
	forceShardPool(t)
	w := workloads.Workload{Name: "div0", Source: "var x, y\nx := 1 / y\n"}
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	_, seqErr := Run(res.Graph, Config{})
	if seqErr == nil {
		t.Fatal("expected sequential engine to fault")
	}
	for _, workers := range shardWorkerCounts {
		_, shErr := Run(res.Graph, Config{Workers: workers})
		if shErr == nil {
			t.Fatalf("W=%d: expected fault", workers)
		}
		if seqErr.Error() != shErr.Error() {
			t.Errorf("W=%d fault text diverged:\nseq: %v\ngot: %v", workers, seqErr, shErr)
		}
	}
}

// TestShardedAbortMatchesSequential drives a runaway loop into the
// MaxCycles abort: producers and consumers of the loop's tokens sit on
// different shards, and the abort — cycle number, stuck-token
// diagnostics, partial statistics — must come out exactly as in the
// sequential engine.
func TestShardedAbortMatchesSequential(t *testing.T) {
	forceShardPool(t)
	w := workloads.Workload{Name: "runaway", Source: "var x\nwhile x < 1 {\n  x := x - 1\n}\n"}
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	run := func(workers int) (Stats, error) {
		out, err := Run(res.Graph, Config{MaxCycles: 200, Workers: workers})
		if out == nil {
			t.Fatalf("W=%d: aborted runs must still return a partial outcome", workers)
		}
		return out.Stats, err
	}
	seqStats, seqErr := run(1)
	if seqErr == nil || !errors.Is(seqErr, machcheck.CyclesExceeded) {
		t.Fatalf("expected CyclesExceeded, got %v", seqErr)
	}
	for _, workers := range shardWorkerCounts {
		gotStats, gotErr := run(workers)
		if gotErr == nil || gotErr.Error() != seqErr.Error() {
			t.Errorf("W=%d abort diverged:\nseq: %v\ngot: %v", workers, seqErr, gotErr)
		}
		if fmt.Sprint(seqStats) != fmt.Sprint(gotStats) {
			t.Errorf("W=%d partial stats diverged:\nseq: %+v\ngot: %+v", workers, seqStats, gotStats)
		}
	}
}

// TestShardedDeadlineAborts checks the wall-clock deadline fires under
// the sharded engine too (the abort cycle is wall-clock dependent, so
// only the check type is pinned).
func TestShardedDeadlineAborts(t *testing.T) {
	forceShardPool(t)
	w := workloads.MustByName("fib-iterative")
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	out, err := Run(res.Graph, Config{Deadline: time.Nanosecond, Workers: 4})
	if err == nil || !errors.Is(err, machcheck.Deadline) {
		t.Fatalf("expected Deadline abort, got %v", err)
	}
	if out == nil {
		t.Fatal("deadline abort must return a partial outcome")
	}
}

// TestShardedSeededRandomDeterminacy is the seeded-random fix's
// regression test: per-shard RNG streams are derived from (seed, shard),
// so W=1 and W=8 explore different schedules from the same seed — but
// dataflow determinacy demands the observables that matter agree: the
// final store and the per-node firing vector. A repeated W=8 run must
// also agree with itself exactly (the streams are deterministic).
func TestShardedSeededRandomDeterminacy(t *testing.T) {
	forceShardPool(t)
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			run := func(workers int) (string, []int64, Stats) {
				g := cfg.MustBuild(w.Parse())
				res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
				if err != nil {
					t.Fatalf("translate: %v", err)
				}
				col := obs.NewCollector(res.Graph, obs.Options{})
				out, err := Run(res.Graph, Config{MemLatency: 2, RandomSeed: 42, Collector: col, Workers: workers})
				if err != nil {
					t.Fatalf("W=%d: %v", workers, err)
				}
				return out.Store.Snapshot(), col.Report(out.Stats.Cycles, nil).NodeFirings(), out.Stats
			}
			snap1, fires1, _ := run(1)
			snap8, fires8, stats8 := run(8)
			if snap1 != snap8 {
				t.Errorf("snapshot diverged between W=1 and W=8:\nW=1: %s\nW=8: %s", snap1, snap8)
			}
			if fmt.Sprint(fires1) != fmt.Sprint(fires8) {
				t.Errorf("firing vector diverged between W=1 and W=8:\nW=1: %v\nW=8: %v", fires1, fires8)
			}
			snapR, firesR, statsR := run(8)
			if snapR != snap8 || fmt.Sprint(firesR) != fmt.Sprint(fires8) || fmt.Sprint(statsR) != fmt.Sprint(stats8) {
				t.Errorf("repeated W=8 seeded run was not deterministic")
			}
		})
	}
}

// TestShardedWorkersValidation pins the Workers knob's edges: negative
// rejected, absurd counts capped rather than honored.
func TestShardedWorkersValidation(t *testing.T) {
	w := workloads.MustByName("fib-iterative")
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	if _, err := Run(res.Graph, Config{Workers: -1}); !errors.Is(err, machcheck.InvalidConfig) {
		t.Errorf("Workers=-1: want InvalidConfig, got %v", err)
	}
	if _, err := Run(res.Graph, Config{Workers: 100000}); err != nil {
		t.Errorf("Workers=100000 should cap and run, got %v", err)
	}
}
