package machine

import (
	"sort"

	"ctdf/internal/token"
)

// This file holds the hot-path data structures of the simulator — the
// fast implementations of the two ETS mechanisms of paper §2.2, tag
// matching in the waiting-matching store and enabled-instruction issue:
//
//   - tagTable interns tag keys (the iteration/activation contexts of
//     §2.2/§3) to dense int32 ids so the matching store hashes integers
//     instead of strings on every delivery;
//   - readyQueue is the insertion-ordered, per-node-bucketed ready queue
//     that replaced the per-cycle sort.Slice over the whole enabled list:
//     the deterministic issue order (node id, then tag key, then port) is
//     exactly the old globally sorted order, but only buckets that
//     received new work since they were last drained are ever sorted,
//     and each bucket is sorted alone — O(Σ bᵢ log bᵢ) over small
//     buckets instead of O(E log E) over the whole enabled set per
//     cycle;
//   - free lists for match entries, operand-value slices, and parked
//     token slices, so steady-state cycles recycle allocations instead
//     of making new ones (see PERFORMANCE.md).

// rootTagID is the interned id of token.Root; every tagTable assigns it
// first.
const rootTagID int32 = 0

// tagTable interns tag keys. Id 0 is always the root tag. Tokens and
// firings carry only the dense id — plain old data, so the scheduler's
// copies trigger no GC write barriers — and the table maps ids back to
// the full Tag for the rare operators that do tag arithmetic.
type tagTable struct {
	ids  map[string]int32
	keys []string
	tags []token.Tag
	// Tag-arithmetic caches: a loop entry fires once per loop variable
	// per iteration with the same tag, so Push/Bump/Pop results repeat;
	// caching them by id replaces per-firing tag-string construction
	// with one integer map hit.
	push map[int32]int32
	bump map[int32]int32
	pop  map[int32]int32
}

func newTagTable() *tagTable {
	return &tagTable{
		ids:  map[string]int32{"": rootTagID},
		keys: []string{""},
		tags: []token.Tag{token.Root},
		push: map[int32]int32{},
		bump: map[int32]int32{},
		pop:  map[int32]int32{},
	}
}

// intern returns the dense id of tg's key, assigning one on first sight.
func (t *tagTable) intern(tg token.Tag) int32 {
	k := tg.Key()
	if id, ok := t.ids[k]; ok {
		return id
	}
	id := int32(len(t.keys))
	t.ids[k] = id
	t.keys = append(t.keys, k)
	t.tags = append(t.tags, tg)
	return id
}

// tag returns the full Tag behind an interned id.
func (t *tagTable) tag(id int32) token.Tag { return t.tags[id] }

// key returns the canonical key string behind an interned id.
func (t *tagTable) key(id int32) string { return t.keys[id] }

// pushID returns the interned id of tag(id).Push().
func (t *tagTable) pushID(id int32) int32 {
	if nid, ok := t.push[id]; ok {
		return nid
	}
	nid := t.intern(t.tags[id].Push())
	t.push[id] = nid
	return nid
}

// bumpID returns the interned id of tag(id).Bump().
func (t *tagTable) bumpID(id int32) (int32, error) {
	if nid, ok := t.bump[id]; ok {
		return nid, nil
	}
	nt, err := t.tags[id].Bump()
	if err != nil {
		return 0, err
	}
	nid := t.intern(nt)
	t.bump[id] = nid
	return nid, nil
}

// popID returns the interned id of tag(id).Pop().
func (t *tagTable) popID(id int32) (int32, error) {
	if nid, ok := t.pop[id]; ok {
		return nid, nil
	}
	nt, err := t.tags[id].Pop()
	if err != nil {
		return 0, err
	}
	nid := t.intern(nt)
	t.pop[id] = nid
	return nid, nil
}

// peekPush / peekBump / peekPop are the read-only halves of the
// tag-arithmetic caches, for the sharded machine's parallel fire phase:
// the cycle's tags are resolved (and cached) during sequential selection,
// so the phase itself only reads the maps — a cache miss means the tag
// could not be resolved ahead of time (e.g. a malformed pop) and the
// firing falls back to the sequential retire pass, which re-runs the
// arithmetic and surfaces any error in deterministic issue order.
func (t *tagTable) peekPush(id int32) (int32, bool) {
	nid, ok := t.push[id]
	return nid, ok
}

func (t *tagTable) peekBump(id int32) (int32, bool) {
	nid, ok := t.bump[id]
	return nid, ok
}

func (t *tagTable) peekPop(id int32) (int32, bool) {
	nid, ok := t.pop[id]
	return nid, ok
}

// bucket holds the pending firings of one node. items[head:] are
// pending; consumed entries are not shifted, only head advances, and the
// slice is reset when it drains.
type bucket struct {
	items []firing
	head  int
	// dirty marks that items arrived since the pending range was last
	// sorted.
	dirty bool
}

// readyQueue is the bucketed ready queue: one bucket per node, plus the
// sorted list of node ids with pending work. Invariant: a node is in
// active iff its bucket has pending firings.
type readyQueue struct {
	buckets []bucket
	active  []int
	count   int
	// tt resolves interned tag ids to key strings for bucket ordering.
	tt *tagTable
}

func newReadyQueue(nodes int, tt *tagTable) *readyQueue {
	q := &readyQueue{buckets: make([]bucket, nodes), tt: tt}
	// Pre-carve two slots of capacity per bucket out of one shared
	// allocation; only buckets that ever hold more pending firings
	// reallocate individually.
	backing := make([]firing, 2*nodes)
	for i := range q.buckets {
		q.buckets[i].items = backing[2*i : 2*i : 2*i+2]
	}
	return q
}

// push enqueues one enabled firing.
func (q *readyQueue) push(f firing) {
	b := &q.buckets[f.node]
	if len(b.items) == b.head {
		b.items = b.items[:0]
		b.head = 0
		b.dirty = false
		i := sort.SearchInts(q.active, f.node)
		if i == len(q.active) || q.active[i] != f.node {
			q.active = append(q.active, 0)
			copy(q.active[i+1:], q.active[i:])
			q.active[i] = f.node
		}
	} else {
		b.dirty = true
	}
	b.items = append(b.items, f)
	q.count++
}

// fill appends up to max firings to dst in deterministic issue order:
// ascending node id, then tag key, then port — the same total order the
// retired global sort produced. Buckets that drain leave the active
// list; a bucket cut short by the processor bound keeps its remainder
// (still sorted) for the next cycle.
func (q *readyQueue) fill(dst []firing, max int) []firing {
	taken, w := 0, 0
	for r := 0; r < len(q.active); r++ {
		node := q.active[r]
		b := &q.buckets[node]
		if taken == max {
			q.active[w] = node
			w++
			continue
		}
		if b.dirty {
			sortFirings(b.items[b.head:], q.tt)
			b.dirty = false
		}
		take := len(b.items) - b.head
		if take > max-taken {
			take = max - taken
		}
		dst = append(dst, b.items[b.head:b.head+take]...)
		b.head += take
		taken += take
		if b.head == len(b.items) {
			b.items = b.items[:0]
			b.head = 0
		} else {
			q.active[w] = node
			w++
		}
	}
	q.active = q.active[:w]
	q.count -= taken
	return dst
}

// takePlanned consumes firings according to a selection plan — per-node
// (node, take) entries in ascending node order, a subsequence of the
// active list — invoking fn(f, base+j) for the j-th firing taken from
// each planned bucket. It mirrors fill's bookkeeping exactly
// (sort-on-dirty, head advance, active-list compaction) but leaves the
// global issue index to the plan, which the sharded machine computed by
// merging all shards' active lists (see shard.go).
func (q *readyQueue) takePlanned(plan []planEntry, fn func(f *firing, gi int)) {
	taken, w, p := 0, 0, 0
	for r := 0; r < len(q.active); r++ {
		node := q.active[r]
		if p == len(plan) || plan[p].node != node {
			q.active[w] = node
			w++
			continue
		}
		b := &q.buckets[node]
		if b.dirty {
			sortFirings(b.items[b.head:], q.tt)
			b.dirty = false
		}
		take := plan[p].take
		for j := 0; j < take; j++ {
			fn(&b.items[b.head+j], plan[p].base+j)
		}
		b.head += take
		taken += take
		p++
		if b.head == len(b.items) {
			b.items = b.items[:0]
			b.head = 0
		} else {
			q.active[w] = node
			w++
		}
	}
	q.active = q.active[:w]
	q.count -= taken
}

// sortFirings orders one bucket's pending range by (tag key, port); the
// node is constant within a bucket.
func sortFirings(fs []firing, tt *tagTable) {
	if len(fs) < 2 {
		return
	}
	sort.Slice(fs, func(i, j int) bool {
		if ak, bk := tt.keys[fs[i].tgID], tt.keys[fs[j].tgID]; ak != bk {
			return ak < bk
		}
		return fs[i].port < fs[j].port
	})
}

// --- matching-store shards --------------------------------------------

// shardSlot is one node's shard of the matching store. The common case —
// at most one pending tag per node at a time — lives in the inline slot;
// nodes with tag-parallel activations (overlapping loop iterations)
// spill to the overflow map, allocated only then.
type shardSlot struct {
	e    *matchEntry
	tgID int32
	more map[int32]*matchEntry
}

// matchLookup finds the pending entry for (node, tgID), or nil.
func (m *sim) matchLookup(node int, tgID int32) *matchEntry {
	s := &m.shards[node]
	if s.e != nil && s.tgID == tgID {
		return s.e
	}
	if s.more != nil {
		return s.more[tgID]
	}
	return nil
}

// matchInsert records a new pending entry for (node, tgID), charged to
// the owning shard's population count.
func (m *sim) matchInsert(sh *shardState, node int, tgID int32, e *matchEntry) {
	s := &m.shards[node]
	if s.e == nil {
		s.e, s.tgID = e, tgID
		sh.matchCount++
		return
	}
	if s.more == nil {
		s.more = map[int32]*matchEntry{}
	}
	s.more[tgID] = e
	sh.matchCount++
}

// matchDelete removes the completed entry for (node, tgID).
func (m *sim) matchDelete(sh *shardState, node int, tgID int32) {
	s := &m.shards[node]
	if s.e != nil && s.tgID == tgID {
		s.e = nil
	} else {
		delete(s.more, tgID)
	}
	sh.matchCount--
}

// --- free lists and arenas --------------------------------------------

// Free lists recycle steady-state churn; chunked arenas amortize the
// warmup growth (Go allocations) that remains, carving many small
// objects out of one allocation. They live on the shardState so every
// shard recycles privately — no cross-shard sharing, no locks; the
// sequential engine uses shard 0's lists for everything.

// getEntry returns a blank match entry with an operand slice of length n.
func (sh *shardState) getEntry(n int) *matchEntry {
	var e *matchEntry
	if k := len(sh.entryFree); k > 0 {
		e = sh.entryFree[k-1]
		sh.entryFree = sh.entryFree[:k-1]
		*e = matchEntry{}
	} else {
		if len(sh.entryArena) == 0 {
			sh.entryArena = make([]matchEntry, 64)
		}
		e = &sh.entryArena[0]
		sh.entryArena = sh.entryArena[1:]
	}
	e.vals = sh.getVals(n)
	return e
}

// putEntry recycles a completed entry; its operand slice and journal
// deps have moved onto the firing that consumed the match.
func (sh *shardState) putEntry(e *matchEntry) {
	e.vals = nil
	e.deps = nil
	sh.entryFree = append(sh.entryFree, e)
}

// getVals returns an operand slice of exactly length n. Slices are not
// zeroed: every port is overwritten before it is read (an activation
// fires only once all its operands arrived).
func (sh *shardState) getVals(n int) []int64 {
	if n < len(sh.valsFree) {
		if k := len(sh.valsFree[n]); k > 0 {
			v := sh.valsFree[n][k-1]
			sh.valsFree[n] = sh.valsFree[n][:k-1]
			return v
		}
	}
	if len(sh.valsArena) < n {
		size := 512
		if n > size {
			size = n
		}
		sh.valsArena = make([]int64, size)
	}
	v := sh.valsArena[:n:n]
	sh.valsArena = sh.valsArena[n:]
	return v
}

// putVals recycles a fired activation's operand slice.
func (sh *shardState) putVals(v []int64) {
	if n := len(v); n > 0 && n < len(sh.valsFree) {
		sh.valsFree[n] = append(sh.valsFree[n], v)
	}
}

// parkSlice copies the emission buffer's tail into an arena-carved token
// slice for the in-flight queue. Tokens are plain old data, so spent
// chunks are noscan garbage reclaimed wholesale.
func (m *sim) parkSlice(pending []tok) []tok {
	n := len(pending)
	if len(m.tokArena) < n {
		size := 512
		if n > size {
			size = n
		}
		m.tokArena = make([]tok, size)
	}
	t := m.tokArena[:n:n]
	m.tokArena = m.tokArena[n:]
	copy(t, pending)
	return t
}
