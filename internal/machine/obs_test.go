package machine

import (
	"os"
	"strings"
	"testing"

	"ctdf/internal/obs"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// TestTraceGoldenByteCompatible pins the `-trace` output to the exact
// bytes the pre-obs inline formatter produced (the golden was captured
// from the seed implementation): migrating tracing onto obs.TraceSink
// must not change a single byte.
func TestTraceGoldenByteCompatible(t *testing.T) {
	want, err := os.ReadFile("testdata/trace_running_example_l4.golden")
	if err != nil {
		t.Fatal(err)
	}
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	var buf strings.Builder
	if _, err := Run(res.Graph, Config{MemLatency: 4, Trace: &buf}); err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("trace output diverged from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestCollectorCountersMatchStats cross-checks the obs counters against
// the machine's own aggregate statistics on the running example.
func TestCollectorCountersMatchStats(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	ring, err := obs.NewRingSink(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector(res.Graph, obs.Options{Sink: ring, CriticalPath: true})
	out, err := Run(res.Graph, Config{MemLatency: 4, Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	rep := col.Report(out.Stats.Cycles, out.Stats.Profile)
	if rep.Ops != int64(out.Stats.Ops) {
		t.Errorf("report ops %d != stats ops %d", rep.Ops, out.Stats.Ops)
	}
	if rep.MatchWaits != int64(out.Stats.Matches) {
		t.Errorf("report match waits %d != stats matches %d", rep.MatchWaits, out.Stats.Matches)
	}
	if rep.Cycles != out.Stats.Cycles {
		t.Errorf("report cycles %d != stats cycles %d", rep.Cycles, out.Stats.Cycles)
	}
	var consumed, emitted int64
	for _, ns := range rep.Nodes {
		consumed += ns.Consumed
		emitted += ns.Emitted
	}
	if consumed == 0 || emitted == 0 {
		t.Errorf("token counters empty: consumed %d emitted %d", consumed, emitted)
	}
	// Every token consumed was emitted by some node, except the initial
	// start tokens delivered at cycle 0.
	if consumed < emitted {
		t.Errorf("consumed %d < emitted %d: tokens out of thin air", consumed, emitted)
	}
	// The event stream carries one fire event per op and one wait event
	// per matching-store wait.
	fires, waits := 0, 0
	for _, e := range ring.Events() {
		switch e.Type {
		case obs.EvFire:
			fires++
		case obs.EvWait:
			waits++
		}
	}
	if fires != out.Stats.Ops {
		t.Errorf("stream has %d fire events, stats ops %d", fires, out.Stats.Ops)
	}
	if waits != out.Stats.Matches {
		t.Errorf("stream has %d wait events, stats matches %d", waits, out.Stats.Matches)
	}
	// Histogram mass equals profiled cycles.
	var histCycles int
	for _, bin := range rep.Histogram {
		histCycles += bin.Cycles
	}
	if histCycles != len(out.Stats.Profile) {
		t.Errorf("histogram covers %d cycles, profile has %d", histCycles, len(out.Stats.Profile))
	}
	if rep.CriticalPath == nil {
		t.Fatal("critical path missing")
	}
}

// TestCriticalPathProperties property-tests the critical path over the
// whole workload suite, several schemas, latencies, and processor
// counts:
//
//  1. critical path length <= total cycles (it is a lower bound);
//  2. with unlimited processors the two are EQUAL (the machine issues
//     every enabled op immediately, so its schedule is the ideal one);
//  3. with P processors, Brent's bound: cycles <= ceil(ops/P) + critpath.
//
// Note the naive converse bound "cycles <= critpath x P" is false (one
// processor and N independent ops has cycles ~ N with a tiny critical
// path), which is why the Brent form is the one asserted here and
// documented in OBSERVABILITY.md.
func TestCriticalPathProperties(t *testing.T) {
	schemas := []translate.Options{
		{Schema: translate.Schema1},
		{Schema: translate.Schema2},
		{Schema: translate.Schema2Opt},
	}
	for _, w := range workloads.All() {
		for _, opt := range schemas {
			res := translateWorkload(t, w, opt)
			for _, lat := range []int{1, 4} {
				for _, procs := range []int{0, 1, 3} {
					col := obs.NewCollector(res.Graph, obs.Options{CriticalPath: true})
					out, err := Run(res.Graph, Config{MemLatency: lat, Processors: procs, Collector: col})
					if err != nil {
						t.Fatalf("%s/%v lat=%d P=%d: %v", w.Name, opt.Schema, lat, procs, err)
					}
					rep := col.Report(out.Stats.Cycles, out.Stats.Profile)
					cp := rep.CriticalPath
					if cp == nil {
						t.Fatalf("%s/%v: no critical path", w.Name, opt.Schema)
					}
					cycles := int64(out.Stats.Cycles)
					if cp.Length > cycles {
						t.Errorf("%s/%v lat=%d P=%d: critpath %d > cycles %d",
							w.Name, opt.Schema, lat, procs, cp.Length, cycles)
					}
					if procs == 0 && cp.Length != cycles {
						t.Errorf("%s/%v lat=%d P=0: critpath %d != cycles %d (should be exact)",
							w.Name, opt.Schema, lat, cp.Length, cycles)
					}
					if procs > 0 {
						ops := int64(out.Stats.Ops)
						brent := (ops+int64(procs)-1)/int64(procs) + cp.Length
						if cycles > brent {
							t.Errorf("%s/%v lat=%d P=%d: cycles %d > ceil(ops/P)+critpath = %d (ops %d, critpath %d)",
								w.Name, opt.Schema, lat, procs, cycles, brent, ops, cp.Length)
						}
					}
					// The chain must end at the end node and be internally
					// consistent: finishes nondecreasing, last = length.
					if n := len(cp.Steps); n > 0 {
						if cp.Steps[n-1].Kind != "end" {
							t.Errorf("%s/%v: critical path ends at %q, want end", w.Name, opt.Schema, cp.Steps[n-1].Kind)
						}
						if cp.Steps[n-1].Finish != cp.Length {
							t.Errorf("%s/%v: last finish %d != length %d", w.Name, opt.Schema, cp.Steps[n-1].Finish, cp.Length)
						}
						for i := 1; i < n; i++ {
							if cp.Steps[i].Finish < cp.Steps[i-1].Finish {
								t.Errorf("%s/%v: finish not monotone at step %d", w.Name, opt.Schema, i)
							}
						}
					}
				}
			}
		}
	}
}

// TestCollectorDisabledIdenticalRun makes sure attaching a collector
// does not perturb execution: cycles, ops, and the final store are
// identical with observability on and off.
func TestCollectorDisabledIdenticalRun(t *testing.T) {
	for _, w := range workloads.All() {
		res := translateWorkload(t, w, translate.Options{Schema: translate.Schema2})
		plain, err := Run(res.Graph, Config{MemLatency: 2})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		ring, err := obs.NewRingSink(64)
		if err != nil {
			t.Fatal(err)
		}
		col := obs.NewCollector(res.Graph, obs.Options{Sink: ring, CriticalPath: true})
		observed, err := Run(res.Graph, Config{MemLatency: 2, Collector: col})
		if err != nil {
			t.Fatalf("%s observed: %v", w.Name, err)
		}
		if plain.Stats.Cycles != observed.Stats.Cycles || plain.Stats.Ops != observed.Stats.Ops {
			t.Errorf("%s: observation changed execution: cycles %d vs %d, ops %d vs %d",
				w.Name, plain.Stats.Cycles, observed.Stats.Cycles, plain.Stats.Ops, observed.Stats.Ops)
		}
		if plain.Store.Snapshot() != observed.Store.Snapshot() {
			t.Errorf("%s: observation changed the final store", w.Name)
		}
	}
}
