package machine

import (
	"fmt"
	"sort"

	"ctdf/internal/dfg"
	"ctdf/internal/machcheck"
)

// istructUnit implements I-structure memory (§6.3): each cell is written
// at most once; a read of an empty cell is deferred inside the memory and
// satisfied the moment the write arrives. Cell contents live in the
// ordinary store (so final-state snapshots see them); the unit tracks
// presence bits and deferred readers.
type istructUnit struct {
	full     map[string][]bool
	deferred map[string]map[int64][]istructWaiter
}

type istructWaiter struct {
	node int
	// tgID is the deferred read's interned tag id, carried so the
	// satisfying write can emit the result in the reader's context.
	tgID int32
	// dep is the deferred read's own firing id in the collector's firing
	// DAG (-1 when not recording).
	dep int32
}

// newIStructUnit prepares presence bits for every array read or written
// through I-structure operators in g.
func newIStructUnit(g *dfg.Graph) *istructUnit {
	u := &istructUnit{full: map[string][]bool{}, deferred: map[string]map[int64][]istructWaiter{}}
	for _, n := range g.Nodes {
		if n.Kind == dfg.ILoad || n.Kind == dfg.IStore {
			if _, ok := u.full[n.Var]; !ok {
				u.full[n.Var] = make([]bool, g.Prog.ArraySize(n.Var))
				u.deferred[n.Var] = map[int64][]istructWaiter{}
			}
		}
	}
	return u
}

func (u *istructUnit) checkIndex(name string, idx int64) error {
	if idx < 0 || idx >= int64(len(u.full[name])) {
		return machcheck.Newf(machcheck.OperatorFault, "machine",
			"I-structure index %d out of range for %s[%d]", idx, name, len(u.full[name]))
	}
	return nil
}

// write fills a cell, returning the deferred readers to satisfy; a second
// write to the same cell is a write-once violation.
func (u *istructUnit) write(name string, idx int64) ([]istructWaiter, error) {
	if err := u.checkIndex(name, idx); err != nil {
		return nil, err
	}
	if u.full[name][idx] {
		return nil, machcheck.Newf(machcheck.OperatorFault, "machine",
			"I-structure write-once violation: %s[%d] written twice", name, idx)
	}
	u.full[name][idx] = true
	ws := u.deferred[name][idx]
	delete(u.deferred[name], idx)
	return ws, nil
}

// read reports whether the cell is full; if not, the reader is deferred.
func (u *istructUnit) read(name string, idx int64, w istructWaiter) (bool, error) {
	if err := u.checkIndex(name, idx); err != nil {
		return false, err
	}
	if u.full[name][idx] {
		return true, nil
	}
	u.deferred[name][idx] = append(u.deferred[name][idx], w)
	return false, nil
}

// pendingError describes deferred reads that were never satisfied.
func (u *istructUnit) pendingError() error {
	var stuck []string
	for name, cells := range u.deferred {
		for idx, ws := range cells {
			if len(ws) > 0 {
				stuck = append(stuck, fmt.Sprintf("%s[%d] (%d readers)", name, idx, len(ws)))
			}
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	sort.Strings(stuck)
	return machcheck.Newf(machcheck.Deadlock, "machine",
		"I-structure reads of never-written cells: %v", stuck)
}
