package machine

import (
	"fmt"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// BenchmarkShardedWide measures the sharded engine against the
// sequential one on the worker-scaling workload shape (see SCALING.md
// and the `ctdf bench -cpu` matrix): wide independent lanes, pure
// firings, sustained issue width. w1 is the sequential engine.
func BenchmarkShardedWide(b *testing.B) {
	w := workloads.Wide(64, 60)
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{
		Schema: translate.Schema2Opt, EliminateMemory: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(res.Graph, Config{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
