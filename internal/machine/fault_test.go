package machine

import (
	"errors"
	"testing"

	"ctdf/internal/fault"
	"ctdf/internal/machcheck"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// countSites runs w once with a counting-pass injector and returns the
// number of eligible injection sites for class, plus the clean run's
// final store snapshot and op count for oracle comparison.
func countSites(t *testing.T, res *translate.Result, class fault.Class) (int64, string, int) {
	t.Helper()
	in := fault.NewInjector(fault.Plan{Class: class, Site: 0})
	out, err := Run(res.Graph, Config{Inject: in})
	if err != nil {
		t.Fatalf("counting pass failed: %v", err)
	}
	if in.Injected() {
		t.Fatal("counting pass injected a fault")
	}
	return in.Sites(), out.Store.Snapshot(), out.Stats.Ops
}

// faultSites picks a spread of sites to exercise without iterating huge
// site counts: first, last, and a few in between.
func faultSites(n int64) []int64 {
	if n <= 6 {
		sites := make([]int64, 0, n)
		for s := int64(1); s <= n; s++ {
			sites = append(sites, s)
		}
		return sites
	}
	return []int64{1, 2, n / 3, n / 2, n - 1, n}
}

func TestMachineDetectsInjectedFaults(t *testing.T) {
	res := translateWorkload(t, workloads.MustByName("array-sum"), translate.Options{})
	for _, class := range []fault.Class{
		fault.DropToken, fault.DupToken, fault.CorruptTag, fault.LoseMemResponse,
	} {
		sites, _, _ := countSites(t, res, class)
		if sites == 0 {
			t.Fatalf("%s: no eligible sites in array-sum", class)
		}
		for _, site := range faultSites(sites) {
			in := fault.NewInjector(fault.Plan{Class: class, Site: site})
			out, err := Run(res.Graph, Config{Inject: in})
			if !in.Injected() {
				t.Fatalf("%s site %d/%d: fault did not fire", class, site, sites)
			}
			if err == nil {
				t.Errorf("%s site %d/%d: fault went undetected", class, site, sites)
				continue
			}
			check, ok := machcheck.Of(err)
			if !ok {
				t.Errorf("%s site %d: untyped error %v", class, site, err)
			} else if check == "" {
				t.Errorf("%s site %d: empty check name", class, site)
			}
			if out == nil {
				t.Errorf("%s site %d: no partial outcome alongside %v", class, site, err)
			}
		}
	}
}

func TestMachineToleratesDelayedMemResponse(t *testing.T) {
	// delay-mem-response is the determinacy negative control: a delayed
	// split-phase response must not change the result.
	res := translateWorkload(t, workloads.MustByName("array-sum"), translate.Options{})
	sites, cleanSnap, cleanOps := countSites(t, res, fault.DelayMemResponse)
	if sites == 0 {
		t.Fatal("no mem-response sites in array-sum")
	}
	for _, site := range faultSites(sites) {
		in := fault.NewInjector(fault.Plan{Class: fault.DelayMemResponse, Site: site})
		out, err := Run(res.Graph, Config{Inject: in})
		if err != nil {
			t.Fatalf("delay site %d/%d: run aborted: %v", site, sites, err)
		}
		if !in.Injected() {
			t.Fatalf("delay site %d/%d: fault did not fire", site, sites)
		}
		if got := out.Store.Snapshot(); got != cleanSnap {
			t.Errorf("delay site %d: store diverged from the oracle\n got: %s\nwant: %s", site, got, cleanSnap)
		}
		if out.Stats.Ops != cleanOps {
			t.Errorf("delay site %d: ops = %d, clean run had %d", site, out.Stats.Ops, cleanOps)
		}
	}
}

func TestMachineMisfireDetectedByCheckOrOracle(t *testing.T) {
	res := translateWorkload(t, workloads.MustByName("array-sum"), translate.Options{})
	sites, cleanSnap, cleanOps := countSites(t, res, fault.MisfireValue)
	if sites == 0 {
		t.Fatal("no binop sites in array-sum")
	}
	for _, site := range faultSites(sites) {
		in := fault.NewInjector(fault.Plan{Class: fault.MisfireValue, Site: site})
		out, err := Run(res.Graph, Config{Inject: in, MaxCycles: 100000})
		if !in.Injected() {
			t.Fatalf("misfire site %d/%d: fault did not fire", site, sites)
		}
		if err == nil && out.Store.Snapshot() == cleanSnap && out.Stats.Ops == cleanOps {
			t.Errorf("misfire site %d/%d: corrupted predicate escaped checks, oracle, and op counts", site, sites)
		}
	}
}

func TestMachineDeadlineAborts(t *testing.T) {
	res := translateWorkload(t, workloads.MustByName("nested-loops"), translate.Options{})
	out, err := Run(res.Graph, Config{Deadline: 1}) // 1ns: expires immediately
	if !errors.Is(err, machcheck.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if out == nil {
		t.Error("deadline abort returned no partial outcome")
	}
}

func TestMachineMaxOpsAborts(t *testing.T) {
	res := translateWorkload(t, workloads.MustByName("nested-loops"), translate.Options{})
	out, err := Run(res.Graph, Config{MaxOps: 8})
	if !errors.Is(err, machcheck.ErrCyclesExceeded) {
		t.Fatalf("err = %v, want ErrCyclesExceeded", err)
	}
	if out == nil || out.Stats.Ops > 8 {
		t.Errorf("partial outcome missing or over budget: %+v", out)
	}
}
