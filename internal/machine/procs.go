package machine

import (
	"ctdf/internal/dfg"
	"ctdf/internal/machcheck"
	"ctdf/internal/token"
)

// Procedure linkage (separate compilation): every firing of an Apply node
// allocates an activation — a fresh tag frame plus a binding of the
// callee's formals to resolved storage names — and sends the callee's
// tokens into its shared body. The callee's ProcReturn pops the frame and
// signals the calling Apply's return ports. This realizes §2.2's "each
// invocation of a procedure ... gets an activation context" on the shared
// once-compiled body, so concurrent activations of one procedure overlap
// freely (their tags differ).

// activation is one dynamic procedure call in flight.
type activation struct {
	info *dfg.CallInfo
	// callerTgID is the calling tag's interned id, kept so the return
	// emits in the caller's context without re-interning.
	callerTgID int32
	// resolved maps each formal to the storage name it denotes during this
	// activation (fully resolved through the caller's own activation).
	resolved map[string]string
}

// procLinkage is the per-run activation registry.
type procLinkage struct {
	byApply map[int]*dfg.CallInfo
	live    map[int]*activation
	nextID  int
}

func newProcLinkage(g *dfg.Graph) *procLinkage {
	if len(g.Calls) == 0 {
		return nil
	}
	l := &procLinkage{byApply: map[int]*dfg.CallInfo{}, live: map[int]*activation{}}
	for i := range g.Calls {
		l.byApply[g.Calls[i].Apply] = &g.Calls[i]
	}
	return l
}

// resolveName maps a variable name to the storage it denotes under the
// given tag: formals resolve through the innermost activation's binding;
// globals are themselves.
func (m *sim) resolveName(name string, tg token.Tag) string {
	if m.procs == nil {
		return name
	}
	act := tg.Activation()
	if act < 0 {
		return name
	}
	rec := m.procs.live[act]
	if rec == nil {
		return name
	}
	if r, ok := rec.resolved[name]; ok {
		return r
	}
	return name
}

// fireApply allocates an activation and sends the callee's entry tokens.
func (m *sim) fireApply(f *firing) error {
	info := m.procs.byApply[f.node]
	if info == nil {
		return machcheck.Newf(machcheck.OperatorFault, "machine",
			"apply d%d has no call linkage", f.node)
	}
	id := m.procs.nextID
	m.procs.nextID++
	tg := m.tags.tag(f.tgID)
	rec := &activation{info: info, callerTgID: f.tgID, resolved: map[string]string{}}
	for formal, actual := range info.Bindings {
		rec.resolved[formal] = m.resolveName(actual, tg)
	}
	m.procs.live[id] = rec
	ntID := m.tags.intern(tg.PushCall(id))
	for j := range info.Params {
		m.emitAll(f.node, len(info.InTokens)+j, 0, ntID)
	}
	return nil
}

// fireProcReturn closes the activation and signals the calling Apply's
// return ports in the caller's context.
func (m *sim) fireProcReturn(f *firing) error {
	_, id, err := m.tags.tag(f.tgID).PopCall()
	if err != nil {
		return machcheck.Newf(machcheck.TagViolation, "machine",
			"%s: %v", m.g.Nodes[f.node], err)
	}
	rec := m.procs.live[id]
	if rec == nil {
		return machcheck.Newf(machcheck.TagViolation, "machine",
			"return for unknown activation %d", id)
	}
	delete(m.procs.live, id)
	for p := 0; p < len(rec.info.InTokens); p++ {
		m.emitAll(rec.info.Apply, p, 0, rec.callerTgID)
	}
	return nil
}
