package machine

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/obs"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// The committed goldens in testdata/goldens.json were generated from the
// pre-overhaul engine (the per-cycle sort.Slice scheduler and the
// string-keyed monolithic matching store). Every subsequent change to the
// machine's hot path must reproduce them exactly: final snapshot, cycle
// count, op counts, matching statistics, and the per-node firing vector.
// Regenerate with: go test ./internal/machine -run TestMachineGoldens -update
var updateGoldens = flag.Bool("update", false, "rewrite testdata/goldens.json from the current engine")

// goldenConfig is one machine configuration the goldens pin down.
type goldenConfig struct {
	Name       string
	Opt        translate.Options
	Processors int
	MemLatency int
}

func goldenConfigs() []goldenConfig {
	return []goldenConfig{
		{Name: "schema1-p0-l4", Opt: translate.Options{Schema: translate.Schema1}, MemLatency: 4},
		{Name: "schema2-p0-l4", Opt: translate.Options{Schema: translate.Schema2}, MemLatency: 4},
		{Name: "schema2opt-p0-l1", Opt: translate.Options{Schema: translate.Schema2Opt}, MemLatency: 1},
		{Name: "schema2opt-p3-l4", Opt: translate.Options{Schema: translate.Schema2Opt}, Processors: 3, MemLatency: 4},
		{Name: "memelim-p0-l1", Opt: translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true}, MemLatency: 1},
		{Name: "memelim-p2-l3", Opt: translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true}, Processors: 2, MemLatency: 3},
	}
}

// goldenCell is the recorded outcome of one workload × config run.
type goldenCell struct {
	Snapshot       string  `json:"snapshot"`
	Cycles         int     `json:"cycles"`
	Ops            int     `json:"ops"`
	MemOps         int     `json:"mem_ops"`
	Matches        int     `json:"matches"`
	MaxParallelism int     `json:"max_parallelism"`
	PeakMatchStore int     `json:"peak_match_store"`
	Firings        []int64 `json:"firings"`
}

func goldenRun(t *testing.T, w workloads.Workload, gc goldenConfig) goldenCell {
	t.Helper()
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, gc.Opt)
	if err != nil {
		t.Fatalf("%s/%s: translate: %v", w.Name, gc.Name, err)
	}
	col := obs.NewCollector(res.Graph, obs.Options{})
	out, err := Run(res.Graph, Config{Processors: gc.Processors, MemLatency: gc.MemLatency, Collector: col})
	if err != nil {
		t.Fatalf("%s/%s: run: %v", w.Name, gc.Name, err)
	}
	rep := col.Report(out.Stats.Cycles, nil)
	return goldenCell{
		Snapshot:       out.Store.Snapshot(),
		Cycles:         out.Stats.Cycles,
		Ops:            out.Stats.Ops,
		MemOps:         out.Stats.MemOps,
		Matches:        out.Stats.Matches,
		MaxParallelism: out.Stats.MaxParallelism,
		PeakMatchStore: out.Stats.PeakMatchStore,
		Firings:        rep.NodeFirings(),
	}
}

// TestMachineGoldens locks the machine to the committed pre-overhaul
// behavior on every workload × config cell: the scheduler and matching
// store may be rebuilt freely, but snapshots, op counts, cycle counts,
// and per-node firing vectors must not move.
func TestMachineGoldens(t *testing.T) {
	path := filepath.Join("testdata", "goldens.json")
	got := map[string]goldenCell{}
	for _, w := range workloads.All() {
		for _, gc := range goldenConfigs() {
			got[w.Name+"/"+gc.Name] = goldenRun(t, w, gc)
		}
	}
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		js, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(js, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cells to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing goldens (run with -update to generate): %v", err)
	}
	want := map[string]goldenCell{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden cell count: got %d, committed %d (run -update after adding workloads/configs)", len(got), len(want))
	}
	for key, wc := range want {
		gc, ok := got[key]
		if !ok {
			t.Errorf("%s: committed golden has no current run", key)
			continue
		}
		if diff := diffCell(wc, gc); diff != "" {
			t.Errorf("%s: engine diverged from committed golden:\n%s", key, diff)
		}
	}
}

// diffCell renders the first differences between a committed and a current
// cell ("" when identical).
func diffCell(want, got goldenCell) string {
	var out string
	cmp := func(field string, w, g any) {
		if fmt.Sprint(w) != fmt.Sprint(g) {
			out += fmt.Sprintf("  %s: committed %v, got %v\n", field, w, g)
		}
	}
	cmp("snapshot", want.Snapshot, got.Snapshot)
	cmp("cycles", want.Cycles, got.Cycles)
	cmp("ops", want.Ops, got.Ops)
	cmp("mem_ops", want.MemOps, got.MemOps)
	cmp("matches", want.Matches, got.Matches)
	cmp("max_parallelism", want.MaxParallelism, got.MaxParallelism)
	cmp("peak_match_store", want.PeakMatchStore, got.PeakMatchStore)
	if len(want.Firings) != len(got.Firings) {
		out += fmt.Sprintf("  firings: committed %d nodes, got %d\n", len(want.Firings), len(got.Firings))
		return out
	}
	for id := range want.Firings {
		if want.Firings[id] != got.Firings[id] {
			out += fmt.Sprintf("  firings[node %d]: committed %d, got %d\n", id, want.Firings[id], got.Firings[id])
		}
	}
	return out
}
