package machine

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/obs/telemetry"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// telemetryRun executes one workload with a fresh registry and returns
// the snapshot.
func telemetryRun(t *testing.T, w workloads.Workload, workers int) *telemetry.Snapshot {
	t.Helper()
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	reg := telemetry.NewRegistry()
	if _, err := Run(res.Graph, Config{MemLatency: 4, Workers: workers, Telemetry: reg}); err != nil {
		t.Fatalf("W=%d: %v", workers, err)
	}
	return reg.Snapshot()
}

// TestTelemetryInvariantAcrossWorkers pins the aggregation-determinism
// contract: the invariant projection of the registry — cycles, firings,
// tokens, matches, matching-store depth histogram and peak, checkpoint
// count — renders byte-identically at every worker count, because the
// simulated execution does and the per-shard scratch is folded into the
// registry in shard order at the sequential merge point. This is the
// telemetry companion to TestShardedObservablyIdentical.
func TestTelemetryInvariantAcrossWorkers(t *testing.T) {
	forceShardPool(t)
	cases := []workloads.Workload{
		workloads.MustByName("running-example"),
		workloads.MustByName("fib-iterative"),
		workloads.Wide(64, 10),
		workloads.Random(7, 40, 3),
	}
	for _, w := range cases {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			base := telemetryRun(t, w, 1).Invariant().OpenMetrics()
			if len(base) == 0 || !bytes.HasSuffix(base, []byte("# EOF\n")) {
				t.Fatalf("sequential invariant exposition malformed:\n%s", base)
			}
			for _, workers := range []int{2, 4, 8} {
				got := telemetryRun(t, w, workers).Invariant().OpenMetrics()
				if !bytes.Equal(base, got) {
					t.Errorf("W=%d invariant exposition diverged from sequential:\n--- W=1 ---\n%s\n--- W=%d ---\n%s",
						workers, base, workers, got)
				}
			}
		})
	}
}

// TestTelemetryStableDeterministic pins the fixed-topology contract:
// for one worker count, the stable projection (everything but wall
// time) — including the cross-shard traffic matrix, outbox/inbox
// occupancy histograms, and the fire/retire firing split — is
// byte-reproducible run over run.
func TestTelemetryStableDeterministic(t *testing.T) {
	forceShardPool(t)
	w := workloads.MustByName("running-example")
	base := telemetryRun(t, w, 3).Stable().OpenMetrics()
	for i := 0; i < 3; i++ {
		if got := telemetryRun(t, w, 3).Stable().OpenMetrics(); !bytes.Equal(base, got) {
			t.Fatalf("stable exposition not reproducible at fixed W:\n--- first ---\n%s\n--- rerun ---\n%s", base, got)
		}
	}
}

// TestTelemetryStableGolden pins the stable exposition of the running
// example at W=3 byte-for-byte, so any change to the engine's token
// routing, occupancy, or the renderer shows up as a reviewable diff.
func TestTelemetryStableGolden(t *testing.T) {
	forceShardPool(t)
	got := telemetryRun(t, workloads.MustByName("running-example"), 3).Stable().OpenMetrics()
	path := filepath.Join("testdata", "telemetry_running_example_w3.om")
	if *updateGoldens {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (rerun with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stable telemetry exposition diverged from committed golden %s; rerun with -update if intended\n--- got ---\n%s", path, got)
	}
}

// TestTelemetryBreakdownConsistency checks the profiler's arithmetic on
// a sharded run: the fire/retire split sums to total firings, every
// traffic row sums to the tokens the matrix attributes to its source,
// and the phase table renders the per-shard rows.
func TestTelemetryBreakdownConsistency(t *testing.T) {
	forceShardPool(t)
	snap := telemetryRun(t, workloads.MustByName("fib-iterative"), 4)
	b := snap.MachineBreakdown()
	if b.Workers != 4 {
		t.Fatalf("workers = %d, want 4", b.Workers)
	}
	if b.FireFirings+b.RetireFirings != b.Firings {
		t.Errorf("fire %d + retire %d != firings %d", b.FireFirings, b.RetireFirings, b.Firings)
	}
	if b.Cycles == 0 || b.Tokens == 0 || b.Matches == 0 {
		t.Errorf("empty counters: %+v", b)
	}
	if b.RemoteTokens == 0 {
		t.Error("no cross-shard traffic recorded on a 4-way sharded run")
	}
	var matrix int64
	for _, c := range b.Traffic {
		matrix += c.Tokens
	}
	if matrix != b.ShardTokens+b.SeqTokens+b.MemTokens {
		t.Errorf("traffic matrix sum %d != shard %d + seq %d + mem %d",
			matrix, b.ShardTokens, b.SeqTokens, b.MemTokens)
	}
	table := snap.PhaseTable()
	for _, want := range []string{"select", "fire", "retire", "deliver", "barrier", "cross-shard traffic"} {
		if !bytes.Contains([]byte(table), []byte(want)) {
			t.Errorf("phase table missing %q:\n%s", want, table)
		}
	}
}
