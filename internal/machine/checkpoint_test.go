package machine

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/fault"
	"ctdf/internal/machcheck"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// ckCell is the full observable outcome a resumed run must reproduce
// byte-for-byte: snapshot, end values, and every statistic including
// the per-cycle parallelism profile.
type ckCell struct {
	snapshot string
	endVals  []int64
	stats    Stats
}

func cellOf(out *Outcome) ckCell {
	return ckCell{snapshot: out.Store.Snapshot(), endVals: append([]int64(nil), out.EndValues...), stats: out.Stats}
}

func (c ckCell) equal(o ckCell) bool {
	return c.snapshot == o.snapshot &&
		reflect.DeepEqual(c.endVals, o.endVals) &&
		reflect.DeepEqual(c.stats, o.stats)
}

// checkpointWorkloads spans the state a checkpoint must carry: loops
// (tag stacks), split-phase memory backlogs, I-structures (via the
// memelim config), and live procedure activations.
var checkpointWorkloads = []string{
	"running-example", "fib-iterative", "array-sum", "nested-loops", "proc-in-loop",
}

type ckConfig struct {
	name string
	opt  translate.Options
	pr   int
	lat  int
}

func checkpointConfigs() []ckConfig {
	return []ckConfig{
		{name: "schema2opt-p3-l4", opt: translate.Options{Schema: translate.Schema2Opt}, pr: 3, lat: 4},
		{name: "memelim-p2-l3", opt: translate.Options{Schema: translate.Schema2Opt, EliminateMemory: true}, pr: 2, lat: 3},
	}
}

func buildGraph(t *testing.T, wname string, opt translate.Options) *translate.Result {
	t.Helper()
	w := workloads.MustByName(wname)
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, opt)
	if err != nil {
		t.Fatalf("%s: translate: %v", wname, err)
	}
	return res
}

// sampleCheckpoints bounds the resume matrix: all checkpoints when few,
// otherwise an even stride that always keeps the first and last.
func sampleCheckpoints(cks []*Checkpoint, max int) []*Checkpoint {
	if len(cks) <= max {
		return cks
	}
	out := make([]*Checkpoint, 0, max)
	stride := (len(cks) - 1) / (max - 1)
	for i := 0; i < len(cks)-1; i += stride {
		out = append(out, cks[i])
		if len(out) == max-1 {
			break
		}
	}
	return append(out, cks[len(cks)-1])
}

// roundTrip forces every captured checkpoint through the serialized
// form, so the resume matrix also proves the on-disk format is lossless.
func roundTrip(t *testing.T, ck *Checkpoint) *Checkpoint {
	t.Helper()
	b, err := ck.Encode()
	if err != nil {
		t.Fatalf("encode checkpoint %d: %v", ck.ID, err)
	}
	dec, err := DecodeCheckpoint(b)
	if err != nil {
		t.Fatalf("decode checkpoint %d: %v", ck.ID, err)
	}
	return dec
}

// TestCheckpointRestoreResumesByteIdentical is the tentpole property
// test: across workloads × configs, a run that checkpoints every few
// cycles (1) produces the same outcome as one that doesn't, and (2)
// restoring at EVERY sampled checkpoint — serialized and deserialized,
// at worker counts 1 and 4, from snapshots captured at worker counts 1
// and 4 — resumes to the byte-identical final outcome: snapshot, end
// values, and full statistics including the parallelism profile.
func TestCheckpointRestoreResumesByteIdentical(t *testing.T) {
	forceShardPool(t)
	for _, wname := range checkpointWorkloads {
		for _, cc := range checkpointConfigs() {
			wname, cc := wname, cc
			t.Run(wname+"/"+cc.name, func(t *testing.T) {
				res := buildGraph(t, wname, cc.opt)
				base, err := Run(res.Graph, Config{Processors: cc.pr, MemLatency: cc.lat})
				if err != nil {
					t.Fatalf("baseline: %v", err)
				}
				want := cellOf(base)
				for _, capW := range []int{1, 4} {
					var cks []*Checkpoint
					res := buildGraph(t, wname, cc.opt)
					out, err := Run(res.Graph, Config{
						Processors: cc.pr, MemLatency: cc.lat, Workers: capW,
						CheckpointEvery: 7,
						CheckpointSink: func(ck *Checkpoint) error {
							cks = append(cks, roundTrip(t, ck))
							return nil
						},
					})
					if err != nil {
						t.Fatalf("capW=%d: checkpointed run: %v", capW, err)
					}
					if !cellOf(out).equal(want) {
						t.Fatalf("capW=%d: checkpointing perturbed the run", capW)
					}
					if len(cks) == 0 {
						t.Fatalf("capW=%d: run took no checkpoints (too short for interval 7?)", capW)
					}
					if out.Checkpoint == nil || out.Checkpoint.ID != cks[len(cks)-1].ID {
						t.Fatalf("capW=%d: outcome does not reference the last checkpoint", capW)
					}
					for _, ck := range sampleCheckpoints(cks, 8) {
						for _, resW := range []int{1, 4} {
							res := buildGraph(t, wname, cc.opt)
							got, err := Run(res.Graph, Config{
								Processors: cc.pr, MemLatency: cc.lat, Workers: resW, Resume: ck,
							})
							if err != nil {
								t.Fatalf("capW=%d ck=%d resW=%d: resume: %v", capW, ck.ID, resW, err)
							}
							if !cellOf(got).equal(want) {
								t.Errorf("capW=%d ck=%d (cycle %d) resW=%d: resumed outcome diverged\nwant %+v\ngot  %+v",
									capW, ck.ID, ck.Cycle, resW, want, cellOf(got))
							}
						}
					}
				}
			})
		}
	}
}

// TestCheckpointFileRoundTrip pins the on-disk format: a checkpoint
// written to disk and read back resumes to the identical outcome.
func TestCheckpointFileRoundTrip(t *testing.T) {
	res := buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
	base, err := Run(res.Graph, Config{MemLatency: 4})
	if err != nil {
		t.Fatal(err)
	}
	var last *Checkpoint
	res = buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
	if _, err := Run(res.Graph, Config{MemLatency: 4, CheckpointEvery: 11,
		CheckpointSink: func(ck *Checkpoint) error { last = ck; return nil }}); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint taken")
	}
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := last.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res = buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
	got, err := Run(res.Graph, Config{MemLatency: 4, Resume: loaded})
	if err != nil {
		t.Fatal(err)
	}
	if !cellOf(got).equal(cellOf(base)) {
		t.Error("resume from on-disk checkpoint diverged from the baseline run")
	}
}

// TestCheckpointSeededRandomResume checks the RNG fast-forward: in
// seeded-random issue mode a resumed run must replay the exact schedule
// the original explored, at the worker count that took the snapshot;
// restoring a seeded snapshot at a different worker count is rejected.
func TestCheckpointSeededRandomResume(t *testing.T) {
	forceShardPool(t)
	const seed = 12345
	for _, w := range []int{1, 4} {
		res := buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
		base, err := Run(res.Graph, Config{MemLatency: 2, RandomSeed: seed, Workers: w})
		if err != nil {
			t.Fatalf("W=%d baseline: %v", w, err)
		}
		var cks []*Checkpoint
		res = buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
		out, err := Run(res.Graph, Config{MemLatency: 2, RandomSeed: seed, Workers: w, CheckpointEvery: 5,
			CheckpointSink: func(ck *Checkpoint) error { cks = append(cks, roundTrip(t, ck)); return nil }})
		if err != nil {
			t.Fatalf("W=%d checkpointed: %v", w, err)
		}
		if !cellOf(out).equal(cellOf(base)) {
			t.Fatalf("W=%d: checkpointing perturbed the seeded run", w)
		}
		if len(cks) == 0 {
			t.Fatalf("W=%d: no checkpoints", w)
		}
		for _, ck := range sampleCheckpoints(cks, 5) {
			res := buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
			got, err := Run(res.Graph, Config{MemLatency: 2, RandomSeed: seed, Workers: w, Resume: ck})
			if err != nil {
				t.Fatalf("W=%d ck=%d: resume: %v", w, ck.ID, err)
			}
			if !cellOf(got).equal(cellOf(base)) {
				t.Errorf("W=%d ck=%d (cycle %d): seeded resume diverged", w, ck.ID, ck.Cycle)
			}
		}
		// Cross-worker seeded restore must be rejected, not silently wrong.
		otherW := 4
		if w == 4 {
			otherW = 1
		}
		res = buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
		if _, err := Run(res.Graph, Config{MemLatency: 2, RandomSeed: seed, Workers: otherW, Resume: cks[0]}); !errors.Is(err, machcheck.ErrInvalidConfig) {
			t.Errorf("W=%d snapshot restored at W=%d: got %v, want InvalidConfig", w, otherW, err)
		}
	}
}

// TestCheckpointsAreAlwaysPreFault pins the taint rule: once an armed
// injector fires, no further checkpoints are taken, so restoring the
// last checkpoint of a faulted run always restores clean state — the
// resumed run (without the injector) completes with the fault-free
// outcome.
func TestCheckpointsAreAlwaysPreFault(t *testing.T) {
	res := buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
	clean, err := Run(res.Graph, Config{MemLatency: 2})
	if err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(fault.Plan{Class: fault.DropToken, Site: 0})
	res = buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
	if _, err := Run(res.Graph, Config{MemLatency: 2, Inject: in}); err != nil {
		t.Fatalf("counting pass: %v", err)
	}
	sites := in.Sites()
	if sites == 0 {
		t.Fatal("no drop-token sites")
	}
	for _, site := range []int64{sites / 2, sites} {
		if site == 0 {
			continue
		}
		var cks []*Checkpoint
		in := fault.NewInjector(fault.Plan{Class: fault.DropToken, Site: site})
		res := buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
		out, err := Run(res.Graph, Config{MemLatency: 2, Inject: in, CheckpointEvery: 2,
			CheckpointSink: func(ck *Checkpoint) error { cks = append(cks, ck); return nil }})
		if !in.Injected() {
			t.Fatalf("site %d: fault did not fire", site)
		}
		if err == nil {
			t.Fatalf("site %d: dropped token went undetected", site)
		}
		if len(cks) == 0 {
			// The fault fired before the first interval elapsed; nothing
			// to restore — the supervisor falls back to a scratch retry.
			continue
		}
		if out == nil || out.Checkpoint == nil || out.Checkpoint.ID != cks[len(cks)-1].ID {
			t.Fatalf("site %d: aborted outcome does not carry the last checkpoint", site)
		}
		res = buildGraph(t, "fib-iterative", translate.Options{Schema: translate.Schema2Opt})
		got, err := Run(res.Graph, Config{MemLatency: 2, Resume: cks[len(cks)-1]})
		if err != nil {
			t.Fatalf("site %d: resume from last pre-fault checkpoint: %v", site, err)
		}
		if !cellOf(got).equal(cellOf(clean)) {
			t.Errorf("site %d: resume from pre-fault checkpoint diverged from the clean run", site)
		}
	}
}

// TestCheckpointConfigValidation covers the rejected combinations and
// mismatched restores.
func TestCheckpointConfigValidation(t *testing.T) {
	res := buildGraph(t, "running-example", translate.Options{Schema: translate.Schema2Opt})
	if _, err := Run(res.Graph, Config{CheckpointEvery: -1}); !errors.Is(err, machcheck.ErrInvalidConfig) {
		t.Errorf("negative CheckpointEvery: %v", err)
	}
	if _, err := Run(res.Graph, Config{CheckpointEvery: 4, DetectRaces: true}); !errors.Is(err, machcheck.ErrInvalidConfig) {
		t.Errorf("CheckpointEvery with DetectRaces: %v", err)
	}
	var last *Checkpoint
	if _, err := Run(res.Graph, Config{CheckpointEvery: 2,
		CheckpointSink: func(ck *Checkpoint) error { last = ck; return nil }}); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("no checkpoint")
	}
	in := fault.NewInjector(fault.Plan{Class: fault.DropToken, Site: 1})
	if _, err := Run(res.Graph, Config{Resume: last, Inject: in}); !errors.Is(err, machcheck.ErrInvalidConfig) {
		t.Errorf("Resume with Inject: %v", err)
	}
	// A checkpoint must refuse to restore into a different graph.
	other := buildGraph(t, "gcd", translate.Options{Schema: translate.Schema2Opt})
	if _, err := Run(other.Graph, Config{Resume: last}); !errors.Is(err, machcheck.ErrInvalidConfig) {
		t.Errorf("restore into different graph: %v", err)
	}
}
