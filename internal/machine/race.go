package machine

import (
	"fmt"

	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/machcheck"
)

// raceDetector checks that no two memory operations on the same location
// overlap in time unless both are reads. A correct translation's access
// token discipline makes conflicts impossible; the detector turns a
// translation bug into a loud error instead of a silently wrong answer.
// Locations are canonicalized through the run's alias binding, so a
// conflict between two aliased names sharing storage is caught too.
type raceDetector struct {
	canon map[string]string
	// busy[loc] counts current readers; -1 marks a writer.
	busy map[string]int
}

func newRaceDetector(prog *lang.Program, b interp.Binding) *raceDetector {
	r := &raceDetector{canon: map[string]string{}, busy: map[string]int{}}
	for _, n := range prog.AllNames() {
		r.canon[n] = n
	}
	if b != nil {
		for n, c := range b {
			r.canon[n] = c
		}
	}
	return r
}

func (r *raceDetector) key(name string, idx int64) string {
	c := r.canon[name]
	if idx < 0 {
		return c
	}
	return fmt.Sprintf("%s[%d]", c, idx)
}

// acquire registers an operation on (name, idx); idx -1 means a scalar.
// It returns the release callback to invoke at the operation's completion,
// or an error describing the race.
func (r *raceDetector) acquire(name string, idx int64, write bool) (func(), error) {
	k := r.key(name, idx)
	cur := r.busy[k]
	switch {
	case cur == 0:
	case cur > 0 && !write:
		// Concurrent readers are fine (§6.2).
	case cur > 0 && write:
		return nil, machcheck.Newf(machcheck.Determinacy, "machine",
			"data race: write to %s overlaps %d in-flight read(s)", k, cur)
	default:
		return nil, machcheck.Newf(machcheck.Determinacy, "machine",
			"data race: access to %s overlaps an in-flight write", k)
	}
	if write {
		r.busy[k] = -1
		return func() { delete(r.busy, k) }, nil
	}
	r.busy[k] = cur + 1
	return func() {
		if r.busy[k] == 1 {
			delete(r.busy, k)
		} else {
			r.busy[k]--
		}
	}, nil
}
