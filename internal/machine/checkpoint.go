package machine

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"ctdf/internal/dfg"
	"ctdf/internal/machcheck"
	"ctdf/internal/token"
)

// Deterministic checkpoint/restore (see ROBUSTNESS.md, "Recovery").
//
// A checkpoint is taken at the top of the cycle loop — a consistency
// point where the emission buffers and cross-shard outboxes are empty,
// so the whole simulation state is exactly: the pending ready-queue
// firings, the partially matched activations in the matching store, the
// in-flight split-phase memory completions, the memory store,
// I-structure presence/deferred-reader state, procedure activations,
// statistics counters, and (in seeded-random mode) the RNG streams.
// Restoring that state into a fresh machine and resuming produces a
// byte-identical final Outcome — the paper's §5 determinacy condition is
// what makes this sound: a determinate graph re-executed from a
// consistent token snapshot cannot diverge.
//
// Tags are serialized as their canonical keys and re-interned on restore
// (token.ParseKey), so interned ids may differ between the original and
// the resumed run; only keys are observable (issue order sorts buckets
// by key, and checkpointing forbids collectors, whose events are the one
// place ids could otherwise leak). RNG streams are serialized as the
// history of Shuffle lengths consumed so far and fast-forwarded on
// restore by replaying no-op shuffles — math/rand exposes no state, but
// replaying the identical call sequence consumes identical randomness.
//
// Checkpoints taken while a fault injector is armed stop as soon as the
// injector fires: every checkpoint is guaranteed pre-fault state, so a
// supervisor restoring "the last checkpoint" always restores clean
// state (the injected corruption is never snapshotted).

// checkpointVersion is bumped whenever the serialized layout changes.
const checkpointVersion = 1

// CheckpointRef identifies a completed checkpoint: the handle a partial
// Outcome carries so an aborted run can be resumed (or replayed with
// `ctdf replay -at`) from its last good state.
type CheckpointRef struct {
	ID    int `json:"id"`
	Cycle int `json:"cycle"`
}

// ckFiring is one pending ready-queue firing.
type ckFiring struct {
	Tag  string  `json:"tag"`
	Port int     `json:"port,omitempty"`
	Vals []int64 `json:"vals"`
}

// ckBucket is one node's pending ready-queue bucket, in arrival order.
// Dirty mirrors the bucket's sort-on-demand flag so the restored queue
// sorts (or skips sorting) exactly when the original would have.
type ckBucket struct {
	Node    int        `json:"node"`
	Dirty   bool       `json:"dirty,omitempty"`
	Firings []ckFiring `json:"firings"`
}

// ckMatch is one partially matched activation in the matching store.
// Vals holds the full operand frame with unarrived ports zeroed (their
// live values are uninitialized arena memory; zeroing keeps the
// serialized form deterministic — they are overwritten before any read).
type ckMatch struct {
	Node int     `json:"node"`
	Tag  string  `json:"tag"`
	Have uint64  `json:"have"`
	N    int     `json:"n"`
	Vals []int64 `json:"vals"`
}

// ckTok is one in-flight token (a parked split-phase memory result).
type ckTok struct {
	Node int    `json:"node"`
	Port int    `json:"port,omitempty"`
	Val  int64  `json:"val"`
	Tag  string `json:"tag"`
}

// ckInflight is the batch of memory completions due at absolute cycle
// At, in delivery order.
type ckInflight struct {
	At   int     `json:"at"`
	Toks []ckTok `json:"toks"`
}

// ckDeferred is one deferred I-structure reader, in arrival order per
// cell (the satisfying write emits results in that order).
type ckDeferred struct {
	Array string `json:"array"`
	Idx   int64  `json:"idx"`
	Node  int    `json:"node"`
	Tag   string `json:"tag"`
}

// ckActivation is one live procedure activation.
type ckActivation struct {
	ID        int               `json:"id"`
	Apply     int               `json:"apply"`
	CallerTag string            `json:"caller_tag"`
	Resolved  map[string]string `json:"resolved,omitempty"`
}

// ckStats is the statistics prefix accumulated up to the checkpoint
// cycle (Cycles is derived at run end and not part of it).
type ckStats struct {
	Ops            int   `json:"ops"`
	MemOps         int   `json:"mem_ops"`
	Matches        int   `json:"matches"`
	MaxParallelism int   `json:"max_parallelism"`
	PeakMatchStore int   `json:"peak_match_store"`
	Profile        []int `json:"profile"`
}

// Checkpoint is a complete, serializable snapshot of machine state at a
// cycle boundary. Restore it with Config.Resume; the resumed run
// produces the byte-identical final Outcome the original run would
// have. Checkpoints are portable across worker counts (Config.Workers)
// except in seeded-random mode, where the per-shard RNG streams tie the
// snapshot to the worker count that took it.
type Checkpoint struct {
	Version   int          `json:"version"`
	ID        int          `json:"id"`
	Cycle     int          `json:"cycle"`
	Graph     uint64       `json:"graph"`
	Seed      int64        `json:"seed,omitempty"`
	Workers   int          `json:"workers"`
	Done      bool         `json:"done,omitempty"`
	EndCycle  int          `json:"end_cycle,omitempty"`
	EndVals   []int64      `json:"end_vals"`
	Delivered int64        `json:"delivered"`
	Stats     ckStats      `json:"stats"`
	Ready     []ckBucket   `json:"ready,omitempty"`
	Match     []ckMatch    `json:"match,omitempty"`
	Inflight  []ckInflight `json:"inflight,omitempty"`

	Scalars   map[string]int64   `json:"scalars,omitempty"`
	Arrays    map[string][]int64 `json:"arrays,omitempty"`
	IFull     map[string][]bool  `json:"istruct_full,omitempty"`
	IDeferred []ckDeferred       `json:"istruct_deferred,omitempty"`

	Acts    []ckActivation `json:"activations,omitempty"`
	NextAct int            `json:"next_activation,omitempty"`

	// Shuffle-length histories for seeded-random issue mode: the main
	// loop's stream (sequential engine) and each shard's stream (sharded
	// engine). Fast-forwarded by replaying no-op shuffles on restore.
	MainShuffles  []int   `json:"main_shuffles,omitempty"`
	ShardShuffles [][]int `json:"shard_shuffles,omitempty"`
}

// Ref returns the checkpoint's identifying handle.
func (c *Checkpoint) Ref() CheckpointRef { return CheckpointRef{ID: c.ID, Cycle: c.Cycle} }

// Encode serializes the checkpoint (JSON, one object).
func (c *Checkpoint) Encode() ([]byte, error) {
	b, err := json.Marshal(c)
	if err != nil {
		return nil, fmt.Errorf("machine: encode checkpoint: %w", err)
	}
	return b, nil
}

// DecodeCheckpoint parses a serialized checkpoint and validates its
// version.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	c := &Checkpoint{}
	if err := json.Unmarshal(data, c); err != nil {
		return nil, fmt.Errorf("machine: decode checkpoint: %w", err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("machine: checkpoint version %d, want %d", c.Version, checkpointVersion)
	}
	return c, nil
}

// WriteFile serializes the checkpoint to path.
func (c *Checkpoint) WriteFile(path string) error {
	b, err := c.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadCheckpointFile loads a checkpoint written by WriteFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpoint(b)
}

// GraphFingerprint hashes the graph's structure so a checkpoint refuses
// to restore into a different graph.
func GraphFingerprint(g graphLike) uint64 {
	h := fnv.New64a()
	nodes := g.nodeCount()
	io.WriteString(h, strconv.Itoa(nodes))
	for i := 0; i < nodes; i++ {
		h.Write([]byte{0})
		io.WriteString(h, g.nodeSig(i))
	}
	return h.Sum64()
}

// graphLike decouples the fingerprint from *dfg.Graph for tests.
type graphLike interface {
	nodeCount() int
	nodeSig(i int) string
}

type dfgGraph struct{ m *sim }

func (d dfgGraph) nodeCount() int { return len(d.m.g.Nodes) }
func (d dfgGraph) nodeSig(i int) string {
	n := d.m.g.Nodes[i]
	return n.String() + "/" + strconv.Itoa(n.NIns)
}

func (m *sim) graphFP() uint64 { return GraphFingerprint(dfgGraph{m}) }

// ckErrf builds the InvalidConfig machine check every malformed-restore
// path returns.
func ckErrf(format string, args ...interface{}) error {
	return machcheck.Newf(machcheck.InvalidConfig, "machine", "restore checkpoint: "+format, args...)
}

// maybeCheckpoint runs at the top of the cycle loop of both engines and
// captures a checkpoint when the interval is due. The resume cycle
// itself is skipped (it was just restored), and capture stops the
// moment an armed fault injector fires — post-fault state is tainted,
// and keeping only pre-fault checkpoints is what lets a supervisor
// treat "restore last checkpoint" as "restore clean state".
func (m *sim) maybeCheckpoint() error {
	every := m.cfg.CheckpointEvery
	if every <= 0 || m.cycle == 0 || m.cycle%every != 0 || m.cycle == m.resumedAt {
		return nil
	}
	if m.inj != nil && m.inj.Injected() {
		return nil
	}
	var telT0 time.Time
	if m.tel != nil {
		telT0 = time.Now()
	}
	ck := m.capture()
	m.ckID++
	ck.ID = m.ckID
	if m.cfg.CheckpointSink != nil {
		if err := m.cfg.CheckpointSink(ck); err != nil {
			return fmt.Errorf("machine: checkpoint sink at cycle %d: %w", m.cycle, err)
		}
	}
	if m.tel != nil {
		// Capture time spans snapshot plus sink — the full stall the
		// checkpoint interval imposes on the cycle loop.
		m.tel.checkpoints.Add(1)
		observeSeconds(m.tel.ckSec, time.Since(telT0))
	}
	ref := ck.Ref()
	m.lastCk = &ref
	return nil
}

// capture snapshots the full machine state. Every collection is emitted
// in a deterministic order (node id, then tag key; sorted names; sorted
// cycles) so identical states serialize to identical bytes.
func (m *sim) capture() *Checkpoint {
	ck := &Checkpoint{
		Version:   checkpointVersion,
		Cycle:     m.cycle,
		Graph:     m.graphFP(),
		Seed:      m.cfg.RandomSeed,
		Workers:   len(m.shs),
		Done:      m.done,
		EndCycle:  m.endCycle,
		EndVals:   append([]int64(nil), m.endVals...),
		Delivered: m.delivered,
		Stats: ckStats{
			Ops:            m.stats.Ops,
			MemOps:         m.stats.MemOps,
			Matches:        m.stats.Matches,
			MaxParallelism: m.stats.MaxParallelism,
			PeakMatchStore: m.stats.PeakMatchStore,
			Profile:        append([]int(nil), m.stats.Profile...),
		},
	}

	// Ready queues: per-node pending ranges in arrival order, ascending
	// node id (node→shard ownership is a partition, so walking nodes
	// visits every bucket exactly once).
	for node := range m.g.Nodes {
		b := &m.shs[m.shardOf[node]].ready.buckets[node]
		if b.head == len(b.items) {
			continue
		}
		snap := ckBucket{Node: node, Dirty: b.dirty}
		for _, f := range b.items[b.head:] {
			snap.Firings = append(snap.Firings, ckFiring{
				Tag: m.tags.key(f.tgID), Port: f.port, Vals: append([]int64(nil), f.vals...),
			})
		}
		ck.Ready = append(ck.Ready, snap)
	}

	// Matching store: pending activations per node, sorted by tag key.
	for node := range m.shards {
		s := &m.shards[node]
		if s.e == nil && len(s.more) == 0 {
			continue
		}
		nIns := m.g.Nodes[node].NIns
		var ents []ckMatch
		add := func(tgID int32, e *matchEntry) {
			vals := make([]int64, nIns)
			for p := 0; p < nIns; p++ {
				if e.have&(uint64(1)<<uint(p)) != 0 {
					vals[p] = e.vals[p]
				}
			}
			ents = append(ents, ckMatch{Node: node, Tag: m.tags.key(tgID), Have: e.have, N: e.n, Vals: vals})
		}
		if s.e != nil {
			add(s.tgID, s.e)
		}
		for tgID, e := range s.more {
			add(tgID, e)
		}
		sort.Slice(ents, func(i, j int) bool { return ents[i].Tag < ents[j].Tag })
		ck.Match = append(ck.Match, ents...)
	}

	// In-flight split-phase completions, ascending due cycle. The
	// per-delayed grouping is flattened: delivery order is the slice
	// concatenation order, and release hooks (race detection) are
	// incompatible with checkpointing.
	cycles := make([]int, 0, len(m.inflight))
	for at := range m.inflight {
		cycles = append(cycles, at)
	}
	sort.Ints(cycles)
	for _, at := range cycles {
		batch := ckInflight{At: at}
		for _, d := range m.inflight[at] {
			for _, t := range d.tokens {
				batch.Toks = append(batch.Toks, ckTok{
					Node: t.to.Node, Port: t.to.Port, Val: t.val, Tag: m.tags.key(t.tgID),
				})
			}
		}
		ck.Inflight = append(ck.Inflight, batch)
	}

	// Memory store, by name. Aliased names serialize their shared cell
	// redundantly; restore writes them back in sorted order, and equal
	// values make the redundancy harmless.
	names := append([]string(nil), m.g.Prog.AllNames()...)
	sort.Strings(names)
	for _, name := range names {
		if m.g.Prog.IsArray(name) {
			if ck.Arrays == nil {
				ck.Arrays = map[string][]int64{}
			}
			ck.Arrays[name] = m.store.Array(name)
		} else {
			if ck.Scalars == nil {
				ck.Scalars = map[string]int64{}
			}
			ck.Scalars[name] = m.store.Get(name)
		}
	}

	// I-structure presence bits and deferred readers.
	inames := make([]string, 0, len(m.istruct.full))
	for name := range m.istruct.full {
		inames = append(inames, name)
	}
	sort.Strings(inames)
	for _, name := range inames {
		if ck.IFull == nil {
			ck.IFull = map[string][]bool{}
		}
		ck.IFull[name] = append([]bool(nil), m.istruct.full[name]...)
		cellIdx := make([]int64, 0, len(m.istruct.deferred[name]))
		for idx := range m.istruct.deferred[name] {
			cellIdx = append(cellIdx, idx)
		}
		sort.Slice(cellIdx, func(i, j int) bool { return cellIdx[i] < cellIdx[j] })
		for _, idx := range cellIdx {
			for _, w := range m.istruct.deferred[name][idx] {
				ck.IDeferred = append(ck.IDeferred, ckDeferred{
					Array: name, Idx: idx, Node: w.node, Tag: m.tags.key(w.tgID),
				})
			}
		}
	}

	// Live procedure activations, ascending id.
	if m.procs != nil {
		ck.NextAct = m.procs.nextID
		ids := make([]int, 0, len(m.procs.live))
		for id := range m.procs.live {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			rec := m.procs.live[id]
			resolved := make(map[string]string, len(rec.resolved))
			for k, v := range rec.resolved {
				resolved[k] = v
			}
			ck.Acts = append(ck.Acts, ckActivation{
				ID: id, Apply: rec.info.Apply, CallerTag: m.tags.key(rec.callerTgID), Resolved: resolved,
			})
		}
	}

	// RNG shuffle histories (seeded-random mode only).
	if m.rng != nil {
		ck.MainShuffles = append([]int(nil), m.shufLog...)
		ck.ShardShuffles = make([][]int, len(m.shs))
		for i, sh := range m.shs {
			ck.ShardShuffles[i] = append([]int(nil), sh.shufLog...)
		}
	}
	return ck
}

// internKey re-interns a serialized tag key.
func (m *sim) internKey(key string) (int32, error) {
	tg, err := token.ParseKey(key)
	if err != nil {
		return 0, ckErrf("%v", err)
	}
	return m.tags.intern(tg), nil
}

// restore loads a checkpoint into a freshly initialized sim, in place of
// the cycle-0 start-token delivery. The sim's shards, stores, and units
// are already built; restore populates them and positions the cycle
// counter so the main loop resumes exactly where the original run left
// off.
func (m *sim) restore(ck *Checkpoint) error {
	if ck.Version != checkpointVersion {
		return ckErrf("version %d, want %d", ck.Version, checkpointVersion)
	}
	if ck.Graph != m.graphFP() {
		return ckErrf("checkpoint was taken on a different graph")
	}
	if ck.Seed != m.cfg.RandomSeed {
		return ckErrf("checkpoint seed %d, run seed %d", ck.Seed, m.cfg.RandomSeed)
	}
	if ck.Seed != 0 && ck.Workers != len(m.shs) {
		return ckErrf("seeded-random checkpoints are bound to their worker count (checkpoint %d, run %d)", ck.Workers, len(m.shs))
	}
	if ck.Cycle < 0 || ck.Cycle > m.cfg.MaxCycles {
		return ckErrf("cycle %d out of range", ck.Cycle)
	}
	if len(ck.EndVals) != len(m.endVals) {
		return ckErrf("end arity %d, want %d", len(ck.EndVals), len(m.endVals))
	}

	m.resumedAt = ck.Cycle
	m.ckID = ck.ID
	ref := ck.Ref()
	m.lastCk = &ref
	m.cycle = ck.Cycle
	m.done = ck.Done
	m.endCycle = ck.EndCycle
	copy(m.endVals, ck.EndVals)
	m.delivered = ck.Delivered
	m.stats.Ops = ck.Stats.Ops
	m.stats.MemOps = ck.Stats.MemOps
	m.stats.Matches = ck.Stats.Matches
	m.stats.MaxParallelism = ck.Stats.MaxParallelism
	m.stats.PeakMatchStore = ck.Stats.PeakMatchStore
	m.stats.Profile = append([]int(nil), ck.Stats.Profile...)

	// Memory store (sorted order: deterministic even if a binding change
	// made previously distinct names collide).
	names := map[string]bool{}
	for _, n := range m.g.Prog.AllNames() {
		names[n] = true
	}
	scalarNames := make([]string, 0, len(ck.Scalars))
	for name := range ck.Scalars {
		scalarNames = append(scalarNames, name)
	}
	sort.Strings(scalarNames)
	for _, name := range scalarNames {
		if !names[name] || m.g.Prog.IsArray(name) {
			return ckErrf("unknown scalar %q", name)
		}
		m.store.Set(name, ck.Scalars[name])
	}
	arrayNames := make([]string, 0, len(ck.Arrays))
	for name := range ck.Arrays {
		arrayNames = append(arrayNames, name)
	}
	sort.Strings(arrayNames)
	for _, name := range arrayNames {
		vals := ck.Arrays[name]
		if !names[name] || !m.g.Prog.IsArray(name) || len(vals) != m.g.Prog.ArraySize(name) {
			return ckErrf("array %q does not match the program's declaration", name)
		}
		for i, v := range vals {
			if err := m.store.SetIdx(name, int64(i), v); err != nil {
				return ckErrf("array %q: %v", name, err)
			}
		}
	}

	// I-structure unit.
	for name, bits := range ck.IFull {
		have, ok := m.istruct.full[name]
		if !ok || len(bits) != len(have) {
			return ckErrf("I-structure %q does not match the graph", name)
		}
		copy(have, bits)
	}
	for _, d := range ck.IDeferred {
		if _, ok := m.istruct.deferred[d.Array]; !ok {
			return ckErrf("deferred read of unknown I-structure %q", d.Array)
		}
		if d.Node < 0 || d.Node >= len(m.g.Nodes) {
			return ckErrf("deferred read node %d out of range", d.Node)
		}
		tgID, err := m.internKey(d.Tag)
		if err != nil {
			return err
		}
		m.istruct.deferred[d.Array][d.Idx] = append(m.istruct.deferred[d.Array][d.Idx],
			istructWaiter{node: d.Node, tgID: tgID, dep: -1})
	}

	// Procedure activations.
	if len(ck.Acts) > 0 || ck.NextAct > 0 {
		if m.procs == nil {
			return ckErrf("checkpoint has procedure activations but the graph has no calls")
		}
		m.procs.nextID = ck.NextAct
		for _, a := range ck.Acts {
			info := m.procs.byApply[a.Apply]
			if info == nil {
				return ckErrf("activation %d references unknown apply node %d", a.ID, a.Apply)
			}
			tgID, err := m.internKey(a.CallerTag)
			if err != nil {
				return err
			}
			resolved := make(map[string]string, len(a.Resolved))
			for k, v := range a.Resolved {
				resolved[k] = v
			}
			m.procs.live[a.ID] = &activation{info: info, callerTgID: tgID, resolved: resolved}
		}
	}

	// Ready queues: rebuild each bucket's pending range verbatim. The
	// dirty flag is restored rather than recomputed because sortFirings
	// is an unstable sort — re-sorting an already-sorted range could
	// reorder equal keys, and byte-exactness demands the restored queue
	// behave identically to the original.
	lastNode := -1
	for bi := range ck.Ready {
		snap := &ck.Ready[bi]
		if snap.Node <= lastNode || snap.Node >= len(m.g.Nodes) {
			return ckErrf("ready bucket order violated at node %d", snap.Node)
		}
		lastNode = snap.Node
		if len(snap.Firings) == 0 {
			return ckErrf("empty ready bucket for node %d", snap.Node)
		}
		sh := m.shs[m.shardOf[snap.Node]]
		b := &sh.ready.buckets[snap.Node]
		for _, f := range snap.Firings {
			if len(f.Vals) == 0 || len(f.Vals) > 64 {
				return ckErrf("node %d firing carries %d operands", snap.Node, len(f.Vals))
			}
			tgID, err := m.internKey(f.Tag)
			if err != nil {
				return err
			}
			vals := sh.getVals(len(f.Vals))
			copy(vals, f.Vals)
			b.items = append(b.items, firing{node: snap.Node, tgID: tgID, vals: vals, port: f.Port, dep: -1})
		}
		b.head = 0
		b.dirty = snap.Dirty
		sh.ready.active = append(sh.ready.active, snap.Node)
		sh.ready.count += len(snap.Firings)
	}

	// Matching store.
	for i := range ck.Match {
		cm := &ck.Match[i]
		if cm.Node < 0 || cm.Node >= len(m.g.Nodes) {
			return ckErrf("match entry node %d out of range", cm.Node)
		}
		nIns := m.g.Nodes[cm.Node].NIns
		if len(cm.Vals) != nIns || cm.N <= 0 || cm.N >= nIns {
			return ckErrf("match entry at node %d is not a partial activation", cm.Node)
		}
		tgID, err := m.internKey(cm.Tag)
		if err != nil {
			return err
		}
		if m.matchLookup(cm.Node, tgID) != nil {
			return ckErrf("duplicate match entry at node %d tag %q", cm.Node, cm.Tag)
		}
		sh := m.shs[m.shardOf[cm.Node]]
		e := sh.getEntry(nIns)
		e.have = cm.Have
		e.n = cm.N
		e.dep = -1
		copy(e.vals, cm.Vals)
		m.matchInsert(sh, cm.Node, tgID, e)
	}
	if m.sharded {
		m.matchLive = m.totalMatchCount()
	}

	// In-flight memory completions.
	lastAt := ck.Cycle
	for i := range ck.Inflight {
		inf := &ck.Inflight[i]
		if inf.At <= lastAt {
			return ckErrf("in-flight batch at cycle %d is not in the future", inf.At)
		}
		lastAt = inf.At
		toks := make([]tok, 0, len(inf.Toks))
		for _, ct := range inf.Toks {
			if ct.Node < 0 || ct.Node >= len(m.g.Nodes) {
				return ckErrf("in-flight token to node %d out of range", ct.Node)
			}
			tgID, err := m.internKey(ct.Tag)
			if err != nil {
				return err
			}
			toks = append(toks, tok{
				to: dfg.Target{Node: ct.Node, Port: ct.Port}, val: ct.Val, tgID: tgID, dep: -1, dep2: -1,
			})
		}
		m.inflight[inf.At] = []delayed{{tokens: toks}}
	}

	// RNG streams: fast-forward by replaying the shuffle-length history
	// (a no-op shuffle of length n consumes exactly the randomness the
	// original call did).
	if m.rng != nil {
		noop := func(i, j int) {}
		for _, n := range ck.MainShuffles {
			m.rng.Shuffle(n, noop)
		}
		m.shufLog = append(m.shufLog[:0], ck.MainShuffles...)
		for i, sh := range m.shs {
			if i < len(ck.ShardShuffles) {
				for _, n := range ck.ShardShuffles[i] {
					sh.rng.Shuffle(n, noop)
				}
				sh.shufLog = append(sh.shufLog[:0], ck.ShardShuffles[i]...)
			}
		}
	}
	return nil
}
