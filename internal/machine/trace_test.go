package machine

import (
	"strings"
	"testing"

	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

func TestTraceOutput(t *testing.T) {
	res := translateWorkload(t, workloads.RunningExample, translate.Options{Schema: translate.Schema2})
	var buf strings.Builder
	out, err := Run(res.Graph, Config{Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	lines := strings.Count(trace, "\n")
	if lines != out.Stats.Ops {
		t.Errorf("trace has %d lines, ops = %d", lines, out.Stats.Ops)
	}
	for _, want := range []string{"cycle 0:", "load x", "store y", "switch[x]", "[tag 0]", "[tag 4]"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

func TestProfileChart(t *testing.T) {
	res := translateWorkload(t, workloads.MustByName("fib-iterative"), translate.Options{Schema: translate.Schema2})
	out, err := Run(res.Graph, Config{MemLatency: 4})
	if err != nil {
		t.Fatal(err)
	}
	chart := out.Stats.ProfileChart(60, 8)
	if !strings.Contains(chart, "#") || !strings.Contains(chart, "cycle") {
		t.Errorf("chart malformed:\n%s", chart)
	}
	// Height: 8 bar rows + axis + label.
	if got := strings.Count(chart, "\n"); got != 10 {
		t.Errorf("chart has %d lines, want 10", got)
	}
	// The peak row is labeled with MaxParallelism.
	if !strings.Contains(chart, "   ") {
		t.Error("chart missing axis labels")
	}
}

func TestProfileChartDegenerate(t *testing.T) {
	if got := (Stats{}).ProfileChart(10, 4); !strings.Contains(got, "empty") {
		t.Errorf("empty profile chart = %q", got)
	}
	s := Stats{Profile: []int{3}, Cycles: 1}
	if got := s.ProfileChart(0, 0); !strings.Contains(got, "#") {
		t.Errorf("degenerate dims chart = %q", got)
	}
}
