// Package machine simulates an explicit token store dataflow machine in
// the style of Monsoon (paper §2.2): tokens carry tags identifying their
// loop iteration context, tokens destined for a multi-input operator
// rendezvous in a matching store (the ETS frame memory), loads and stores
// are split-phase operations with configurable latency, and a configurable
// number of processors issues enabled operations each cycle.
//
// Running the same graph with an unlimited processor count measures the
// program's critical path; the per-cycle issue counts form its parallelism
// profile. This is the measurement substrate for every experiment in
// EXPERIMENTS.md.
//
// Map to the paper:
//
//   - machine.go — the ETS pipeline of §2.2: tag matching, instruction
//     issue, split-phase memory, bounded processors per cycle; also the
//     observability hooks (Config.Collector, an *obs.Collector) that
//     count firings/waits/stalls and thread the firing DAG used for
//     critical-path extraction (see OBSERVABILITY.md).
//   - queue.go — the hot-path data structures: the bucketed ready queue,
//     the tag-intern table, the sharded matching store's free lists
//     (see PERFORMANCE.md).
//   - par.go — the optional parallel issue stage (Config.ParallelIssue)
//     that evaluates pure operators of a large batch on a worker pool.
//   - shard.go — the sharded multi-core machine (Config.Workers): the
//     whole engine partitioned into shared-nothing per-worker shards
//     with deterministic cross-shard token routing, byte-identical to
//     the sequential engine at every worker count (see SCALING.md).
//   - istruct.go — the I-structure memory unit of §6.3: presence bits,
//     deferred reads satisfied by the eventual write.
//   - procs.go — activation contexts for procedure invocations (§2.2),
//     Apply/Param/ProcReturn linkage.
//   - race.go — optional checker that no two conflicting memory
//     operations overlap in time (the §5 correctness condition covers
//     must enforce).
//   - trace.go — ASCII parallelism chart; execution traces themselves are
//     obs.TraceSink events (Config.Trace).
package machine

import (
	"io"
	"math/rand"
	"sort"
	"time"

	"ctdf/internal/dfg"
	"ctdf/internal/fault"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/machcheck"
	"ctdf/internal/obs"
	"ctdf/internal/obs/telemetry"
)

// Config configures a simulation run.
type Config struct {
	// Processors bounds how many operations issue per cycle; 0 means
	// unlimited (critical-path mode). Negative values are rejected with an
	// InvalidConfig machine check.
	Processors int
	// MemLatency is the number of cycles a split-phase load or store takes
	// (minimum and default 1; negative values are rejected). All other
	// operators take one cycle.
	MemLatency int
	// MaxCycles aborts runaway executions (default one million; negative
	// values are rejected).
	MaxCycles int
	// MaxOps bounds total operator firings — and, indirectly, delivered
	// tokens — so a token explosion aborts with a CyclesExceeded machine
	// check before exhausting memory (default ten million; negative values
	// are rejected).
	MaxOps int64
	// Deadline bounds wall-clock execution (0 = none; negative values are
	// rejected); exceeding it aborts with a Deadline machine check.
	Deadline time.Duration
	// Inject threads a deterministic fault-injection plan through the
	// run (nil = no injection; see internal/fault and ROBUSTNESS.md).
	Inject *fault.Injector
	// Binding selects which aliased names share storage this run.
	Binding interp.Binding
	// RandomSeed, when nonzero, issues enabled operations in a
	// pseudo-random order instead of the deterministic one — the final
	// store must not depend on it (dataflow determinacy).
	RandomSeed int64
	// DetectRaces additionally checks that no two memory operations on the
	// same location overlap in time unless both are reads.
	DetectRaces bool
	// ParallelIssue evaluates the pure operators of large issue batches on
	// a host worker pool (see par.go). The simulated execution is
	// observably identical to the sequential one — same issue order, same
	// statistics, same events; it only spends host CPUs to get there
	// faster. Ignored while fault injection is active.
	ParallelIssue bool
	// Workers, when > 1, runs the sharded multi-core machine (see
	// shard.go and SCALING.md): nodes are partitioned across Workers
	// shared-nothing shards, each cycle's pure firings and token
	// deliveries run on per-shard host workers, and the impure remainder
	// retires sequentially in global issue order. The simulated execution
	// is byte-identical to the sequential one at every worker count —
	// same snapshots, statistics, firing vectors, journal — because the
	// shard count parameterizes only host-side data layout, never the
	// simulated schedule. 0 and 1 select the sequential engine; the value
	// is capped at 256; ignored while fault injection is active
	// (injection decisions must see deliveries in sequential order).
	Workers int
	// CheckpointEvery, when > 0, captures a deterministic checkpoint of
	// the full machine state every CheckpointEvery cycles (see
	// checkpoint.go and ROBUSTNESS.md). Each completed checkpoint is
	// handed to CheckpointSink; the run's Outcome carries the last one's
	// CheckpointRef. Incompatible with DetectRaces, Trace, and Collector
	// (checkpoints cannot capture race-detector or observability state).
	CheckpointEvery int
	// CheckpointSink receives each completed checkpoint. A sink error
	// aborts the run.
	CheckpointSink func(*Checkpoint) error
	// Resume, when non-nil, restores the machine from a checkpoint
	// instead of starting at cycle 0; the resumed run produces the
	// byte-identical final Outcome the original would have. Incompatible
	// with Inject (fault plans count delivery sites from cycle 0).
	Resume *Checkpoint
	// ProfileLimit caps the recorded parallelism profile length (default
	// 1<<16 cycles; negative values are rejected); statistics remain exact
	// beyond it.
	ProfileLimit int
	// Trace, when non-nil, receives one line per operator firing
	// ("cycle 12: d5: binop + [tag 0.1]"); it is implemented as an
	// obs.TraceSink on the event stream.
	Trace io.Writer
	// Collector, when non-nil, gathers per-node counters, streams
	// cycle-stamped events to its sinks, and (when enabled) records the
	// firing DAG for critical-path extraction. Nil disables observability
	// at the cost of one branch per firing.
	Collector *obs.Collector
	// Telemetry, when non-nil, receives engine-level metrics: per-shard
	// BSP phase wall time, barrier waits, the cross-shard token-traffic
	// matrix, outbox/inbox occupancy, matching-store depth, and
	// checkpoint capture time (see internal/obs/telemetry and
	// OBSERVABILITY.md). Unlike Collector it observes the host engine,
	// not the simulated program, so it is compatible with checkpointing
	// — capture time is itself a telemetry metric. Nil disables it at
	// the cost of one branch per phase. Repeated runs against one
	// registry accumulate.
	Telemetry *telemetry.Registry
}

// validate rejects configurations that could only arise from a caller
// bug: the zero value of every knob means "default", so negative values
// are never meaningful and used to be silently clamped or, worse, could
// wedge a run (a negative MaxCycles disabled the runaway guard).
func (c *Config) validate() error {
	switch {
	case c.Processors < 0:
		return machcheck.Newf(machcheck.InvalidConfig, "machine",
			"Processors must be >= 0 (0 = unlimited), got %d", c.Processors)
	case c.MemLatency < 0:
		return machcheck.Newf(machcheck.InvalidConfig, "machine",
			"MemLatency must be >= 0 (0 = default 1), got %d", c.MemLatency)
	case c.MaxCycles < 0:
		return machcheck.Newf(machcheck.InvalidConfig, "machine",
			"MaxCycles must be >= 0 (0 = default 1e6), got %d", c.MaxCycles)
	case c.MaxOps < 0:
		return machcheck.Newf(machcheck.InvalidConfig, "machine",
			"MaxOps must be >= 0 (0 = default 1e7), got %d", c.MaxOps)
	case c.ProfileLimit < 0:
		return machcheck.Newf(machcheck.InvalidConfig, "machine",
			"ProfileLimit must be >= 0 (0 = default 65536), got %d", c.ProfileLimit)
	case c.Deadline < 0:
		return machcheck.Newf(machcheck.InvalidConfig, "machine",
			"Deadline must be >= 0 (0 = none), got %v", c.Deadline)
	case c.Workers < 0:
		return machcheck.Newf(machcheck.InvalidConfig, "machine",
			"Workers must be >= 0 (0 or 1 = sequential), got %d", c.Workers)
	case c.CheckpointEvery < 0:
		return machcheck.Newf(machcheck.InvalidConfig, "machine",
			"CheckpointEvery must be >= 0 (0 = disabled), got %d", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 || c.Resume != nil {
		switch {
		case c.DetectRaces:
			return machcheck.Newf(machcheck.InvalidConfig, "machine",
				"checkpointing cannot capture race-detector state (disable DetectRaces)")
		case c.Collector != nil || c.Trace != nil:
			return machcheck.Newf(machcheck.InvalidConfig, "machine",
				"checkpointing cannot capture observability state (detach Collector/Trace)")
		}
	}
	if c.Resume != nil && c.Inject != nil {
		return machcheck.Newf(machcheck.InvalidConfig, "machine",
			"cannot resume a checkpoint with fault injection armed (sites are counted from cycle 0)")
	}
	return nil
}

// Stats describes an execution.
type Stats struct {
	// Cycles is the total execution time; with unlimited processors this
	// is the critical path length.
	Cycles int
	// Ops is the number of operator firings.
	Ops int
	// MemOps counts load/store firings.
	MemOps int
	// Matches counts tokens that had to wait in the matching store.
	Matches int
	// TokensMoved counts tokens delivered to operator input ports — the
	// dataflow machine's interconnect traffic. Operator fusion lowers it:
	// a fused tree's interior results never become tokens at all.
	TokensMoved int64
	// MaxParallelism is the peak number of operations issued in one cycle.
	MaxParallelism int
	// PeakMatchStore is the peak number of partially matched activations
	// waiting in the matching store (the explicit-token-store frame memory
	// pressure).
	PeakMatchStore int
	// Profile[i] is the number of operations issued at cycle i (truncated
	// to ProfileLimit entries).
	Profile []int
}

// AvgParallelism is Ops/Cycles.
func (s Stats) AvgParallelism() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Cycles)
}

// Outcome is the result of a run.
type Outcome struct {
	// Store is the final memory state.
	Store *interp.Store
	// EndValues holds the value carried by each token collected at the end
	// node, indexed by end input port (meaningful for §6.1 value-carrying
	// token lines).
	EndValues []int64
	Stats     Stats
	// Checkpoint identifies the last completed checkpoint of the run
	// (nil when checkpointing was off or no interval elapsed). On an
	// aborted run this is the state a supervisor can restore — every
	// checkpoint is pre-fault by construction — and the cycle `ctdf
	// replay -at` can be pointed at.
	Checkpoint *CheckpointRef
}

// token is a value travelling an arc. It is plain old data — the tag
// rides along as its interned id (see tagTable), not as a string — so
// buffering and copying tokens costs no GC write barriers and token
// buffers are noscan memory.
type tok struct {
	to  dfg.Target
	val int64
	// tgID is the interned tag id; the matching store hashes it instead
	// of a tag string.
	tgID int32
	// dep is the producer firing's id in the collector's firing DAG
	// (-1 when the DAG is not being recorded or the token has no
	// producer, e.g. the initial start tokens).
	dep int32
	// dep2 is the second producer firing for the rare token with two: a
	// deferred I-structure read's result depends on both the read firing
	// and the store that satisfied it. dep holds the later-finishing one
	// (the critical-path link); dep2 the other, recorded only while
	// journaling so the provenance DAG keeps both edges. -1 when absent.
	dep2 int32
}

// matchEntry is one partially matched activation: a frame slot set in the
// explicit token store, addressed by (node, interned tag).
type matchEntry struct {
	have uint64
	vals []int64
	n    int
	// dep is the latest-finishing producer firing among the operands
	// matched so far (critical-path recording only).
	dep int32
	// deps accumulates every operand's producer firings in arrival order
	// (journaling only; nil otherwise).
	deps []int32
}

// firing is an enabled operator activation.
type firing struct {
	node int
	vals []int64
	tgID int32
	// port is the arriving port for any-arrival operators (merge, loop
	// entry).
	port int
	// dep is the latest-finishing input firing before issue; after issue
	// it is reused to hold this firing's own id in the firing DAG.
	dep int32
	// deps holds the producer firings of every operand (journaling only;
	// nil otherwise). Ownership passes to the journal at issue.
	deps []int32
}

// deadlineStride is how many schedulable units (cycles or firings) pass
// between wall-clock deadline samples. The old scheme only sampled every
// 1024 cycles, so a run wedged inside enormous batches — or crawling
// through slow traced firings — could overshoot a tiny deadline by
// orders of magnitude before the next cycle boundary.
const deadlineStride = 64

// Run executes the dataflow graph to completion.
//
// Errors raised by the machine's own checks are *machcheck.Error values
// (match them with errors.Is against the machcheck sentinels); on such an
// abort the returned Outcome is non-nil and carries the partial store and
// statistics up to the failure, so aborted runs remain profilable.
// Malformed configurations (negative knobs) are rejected up front with an
// InvalidConfig machine check and a nil Outcome.
func Run(g *dfg.Graph, cfgc Config) (*Outcome, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cfgc.validate(); err != nil {
		return nil, err
	}
	if cfgc.MemLatency < 1 {
		cfgc.MemLatency = 1
	}
	if cfgc.MaxCycles == 0 {
		cfgc.MaxCycles = 1_000_000
	}
	if cfgc.MaxOps == 0 {
		cfgc.MaxOps = 10_000_000
	}
	if cfgc.ProfileLimit == 0 {
		cfgc.ProfileLimit = 1 << 16
	}
	if err := cfgc.Binding.Validate(g.Prog); err != nil {
		return nil, err
	}
	m := &sim{
		g:         g,
		cfg:       cfgc,
		store:     interp.NewStoreWithBinding(g.Prog, cfgc.Binding),
		tags:      newTagTable(),
		shards:    make([]shardSlot, len(g.Nodes)),
		resumedAt: -1,
	}
	m.col = cfgc.Collector
	if cfgc.Trace != nil {
		// The historical trace format is an event sink; traced runs are
		// observed runs even when the caller attached no collector.
		if m.col == nil {
			m.col = obs.NewCollector(g, obs.Options{})
		}
		labels := make([]string, len(g.Nodes))
		for i, n := range g.Nodes {
			labels[i] = n.String()
		}
		m.col.AddSink(&obs.TraceSink{W: cfgc.Trace, Labels: labels})
	}
	m.dag = m.col.DAGEnabled()
	m.jour = m.col.JournalEnabled()
	m.inj = cfgc.Inject
	m.par = cfgc.ParallelIssue
	if cfgc.DetectRaces {
		m.locs = newRaceDetector(g.Prog, cfgc.Binding)
	}
	m.istruct = newIStructUnit(g)
	m.procs = newProcLinkage(g)
	// Worker count: >1 selects the sharded engine; fault injection forces
	// the sequential path (like ParallelIssue, injection decisions must
	// observe deliveries in sequential order).
	w := cfgc.Workers
	if w > maxShards {
		w = maxShards
	}
	if w < 1 || m.inj != nil {
		w = 1
	}
	m.initShards(w)
	if cfgc.Telemetry != nil {
		// The probe is sized to the effective worker count (after the
		// injection/cap adjustments above) so per-shard series exist
		// exactly for the shards that will run.
		m.tel = newMachineTel(cfgc.Telemetry, w)
	}
	if cfgc.RandomSeed != 0 {
		m.rng = rand.New(rand.NewSource(cfgc.RandomSeed))
		for _, sh := range m.shs {
			sh.rng = rand.New(rand.NewSource(shardSeed(cfgc.RandomSeed, sh.id)))
		}
	}
	if w > 1 {
		return m.runSharded()
	}
	return m.run()
}

type sim struct {
	g     *dfg.Graph
	cfg   Config
	store *interp.Store
	rng   *rand.Rand

	// Scheduling state: tags interns tag keys, shards is the matching
	// store sharded by destination node and keyed by interned tag. The
	// ready queues, matching-store population counts, and free lists live
	// on the per-shard states (shs); the sequential engine runs with one
	// shard (sh0) owning every node, the sharded engine (shard.go) with
	// Workers shards partitioned by node id.
	tags    *tagTable
	shards  []shardSlot
	shs     []*shardState
	sh0     *shardState
	shardOf []int32
	// sharded marks the multi-worker engine: deliverOnce records
	// matching-store waits as mergeable per-shard events instead of
	// updating global statistics in place.
	sharded bool

	// Hot-path scratch and arenas: batchBuf holds the sequential engine's
	// issue batch, emitBuf the tokens the firing currently retiring emits,
	// tokArena backs parked in-flight token slices. All three are touched
	// only by sequential code (issue/retire), never by shard workers.
	batchBuf []firing
	emitBuf  []tok
	tokArena []tok
	// fusedScratch backs fused-node step evaluation (sequential retire
	// path only).
	fusedScratch []int64

	// inflight memory completions: cycle → emissions.
	inflight map[int][]delayed
	cycle    int
	stats    Stats

	// deadlineTick counts schedulable units since the last wall-clock
	// sample (see deadlineStride).
	deadlineTick int

	endVals  []int64
	endCycle int
	done     bool

	// Observability: col collects counters/events (nil when disabled),
	// dag caches col.DAGEnabled() (critical path or journal), jour caches
	// col.JournalEnabled(), curDep is the firing id the tokens currently
	// being emitted inherit as their producer, and curDep2 the second
	// producer for deferred I-structure read results (-1 otherwise).
	col     *obs.Collector
	dag     bool
	jour    bool
	curDep  int32
	curDep2 int32

	// Fault injection (nil = none) and the delivered-token budget that
	// bounds token explosions.
	inj       *fault.Injector
	delivered int64

	// Parallel issue stage (par.go): par enables it, parOut holds the
	// per-batch-slot results of the pure-operator compute phase.
	par    bool
	parOut []pureOut

	// Checkpointing (checkpoint.go): ckID numbers completed checkpoints,
	// lastCk is the newest one's handle, resumedAt the cycle this run was
	// restored at (-1 otherwise), and shufLog the main RNG stream's
	// shuffle-length history in seeded-random mode.
	ckID      int
	lastCk    *CheckpointRef
	resumedAt int
	shufLog   []int

	// Sharded engine state (shard.go): the worker pool, the
	// sequential-writer inbox lanes (impure emissions and start tokens;
	// released split-phase completions), the sequence-key stride, the
	// base firing-DAG id of the current cycle's batch, the merged live
	// matching-store population, and reusable merge cursors.
	pool      *shardPool
	seqBox    [][]routedTok
	relBox    [][]routedTok
	fanStride int64
	dagBase   int32
	matchLive int
	selCur    []int
	evCur     []int
	imCur     []int

	locs    *raceDetector
	istruct *istructUnit
	procs   *procLinkage

	// tel is the engine telemetry probe (Config.Telemetry); nil when
	// telemetry is disabled.
	tel *machineTel
}

type delayed struct {
	tokens []tok
	// race bookkeeping: location released at completion.
	release func()
}

// abort ends the run on a failed machine check, emitting an abort event
// and returning the partial outcome (store and statistics up to the
// failure) alongside the error, so aborted runs remain profilable.
func (m *sim) abort(err error) (*Outcome, error) {
	m.stats.Cycles = m.cycle
	m.stats.TokensMoved = m.delivered
	if ce, ok := err.(*machcheck.Error); ok {
		ce.Cycle = m.cycle
		m.col.Abort(m.cycle, string(ce.Check))
	}
	return &Outcome{Store: m.store, EndValues: m.endVals, Stats: m.stats, Checkpoint: m.lastCk}, err
}

// overDeadline samples the wall clock once per deadlineStride schedulable
// units; it returns the Deadline machine check when the budget is blown.
func (m *sim) overDeadline(start time.Time) error {
	if m.deadlineTick++; m.deadlineTick < deadlineStride {
		return nil
	}
	m.deadlineTick = 0
	if time.Since(start) > m.cfg.Deadline {
		return machcheck.Newf(machcheck.Deadline, "machine",
			"exceeded %v wall-clock deadline at cycle %d", m.cfg.Deadline, m.cycle).WithStuck(m.stuckList())
	}
	return nil
}

func (m *sim) run() (*Outcome, error) {
	m.inflight = map[int][]delayed{}
	m.endVals = make([]int64, m.g.Nodes[m.g.EndID].NIns)
	m.curDep, m.curDep2 = -1, -1
	start := time.Now()

	if m.cfg.Resume != nil {
		// Restore a checkpoint instead of starting at cycle 0. A
		// malformed checkpoint is a pre-run failure (nil Outcome), like
		// any other invalid configuration.
		if err := m.restore(m.cfg.Resume); err != nil {
			return nil, err
		}
	} else {
		// Cycle 0: start emits one dummy token per out arc at the root tag.
		targets := m.g.OutTargets(m.g.StartID, 0)
		if m.tel != nil && len(targets) > 0 {
			m.tel.trafficAdd(m.tel.seqLane(), 0, len(targets))
		}
		for _, t := range targets {
			if err := m.deliver(tok{to: t, val: 0, tgID: rootTagID, dep: -1, dep2: -1}); err != nil {
				return m.abort(err)
			}
		}
	}

	// Execution runs until end fires, then drains remaining enabled work:
	// tokens routed by a switch onto an unconnected output (a path where
	// the token's value is dead, e.g. after §6.1 elimination) are dropped
	// at that switch, and the drops may be scheduled after end's inputs
	// completed.
	ready := m.sh0.ready
	var telT0 time.Time
	for !m.done || ready.count > 0 || len(m.inflight) > 0 {
		m.tel.sampleDepth(m)
		if err := m.maybeCheckpoint(); err != nil {
			return m.abort(err)
		}
		if m.cycle > m.cfg.MaxCycles {
			return m.abort(machcheck.Newf(machcheck.CyclesExceeded, "machine",
				"exceeded %d cycles (deadlock or runaway loop?)", m.cfg.MaxCycles).WithStuck(m.stuckList()))
		}
		if m.cfg.Deadline > 0 {
			if err := m.overDeadline(start); err != nil {
				return m.abort(err)
			}
		}
		if !m.done && ready.count == 0 && len(m.inflight) == 0 {
			return m.abort(m.deadlockError())
		}
		// Issue up to Processors enabled operations this cycle, in
		// deterministic order (or seeded-random when configured).
		// Telemetry maps the sequential engine onto the BSP phase
		// vocabulary: select = batch construction, fire = the firing
		// loop, deliver = the cycle-boundary delivery (retire has no
		// sequential counterpart — impure effects run inside fire).
		if m.tel != nil {
			telT0 = time.Now()
		}
		issue := ready.count
		if m.cfg.Processors > 0 && issue > m.cfg.Processors {
			issue = m.cfg.Processors
		}
		if int64(m.stats.Ops)+int64(issue) > m.cfg.MaxOps {
			return m.abort(machcheck.Newf(machcheck.CyclesExceeded, "machine",
				"exceeded %d firings (runaway loop?)", m.cfg.MaxOps))
		}
		var batch []firing
		if m.rng != nil {
			// Seeded-random mode: materialize the whole deterministic
			// order, shuffle it (consuming the same randomness the old
			// global sort+shuffle did), issue a prefix and re-queue the
			// rest.
			all := ready.fill(m.batchBuf[:0], ready.count)
			m.batchBuf = all
			m.rng.Shuffle(len(all), func(i, j int) {
				all[i], all[j] = all[j], all[i]
			})
			if m.cfg.CheckpointEvery > 0 {
				m.shufLog = append(m.shufLog, len(all))
			}
			batch = all[:issue]
			for _, f := range all[issue:] {
				ready.push(f)
			}
		} else {
			m.batchBuf = ready.fill(m.batchBuf[:0], issue)
			batch = m.batchBuf
		}
		if m.tel != nil {
			observeSeconds(m.tel.selSec, time.Since(telT0))
		}
		if issue > m.stats.MaxParallelism {
			m.stats.MaxParallelism = issue
		}
		if m.cycle < m.cfg.ProfileLimit {
			for len(m.stats.Profile) <= m.cycle {
				m.stats.Profile = append(m.stats.Profile, 0)
			}
			m.stats.Profile[m.cycle] = issue
		}

		// Optional parallel issue stage: precompute pure operators on a
		// worker pool, then retire the batch sequentially in issue order.
		if m.tel != nil {
			telT0 = time.Now()
		}
		usePar := m.par && m.inj == nil && len(batch) >= parIssueThreshold
		if usePar {
			m.computePure(batch)
		}
		for i := range batch {
			f := &batch[i]
			if m.col != nil {
				// f.dep switches meaning here: latest input firing in,
				// this firing's own DAG id out.
				f.dep = m.col.Fire(f.node, m.cycle, m.costOf(f.node), len(f.vals), f.port, f.dep, f.deps, m.tags.key(f.tgID))
			} else {
				f.dep = -1
			}
			m.curDep, m.curDep2 = f.dep, -1
			if usePar && m.parOut[i].ok {
				out := &m.parOut[i]
				if out.err != nil {
					return m.abort(out.err)
				}
				m.emitAll(f.node, out.port, out.val, f.tgID)
			} else if err := m.fire(f); err != nil {
				return m.abort(err)
			}
			m.sh0.putVals(f.vals)
			if m.cfg.Deadline > 0 {
				if err := m.overDeadline(start); err != nil {
					return m.abort(err)
				}
			}
		}
		if m.tel != nil {
			observeSeconds(m.tel.fireSec[0], time.Since(telT0))
			telT0 = time.Now()
		}
		// Completions scheduled for the next cycle boundary.
		m.cycle++
		m.stats.Ops += issue
		released := m.inflight[m.cycle]
		for _, d := range released {
			if d.release != nil {
				d.release()
			}
		}
		delete(m.inflight, m.cycle)
		emitN := len(m.emitBuf)
		for i := range m.emitBuf {
			if err := m.deliver(m.emitBuf[i]); err != nil {
				return m.abort(err)
			}
		}
		m.emitBuf = m.emitBuf[:0]
		for _, d := range released {
			for i := range d.tokens {
				if err := m.deliver(d.tokens[i]); err != nil {
					return m.abort(err)
				}
			}
		}
		if m.tel != nil {
			memN := 0
			for _, d := range released {
				memN += len(d.tokens)
			}
			if emitN > 0 {
				m.tel.trafficAdd(m.tel.seqLane(), 0, emitN)
			}
			if memN > 0 {
				m.tel.trafficAdd(m.tel.memLane(), 0, memN)
			}
			m.tel.outbox[0].Observe(int64(emitN), telemetry.DepthBuckets)
			m.tel.inbox[0].Observe(int64(emitN+memN), telemetry.DepthBuckets)
			observeSeconds(m.tel.delivSec[0], time.Since(telT0))
			m.tel.cycleCounts(m, issue)
		}
	}
	m.stats.Cycles = m.endCycle
	m.stats.TokensMoved = m.delivered
	if err := m.istruct.pendingError(); err != nil {
		return m.abort(err)
	}
	if m.procs != nil && len(m.procs.live) != 0 {
		return m.abort(machcheck.Newf(machcheck.TokenLeak, "machine",
			"%d procedure activations never returned", len(m.procs.live)))
	}
	// Strict conservation: after the drain, no partially matched
	// activation may remain in the matching store (a waiting token whose
	// partner can never arrive is a translation bug).
	if n := m.totalMatchCount(); n != 0 {
		return m.abort(machcheck.Newf(machcheck.TokenLeak, "machine",
			"%d tokens left after end fired", n).WithStuck(m.stuckList()))
	}
	return &Outcome{Store: m.store, EndValues: m.endVals, Stats: m.stats, Checkpoint: m.lastCk}, nil
}

// totalMatchCount sums the matching store's population over all shards.
func (m *sim) totalMatchCount() int {
	n := 0
	for _, sh := range m.shs {
		n += sh.matchCount
	}
	return n
}

// stuckList renders the matching store's partially matched activations as
// stuck-token diagnostics, in deterministic order.
func (m *sim) stuckList() []machcheck.Stuck {
	type stuckKey struct {
		node int
		tag  string
		e    *matchEntry
	}
	keys := make([]stuckKey, 0, m.totalMatchCount())
	for node := range m.shards {
		s := &m.shards[node]
		if s.e != nil {
			keys = append(keys, stuckKey{node: node, tag: m.tags.keys[s.tgID], e: s.e})
		}
		for tgID, e := range s.more {
			keys = append(keys, stuckKey{node: node, tag: m.tags.keys[tgID], e: e})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].tag < keys[j].tag
	})
	out := make([]machcheck.Stuck, 0, len(keys))
	for _, k := range keys {
		out = append(out, machcheck.Stuck{
			Node: k.node, Label: m.g.Nodes[k.node].String(), Tag: k.tag,
			Have: k.e.n, Need: m.g.Nodes[k.node].NIns,
		})
	}
	return out
}

// matchSite reports whether tokens delivered to n rendezvous in the
// matching store (or at end), where strict conservation makes a dropped,
// duplicated, or tag-corrupted token visible — the eligible sites for
// delivery faults.
func matchSite(n *dfg.Node) bool {
	switch n.Kind {
	case dfg.Merge, dfg.LoopEntry, dfg.Param:
		return false // any-arrival: no matching
	case dfg.End:
		return true
	}
	return n.NIns >= 2
}

// deliver routes a token to its destination, enabling a firing when the
// activation's operands are complete. It is also the fault-injection
// point for delivery faults and enforces the delivered-token budget.
// Sequential engine only; the sharded engine's delivery phase calls
// deliverOnce per shard directly (injection forces the sequential path,
// and the token budget is enforced at the cycle merge).
func (m *sim) deliver(t tok) error {
	if m.delivered++; m.delivered > 8*m.cfg.MaxOps+1024 {
		return machcheck.Newf(machcheck.CyclesExceeded, "machine",
			"delivered %d tokens (token explosion?)", m.delivered)
	}
	if m.inj != nil {
		switch m.inj.Deliver(matchSite(m.g.Nodes[t.to.Node])) {
		case fault.ActDrop:
			m.col.Fault(t.to.Node, m.cycle, string(fault.DropToken))
			return nil
		case fault.ActDup:
			m.col.Fault(t.to.Node, m.cycle, string(fault.DupToken))
			if err := m.deliverOnce(m.sh0, t, 0); err != nil {
				return err
			}
		case fault.ActCorruptTag:
			m.col.Fault(t.to.Node, m.cycle, string(fault.CorruptTag))
			t.tgID = m.tags.pushID(t.tgID)
		}
	}
	return m.deliverOnce(m.sh0, t, 0)
}

// deliverOnce lands one token on the shard that owns its destination
// node. seq is the token's position in the sequential delivery order of
// the cycle (see shard.go); the sequential engine passes 0 — it
// processes tokens in that order anyway. In sharded mode, matching-store
// waits are recorded as per-shard events keyed by seq instead of
// updating Matches/PeakMatchStore in place, and the cycle merge replays
// them in seq order so the statistics come out byte-identical.
func (m *sim) deliverOnce(sh *shardState, t tok, seq int64) error {
	n := m.g.Nodes[t.to.Node]
	switch n.Kind {
	case dfg.Merge, dfg.LoopEntry, dfg.Param:
		// Any-arrival operators: each token fires the node on its own.
		vals := sh.getVals(1)
		vals[0] = t.val
		fr := firing{node: n.ID, tgID: t.tgID, vals: vals, port: t.to.Port, dep: t.dep}
		if m.jour {
			fr.deps = appendDeps(nil, &t)
		}
		sh.ready.push(fr)
		return nil
	case dfg.End:
		if t.tgID != rootTagID {
			return machcheck.Newf(machcheck.TagViolation, "machine",
				"token reached end with non-root tag %q (unbalanced loop context)", m.tags.key(t.tgID))
		}
	}
	if n.NIns == 1 {
		vals := sh.getVals(1)
		vals[0] = t.val
		fr := firing{node: n.ID, tgID: t.tgID, vals: vals, dep: t.dep}
		if m.jour {
			fr.deps = appendDeps(nil, &t)
		}
		sh.ready.push(fr)
		return nil
	}
	e := m.matchLookup(n.ID, t.tgID)
	inserted := e == nil
	if inserted {
		e = sh.getEntry(n.NIns)
		e.dep = t.dep
		m.matchInsert(sh, n.ID, t.tgID, e)
	} else if m.dag {
		e.dep = m.col.MaxDep(e.dep, t.dep)
	}
	if m.jour {
		e.deps = appendDeps(e.deps, &t)
	}
	bit := uint64(1) << uint(t.to.Port)
	if e.have&bit != 0 {
		return machcheck.Newf(machcheck.TagViolation, "machine",
			"duplicate token at %s port %d tag %q", n, t.to.Port, m.tags.key(t.tgID))
	}
	e.have |= bit
	e.vals[t.to.Port] = t.val
	e.n++
	if e.n == n.NIns {
		m.matchDelete(sh, n.ID, t.tgID)
		sh.ready.push(firing{node: n.ID, tgID: t.tgID, vals: e.vals, dep: e.dep, deps: e.deps})
		sh.putEntry(e)
		if m.sharded {
			sh.waits = append(sh.waits, waitEvent{seq: seq, delta: -1})
		}
	} else if m.sharded {
		var d int8
		if inserted {
			d = 1
		}
		sh.waits = append(sh.waits, waitEvent{
			seq: seq, node: int32(n.ID), port: int32(t.to.Port), dep: t.dep, tgID: t.tgID, delta: d,
		})
	} else {
		m.stats.Matches++
		if m.col != nil {
			m.col.Wait(n.ID, m.cycle, t.to.Port, t.dep, m.tags.key(t.tgID))
		}
		if sh.matchCount > m.stats.PeakMatchStore {
			m.stats.PeakMatchStore = sh.matchCount
		}
	}
	return nil
}

// emitAll broadcasts val on every arc leaving (node, port) by appending
// to the cycle's emission buffer. Emitted tokens inherit m.curDep (and
// m.curDep2, normally -1) as their producer firings.
func (m *sim) emitAll(node, port int, val int64, tgID int32) {
	targets := m.g.OutTargets(node, port)
	for _, t := range targets {
		m.emitBuf = append(m.emitBuf, tok{to: t, val: val, tgID: tgID, dep: m.curDep, dep2: m.curDep2})
	}
	if m.col != nil {
		m.col.Emitted(node, len(targets))
	}
}

// appendDeps accumulates a token's producer firings onto a journal deps
// list, skipping absent (-1) links. Called only while journaling.
func appendDeps(deps []int32, t *tok) []int32 {
	if t.dep >= 0 {
		deps = append(deps, t.dep)
	}
	if t.dep2 >= 0 {
		deps = append(deps, t.dep2)
	}
	return deps
}

// costOf is an operator's duration in cycles: split-phase memory
// operations take MemLatency, everything else one cycle.
func (m *sim) costOf(node int) int {
	switch m.g.Nodes[node].Kind {
	case dfg.Load, dfg.Store, dfg.LoadIdx, dfg.StoreIdx, dfg.ILoad, dfg.IStore:
		return m.cfg.MemLatency
	}
	return 1
}

// fire executes one operator activation, appending the tokens it emits
// this cycle to the emission buffer (memory operations park their results
// in the in-flight queue instead).
func (m *sim) fire(f *firing) error {
	n := m.g.Nodes[f.node]
	switch n.Kind {
	case dfg.End:
		if m.done {
			return machcheck.Newf(machcheck.TagViolation, "machine",
				"end fired twice (duplicate result token)")
		}
		copy(m.endVals, f.vals)
		m.endCycle = m.cycle + 1
		m.done = true
		return nil

	case dfg.Const:
		m.emitAll(n.ID, 0, n.Val, f.tgID)
		return nil

	case dfg.BinOp:
		v, err := interp.Apply(n.Op, f.vals[0], f.vals[1])
		if err != nil {
			return machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
		}
		if m.inj != nil && fault.PredicateOp(n.Op) {
			if fv, hit := m.inj.Misfire(v); hit {
				m.col.Fault(n.ID, m.cycle, string(fault.MisfireValue))
				v = fv
			}
		}
		m.emitAll(n.ID, 0, v, f.tgID)
		return nil

	case dfg.UnOp:
		var v int64
		switch n.Op {
		case lang.OpNeg:
			v = -f.vals[0]
		case lang.OpNot:
			if f.vals[0] == 0 {
				v = 1
			}
		default:
			return machcheck.Newf(machcheck.OperatorFault, "machine", "bad unary op %v", n.Op)
		}
		m.emitAll(n.ID, 0, v, f.tgID)
		return nil

	case dfg.Fused:
		// The whole step program evaluates in this one firing; fault
		// injection sees the fused node as a single operator (Misfire
		// targets predicate binops only, and fused trees are interior
		// value computations, so no injection point is lost).
		fi := m.g.FusionOf(n.ID)
		vals, err := interp.EvalFused(fi.Steps, f.vals, m.fusedScratch)
		if err != nil {
			return machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
		}
		m.fusedScratch = vals
		for p, s := range fi.Outs {
			m.emitAll(n.ID, p, vals[s], f.tgID)
		}
		return nil

	case dfg.Switch:
		port := 0
		if f.vals[1] == 0 {
			port = 1
		}
		m.emitAll(n.ID, port, f.vals[0], f.tgID)
		return nil

	case dfg.Merge, dfg.Param:
		m.emitAll(n.ID, 0, f.vals[0], f.tgID)
		return nil

	case dfg.Apply:
		return m.fireApply(f)

	case dfg.ProcReturn:
		return m.fireProcReturn(f)

	case dfg.Synch:
		m.emitAll(n.ID, 0, 0, f.tgID)
		return nil

	case dfg.LoopEntry:
		var ntID int32
		if f.port == 0 {
			ntID = m.tags.pushID(f.tgID)
		} else {
			var err error
			ntID, err = m.tags.bumpID(f.tgID)
			if err != nil {
				return machcheck.Newf(machcheck.TagViolation, "machine", "%s: %v", n, err)
			}
		}
		m.emitAll(n.ID, 0, f.vals[0], ntID)
		return nil

	case dfg.LoopExit:
		ntID, err := m.tags.popID(f.tgID)
		if err != nil {
			return machcheck.Newf(machcheck.TagViolation, "machine", "%s: %v", n, err)
		}
		m.emitAll(n.ID, 0, f.vals[0], ntID)
		return nil

	case dfg.Load:
		m.stats.MemOps++
		name := m.resolveName(n.Var, m.tags.tag(f.tgID))
		release, err := m.acquire(name, -1, false)
		if err != nil {
			return err
		}
		v := m.store.Get(name)
		mark := len(m.emitBuf)
		m.emitAll(n.ID, 0, v, f.tgID)
		m.emitAll(n.ID, 1, 0, f.tgID)
		m.park(mark, release)
		return nil

	case dfg.Store:
		m.stats.MemOps++
		name := m.resolveName(n.Var, m.tags.tag(f.tgID))
		release, err := m.acquire(name, -1, true)
		if err != nil {
			return err
		}
		m.store.Set(name, f.vals[0])
		mark := len(m.emitBuf)
		m.emitAll(n.ID, 0, 0, f.tgID)
		m.park(mark, release)
		return nil

	case dfg.LoadIdx:
		m.stats.MemOps++
		name := m.resolveName(n.Var, m.tags.tag(f.tgID))
		release, err := m.acquire(name, f.vals[0], false)
		if err != nil {
			return err
		}
		v, err := m.store.GetIdx(name, f.vals[0])
		if err != nil {
			return machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
		}
		mark := len(m.emitBuf)
		m.emitAll(n.ID, 0, v, f.tgID)
		m.emitAll(n.ID, 1, 0, f.tgID)
		m.park(mark, release)
		return nil

	case dfg.StoreIdx:
		m.stats.MemOps++
		name := m.resolveName(n.Var, m.tags.tag(f.tgID))
		release, err := m.acquire(name, f.vals[0], true)
		if err != nil {
			return err
		}
		if err := m.store.SetIdx(name, f.vals[0], f.vals[1]); err != nil {
			return machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
		}
		mark := len(m.emitBuf)
		m.emitAll(n.ID, 0, 0, f.tgID)
		m.park(mark, release)
		return nil

	case dfg.ILoad:
		m.stats.MemOps++
		ready, err := m.istruct.read(n.Var, f.vals[0], istructWaiter{node: n.ID, tgID: f.tgID, dep: f.dep})
		if err != nil {
			return err
		}
		if ready {
			v, err := m.store.GetIdx(n.Var, f.vals[0])
			if err != nil {
				return machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
			}
			mark := len(m.emitBuf)
			m.emitAll(n.ID, 0, v, f.tgID)
			m.park(mark, nil)
		}
		// A deferred read emits when the write arrives.
		return nil

	case dfg.IStore:
		m.stats.MemOps++
		waiters, err := m.istruct.write(n.Var, f.vals[0])
		if err != nil {
			return err
		}
		if err := m.store.SetIdx(n.Var, f.vals[0], f.vals[1]); err != nil {
			return machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
		}
		mark := len(m.emitBuf)
		storeDep := m.curDep
		for _, w := range waiters {
			// A deferred read's result depends on both the read's own
			// firing and the store that satisfied it: dep carries the
			// later-finishing link (critical path), dep2 the other edge so
			// the journaled provenance DAG keeps both producers.
			m.curDep = m.col.MaxDep(storeDep, w.dep)
			if m.jour {
				if m.curDep == storeDep {
					m.curDep2 = w.dep
				} else {
					m.curDep2 = storeDep
				}
			}
			m.emitAll(w.node, 0, f.vals[1], w.tgID)
		}
		m.curDep, m.curDep2 = storeDep, -1
		m.park(mark, nil)
		return nil
	}
	return machcheck.Newf(machcheck.OperatorFault, "machine", "cannot fire %s", n)
}

// park schedules memory-operation results — the emission buffer's tail
// starting at mark — to appear after MemLatency cycles (split-phase
// operation, §2.2). It is the injection point for split-phase memory
// faults: a lost response drops its result tokens, a delayed one adds
// latency (responses are eligible only before end fires, while every
// response is still needed for completion).
func (m *sim) park(mark int, release func()) {
	at := m.cycle + m.cfg.MemLatency
	var tokens []tok
	if pending := m.emitBuf[mark:]; len(pending) > 0 {
		tokens = m.parkSlice(pending)
		m.emitBuf = m.emitBuf[:mark]
	}
	if m.inj != nil && !m.done && len(tokens) > 0 {
		if lose, delay := m.inj.MemResponse(); lose {
			m.col.Fault(-1, m.cycle, string(fault.LoseMemResponse))
			tokens = nil
		} else if delay > 0 {
			m.col.Fault(-1, m.cycle, string(fault.DelayMemResponse))
			at += delay
		}
	}
	m.inflight[at] = append(m.inflight[at], delayed{tokens: tokens, release: release})
}

func (m *sim) acquire(name string, idx int64, write bool) (func(), error) {
	if m.locs == nil {
		return nil, nil
	}
	return m.locs.acquire(name, idx, write)
}

func (m *sim) deadlockError() error {
	if err := m.istruct.pendingError(); err != nil {
		return err
	}
	return machcheck.Newf(machcheck.Deadlock, "machine",
		"no enabled work at cycle %d but end has not fired; %d activations waiting",
		m.cycle, m.totalMatchCount()).WithStuck(m.stuckList())
}
