// Package machine simulates an explicit token store dataflow machine in
// the style of Monsoon (paper §2.2): tokens carry tags identifying their
// loop iteration context, tokens destined for a multi-input operator
// rendezvous in a matching store (the ETS frame memory), loads and stores
// are split-phase operations with configurable latency, and a configurable
// number of processors issues enabled operations each cycle.
//
// Running the same graph with an unlimited processor count measures the
// program's critical path; the per-cycle issue counts form its parallelism
// profile. This is the measurement substrate for every experiment in
// EXPERIMENTS.md.
//
// Map to the paper:
//
//   - machine.go — the ETS pipeline of §2.2: tag matching, instruction
//     issue, split-phase memory, bounded processors per cycle; also the
//     observability hooks (Config.Collector, an *obs.Collector) that
//     count firings/waits/stalls and thread the firing DAG used for
//     critical-path extraction (see OBSERVABILITY.md).
//   - istruct.go — the I-structure memory unit of §6.3: presence bits,
//     deferred reads satisfied by the eventual write.
//   - procs.go — activation contexts for procedure invocations (§2.2),
//     Apply/Param/ProcReturn linkage.
//   - race.go — optional checker that no two conflicting memory
//     operations overlap in time (the §5 correctness condition covers
//     must enforce).
//   - trace.go — ASCII parallelism chart; execution traces themselves are
//     obs.TraceSink events (Config.Trace).
package machine

import (
	"io"
	"math/rand"
	"sort"
	"time"

	"ctdf/internal/dfg"
	"ctdf/internal/fault"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/machcheck"
	"ctdf/internal/obs"
	"ctdf/internal/token"
)

// Config configures a simulation run.
type Config struct {
	// Processors bounds how many operations issue per cycle; 0 means
	// unlimited (critical-path mode).
	Processors int
	// MemLatency is the number of cycles a split-phase load or store takes
	// (minimum and default 1). All other operators take one cycle.
	MemLatency int
	// MaxCycles aborts runaway executions (default one million).
	MaxCycles int
	// MaxOps bounds total operator firings — and, indirectly, delivered
	// tokens — so a token explosion aborts with a CyclesExceeded machine
	// check before exhausting memory (default ten million).
	MaxOps int64
	// Deadline bounds wall-clock execution (0 = none); exceeding it
	// aborts with a Deadline machine check.
	Deadline time.Duration
	// Inject threads a deterministic fault-injection plan through the
	// run (nil = no injection; see internal/fault and ROBUSTNESS.md).
	Inject *fault.Injector
	// Binding selects which aliased names share storage this run.
	Binding interp.Binding
	// RandomSeed, when nonzero, issues enabled operations in a
	// pseudo-random order instead of the deterministic one — the final
	// store must not depend on it (dataflow determinacy).
	RandomSeed int64
	// DetectRaces additionally checks that no two memory operations on the
	// same location overlap in time unless both are reads.
	DetectRaces bool
	// ProfileLimit caps the recorded parallelism profile length (default
	// 1<<16 cycles); statistics remain exact beyond it.
	ProfileLimit int
	// Trace, when non-nil, receives one line per operator firing
	// ("cycle 12: d5: binop + [tag 0.1]"); it is implemented as an
	// obs.TraceSink on the event stream.
	Trace io.Writer
	// Collector, when non-nil, gathers per-node counters, streams
	// cycle-stamped events to its sinks, and (when enabled) records the
	// firing DAG for critical-path extraction. Nil disables observability
	// at the cost of one branch per firing.
	Collector *obs.Collector
}

// Stats describes an execution.
type Stats struct {
	// Cycles is the total execution time; with unlimited processors this
	// is the critical path length.
	Cycles int
	// Ops is the number of operator firings.
	Ops int
	// MemOps counts load/store firings.
	MemOps int
	// Matches counts tokens that had to wait in the matching store.
	Matches int
	// MaxParallelism is the peak number of operations issued in one cycle.
	MaxParallelism int
	// PeakMatchStore is the peak number of partially matched activations
	// waiting in the matching store (the explicit-token-store frame memory
	// pressure).
	PeakMatchStore int
	// Profile[i] is the number of operations issued at cycle i (truncated
	// to ProfileLimit entries).
	Profile []int
}

// AvgParallelism is Ops/Cycles.
func (s Stats) AvgParallelism() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Ops) / float64(s.Cycles)
}

// Outcome is the result of a run.
type Outcome struct {
	// Store is the final memory state.
	Store *interp.Store
	// EndValues holds the value carried by each token collected at the end
	// node, indexed by end input port (meaningful for §6.1 value-carrying
	// token lines).
	EndValues []int64
	Stats     Stats
}

// token is a value travelling an arc.
type tok struct {
	to  dfg.Target
	val int64
	tg  token.Tag
	// dep is the producer firing's id in the collector's firing DAG
	// (-1 when the DAG is not being recorded or the token has no
	// producer, e.g. the initial start tokens).
	dep int32
}

// matchKey identifies a frame slot set: one operator activation.
type matchKey struct {
	node int
	tg   string
}

type matchEntry struct {
	have uint64
	vals []int64
	tg   token.Tag
	n    int
	// dep is the latest-finishing producer firing among the operands
	// matched so far (critical-path recording only).
	dep int32
}

// firing is an enabled operator activation.
type firing struct {
	node int
	vals []int64
	tg   token.Tag
	// port is the arriving port for any-arrival operators (merge, loop
	// entry).
	port int
	// dep is the latest-finishing input firing before issue; after issue
	// it is reused to hold this firing's own id in the firing DAG.
	dep int32
}

// Run executes the dataflow graph to completion.
//
// Errors raised by the machine's own checks are *machcheck.Error values
// (match them with errors.Is against the machcheck sentinels); on such an
// abort the returned Outcome is non-nil and carries the partial store and
// statistics up to the failure, so aborted runs remain profilable.
func Run(g *dfg.Graph, cfgc Config) (*Outcome, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if cfgc.MemLatency < 1 {
		cfgc.MemLatency = 1
	}
	if cfgc.MaxCycles == 0 {
		cfgc.MaxCycles = 1_000_000
	}
	if cfgc.MaxOps == 0 {
		cfgc.MaxOps = 10_000_000
	}
	if cfgc.ProfileLimit == 0 {
		cfgc.ProfileLimit = 1 << 16
	}
	if err := cfgc.Binding.Validate(g.Prog); err != nil {
		return nil, err
	}
	m := &sim{
		g:     g,
		cfg:   cfgc,
		store: interp.NewStoreWithBinding(g.Prog, cfgc.Binding),
		match: map[matchKey]*matchEntry{},
	}
	m.col = cfgc.Collector
	if cfgc.Trace != nil {
		// The historical trace format is an event sink; traced runs are
		// observed runs even when the caller attached no collector.
		if m.col == nil {
			m.col = obs.NewCollector(g, obs.Options{})
		}
		labels := make([]string, len(g.Nodes))
		for i, n := range g.Nodes {
			labels[i] = n.String()
		}
		m.col.AddSink(&obs.TraceSink{W: cfgc.Trace, Labels: labels})
	}
	m.crit = m.col.CriticalPathEnabled()
	m.inj = cfgc.Inject
	if cfgc.RandomSeed != 0 {
		m.rng = rand.New(rand.NewSource(cfgc.RandomSeed))
	}
	if cfgc.DetectRaces {
		m.locs = newRaceDetector(g.Prog, cfgc.Binding)
	}
	m.istruct = newIStructUnit(g)
	m.procs = newProcLinkage(g)
	return m.run()
}

type sim struct {
	g     *dfg.Graph
	cfg   Config
	store *interp.Store
	rng   *rand.Rand

	match   map[matchKey]*matchEntry
	enabled []firing
	// inflight memory completions: cycle → emissions.
	inflight map[int][]delayed
	cycle    int
	stats    Stats

	endVals  []int64
	endCycle int
	done     bool

	// Observability: col collects counters/events (nil when disabled),
	// crit caches col.CriticalPathEnabled(), and curDep is the firing id
	// the tokens currently being emitted inherit as their producer.
	col    *obs.Collector
	crit   bool
	curDep int32

	// Fault injection (nil = none) and the delivered-token budget that
	// bounds token explosions.
	inj       *fault.Injector
	delivered int64

	locs    *raceDetector
	istruct *istructUnit
	procs   *procLinkage
}

type delayed struct {
	tokens []tok
	// race bookkeeping: location released at completion.
	release func()
}

// abort ends the run on a failed machine check, emitting an abort event
// and returning the partial outcome (store and statistics up to the
// failure) alongside the error, so aborted runs remain profilable.
func (m *sim) abort(err error) (*Outcome, error) {
	m.stats.Cycles = m.cycle
	if ce, ok := err.(*machcheck.Error); ok {
		ce.Cycle = m.cycle
		m.col.Abort(m.cycle, string(ce.Check))
	}
	return &Outcome{Store: m.store, EndValues: m.endVals, Stats: m.stats}, err
}

func (m *sim) run() (*Outcome, error) {
	m.inflight = map[int][]delayed{}
	m.endVals = make([]int64, m.g.Nodes[m.g.EndID].NIns)
	start := time.Now()

	// Cycle 0: start emits one dummy token per out arc at the root tag.
	for _, a := range m.g.OutArcs(m.g.StartID, 0) {
		if err := m.deliver(tok{to: dfg.Target{Node: a.To, Port: a.ToPort}, val: 0, tg: token.Root, dep: -1}); err != nil {
			return m.abort(err)
		}
	}

	// Execution runs until end fires, then drains remaining enabled work:
	// tokens routed by a switch onto an unconnected output (a path where
	// the token's value is dead, e.g. after §6.1 elimination) are dropped
	// at that switch, and the drops may be scheduled after end's inputs
	// completed.
	for !m.done || len(m.enabled) > 0 || len(m.inflight) > 0 {
		if m.cycle > m.cfg.MaxCycles {
			return m.abort(machcheck.Newf(machcheck.CyclesExceeded, "machine",
				"exceeded %d cycles (deadlock or runaway loop?)", m.cfg.MaxCycles).WithStuck(m.stuckList()))
		}
		if m.cfg.Deadline > 0 && m.cycle&1023 == 0 && time.Since(start) > m.cfg.Deadline {
			return m.abort(machcheck.Newf(machcheck.Deadline, "machine",
				"exceeded %v wall-clock deadline at cycle %d", m.cfg.Deadline, m.cycle).WithStuck(m.stuckList()))
		}
		if !m.done && len(m.enabled) == 0 && len(m.inflight) == 0 {
			return m.abort(m.deadlockError())
		}
		// Issue up to Processors enabled operations this cycle.
		m.orderEnabled()
		issue := len(m.enabled)
		if m.cfg.Processors > 0 && issue > m.cfg.Processors {
			issue = m.cfg.Processors
		}
		if int64(m.stats.Ops)+int64(issue) > m.cfg.MaxOps {
			return m.abort(machcheck.Newf(machcheck.CyclesExceeded, "machine",
				"exceeded %d firings (runaway loop?)", m.cfg.MaxOps))
		}
		batch := m.enabled[:issue]
		m.enabled = append([]firing(nil), m.enabled[issue:]...)
		if issue > m.stats.MaxParallelism {
			m.stats.MaxParallelism = issue
		}
		if m.cycle < m.cfg.ProfileLimit {
			for len(m.stats.Profile) <= m.cycle {
				m.stats.Profile = append(m.stats.Profile, 0)
			}
			m.stats.Profile[m.cycle] = issue
		}

		var emitted []tok
		for _, f := range batch {
			if m.col != nil {
				// f.dep switches meaning here: latest input firing in,
				// this firing's own DAG id out.
				f.dep = m.col.Fire(f.node, m.cycle, m.costOf(f.node), len(f.vals), f.dep, f.tg.Key())
			} else {
				f.dep = -1
			}
			m.curDep = f.dep
			out, err := m.fire(f)
			if err != nil {
				return m.abort(err)
			}
			emitted = append(emitted, out...)
		}
		// Completions scheduled for the next cycle boundary.
		m.cycle++
		m.stats.Ops += issue
		for _, d := range m.inflight[m.cycle] {
			if d.release != nil {
				d.release()
			}
			emitted = append(emitted, d.tokens...)
		}
		delete(m.inflight, m.cycle)
		for _, t := range emitted {
			if err := m.deliver(t); err != nil {
				return m.abort(err)
			}
		}
	}
	m.stats.Cycles = m.endCycle
	if err := m.istruct.pendingError(); err != nil {
		return m.abort(err)
	}
	if m.procs != nil && len(m.procs.live) != 0 {
		return m.abort(machcheck.Newf(machcheck.TokenLeak, "machine",
			"%d procedure activations never returned", len(m.procs.live)))
	}
	// Strict conservation: after the drain, no partially matched
	// activation may remain in the matching store (a waiting token whose
	// partner can never arrive is a translation bug).
	if len(m.match) != 0 {
		return m.abort(machcheck.Newf(machcheck.TokenLeak, "machine",
			"%d tokens left after end fired", len(m.match)).WithStuck(m.stuckList()))
	}
	return &Outcome{Store: m.store, EndValues: m.endVals, Stats: m.stats}, nil
}

// stuckList renders the matching store's partially matched activations as
// stuck-token diagnostics, in deterministic order.
func (m *sim) stuckList() []machcheck.Stuck {
	keys := make([]matchKey, 0, len(m.match))
	for k := range m.match {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].node != keys[j].node {
			return keys[i].node < keys[j].node
		}
		return keys[i].tg < keys[j].tg
	})
	out := make([]machcheck.Stuck, 0, len(keys))
	for _, k := range keys {
		e := m.match[k]
		out = append(out, machcheck.Stuck{
			Node: k.node, Label: m.g.Nodes[k.node].String(), Tag: k.tg,
			Have: e.n, Need: m.g.Nodes[k.node].NIns,
		})
	}
	return out
}

// orderEnabled makes issue order deterministic (or seeded-random).
func (m *sim) orderEnabled() {
	sort.Slice(m.enabled, func(i, j int) bool {
		a, b := m.enabled[i], m.enabled[j]
		if a.node != b.node {
			return a.node < b.node
		}
		if a.tg.Key() != b.tg.Key() {
			return a.tg.Key() < b.tg.Key()
		}
		return a.port < b.port
	})
	if m.rng != nil {
		m.rng.Shuffle(len(m.enabled), func(i, j int) {
			m.enabled[i], m.enabled[j] = m.enabled[j], m.enabled[i]
		})
	}
}

// matchSite reports whether tokens delivered to n rendezvous in the
// matching store (or at end), where strict conservation makes a dropped,
// duplicated, or tag-corrupted token visible — the eligible sites for
// delivery faults.
func matchSite(n *dfg.Node) bool {
	switch n.Kind {
	case dfg.Merge, dfg.LoopEntry, dfg.Param:
		return false // any-arrival: no matching
	case dfg.End:
		return true
	}
	return n.NIns >= 2
}

// deliver routes a token to its destination, enabling a firing when the
// activation's operands are complete. It is also the fault-injection
// point for delivery faults and enforces the delivered-token budget.
func (m *sim) deliver(t tok) error {
	if m.delivered++; m.delivered > 8*m.cfg.MaxOps+1024 {
		return machcheck.Newf(machcheck.CyclesExceeded, "machine",
			"delivered %d tokens (token explosion?)", m.delivered)
	}
	if m.inj != nil {
		switch m.inj.Deliver(matchSite(m.g.Nodes[t.to.Node])) {
		case fault.ActDrop:
			m.col.Fault(t.to.Node, m.cycle, string(fault.DropToken))
			return nil
		case fault.ActDup:
			m.col.Fault(t.to.Node, m.cycle, string(fault.DupToken))
			if err := m.deliverOnce(t); err != nil {
				return err
			}
		case fault.ActCorruptTag:
			m.col.Fault(t.to.Node, m.cycle, string(fault.CorruptTag))
			t.tg = t.tg.Push()
		}
	}
	return m.deliverOnce(t)
}

func (m *sim) deliverOnce(t tok) error {
	n := m.g.Nodes[t.to.Node]
	switch n.Kind {
	case dfg.Merge, dfg.LoopEntry, dfg.Param:
		// Any-arrival operators: each token fires the node on its own.
		m.enabled = append(m.enabled, firing{node: n.ID, tg: t.tg, vals: []int64{t.val}, port: t.to.Port, dep: t.dep})
		return nil
	case dfg.End:
		if !t.tg.IsRoot() {
			return machcheck.Newf(machcheck.TagViolation, "machine",
				"token reached end with non-root tag %q (unbalanced loop context)", t.tg.Key())
		}
	}
	if n.NIns == 1 {
		m.enabled = append(m.enabled, firing{node: n.ID, tg: t.tg, vals: []int64{t.val}, dep: t.dep})
		return nil
	}
	key := matchKey{node: n.ID, tg: t.tg.Key()}
	e := m.match[key]
	if e == nil {
		e = &matchEntry{vals: make([]int64, n.NIns), tg: t.tg, dep: t.dep}
		m.match[key] = e
	} else if m.crit {
		e.dep = m.col.MaxDep(e.dep, t.dep)
	}
	bit := uint64(1) << uint(t.to.Port)
	if e.have&bit != 0 {
		return machcheck.Newf(machcheck.TagViolation, "machine",
			"duplicate token at %s port %d tag %q", n, t.to.Port, t.tg.Key())
	}
	e.have |= bit
	e.vals[t.to.Port] = t.val
	e.n++
	if e.n == n.NIns {
		delete(m.match, key)
		m.enabled = append(m.enabled, firing{node: n.ID, tg: e.tg, vals: e.vals, dep: e.dep})
	} else {
		m.stats.Matches++
		if m.col != nil {
			m.col.Wait(n.ID, m.cycle, t.tg.Key())
		}
		if len(m.match) > m.stats.PeakMatchStore {
			m.stats.PeakMatchStore = len(m.match)
		}
	}
	return nil
}

// emitAll broadcasts val on every arc leaving (node, port). Emitted
// tokens inherit m.curDep as their producer firing.
func (m *sim) emitAll(node, port int, val int64, tg token.Tag) []tok {
	arcs := m.g.OutArcs(node, port)
	out := make([]tok, 0, len(arcs))
	for _, a := range arcs {
		out = append(out, tok{to: dfg.Target{Node: a.To, Port: a.ToPort}, val: val, tg: tg, dep: m.curDep})
	}
	if m.col != nil {
		m.col.Emitted(node, len(arcs))
	}
	return out
}

// costOf is an operator's duration in cycles: split-phase memory
// operations take MemLatency, everything else one cycle.
func (m *sim) costOf(node int) int {
	switch m.g.Nodes[node].Kind {
	case dfg.Load, dfg.Store, dfg.LoadIdx, dfg.StoreIdx, dfg.ILoad, dfg.IStore:
		return m.cfg.MemLatency
	}
	return 1
}

// fire executes one operator activation, returning the tokens it emits
// this cycle (memory operations park their results in the in-flight queue
// instead).
func (m *sim) fire(f firing) ([]tok, error) {
	n := m.g.Nodes[f.node]
	switch n.Kind {
	case dfg.End:
		if m.done {
			return nil, machcheck.Newf(machcheck.TagViolation, "machine",
				"end fired twice (duplicate result token)")
		}
		copy(m.endVals, f.vals)
		m.endCycle = m.cycle + 1
		m.done = true
		return nil, nil

	case dfg.Const:
		return m.emitAll(n.ID, 0, n.Val, f.tg), nil

	case dfg.BinOp:
		v, err := interp.Apply(n.Op, f.vals[0], f.vals[1])
		if err != nil {
			return nil, machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
		}
		if m.inj != nil && fault.PredicateOp(n.Op) {
			if fv, hit := m.inj.Misfire(v); hit {
				m.col.Fault(n.ID, m.cycle, string(fault.MisfireValue))
				v = fv
			}
		}
		return m.emitAll(n.ID, 0, v, f.tg), nil

	case dfg.UnOp:
		var v int64
		switch n.Op {
		case lang.OpNeg:
			v = -f.vals[0]
		case lang.OpNot:
			if f.vals[0] == 0 {
				v = 1
			}
		default:
			return nil, machcheck.Newf(machcheck.OperatorFault, "machine", "bad unary op %v", n.Op)
		}
		return m.emitAll(n.ID, 0, v, f.tg), nil

	case dfg.Switch:
		port := 0
		if f.vals[1] == 0 {
			port = 1
		}
		return m.emitAll(n.ID, port, f.vals[0], f.tg), nil

	case dfg.Merge, dfg.Param:
		return m.emitAll(n.ID, 0, f.vals[0], f.tg), nil

	case dfg.Apply:
		return m.fireApply(f)

	case dfg.ProcReturn:
		return m.fireProcReturn(f)

	case dfg.Synch:
		return m.emitAll(n.ID, 0, 0, f.tg), nil

	case dfg.LoopEntry:
		var nt token.Tag
		var err error
		if f.port == 0 {
			nt = f.tg.Push()
		} else {
			nt, err = f.tg.Bump()
			if err != nil {
				return nil, machcheck.Newf(machcheck.TagViolation, "machine", "%s: %v", n, err)
			}
		}
		return m.emitAll(n.ID, 0, f.vals[0], nt), nil

	case dfg.LoopExit:
		nt, err := f.tg.Pop()
		if err != nil {
			return nil, machcheck.Newf(machcheck.TagViolation, "machine", "%s: %v", n, err)
		}
		return m.emitAll(n.ID, 0, f.vals[0], nt), nil

	case dfg.Load:
		m.stats.MemOps++
		name := m.resolveName(n.Var, f.tg)
		release, err := m.acquire(name, -1, false)
		if err != nil {
			return nil, err
		}
		v := m.store.Get(name)
		toks := append(m.emitAll(n.ID, 0, v, f.tg), m.emitAll(n.ID, 1, 0, f.tg)...)
		m.park(toks, release)
		return nil, nil

	case dfg.Store:
		m.stats.MemOps++
		name := m.resolveName(n.Var, f.tg)
		release, err := m.acquire(name, -1, true)
		if err != nil {
			return nil, err
		}
		m.store.Set(name, f.vals[0])
		m.park(m.emitAll(n.ID, 0, 0, f.tg), release)
		return nil, nil

	case dfg.LoadIdx:
		m.stats.MemOps++
		name := m.resolveName(n.Var, f.tg)
		release, err := m.acquire(name, f.vals[0], false)
		if err != nil {
			return nil, err
		}
		v, err := m.store.GetIdx(name, f.vals[0])
		if err != nil {
			return nil, machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
		}
		toks := append(m.emitAll(n.ID, 0, v, f.tg), m.emitAll(n.ID, 1, 0, f.tg)...)
		m.park(toks, release)
		return nil, nil

	case dfg.StoreIdx:
		m.stats.MemOps++
		name := m.resolveName(n.Var, f.tg)
		release, err := m.acquire(name, f.vals[0], true)
		if err != nil {
			return nil, err
		}
		if err := m.store.SetIdx(name, f.vals[0], f.vals[1]); err != nil {
			return nil, machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
		}
		m.park(m.emitAll(n.ID, 0, 0, f.tg), release)
		return nil, nil

	case dfg.ILoad:
		m.stats.MemOps++
		ready, err := m.istruct.read(n.Var, f.vals[0], istructWaiter{node: n.ID, tg: f.tg, dep: f.dep})
		if err != nil {
			return nil, err
		}
		if ready {
			v, err := m.store.GetIdx(n.Var, f.vals[0])
			if err != nil {
				return nil, machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
			}
			m.park(m.emitAll(n.ID, 0, v, f.tg), nil)
		}
		// A deferred read emits when the write arrives.
		return nil, nil

	case dfg.IStore:
		m.stats.MemOps++
		waiters, err := m.istruct.write(n.Var, f.vals[0])
		if err != nil {
			return nil, err
		}
		if err := m.store.SetIdx(n.Var, f.vals[0], f.vals[1]); err != nil {
			return nil, machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err)
		}
		var toks []tok
		storeDep := m.curDep
		for _, w := range waiters {
			// A deferred read's result depends on both the read's own
			// firing and the store that satisfied it.
			m.curDep = m.col.MaxDep(storeDep, w.dep)
			toks = append(toks, m.emitAll(w.node, 0, f.vals[1], w.tg)...)
		}
		m.curDep = storeDep
		m.park(toks, nil)
		return nil, nil
	}
	return nil, machcheck.Newf(machcheck.OperatorFault, "machine", "cannot fire %s", n)
}

// park schedules memory-operation results to appear after MemLatency
// cycles (split-phase operation, §2.2). It is the injection point for
// split-phase memory faults: a lost response drops its result tokens, a
// delayed one adds latency (responses are eligible only before end fires,
// while every response is still needed for completion).
func (m *sim) park(tokens []tok, release func()) {
	at := m.cycle + m.cfg.MemLatency
	if m.inj != nil && !m.done && len(tokens) > 0 {
		if lose, delay := m.inj.MemResponse(); lose {
			m.col.Fault(-1, m.cycle, string(fault.LoseMemResponse))
			tokens = nil
		} else if delay > 0 {
			m.col.Fault(-1, m.cycle, string(fault.DelayMemResponse))
			at += delay
		}
	}
	m.inflight[at] = append(m.inflight[at], delayed{tokens: tokens, release: release})
}

func (m *sim) acquire(name string, idx int64, write bool) (func(), error) {
	if m.locs == nil {
		return nil, nil
	}
	return m.locs.acquire(name, idx, write)
}

func (m *sim) deadlockError() error {
	if err := m.istruct.pendingError(); err != nil {
		return err
	}
	return machcheck.Newf(machcheck.Deadlock, "machine",
		"no enabled work at cycle %d but end has not fired; %d activations waiting",
		m.cycle, len(m.match)).WithStuck(m.stuckList())
}
