package machine

import (
	"testing"

	"ctdf/internal/cfg"
	"ctdf/internal/obs"
	"ctdf/internal/translate"
	"ctdf/internal/workloads"
)

// TestParallelIssueObservablyIdentical pins the ParallelIssue contract:
// the parallel stage only spends host CPUs, it must not move a single
// observable — snapshot, cycle count, op counts, matching statistics, or
// the per-node firing vector. The batch threshold is dropped to 1 so
// every cycle of every workload exercises the worker pool, and the whole
// suite runs under -race in CI (scripts/verify.sh).
func TestParallelIssueObservablyIdentical(t *testing.T) {
	old := parIssueThreshold
	parIssueThreshold = 1
	defer func() { parIssueThreshold = old }()

	for _, w := range workloads.All() {
		for _, gc := range goldenConfigs() {
			w, gc := w, gc
			t.Run(w.Name+"/"+gc.Name, func(t *testing.T) {
				seq := goldenRun(t, w, gc)

				g := cfg.MustBuild(w.Parse())
				res, err := translate.Translate(g, gc.Opt)
				if err != nil {
					t.Fatalf("translate: %v", err)
				}
				col := obs.NewCollector(res.Graph, obs.Options{})
				out, err := Run(res.Graph, Config{
					Processors:    gc.Processors,
					MemLatency:    gc.MemLatency,
					Collector:     col,
					ParallelIssue: true,
				})
				if err != nil {
					t.Fatalf("parallel run: %v", err)
				}
				rep := col.Report(out.Stats.Cycles, nil)
				par := goldenCell{
					Snapshot:       out.Store.Snapshot(),
					Cycles:         out.Stats.Cycles,
					Ops:            out.Stats.Ops,
					MemOps:         out.Stats.MemOps,
					Matches:        out.Stats.Matches,
					MaxParallelism: out.Stats.MaxParallelism,
					PeakMatchStore: out.Stats.PeakMatchStore,
					Firings:        rep.NodeFirings(),
				}
				if d := diffCell(seq, par); d != "" {
					t.Errorf("parallel issue diverged from sequential:\n%s", d)
				}
			})
		}
	}
}

// TestParallelIssueErrorsMatchSequential checks the retire stage surfaces
// operator faults (here a division by zero) identically to the sequential
// path: same typed machine check, first-in-issue-order error wins.
func TestParallelIssueErrorsMatchSequential(t *testing.T) {
	old := parIssueThreshold
	parIssueThreshold = 1
	defer func() { parIssueThreshold = old }()

	w := workloads.Workload{Name: "div0", Source: "var x, y\nx := 1 / y\n"}
	g := cfg.MustBuild(w.Parse())
	res, err := translate.Translate(g, translate.Options{Schema: translate.Schema2Opt})
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	_, seqErr := Run(res.Graph, Config{})
	_, parErr := Run(res.Graph, Config{ParallelIssue: true})
	if seqErr == nil || parErr == nil {
		t.Fatalf("expected both engines to fault: seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Errorf("fault text diverged:\nseq: %v\npar: %v", seqErr, parErr)
	}
}
