package machine

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"ctdf/internal/dfg"
	"ctdf/internal/interp"
	"ctdf/internal/lang"
	"ctdf/internal/machcheck"
	"ctdf/internal/obs/telemetry"
)

// The sharded multi-core machine (Config.Workers > 1): the Monsoon
// multi-PE story of paper §2.2, where each processing element owns a
// slice of the explicit token store and tokens travel to the PE that
// owns their destination instruction. Nodes are partitioned across W
// shared-nothing shards by a hash of the node id; each shard owns its
// nodes' ready-queue buckets, matching-store slots, and free lists, so
// shard workers never contend on scheduler state.
//
// A cycle runs as four phases (bulk-synchronous, like the cycle it
// simulates):
//
//  1. select (sequential): merge the shards' active lists into the
//     global deterministic issue order and assign each planned firing
//     its global issue index gi — exactly the index it would have in the
//     sequential engine's batch. Loop-tag arithmetic for the planned
//     firings is resolved here, so phase 2 only reads the tag table.
//  2. fire (parallel): every shard evaluates its planned firings. Pure
//     operators (the par.go set, plus loop tag rewrites whose results
//     were cached in phase 1) evaluate immediately and route their
//     output tokens into per-destination-shard outboxes; everything
//     impure (memory, procedure linkage, end, uncached tag arithmetic)
//     is deferred. Tokens are stamped with a sequence key ordered by
//     (gi, emission index) — the exact order the sequential engine
//     would have appended them to its emission buffer.
//  3. retire (sequential): the deferred impure firings and the pure
//     firings' observation events are merged back into ascending gi
//     order and replayed: collector Fire events, journal records,
//     statistics, and error aborts all happen here, in sequential issue
//     order, so the firing DAG and journal come out byte-identical.
//     Impure firings execute their side effects now — they are the only
//     code that touches the store, tag table, I-structures, or
//     activation linkage, and they run in exactly the sequential order.
//  4. deliver (parallel) + merge (sequential): each shard drains the
//     inboxes addressed to it in ascending sequence-key order — the
//     sequential delivery order — landing tokens in its matching-store
//     slots and ready buckets. Matching-store waits are recorded as
//     per-shard (seq, delta) events; the merge replays them in seq
//     order to reproduce Matches, PeakMatchStore, and collector Wait
//     events byte-exactly, and picks the earliest error in sequential
//     order if any shard aborted.
//
// Why this is byte-exact at any worker count: in the sequential engine,
// tokens produced in cycle C are only delivered at the C→C+1 boundary,
// so within a cycle the only cross-firing effects are through impure
// state — which phase 3 runs in exact sequential order. Pure firings
// commute; their results depend only on their operands. The firing DAG
// ids are precomputable (Fire assigns dense call indices, so the gi-th
// firing of the cycle gets id dagBase+gi), which lets phase 2 stamp
// tokens with their producer's id before Fire is actually called in
// phase 3. See SCALING.md for the full argument and the memory-ordering
// discussion.

// maxShards caps Config.Workers; past a few hundred shards the
// per-shard queues cost more than any machine can win back.
const maxShards = 256

// shardedPhaseMin is the minimum per-cycle work (planned firings or
// routed tokens) worth dispatching to the worker pool; narrower cycles
// run all shards inline on the coordinating goroutine. A variable so
// tests can force the parallel phases on small workloads.
var shardedPhaseMin = 64

// shardHash maps a node id to its owning shard (Fibonacci hashing —
// consecutive ids, the common layout of a translated program, spread
// evenly).
func shardHash(id int) uint32 {
	return uint32(id) * 2654435761
}

// shardSeed derives the per-shard RNG stream for seeded-random issue
// mode: a splitmix64 mix of (seed, shard), so every (seed, shard) pair
// is an independent deterministic stream and W=1 vs W=8 runs explore
// schedules from the same seed without sharing one RNG.
func shardSeed(seed int64, shard int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(shard+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// planEntry is one selection decision: fire take pending activations of
// node this cycle, the first carrying global issue index base.
type planEntry struct {
	node int
	take int
	base int
}

// routedTok is a token en route to the shard owning its destination,
// keyed by its position in the sequential delivery order of the cycle.
type routedTok struct {
	t   tok
	seq int64
}

// waitEvent is one matching-store population change, recorded by the
// parallel delivery phase and replayed in seq order by the cycle merge:
// delta +1 = token created a frame entry and waits, 0 = token joined an
// existing entry and waits, -1 = token completed an activation. The
// node/port/dep/tgID fields feed the collector Wait event for the two
// waiting cases.
type waitEvent struct {
	seq   int64
	node  int32
	port  int32
	dep   int32
	tgID  int32
	delta int8
}

// fireEvent defers a pure firing's observation (collector Fire/Emitted,
// journal record) to the sequential retire pass.
type fireEvent struct {
	gi       int
	node     int32
	port     int32
	consumed int32
	emitted  int32
	inDep    int32
	tgID     int32
	deps     []int32
}

// impureFiring defers a non-pure firing to the sequential retire pass.
type impureFiring struct {
	gi int
	f  firing
}

// shardState is one shard's private scheduler state. The sequential
// engine runs with a single shard owning every node; the sharded engine
// gives each shard the nodes with shardHash(id) % W == id and lets a
// host worker drive it through the parallel phases.
type shardState struct {
	id    int
	ready *readyQueue
	// matchCount is the population of the matching-store slots this
	// shard owns.
	matchCount int

	// Free lists and arenas (queue.go) — strictly shard-private.
	entryFree  []*matchEntry
	entryArena []matchEntry
	valsFree   [][][]int64
	valsArena  []int64

	// rng is the shard's seeded-random issue stream (nil outside
	// seeded-random mode), deterministic by (seed, shard id).
	rng *rand.Rand
	// shufLog records the stream's shuffle-length history while
	// checkpointing, so a checkpoint can fast-forward a fresh stream to
	// this one's exact state (see checkpoint.go).
	shufLog []int

	// Per-cycle scratch for the sharded engine's phases.
	plan      []planEntry
	batchBuf  []firing
	outbox    [][]routedTok // fire phase → per-destination-shard tokens
	fireEvs   []fireEvent   // fire phase → deferred pure observations
	impure    []impureFiring
	waits     []waitEvent
	heads     []int // delivery-phase k-way merge cursors
	delivered int64
	randTake  int
	randBase  int

	// First error per phase, in sequential order (min gi / min seq);
	// the retire pass and cycle merge pick the global minimum.
	fireErr     error
	fireErrGi   int
	delivErr    error
	delivErrSeq int64

	// Telemetry scratch, written as plain fields by the owning worker
	// during the parallel phases and folded into the registry by the
	// sequential cycle merge (the phase barrier orders the accesses):
	// busy nanoseconds in fire/deliver and pure firings executed.
	telFireNs    int64
	telDelivNs   int64
	telPureFired int64
}

// initShards builds the per-shard states and the node→shard map. w=1 is
// the sequential engine (shard 0 owns everything and no parallel-phase
// scratch is allocated).
func (m *sim) initShards(w int) {
	maxIns := 1
	for _, n := range m.g.Nodes {
		if n.NIns > maxIns {
			maxIns = n.NIns
		}
	}
	m.shardOf = make([]int32, len(m.g.Nodes))
	m.shs = make([]*shardState, w)
	for i := range m.shs {
		sh := &shardState{id: i}
		sh.ready = newReadyQueue(len(m.g.Nodes), m.tags)
		sh.valsFree = make([][][]int64, maxIns+1)
		if w > 1 {
			sh.outbox = make([][]routedTok, w)
			sh.heads = make([]int, w+2)
		}
		m.shs[i] = sh
	}
	m.sh0 = m.shs[0]
	if w > 1 {
		for id := range m.g.Nodes {
			m.shardOf[id] = int32(shardHash(id) % uint32(w))
		}
		m.seqBox = make([][]routedTok, w)
		m.relBox = make([][]routedTok, w)
		m.selCur = make([]int, w)
		m.evCur = make([]int, w)
		m.imCur = make([]int, w)
		m.sharded = true
	}
}

// --- worker pool ------------------------------------------------------

// shardPool drives the parallel phases: min(GOMAXPROCS, W) persistent
// goroutines, each owning a fixed subset of shards (static round-robin,
// so which goroutine runs a shard never affects anything — determinism
// depends only on the shard count).
// shardPool runs the parallel phases. The calling goroutine executes the
// first shard slice itself, so the goroutine count equals the host-core
// budget instead of exceeding it by one perpetually-parking coordinator
// — profiling shows the oversubscribed variant doubles the futex traffic
// of the phase barrier, which runs twice per simulated cycle. By the
// time the caller finishes its own share the helpers usually have too,
// making Wait a no-futex fast path. (A fully spinning barrier was tried
// and measured slower here: helpers burning a core through the
// sequential select/retire/merge stretches starve the coordinator.)
type shardPool struct {
	chans []chan func(*shardState)
	// mine is the shard subset the calling goroutine executes inline.
	mine []*shardState
	wg   sync.WaitGroup
}

func newShardPool(shs []*shardState) *shardPool {
	gor := runtime.GOMAXPROCS(0)
	if gor > len(shs) {
		gor = len(shs)
	}
	p := &shardPool{chans: make([]chan func(*shardState), gor-1)}
	for i := 0; i < len(shs); i += gor {
		p.mine = append(p.mine, shs[i])
	}
	for w := range p.chans {
		ch := make(chan func(*shardState), 1)
		p.chans[w] = ch
		var mine []*shardState
		for i := w + 1; i < len(shs); i += gor {
			mine = append(mine, shs[i])
		}
		go func(mine []*shardState) {
			for fn := range ch {
				for _, sh := range mine {
					fn(sh)
				}
				p.wg.Done()
			}
		}(mine)
	}
	return p
}

// run executes fn once per shard and waits for all of them (the phase
// barrier). The caller's goroutine processes the first shard slice.
func (p *shardPool) run(fn func(*shardState)) { p.runTimed(fn, nil) }

// runTimed additionally accumulates the coordinator's barrier wait —
// the stretch between finishing its own shard slice and the last
// helper's Done — into *barNs when non-nil (telemetry's
// barrier_wait_seconds probe).
func (p *shardPool) runTimed(fn func(*shardState), barNs *int64) {
	p.wg.Add(len(p.chans))
	for _, ch := range p.chans {
		ch <- fn
	}
	for _, sh := range p.mine {
		fn(sh)
	}
	if barNs != nil {
		t0 := time.Now()
		p.wg.Wait()
		*barNs += time.Since(t0).Nanoseconds()
		return
	}
	p.wg.Wait()
}

func (p *shardPool) stop() {
	for _, ch := range p.chans {
		close(ch)
	}
}

// --- main loop --------------------------------------------------------

// readyTotal sums enabled work over all shards.
func (m *sim) readyTotal() int {
	n := 0
	for _, sh := range m.shs {
		n += sh.ready.count
	}
	return n
}

// runSharded is the sharded engine's main loop — the same cycle
// structure as run(), with the issue/retire/deliver work split into the
// phases described at the top of this file.
func (m *sim) runSharded() (*Outcome, error) {
	m.inflight = map[int][]delayed{}
	m.endVals = make([]int64, m.g.Nodes[m.g.EndID].NIns)
	m.curDep, m.curDep2 = -1, -1
	start := time.Now()

	// Parallel phases fan out tokens concurrently; build the lazy
	// out-target caches up front so they are read-only from here on.
	m.g.WarmTargets()
	// fanStride spaces the sequence keys of consecutive firings so that
	// (gi, emission index) order-embeds into one int64: seq =
	// (gi+1)*fanStride + k, with k < fanStride by construction.
	m.fanStride = int64(m.g.MaxFanOut()) + 1
	m.pool = newShardPool(m.shs)
	defer m.pool.stop()

	if m.cfg.Resume != nil {
		// Restore a checkpoint instead of starting at cycle 0 (pre-run
		// failure on a malformed checkpoint, like invalid configuration).
		if err := m.restore(m.cfg.Resume); err != nil {
			return nil, err
		}
	} else {
		// Cycle 0: start emits one dummy token per out arc at the root tag,
		// delivered through the same phase machinery as ordinary cycles.
		for i, t := range m.g.OutTargets(m.g.StartID, 0) {
			d := m.shardOf[t.Node]
			m.seqBox[d] = append(m.seqBox[d], routedTok{
				t: tok{to: t, val: 0, tgID: rootTagID, dep: -1, dep2: -1}, seq: int64(i),
			})
		}
		m.runDeliverPhase()
		if err := m.mergeCycle(); err != nil {
			return m.abort(err)
		}
	}

	var telT0 time.Time
	for !m.done || m.readyTotal() > 0 || len(m.inflight) > 0 {
		m.tel.sampleDepth(m)
		if err := m.maybeCheckpoint(); err != nil {
			return m.abort(err)
		}
		if m.cycle > m.cfg.MaxCycles {
			return m.abort(machcheck.Newf(machcheck.CyclesExceeded, "machine",
				"exceeded %d cycles (deadlock or runaway loop?)", m.cfg.MaxCycles).WithStuck(m.stuckList()))
		}
		if m.cfg.Deadline > 0 {
			if err := m.overDeadline(start); err != nil {
				return m.abort(err)
			}
		}
		if !m.done && m.readyTotal() == 0 && len(m.inflight) == 0 {
			return m.abort(m.deadlockError())
		}
		if m.tel != nil {
			telT0 = time.Now()
		}
		issue := m.selectCycle()
		if m.tel != nil {
			observeSeconds(m.tel.selSec, time.Since(telT0))
		}
		if int64(m.stats.Ops)+int64(issue) > m.cfg.MaxOps {
			return m.abort(machcheck.Newf(machcheck.CyclesExceeded, "machine",
				"exceeded %d firings (runaway loop?)", m.cfg.MaxOps))
		}
		if issue > m.stats.MaxParallelism {
			m.stats.MaxParallelism = issue
		}
		if m.cycle < m.cfg.ProfileLimit {
			for len(m.stats.Profile) <= m.cycle {
				m.stats.Profile = append(m.stats.Profile, 0)
			}
			m.stats.Profile[m.cycle] = issue
		}
		if m.dag {
			m.dagBase = int32(m.col.FiringCount())
		}
		m.runFirePhase(issue)
		if m.tel != nil {
			telT0 = time.Now()
		}
		if err := m.retireCycle(start); err != nil {
			return m.abort(err)
		}
		if m.tel != nil {
			observeSeconds(m.tel.retSec, time.Since(telT0))
		}
		// Cycle boundary: count the issue, complete split-phase memory,
		// route the released tokens after this cycle's emissions (the
		// sequential delivery order).
		m.cycle++
		m.stats.Ops += issue
		released := m.inflight[m.cycle]
		for _, d := range released {
			if d.release != nil {
				d.release()
			}
		}
		delete(m.inflight, m.cycle)
		relSeq := int64(1) << 62
		for _, d := range released {
			for i := range d.tokens {
				t := d.tokens[i]
				dst := m.shardOf[t.to.Node]
				m.relBox[dst] = append(m.relBox[dst], routedTok{t: t, seq: relSeq})
				relSeq++
			}
		}
		m.runDeliverPhase()
		if err := m.mergeCycle(); err != nil {
			return m.abort(err)
		}
		m.tel.cycleCounts(m, issue)
	}
	m.stats.Cycles = m.endCycle
	m.stats.TokensMoved = m.delivered
	if err := m.istruct.pendingError(); err != nil {
		return m.abort(err)
	}
	if m.procs != nil && len(m.procs.live) != 0 {
		return m.abort(machcheck.Newf(machcheck.TokenLeak, "machine",
			"%d procedure activations never returned", len(m.procs.live)))
	}
	if n := m.totalMatchCount(); n != 0 {
		return m.abort(machcheck.Newf(machcheck.TokenLeak, "machine",
			"%d tokens left after end fired", n).WithStuck(m.stuckList()))
	}
	return &Outcome{Store: m.store, EndValues: m.endVals, Stats: m.stats, Checkpoint: m.lastCk}, nil
}

// --- phase 1: select --------------------------------------------------

// selectCycle merges the shards' active lists into the global
// deterministic issue order (ascending node id — node→shard ownership
// is a partition, so the lists are disjoint and the merge never ties)
// and plans up to Processors firings, assigning global issue indices.
// Loop-tag arithmetic for the planned buckets is resolved here, caching
// the results so the parallel fire phase only reads the tag table.
func (m *sim) selectCycle() int {
	if m.rng != nil {
		return m.selectCycleRandom()
	}
	budget := m.cfg.Processors
	if budget <= 0 {
		budget = int(^uint(0) >> 1)
	}
	issue := 0
	cur := m.selCur
	for s, sh := range m.shs {
		sh.plan = sh.plan[:0]
		cur[s] = 0
	}
	for budget > 0 {
		best, bestNode := -1, 0
		for s, sh := range m.shs {
			if cur[s] < len(sh.ready.active) {
				if nd := sh.ready.active[cur[s]]; best < 0 || nd < bestNode {
					best, bestNode = s, nd
				}
			}
		}
		if best < 0 {
			break
		}
		sh := m.shs[best]
		b := &sh.ready.buckets[bestNode]
		take := len(b.items) - b.head
		if take > budget {
			take = budget
		}
		m.warmLoopTags(bestNode, b)
		sh.plan = append(sh.plan, planEntry{node: bestNode, take: take, base: issue})
		issue += take
		budget -= take
		cur[best]++
	}
	return issue
}

// selectCycleRandom plans a seeded-random cycle: the issue budget is
// split round-robin across shards with pending work, each shard
// shuffles its own pending set with its (seed, shard) stream, and
// global issue indices are assigned shard-major. Deterministic for a
// fixed (seed, W); across worker counts the schedule differs but every
// observable final state agrees (dataflow determinacy — the property
// seeded-random mode exists to exercise).
func (m *sim) selectCycleRandom() int {
	total := 0
	for _, sh := range m.shs {
		sh.plan = sh.plan[:0]
		sh.randTake = 0
		total += sh.ready.count
	}
	issue := total
	if m.cfg.Processors > 0 && issue > m.cfg.Processors {
		issue = m.cfg.Processors
	}
	rem := issue
	for rem > 0 {
		for _, sh := range m.shs {
			if rem == 0 {
				break
			}
			if sh.randTake < sh.ready.count {
				sh.randTake++
				rem--
			}
		}
	}
	base := 0
	for _, sh := range m.shs {
		sh.randBase = base
		base += sh.randTake
	}
	return issue
}

// warmLoopTags pre-resolves tag arithmetic for a planned loop bucket so
// the fire phase can read the results from the tag-table caches.
// Resolution errors are deliberately ignored: the affected firing's
// cache lookup will miss, deferring it to the sequential retire pass,
// which re-runs the arithmetic and reports the error at the firing's
// exact position in issue order.
func (m *sim) warmLoopTags(node int, b *bucket) {
	switch m.g.Nodes[node].Kind {
	case dfg.LoopEntry:
		for i := b.head; i < len(b.items); i++ {
			f := &b.items[i]
			if f.port == 0 {
				m.tags.pushID(f.tgID)
			} else {
				_, _ = m.tags.bumpID(f.tgID)
			}
		}
	case dfg.LoopExit:
		for i := b.head; i < len(b.items); i++ {
			_, _ = m.tags.popID(b.items[i].tgID)
		}
	}
}

// --- phase 2: fire ----------------------------------------------------

// runFirePhase evaluates the cycle's planned firings, on the pool for
// wide cycles, inline for narrow ones (same results either way — the
// threshold trades dispatch overhead only).
func (m *sim) runFirePhase(issue int) {
	if issue == 0 {
		return
	}
	fn := m.fireShard
	if m.tel != nil {
		// Per-shard busy time accumulates in plain shard-local scratch;
		// the cycle merge folds it into the registry in shard order.
		fn = func(sh *shardState) {
			t0 := time.Now()
			m.fireShard(sh)
			sh.telFireNs += time.Since(t0).Nanoseconds()
		}
	}
	if issue < shardedPhaseMin {
		for _, sh := range m.shs {
			fn(sh)
		}
		return
	}
	if m.tel != nil {
		var barNs int64
		m.pool.runTimed(fn, &barNs)
		m.tel.barFire.Observe(barNs, telemetry.TimeBuckets)
		return
	}
	m.pool.run(fn)
}

func (m *sim) fireShard(sh *shardState) {
	if m.rng != nil {
		all := sh.ready.fill(sh.batchBuf[:0], sh.ready.count)
		sh.batchBuf = all
		sh.rng.Shuffle(len(all), func(i, j int) {
			all[i], all[j] = all[j], all[i]
		})
		if m.cfg.CheckpointEvery > 0 {
			sh.shufLog = append(sh.shufLog, len(all))
		}
		for j := 0; j < sh.randTake; j++ {
			m.fireOneSharded(sh, &all[j], sh.randBase+j)
		}
		for _, f := range all[sh.randTake:] {
			sh.ready.push(f)
		}
		return
	}
	sh.ready.takePlanned(sh.plan, func(f *firing, gi int) {
		m.fireOneSharded(sh, f, gi)
	})
}

// fireOneSharded evaluates one firing if it is pure — reading only its
// operands, the immutable graph, and the (phase-wise read-only) tag
// caches — routing its output tokens into the destination shards'
// inboxes. Impure firings, and pure ones that fault, defer to the
// sequential retire pass.
func (m *sim) fireOneSharded(sh *shardState, f *firing, gi int) {
	n := m.g.Nodes[f.node]
	var val int64
	port := 0
	tg := f.tgID
	switch n.Kind {
	case dfg.Const:
		val = n.Val
	case dfg.BinOp:
		v, err := interp.Apply(n.Op, f.vals[0], f.vals[1])
		if err != nil {
			sh.recordFireEvent(m, f, gi, 0)
			sh.recordFireErr(gi, machcheck.Newf(machcheck.OperatorFault, "machine", "%s: %v", n, err))
			return
		}
		val = v
	case dfg.UnOp:
		switch n.Op {
		case lang.OpNeg:
			val = -f.vals[0]
		case lang.OpNot:
			if f.vals[0] == 0 {
				val = 1
			}
		default:
			sh.recordFireEvent(m, f, gi, 0)
			sh.recordFireErr(gi, machcheck.Newf(machcheck.OperatorFault, "machine", "bad unary op %v", n.Op))
			return
		}
	case dfg.Switch:
		val = f.vals[0]
		if f.vals[1] == 0 {
			port = 1
		}
	case dfg.Merge, dfg.Param:
		val = f.vals[0]
	case dfg.Synch:
		// emits 0
	case dfg.LoopEntry:
		var ok bool
		if f.port == 0 {
			tg, ok = m.tags.peekPush(f.tgID)
		} else {
			tg, ok = m.tags.peekBump(f.tgID)
		}
		if !ok {
			sh.impure = append(sh.impure, impureFiring{gi: gi, f: *f})
			return
		}
		val = f.vals[0]
	case dfg.LoopExit:
		var ok bool
		tg, ok = m.tags.peekPop(f.tgID)
		if !ok {
			sh.impure = append(sh.impure, impureFiring{gi: gi, f: *f})
			return
		}
		val = f.vals[0]
	default:
		sh.impure = append(sh.impure, impureFiring{gi: gi, f: *f})
		return
	}
	var dep int32 = -1
	if m.dag {
		// The id Fire will assign this firing in the retire pass: ids are
		// dense call indices, and retire calls Fire once per firing in gi
		// order starting from dagBase.
		dep = m.dagBase + int32(gi)
	}
	targets := m.g.OutTargets(f.node, port)
	seqBase := int64(gi+1) * m.fanStride
	for k, t := range targets {
		dst := m.shardOf[t.Node]
		sh.outbox[dst] = append(sh.outbox[dst], routedTok{
			t: tok{to: t, val: val, tgID: tg, dep: dep, dep2: -1}, seq: seqBase + int64(k),
		})
	}
	sh.recordFireEvent(m, f, gi, len(targets))
	sh.putVals(f.vals)
	// Pure firings executed here feed the fire/retire split counter;
	// plain shard-local scratch, folded at the cycle merge.
	sh.telPureFired++
}

func (sh *shardState) recordFireEvent(m *sim, f *firing, gi, emitted int) {
	if m.col == nil {
		return
	}
	sh.fireEvs = append(sh.fireEvs, fireEvent{
		gi: gi, node: int32(f.node), port: int32(f.port), consumed: int32(len(f.vals)),
		emitted: int32(emitted), inDep: f.dep, tgID: f.tgID, deps: f.deps,
	})
}

// recordFireErr keeps the shard's earliest fire-phase error in issue
// order; the retire pass aborts at the global minimum, exactly where
// the sequential engine would have.
func (sh *shardState) recordFireErr(gi int, err error) {
	if sh.fireErr == nil || gi < sh.fireErrGi {
		sh.fireErr, sh.fireErrGi = err, gi
	}
}

// --- phase 3: retire --------------------------------------------------

// retireCycle replays the cycle's firings in ascending global issue
// order: pure firings replay their deferred observations (collector
// Fire/Emitted, journal), impure firings execute here — the only code
// that mutates shared simulator state, running on one goroutine in
// exactly the sequential order. Immediate emissions of impure firings
// are routed into the sequential-writer inbox lane with their (gi,
// emission index) sequence keys.
func (m *sim) retireCycle(start time.Time) error {
	var pureErr error
	pureErrGi := 0
	for _, sh := range m.shs {
		if sh.fireErr != nil && (pureErr == nil || sh.fireErrGi < pureErrGi) {
			pureErr, pureErrGi = sh.fireErr, sh.fireErrGi
		}
	}
	evCur, imCur := m.evCur, m.imCur
	for s := range m.shs {
		evCur[s], imCur[s] = 0, 0
	}
	for {
		best, bestGi, bestIsEv := -1, 0, false
		for s, sh := range m.shs {
			if evCur[s] < len(sh.fireEvs) {
				if g := sh.fireEvs[evCur[s]].gi; best < 0 || g < bestGi {
					best, bestGi, bestIsEv = s, g, true
				}
			}
			if imCur[s] < len(sh.impure) {
				if g := sh.impure[imCur[s]].gi; best < 0 || g < bestGi {
					best, bestGi, bestIsEv = s, g, false
				}
			}
		}
		// A fire-phase error with no recorded observation (collector
		// disabled) aborts as soon as issue order reaches it.
		if pureErr != nil && (best < 0 || pureErrGi < bestGi) {
			return pureErr
		}
		if best < 0 {
			break
		}
		sh := m.shs[best]
		if bestIsEv {
			ev := &sh.fireEvs[evCur[best]]
			evCur[best]++
			m.col.Fire(int(ev.node), m.cycle, 1, int(ev.consumed), int(ev.port), ev.inDep, ev.deps, m.tags.key(ev.tgID))
			m.col.Emitted(int(ev.node), int(ev.emitted))
			if pureErr != nil && ev.gi == pureErrGi {
				return pureErr
			}
		} else {
			imf := &sh.impure[imCur[best]]
			imCur[best]++
			f := &imf.f
			if m.col != nil {
				f.dep = m.col.Fire(f.node, m.cycle, m.costOf(f.node), len(f.vals), f.port, f.dep, f.deps, m.tags.key(f.tgID))
			} else {
				f.dep = -1
			}
			m.curDep, m.curDep2 = f.dep, -1
			mark := len(m.emitBuf)
			if err := m.fire(f); err != nil {
				return err
			}
			seqBase := int64(imf.gi+1) * m.fanStride
			for k := range m.emitBuf[mark:] {
				t := m.emitBuf[mark+k]
				dst := m.shardOf[t.to.Node]
				m.seqBox[dst] = append(m.seqBox[dst], routedTok{t: t, seq: seqBase + int64(k)})
			}
			m.emitBuf = m.emitBuf[:mark]
			sh.putVals(f.vals)
			if m.tel != nil {
				m.tel.retireFirings.Add(1)
			}
		}
		if m.cfg.Deadline > 0 {
			if err := m.overDeadline(start); err != nil {
				return err
			}
		}
	}
	return nil
}

// --- phase 4: deliver + merge -----------------------------------------

// runDeliverPhase lands the cycle's routed tokens on their owning
// shards, on the pool when the token volume is worth it.
func (m *sim) runDeliverPhase() {
	total := 0
	for _, sh := range m.shs {
		for _, ob := range sh.outbox {
			total += len(ob)
		}
	}
	for _, b := range m.seqBox {
		total += len(b)
	}
	for _, b := range m.relBox {
		total += len(b)
	}
	if total == 0 {
		return
	}
	fn := m.deliverShard
	if m.tel != nil {
		fn = func(sh *shardState) {
			t0 := time.Now()
			m.deliverShard(sh)
			sh.telDelivNs += time.Since(t0).Nanoseconds()
		}
	}
	if total < shardedPhaseMin {
		for _, sh := range m.shs {
			fn(sh)
		}
		return
	}
	if m.tel != nil {
		var barNs int64
		m.pool.runTimed(fn, &barNs)
		m.tel.barDeliv.Observe(barNs, telemetry.TimeBuckets)
		return
	}
	m.pool.run(fn)
}

// deliverShard drains every inbox addressed to sh — one per source
// shard, plus the sequential-writer lane (impure emissions, start
// tokens) and the released split-phase completions — merged by sequence
// key, i.e. in exactly the order the sequential engine would have
// delivered these tokens. Each stream is already seq-ascending, so this
// is a k-way merge with k = W+2.
func (m *sim) deliverShard(sh *shardState) {
	d := sh.id
	W := len(m.shs)
	heads := sh.heads
	for i := range heads {
		heads[i] = 0
	}
	stream := func(i int) []routedTok {
		switch {
		case i < W:
			return m.shs[i].outbox[d]
		case i == W:
			return m.seqBox[d]
		default:
			return m.relBox[d]
		}
	}
	for {
		best := -1
		var bestSeq int64
		for i := 0; i < W+2; i++ {
			s := stream(i)
			if heads[i] < len(s) {
				if q := s[heads[i]].seq; best < 0 || q < bestSeq {
					best, bestSeq = i, q
				}
			}
		}
		if best < 0 {
			break
		}
		rt := &stream(best)[heads[best]]
		heads[best]++
		sh.delivered++
		if err := m.deliverOnce(sh, rt.t, rt.seq); err != nil {
			// Record the earliest error in sequential delivery order and
			// stop this shard: tokens past an abort are never delivered by
			// the sequential engine either, and other shards' deliveries
			// below the error's seq are unaffected (shard state is
			// disjoint).
			sh.delivErr, sh.delivErrSeq = err, rt.seq
			return
		}
	}
}

// mergeCycle is the sequential epilogue of the delivery phase: it folds
// the per-shard delivered-token counts into the global explosion
// budget, replays the matching-store events in sequential delivery
// order — reproducing Matches, PeakMatchStore, and collector Wait
// events byte-exactly — and surfaces the earliest delivery error. All
// per-cycle scratch is reset here.
func (m *sim) mergeCycle() error {
	// Telemetry folds the parallel phases' per-shard scratch (busy
	// times, pure-firing counts, occupancy, the traffic matrix) before
	// anything below resets it.
	m.tel.mergeSharded(m)
	var minErr error
	minSeq := int64(^uint64(0) >> 1)
	for _, sh := range m.shs {
		m.delivered += sh.delivered
		sh.delivered = 0
		if sh.delivErr != nil && sh.delivErrSeq < minSeq {
			minErr, minSeq = sh.delivErr, sh.delivErrSeq
		}
	}
	cur := m.evCur
	for s := range m.shs {
		cur[s] = 0
	}
	for {
		best := -1
		var bestSeq int64
		for s, sh := range m.shs {
			if cur[s] < len(sh.waits) {
				if q := sh.waits[cur[s]].seq; best < 0 || q < bestSeq {
					best, bestSeq = s, q
				}
			}
		}
		if best < 0 || bestSeq >= minSeq {
			break
		}
		ev := &m.shs[best].waits[cur[best]]
		cur[best]++
		m.matchLive += int(ev.delta)
		if ev.delta >= 0 {
			m.stats.Matches++
			if m.col != nil {
				m.col.Wait(int(ev.node), m.cycle, int(ev.port), ev.dep, m.tags.key(ev.tgID))
			}
			if m.matchLive > m.stats.PeakMatchStore {
				m.stats.PeakMatchStore = m.matchLive
			}
		}
	}
	for _, sh := range m.shs {
		sh.waits = sh.waits[:0]
		sh.fireEvs = sh.fireEvs[:0]
		sh.impure = sh.impure[:0]
		sh.plan = sh.plan[:0]
		sh.fireErr, sh.delivErr = nil, nil
		for d := range sh.outbox {
			sh.outbox[d] = sh.outbox[d][:0]
		}
	}
	for d := range m.seqBox {
		m.seqBox[d] = m.seqBox[d][:0]
	}
	for d := range m.relBox {
		m.relBox[d] = m.relBox[d][:0]
	}
	if minErr != nil {
		return minErr
	}
	if m.delivered > 8*m.cfg.MaxOps+1024 {
		return machcheck.Newf(machcheck.CyclesExceeded, "machine",
			"delivered %d tokens (token explosion?)", m.delivered)
	}
	return nil
}
